# Tier-1 verification plus a perf-regression canary in one command.
#
#   make          - build + vet + test (tier-1)
#   make bench-smoke - one iteration of the crypto and protocol
#                      benchmarks; catches gross perf regressions fast
#   make bench    - the full paper-table benchmark harness (slow)

GO ?= go

.PHONY: all build test vet bench-smoke bench

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench-smoke:
	$(GO) test ./internal/elgamal/ -run '^$$' -bench 'BenchmarkGroupOps' -benchtime=100x
	$(GO) test ./internal/psc/ -run '^$$' -bench 'BenchmarkPSCRound/(verified|tcp)/bins-512' -benchtime=1x
	# The 2^16-bin streaming-shuffle round (previously infeasible with
	# the whole-vector shuffle). The bench itself is -short-aware: run
	# `go test -short -bench ...` to skip it in quick local loops.
	$(GO) test ./internal/psc/ -run '^$$' -bench 'BenchmarkPSCRound/stream/bins-65536' -benchtime=1x -timeout=30m

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
