# Tier-1 verification plus a perf-regression canary in one command.
#
#   make          - build + vet + test (tier-1)
#   make bench-smoke - one iteration of the crypto and protocol
#                      benchmarks; catches gross perf regressions fast
#   make bench-scale - the million-bin regime: the 2^18-bin spilled
#                      round plus the GOMAXPROCS core-scaling sweep
#   make bench-wan   - the WAN-emulated transport arms (wan-tor static
#                      vs adaptive window, wan-good), to BENCH_WAN.json
#   make bench-json  - bench-scale + bench-wan arms to BENCH_PR8.json,
#                      then all committed BENCH_PR*.json folded into
#                      BENCH_TRAJECTORY.json
#   make bench-trajectory - re-fold the committed per-PR documents only
#   make bench    - the full paper-table benchmark harness (slow)

GO ?= go

.PHONY: all build test vet bench-smoke bench-scale bench-wan bench-json bench-trajectory bench

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench-smoke:
	$(GO) test ./internal/elgamal/ -run '^$$' -bench 'BenchmarkGroupOps' -benchtime=100x
	$(GO) test ./internal/psc/ -run '^$$' -bench 'BenchmarkPSCRound/(verified|tcp)/bins-512' -benchtime=1x
	# The 2^16-bin streaming-shuffle round (previously infeasible with
	# the whole-vector shuffle). The bench itself is -short-aware: run
	# `go test -short -bench ...` to skip it in quick local loops.
	$(GO) test ./internal/psc/ -run '^$$' -bench 'BenchmarkPSCRound/stream/bins-65536' -benchtime=1x -timeout=30m

bench-scale:
	$(GO) test ./internal/psc/ -run '^$$' -bench 'BenchmarkPSCRound/verified/stream/bins-262144' -benchtime=1x -timeout=60m
	$(GO) test ./internal/psc/ -run '^$$' -bench 'BenchmarkPSCRoundCores' -benchtime=1x -timeout=90m

bench-wan:
	$(GO) test ./internal/psc/ -run '^$$' -bench 'BenchmarkPSCRound/wan-' \
		-benchtime=1x -timeout=30m | $(GO) run ./tools/benchjson -o BENCH_WAN.json

bench-json:
	$(GO) test ./internal/psc/ -run '^$$' \
		-bench 'BenchmarkPSCRound/verified/stream/bins-262144|BenchmarkPSCRound/wan-|BenchmarkPSCRoundCores' \
		-benchtime=1x -timeout=150m | $(GO) run ./tools/benchjson -o BENCH_PR8.json
	$(MAKE) bench-trajectory

bench-trajectory:
	$(GO) run ./tools/benchjson -merge -o BENCH_TRAJECTORY.json BENCH_PR*.json

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
