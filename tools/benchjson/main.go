// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark runs can be committed, diffed,
// and uploaded as CI artifacts instead of living in build logs.
//
// Usage:
//
//	go test ./internal/psc/ -bench ... | go run ./tools/benchjson -o BENCH_PR8.json
//	go run ./tools/benchjson -merge -o BENCH_TRAJECTORY.json BENCH_PR*.json
//
// Each benchmark line
//
//	BenchmarkName/sub-4   2   123456 ns/op   95.2 peak-heap-MB
//
// becomes one entry: the trailing -P GOMAXPROCS suffix is split off,
// the iteration count kept, and every value/unit pair (including
// custom ReportMetric units) lands in the metrics map. The goos /
// goarch / cpu / pkg header lines are carried into the document head.
//
// With -merge, the arguments are previously converted per-PR documents
// (BENCH_PR6.json, BENCH_PR7.json, ...); the output folds them into one
// trajectory document: a series per benchmark name, each point tagged
// with the PR it was measured in, ordered by PR number. The trajectory
// is how perf over the repo's life stays diffable in one file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Point is one benchmark measurement in a trajectory series.
type Point struct {
	PR         string             `json:"pr"`
	Procs      int                `json:"procs"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Series is one benchmark's measurements across PRs.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Trajectory is the merged multi-PR document.
type Trajectory struct {
	Sources []string `json:"sources"`
	Series  []Series `json:"series"`
}

func main() {
	out := flag.String("o", "", "output file (empty: stdout)")
	doMerge := flag.Bool("merge", false, "merge per-PR documents (args) into one trajectory instead of converting stdin")
	flag.Parse()

	var enc []byte
	var what string
	if *doMerge {
		tr, err := merge(flag.Args())
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		enc, err = json.MarshalIndent(tr, "", "  ")
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		what = fmt.Sprintf("%d series from %d documents", len(tr.Series), len(tr.Sources))
	} else {
		doc, err := parse(os.Stdin)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		if len(doc.Benchmarks) == 0 {
			log.Fatal("benchjson: no benchmark lines in input")
		}
		enc, err = json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		what = fmt.Sprintf("%d benchmarks", len(doc.Benchmarks))
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s to %s\n", what, *out)
}

// prTag extracts the PR label from a committed document's file name:
// BENCH_PR6.json -> PR6. Any other name is used as-is, extension
// stripped, so ad-hoc documents still merge.
func prTag(path string) string {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	return strings.TrimPrefix(base, "BENCH_")
}

// prNum orders tags like PR6, PR12 numerically; non-PR tags sort last,
// alphabetically among themselves.
func prNum(tag string) int {
	if n, err := strconv.Atoi(strings.TrimPrefix(tag, "PR")); err == nil {
		return n
	}
	return 1 << 30
}

func merge(paths []string) (*Trajectory, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("-merge needs at least one document argument")
	}
	sort.SliceStable(paths, func(i, j int) bool {
		ti, tj := prTag(paths[i]), prTag(paths[j])
		if ni, nj := prNum(ti), prNum(tj); ni != nj {
			return ni < nj
		}
		return ti < tj
	})
	tr := &Trajectory{}
	byName := make(map[string]int)
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var doc Doc
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		tag := prTag(path)
		tr.Sources = append(tr.Sources, filepath.Base(path))
		for _, b := range doc.Benchmarks {
			i, ok := byName[b.Name]
			if !ok {
				i = len(tr.Series)
				byName[b.Name] = i
				tr.Series = append(tr.Series, Series{Name: b.Name})
			}
			tr.Series[i].Points = append(tr.Series[i].Points, Point{
				PR: tag, Procs: b.Procs, Iterations: b.Iterations, Metrics: b.Metrics,
			})
		}
	}
	sort.Slice(tr.Series, func(i, j int) bool { return tr.Series[i].Name < tr.Series[j].Name })
	return tr, nil
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

func parseBench(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("want name, iterations, value/unit pairs")
	}
	b := Benchmark{Procs: 1, Metrics: make(map[string]float64)}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	// The harness appends -GOMAXPROCS to the name, but only when it is
	// not 1 — so a trailing number is ambiguous against names like
	// bins-512. Split it off only when it is a plausible core count;
	// table-size suffixes are orders of magnitude larger.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 && p <= 64 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations %q: %w", fields[1], err)
	}
	b.Iterations = iters
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
