// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark runs can be committed, diffed,
// and uploaded as CI artifacts instead of living in build logs.
//
// Usage:
//
//	go test ./internal/psc/ -bench ... | go run ./tools/benchjson -o BENCH_PR6.json
//
// Each benchmark line
//
//	BenchmarkName/sub-4   2   123456 ns/op   95.2 peak-heap-MB
//
// becomes one entry: the trailing -P GOMAXPROCS suffix is split off,
// the iteration count kept, and every value/unit pair (including
// custom ReportMetric units) lands in the metrics map. The goos /
// goarch / cpu / pkg header lines are carried into the document head.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (empty: stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines in input")
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

func parseBench(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("want name, iterations, value/unit pairs")
	}
	b := Benchmark{Procs: 1, Metrics: make(map[string]float64)}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	// The harness appends -GOMAXPROCS to the name, but only when it is
	// not 1 — so a trailing number is ambiguous against names like
	// bins-512. Split it off only when it is a plausible core count;
	// table-size suffixes are orders of magnitude larger.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 && p <= 64 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations %q: %w", fields[1], err)
	}
	b.Iterations = iters
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
