package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/psc
cpu: Example CPU @ 2.10GHz
BenchmarkPSCRound/verified/bins-512         	       2	 123456789 ns/op	        95.20 peak-heap-MB
BenchmarkPSCRound/wan-tor/adaptive-4        	       1	9423867381 ns/op	   3.56 MB/s	         3.396 xput-MB/s
PASS
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Pkg != "repro/internal/psc" {
		t.Fatalf("header not carried: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	// bins-512 is a table size, not a GOMAXPROCS suffix: must survive.
	if b0.Name != "PSCRound/verified/bins-512" || b0.Procs != 1 || b0.Iterations != 2 {
		t.Fatalf("bench 0 parsed wrong: %+v", b0)
	}
	if b0.Metrics["peak-heap-MB"] != 95.20 {
		t.Fatalf("custom metric lost: %+v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Name != "PSCRound/wan-tor/adaptive" || b1.Procs != 4 {
		t.Fatalf("GOMAXPROCS suffix not split: %+v", b1)
	}
	if b1.Metrics["xput-MB/s"] != 3.396 {
		t.Fatalf("xput metric lost: %+v", b1.Metrics)
	}
}

func TestMergeTrajectory(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc Doc) string {
		enc, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	bench := func(name string, ns float64) Benchmark {
		return Benchmark{Name: name, Procs: 1, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
	}
	// Deliberately passed out of order, with a two-digit PR: the merge
	// must order points numerically (PR8 before PR12), not textually.
	paths := []string{
		write("BENCH_PR12.json", Doc{Benchmarks: []Benchmark{bench("PSCRound/tcp/bins-512", 90)}}),
		write("BENCH_PR8.json", Doc{Benchmarks: []Benchmark{
			bench("PSCRound/tcp/bins-512", 100),
			bench("PSCRound/wan-tor/adaptive", 9e9),
		}}),
	}
	tr, err := merge(paths)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"BENCH_PR8.json", "BENCH_PR12.json"}; len(tr.Sources) != 2 || tr.Sources[0] != want[0] || tr.Sources[1] != want[1] {
		t.Fatalf("sources out of order: %v", tr.Sources)
	}
	if len(tr.Series) != 2 {
		t.Fatalf("want 2 series, got %+v", tr.Series)
	}
	// Series are name-sorted; the shared benchmark carries both points
	// in PR order.
	s := tr.Series[0]
	if s.Name != "PSCRound/tcp/bins-512" || len(s.Points) != 2 {
		t.Fatalf("series 0 wrong: %+v", s)
	}
	if s.Points[0].PR != "PR8" || s.Points[1].PR != "PR12" {
		t.Fatalf("points out of PR order: %+v", s.Points)
	}
	if s.Points[0].Metrics["ns/op"] != 100 || s.Points[1].Metrics["ns/op"] != 90 {
		t.Fatalf("metrics misattributed: %+v", s.Points)
	}
	if tr.Series[1].Name != "PSCRound/wan-tor/adaptive" || len(tr.Series[1].Points) != 1 {
		t.Fatalf("series 1 wrong: %+v", tr.Series[1])
	}

	if _, err := merge(nil); err == nil {
		t.Fatal("merge with no documents must fail")
	}
	if _, err := merge([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("merge with a missing document must fail")
	}
}
