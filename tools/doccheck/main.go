// Command doccheck fails when exported identifiers in the given
// packages lack doc comments, keeping the godoc pass from rotting. It
// is the repo's stand-in for a linter dependency: go/ast only, no
// modules beyond the standard library.
//
// Usage:
//
//	go run ./tools/doccheck ./internal/engine ./internal/wire ...
//
// Rules: every exported package-level function, method, and type needs
// a doc comment; exported consts and vars are covered by a comment on
// their declaration group; _test.go files are exempt.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	bad := 0
	for _, dir := range os.Args[1:] {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				for _, miss := range missing(file) {
					pos := fset.Position(miss.pos)
					fmt.Printf("%s:%d: exported %s %s has no doc comment\n",
						filepath.ToSlash(path), pos.Line, miss.kind, miss.name)
					bad++
				}
			}
		}
	}
	if bad > 0 {
		fmt.Printf("doccheck: %d undocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}

type miss struct {
	kind, name string
	pos        token.Pos
}

// missing reports exported declarations in one file without docs.
func missing(file *ast.File) []miss {
	var out []miss
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			kind := "function"
			if d.Recv != nil && len(d.Recv.List) == 1 {
				base := receiverName(d.Recv.List[0].Type)
				if base != "" && !ast.IsExported(base) {
					continue // method on an unexported type
				}
				name = base + "." + name
				kind = "method"
			}
			out = append(out, miss{kind: kind, name: name, pos: d.Pos()})
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						out = append(out, miss{kind: "type", name: s.Name.Name, pos: s.Pos()})
					}
				case *ast.ValueSpec:
					// A comment on the group covers every name in it.
					if d.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() && s.Doc == nil && s.Comment == nil {
							out = append(out, miss{kind: "value", name: n.Name, pos: n.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the receiver's base type name.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr:
		return receiverName(t.X)
	}
	return ""
}
