// Command psc-cp runs one PSC computation party for one round: it
// connects to the tally server, contributes fair-coin noise, performs
// its verifiable shuffle and exponent blinding, and supplies proven
// decryption shares. PSC's privacy holds if at least one CP is honest
// (§2.4); correctness is enforced on every CP by the attached
// zero-knowledge proofs.
//
// Usage:
//
//	psc-cp -tally 127.0.0.1:7001 -name cp-alpha
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/psc"
	"repro/internal/wire"
)

func main() {
	tally := flag.String("tally", "127.0.0.1:7001", "tally server address")
	name := flag.String("name", "cp-0", "computation party name")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	flag.Parse()

	conn, err := wire.Dial(*tally, nil, *timeout)
	if err != nil {
		log.Fatalf("psc-cp %s: dial: %v", *name, err)
	}
	defer conn.Close()

	cp := psc.NewCP(*name, conn, nil)
	fmt.Printf("psc-cp %s: connected to %s\n", *name, *tally)
	if err := cp.Serve(); err != nil {
		log.Fatalf("psc-cp %s: %v", *name, err)
	}
	fmt.Printf("psc-cp %s: round complete\n", *name)
}
