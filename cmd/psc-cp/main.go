// Command psc-cp runs one PSC computation party as a long-lived
// daemon: it connects to the tally server once, registers its session,
// and serves every round the tally schedules over that connection —
// concurrently when rounds overlap — holding one ElGamal key share for
// the life of the session. PSC's privacy holds if at least one CP is
// honest (§2.4); correctness is enforced on every CP by the attached
// zero-knowledge proofs.
//
// The daemon survives tally churn: a dropped session is redialed with
// exponential backoff, and the re-registration under the pinned
// identity (-id, defaulting to -name, authenticated by -token) rebinds
// the party in the tally's registry so subsequent rounds run at full
// strength.
//
// Usage:
//
//	psc-cp -tally 127.0.0.1:7001 -name cp-alpha [-pin <hex-spki>] [-token <secret>]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/spill"
	"repro/internal/wire"
)

func main() {
	tally := flag.String("tally", "127.0.0.1:7001", "tally server address")
	name := flag.String("name", "cp-0", "computation party name")
	id := flag.String("id", "", "pinned party identity (empty: the name)")
	token := flag.String("token", "", "registration token binding the identity across reconnects (required to rejoin)")
	pin := flag.String("pin", "", "tally SPKI fingerprint (hex) for TLS pinning; empty for plain TCP")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	reconnect := flag.Int("reconnect", 8, "max consecutive reconnect attempts before giving up")
	metricsAddr := flag.String("metrics-addr", "", "serve the ops metrics registry over HTTP at this address (empty: disabled)")
	spillDir := flag.String("spill-dir", "", "directory for the shuffle's bounded-residency scratch files (empty: system temp)")
	streamWindow := flag.Int("stream-window", 0, "initial per-stream flow-control window in bytes (0: wire default, 1 MiB); negotiated per direction with revision-aware peers")
	netemSpec := flag.String("netem", "", "WAN emulation profile shaping the tally connection (lan, wan-good, wan-tor, or key=value spec; empty: none)")
	adaptiveWindow := flag.Bool("adaptive-window", true, "autotune stream windows toward the measured bandwidth-delay product (AIMD; active only with negotiation-aware peers)")
	windowCap := flag.Int("window-cap", 0, "adaptive stream-window growth bound in bytes (0: wire default, 16 MiB)")
	flag.Parse()

	if *spillDir != "" {
		spill.SetDir(*spillDir)
	}
	tlsCfg, err := wire.ClientTLSPin(*pin)
	if err != nil {
		log.Fatalf("psc-cp %s: %v", *name, err)
	}
	if *metricsAddr != "" {
		addr, _, err := metrics.Serve(*metricsAddr, metrics.Default())
		if err != nil {
			log.Fatalf("psc-cp %s: %v", *name, err)
		}
		fmt.Printf("psc-cp %s: metrics on http://%s/metrics\n", *name, addr)
	}
	var connOpts []wire.Option
	if *streamWindow > 0 {
		connOpts = append(connOpts, wire.WithWindow(*streamWindow))
	}
	if *adaptiveWindow {
		connOpts = append(connOpts, wire.WithAdaptiveWindow(*windowCap))
	}
	if p, err := netem.ParseProfile(*netemSpec); err != nil {
		log.Fatalf("psc-cp %s: %v", *name, err)
	} else if p != nil {
		connOpts = append(connOpts, netem.WireOption(*p))
	}
	hello := engine.Hello{Role: engine.RoleCP, Name: *name, ID: *id, Token: *token}
	dial := func() (*wire.Session, error) {
		conn, err := wire.Dial(*tally, tlsCfg, *timeout, connOpts...)
		if err != nil {
			return nil, err
		}
		fmt.Printf("psc-cp %s: connected to %s\n", *name, *tally)
		return wire.NewSession(conn, true), nil
	}
	err = engine.ReconnectLoop(dial, func(sess *wire.Session) error {
		return engine.ServeCPAs(sess, hello, nil)
	}, *reconnect, func(format string, args ...any) {
		log.Printf("psc-cp "+*name+": "+format, args...)
	})
	if err != nil {
		log.Fatalf("psc-cp %s: %v", *name, err)
	}
	fmt.Printf("psc-cp %s: session closed by tally\n", *name)
}
