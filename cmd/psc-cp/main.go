// Command psc-cp runs one PSC computation party as a long-lived
// daemon: it connects to the tally server once, registers its session,
// and serves every round the tally schedules over that connection —
// concurrently when rounds overlap — holding one ElGamal key share for
// the life of the session. PSC's privacy holds if at least one CP is
// honest (§2.4); correctness is enforced on every CP by the attached
// zero-knowledge proofs.
//
// Usage:
//
//	psc-cp -tally 127.0.0.1:7001 -name cp-alpha [-pin <hex-spki>]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

func main() {
	tally := flag.String("tally", "127.0.0.1:7001", "tally server address")
	name := flag.String("name", "cp-0", "computation party name")
	pin := flag.String("pin", "", "tally SPKI fingerprint (hex) for TLS pinning; empty for plain TCP")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	flag.Parse()

	tlsCfg, err := wire.ClientTLSPin(*pin)
	if err != nil {
		log.Fatalf("psc-cp %s: %v", *name, err)
	}
	conn, err := wire.Dial(*tally, tlsCfg, *timeout)
	if err != nil {
		log.Fatalf("psc-cp %s: dial: %v", *name, err)
	}
	sess := wire.NewSession(conn, true)
	defer sess.Close()
	fmt.Printf("psc-cp %s: connected to %s\n", *name, *tally)

	err = engine.ServeCP(sess, *name, nil)
	if errors.Is(err, wire.ErrClosed) {
		fmt.Printf("psc-cp %s: session closed by tally\n", *name)
		return
	}
	log.Fatalf("psc-cp %s: %v", *name, err)
}
