// Command datacollector runs one data collector as a long-lived
// daemon: it attaches to an event source as one measuring relay,
// registers a single multiplexed session with the tally server, and
// serves every measurement round the tally schedules over it —
// PrivCount and PSC rounds alike, concurrently when they overlap —
// mirroring the paper's one-DC-per-relay deployment (§3.1) run as a
// months-long daemon.
//
// Two event sources are supported:
//
//   - -torsim: the simulator's binary socket feed (the default), and
//   - -tor-control: a live Tor control port speaking PRIVCOUNT_*
//     events — a PrivCount-patched Tor or the cmd/mockrelay stand-in.
//     The connection authenticates via -tor-cookie (COOKIE/SAFECOOKIE)
//     or -tor-password, and survives relay churn by reconnecting with
//     backoff; the round fan-out never notices a dropped connection.
//
// Every event from the source fans out to all currently active rounds:
// PrivCount rounds count the Figure 1 stream statistics (the tally
// must be configured with the matching -stats spec, see below); PSC
// rounds observe unique client IPs from connection events (Table 5).
// When the source ends, all active rounds are finished and reported;
// rounds scheduled after that report empty observations.
//
//	datacollector -tally 127.0.0.1:7001 -torsim 127.0.0.1:7000 \
//	              -relay 3 -name dc-3 -rounds 4 [-pin <hex-spki>]
//	datacollector -tally 127.0.0.1:7001 -tor-control 127.0.0.1:9051 \
//	              -tor-cookie /var/lib/tor/control_auth_cookie -relay 3
//
// The matching tally spec for privcount rounds is:
//
//	exit-streams:initial,subsequent:SIGMA;initial-target:hostname,ipv4,ipv6:SIGMA;hostname-port:web,other:SIGMA
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/spill"
	"repro/internal/torctl"
	"repro/internal/wire"
)

func main() {
	tallyAddr := flag.String("tally", "127.0.0.1:7001", "tally server address")
	torsim := flag.String("torsim", "127.0.0.1:7000", "torsim event feed address")
	torControl := flag.String("tor-control", "", "Tor control-port address; replaces -torsim as the event source")
	torCookie := flag.String("tor-cookie", "", "control-auth cookie file (empty: path advertised by the relay)")
	torPassword := flag.String("tor-password", "", "control-port password")
	relay := flag.Int("relay", 0, "relay id to subscribe to (-1 = all; also the observer id for control-port events)")
	name := flag.String("name", "dc-0", "data collector name")
	id := flag.String("id", "", "pinned party identity (empty: the name)")
	token := flag.String("token", "", "registration token binding the identity across reconnects (required to rejoin)")
	pin := flag.String("pin", "", "tally SPKI fingerprint (hex) for TLS pinning; empty for plain TCP")
	rounds := flag.Int("rounds", 1, "number of rounds to serve before exiting")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	reconnect := flag.Int("reconnect", 8, "max consecutive tally reconnect attempts before giving up")
	metricsAddr := flag.String("metrics-addr", "", "serve the ops metrics registry over HTTP at this address (empty: disabled)")
	spillDir := flag.String("spill-dir", "", "directory for bounded-residency scratch files (empty: system temp)")
	streamWindow := flag.Int("stream-window", 0, "initial per-stream flow-control window in bytes (0: wire default, 1 MiB); negotiated per direction with revision-aware peers")
	netemSpec := flag.String("netem", "", "WAN emulation profile shaping the tally connection (lan, wan-good, wan-tor, or key=value spec; empty: none)")
	adaptiveWindow := flag.Bool("adaptive-window", true, "autotune stream windows toward the measured bandwidth-delay product (AIMD; active only with negotiation-aware peers)")
	windowCap := flag.Int("window-cap", 0, "adaptive stream-window growth bound in bytes (0: wire default, 16 MiB)")
	flag.Parse()

	if *spillDir != "" {
		spill.SetDir(*spillDir)
	}

	// Event source: live control port, or the simulator socket feed.
	var feed net.Conn
	var src *torctl.Source
	var err error
	if *torControl != "" {
		src, err = torctl.DialSource(torctl.Config{
			Addr:        *torControl,
			CookiePath:  *torCookie,
			Password:    *torPassword,
			DialTimeout: *timeout,
			Logf:        log.Printf,
		}, torctl.LineParser{DefaultRelay: event.RelayID(*relay)})
		if err != nil {
			log.Fatalf("datacollector %s: tor control: %v", *name, err)
		}
		defer src.Close()
		fmt.Printf("datacollector %s: control connection to %s established\n", *name, *torControl)
	} else {
		feed, err = dialFeed(*torsim, *relay, *timeout)
		if err != nil {
			log.Fatalf("datacollector %s: torsim: %v", *name, err)
		}
		defer feed.Close()
	}

	tlsCfg, err := wire.ClientTLSPin(*pin)
	if err != nil {
		log.Fatalf("datacollector %s: %v", *name, err)
	}
	if *metricsAddr != "" {
		addr, _, err := metrics.Serve(*metricsAddr, metrics.Default())
		if err != nil {
			log.Fatalf("datacollector %s: %v", *name, err)
		}
		fmt.Printf("datacollector %s: metrics on http://%s/metrics\n", *name, addr)
	}
	var connOpts []wire.Option
	if *streamWindow > 0 {
		connOpts = append(connOpts, wire.WithWindow(*streamWindow))
	}
	if *adaptiveWindow {
		connOpts = append(connOpts, wire.WithAdaptiveWindow(*windowCap))
	}
	if p, err := netem.ParseProfile(*netemSpec); err != nil {
		log.Fatalf("datacollector %s: %v", *name, err)
	} else if p != nil {
		connOpts = append(connOpts, netem.WireOption(*p))
	}

	c := &collector{
		name:       *name,
		feedDone:   make(chan struct{}),
		pscActive:  make(map[*psc.DC]bool),
		privActive: make(map[*privcount.DC]bool),
	}

	// Feed pump: every event reaches every active round.
	go func() {
		defer close(c.feedDone)
		var n int
		var err error
		if src != nil {
			n, err = c.pumpSource(src)
		} else {
			n, err = c.pump(feed)
		}
		if err != nil {
			log.Printf("datacollector %s: feed: %v", *name, err)
		}
		fmt.Printf("datacollector %s: %d events consumed\n", *name, n)
		if src != nil {
			parsed, skipped := src.Stats()
			fmt.Printf("datacollector %s: torctl reconnects=%d parsed=%d skipped=%d\n",
				*name, src.Reconnects(), parsed, skipped)
		}
	}()

	// Round server: the tally opens one stream per round. The session
	// loop survives tally churn — a dropped session is redialed with
	// backoff and the daemon re-registers under its pinned identity, so
	// rounds scheduled after the rejoin reach it again.
	type outcome struct {
		round uint64
		err   error
	}
	completed := make(chan outcome, *rounds)
	hello := engine.Hello{Role: engine.RoleDC, Name: *name, ID: *id, Token: *token}
	dial := func() (*wire.Session, error) {
		conn, err := wire.Dial(*tallyAddr, tlsCfg, *timeout, connOpts...)
		if err != nil {
			return nil, err
		}
		return wire.NewSession(conn, true), nil
	}
	go func() {
		err := engine.ReconnectLoop(dial, func(sess *wire.Session) error {
			if _, err := engine.SendHelloPinned(sess, hello); err != nil {
				return err
			}
			fmt.Printf("datacollector %s: connected to %s\n", *name, *tallyAddr)
			return engine.ServeRounds(sess, func(st *wire.Stream) error {
				err := c.serveRound(st)
				if err == nil {
					// Wait for the tally to finish the round and close
					// the stream before counting it served: this DC's
					// part ends at its upload, but exiting the process
					// while the round is still in flight would RST the
					// connection and discard table chunks the kernel
					// already delivered to the tally.
					st.Close()
					for {
						if _, rerr := st.Recv(); rerr != nil {
							break
						}
					}
				}
				completed <- outcome{round: st.Round(), err: err}
				return err
			})
		}, *reconnect, func(format string, args ...any) {
			log.Printf("datacollector "+*name+": "+format, args...)
		})
		if err != nil {
			log.Fatalf("datacollector %s: tally: %v", *name, err)
		}
	}()

	// Count distinct rounds, not outcomes — and let a failure linger
	// before it consumes quota: a session blip delivers a failed outcome
	// from the dead stream while the reconnect loop may already be
	// resuming the same round on a fresh session, and that resumed
	// outcome is the one that should count. A success finalizes its
	// round immediately (superseding any lingering — or even already
	// finalized — failure); a failure finalizes, and is reported as a
	// failure, only when its linger window expires unsuperseded. Each
	// round arms at most one timer, and the timer finalizes under the
	// mutex with a non-blocking wakeup, so repeated failures across many
	// rounds can neither leak blocked goroutines nor miscount.
	const failLinger = 5 * time.Second
	const (
		pendingFail = iota + 1
		doneOK
		doneFailed
	)
	var (
		mu    sync.Mutex
		state = make(map[uint64]int)
		wake  = make(chan struct{}, 1)
	)
	poke := func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
	tally := func() (finalized, failed int) {
		for _, s := range state {
			switch s {
			case doneOK:
				finalized++
			case doneFailed:
				finalized++
				failed++
			}
		}
		return
	}
	for {
		mu.Lock()
		finalized, _ := tally()
		mu.Unlock()
		if finalized >= *rounds {
			break
		}
		select {
		case out := <-completed:
			mu.Lock()
			if out.err != nil {
				fmt.Printf("datacollector %s: round %d failed: %v\n", *name, out.round, out.err)
				if state[out.round] == 0 {
					state[out.round] = pendingFail
					r := out.round
					time.AfterFunc(failLinger, func() {
						mu.Lock()
						if state[r] == pendingFail {
							state[r] = doneFailed
						}
						mu.Unlock()
						poke()
					})
				}
			} else {
				fmt.Printf("datacollector %s: round %d complete\n", *name, out.round)
				state[out.round] = doneOK
			}
			mu.Unlock()
		case <-wake:
		}
	}
	mu.Lock()
	finalized, failed := tally()
	mu.Unlock()
	if failed > 0 {
		fmt.Printf("datacollector %s: %d rounds served (%d completed, %d failed)\n",
			*name, finalized, finalized-failed, failed)
	} else {
		fmt.Printf("datacollector %s: %d rounds served\n", *name, finalized)
	}
}

// collector fans feed events into every active round's DC.
type collector struct {
	name     string
	feedDone chan struct{}

	mu         sync.Mutex
	pscActive  map[*psc.DC]bool
	privActive map[*privcount.DC]bool
}

// serveRound runs one round stream to completion: setup, collect until
// the feed ends, report.
func (c *collector) serveRound(st *wire.Stream) error {
	switch st.Label() {
	case engine.LabelPSC:
		dc := psc.NewDC(c.name, st)
		if err := dc.Setup(); err != nil {
			return err
		}
		fmt.Printf("datacollector %s: round %d started (%s)\n", c.name, st.Round(), st.Label())
		c.mu.Lock()
		c.pscActive[dc] = true
		c.mu.Unlock()
		<-c.feedDone
		c.mu.Lock()
		delete(c.pscActive, dc)
		c.mu.Unlock()
		return dc.Finish()
	case engine.LabelPrivCount:
		dc := privcount.NewDC(c.name, st, nil)
		if err := dc.Setup(); err != nil {
			return err
		}
		fmt.Printf("datacollector %s: round %d started (%s)\n", c.name, st.Round(), st.Label())
		c.mu.Lock()
		c.privActive[dc] = true
		c.mu.Unlock()
		<-c.feedDone
		c.mu.Lock()
		delete(c.privActive, dc)
		c.mu.Unlock()
		return dc.Finish()
	default:
		return fmt.Errorf("datacollector %s: unexpected stream %q", c.name, st.Label())
	}
}

// dispatch routes one event to every active round.
func (c *collector) dispatch(ev event.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch e := ev.(type) {
	case *event.ConnectionEnd:
		for dc := range c.pscActive {
			_ = dc.Observe(e.ClientIP.String())
		}
	case *event.StreamEnd:
		for dc := range c.privActive {
			incrementFig1(dc, e)
		}
	}
}

// pump decodes the torsim feed until EOF, dispatching each event to
// all active rounds, and returns the event count.
func (c *collector) pump(feed net.Conn) (int, error) {
	n := 0
	err := event.ReadFrames(bufio.NewReaderSize(feed, 1<<16), func(ev event.Event) error {
		n++
		c.dispatch(ev)
		return nil
	})
	return n, err
}

// pumpSource consumes the control-port source until the trace ends or
// the client dies.
func (c *collector) pumpSource(src *torctl.Source) (int, error) {
	n := 0
	for ev := range src.Events() {
		n++
		c.dispatch(ev)
	}
	return n, src.Err()
}

// incrementFig1 applies the Figure 1 stream-statistic mapping.
func incrementFig1(dc *privcount.DC, s *event.StreamEnd) {
	if !s.IsInitial {
		_ = dc.Increment("exit-streams", 1, 1)
		return
	}
	_ = dc.Increment("exit-streams", 0, 1)
	switch s.Target {
	case event.TargetHostname:
		_ = dc.Increment("initial-target", 0, 1)
		bin := 1
		if s.IsWebPort() {
			bin = 0
		}
		_ = dc.Increment("hostname-port", bin, 1)
	case event.TargetIPv4:
		_ = dc.Increment("initial-target", 1, 1)
	case event.TargetIPv6:
		_ = dc.Increment("initial-target", 2, 1)
	}
}

// dialFeed attaches to the torsim event stream for one relay.
func dialFeed(addr string, relay int, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sel := fmt.Sprintf("relay %d\n", relay)
	if relay < 0 {
		sel = "relay all\n"
	}
	if _, err := io.WriteString(c, sel); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}
