// Command datacollector runs one data collector as a long-lived
// daemon: it attaches to a torsim event feed as one measuring relay,
// registers a single multiplexed session with the tally server, and
// serves every measurement round the tally schedules over it —
// PrivCount and PSC rounds alike, concurrently when they overlap —
// mirroring the paper's one-DC-per-relay deployment (§3.1) run as a
// months-long daemon.
//
// Every event from the feed fans out to all currently active rounds:
// PrivCount rounds count the Figure 1 stream statistics (the tally
// must be configured with the matching -stats spec, see below); PSC
// rounds observe unique client IPs from connection events (Table 5).
// When the feed ends, all active rounds are finished and reported;
// rounds scheduled after the feed ends report empty observations.
//
//	datacollector -tally 127.0.0.1:7001 -torsim 127.0.0.1:7000 \
//	              -relay 3 -name dc-3 -rounds 4 [-pin <hex-spki>]
//
// The matching tally spec for privcount rounds is:
//
//	exit-streams:initial,subsequent:SIGMA;initial-target:hostname,ipv4,ipv6:SIGMA;hostname-port:web,other:SIGMA
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/wire"
)

func main() {
	tallyAddr := flag.String("tally", "127.0.0.1:7001", "tally server address")
	torsim := flag.String("torsim", "127.0.0.1:7000", "torsim event feed address")
	relay := flag.Int("relay", 0, "relay id to subscribe to (-1 = all)")
	name := flag.String("name", "dc-0", "data collector name")
	pin := flag.String("pin", "", "tally SPKI fingerprint (hex) for TLS pinning; empty for plain TCP")
	rounds := flag.Int("rounds", 1, "number of rounds to serve before exiting")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	flag.Parse()

	feed, err := dialFeed(*torsim, *relay, *timeout)
	if err != nil {
		log.Fatalf("datacollector %s: torsim: %v", *name, err)
	}
	defer feed.Close()

	tlsCfg, err := wire.ClientTLSPin(*pin)
	if err != nil {
		log.Fatalf("datacollector %s: %v", *name, err)
	}
	conn, err := wire.Dial(*tallyAddr, tlsCfg, *timeout)
	if err != nil {
		log.Fatalf("datacollector %s: tally: %v", *name, err)
	}
	sess := wire.NewSession(conn, true)
	defer sess.Close()
	if err := engine.SendHello(sess, engine.RoleDC, *name); err != nil {
		log.Fatalf("datacollector %s: hello: %v", *name, err)
	}
	fmt.Printf("datacollector %s: connected to %s\n", *name, *tallyAddr)

	c := &collector{
		name:       *name,
		feedDone:   make(chan struct{}),
		pscActive:  make(map[*psc.DC]bool),
		privActive: make(map[*privcount.DC]bool),
	}

	// Feed pump: every event reaches every active round.
	go func() {
		defer close(c.feedDone)
		n, err := c.pump(feed)
		if err != nil {
			log.Printf("datacollector %s: feed: %v", *name, err)
		}
		fmt.Printf("datacollector %s: %d events consumed\n", *name, n)
	}()

	// Round server: the tally opens one stream per round.
	type outcome struct {
		round uint64
		err   error
	}
	completed := make(chan outcome, *rounds)
	go engine.ServeRounds(sess, func(st *wire.Stream) error {
		err := c.serveRound(st)
		completed <- outcome{round: st.Round(), err: err}
		return err
	})

	for i := 0; i < *rounds; i++ {
		out := <-completed
		if out.err != nil {
			fmt.Printf("datacollector %s: round %d failed: %v\n", *name, out.round, out.err)
		} else {
			fmt.Printf("datacollector %s: round %d complete\n", *name, out.round)
		}
	}
	fmt.Printf("datacollector %s: %d rounds served\n", *name, *rounds)
}

// collector fans feed events into every active round's DC.
type collector struct {
	name     string
	feedDone chan struct{}

	mu         sync.Mutex
	pscActive  map[*psc.DC]bool
	privActive map[*privcount.DC]bool
}

// serveRound runs one round stream to completion: setup, collect until
// the feed ends, report.
func (c *collector) serveRound(st *wire.Stream) error {
	switch st.Label() {
	case engine.LabelPSC:
		dc := psc.NewDC(c.name, st)
		if err := dc.Setup(); err != nil {
			return err
		}
		c.mu.Lock()
		c.pscActive[dc] = true
		c.mu.Unlock()
		<-c.feedDone
		c.mu.Lock()
		delete(c.pscActive, dc)
		c.mu.Unlock()
		return dc.Finish()
	case engine.LabelPrivCount:
		dc := privcount.NewDC(c.name, st, nil)
		if err := dc.Setup(); err != nil {
			return err
		}
		c.mu.Lock()
		c.privActive[dc] = true
		c.mu.Unlock()
		<-c.feedDone
		c.mu.Lock()
		delete(c.privActive, dc)
		c.mu.Unlock()
		return dc.Finish()
	default:
		return fmt.Errorf("datacollector %s: unexpected stream %q", c.name, st.Label())
	}
}

// pump decodes the feed until EOF, dispatching each event to all
// active rounds, and returns the event count.
func (c *collector) pump(feed net.Conn) (int, error) {
	n := 0
	err := forEachEvent(feed, func(ev event.Event) {
		n++
		c.mu.Lock()
		defer c.mu.Unlock()
		switch e := ev.(type) {
		case *event.ConnectionEnd:
			for dc := range c.pscActive {
				_ = dc.Observe(e.ClientIP.String())
			}
		case *event.StreamEnd:
			for dc := range c.privActive {
				incrementFig1(dc, e)
			}
		}
	})
	return n, err
}

// incrementFig1 applies the Figure 1 stream-statistic mapping.
func incrementFig1(dc *privcount.DC, s *event.StreamEnd) {
	if !s.IsInitial {
		_ = dc.Increment("exit-streams", 1, 1)
		return
	}
	_ = dc.Increment("exit-streams", 0, 1)
	switch s.Target {
	case event.TargetHostname:
		_ = dc.Increment("initial-target", 0, 1)
		bin := 1
		if s.IsWebPort() {
			bin = 0
		}
		_ = dc.Increment("hostname-port", bin, 1)
	case event.TargetIPv4:
		_ = dc.Increment("initial-target", 1, 1)
	case event.TargetIPv6:
		_ = dc.Increment("initial-target", 2, 1)
	}
}

// dialFeed attaches to the torsim event stream for one relay.
func dialFeed(addr string, relay int, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sel := fmt.Sprintf("relay %d\n", relay)
	if relay < 0 {
		sel = "relay all\n"
	}
	if _, err := io.WriteString(c, sel); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// forEachEvent decodes the torsim frame stream until EOF.
func forEachEvent(feed net.Conn, fn func(event.Event)) error {
	r := bufio.NewReaderSize(feed, 1<<16)
	var lenb [4]byte
	buf := make([]byte, 0, 512)
	for {
		if _, err := io.ReadFull(r, lenb[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n > 1<<20 {
			return fmt.Errorf("oversized event frame %d", n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		ev, err := event.Unmarshal(buf)
		if err != nil {
			return err
		}
		fn(ev)
	}
}
