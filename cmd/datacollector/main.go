// Command datacollector runs one data collector for one round: it
// attaches to a torsim event feed as one measuring relay and
// participates in a PrivCount or PSC round against a tally server,
// mirroring the paper's one-DC-per-relay deployment (§3.1).
//
// PrivCount mode counts the Figure 1 stream statistics (the tally must
// be configured with the matching -stats spec, see below); PSC mode
// observes unique client IPs from connection events (Table 5).
//
//	datacollector -protocol privcount -tally 127.0.0.1:7001 \
//	              -torsim 127.0.0.1:7000 -relay 3 -name dc-3
//
// The matching tally spec for privcount mode is:
//
//	exit-streams:initial,subsequent:SIGMA;initial-target:hostname,ipv4,ipv6:SIGMA;hostname-port:web,other:SIGMA
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"repro/internal/event"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/wire"
)

func main() {
	protocol := flag.String("protocol", "privcount", "privcount or psc")
	tallyAddr := flag.String("tally", "127.0.0.1:7001", "tally server address")
	torsim := flag.String("torsim", "127.0.0.1:7000", "torsim event feed address")
	relay := flag.Int("relay", 0, "relay id to subscribe to (-1 = all)")
	name := flag.String("name", "dc-0", "data collector name")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	flag.Parse()

	feed, err := dialFeed(*torsim, *relay, *timeout)
	if err != nil {
		log.Fatalf("datacollector %s: torsim: %v", *name, err)
	}
	defer feed.Close()

	conn, err := wire.Dial(*tallyAddr, nil, *timeout)
	if err != nil {
		log.Fatalf("datacollector %s: tally: %v", *name, err)
	}
	defer conn.Close()

	switch *protocol {
	case "privcount":
		err = runPrivCount(*name, conn, feed)
	case "psc":
		err = runPSC(*name, conn, feed)
	default:
		err = fmt.Errorf("unknown protocol %q", *protocol)
	}
	if err != nil {
		log.Fatalf("datacollector %s: %v", *name, err)
	}
	fmt.Printf("datacollector %s: round complete\n", *name)
}

// dialFeed attaches to the torsim event stream for one relay.
func dialFeed(addr string, relay int, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sel := fmt.Sprintf("relay %d\n", relay)
	if relay < 0 {
		sel = "relay all\n"
	}
	if _, err := io.WriteString(c, sel); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// forEachEvent decodes the torsim frame stream until EOF.
func forEachEvent(feed net.Conn, fn func(event.Event)) error {
	r := bufio.NewReaderSize(feed, 1<<16)
	var lenb [4]byte
	buf := make([]byte, 0, 512)
	for {
		if _, err := io.ReadFull(r, lenb[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n > 1<<20 {
			return fmt.Errorf("oversized event frame %d", n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		ev, err := event.Unmarshal(buf)
		if err != nil {
			return err
		}
		fn(ev)
	}
}

// runPrivCount participates in a round with the Figure 1 schema.
func runPrivCount(name string, conn *wire.Conn, feed net.Conn) error {
	dc := privcount.NewDC(name, conn, nil)
	if err := dc.Setup(); err != nil {
		return err
	}
	count := 0
	err := forEachEvent(feed, func(ev event.Event) {
		s, ok := ev.(*event.StreamEnd)
		if !ok {
			return
		}
		count++
		if !s.IsInitial {
			_ = dc.Increment("exit-streams", 1, 1)
			return
		}
		_ = dc.Increment("exit-streams", 0, 1)
		switch s.Target {
		case event.TargetHostname:
			_ = dc.Increment("initial-target", 0, 1)
			bin := 1
			if s.IsWebPort() {
				bin = 0
			}
			_ = dc.Increment("hostname-port", bin, 1)
		case event.TargetIPv4:
			_ = dc.Increment("initial-target", 1, 1)
		case event.TargetIPv6:
			_ = dc.Increment("initial-target", 2, 1)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("datacollector %s: %d stream events consumed\n", name, count)
	return dc.Finish()
}

// runPSC observes unique client IPs from connection events.
func runPSC(name string, conn *wire.Conn, feed net.Conn) error {
	dc := psc.NewDC(name, conn)
	if err := dc.Setup(); err != nil {
		return err
	}
	count := 0
	err := forEachEvent(feed, func(ev event.Event) {
		c, ok := ev.(*event.ConnectionEnd)
		if !ok {
			return
		}
		count++
		_ = dc.Observe(c.ClientIP.String())
	})
	if err != nil {
		return err
	}
	fmt.Printf("datacollector %s: %d connection events consumed\n", name, count)
	return dc.Finish()
}
