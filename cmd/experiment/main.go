// Command experiment reproduces any table or figure from the paper by
// id, running the full pipeline: simulated Tor network, PrivCount/PSC
// protocol rounds across the measuring relays, statistical inference,
// and a rendered comparison against the paper's reported values.
//
// Usage:
//
//	experiment -list
//	experiment -id fig1
//	experiment -id table5 -scale 400 -seed 7
//	experiment -all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	id := flag.String("id", "", "experiment id (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Float64("scale", 400, "population scale divisor (100 = 1% of Tor)")
	seed := flag.Uint64("seed", 2018, "simulation seed")
	alexaN := flag.Int("alexa", 200000, "synthetic Alexa list size")
	proofRounds := flag.Int("proof-rounds", 2, "PSC shuffle-proof rounds (0 = honest-but-curious)")
	netemSpec := flag.String("netem", "", "WAN emulation profile shaping every party connection (lan, wan-good, wan-tor, or key=value spec; empty: unshaped pipes)")
	adaptiveWindow := flag.Bool("adaptive-window", true, "autotune stream windows toward the measured bandwidth-delay product")
	windowCap := flag.Int("window-cap", 0, "adaptive stream-window growth bound in bytes (0: wire default, 16 MiB)")
	flag.Parse()

	if *list {
		for _, eid := range core.Experiments() {
			fmt.Printf("  %-8s %s\n", eid, core.Title(eid))
		}
		return
	}

	env := &core.Env{
		Scale: *scale, Seed: *seed, AlexaN: *alexaN, ProofRounds: *proofRounds,
		Netem: *netemSpec, AdaptiveWindow: *adaptiveWindow, WindowCap: *windowCap,
	}

	ids := []string{*id}
	if *all {
		ids = core.Experiments()
	} else if *id == "" {
		fmt.Fprintln(os.Stderr, "need -id, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, eid := range ids {
		start := time.Now()
		rep, err := core.Run(eid, env)
		if err != nil {
			log.Fatalf("experiment %s: %v", eid, err)
		}
		fmt.Print(rep)
		fmt.Printf("  (completed in %v at scale 1/%g)\n\n", time.Since(start).Round(time.Millisecond), *scale)
	}
}
