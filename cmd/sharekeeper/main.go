// Command sharekeeper runs one PrivCount share keeper for one round: it
// connects to the tally server, receives sealed blinding shares relayed
// from every data collector, and answers the end-of-round collection
// with negated sums. PrivCount's privacy guarantee requires at least
// one honest share keeper (§2.3); operators run this binary on
// infrastructure independent of the tally server.
//
// Usage:
//
//	sharekeeper -tally 127.0.0.1:7001 -name sk-alpha
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/privcount"
	"repro/internal/wire"
)

func main() {
	tally := flag.String("tally", "127.0.0.1:7001", "tally server address")
	name := flag.String("name", "sk-0", "share keeper name")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	flag.Parse()

	conn, err := wire.Dial(*tally, nil, *timeout)
	if err != nil {
		log.Fatalf("sharekeeper %s: dial: %v", *name, err)
	}
	defer conn.Close()

	sk, err := privcount.NewSK(*name, conn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharekeeper %s: connected to %s\n", *name, *tally)
	if err := sk.Serve(); err != nil {
		log.Fatalf("sharekeeper %s: %v", *name, err)
	}
	fmt.Printf("sharekeeper %s: round complete\n", *name)
}
