// Command sharekeeper runs one PrivCount share keeper as a long-lived
// daemon: it connects to the tally server once, registers its session,
// and serves every round the tally schedules over that connection —
// concurrently when rounds overlap — holding one seal keypair for the
// life of the session. PrivCount's privacy guarantee requires at least
// one honest share keeper (§2.3); operators run this binary on
// infrastructure independent of the tally server.
//
// The daemon survives tally churn: a dropped session is redialed with
// exponential backoff, re-registering under the pinned identity (-id,
// defaulting to -name, authenticated by -token). The seal keypair is
// held across reconnects, so rounds already configured against this
// SK's key are not orphaned by a session blip.
//
// Usage:
//
//	sharekeeper -tally 127.0.0.1:7001 -name sk-alpha [-pin <hex-spki>] [-token <secret>]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/privcount"
	"repro/internal/wire"
)

func main() {
	tally := flag.String("tally", "127.0.0.1:7001", "tally server address")
	name := flag.String("name", "sk-0", "share keeper name")
	id := flag.String("id", "", "pinned party identity (empty: the name)")
	token := flag.String("token", "", "registration token binding the identity across reconnects (required to rejoin)")
	pin := flag.String("pin", "", "tally SPKI fingerprint (hex) for TLS pinning; empty for plain TCP")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	reconnect := flag.Int("reconnect", 8, "max consecutive reconnect attempts before giving up")
	metricsAddr := flag.String("metrics-addr", "", "serve the ops metrics registry over HTTP at this address (empty: disabled)")
	streamWindow := flag.Int("stream-window", 0, "initial per-stream flow-control window in bytes (0: wire default, 1 MiB); negotiated per direction with revision-aware peers")
	netemSpec := flag.String("netem", "", "WAN emulation profile shaping the tally connection (lan, wan-good, wan-tor, or key=value spec; empty: none)")
	adaptiveWindow := flag.Bool("adaptive-window", true, "autotune stream windows toward the measured bandwidth-delay product (AIMD; active only with negotiation-aware peers)")
	windowCap := flag.Int("window-cap", 0, "adaptive stream-window growth bound in bytes (0: wire default, 16 MiB)")
	flag.Parse()

	tlsCfg, err := wire.ClientTLSPin(*pin)
	if err != nil {
		log.Fatalf("sharekeeper %s: %v", *name, err)
	}
	if *metricsAddr != "" {
		addr, _, err := metrics.Serve(*metricsAddr, metrics.Default())
		if err != nil {
			log.Fatalf("sharekeeper %s: %v", *name, err)
		}
		fmt.Printf("sharekeeper %s: metrics on http://%s/metrics\n", *name, addr)
	}
	var connOpts []wire.Option
	if *streamWindow > 0 {
		connOpts = append(connOpts, wire.WithWindow(*streamWindow))
	}
	if *adaptiveWindow {
		connOpts = append(connOpts, wire.WithAdaptiveWindow(*windowCap))
	}
	if p, err := netem.ParseProfile(*netemSpec); err != nil {
		log.Fatalf("sharekeeper %s: %v", *name, err)
	} else if p != nil {
		connOpts = append(connOpts, netem.WireOption(*p))
	}
	sk, err := privcount.NewSK(*name, nil)
	if err != nil {
		log.Fatalf("sharekeeper %s: %v", *name, err)
	}
	hello := engine.Hello{Role: engine.RoleSK, Name: *name, ID: *id, Token: *token}
	dial := func() (*wire.Session, error) {
		conn, err := wire.Dial(*tally, tlsCfg, *timeout, connOpts...)
		if err != nil {
			return nil, err
		}
		fmt.Printf("sharekeeper %s: connected to %s\n", *name, *tally)
		return wire.NewSession(conn, true), nil
	}
	err = engine.ReconnectLoop(dial, func(sess *wire.Session) error {
		return engine.ServeSKAs(sess, hello, sk)
	}, *reconnect, func(format string, args ...any) {
		log.Printf("sharekeeper "+*name+": "+format, args...)
	})
	if err != nil {
		log.Fatalf("sharekeeper %s: %v", *name, err)
	}
	fmt.Printf("sharekeeper %s: session closed by tally\n", *name)
}
