// Command sharekeeper runs one PrivCount share keeper as a long-lived
// daemon: it connects to the tally server once, registers its session,
// and serves every round the tally schedules over that connection —
// concurrently when rounds overlap — holding one seal keypair for the
// life of the session. PrivCount's privacy guarantee requires at least
// one honest share keeper (§2.3); operators run this binary on
// infrastructure independent of the tally server.
//
// Usage:
//
//	sharekeeper -tally 127.0.0.1:7001 -name sk-alpha [-pin <hex-spki>]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

func main() {
	tally := flag.String("tally", "127.0.0.1:7001", "tally server address")
	name := flag.String("name", "sk-0", "share keeper name")
	pin := flag.String("pin", "", "tally SPKI fingerprint (hex) for TLS pinning; empty for plain TCP")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	flag.Parse()

	tlsCfg, err := wire.ClientTLSPin(*pin)
	if err != nil {
		log.Fatalf("sharekeeper %s: %v", *name, err)
	}
	conn, err := wire.Dial(*tally, tlsCfg, *timeout)
	if err != nil {
		log.Fatalf("sharekeeper %s: dial: %v", *name, err)
	}
	sess := wire.NewSession(conn, true)
	defer sess.Close()
	fmt.Printf("sharekeeper %s: connected to %s\n", *name, *tally)

	err = engine.ServeSK(sess, *name)
	if errors.Is(err, wire.ErrClosed) {
		fmt.Printf("sharekeeper %s: session closed by tally\n", *name)
		return
	}
	log.Fatalf("sharekeeper %s: %v", *name, err)
}
