// Command mockrelay runs a mock instrumented Tor relay: a control-port
// server that authenticates controllers (COOKIE/SAFECOOKIE via a
// generated cookie file, or a password) and replays a torsim event
// feed — live, or from a recorded trace file — as asynchronous
// PRIVCOUNT_* event lines, the way a PrivCount-patched Tor would emit
// them (§3.1). It is the deployment-rehearsal stand-in for a real
// relay: point datacollector's -tor-control at it and the full live
// ingestion path (PROTOCOLINFO, auth, SETEVENTS, 650 parsing,
// reconnect) is exercised end to end.
//
//	mockrelay -listen 127.0.0.1:9051 -torsim 127.0.0.1:7000 -relay all \
//	          -cookie-file /tmp/mock.cookie [-drop-after 500]
//
// With -drop-after N the relay abruptly closes the controller
// connection after N event lines — once — to drill the collector's
// reconnect path; the replay cursor survives, so the reconnected
// controller resumes the feed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/event"
	"repro/internal/torctl"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9051", "control-port address to serve")
	torsim := flag.String("torsim", "", "attach to a live torsim event feed at this address")
	trace := flag.String("trace", "", "replay a recorded trace file (length-framed binary events)")
	relay := flag.String("relay", "all", "torsim relay selector: a relay id, or \"all\"")
	cookieFile := flag.String("cookie-file", "", "write a fresh auth cookie here and require COOKIE/SAFECOOKIE auth")
	password := flag.String("password", "", "require HASHEDPASSWORD auth with this password")
	dropAfter := flag.Int("drop-after", 0, "abruptly drop the controller once after N event lines (reconnect drill)")
	epoch := flag.Int64("epoch", 0, "unix seconds of simtime 0 on emitted lines (0: 2018-01-01)")
	timeout := flag.Duration("timeout", 10*time.Second, "dial timeout")
	flag.Parse()

	if (*torsim == "") == (*trace == "") {
		log.Fatal("mockrelay: exactly one of -torsim or -trace is required")
	}

	cfg := torctl.MockConfig{
		Password:      *password,
		CookiePath:    *cookieFile,
		DropAfter:     *dropAfter,
		EpochUnixNano: *epoch * 1e9,
		Logf:          log.Printf,
	}
	if *cookieFile != "" {
		cookie, err := torctl.GenerateCookie()
		if err != nil {
			log.Fatalf("mockrelay: %v", err)
		}
		if err := os.WriteFile(*cookieFile, cookie, 0o600); err != nil {
			log.Fatalf("mockrelay: write cookie: %v", err)
		}
		cfg.Cookie = cookie
	}
	m, err := torctl.NewMockRelay(cfg)
	if err != nil {
		log.Fatalf("mockrelay: %v", err)
	}
	addr, err := m.Listen(*listen)
	if err != nil {
		log.Fatalf("mockrelay: %v", err)
	}
	fmt.Printf("mockrelay: listening on %s\n", addr)

	src, err := openFeed(*torsim, *trace, *relay, *timeout)
	if err != nil {
		log.Fatalf("mockrelay: %v", err)
	}
	n := 0
	err = event.ReadFrames(bufio.NewReaderSize(src, 1<<16), func(ev event.Event) error {
		m.Feed(ev)
		n++
		return nil
	})
	src.Close()
	if err != nil {
		log.Fatalf("mockrelay: feed: %v", err)
	}
	m.End()
	fmt.Printf("mockrelay: trace loaded, %d events\n", n)

	// Serve until a controller has drained the full replay and hung up.
	m.WaitIdle()
	m.Close()
	fmt.Printf("mockrelay: done; %d event lines delivered\n", m.Delivered())
}

// openFeed attaches to a live torsim feed or opens a trace file.
func openFeed(torsim, trace, relay string, timeout time.Duration) (io.ReadCloser, error) {
	if trace != "" {
		return os.Open(trace)
	}
	c, err := net.DialTimeout("tcp", torsim, timeout)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(c, "relay %s\n", relay); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func init() {
	log.SetOutput(os.Stderr)
	log.SetFlags(log.Ltime)
}
