// Command torsim runs the simulated Tor network and streams the events
// observed at the measuring relays to connected data collectors over
// TCP, in the binary event wire format. This is the stand-in for the
// instrumented Tor relays of the paper's deployment (§3.1): each
// privcount/psc data collector connects and receives the event feed for
// one relay.
//
// Usage:
//
//	torsim -listen 127.0.0.1:7000 -days 1 -scale 2000 -wait 16
//
// The simulator waits for -wait collector connections, each of which
// first sends one line "relay <id>\n" selecting its relay (or "relay
// all"), then runs the virtual days and streams 4-byte-length-framed
// events to each subscriber before closing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"

	"repro/internal/alexa"
	"repro/internal/asn"
	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/tornet"
	"repro/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "address to serve event feeds on")
	days := flag.Int("days", 1, "virtual days to simulate")
	scale := flag.Float64("scale", 2000, "population scale divisor")
	seed := flag.Uint64("seed", 2018, "simulation seed")
	wait := flag.Int("wait", 1, "number of collector connections to wait for")
	alexaN := flag.Int("alexa", 100000, "synthetic Alexa list size")
	record := flag.String("record", "", "also record every event to this trace file (mockrelay -trace replays it)")
	flag.Parse()

	if err := run(*listen, *days, *scale, *seed, *wait, *alexaN, *record); err != nil {
		log.Fatal(err)
	}
}

type subscriber struct {
	conn  net.Conn
	w     *bufio.Writer
	relay event.RelayID
	all   bool
}

func run(listen string, days int, scale float64, seed uint64, wait, alexaN int, record string) error {
	log.Printf("torsim: building network (scale=%g seed=%d)", scale, seed)
	g := geo.Build(seed)
	a := asn.Build(g, seed)
	cfg := tornet.DefaultConsensusConfig()
	cfg.Seed = seed
	cons, err := tornet.NewConsensus(cfg)
	if err != nil {
		return err
	}
	net0 := tornet.NewNetwork(cons, g, a)
	list := alexa.Generate(alexa.Config{N: alexaN, Seed: seed})
	driver, err := workload.New(workload.DefaultParams(scale, seed), net0, list)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("torsim: listening on %s, waiting for %d collectors\n", ln.Addr(), wait)

	subs := make([]*subscriber, 0, wait)
	for len(subs) < wait {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		sub, err := handshake(conn)
		if err != nil {
			log.Printf("torsim: rejected collector: %v", err)
			conn.Close()
			continue
		}
		subs = append(subs, sub)
		log.Printf("torsim: collector %d/%d attached (relay=%v all=%v)",
			len(subs), wait, sub.relay, sub.all)
	}

	var rec *bufio.Writer
	var recFile *os.File
	if record != "" {
		recFile, err = os.Create(record)
		if err != nil {
			return err
		}
		rec = bufio.NewWriterSize(recFile, 1<<16)
	}

	var buf []byte
	sent, recorded := 0, 0
	net0.Bus.Subscribe(func(e event.Event) {
		buf = event.AppendFrame(buf[:0], e)
		for _, s := range subs {
			if !s.all && s.relay != e.Observer() {
				continue
			}
			if _, err := s.w.Write(buf); err != nil {
				continue
			}
			sent++
		}
		if rec != nil {
			if _, err := rec.Write(buf); err == nil {
				recorded++
			}
		}
	})

	log.Printf("torsim: running %d virtual day(s)", days)
	driver.Run(days)

	for _, s := range subs {
		s.w.Flush()
		s.conn.Close()
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return err
		}
		if err := recFile.Close(); err != nil {
			return err
		}
		log.Printf("torsim: recorded %d events to %s", recorded, record)
	}
	fmt.Printf("torsim: done; %d events delivered\n", sent)
	return nil
}

func handshake(conn net.Conn) (*subscriber, error) {
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 || fields[0] != "relay" {
		return nil, fmt.Errorf("bad handshake %q", line)
	}
	sub := &subscriber{conn: conn, w: bufio.NewWriterSize(conn, 1<<16)}
	if fields[1] == "all" {
		sub.all = true
		return sub, nil
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, err
	}
	sub.relay = event.RelayID(id)
	return sub, nil
}

func init() {
	log.SetOutput(os.Stderr)
	log.SetPrefix("")
	log.SetFlags(log.Ltime)
}
