// Command tally runs a tally server for one measurement round of
// either protocol, accepting party connections over TCP (optionally
// TLS) and printing the aggregated result. It is the TS role of §3.1.
//
// PrivCount round with 16 DCs and 3 SKs counting two statistics:
//
//	tally -protocol privcount -listen 127.0.0.1:7001 -dcs 16 -sks 3 \
//	      -stats "exit-streams:initial,subsequent:3100;bytes::1e6"
//
// PSC round with 10 DCs and 3 CPs:
//
//	tally -protocol psc -listen 127.0.0.1:7001 -dcs 10 -cps 3 \
//	      -bins 4096 -noise 64
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/stats"
	"repro/internal/wire"
)

func main() {
	protocol := flag.String("protocol", "privcount", "privcount or psc")
	listen := flag.String("listen", "127.0.0.1:7001", "address to accept parties on")
	dcs := flag.Int("dcs", 1, "number of data collectors")
	sks := flag.Int("sks", 1, "number of share keepers (privcount)")
	cps := flag.Int("cps", 1, "number of computation parties (psc)")
	statsSpec := flag.String("stats", "count::0", "privcount statistics: name:bin1,bin2:sigma;...")
	bins := flag.Int("bins", 4096, "psc hash-table size")
	noise := flag.Int("noise", 64, "psc noise coins per CP")
	proofRounds := flag.Int("proof-rounds", 8, "psc shuffle-proof rounds")
	round := flag.Uint64("round", 1, "round number")
	flag.Parse()

	ln, err := wire.Listen(*listen, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("tally: %s round %d listening on %s\n", *protocol, *round, ln.Addr())

	switch *protocol {
	case "privcount":
		runPrivCount(ln, *round, *dcs, *sks, *statsSpec)
	case "psc":
		runPSC(ln, *round, *dcs, *cps, *bins, *noise, *proofRounds)
	default:
		log.Fatalf("unknown protocol %q", *protocol)
	}
}

func acceptN(ln wire.Listener, n int) []*wire.Conn {
	conns := make([]*wire.Conn, 0, n)
	for len(conns) < n {
		c, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, c)
		fmt.Printf("tally: party %d/%d connected from %s\n", len(conns), n, c.RemoteAddr())
	}
	return conns
}

func runPrivCount(ln wire.Listener, round uint64, dcs, sks int, spec string) {
	cfgStats, err := parseStats(spec)
	if err != nil {
		log.Fatal(err)
	}
	tally, err := privcount.NewTally(privcount.TallyConfig{
		Round: round, Stats: cfgStats, NumDCs: dcs, NumSKs: sks,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tally.Run(acceptN(ln, dcs+sks))
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range cfgStats {
		vals := res[st.Name]
		for i, bin := range st.Bins {
			label := bin
			if label == "" {
				label = "(value)"
			}
			iv := stats.NormalCI(vals[i], st.Sigma)
			fmt.Printf("  %s/%s = %s\n", st.Name, label, iv)
		}
	}
}

func runPSC(ln wire.Listener, round uint64, dcs, cps, bins, noise, proofRounds int) {
	tally, err := psc.NewTally(psc.Config{
		Round: round, Bins: bins, NoisePerCP: noise,
		ShuffleProofRounds: proofRounds, NumDCs: dcs, NumCPs: cps,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tally.Run(acceptN(ln, dcs+cps))
	if err != nil {
		log.Fatal(err)
	}
	iv, err := stats.UnionCardinalityCI(stats.PSCObservation{
		Reported: res.Reported, Bins: res.Bins, NoiseTrials: res.NoiseTrials,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  reported=%d bins=%d noise-trials=%d\n", res.Reported, res.Bins, res.NoiseTrials)
	fmt.Printf("  distinct count = %s\n", iv)
}

// parseStats parses "name:bin1,bin2:sigma;name2::sigma2".
func parseStats(spec string) ([]privcount.StatConfig, error) {
	var out []privcount.StatConfig
	for _, part := range strings.Split(spec, ";") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad stat spec %q (want name:bins:sigma)", part)
		}
		bins := strings.Split(fields[1], ",")
		sigma, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad sigma in %q: %v", part, err)
		}
		out = append(out, privcount.StatConfig{Name: fields[0], Bins: bins, Sigma: sigma})
	}
	return out, nil
}
