// Command tally runs a long-lived tally server: parties connect once
// over multiplexed (optionally TLS-pinned) sessions, and the server
// schedules any number of measurement rounds — sequentially or
// concurrently — over those persistent connections, printing each
// round's aggregate. It is the TS role of §3.1 grown into the daemon
// the deployment ran for months.
//
// PrivCount rounds with 16 DCs and 3 SKs counting two statistics:
//
//	tally -protocol privcount -listen 127.0.0.1:7001 -dcs 16 -sks 3 \
//	      -rounds 4 -concurrency 2 \
//	      -stats "exit-streams:initial,subsequent:3100;bytes::1e6"
//
// PSC rounds with 10 DCs and 3 CPs:
//
//	tally -protocol psc -listen 127.0.0.1:7001 -dcs 10 -cps 3 \
//	      -bins 4096 -noise 64
//
// With -tls the server generates an ephemeral identity and prints its
// SPKI fingerprint; parties pin it via their -pin flag. -abort-round N
// cancels the Nth scheduled round mid-flight (an operator cancel /
// timeout drill): the round fails, every other round and session is
// unaffected.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/stats"
	"repro/internal/wire"
)

var printMu sync.Mutex

func printf(format string, args ...any) {
	printMu.Lock()
	defer printMu.Unlock()
	fmt.Printf(format, args...)
}

func main() {
	protocol := flag.String("protocol", "privcount", "privcount or psc")
	listen := flag.String("listen", "127.0.0.1:7001", "address to accept parties on")
	useTLS := flag.Bool("tls", false, "serve TLS with an ephemeral pinned identity")
	dcs := flag.Int("dcs", 1, "number of data collectors")
	sks := flag.Int("sks", 1, "number of share keepers (privcount)")
	cps := flag.Int("cps", 1, "number of computation parties (psc)")
	statsSpec := flag.String("stats", "count::0", "privcount statistics: name:bin1,bin2:sigma;...")
	bins := flag.Int("bins", 4096, "psc hash-table size")
	noise := flag.Int("noise", 64, "psc noise coins per CP")
	proofRounds := flag.Int("proof-rounds", 8, "psc shuffle-proof rounds")
	rounds := flag.Int("rounds", 1, "number of rounds to run over the sessions")
	concurrency := flag.Int("concurrency", 1, "rounds in flight at once")
	abortRound := flag.Int("abort-round", 0, "abort the Nth scheduled round mid-flight (0: none)")
	flag.Parse()

	var tlsCfg *wire.Identity
	var ln wire.Listener
	var err error
	if *useTLS {
		tlsCfg, err = wire.GenerateIdentity("tally", 24*time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		ln, err = wire.Listen(*listen, tlsCfg.ServerTLS())
	} else {
		ln, err = wire.Listen(*listen, nil)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	printf("tally: %s listening on %s\n", *protocol, ln.Addr())
	if tlsCfg != nil {
		printf("tally: fingerprint %s\n", tlsCfg.Fingerprint())
	}

	// Phase 1: parties register their sessions once.
	numParties := *dcs + *sks
	if *protocol == "psc" {
		numParties = *dcs + *cps
	}
	eng := engine.New()
	defer eng.Close()
	for i := 0; i < numParties; i++ {
		c, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		sess := wire.NewSession(c, false)
		h, err := eng.AcceptSession(sess)
		if err != nil {
			log.Fatalf("tally: session %d: %v", i+1, err)
		}
		printf("tally: party %d/%d connected: %s %q\n", i+1, numParties, h.Role, h.Name)
	}
	nCPs, nSKs, nDCs := eng.Counts()
	switch *protocol {
	case "privcount":
		if nDCs != *dcs || nSKs != *sks {
			log.Fatalf("tally: registered %d DCs and %d SKs, want %d and %d", nDCs, nSKs, *dcs, *sks)
		}
	case "psc":
		if nDCs != *dcs || nCPs != *cps {
			log.Fatalf("tally: registered %d DCs and %d CPs, want %d and %d", nDCs, nCPs, *dcs, *cps)
		}
	default:
		log.Fatalf("unknown protocol %q", *protocol)
	}

	// Phase 2: schedule rounds over the persistent sessions, at most
	// -concurrency in flight.
	cfgStats, err := parseStats(*statsSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *concurrency < 1 {
		*concurrency = 1
	}
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	failures := make(chan int, *rounds)
	for seq := 1; seq <= *rounds; seq++ {
		sem <- struct{}{}
		var round *engine.Round
		if *protocol == "psc" {
			round, err = eng.StartPSC(psc.Config{
				Bins: *bins, NoisePerCP: *noise, ShuffleProofRounds: *proofRounds,
				NumDCs: *dcs, NumCPs: *cps,
			}, nil)
		} else {
			round, err = eng.StartPrivCount(privcount.TallyConfig{
				Stats: cfgStats, NumDCs: *dcs, NumSKs: *sks,
			}, nil)
		}
		if err != nil {
			log.Fatalf("tally: schedule round %d: %v", seq, err)
		}
		printf("tally: round %d scheduled (seq %d/%d)\n", round.ID, seq, *rounds)
		aborted := seq == *abortRound
		if aborted {
			// Cancel while the round's streams are live and its protocol
			// is (at most) registering: the round must fail, every other
			// round and session must not notice.
			round.Abort("operator abort drill")
		}
		wg.Add(1)
		go func(seq int, r *engine.Round, aborted bool) {
			defer wg.Done()
			defer func() { <-sem }()
			if *protocol == "psc" {
				res, err := r.WaitPSC()
				if err != nil {
					printf("tally: round %d failed: %v\n", r.ID, err)
					if !aborted {
						failures <- seq
					}
					return
				}
				printPSC(r.ID, res)
			} else {
				res, err := r.WaitPrivCount()
				if err != nil {
					printf("tally: round %d failed: %v\n", r.ID, err)
					if !aborted {
						failures <- seq
					}
					return
				}
				printPrivCount(r.ID, cfgStats, res)
			}
		}(seq, round, aborted)
	}
	wg.Wait()
	close(failures)
	failed := 0
	for range failures {
		failed++
	}
	drilled := 0
	if *abortRound >= 1 && *abortRound <= *rounds {
		drilled = 1
	}
	printf("tally: %d/%d rounds complete\n", *rounds-failed-drilled, *rounds)
	if failed > 0 {
		os.Exit(1)
	}
}

func printPrivCount(round uint64, cfgStats []privcount.StatConfig, res map[string][]float64) {
	printMu.Lock()
	defer printMu.Unlock()
	fmt.Printf("tally: round %d results:\n", round)
	for _, st := range cfgStats {
		vals := res[st.Name]
		for i, bin := range st.Bins {
			label := bin
			if label == "" {
				label = "(value)"
			}
			iv := stats.NormalCI(vals[i], st.Sigma)
			fmt.Printf("  round %d %s/%s = %s\n", round, st.Name, label, iv)
		}
	}
}

func printPSC(round uint64, res psc.Result) {
	iv, err := stats.UnionCardinalityCI(stats.PSCObservation{
		Reported: res.Reported, Bins: res.Bins, NoiseTrials: res.NoiseTrials,
	})
	printMu.Lock()
	defer printMu.Unlock()
	if err != nil {
		fmt.Printf("tally: round %d estimator: %v\n", round, err)
		return
	}
	fmt.Printf("tally: round %d results:\n", round)
	fmt.Printf("  round %d reported=%d bins=%d noise-trials=%d\n", round, res.Reported, res.Bins, res.NoiseTrials)
	fmt.Printf("  round %d distinct count = %s\n", round, iv)
}

// parseStats parses "name:bin1,bin2:sigma;name2::sigma2".
func parseStats(spec string) ([]privcount.StatConfig, error) {
	var out []privcount.StatConfig
	for _, part := range strings.Split(spec, ";") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad stat spec %q (want name:bins:sigma)", part)
		}
		bins := strings.Split(fields[1], ",")
		sigma, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad sigma in %q: %v", part, err)
		}
		out = append(out, privcount.StatConfig{Name: fields[0], Bins: bins, Sigma: sigma})
	}
	return out, nil
}
