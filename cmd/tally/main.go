// Command tally runs a long-lived tally server: parties connect once
// over multiplexed (optionally TLS-pinned) sessions, and the server
// schedules any number of measurement rounds — sequentially or
// concurrently — over those persistent connections, printing each
// round's aggregate. It is the TS role of §3.1 grown into the daemon
// the deployment ran for months.
//
// PrivCount rounds with 16 DCs and 3 SKs counting two statistics:
//
//	tally -protocol privcount -listen 127.0.0.1:7001 -dcs 16 -sks 3 \
//	      -rounds 4 -concurrency 2 \
//	      -stats "exit-streams:initial,subsequent:3100;bytes::1e6"
//
// PSC rounds with 10 DCs and 3 CPs:
//
//	tally -protocol psc -listen 127.0.0.1:7001 -dcs 10 -cps 3 \
//	      -bins 4096 -noise 64
//
// With -protocol both, each scheduling step starts a PSC round and a
// PrivCount round concurrently over the same DC sessions (-rounds
// counts pairs) — the deployment shape where one relay fleet serves
// unique-client counting and stream statistics at once.
//
// Operational guards: -round-deadline aborts any round that overruns
// it (a stalled party costs its round, not the fleet); -budget N
// refuses rounds beyond N times the study's per-round (ε,δ) spend, so
// the privacy guarantee survives operator enthusiasm. Each completed
// round prints its wall-clock and stream-byte metrics, and the daemon
// dumps the fleet-wide counters before exiting.
//
// Party churn: the accept loop runs for the daemon's whole life, so a
// party daemon that died can reconnect and re-register under its
// pinned identity (name/-id plus -token). With -quorum dcs=K a round
// that loses a data collector past its contribution barrier completes
// degraded — the result annotated with the absent parties — instead of
// wedging, aborting only below K contributing DCs; -rejoin-grace is
// how long an in-flight round waits for a dropped party to rejoin and
// resume before declaring it absent.
//
// With -tls the server generates an ephemeral identity and prints its
// SPKI fingerprint; parties pin it via their -pin flag. -abort-round N
// cancels the Nth scheduled round mid-flight (an operator cancel /
// timeout drill): the round fails, every other round and session is
// unaffected.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dp"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/spill"
	"repro/internal/stats"
	"repro/internal/wire"
)

var printMu sync.Mutex

func printf(format string, args ...any) {
	printMu.Lock()
	defer printMu.Unlock()
	fmt.Printf(format, args...)
}

func main() {
	protocol := flag.String("protocol", "privcount", "privcount, psc, or both")
	listen := flag.String("listen", "127.0.0.1:7001", "address to accept parties on")
	useTLS := flag.Bool("tls", false, "serve TLS with an ephemeral pinned identity")
	dcs := flag.Int("dcs", 1, "number of data collectors")
	sks := flag.Int("sks", 1, "number of share keepers (privcount)")
	cps := flag.Int("cps", 1, "number of computation parties (psc)")
	statsSpec := flag.String("stats", "count::0", "privcount statistics: name:bin1,bin2:sigma;...")
	bins := flag.Int("bins", 4096, "psc hash-table size")
	noise := flag.Int("noise", 64, "psc noise coins per CP")
	proofRounds := flag.Int("proof-rounds", 8, "psc per-block shuffle-proof rounds")
	shuffleBlock := flag.Int("shuffle-block", 0, "psc streaming-shuffle block size in elements (0: default 1024)")
	shufflePasses := flag.Int("shuffle-passes", 0, "psc shuffle passes per CP, alternating rows/columns (0: default 2)")
	rounds := flag.Int("rounds", 1, "number of rounds (or round pairs with -protocol both)")
	concurrency := flag.Int("concurrency", 1, "rounds (or pairs) in flight at once")
	abortRound := flag.Int("abort-round", 0, "abort the Nth scheduled round mid-flight (0: none)")
	roundDeadline := flag.Duration("round-deadline", 0, "abort any round not finished within this duration (0: none)")
	budget := flag.Int("budget", 0, "refuse rounds beyond N times the per-round study (ε,δ) budget (0: unlimited)")
	budgetFile := flag.String("budget-file", "", "JSON ledger persisting spent budget across restarts (written on every spend)")
	metricsAddr := flag.String("metrics-addr", "", "serve the ops metrics registry over HTTP at this address (empty: disabled)")
	spillDir := flag.String("spill-dir", "", "directory for bounded-residency tally scratch files (empty: system temp)")
	streamWindow := flag.Int("stream-window", 0, "initial per-stream flow-control window in bytes (0: wire default, 1 MiB); negotiated per direction with revision-aware peers")
	netemSpec := flag.String("netem", "", "WAN emulation profile shaping every connection (lan, wan-good, wan-tor, or key=value spec; empty: none)")
	adaptiveWindow := flag.Bool("adaptive-window", true, "autotune stream windows toward the measured bandwidth-delay product (AIMD; active only with negotiation-aware peers)")
	windowCap := flag.Int("window-cap", 0, "adaptive stream-window growth bound in bytes (0: wire default, 16 MiB)")
	rejoinGrace := flag.Duration("rejoin-grace", 0, "how long a round waits for a dropped party to rejoin before degrading (0: degrade immediately)")
	quorumSpec := flag.String("quorum", "", "DC quorum, e.g. dcs=2: rounds complete degraded with at least this many DCs (empty: all DCs required)")
	flag.Parse()

	if *spillDir != "" {
		spill.SetDir(*spillDir)
	}
	var connOpts []wire.Option
	if *streamWindow > 0 {
		connOpts = append(connOpts, wire.WithWindow(*streamWindow))
	}
	if *adaptiveWindow {
		connOpts = append(connOpts, wire.WithAdaptiveWindow(*windowCap))
	}
	if p, err := netem.ParseProfile(*netemSpec); err != nil {
		log.Fatalf("tally: %v", err)
	} else if p != nil {
		connOpts = append(connOpts, netem.WireOption(*p))
	}
	var tlsCfg *wire.Identity
	var ln wire.Listener
	var err error
	if *useTLS {
		tlsCfg, err = wire.GenerateIdentity("tally", 24*time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		ln, err = wire.Listen(*listen, tlsCfg.ServerTLS(), connOpts...)
	} else {
		ln, err = wire.Listen(*listen, nil, connOpts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	printf("tally: %s listening on %s\n", *protocol, ln.Addr())
	if tlsCfg != nil {
		printf("tally: fingerprint %s\n", tlsCfg.Fingerprint())
	}

	// Phase 1: parties register their sessions once.
	var numParties int
	switch *protocol {
	case "privcount":
		numParties = *dcs + *sks
	case "psc":
		numParties = *dcs + *cps
	case "both":
		numParties = *dcs + *sks + *cps
	default:
		log.Fatalf("unknown protocol %q", *protocol)
	}
	eng := engine.New()
	defer eng.Close()
	if *roundDeadline > 0 {
		eng.SetRoundDeadline(*roundDeadline)
	}
	if *rejoinGrace > 0 {
		eng.SetRejoinGrace(*rejoinGrace)
	}
	quorum, err := engine.ParseQuorum(*quorumSpec)
	if err != nil {
		log.Fatal(err)
	}
	eng.SetQuorum(quorum)
	if *budget > 0 || *budgetFile != "" {
		// The paper's per-round spend, capped at N rounds' worth by
		// sequential composition; the engine refuses the (N+1)th round.
		// The ledger file makes the spend durable: a restarted daemon
		// resumes the epoch where it left off instead of forgetting
		// what it already released.
		acct := dp.StudyAccountant()
		if *budget > 0 {
			per := dp.StudyParams()
			total := dp.Params{Epsilon: per.Epsilon * float64(*budget), Delta: per.Delta * float64(*budget)}
			if err := acct.SetBudget(total); err != nil {
				log.Fatal(err)
			}
			printf("tally: privacy budget capped at %d rounds (ε=%.4g, δ=%.3g)\n", *budget, total.Epsilon, total.Delta)
		}
		if *budgetFile != "" {
			if err := acct.SetLedger(*budgetFile); err != nil {
				log.Fatal(err)
			}
			if n := acct.Rounds(); n > 0 {
				printf("tally: budget ledger %s resumes with %d rounds already spent\n", *budgetFile, n)
			}
		}
		eng.SetAccountant(acct)
	}
	if *metricsAddr != "" {
		addr, _, err := metrics.Serve(*metricsAddr, metrics.Default())
		if err != nil {
			log.Fatal(err)
		}
		printf("tally: metrics on http://%s/metrics\n", addr)
	}
	// The accept loop runs for the daemon's whole life: after the fleet
	// assembles, further sessions are rejoining daemons re-registering
	// under their pinned identities (the engine rebinds them,
	// latest-wins) — or rejected token mismatches, whose sessions are
	// closed.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed at exit
			}
			go func() {
				sess := wire.NewSession(c, false)
				h, err := eng.AcceptSession(sess)
				if err != nil {
					printf("tally: session rejected: %v\n", err)
					sess.Close()
					return
				}
				nCPs, nSKs, nDCs := eng.Counts()
				printf("tally: party connected: %s %q (%d/%d registered)\n",
					h.Role, h.Name, nCPs+nSKs+nDCs, numParties)
			}()
		}
	}()
	wantSKs, wantCPs := *sks, *cps
	if *protocol == "psc" {
		wantSKs = 0
	}
	if *protocol == "privcount" {
		wantCPs = 0
	}
	if err := eng.WaitParties(wantCPs, wantSKs, *dcs, 0); err != nil {
		log.Fatal(err)
	}
	printf("tally: fleet assembled: %d parties\n", numParties)

	// Phase 2: schedule rounds over the persistent sessions, at most
	// -concurrency scheduling steps in flight.
	cfgStats, err := parseStats(*statsSpec)
	if err != nil {
		log.Fatal(err)
	}
	startPSC := func() (*engine.Round, error) {
		return eng.StartPSC(psc.Config{
			Bins: *bins, NoisePerCP: *noise, ShuffleProofRounds: *proofRounds,
			ShuffleBlockElems: *shuffleBlock, ShufflePasses: *shufflePasses,
			NumDCs: *dcs, NumCPs: *cps,
		}, nil)
	}
	startPriv := func() (*engine.Round, error) {
		return eng.StartPrivCount(privcount.TallyConfig{
			Stats: cfgStats, NumDCs: *dcs, NumSKs: *sks,
		}, nil)
	}

	if *concurrency < 1 {
		*concurrency = 1
	}
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	var failed, refused, drilled int
	var countMu sync.Mutex
	for seq := 1; seq <= *rounds; seq++ {
		sem <- struct{}{}
		var starts []func() (*engine.Round, error)
		switch *protocol {
		case "psc":
			starts = []func() (*engine.Round, error){startPSC}
		case "privcount":
			starts = []func() (*engine.Round, error){startPriv}
		case "both":
			starts = []func() (*engine.Round, error){startPSC, startPriv}
		}
		var stepRounds []*engine.Round
		for _, start := range starts {
			round, err := start()
			if errors.Is(err, dp.ErrBudgetExhausted) {
				printf("tally: round refused (seq %d/%d): %v\n", seq, *rounds, err)
				refused++
				continue
			}
			if err != nil {
				log.Fatalf("tally: schedule round (seq %d): %v", seq, err)
			}
			printf("tally: round %d scheduled: %s (seq %d/%d)\n", round.ID, round.Label, seq, *rounds)
			stepRounds = append(stepRounds, round)
		}
		aborted := seq == *abortRound && len(stepRounds) > 0
		if aborted {
			// Cancel while the streams are live and the protocol is (at
			// most) registering: the aborted rounds must fail, every
			// other round and session must not notice.
			for _, r := range stepRounds {
				r.Abort("operator abort drill")
			}
			countMu.Lock()
			drilled += len(stepRounds)
			countMu.Unlock()
		}
		wg.Add(1)
		go func(seq int, rs []*engine.Round, aborted bool) {
			defer wg.Done()
			defer func() { <-sem }()
			var stepWG sync.WaitGroup
			for _, r := range rs {
				stepWG.Add(1)
				go func(r *engine.Round) {
					defer stepWG.Done()
					err := waitAndPrint(r, cfgStats)
					if err != nil && !aborted {
						countMu.Lock()
						failed++
						countMu.Unlock()
					}
				}(r)
			}
			stepWG.Wait()
		}(seq, stepRounds, aborted)
	}
	wg.Wait()
	total := *rounds * len(protocolLabels(*protocol))
	printf("tally: %d/%d rounds complete\n", total-failed-refused-drilled, total)
	var dump strings.Builder
	if err := eng.Metrics().Dump(&dump); err == nil && dump.Len() > 0 {
		printMu.Lock()
		fmt.Println("tally: fleet metrics:")
		for _, line := range strings.Split(strings.TrimRight(dump.String(), "\n"), "\n") {
			fmt.Println("  " + line)
		}
		printMu.Unlock()
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func protocolLabels(protocol string) []string {
	if protocol == "both" {
		return []string{engine.LabelPSC, engine.LabelPrivCount}
	}
	return []string{protocol}
}

// waitAndPrint blocks on one round, prints its result or failure, and
// its resource metrics either way.
func waitAndPrint(r *engine.Round, cfgStats []privcount.StatConfig) error {
	var err error
	if r.Label == engine.LabelPSC {
		var res psc.Result
		res, err = r.WaitPSC()
		if err == nil {
			printPSC(r.ID, res)
		}
	} else {
		var res map[string][]float64
		res, err = r.WaitPrivCount()
		if err == nil {
			printPrivCount(r.ID, cfgStats, res)
		}
	}
	if err != nil {
		printf("tally: round %d failed: %v\n", r.ID, err)
	}
	if absent := r.Absent(); len(absent) > 0 && err == nil {
		printf("tally: round %d degraded: absent parties: %s\n", r.ID, strings.Join(absent, ", "))
	}
	st := r.Stats()
	printf("tally: round %d metrics: wall=%.3fs sent=%dB recv=%dB\n",
		r.ID, st.Seconds, st.BytesSent, st.BytesRecv)
	return err
}

func printPrivCount(round uint64, cfgStats []privcount.StatConfig, res map[string][]float64) {
	printMu.Lock()
	defer printMu.Unlock()
	fmt.Printf("tally: round %d results:\n", round)
	for _, st := range cfgStats {
		vals := res[st.Name]
		for i, bin := range st.Bins {
			label := bin
			if label == "" {
				label = "(value)"
			}
			iv := stats.NormalCI(vals[i], st.Sigma)
			fmt.Printf("  round %d %s/%s = %s\n", round, st.Name, label, iv)
		}
	}
}

func printPSC(round uint64, res psc.Result) {
	iv, err := stats.UnionCardinalityCI(stats.PSCObservation{
		Reported: res.Reported, Bins: res.Bins, NoiseTrials: res.NoiseTrials,
	})
	printMu.Lock()
	defer printMu.Unlock()
	if err != nil {
		fmt.Printf("tally: round %d estimator: %v\n", round, err)
		return
	}
	fmt.Printf("tally: round %d results:\n", round)
	fmt.Printf("  round %d reported=%d bins=%d noise-trials=%d\n", round, res.Reported, res.Bins, res.NoiseTrials)
	fmt.Printf("  round %d distinct count = %s\n", round, iv)
}

// parseStats parses "name:bin1,bin2:sigma;name2::sigma2".
func parseStats(spec string) ([]privcount.StatConfig, error) {
	var out []privcount.StatConfig
	for _, part := range strings.Split(spec, ";") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad stat spec %q (want name:bins:sigma)", part)
		}
		bins := strings.Split(fields[1], ",")
		sigma, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad sigma in %q: %v", part, err)
		}
		out = append(out, privcount.StatConfig{Name: fields[0], Bins: bins, Sigma: sigma})
	}
	return out, nil
}
