package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/simtime"
)

// TestRendezvousVersionSplit: ~20% of rendezvous circuits are v3 (the
// unmeasurable-by-address population the paper notes in §6.1).
func TestRendezvousVersionSplit(t *testing.T) {
	d := newDriver(t, 1000, 31)
	var v2, v3 int
	d.Net.Bus.Subscribe(func(e event.Event) {
		if r, ok := e.(*event.RendezvousEnd); ok {
			if r.Version == 3 {
				v3++
			} else {
				v2++
			}
		}
	})
	d.Run(1)
	total := v2 + v3
	if total == 0 {
		t.Fatal("no rendezvous events")
	}
	share := float64(v3) / float64(total)
	if math.Abs(share-0.2) > 0.06 {
		t.Fatalf("v3 share %v, want ~0.2", share)
	}
}

// TestOnionooDominatesPrimaryStreams: the headline §4.3 anomaly must be
// visible directly in the event stream.
func TestOnionooDominatesPrimaryStreams(t *testing.T) {
	d := newDriver(t, 1000, 32)
	var primary, onionoo int
	d.Net.Bus.Subscribe(func(e event.Event) {
		s, ok := e.(*event.StreamEnd)
		if !ok || !s.IsInitial || s.Target != event.TargetHostname || !s.IsWebPort() {
			return
		}
		primary++
		if s.Hostname == "onionoo.torproject.org" {
			onionoo++
		}
	})
	d.Run(1)
	if primary == 0 {
		t.Fatal("no primary streams")
	}
	share := float64(onionoo) / float64(primary)
	if share < 0.34 || share > 0.46 {
		t.Fatalf("onionoo share %v, want ~0.40", share)
	}
}

// TestLongTailProducesFreshSLDs: non-Alexa hostnames must be plentiful
// and mostly unique — the Table 2 long tail.
func TestLongTailProducesFreshSLDs(t *testing.T) {
	s, err := NewDomainSampler(DefaultDomainMixture(), testList)
	if err != nil {
		t.Fatal(err)
	}
	r := simtime.Rand(9, "tail")
	tail := map[string]int{}
	const draws = 50000
	tailDraws := 0
	for i := 0; i < draws; i++ {
		h := s.Hostname(r)
		if strings.HasPrefix(h, "lt") && strings.ContainsRune(h, '.') {
			tail[h]++
			tailDraws++
		}
	}
	if tailDraws < draws/10 {
		t.Fatalf("long-tail draws %d of %d, want ~20%%", tailDraws, draws)
	}
	// Most long-tail domains are seen once.
	singletons := 0
	for _, c := range tail {
		if c == 1 {
			singletons++
		}
	}
	if float64(singletons)/float64(len(tail)) < 0.5 {
		t.Fatalf("long tail not heavy enough: %d singletons of %d", singletons, len(tail))
	}
}

// TestAlexaDecadeCalibration: the organic rank distribution must be
// flat-headed — rank (0,10] carries far less than deeper decades,
// matching Figure 2's measured shape.
func TestAlexaDecadeCalibration(t *testing.T) {
	mix := DefaultDomainMixture()
	// Isolate the organic Alexa component.
	mix.OnionooShare = 0
	mix.AmazonWWWShare = 0
	mix.AmazonSibShare = 0
	mix.GoogleComShare = 0
	mix.GoogleSibShare = 0
	mix.DuckShare = 0
	mix.LongTailShare = 0
	mix.WWWShare = 0
	s, err := NewDomainSampler(mix, testList)
	if err != nil {
		t.Fatal(err)
	}
	r := simtime.Rand(10, "decades")
	counts := make([]int, 6)
	const draws = 100000
	psl := testList.PSL()
	for i := 0; i < draws; i++ {
		h := s.Hostname(r)
		dom, ok := psl.RegisteredDomain(h)
		if !ok {
			dom = h
		}
		rank, ok := testList.Rank(dom)
		if !ok {
			t.Fatalf("organic draw %q not on the list", h)
		}
		switch {
		case rank <= 10:
			counts[0]++
		case rank <= 100:
			counts[1]++
		case rank <= 1000:
			counts[2]++
		case rank <= 10000:
			counts[3]++
		case rank <= 100000:
			counts[4]++
		default:
			counts[5]++
		}
	}
	// (0,10] must be tiny relative to (10k,100k].
	if counts[0]*5 > counts[4] {
		t.Fatalf("head too heavy: decades %v", counts)
	}
	// Every available decade gets some mass.
	for i, c := range counts[:5] {
		if c == 0 {
			t.Fatalf("decade %d empty: %v", i, counts)
		}
	}
}
