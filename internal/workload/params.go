// Package workload drives the Tor usage models that generate the event
// streams the paper measures: client arrival and churn, guard-side
// connection/circuit/byte activity, exit-side streams with a calibrated
// destination-domain mixture, and onion-service publish/fetch/
// rendezvous behavior (including the botnet-style failed fetches the
// paper discovers).
//
// All rate parameters are expressed as *network-wide daily totals* at
// the scale the paper measured (January–May 2018); Scale divides the
// client population so a full virtual day runs in seconds while every
// observation fraction stays at its paper value.
package workload

import (
	"fmt"

	"repro/internal/onion"
)

// MiB in bytes.
const MiB = 1 << 20

// Params calibrates the workload. Defaults reproduce the paper's
// network-wide findings; see EXPERIMENTS.md for the calibration map.
type Params struct {
	// Scale divides all population sizes. Scale=100 simulates 1% of
	// Tor; observation fractions are unaffected.
	Scale float64
	Seed  uint64

	// --- client population (§5) ---

	// SelectiveClients is the daily population choosing Guards guards
	// (Table 3: ~8.8M at g=3).
	SelectiveClients float64
	// PromiscuousClients contact every guard (Table 3: ~18k).
	PromiscuousClients float64
	// PromiscuousActivity multiplies a promiscuous client's daily
	// activity relative to a normal client: bridges and tor2web
	// instances aggregate many users, which is also what guarantees
	// they are observed at every guard every day.
	PromiscuousActivity float64
	// Guards is the number of guards per selective client (3: one data
	// guard plus two extra directory guards).
	Guards int
	// ChurnPerDay is the fraction of clients replaced by fresh IPs each
	// day (§5.1: IPs turn over almost twice in 4 days ⇒ ~0.38).
	ChurnPerDay float64
	// BlockedCountry marks clients from this country as able to build
	// only directory circuits (the UAE anomaly, §5.2).
	BlockedCountry string
	// BlockedDirFactor multiplies directory circuits for blocked
	// clients (repeated directory fetches).
	BlockedDirFactor float64
	// BlockedByteFactor multiplies bytes for blocked clients.
	BlockedByteFactor float64

	// --- guard-side activity (Table 4, Figure 4) ---

	// DataConnsPerClient and DirConnsPerGuard produce the 148M daily
	// connections (16.8 per client).
	DataConnsPerClient float64
	DirConnsPerGuard   float64
	// DataCircuitsPerClient and DirCircuitsPerGuard produce the 1.286G
	// daily circuits (146 per client, DDoS-era inflation included).
	DataCircuitsPerClient float64
	DirCircuitsPerGuard   float64
	// EntryMiBMean is the mean daily entry traffic per client in MiB
	// (517 TiB/day over 8.8M clients ≈ 61.6 MiB); log-normal with
	// EntryLogSigma.
	EntryMiBMean  float64
	EntryLogSigma float64

	// --- exit-side activity (§4) ---

	// InitialStreamsPerClient: 105M initial streams/day over 8.8M
	// clients (Figure 1a: initial ≈ 5% of 2.1G streams).
	InitialStreamsPerClient float64
	// SubsequentPerInitial: embedded-resource streams multiplexed on
	// the same circuit (~19, giving 2.1G total).
	SubsequentPerInitial float64
	// Stream-type shares for Figure 1b/1c. Hostname+web dominates.
	IPv4Share, IPv6Share float64
	NonWebShare          float64
	// StreamKiBMean sizes per-stream transfer (log-normal).
	StreamKiBMean  float64
	StreamLogSigma float64

	// --- destination-domain mixture (Figures 2, 3; Table 2) ---
	Domains DomainMixture

	// --- onion services (§6) ---

	// OnionServices is the live v2 population (Table 6: ~70,826).
	OnionServices float64
	// DeadAddresses is the stale-address pool botnets query.
	DeadAddresses float64
	// PublicShare is the ahmia-indexed share of fetch volume (56.8%).
	PublicShare float64
	// PublishRoundsPerDay is descriptor republish rounds per service.
	PublishRoundsPerDay int
	// FetchesPerDay is total descriptor fetch attempts (134M).
	FetchesPerDay float64
	// FetchFailShare is the failed share (90.9%), split between
	// missing descriptors and malformed requests.
	FetchFailShare     float64
	MalformedFailShare float64
	// RendCircuitsPerDay is total rendezvous circuits (366M; every
	// completed rendezvous counts twice, §6.3).
	RendCircuitsPerDay float64
	// Rend is the outcome and payload model (Table 8).
	Rend onion.RendOutcomeModel
}

// DefaultParams returns the paper-calibrated workload at the given
// scale divisor.
func DefaultParams(scale float64, seed uint64) Params {
	return Params{
		Scale: scale,
		Seed:  seed,

		SelectiveClients:    8.8e6,
		PromiscuousClients:  18e3,
		PromiscuousActivity: 50,
		Guards:              3,
		ChurnPerDay:         0.383,
		BlockedCountry:      "AE",
		BlockedDirFactor:    25,
		BlockedByteFactor:   0.03,

		// 16.8 connections/client/day: 13 to the data guard plus 1.27 to
		// each of the three directory guards (the data guard doubles as
		// a directory guard).
		DataConnsPerClient: 13.0,
		DirConnsPerGuard:   1.27,
		// 146 circuits/client/day: 131.4 data + 3 × 4.87 directory.
		DataCircuitsPerClient: 131.4,
		DirCircuitsPerGuard:   4.87,
		EntryMiBMean:          61.6,
		EntryLogSigma:         1.5,

		InitialStreamsPerClient: 11.93,
		SubsequentPerInitial:    19.0,
		IPv4Share:               0.003,
		IPv6Share:               0.002,
		NonWebShare:             0.005,
		StreamKiBMean:           250,
		StreamLogSigma:          1.8,

		Domains: DefaultDomainMixture(),

		OnionServices:       70826,
		DeadAddresses:       400000,
		PublicShare:         0.568,
		PublishRoundsPerDay: 24,
		FetchesPerDay:       134e6,
		FetchFailShare:      0.909,
		MalformedFailShare:  0.08,
		RendCircuitsPerDay:  366e6,
		Rend:                onion.DefaultRendOutcomeModel(),
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Scale < 1 {
		return fmt.Errorf("workload: scale must be >= 1")
	}
	if p.SelectiveClients <= 0 {
		return fmt.Errorf("workload: need a positive client population")
	}
	if p.Guards < 1 {
		return fmt.Errorf("workload: clients need at least one guard")
	}
	if p.ChurnPerDay < 0 || p.ChurnPerDay > 1 {
		return fmt.Errorf("workload: churn must be in [0,1]")
	}
	if p.FetchFailShare < 0 || p.FetchFailShare > 1 {
		return fmt.Errorf("workload: fetch-fail share must be in [0,1]")
	}
	return p.Domains.Validate()
}

// scaled returns v divided by the scale factor.
func (p Params) scaled(v float64) float64 { return v / p.Scale }
