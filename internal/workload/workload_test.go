package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/alexa"
	"repro/internal/asn"
	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/simtime"
	"repro/internal/tornet"
)

var (
	testList = alexa.Generate(alexa.Config{N: 100_000, Seed: 42})
	testGeo  = geo.Build(1)
	testASN  = asn.Build(testGeo, 1)
)

func newDriver(t *testing.T, scale float64, seed uint64) *Driver {
	t.Helper()
	cons, err := tornet.NewConsensus(tornet.DefaultConsensusConfig())
	if err != nil {
		t.Fatal(err)
	}
	net := tornet.NewNetwork(cons, testGeo, testASN)
	d, err := New(DefaultParams(scale, seed), net, testList)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

type collector struct {
	streams []*event.StreamEnd
	conns   []*event.ConnectionEnd
	circs   []*event.CircuitEnd
	pubs    []*event.DescPublished
	fetches []*event.DescFetched
	rends   []*event.RendezvousEnd
}

func collect(d *Driver) *collector {
	c := &collector{}
	d.Net.Bus.Subscribe(func(e event.Event) {
		switch v := e.(type) {
		case *event.StreamEnd:
			c.streams = append(c.streams, v)
		case *event.ConnectionEnd:
			c.conns = append(c.conns, v)
		case *event.CircuitEnd:
			c.circs = append(c.circs, v)
		case *event.DescPublished:
			c.pubs = append(c.pubs, v)
		case *event.DescFetched:
			c.fetches = append(c.fetches, v)
		case *event.RendezvousEnd:
			c.rends = append(c.rends, v)
		}
	})
	return c
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(100, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams(100, 1)
	bad.Scale = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("scale<1 must fail")
	}
	bad2 := DefaultParams(100, 1)
	bad2.ChurnPerDay = 2
	if err := bad2.Validate(); err == nil {
		t.Fatal("churn>1 must fail")
	}
	bad3 := DefaultParams(100, 1)
	bad3.Domains.OnionooShare = 0.9
	if err := bad3.Validate(); err == nil {
		t.Fatal("overweight mixture must fail")
	}
}

func TestDomainMixtureShares(t *testing.T) {
	s, err := NewDomainSampler(DefaultDomainMixture(), testList)
	if err != nil {
		t.Fatal(err)
	}
	r := simtime.Rand(1, "mix")
	psl := testList.PSL()
	counts := map[string]int{}
	const draws = 200000
	alexaHits := 0
	for i := 0; i < draws; i++ {
		h := s.Hostname(r)
		if h == "onionoo.torproject.org" {
			counts["onionoo"]++
		}
		reg, ok := psl.RegisteredDomain(h)
		if ok {
			if reg == "amazon.com" {
				counts["amazon.com"]++
			}
			if strings.Contains(reg, "amazon") {
				counts["amazon-family"]++
			}
			if testList.Contains(reg) || reg == "torproject.org" {
				alexaHits++
			}
		}
	}
	if got := float64(counts["onionoo"]) / draws; math.Abs(got-0.40) > 0.01 {
		t.Fatalf("onionoo share %v, want 0.40", got)
	}
	if got := float64(counts["amazon-family"]) / draws; math.Abs(got-0.097) > 0.01 {
		t.Fatalf("amazon family share %v, want ~0.097 (paper: 9.7%%)", got)
	}
	// ~80% of primary domains are on the Alexa list (§4.3).
	got := float64(alexaHits) / draws
	if got < 0.72 || got > 0.88 {
		t.Fatalf("alexa share %v, want ~0.80", got)
	}
}

func TestRunDayEventStructure(t *testing.T) {
	d := newDriver(t, 4000, 7)
	c := collect(d)
	d.Run(1)

	if len(c.streams) == 0 || len(c.conns) == 0 || len(c.circs) == 0 {
		t.Fatalf("missing event families: streams=%d conns=%d circs=%d",
			len(c.streams), len(c.conns), len(c.circs))
	}
	if len(c.fetches) == 0 || len(c.rends) == 0 {
		t.Fatalf("missing onion events: fetches=%d rends=%d", len(c.fetches), len(c.rends))
	}

	// Initial streams ≈ 5% of all streams (Figure 1a).
	initial := 0
	for _, s := range c.streams {
		if s.IsInitial {
			initial++
		}
	}
	frac := float64(initial) / float64(len(c.streams))
	if frac < 0.03 || frac > 0.08 {
		t.Fatalf("initial stream share %v, want ~0.05", frac)
	}

	// Subsequent streams reuse their initial stream's circuit.
	circuits := map[uint64]int{}
	for _, s := range c.streams {
		circuits[s.CircuitID]++
	}
	if len(circuits) >= len(c.streams) {
		t.Fatal("no circuit reuse observed")
	}

	// Fetch failures dominate (Table 7: 90.9%).
	failed := 0
	for _, f := range c.fetches {
		if f.Outcome != event.FetchOK {
			failed++
		}
	}
	failRate := float64(failed) / float64(len(c.fetches))
	if failRate < 0.78 || failRate > 0.98 {
		t.Fatalf("fetch failure rate %v, want ~0.909", failRate)
	}

	// Rendezvous outcomes: expiry dominates (Table 8).
	expired := 0
	for _, r := range c.rends {
		if r.Outcome == event.RendExpired {
			expired++
		}
	}
	expRate := float64(expired) / float64(len(c.rends))
	if expRate < 0.75 || expRate > 0.95 {
		t.Fatalf("rend expiry rate %v, want ~0.87", expRate)
	}
}

func TestEventsOnlyAtMeasuringRelays(t *testing.T) {
	d := newDriver(t, 4000, 8)
	measuring := map[event.RelayID]bool{}
	for _, id := range d.Net.Consensus.MeasuringRelays() {
		measuring[id] = true
	}
	bad := 0
	d.Net.Bus.Subscribe(func(e event.Event) {
		if !measuring[e.Observer()] {
			bad++
		}
	})
	d.Run(1)
	if bad != 0 {
		t.Fatalf("%d events at non-measuring relays", bad)
	}
}

func TestChurnReplacesClients(t *testing.T) {
	d := newDriver(t, 4000, 9)
	before := map[string]bool{}
	for _, c := range d.Clients() {
		before[c.IP.String()] = true
	}
	d.Run(2) // day 1 applies churn
	replaced := 0
	for _, c := range d.Clients() {
		if !before[c.IP.String()] {
			replaced++
		}
	}
	frac := float64(replaced) / float64(len(d.Clients()))
	if math.Abs(frac-d.P.ChurnPerDay) > 0.08 {
		t.Fatalf("churned fraction %v, want ~%v", frac, d.P.ChurnPerDay)
	}
}

func TestBlockedCountryCircuitSkew(t *testing.T) {
	// Blocked (AE) clients must show a much higher directory-circuit
	// to connection ratio than others — the Figure 4 anomaly.
	d := newDriver(t, 1000, 10)
	var aeDir, aeData, otherDir, otherData float64
	d.Net.Bus.Subscribe(func(e event.Event) {
		ce, ok := e.(*event.CircuitEnd)
		if !ok {
			return
		}
		if ce.Country == "AE" {
			if ce.Kind == event.CircuitDirectory {
				aeDir++
			} else {
				aeData++
			}
		} else {
			if ce.Kind == event.CircuitDirectory {
				otherDir++
			} else {
				otherData++
			}
		}
	})
	d.Run(1)
	if aeDir == 0 {
		t.Skip("no AE clients observed at this scale/seed")
	}
	aeRatio := aeDir / (aeData + 1)
	otherRatio := otherDir / (otherData + 1)
	if aeRatio < otherRatio*5 {
		t.Fatalf("AE dir-circuit skew %v vs %v; blocked clients must rebuild directory circuits", aeRatio, otherRatio)
	}
}

func TestPromiscuousClientsSeenEverywhere(t *testing.T) {
	d := newDriver(t, 400, 11)
	// Find one promiscuous client and count distinct guards observing it.
	var promIP string
	for _, c := range d.Clients() {
		if c.Promiscuous {
			promIP = c.IP.String()
			break
		}
	}
	if promIP == "" {
		t.Skip("no promiscuous clients at this scale")
	}
	guards := map[event.RelayID]bool{}
	d.Net.Bus.Subscribe(func(e event.Event) {
		if conn, ok := e.(*event.ConnectionEnd); ok && conn.ClientIP.String() == promIP {
			guards[conn.Observer()] = true
		}
	})
	d.Run(1)
	if len(guards) < len(d.Net.Consensus.MeasuringGuards())/2 {
		t.Fatalf("promiscuous client seen at %d guards, want most of %d",
			len(guards), len(d.Net.Consensus.MeasuringGuards()))
	}
}

func TestGuardObservationScalesWithFraction(t *testing.T) {
	// Doubling the guard fraction should roughly double the number of
	// distinct client IPs observed — the effect Table 3 exploits.
	countIPs := func(guardFrac float64, seed uint64) int {
		cfg := tornet.DefaultConsensusConfig()
		cfg.Fractions.Guard = guardFrac
		cons, err := tornet.NewConsensus(cfg)
		if err != nil {
			t.Fatal(err)
		}
		net := tornet.NewNetwork(cons, testGeo, testASN)
		d, err := New(DefaultParams(1000, seed), net, testList)
		if err != nil {
			t.Fatal(err)
		}
		ips := map[string]bool{}
		net.Bus.Subscribe(func(e event.Event) {
			if conn, ok := e.(*event.ConnectionEnd); ok {
				ips[conn.ClientIP.String()] = true
			}
		})
		d.Run(1)
		return len(ips)
	}
	small := countIPs(0.0042, 21)
	large := countIPs(0.0088, 22)
	if small == 0 {
		t.Fatal("no IPs observed at small fraction")
	}
	ratio := float64(large) / float64(small)
	if ratio < 1.4 || ratio > 2.8 {
		t.Fatalf("unique-IP ratio %v for 0.88%%/0.42%% weights; expected ~2", ratio)
	}
}

func TestDriverString(t *testing.T) {
	d := newDriver(t, 4000, 12)
	if !strings.Contains(d.String(), "workload(") {
		t.Fatal(d.String())
	}
}
