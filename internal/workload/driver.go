package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/alexa"
	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/onion"
	"repro/internal/simtime"
	"repro/internal/tornet"
)

// Driver generates the network's daily activity and publishes the
// events the measuring relays observe.
type Driver struct {
	P      Params
	Net    *tornet.Network
	Alexa  *alexa.List
	Onions *onion.Population

	domains *DomainSampler

	countryPick *simtime.WeightedChoice
	countries   []string

	clients []*tornet.Client

	rng *rand.Rand
}

// New assembles a driver. The onion population is built from the
// params, scaled.
func New(p Params, net *tornet.Network, list *alexa.List) (*Driver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sampler, err := NewDomainSampler(p.Domains, list)
	if err != nil {
		return nil, err
	}
	ring := onion.NewRing(net.Consensus)
	// Address pools keep a floor so the set of ring positions stays
	// dense enough for stable observation rates at high scale factors;
	// unique-count experiments run at scales where the floor is moot.
	pop := onion.NewPopulation(onion.PopulationConfig{
		LiveServices:  atLeastN(p.scaled(p.OnionServices), 300),
		DeadAddresses: atLeastN(p.scaled(p.DeadAddresses), 3000),
		PublicShare:   p.PublicShare,
		FetchZipf:     0.7,
		Seed:          p.Seed,
	}, ring)

	countries := geo.Countries()
	weights := make([]float64, len(countries))
	for i, c := range countries {
		weights[i] = geo.ClientWeight(c)
	}

	d := &Driver{
		P:           p,
		Net:         net,
		Alexa:       list,
		Onions:      pop,
		domains:     sampler,
		countryPick: simtime.NewWeightedChoice(weights),
		countries:   countries,
		rng:         simtime.Rand(p.Seed, "workload"),
	}
	d.buildPopulation()
	return d, nil
}

func atLeast1(v float64) int { return atLeastN(v, 1) }

func atLeastN(v float64, floor int) int {
	n := int(v)
	if n < floor {
		n = floor
	}
	return n
}

// buildPopulation creates the day-zero client set.
func (d *Driver) buildPopulation() {
	selective := atLeast1(d.P.scaled(d.P.SelectiveClients))
	promiscuous := int(d.P.scaled(d.P.PromiscuousClients))
	d.clients = make([]*tornet.Client, 0, selective+promiscuous)
	for i := 0; i < selective; i++ {
		d.clients = append(d.clients, d.newClient(false))
	}
	for i := 0; i < promiscuous; i++ {
		d.clients = append(d.clients, d.newClient(true))
	}
}

func (d *Driver) newClient(promiscuous bool) *tornet.Client {
	country := d.countries[d.countryPick.Pick(d.rng)]
	c := d.Net.NewClient(d.rng, country)
	c.Promiscuous = promiscuous
	if country == d.P.BlockedCountry {
		c.Blocked = true
	}
	return c
}

// Clients returns the current population (for tests).
func (d *Driver) Clients() []*tornet.Client { return d.clients }

// Run schedules and executes the given number of whole virtual days.
func (d *Driver) Run(days int) {
	for day := 0; day < days; day++ {
		day := day
		d.Net.Sched.At(simtime.Time(day)*simtime.Day, func(simtime.Time) {
			if day > 0 {
				d.churn()
			}
			d.runGuardActivity(day)
			d.runExitStreams(day)
			d.runOnionPublishes(day)
			d.runOnionFetches(day)
			d.runRendezvous(day)
		})
	}
	d.Net.Sched.Run(simtime.Time(days) * simtime.Day)
}

// churn replaces a fraction of clients with fresh IPs, the §5.1 client
// turnover: each replaced slot keeps its behavioral role but arrives
// from a new address.
func (d *Driver) churn() {
	for i, c := range d.clients {
		if d.rng.Float64() < d.P.ChurnPerDay {
			d.clients[i] = d.newClient(c.Promiscuous)
		}
	}
}

// runGuardActivity emits one day of connection and circuit events at
// measuring guards, plus the per-client byte volumes (Table 4, Table 5,
// Figure 4).
func (d *Driver) runGuardActivity(day int) {
	p := d.P
	guardFrac := d.Net.Consensus.Fractions().Guard
	numGuards := float64(len(d.Net.Consensus.MeasuringGuards()))
	for _, c := range d.clients {
		obs := d.Net.ObservedGuards(c)
		if len(obs) == 0 {
			continue
		}
		dirFactor := 1.0
		dataFactor := 1.0
		connFactor := 1.0
		byteFactor := 1.0
		if c.Blocked {
			dirFactor = p.BlockedDirFactor
			dataFactor = 0.02
			byteFactor = p.BlockedByteFactor
		}
		if c.Promiscuous {
			// A bridge-like client spreads PromiscuousActivity× the
			// normal load across every guard in the network; each
			// measuring guard sees its weighted per-guard share, so the
			// network-wide inference stays unbiased while the client is
			// still observed at every guard essentially every day.
			share := p.PromiscuousActivity * guardFrac / numGuards
			dirFactor *= share
			dataFactor *= share
			connFactor *= share
			byteFactor *= share
		}
		// Daily entry volume, heavy-tailed, mostly via the data guard.
		mu := math.Log(p.EntryMiBMean*MiB) - p.EntryLogSigma*p.EntryLogSigma/2
		dayBytes := simtime.LogNormal(d.rng, mu, p.EntryLogSigma) * byteFactor

		for _, g := range obs {
			if g.Data {
				conns := 1 + simtime.Poisson(d.rng, p.DataConnsPerClient*connFactor-1)
				circs := simtime.Poisson(d.rng, p.DataCircuitsPerClient*dataFactor)
				recv := uint64(dayBytes * 6 / 7)
				sent := uint64(dayBytes / 7)
				for i := 0; i < conns; i++ {
					at := d.timeInDay(day)
					share := uint32(circs / max(conns, 1))
					d.Net.EmitConnection(at, g.Relay, c, share, sent/uint64(max(conns, 1)), recv/uint64(max(conns, 1)))
				}
				for i := 0; i < circs; i++ {
					streams := uint32(simtime.Poisson(d.rng, 2))
					d.Net.EmitCircuit(d.timeInDay(day), g.Relay, c, event.CircuitData,
						streams, sent/uint64(max(circs, 1)), recv/uint64(max(circs, 1)))
				}
			}
			if g.Directory {
				conns := simtime.Poisson(d.rng, p.DirConnsPerGuard)
				circs := simtime.Poisson(d.rng, p.DirCircuitsPerGuard*dirFactor)
				for i := 0; i < conns; i++ {
					d.Net.EmitConnection(d.timeInDay(day), g.Relay, c, uint32(circs/max(conns, 1)), 2048, 512*1024)
				}
				for i := 0; i < circs; i++ {
					d.Net.EmitCircuit(d.timeInDay(day), g.Relay, c, event.CircuitDirectory, 1, 1024, 256*1024)
				}
			}
		}
	}
}

// runExitStreams emits one day of exit-side stream events: only the
// streams whose circuits exit through a measuring relay, drawn
// per-circuit from the consensus exit fraction (§4.1).
func (d *Driver) runExitStreams(day int) {
	p := d.P
	// Expected network-wide initial streams this day, scaled.
	totalInitial := p.scaled(p.SelectiveClients * p.InitialStreamsPerClient)
	observedInitial := simtime.Poisson(d.rng, totalInitial*d.Net.Consensus.Fractions().Exit)

	muStream := math.Log(p.StreamKiBMean*1024) - p.StreamLogSigma*p.StreamLogSigma/2
	for i := 0; i < observedInitial; i++ {
		relay := d.Net.Consensus.PickMeasuringExit(d.rng)
		at := d.timeInDay(day)
		target, port, host := d.drawStreamType()
		recv := uint64(simtime.LogNormal(d.rng, muStream, p.StreamLogSigma))
		circ := d.Net.EmitStream(at, relay, 0, true, target, port, host, recv/10+1, recv)
		// Subsequent streams multiplex on the same circuit (Figure 1a).
		for s := simtime.Poisson(d.rng, p.SubsequentPerInitial); s > 0; s-- {
			jitter := time.Duration(d.rng.Int64N(int64(30 * time.Minute)))
			sub := uint64(simtime.LogNormal(d.rng, muStream-1, p.StreamLogSigma))
			d.Net.EmitStream(at.Add(jitter), relay, circ,
				false, event.TargetHostname, 443, "", sub/10+1, sub)
		}
	}
}

// drawStreamType samples the Figure 1b/1c breakdown: almost all initial
// streams carry a hostname and a web port.
func (d *Driver) drawStreamType() (event.TargetKind, uint16, string) {
	p := d.P
	u := d.rng.Float64()
	switch {
	case u < p.IPv4Share:
		return event.TargetIPv4, 443, ""
	case u < p.IPv4Share+p.IPv6Share:
		return event.TargetIPv6, 443, ""
	case u < p.IPv4Share+p.IPv6Share+p.NonWebShare:
		// Hostname on a non-web port (e.g. SSH, mail).
		ports := []uint16{22, 25, 993, 5222, 6667}
		return event.TargetHostname, ports[d.rng.IntN(len(ports))], d.domains.Hostname(d.rng)
	default:
		port := uint16(443)
		if d.rng.Float64() < 0.35 {
			port = 80
		}
		return event.TargetHostname, port, d.domains.Hostname(d.rng)
	}
}

// runOnionPublishes emits descriptor publications for services whose
// responsible HSDir sets include measuring relays (§6.1).
func (d *Driver) runOnionPublishes(day int) {
	for i := range d.Onions.Services {
		svc := &d.Onions.Services[i]
		// The descriptor occupies the day's position and rotates to the
		// next day's position at a per-address offset, which is what
		// lets relays observe more addresses than their static ring
		// share (§6.1 extrapolation).
		d.Onions.PublishDay(d.Net, d.rng, svc, day, d.P.PublishRoundsPerDay/2)
		d.Onions.PublishDay(d.Net, d.rng, svc, day+1, d.P.PublishRoundsPerDay/2)
	}
}

// runOnionFetches emits the day's descriptor fetch attempts: a botnet-
// dominated stream in which ~91% of lookups target missing descriptors
// or are malformed (§6.2, Table 7).
func (d *Driver) runOnionFetches(day int) {
	p := d.P
	total := int(p.scaled(p.FetchesPerDay))
	for i := 0; i < total; i++ {
		useDay := day
		if d.rng.Float64() < 0.5 {
			useDay = day + 1 // post-rotation period
		}
		if d.rng.Float64() < p.FetchFailShare {
			outcome := event.FetchNotFound
			if d.rng.Float64() < p.MalformedFailShare {
				outcome = event.FetchMalformed
			}
			d.Onions.Fetch(d.Net, d.rng, d.Onions.DeadAddress(d.rng), useDay, outcome)
			continue
		}
		svc := d.Onions.PickService(d.rng)
		d.Onions.Fetch(d.Net, d.rng, svc.Addr, useDay, event.FetchOK)
	}
}

// runRendezvous emits the day's rendezvous circuits observed at
// measuring rendezvous points (§6.3, Table 8).
func (d *Driver) runRendezvous(day int) {
	p := d.P
	total := p.scaled(p.RendCircuitsPerDay)
	observed := simtime.Poisson(d.rng, total*d.Net.Consensus.Fractions().Rend)
	rendRelays := d.Net.Consensus.MeasuringRelays()
	for i := 0; i < observed; i++ {
		relay := rendRelays[d.rng.IntN(len(rendRelays))]
		outcome, cells, bytes := p.Rend.Draw(d.rng)
		version := uint8(2)
		if d.rng.Float64() < 0.2 {
			version = 3
		}
		d.Net.Bus.Publish(&event.RendezvousEnd{
			Header:       event.Header{At: d.timeInDay(day), Relay: relay},
			CircuitID:    d.Net.NextCircuitID(),
			Version:      version,
			Outcome:      outcome,
			PayloadCells: cells,
			PayloadBytes: bytes,
		})
	}
}

// timeInDay draws a uniform virtual timestamp within the day.
func (d *Driver) timeInDay(day int) simtime.Time {
	return simtime.Time(day)*simtime.Day + simtime.Time(d.rng.Uint64()%uint64(simtime.Day))
}

// String summarizes the driver configuration.
func (d *Driver) String() string {
	return fmt.Sprintf("workload(scale=%g clients=%d services=%d)",
		d.P.Scale, len(d.clients), len(d.Onions.Services))
}
