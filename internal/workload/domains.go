package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/alexa"
	"repro/internal/simtime"
)

// DomainMixture models which hostname a primary (initial, hostname,
// web-port) stream targets. It is a mixture of the specific anomalies
// the paper measured and two background components:
//
//   - onionoo.torproject.org: 40% of primary domains (§4.3) — the
//     unexplained Onionoo API traffic;
//   - the amazon family: 9.7% total, with www.amazon.com most of it;
//   - the google family: 2.4%;
//   - duckduckgo.com: 0.4% (Tor Browser's default search engine);
//   - a Zipf draw over the Alexa top-1M list (popular-web browsing);
//   - a long tail of non-Alexa sites (~20%, matching the finding that
//     ~80% of primary domains are on the Alexa list).
type DomainMixture struct {
	OnionooShare   float64
	AmazonWWWShare float64
	AmazonSibShare float64
	GoogleComShare float64
	GoogleSibShare float64
	DuckShare      float64
	// LongTailShare of accesses go to non-Alexa sites drawn from a
	// Zipf over LongTailSites synthetic domains.
	LongTailShare float64
	LongTailSites int
	LongTailZipf  float64
	// DecadeWeights distribute the remaining mass (the organic Alexa
	// browsing component) across the rank decades (0,10], (10,100], …,
	// (100k,1m]. The values are calibrated to Figure 2's measured
	// per-decade shares, which are far flatter at the head than a pure
	// Zipf: Tor users do not visit google/youtube/facebook at clearnet
	// rates. Within a decade, ranks draw log-uniformly (∝ 1/rank).
	DecadeWeights []float64
	// WWWShare prefixes "www." to sampled hostnames occasionally, so
	// the PSL reduction path is exercised.
	WWWShare float64
}

// DefaultDomainMixture is the Figure 2/3 calibration.
func DefaultDomainMixture() DomainMixture {
	return DomainMixture{
		OnionooShare:   0.40,
		AmazonWWWShare: 0.040,
		AmazonSibShare: 0.057,
		GoogleComShare: 0.008,
		GoogleSibShare: 0.014,
		DuckShare:      0.004,
		LongTailShare:  0.20,
		LongTailSites:  10_000_000,
		LongTailZipf:   0.90,
		// Figure 2's organic per-decade shares: (0,10] carries almost
		// nothing once amazon is separated out.
		DecadeWeights: []float64{0.5, 5.1, 5.8, 4.3, 7.7, 7.0},
		WWWShare:      0.25,
	}
}

// Validate checks the mixture sums to at most 1 (the remainder is the
// Alexa Zipf component).
func (m DomainMixture) Validate() error {
	specials := m.OnionooShare + m.AmazonWWWShare + m.AmazonSibShare +
		m.GoogleComShare + m.GoogleSibShare + m.DuckShare + m.LongTailShare
	if specials > 1 {
		return fmt.Errorf("workload: domain mixture shares sum to %v > 1", specials)
	}
	if m.LongTailShare > 0 && m.LongTailSites <= 0 {
		return fmt.Errorf("workload: long tail needs a site population")
	}
	return nil
}

// DomainSampler draws hostnames from the mixture against a concrete
// Alexa list.
type DomainSampler struct {
	mix       DomainMixture
	list      *alexa.List
	decades   *simtime.WeightedChoice
	decadeLo  []int // inclusive rank range per decade bin
	decadeHi  []int
	tailZipf  *simtime.Zipf
	tailTLDs  *simtime.WeightedChoice
	tldNames  []string
	amazonSib []string
	googleSib []string
}

// longTailTLDWeights approximates the overall web TLD mix for non-Alexa
// sites (Figure 3's "All Sites" bars).
var longTailTLDWeights = []struct {
	tld string
	w   float64
}{
	{"com", 0.44}, {"org", 0.05}, {"net", 0.06}, {"ru", 0.055},
	{"de", 0.04}, {"uk", 0.025}, {"jp", 0.025}, {"br", 0.02},
	{"in", 0.018}, {"fr", 0.02}, {"it", 0.015}, {"pl", 0.015},
	{"cn", 0.015}, {"ir", 0.012}, {"io", 0.03}, {"info", 0.03},
	{"xyz", 0.04}, {"top", 0.03}, {"online", 0.02}, {"site", 0.02},
	{"club", 0.015}, {"es", 0.012}, {"nl", 0.012}, {"se", 0.01},
	{"ca", 0.01}, {"us", 0.01}, {"cz", 0.008}, {"ua", 0.008},
}

// NewDomainSampler prepares the sampler.
func NewDomainSampler(mix DomainMixture, list *alexa.List) (*DomainSampler, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	weights := make([]float64, len(longTailTLDWeights))
	names := make([]string, len(longTailTLDWeights))
	for i, tw := range longTailTLDWeights {
		weights[i] = tw.w
		names[i] = tw.tld
	}
	s := &DomainSampler{
		mix:      mix,
		list:     list,
		tailTLDs: simtime.NewWeightedChoice(weights),
		tldNames: names,
	}
	// Build rank decades over the available list, truncating the last
	// one at the list size and renormalizing the calibrated weights.
	dw := mix.DecadeWeights
	if len(dw) == 0 {
		dw = []float64{0.5, 5.1, 5.8, 4.3, 7.7, 7.0}
	}
	lo := 1
	var decW []float64
	for i, hi := range []int{10, 100, 1000, 10000, 100000, 1000000} {
		if lo > list.N() || i >= len(dw) {
			break
		}
		if hi > list.N() {
			hi = list.N()
		}
		s.decadeLo = append(s.decadeLo, lo)
		s.decadeHi = append(s.decadeHi, hi)
		decW = append(decW, dw[i])
		lo = hi + 1
	}
	s.decades = simtime.NewWeightedChoice(decW)
	if mix.LongTailShare > 0 {
		s.tailZipf = simtime.NewZipf(min(mix.LongTailSites, 1_000_000), mix.LongTailZipf)
	}
	for _, d := range list.Siblings("amazon") {
		if d != "amazon.com" {
			s.amazonSib = append(s.amazonSib, d)
		}
	}
	for _, d := range list.Siblings("google") {
		if d != "google.com" {
			s.googleSib = append(s.googleSib, d)
		}
	}
	return s, nil
}

// Hostname draws one primary-stream hostname.
func (s *DomainSampler) Hostname(r *rand.Rand) string {
	u := r.Float64()
	m := s.mix
	switch {
	case u < m.OnionooShare:
		return "onionoo.torproject.org"
	case u < m.OnionooShare+m.AmazonWWWShare:
		return "www.amazon.com"
	case u < m.OnionooShare+m.AmazonWWWShare+m.AmazonSibShare:
		if len(s.amazonSib) == 0 {
			return "www.amazon.com"
		}
		return s.amazonSib[r.IntN(len(s.amazonSib))]
	case u < m.OnionooShare+m.AmazonWWWShare+m.AmazonSibShare+m.GoogleComShare:
		return s.maybeWWW(r, "google.com")
	case u < m.OnionooShare+m.AmazonWWWShare+m.AmazonSibShare+m.GoogleComShare+m.GoogleSibShare:
		if len(s.googleSib) == 0 {
			return "google.com"
		}
		return s.googleSib[r.IntN(len(s.googleSib))]
	case u < m.OnionooShare+m.AmazonWWWShare+m.AmazonSibShare+m.GoogleComShare+m.GoogleSibShare+m.DuckShare:
		return "duckduckgo.com"
	case u < m.OnionooShare+m.AmazonWWWShare+m.AmazonSibShare+m.GoogleComShare+m.GoogleSibShare+m.DuckShare+m.LongTailShare:
		return s.longTail(r)
	default:
		return s.maybeWWW(r, s.list.Domain(s.alexaRank(r)))
	}
}

// alexaRank draws a rank: a calibrated decade, then log-uniform within
// it (density ∝ 1/rank).
func (s *DomainSampler) alexaRank(r *rand.Rand) int {
	d := s.decades.Pick(r)
	lo, hi := float64(s.decadeLo[d]), float64(s.decadeHi[d])
	rank := int(lo * math.Exp(r.Float64()*math.Log(hi/lo)))
	if rank < s.decadeLo[d] {
		rank = s.decadeLo[d]
	}
	if rank > s.decadeHi[d] {
		rank = s.decadeHi[d]
	}
	return rank
}

// longTail generates a non-Alexa hostname. The popularity support is
// truncated to one million ranks to bound the sampler's CDF table; at
// simulation scale the tail beyond that would essentially never recur
// anyway.
func (s *DomainSampler) longTail(r *rand.Rand) string {
	rank := s.tailZipf.Rank(r)
	tld := s.tldNames[s.tailTLDs.Pick(r)]
	return fmt.Sprintf("lt%d.%s", rank, tld)
}

func (s *DomainSampler) maybeWWW(r *rand.Rand, dom string) string {
	if dom == "" {
		return "lost.example.com"
	}
	if r.Float64() < s.mix.WWWShare {
		return "www." + dom
	}
	return dom
}
