package netem

// Integration tests for the adaptive credit window over emulated WAN
// paths: the wire mux's AIMD loop is driven end to end through shaped
// connections. These live in the netem package because netem imports
// wire — the reverse import would cycle.

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// runAdaptive moves total bytes through one stream of an adaptive
// session pair over a netem pipe shaped by p, and returns the
// receiver-side stream stats.
func runAdaptive(t *testing.T, p Profile, initial, cap, total int) wire.StreamStats {
	t.Helper()
	ca, cb := Pipe(p)
	opts := []wire.Option{wire.WithWindow(initial), wire.WithAdaptiveWindow(cap)}
	client := wire.NewSession(wire.NewConn(ca, opts...), true)
	server := wire.NewSession(wire.NewConn(cb, opts...), false)
	defer client.Close()
	defer server.Close()

	cst, err := client.Open(1, "wan-bulk")
	if err != nil {
		t.Fatal(err)
	}
	sst, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 16 << 10
	frames := total / chunk
	payload := make([]byte, chunk)
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if err := cst.SendFrame(wire.Frame{Kind: "bulk", Payload: payload}); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()
	for i := 0; i < frames; i++ {
		f, err := sst.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(f.Payload) != chunk {
			t.Fatalf("frame %d truncated: %d bytes", i, len(f.Payload))
		}
		if ss := sst.Stats(); ss.RecvWindow > int64(cap) {
			t.Fatalf("window %d exceeded the %d cap mid-transfer", ss.RecvWindow, cap)
		}
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	return sst.Stats()
}

// TestAdaptiveWindowGrowsOverWAN checks that on a clean high-latency
// path the receive window climbs above its initial value toward the
// bandwidth-delay product, never passes the cap, and the RTT estimator
// prices at least the emulated round trip.
func TestAdaptiveWindowGrowsOverWAN(t *testing.T) {
	const initial, cap = 64 << 10, 1 << 20
	ss := runAdaptive(t, Profile{Latency: 5 * time.Millisecond, Seed: 1}, initial, cap, 2<<20)
	if ss.RecvWindow <= initial {
		t.Fatalf("window never grew: still %d after a window-limited transfer", ss.RecvWindow)
	}
	if ss.RecvWindow > cap {
		t.Fatalf("window %d exceeds cap %d", ss.RecvWindow, cap)
	}
	if ss.RTT < 10*time.Millisecond {
		t.Fatalf("smoothed RTT %v prices less than the emulated 10ms round trip", ss.RTT)
	}
	if ss.MinRTT < 10*time.Millisecond {
		t.Fatalf("min RTT %v below the emulated floor", ss.MinRTT)
	}
}

// TestAdaptiveWindowBacksOffUnderLoss checks the loss reaction end to
// end: on a lossy path each loss surfaces as a retransmit stall, the
// stall inflates the credit-grant RTT, and the controller must back
// off at least once — while the window stays within [initial, cap]
// throughout and every byte still arrives (the transport is reliable;
// only time is lost).
func TestAdaptiveWindowBacksOffUnderLoss(t *testing.T) {
	const initial, cap = 64 << 10, 1 << 20
	p := Profile{
		Latency: 5 * time.Millisecond, Bandwidth: 50_000_000,
		Loss: 0.3, RTO: 40 * time.Millisecond, Seed: 3,
	}
	ss := runAdaptive(t, p, initial, cap, 1<<20)
	if ss.Decreases == 0 {
		t.Fatal("no multiplicative backoff under 30% emulated loss")
	}
	if ss.RecvWindow < initial || ss.RecvWindow > cap {
		t.Fatalf("window %d left [initial %d, cap %d]", ss.RecvWindow, initial, cap)
	}
}
