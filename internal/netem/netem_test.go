package netem

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestPacerDeterministic pins the subsystem's core guarantee: the
// delivery schedule for a given (profile, write sequence) pair is a
// pure function of the profile's seed.
func TestPacerDeterministic(t *testing.T) {
	p := Profile{
		Latency: 20 * time.Millisecond, Jitter: 8 * time.Millisecond,
		Bandwidth: 2_000_000, Loss: 0.05, Seed: 7,
	}
	writes := []struct {
		at time.Duration
		n  int
	}{
		{0, 4096}, {time.Millisecond, 16384}, {time.Millisecond, 512},
		{5 * time.Millisecond, 16384}, {40 * time.Millisecond, 1000},
		{41 * time.Millisecond, 16384}, {90 * time.Millisecond, 8192},
	}
	schedule := func(p Profile, ordered bool) []time.Duration {
		pc := newPacer(p, ordered)
		var out []time.Duration
		for _, w := range writes {
			due, dropped := pc.next(w.at, w.n)
			if dropped {
				due = -1
			}
			out = append(out, due)
		}
		return out
	}
	for _, ordered := range []bool{true, false} {
		a, b := schedule(p, ordered), schedule(p, ordered)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ordered=%v: same seed diverged at write %d: %v vs %v", ordered, i, a[i], b[i])
			}
		}
		p2 := p
		p2.Seed = 8
		c := schedule(p2, ordered)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
			}
		}
		if same {
			t.Fatalf("ordered=%v: different seeds produced identical schedules", ordered)
		}
	}
}

// TestPacerOrderedMonotone checks the byte-stream invariants: due
// times never go backwards, and loss shows up as an RTO-sized stall
// rather than a drop.
func TestPacerOrderedMonotone(t *testing.T) {
	p := Profile{
		Latency: 10 * time.Millisecond, Jitter: 30 * time.Millisecond,
		Bandwidth: 1_000_000, Loss: 0.3, Seed: 3,
	}
	pc := newPacer(p, true)
	var last time.Duration
	for i := 0; i < 500; i++ {
		due, dropped := pc.next(time.Duration(i)*time.Millisecond, 2000)
		if dropped {
			t.Fatal("ordered pacer must never drop")
		}
		if due < last {
			t.Fatalf("due time went backwards: %v after %v", due, last)
		}
		last = due
	}
}

// TestPacerBandwidth checks the token bucket: a burst of writes at
// t=0 must serialize at the profile bandwidth.
func TestPacerBandwidth(t *testing.T) {
	p := Profile{Latency: time.Millisecond, Bandwidth: 1_000_000, Seed: 1}
	pc := newPacer(p, true)
	var due time.Duration
	for i := 0; i < 10; i++ {
		due, _ = pc.next(0, 100_000) // 1 MB total at 1 MB/s
	}
	if due < time.Second || due > 1200*time.Millisecond {
		t.Fatalf("1 MB at 1 MB/s should deliver near 1s, got %v", due)
	}
}

// TestWrapLatencyAndIntegrity moves bulk data through a netem pipe and
// checks both the payload integrity and that the one-way latency was
// actually imposed.
func TestWrapLatencyAndIntegrity(t *testing.T) {
	const lat = 30 * time.Millisecond
	a, b := Pipe(Profile{Latency: lat, Seed: 1})
	defer a.Close()
	defer b.Close()

	payload := bytes.Repeat([]byte("netem"), 40_000) // 200 KB, multiple MTUs
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := a.Write(payload)
		errCh <- err
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in transit")
	}
	if elapsed < lat {
		t.Fatalf("delivery took %v, faster than the %v one-way latency", elapsed, lat)
	}
}

// TestWrapRTT checks that shaping both ends doubles the latency into a
// full round trip at the wire layer.
func TestWrapRTT(t *testing.T) {
	const lat = 20 * time.Millisecond
	ca, cb := Pipe(Profile{Latency: lat, Seed: 1})
	a, b := wire.NewConn(ca), wire.NewConn(cb)
	defer a.Close()
	defer b.Close()

	go func() {
		var v int
		if err := b.Expect("ping", &v); err != nil {
			return
		}
		b.Send("pong", v)
	}()
	start := time.Now()
	if err := a.Send("ping", 1); err != nil {
		t.Fatal(err)
	}
	var v int
	if err := a.Expect("pong", &v); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 2*lat {
		t.Fatalf("round trip took %v, want >= %v", rtt, 2*lat)
	}
}

// TestMessengerDeterministicLoss runs the frame wrapper twice with the
// same seeded lossy profile and checks the set of surviving frames is
// identical: the per-frame loss draws are a pure function of the seed
// and the send sequence. (Relative delivery order under jitter depends
// on real send timestamps; the schedule-determinism property itself is
// pinned by TestPacerDeterministic in virtual time.)
func TestMessengerDeterministicLoss(t *testing.T) {
	const frames = 100
	run := func(seed int64) map[string]bool {
		ca, cb := wire.Pipe()
		m := WrapMessenger(ca, Profile{
			Latency: time.Millisecond, Jitter: 4 * time.Millisecond,
			Loss: 0.2, Seed: seed,
		})
		got := make(map[string]bool)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				f, err := cb.Recv()
				if err != nil {
					return
				}
				got[f.Kind] = true
			}
		}()
		for i := 0; i < frames; i++ {
			if err := m.Send(fmt.Sprintf("frame-%d", i), i); err != nil {
				t.Fatal(err)
			}
		}
		m.Close()
		<-done
		cb.Close()
		if int64(frames-len(got)) != m.Dropped() {
			t.Fatalf("dropped count %d disagrees with delivered %d of %d", m.Dropped(), len(got), frames)
		}
		return got
	}
	a, b := run(11), run(11)
	if len(a) == 0 || len(a) == frames {
		t.Fatalf("want some but not all of %d frames delivered with loss=0.2, got %d", frames, len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d frames", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("same seed diverged: %q survived in one run only", k)
		}
	}
	c := run(12)
	same := len(a) == len(c)
	if same {
		for k := range a {
			if !c[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical loss patterns")
	}
}

// TestParseProfile exercises preset lookup, overrides, custom specs,
// and rejection of malformed input.
func TestParseProfile(t *testing.T) {
	if p, err := ParseProfile(""); err != nil || p != nil {
		t.Fatalf("empty spec: want nil,nil got %v,%v", p, err)
	}
	p, err := ParseProfile("wan-tor")
	if err != nil {
		t.Fatal(err)
	}
	if p.Latency != 300*time.Millisecond || p.Bandwidth != 5_000_000 {
		t.Fatalf("wan-tor preset wrong: %+v", p)
	}
	p, err = ParseProfile("wan-tor,seed=42,loss=0,bw=10M")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Loss != 0 || p.Bandwidth != 10_000_000 {
		t.Fatalf("overrides not applied: %+v", p)
	}
	p, err = ParseProfile("lat=150ms,jitter=10ms,bw=512Ki,mtu=4Ki")
	if err != nil {
		t.Fatal(err)
	}
	if p.Latency != 150*time.Millisecond || p.Bandwidth != 512<<10 || p.MTU != 4<<10 {
		t.Fatalf("custom spec wrong: %+v", p)
	}
	for _, bad := range []string{"nope", "wan-tor,loss=2", "wan-tor,zap=1", "wan-tor,lat"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Fatalf("spec %q should have failed", bad)
		}
	}
}

// TestWireOptionShapesListenDial checks the plumbing end to end: a
// Listen/Dial pair built with WireOption sees the emulated round trip.
func TestWireOptionShapesListenDial(t *testing.T) {
	const lat = 15 * time.Millisecond
	opt := WireOption(Profile{Latency: lat, Seed: 1})
	ln, err := wire.Listen("127.0.0.1:0", nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		var v int
		if err := c.Expect("ping", &v); err != nil {
			return
		}
		c.Send("pong", v)
	}()
	c, err := wire.Dial(ln.Addr().String(), nil, 5*time.Second, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Send("ping", 7); err != nil {
		t.Fatal(err)
	}
	var v int
	if err := c.Expect("pong", &v); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 2*lat {
		t.Fatalf("round trip took %v, want >= %v", rtt, 2*lat)
	}
}
