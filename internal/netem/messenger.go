package netem

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/wire"
)

// Messenger shapes the send direction of a wire.Messenger at frame
// granularity: each frame is independently delayed by latency plus
// jitter (so frames whose sampled delays cross are reordered) and
// dropped outright with probability Loss. This models an unreliable
// datagram path; the mux's credit protocol assumes reliable delivery,
// so this wrapper is for loss-tolerant tests and harnesses, not for
// wrapping session transports (use Wrap for that).
type Messenger struct {
	inner wire.Messenger
	start time.Time

	mu      sync.Mutex
	pc      *pacer
	h       frameHeap
	seq     int64
	closed  bool
	err     error
	dropped int64
	wake    chan struct{}
	done    chan struct{}
	drained *sync.Cond
}

// frameOverhead approximates per-frame transport framing cost for
// bandwidth accounting, mirroring the mux's credit accounting.
const frameOverhead = 64

// WrapMessenger shapes m's send direction with p.
func WrapMessenger(m wire.Messenger, p Profile) *Messenger {
	em := &Messenger{
		inner: m,
		start: time.Now(),
		pc:    newPacer(p, false),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	em.drained = sync.NewCond(&em.mu)
	go em.run()
	return em
}

// Send encodes v exactly as the underlying messenger would and
// schedules the frame.
func (m *Messenger) Send(kind string, v interface{}) error {
	payload, err := wire.EncodePayload(v)
	if err != nil {
		return err
	}
	return m.SendFrame(wire.Frame{Kind: kind, Payload: payload})
}

// SendFrame schedules f for delayed (possibly dropped or reordered)
// delivery and returns immediately.
func (m *Messenger) SendFrame(f wire.Frame) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return wire.ErrClosed
	}
	if m.err != nil {
		return m.err
	}
	due, dropped := m.pc.next(time.Since(m.start), len(f.Payload)+frameOverhead)
	if dropped {
		m.dropped++
		return nil
	}
	heap.Push(&m.h, scheduled{f: f, due: due, seq: m.seq})
	m.seq++
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return nil
}

// Recv delegates to the wrapped messenger (the peer's wrapper shapes
// the other direction).
func (m *Messenger) Recv() (wire.Frame, error) { return m.inner.Recv() }

// Expect delegates to the wrapped messenger.
func (m *Messenger) Expect(kind string, v interface{}) error { return m.inner.Expect(kind, v) }

// Dropped reports how many frames the emulated path has discarded.
func (m *Messenger) Dropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Close waits for the scheduled frames to drain, then closes the
// wrapped messenger.
func (m *Messenger) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for m.h.Len() > 0 && m.err == nil {
		m.drained.Wait()
	}
	m.mu.Unlock()
	close(m.done)
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return m.inner.Close()
}

// run delivers scheduled frames in due order. Unlike the byte-stream
// shaper, the heap head can change while sleeping (a later frame with
// a smaller sampled delay), so the pump re-arms whenever a new frame
// is scheduled.
func (m *Messenger) run() {
	for {
		m.mu.Lock()
		if m.h.Len() == 0 {
			m.mu.Unlock()
			select {
			case <-m.wake:
				continue
			case <-m.done:
				return
			}
		}
		head := m.h[0]
		m.mu.Unlock()

		if d := head.due - time.Since(m.start); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-m.wake:
				t.Stop()
				continue
			case <-m.done:
				t.Stop()
				return
			}
		}

		m.mu.Lock()
		if m.h.Len() == 0 || m.h[0].due > time.Since(m.start) {
			m.mu.Unlock()
			continue
		}
		f := heap.Pop(&m.h).(scheduled).f
		m.mu.Unlock()

		err := m.inner.SendFrame(f)

		m.mu.Lock()
		if err != nil && m.err == nil {
			m.err = err
		}
		if m.h.Len() == 0 || m.err != nil {
			m.drained.Broadcast()
		}
		m.mu.Unlock()
	}
}

// scheduled is one frame in flight; seq breaks due-time ties so equal
// delays preserve send order.
type scheduled struct {
	f   wire.Frame
	due time.Duration
	seq int64
}

type frameHeap []scheduled

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h frameHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x interface{}) { *h = append(*h, x.(scheduled)) }
func (h *frameHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
