package netem

import (
	"net"

	"repro/internal/wire"
)

// WireOption converts a profile into a wire connection option: every
// Conn built with it (directly, or via wire.Listen/Dial) has its write
// direction shaped by p. Apply it on both endpoints to emulate the
// full round trip. This is what the daemons' -netem flag expands to.
func WireOption(p Profile) wire.Option {
	return wire.WithTransportWrap(func(c net.Conn) net.Conn {
		return Wrap(c, p)
	})
}
