// Package netem is the WAN emulation subsystem: it wraps transport
// connections and wire messengers with configurable one-way latency,
// bandwidth pacing, jitter, and probabilistic frame loss/reorder, so
// every protocol in this repository can be measured over links shaped
// like the deployment the paper describes — mutually distrusting
// operators connected by Tor-adjacent paths with hundreds of
// milliseconds of delay and single-digit MB/s of bandwidth — instead
// of loopback pipes.
//
// The shaping engine is deterministic under a seeded RNG: the same
// Profile (including Seed) applied to the same write sequence produces
// the identical delivery schedule, so emulation-driven tests and
// benchmarks are reproducible.
//
// Two wrapping layers are provided:
//
//   - Wrap shapes a net.Conn's write direction: bytes are split into
//     MTU-sized chunks, paced through a token bucket at the profile's
//     bandwidth, and delivered after the one-way latency plus jitter.
//     A "lost" chunk on this reliable byte stream is emulated the way
//     TCP surfaces loss to the application — a retransmit stall (RTO)
//     that delays the chunk and everything queued behind it. Wrapping
//     both ends of a connection yields a full round trip of 2× the
//     one-way latency.
//
//   - WrapMessenger shapes a wire.Messenger at frame granularity with
//     a delay heap: frames are independently delayed (latency plus
//     jitter), which reorders them when their sampled delays cross,
//     and dropped outright with probability Loss. This models an
//     unreliable datagram path; the credit-window protocols in this
//     repository assume a reliable transport, so the messenger wrapper
//     is for loss-tolerant tests and harnesses only.
//
// Profiles are named presets (lan, wan-good, wan-tor — the clearnet /
// good-WAN / Tor rows of the gethrelay tor-performance table) parsed
// by ParseProfile, which also accepts key=value overrides such as
// "wan-tor,seed=42,loss=0". WireOption converts a profile into a
// wire.Option so listeners and dialers shape every accepted or dialed
// connection; the -netem flag on the daemons is exactly that.
package netem
