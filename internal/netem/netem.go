package netem

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Profile describes one emulated network path. The zero value shapes
// nothing (zero latency, unlimited bandwidth, no loss); presets for
// realistic paths are available by name through Lookup/ParseProfile.
type Profile struct {
	// Name labels the profile in logs and bench output.
	Name string
	// Latency is the one-way propagation delay added to every chunk or
	// frame. Wrapping both ends of a connection therefore yields a
	// round-trip time of 2×Latency.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per
	// chunk, sampled from the profile's seeded RNG.
	Jitter time.Duration
	// Bandwidth paces the path at this many bytes per second through a
	// token bucket; 0 leaves the path unpaced.
	Bandwidth int64
	// Loss is the per-chunk loss probability. On the byte-stream
	// wrapper (Wrap) a loss is emulated the way TCP surfaces it — the
	// chunk and everything behind it stall for RTO (a retransmit); on
	// the frame wrapper (WrapMessenger) the frame is dropped outright.
	Loss float64
	// RTO is the emulated retransmission timeout charged per lost
	// chunk on the byte-stream wrapper; 0 selects 4×Latency (floor
	// 1ms), the shape of a TCP RTO built from the path RTT.
	RTO time.Duration
	// MTU is the pacing granularity in bytes: writes are split into
	// MTU-sized chunks so a large buffered write is serialized over
	// time rather than delivered as one burst. 0 selects 16 KiB.
	MTU int
	// Buffer bounds the shaper's send queue in bytes — the emulated
	// kernel socket buffer. Writers block once it is full, providing
	// the backpressure a real congested link exerts. 0 selects
	// max(256 KiB, 4× the bandwidth-delay product).
	Buffer int
	// Seed drives the jitter and loss RNG. The schedule produced for a
	// given write sequence is a pure function of the profile including
	// this seed, which is what makes emulated runs reproducible.
	Seed int64
}

// mtu returns the effective pacing chunk size.
func (p Profile) mtu() int {
	if p.MTU > 0 {
		return p.MTU
	}
	return 16 << 10
}

// rto returns the effective retransmit stall per lost chunk.
func (p Profile) rto() time.Duration {
	if p.RTO > 0 {
		return p.RTO
	}
	if r := 4 * p.Latency; r > time.Millisecond {
		return r
	}
	return time.Millisecond
}

// buffer returns the effective shaper queue bound.
func (p Profile) buffer() int {
	if p.Buffer > 0 {
		return p.Buffer
	}
	b := 256 << 10
	if p.Bandwidth > 0 {
		if bdp := int(4 * p.Bandwidth * int64(2*p.Latency) / int64(time.Second)); bdp > b {
			b = bdp
		}
	}
	return b
}

// String renders the profile compactly for logs.
func (p Profile) String() string {
	name := p.Name
	if name == "" {
		name = "custom"
	}
	bw := "unlimited"
	if p.Bandwidth > 0 {
		bw = fmt.Sprintf("%.3gMB/s", float64(p.Bandwidth)/1e6)
	}
	return fmt.Sprintf("%s(lat=%v jitter=%v bw=%s loss=%.3g seed=%d)",
		name, p.Latency, p.Jitter, bw, p.Loss, p.Seed)
}

// Presets, matching the clearnet / good-WAN / Tor rows of the
// gethrelay tor-performance benchmark table (SNIPPETS.md): Tor paths
// see 300–1000 ms of connection latency and 1–10 MB/s of bandwidth.
// wan-tor sits at the favorable end of that band: 300 ms one-way
// (600 ms RTT once both directions are shaped) at 5 MB/s.
var presets = map[string]Profile{
	"lan": {
		Name: "lan", Latency: 200 * time.Microsecond, Seed: 1,
	},
	"wan-good": {
		Name: "wan-good", Latency: 40 * time.Millisecond, Jitter: 5 * time.Millisecond,
		Bandwidth: 50_000_000, Loss: 0.0001, Seed: 1,
	},
	"wan-tor": {
		Name: "wan-tor", Latency: 300 * time.Millisecond, Jitter: 20 * time.Millisecond,
		Bandwidth: 5_000_000, Loss: 0.001, Seed: 1,
	},
}

// Profiles lists the preset names in sorted order.
func Profiles() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns a preset profile by name.
func Lookup(name string) (Profile, bool) {
	p, ok := presets[name]
	return p, ok
}

// ParseProfile parses a -netem flag value: a preset name, optionally
// followed by comma-separated key=value overrides — for example
// "wan-tor", "wan-tor,seed=42,loss=0", or a fully custom
// "lat=150ms,bw=5M,jitter=10ms". Recognized keys: lat/latency,
// jitter, rto (durations), bw/bandwidth (bytes/sec, K/M/G decimal or
// Ki/Mi/Gi binary suffixes), loss (probability), mtu, buffer (bytes),
// seed (integer). An empty spec returns (nil, nil): no emulation.
func ParseProfile(spec string) (*Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	var p Profile
	rest := parts
	if !strings.Contains(parts[0], "=") {
		preset, ok := Lookup(parts[0])
		if !ok {
			return nil, fmt.Errorf("netem: unknown profile %q (have: %s)", parts[0], strings.Join(Profiles(), ", "))
		}
		p = preset
		rest = parts[1:]
	} else {
		p.Name = "custom"
		p.Seed = 1
	}
	for _, kv := range rest {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("netem: bad override %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "lat", "latency":
			p.Latency, err = time.ParseDuration(v)
		case "jitter":
			p.Jitter, err = time.ParseDuration(v)
		case "rto":
			p.RTO, err = time.ParseDuration(v)
		case "bw", "bandwidth":
			p.Bandwidth, err = parseBytes(v)
		case "loss":
			p.Loss, err = strconv.ParseFloat(v, 64)
			if err == nil && (p.Loss < 0 || p.Loss >= 1) {
				err = fmt.Errorf("outside [0,1)")
			}
		case "mtu":
			var n int64
			n, err = parseBytes(v)
			p.MTU = int(n)
		case "buffer":
			var n int64
			n, err = parseBytes(v)
			p.Buffer = int(n)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return nil, fmt.Errorf("netem: unknown override key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("netem: override %q: %v", kv, err)
		}
	}
	return &p, nil
}

// parseBytes parses a byte count with an optional K/M/G (decimal) or
// Ki/Mi/Gi (binary) suffix; a trailing "B" is tolerated ("5MB").
func parseBytes(s string) (int64, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "Ki"):
		mult, s = 1<<10, strings.TrimSuffix(s, "Ki")
	case strings.HasSuffix(s, "Mi"):
		mult, s = 1<<20, strings.TrimSuffix(s, "Mi")
	case strings.HasSuffix(s, "Gi"):
		mult, s = 1<<30, strings.TrimSuffix(s, "Gi")
	case strings.HasSuffix(s, "K"):
		mult, s = 1_000, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1_000_000, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1_000_000_000, strings.TrimSuffix(s, "G")
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return int64(f * float64(mult)), nil
}

// pacer turns a write sequence into a delivery schedule. All times are
// monotonic offsets from an arbitrary zero, so the schedule for a
// given (profile, write sequence) pair is a pure deterministic
// function — the property the emulation tests pin. It is not safe for
// concurrent use; each shaped direction owns one.
type pacer struct {
	p   Profile
	rng *rand.Rand
	// nextFree is the token bucket's virtual clock: the offset at
	// which the link finishes serializing everything scheduled so far.
	nextFree time.Duration
	// lastDue enforces in-order delivery for byte-stream (ordered)
	// pacing; datagram pacing leaves frames independent so jitter can
	// reorder them.
	lastDue time.Duration
	ordered bool
}

func newPacer(p Profile, ordered bool) *pacer {
	return &pacer{p: p, rng: rand.New(rand.NewSource(p.Seed)), ordered: ordered}
}

// next schedules an n-byte chunk written at offset now, returning its
// delivery offset. dropped reports datagram loss (ordered mode never
// drops — loss is charged as a retransmit stall instead).
func (pc *pacer) next(now time.Duration, n int) (due time.Duration, dropped bool) {
	start := now
	if pc.nextFree > start {
		start = pc.nextFree
	}
	pc.nextFree = start
	if pc.p.Bandwidth > 0 {
		pc.nextFree = start + time.Duration(float64(n)/float64(pc.p.Bandwidth)*float64(time.Second))
	}
	delay := pc.p.Latency
	if pc.p.Jitter > 0 {
		delay += time.Duration(pc.rng.Int63n(int64(pc.p.Jitter)))
	}
	if pc.p.Loss > 0 && pc.rng.Float64() < pc.p.Loss {
		if pc.ordered {
			delay += pc.p.rto()
		} else {
			dropped = true
		}
	}
	due = pc.nextFree + delay
	if pc.ordered {
		if due < pc.lastDue {
			due = pc.lastDue
		}
		pc.lastDue = due
	}
	return due, dropped
}
