package netem

import (
	"net"
	"sync"
	"time"
)

// Wrap shapes the write direction of c with p: writes are chunked at
// the profile MTU, paced through the token bucket, and delivered to
// the underlying connection after the scheduled delay. Reads pass
// through untouched — shaping both directions of a connection means
// wrapping both endpoints (each with its own shaper and RNG stream).
//
// Write blocks when the emulated socket buffer (Profile.Buffer) is
// full, so senders feel the same backpressure a congested real link
// exerts. Close stops accepting writes immediately and closes the
// underlying connection once the queued chunks have drained, bounded
// by a grace deadline so a peer that stopped reading cannot wedge
// teardown.
func Wrap(c net.Conn, p Profile) net.Conn {
	s := &shaper{
		dst:    c,
		pc:     newPacer(p, true),
		mtu:    p.mtu(),
		bufCap: p.buffer(),
		start:  time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return &shapedConn{Conn: c, s: s}
}

// Pipe returns an in-memory connection pair with both directions
// shaped by p — the netem analogue of net.Pipe, used by tests and the
// in-process harness.
func Pipe(p Profile) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return Wrap(a, p), Wrap(b, p)
}

// shapedConn overrides the write path of a net.Conn with a shaper.
type shapedConn struct {
	net.Conn
	s *shaper
}

func (c *shapedConn) Write(b []byte) (int, error) { return c.s.write(b) }

func (c *shapedConn) Close() error { return c.s.close() }

// shaper owns one shaped direction: a bounded FIFO of scheduled
// chunks drained by a pump goroutine at their due times. Due times
// are nondecreasing (ordered pacing), so the pump only ever sleeps on
// the head chunk.
type shaper struct {
	dst    net.Conn
	mtu    int
	bufCap int
	start  time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	pc     *pacer
	q      []chunk
	queued int
	closed bool
	err    error
}

type chunk struct {
	b   []byte
	due time.Duration
}

func (s *shaper) write(b []byte) (int, error) {
	written := 0
	for len(b) > 0 {
		n := len(b)
		if n > s.mtu {
			n = s.mtu
		}
		s.mu.Lock()
		for s.queued+n > s.bufCap && s.queued > 0 && !s.closed && s.err == nil {
			s.cond.Wait()
		}
		if s.closed || s.err != nil {
			err := s.err
			s.mu.Unlock()
			if err == nil {
				err = net.ErrClosed
			}
			return written, err
		}
		// The chunk is copied: callers reuse write buffers as soon as
		// Write returns, but the pump delivers this data much later.
		cp := make([]byte, n)
		copy(cp, b[:n])
		due, _ := s.pc.next(time.Since(s.start), n)
		s.q = append(s.q, chunk{b: cp, due: due})
		s.queued += n
		s.cond.Broadcast()
		s.mu.Unlock()
		b = b[n:]
		written += n
	}
	return written, nil
}

func (s *shaper) close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// run is the pump: it sleeps until the head chunk is due, writes it
// to the underlying connection, and repeats. Once the shaper is
// closed and drained (or a write error is sticky) it closes the
// underlying connection.
func (s *shaper) run() {
	for {
		s.mu.Lock()
		for len(s.q) == 0 && !s.closed && s.err == nil {
			s.cond.Wait()
		}
		if s.err != nil || (s.closed && len(s.q) == 0) {
			s.q, s.queued = nil, 0
			s.cond.Broadcast()
			s.mu.Unlock()
			s.dst.Close()
			return
		}
		c := s.q[0]
		closing := s.closed
		s.mu.Unlock()

		if d := c.due - time.Since(s.start); d > 0 {
			time.Sleep(d)
		}
		if closing {
			// Drain under a grace deadline so a peer that stopped
			// reading cannot hold the socket open forever.
			s.dst.SetWriteDeadline(time.Now().Add(5 * time.Second))
		}
		_, werr := s.dst.Write(c.b)

		s.mu.Lock()
		s.q = s.q[1:]
		s.queued -= len(c.b)
		if werr != nil && s.err == nil {
			s.err = werr
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
