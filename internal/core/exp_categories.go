package core

import (
	"repro/internal/alexa"
	"repro/internal/tornet"
)

func init() {
	Register("categories", "Primary domains by Alexa category (§4.3)", runCategories)
}

// runCategories reproduces the Alexa-categories measurement of §4.3: a
// PrivCount histogram over the per-category top-50 lists. The paper
// found limited insight here — the category containing amazon.com got
// 7.6% of primary domains and 90.6% matched no category (the lists
// cover only 50 sites each, and torproject.org is uncategorized).
func runCategories(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Exit = 0.021 // the paper's category measurement weight

	m := alexa.CategoryMatcher(e.Alexa())
	shares, labels, err := e.runMatcherRound("alexa-categories", m, fr, 0x0CA7_0001)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "categories", Title: "Primary-domain category membership (% of primary domains)"}
	for i, label := range labels {
		paper := "-"
		switch label {
		case "Shopping":
			paper = "7.6% (the category containing amazon.com)"
		case "other":
			paper = "90.6% (no category)"
		}
		rep.Add(label, shares[i], "%", paper)
	}
	rep.Note("category lists are limited to 50 sites each; torproject.org is in no category (§4.3)")
	return rep, nil
}
