package core

import (
	"fmt"
	"time"

	"repro/internal/dp"
	"repro/internal/stats"
)

func init() {
	Register("schedule", "Measurement schedule and privacy budget (§3.1/§3.2)", runSchedule)
}

// studyCalendar encodes the measurement dates the paper reports, one
// row per (statistic, start-date, days). PrivCount and PSC rounds are
// never parallel, and distinct statistics are separated by at least 24
// hours — the discipline dp.Accountant enforces.
var studyCalendar = []struct {
	name  string
	start string // YYYY-MM-DD
	days  int
}{
	{"exit-streams (fig1)", "2018-01-04", 1},
	{"alexa-categories (§4.3)", "2018-01-29", 1},
	{"alexa-rank (fig2)", "2018-01-31", 1},
	{"alexa-siblings (fig2)", "2018-02-01", 1}, // consecutive, but... see note
	{"tld-all (fig3)", "2018-02-02", 1},
	{"tld-alexa (fig3)", "2018-01-30", 1},
	{"unique-alexa-slds (table2)", "2018-03-24", 1},
	{"unique-slds (table2)", "2018-03-31", 1},
	{"client-usage (table4)", "2018-04-07", 1},
	{"unique-ips (table5)", "2018-04-14", 1},
	{"unique-ases (table5)", "2018-04-18", 1},
	{"onions-published (table6)", "2018-04-23", 1},
	{"onions-fetched (table6)", "2018-04-29", 1},
	{"as-hotspots (§5.2)", "2018-05-01", 1},
	{"unique-countries-a (table5)", "2018-05-09", 1},
	{"unique-countries-b (table5)", "2018-05-10", 1},
	{"unique-ips-m1 (table3)", "2018-05-12", 1},
	{"unique-ips-m2 (table3)", "2018-05-13", 1},
	{"unique-ips-4day (table5)", "2018-05-15", 4},
	{"desc-fetches (table7)", "2018-05-20", 1},
	{"rendezvous (table8)", "2018-05-22", 1},
}

// runSchedule replays the paper's measurement calendar through the
// accountant, reporting the cumulative privacy budget consumed by the
// study under sequential composition. Rounds that re-measure the same
// statistic family are named identically so the 24-hour separation
// rule applies only across distinct statistics.
func runSchedule(e *Env) (*Report, error) {
	acct := dp.StudyAccountant()
	rep := &Report{ID: "schedule", Title: "Study measurement schedule under the privacy accountant"}

	authorized := 0
	for _, m := range studyCalendar {
		start, err := time.Parse("2006-01-02", m.start)
		if err != nil {
			return nil, fmt.Errorf("schedule: bad date %q: %v", m.start, err)
		}
		end := start.AddDate(0, 0, m.days)
		if _, err := acct.Authorize(m.name, start, end); err != nil {
			// Same-family consecutive rounds are allowed; a true
			// violation is reported as a row so the reader sees it.
			rep.Note("calendar conflict: %v", err)
			continue
		}
		authorized++
	}
	cum := acct.Cumulative()
	count := float64(authorized)
	rep.Add("Rounds authorized", stats.Interval{Value: count, Lo: count, Hi: count},
		"rounds", fmt.Sprintf("%d calendar entries", len(studyCalendar)))
	rep.Add("Cumulative epsilon", stats.Interval{Value: cum.Epsilon, Lo: cum.Epsilon, Hi: cum.Epsilon},
		"ε", "0.3 per round (§3.2)")
	rep.Add("Cumulative delta", stats.Interval{Value: cum.Delta, Lo: cum.Delta, Hi: cum.Delta},
		"δ", "1e-11 per round")
	perUser := dp.Params{Epsilon: cum.Epsilon, Delta: cum.Delta}.UserProtection(8.8e6)
	rep.Add("nδ at 8.8M users", stats.Interval{Value: perUser, Lo: perUser, Hi: perUser},
		"nδ", "must stay small (§3.2)")
	rep.Note("the paper composes each 24h round independently; sequential composition over the whole study is the conservative bound shown here")
	return rep, nil
}
