package core

import (
	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("table8", "Rendezvous point usage (Table 8)", runTable8)
}

const (
	statRendOutcome = "rend-outcome" // bins: succeeded, conn-closed, expired
	statRendBytes   = "rend-bytes"
	statRendCells   = "rend-cells"
)

// runTable8 reproduces the §6.3 rendezvous round: a PrivCount
// measurement at the measuring relays acting as rendezvous points,
// counting circuits by outcome and the end-to-end encrypted cell
// payload they carried (0.88% rendezvous weight).
func runTable8(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Rend = 0.0088

	counters := []CounterSpec{
		// Sensitivity: 180 rendezvous connections/day (Table 1); each
		// successful rendezvous is two circuits at the RP.
		{Name: statRendOutcome, Bins: []string{"succeeded", "conn-closed", "expired"},
			Sensitivity: 360, Expected: 366e6 * fr.Rend},
		// Sensitivity: 400 MB rendezvous data/day (Table 1).
		{Name: statRendBytes, Bins: []string{""}, Sensitivity: 400 << 20, Expected: 20.1 * tib * fr.Rend},
		{Name: statRendCells, Bins: []string{""}, Sensitivity: (400 << 20) / 498, Expected: 20.1 * tib / 498 * fr.Rend},
	}
	res, err := e.RunPrivCount(PrivCountRun{
		Fractions: fr,
		Days:      1,
		Counters:  counters,
		Handle: func(ev event.Event, inc Incrementer) {
			r, ok := ev.(*event.RendezvousEnd)
			if !ok {
				return
			}
			switch r.Outcome {
			case event.RendSucceeded:
				inc(statRendOutcome, 0, 1)
			case event.RendConnClosed:
				inc(statRendOutcome, 1, 1)
			case event.RendExpired:
				inc(statRendOutcome, 2, 1)
			}
			inc(statRendBytes, 0, float64(r.PayloadBytes))
			inc(statRendCells, 0, float64(r.PayloadCells))
		},
		Salt: 0x0800_0001,
	})
	if err != nil {
		return nil, err
	}

	infer := func(stat string, bin int) (stats.Interval, error) {
		iv, err := stats.InferTotal(res.Interval(stat, bin), fr.Rend)
		if err != nil {
			return stats.Interval{}, err
		}
		return e.paperScale(iv).ClampNonNegative(), nil
	}
	succ, err := infer(statRendOutcome, 0)
	if err != nil {
		return nil, err
	}
	closed, err := infer(statRendOutcome, 1)
	if err != nil {
		return nil, err
	}
	expired, err := infer(statRendOutcome, 2)
	if err != nil {
		return nil, err
	}
	total := stats.Interval{
		Value: succ.Value + closed.Value + expired.Value,
		Lo:    succ.Lo + closed.Lo + expired.Lo,
		Hi:    succ.Hi + closed.Hi + expired.Hi,
	}
	payload, err := infer(statRendBytes, 0)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "table8", Title: "Network-wide rendezvous statistics"}
	rep.Add("Total circuits", total.Scale(1e-6), "M circs", "366 [351; 380] million")
	if total.Value > 0 {
		rep.Add("Succeeded", succ.Scale(100/total.Value), "%", "8.08 [3.47; 13.1]%")
		rep.Add("Failed: conn closed", closed.Scale(100/total.Value), "%", "4.37 [0.0; 9.23]%")
		rep.Add("Failed: circuit expired", expired.Scale(100/total.Value), "%", "84.9 [77.0; 93.5]%")
	}
	rep.Add("Cell payload (TiB)", payload.Scale(1/tib), "TiB", "20.1 [15.2; 24.9]")
	// Gbit/s = bytes*8 / 86400 / 1e9.
	rep.Add("Cell payload rate", payload.Scale(8/daySeconds/1e9), "Gbit/s", "2.04 [1.55; 2.53]")
	if succ.Value > 0 {
		perCirc := payload.Scale(1 / succ.Value / 1024)
		rep.Add("Payload per active circuit", perCirc, "KiB", "730 [341; 2,070]")
	}
	rep.Note("rendezvous weight %.2f%%; payloads are end-to-end encrypted so only cells are observable (§6.3)", fr.Rend*100)
	return rep, nil
}
