package core

import (
	"repro/internal/alexa"
	"repro/internal/tornet"
)

func init() {
	Register("fig3", "Primary domains by top-level domain (Figure 3)", runFig3)
}

// runFig3 reproduces both Figure 3 measurements: the TLD distribution
// of all primary domains (wildcard *.tld matching) and of only those on
// the Alexa list (which also gets a dedicated torproject.org counter).
func runFig3(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	rep := &Report{ID: "fig3", Title: "Primary-domain TLD membership (% of primary domains)"}

	allPaper := map[string]string{
		".com": "37.2", ".org": "44.1", ".net": "5.0", ".br": "0.3",
		".cn": "0.0", ".de": "0.7", ".fr": "0.4", ".in": "0.2",
		".ir": "0.2", ".it": "0.1", ".jp": "0.5", ".pl": "0.3",
		".ru": "2.8", ".uk": "0.5", "other": "7.9",
	}
	fr.Exit = 0.024 // all-sites measurement weight
	allShares, allLabels, err := e.runMatcherRound("tld-all", alexa.TLDMatcher(alexa.Figure3TLDs, nil), fr, 0x0F30_0001)
	if err != nil {
		return nil, err
	}
	for i, label := range allLabels {
		paper, ok := allPaper[label]
		if !ok {
			paper = "-"
		}
		rep.Add("all-sites "+label, allShares[i], "%", paper+"%")
	}

	alexaPaper := map[string]string{
		".com": "26.6", ".org": "1.1", ".net": "1.1", ".br": "0.5",
		".cn": "0.2", ".de": "0.4", ".fr": "0.4", ".in": "0.0",
		".ir": "0.0", ".it": "0.0", ".jp": "0.4", ".pl": "0.2",
		".ru": "2.4", ".uk": "0.1", "torproject.org": "40.4", "other": "26.1",
	}
	fr.Exit = 0.023 // Alexa-only measurement weight
	alexaShares, alexaLabels, err := e.runMatcherRound("tld-alexa", alexa.TLDMatcher(alexa.Figure3TLDs, e.Alexa()), fr, 0x0F30_0002)
	if err != nil {
		return nil, err
	}
	for i, label := range alexaLabels {
		paper, ok := alexaPaper[label]
		if !ok {
			paper = "-"
		}
		rep.Add("alexa-only "+label, alexaShares[i], "%", paper+"%")
	}
	rep.Note("wildcard matching cannot separate torproject.org in the all-sites round (§4.3), so it lands in .org there")
	return rep, nil
}
