package core

// Reference values the paper compares against. These are not inputs to
// any measurement; they appear in report notes so a reader can see the
// same contrasts the paper draws (§5.1, §6.1).
const (
	// TorMetricsDailyUsers is the Tor Metrics Portal estimate of daily
	// users at the time of the study (April 2018).
	TorMetricsDailyUsers = 2.15e6
	// TorMetricsBridges is the bridge count reported by Tor Metrics.
	TorMetricsBridges = 1640
	// TorMetricsV2Onions is the Metrics estimate of unique v2 onion
	// services during the Table 6 measurement window.
	TorMetricsV2Onions = 79e3
	// McCoyCountries and ChaabaneCountries are the country counts from
	// the 2008 and 2010 studies the paper contrasts with (§5.2).
	McCoyCountries    = 125
	ChaabaneCountries = 125
)
