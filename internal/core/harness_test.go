package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func statsInterval(v, lo, hi float64) stats.Interval {
	return stats.Interval{Value: v, Lo: lo, Hi: hi}
}

func TestBaselineUndercount(t *testing.T) {
	rep := runExperiment(t, "baseline")
	metricsEst := rowValue(t, rep, "Metrics-style estimate")
	direct := rowValue(t, rep, "Direct estimate (PSC)")
	factor := rowValue(t, rep, "Undercount factor")
	if metricsEst <= 0 || direct <= 0 {
		t.Fatal("both estimates must be positive")
	}
	// The paper's headline: the directory heuristic undercounts by ~4x.
	if factor < 1.5 || factor > 15 {
		t.Fatalf("undercount factor %v, paper: ~4x", factor)
	}
	if direct <= metricsEst {
		t.Fatal("direct measurement must exceed the heuristic estimate")
	}
}

func TestScheduleBudget(t *testing.T) {
	rep := runExperiment(t, "schedule")
	rounds := rowValue(t, rep, "Rounds authorized")
	if rounds < 15 {
		t.Fatalf("authorized rounds %v; the calendar must mostly satisfy the discipline", rounds)
	}
	eps := rowValue(t, rep, "Cumulative epsilon")
	if math.Abs(eps-0.3*rounds) > 1e-9 {
		t.Fatalf("cumulative epsilon %v for %v rounds", eps, rounds)
	}
	// No calendar conflicts: the paper's schedule is self-consistent.
	for _, n := range rep.Notes {
		if strings.Contains(n, "calendar conflict") {
			t.Fatalf("paper calendar violates the accountant: %s", n)
		}
	}
}

// TestRunPrivCountErrors exercises harness validation paths.
func TestRunPrivCountErrors(t *testing.T) {
	env := sharedTestEnv
	// Duplicate statistic names must fail allocation.
	_, err := env.RunPrivCount(PrivCountRun{
		Fractions: tornet.StudyFractions(),
		Counters: []CounterSpec{
			{Name: "x", Bins: []string{""}, Sensitivity: 1},
			{Name: "x", Bins: []string{""}, Sensitivity: 1},
		},
		Handle: func(event.Event, Incrementer) {},
	})
	if err == nil {
		t.Fatal("duplicate statistics must fail")
	}
	// Invalid fractions must fail the consensus build.
	bad := tornet.StudyFractions()
	bad.Exit = 2
	_, err = env.RunPrivCount(PrivCountRun{
		Fractions: bad,
		Counters:  []CounterSpec{{Name: "x", Bins: []string{""}, Sensitivity: 1}},
		Handle:    func(event.Event, Incrementer) {},
	})
	if err == nil {
		t.Fatal("invalid fractions must fail")
	}
}

func TestRunPSCErrors(t *testing.T) {
	env := sharedTestEnv
	_, err := env.RunPSC(PSCRun{
		Fractions:   tornet.StudyFractions(),
		Item:        func(event.Event) (string, bool) { return "", false },
		Sensitivity: -1,
	})
	if err == nil {
		t.Fatal("negative sensitivity must fail noise calibration")
	}
}

// TestDeterministicReports: identical env parameters yield identical
// simulation outcomes up to protocol noise. We check the deterministic
// parts (the simulated event totals feeding a zero-noise counter).
func TestDeterministicReports(t *testing.T) {
	run := func() float64 {
		env := &Env{Scale: 4000, Seed: 99, AlexaN: 20000, ProofRounds: 0}
		res, err := env.RunPrivCount(PrivCountRun{
			Fractions: tornet.StudyFractions(),
			Counters:  []CounterSpec{{Name: "streams", Bins: []string{""}, Sensitivity: 0}},
			Handle: func(ev event.Event, inc Incrementer) {
				if _, ok := ev.(*event.StreamEnd); ok {
					inc("streams", 0, 1)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Values["streams"][0]
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different event streams: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("no streams simulated")
	}
}

// TestEnvNetemFleet: an Env with a WAN-emulation profile and adaptive
// windows still runs protocol rounds correctly — the whole fleet's
// traffic flows through shaped pipes and negotiated windows.
func TestEnvNetemFleet(t *testing.T) {
	env := &Env{
		Scale: 4000, Seed: 99, AlexaN: 20000, ProofRounds: 0,
		Netem: "lan,seed=5", AdaptiveWindow: true, WindowCap: 4 << 20,
	}
	res, err := env.RunPrivCount(PrivCountRun{
		Fractions: tornet.StudyFractions(),
		Counters:  []CounterSpec{{Name: "streams", Bins: []string{""}, Sensitivity: 0}},
		Handle: func(ev event.Event, inc Incrementer) {
			if _, ok := ev.(*event.StreamEnd); ok {
				inc("streams", 0, 1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["streams"][0] == 0 {
		t.Fatal("no streams counted over the shaped fleet")
	}
	// A bad profile spec must surface as a round error, not a hang.
	bad := &Env{Scale: 4000, Seed: 1, AlexaN: 5000, Netem: "no-such-profile"}
	_, err = bad.RunPrivCount(PrivCountRun{
		Fractions: tornet.StudyFractions(),
		Counters:  []CounterSpec{{Name: "x", Bins: []string{""}, Sensitivity: 1}},
		Handle:    func(event.Event, Incrementer) {},
	})
	if err == nil {
		t.Fatal("unknown netem profile must fail the run")
	}
}

// TestEnvCaching: the Alexa list and databases build once per env.
func TestEnvCaching(t *testing.T) {
	env := &Env{Scale: 4000, Seed: 1, AlexaN: 5000, ProofRounds: 0}
	l1 := env.Alexa()
	l2 := env.Alexa()
	if l1 != l2 {
		t.Fatal("alexa list must be cached")
	}
	g1, a1 := env.Databases()
	g2, a2 := env.Databases()
	if g1 != g2 || a1 != a2 {
		t.Fatal("databases must be cached")
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "x", Title: "T"}
	rep.Add("row", statsInterval(1, 0, 2), "u", "p")
	rep.Note("note %d", 7)
	s := rep.String()
	for _, want := range []string{"== x — T ==", "row", "paper: p", "note: note 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, s)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register("table1", "dup", nil)
}
