package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dp"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/netem"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/spill"
	"repro/internal/stats"
	"repro/internal/tornet"
	"repro/internal/wire"
)

// This file is the deployment harness. The protocol parties — 3
// computation parties, 3 share keepers, one data-collector host per
// measuring relay — are built once per Env and register persistent
// multiplexed sessions with a round engine; every experiment then
// schedules its rounds over those sessions, attaches the per-round DCs
// to the simulator's event bus, runs the virtual measurement period,
// and gathers results. Concurrent experiments share the same party
// fleet, and a failed round is isolated to its own streams.
//
// Noise scaling: the dp package computes the calibrated noise for the
// real network; the harness divides sigma by the scale divisor (and
// PSC coin trials by its square) so the *relative* noise level in the
// scaled simulation matches the paper's deployment. EXPERIMENTS.md
// documents this regime.

// Incrementer updates a PrivCount statistic bin.
type Incrementer func(stat string, bin int, delta float64)

// CounterSpec declares one PrivCount statistic for a round.
type CounterSpec struct {
	Name string
	Bins []string
	// Sensitivity at paper scale, derived from the Table 1 action
	// bounds (documented per experiment).
	Sensitivity float64
	// Expected magnitude at paper scale, for optimal allocation; zero
	// selects equal allocation weighting for this statistic.
	Expected float64
}

// Fleet sizes matching the paper's deployment (§3.1).
const (
	harnessCPs = 3
	harnessSKs = 3
)

// dcDelivery hands one round's DC role from its host session to the
// experiment driving the round. The driver closes done once the DC has
// finished (or the round is abandoned), releasing the host's handler.
type dcDelivery struct {
	host int
	psc  *psc.DC
	priv *privcount.DC
	done chan struct{}
}

// partyRuntime is an Env's persistent protocol fleet.
type partyRuntime struct {
	eng *engine.Engine
	// connOpts configures every party pipe: WAN emulation and window
	// tuning from the Env knobs.
	connOpts []wire.Option

	mu         sync.Mutex
	numDCs     int
	deliveries map[uint64]chan dcDelivery
}

// runtime builds the Env's fleet on first use: CPs and SKs register
// immediately, DC hosts are added as experiments need them.
func (e *Env) runtime() (*partyRuntime, error) {
	e.rtMu.Lock()
	defer e.rtMu.Unlock()
	if e.rt != nil {
		return e.rt, nil
	}
	if e.SpillDir != "" {
		spill.SetDir(e.SpillDir)
	}
	rt := &partyRuntime{eng: engine.New(), deliveries: make(map[uint64]chan dcDelivery)}
	if p, err := netem.ParseProfile(e.Netem); err != nil {
		return nil, err
	} else if p != nil {
		rt.connOpts = append(rt.connOpts, netem.WireOption(*p))
	}
	if e.AdaptiveWindow {
		rt.connOpts = append(rt.connOpts, wire.WithAdaptiveWindow(e.WindowCap))
	}
	for i := 0; i < harnessCPs; i++ {
		sess, err := rt.attach(engine.RoleCP, fmt.Sprintf("cp-%d", i))
		if err != nil {
			return nil, err
		}
		go engine.ServeCP(sess, fmt.Sprintf("cp-%d", i), nil)
	}
	for i := 0; i < harnessSKs; i++ {
		sess, err := rt.attach(engine.RoleSK, fmt.Sprintf("sk-%d", i))
		if err != nil {
			return nil, err
		}
		go engine.ServeSK(sess, fmt.Sprintf("sk-%d", i))
	}
	e.rt = rt
	return rt, nil
}

// attach wires one party to the engine over an in-memory pipe and
// returns the party-side session. The engine side is registered under
// the given role directly (the hello handshake is exercised by the
// daemon deployment; in process it would only add latency).
func (rt *partyRuntime) attach(role, name string) (*wire.Session, error) {
	tsConn, partyConn := wire.Pipe(rt.connOpts...)
	tsSess := wire.NewSession(tsConn, false)
	partySess := wire.NewSession(partyConn, true)
	var err error
	switch role {
	case engine.RoleCP:
		err = rt.eng.AddCP(name, tsSess)
	case engine.RoleSK:
		err = rt.eng.AddSK(name, tsSess)
	case engine.RoleDC:
		err = rt.eng.AddDC(name, tsSess)
	default:
		err = fmt.Errorf("core: unknown role %q", role)
	}
	if err != nil {
		return nil, err
	}
	return partySess, nil
}

// ensureDCs grows the DC host pool to at least n sessions.
func (rt *partyRuntime) ensureDCs(n int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for rt.numDCs < n {
		host := rt.numDCs
		name := fmt.Sprintf("dc-%d", host)
		sess, err := rt.attach(engine.RoleDC, name)
		if err != nil {
			return err
		}
		go engine.ServeRounds(sess, func(st *wire.Stream) error {
			return rt.serveDCRound(host, name, st)
		})
		rt.numDCs++
	}
	return nil
}

// serveDCRound handles one round stream on a DC host: it creates the
// per-round DC, completes setup, hands the DC to the experiment, and
// holds the stream open until the experiment releases it.
func (rt *partyRuntime) serveDCRound(host int, name string, st *wire.Stream) error {
	d := dcDelivery{host: host, done: make(chan struct{})}
	switch st.Label() {
	case engine.LabelPSC:
		dc := psc.NewDC(name, st)
		if err := dc.Setup(); err != nil {
			return err
		}
		d.psc = dc
	case engine.LabelPrivCount:
		dc := privcount.NewDC(name, st, nil)
		if err := dc.Setup(); err != nil {
			return err
		}
		d.priv = dc
	default:
		return fmt.Errorf("core: unexpected round stream %q", st.Label())
	}
	rt.delivery(st.Round()) <- d
	// The experiment closes done after Finish; a round that dies first
	// (abort, sibling failure) resets this stream, and Failed unblocks
	// the handler even if the experiment never drained the delivery.
	select {
	case <-d.done:
	case <-st.Failed():
	}
	return nil
}

// delivery returns (creating if needed) the round's DC hand-off
// channel. Host handlers and the scheduling experiment race to touch a
// round first, so creation is first-come.
func (rt *partyRuntime) delivery(round uint64) chan dcDelivery {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ch, ok := rt.deliveries[round]
	if !ok {
		ch = make(chan dcDelivery, 64)
		rt.deliveries[round] = ch
	}
	return ch
}

// releaseRound forgets a completed round's hand-off channel.
func (rt *partyRuntime) releaseRound(round uint64) {
	rt.mu.Lock()
	delete(rt.deliveries, round)
	rt.mu.Unlock()
}

// collectDCs waits for n DC roles of a round, watching for early round
// failure (e.g. a setup error aborting the round).
func (rt *partyRuntime) collectDCs(r *engine.Round, n int) ([]dcDelivery, error) {
	ch := rt.delivery(r.ID)
	out := make([]dcDelivery, 0, n)
	for len(out) < n {
		select {
		case d := <-ch:
			out = append(out, d)
		case <-r.Done():
			// Drain any deliveries that raced with the failure so their
			// handlers unwind.
			for {
				select {
				case d := <-ch:
					close(d.done)
				default:
					err := r.Err()
					if err == nil {
						err = fmt.Errorf("core: round %d ended before all DCs attached", r.ID)
					}
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// Close releases the Env's party fleet. Safe to call multiple times;
// experiments started afterwards rebuild it.
func (e *Env) Close() {
	e.rtMu.Lock()
	defer e.rtMu.Unlock()
	if e.rt != nil {
		e.rt.eng.Close()
		e.rt = nil
	}
}

// PrivCountRun describes one PrivCount measurement round.
type PrivCountRun struct {
	Fractions tornet.Fractions
	Days      int
	Counters  []CounterSpec
	// Handle converts an observed event into counter increments. It
	// runs in the context of the observing relay's DC.
	Handle func(e event.Event, inc Incrementer)
	// Salt decorrelates this round's population from other rounds.
	Salt uint64
}

// PrivCountResult carries a round's noisy totals and the sigmas used,
// both at simulation scale.
type PrivCountResult struct {
	Values map[string][]float64
	Sigmas map[string]float64
	Sim    *Sim
}

// Interval builds the 95% CI for a statistic bin at simulation scale.
func (r *PrivCountResult) Interval(stat string, bin int) stats.Interval {
	return stats.NormalCI(r.Values[stat][bin], r.Sigmas[stat])
}

// RunPrivCount executes a full PrivCount round over the simulation: 3
// share keepers, one DC per measuring relay, one tally server, all
// speaking the real protocol over the Env's persistent sessions.
func (e *Env) RunPrivCount(run PrivCountRun) (*PrivCountResult, error) {
	return e.RunPrivCountWithSim(run, nil)
}

// RunPrivCountWithSim is RunPrivCount with a hook invoked after the
// simulation is built but before any events flow, letting experiments
// capture simulation state their handlers need (e.g. the ahmia index).
func (e *Env) RunPrivCountWithSim(run PrivCountRun, onSim func(*Sim)) (*PrivCountResult, error) {
	if run.Days <= 0 {
		run.Days = 1
	}
	sim, err := e.BuildSim(run.Fractions, run.Salt)
	if err != nil {
		return nil, err
	}
	if onSim != nil {
		onSim(sim)
	}

	// Noise calibration at paper scale, then scaled down.
	dpStats := make([]dp.Statistic, len(run.Counters))
	mode := dp.AllocateEqual
	for i, c := range run.Counters {
		dpStats[i] = dp.Statistic{Name: c.Name, Sensitivity: c.Sensitivity, Expected: c.Expected}
		if c.Expected > 0 {
			mode = dp.AllocateOptimal
		}
	}
	alloc, err := dp.Allocate(dp.StudyParams(), dpStats, mode)
	if err != nil {
		return nil, err
	}
	cfgStats := make([]privcount.StatConfig, len(run.Counters))
	sigmas := make(map[string]float64, len(run.Counters))
	for i, c := range run.Counters {
		sigma := alloc.Sigmas[c.Name] / e.Scale * float64(run.Days)
		sigmas[c.Name] = sigma
		cfgStats[i] = privcount.StatConfig{Name: c.Name, Bins: c.Bins, Sigma: sigma}
	}

	relays := sim.Net.Consensus.MeasuringRelays()
	rt, err := e.runtime()
	if err != nil {
		return nil, err
	}
	if err := rt.ensureDCs(len(relays)); err != nil {
		return nil, err
	}
	round, err := rt.eng.StartPrivCount(privcount.TallyConfig{
		Stats: cfgStats, NumDCs: len(relays), NumSKs: harnessSKs,
	}, nil)
	if err != nil {
		return nil, err
	}
	defer rt.releaseRound(round.ID)
	dcs, err := rt.collectDCs(round, len(relays))
	if err != nil {
		return nil, err
	}

	// Attach each round DC to its relay's event feed.
	for _, d := range dcs {
		dc := d.priv
		inc := func(stat string, bin int, delta float64) {
			// Unknown statistics are a programming error in the
			// experiment; surface loudly.
			if err := dc.Increment(stat, bin, delta); err != nil {
				panic(err)
			}
		}
		sim.Net.Bus.SubscribeFiltered([]event.RelayID{relays[d.host]}, nil, func(ev event.Event) {
			run.Handle(ev, inc)
		})
	}

	sim.Driver.Run(run.Days)

	// Finish concurrently: the tally server collects reports in its own
	// order, and large reports can exceed a stream's flow-control
	// window, so sequential finishing could stall against the TS's
	// collection order.
	finishErrs := make(chan error, len(dcs))
	for _, d := range dcs {
		go func(d dcDelivery) {
			finishErrs <- d.priv.Finish()
			close(d.done)
		}(d)
	}
	var finishErr error
	for range dcs {
		if err := <-finishErrs; err != nil && finishErr == nil {
			finishErr = err
		}
	}
	res, err := round.WaitPrivCount()
	if err != nil {
		return nil, err
	}
	if finishErr != nil {
		return nil, finishErr
	}
	return &PrivCountResult{Values: res, Sigmas: sigmas, Sim: sim}, nil
}

// PSCRun describes one PSC unique-count round.
type PSCRun struct {
	Fractions tornet.Fractions
	Days      int
	// Relays restricts the DC deployment to relays in a position to
	// observe the events of interest (§3.1); nil uses all measuring
	// relays.
	Relays []event.RelayID
	// Item extracts the set item from an event ("", false to skip).
	Item func(e event.Event) (string, bool)
	// Sensitivity is the per-day action bound for the item type.
	Sensitivity float64
	// ExpectedUnique estimates the observed distinct count, used to
	// size the hash table (bins ≈ 4× expected, clamped).
	ExpectedUnique int
	Salt           uint64
}

// PSCResult carries the protocol output and the derived interval, both
// at simulation scale.
type PSCResult struct {
	Raw      psc.Result
	Interval stats.Interval
	Sim      *Sim
}

// RunPSC executes a full PSC round over the simulation: 3 computation
// parties, one DC per selected relay, one tally server.
func (e *Env) RunPSC(run PSCRun) (*PSCResult, error) {
	return e.RunPSCWithSim(run, nil)
}

// RunPSCWithSim is RunPSC with a hook invoked after the simulation is
// built but before any events flow.
func (e *Env) RunPSCWithSim(run PSCRun, onSim func(*Sim)) (*PSCResult, error) {
	if run.Days <= 0 {
		run.Days = 1
	}
	sim, err := e.BuildSim(run.Fractions, run.Salt)
	if err != nil {
		return nil, err
	}
	if onSim != nil {
		onSim(sim)
	}
	relays := run.Relays
	if relays == nil {
		relays = sim.Net.Consensus.MeasuringRelays()
	}

	// Full-deployment coin trials, then scaled by Scale² so relative
	// noise matches; floor keeps the noise model non-degenerate.
	fullTrials, err := dp.PSCNoiseTrials(dp.StudyParams(), run.Sensitivity*float64(run.Days), harnessCPs)
	if err != nil {
		return nil, err
	}
	perCP := int(math.Ceil(float64(fullTrials) / (e.Scale * e.Scale)))
	if perCP < 16 {
		perCP = 16
	}

	bins := 256
	for bins < 4*run.ExpectedUnique {
		bins *= 2
	}
	if bins > 1<<16 {
		bins = 1 << 16
	}

	rt, err := e.runtime()
	if err != nil {
		return nil, err
	}
	if err := rt.ensureDCs(len(relays)); err != nil {
		return nil, err
	}
	round, err := rt.eng.StartPSC(psc.Config{
		Bins:               bins,
		NoisePerCP:         perCP,
		ShuffleProofRounds: e.ProofRounds,
		ShuffleBlockElems:  e.ShuffleBlock,
		ShufflePasses:      e.ShufflePasses,
		NumDCs:             len(relays),
		NumCPs:             harnessCPs,
	}, nil)
	if err != nil {
		return nil, err
	}
	defer rt.releaseRound(round.ID)
	dcs, err := rt.collectDCs(round, len(relays))
	if err != nil {
		return nil, err
	}

	for _, d := range dcs {
		dc := d.psc
		sim.Net.Bus.SubscribeFiltered([]event.RelayID{relays[d.host]}, nil, func(ev event.Event) {
			if item, ok := run.Item(ev); ok {
				if err := dc.Observe(item); err != nil {
					panic(err)
				}
			}
		})
	}

	sim.Driver.Run(run.Days)

	// Finish concurrently: a large table exceeds a stream's window, so
	// sequential finishing could stall against the TS's per-DC readers.
	finishErrs := make(chan error, len(dcs))
	for _, d := range dcs {
		go func(d dcDelivery) {
			finishErrs <- d.psc.Finish()
			close(d.done)
		}(d)
	}
	var finishErr error
	for range dcs {
		if err := <-finishErrs; err != nil && finishErr == nil {
			finishErr = err
		}
	}
	res, err := round.WaitPSC()
	if err != nil {
		return nil, err
	}
	if finishErr != nil {
		return nil, finishErr
	}
	iv, err := stats.UnionCardinalityCI(stats.PSCObservation{
		Reported: res.Reported, Bins: res.Bins, NoiseTrials: res.NoiseTrials,
	})
	if err != nil {
		return nil, err
	}
	return &PSCResult{Raw: res, Interval: iv, Sim: sim}, nil
}

// paperScale converts a simulation-scale interval to paper scale.
func (e *Env) paperScale(iv stats.Interval) stats.Interval { return iv.Scale(e.Scale) }

// daySeconds is used for per-second rates.
const daySeconds = float64(24 * 60 * 60)
