package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dp"
	"repro/internal/event"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/stats"
	"repro/internal/tornet"
	"repro/internal/wire"
)

// This file is the deployment harness: it spins up the PrivCount or PSC
// parties as concurrent goroutines connected by the wire transport,
// attaches one data collector per measuring relay to the simulator's
// event bus, runs the virtual measurement period, and gathers results.
//
// Noise scaling: the dp package computes the calibrated noise for the
// real network; the harness divides sigma by the scale divisor (and
// PSC coin trials by its square) so the *relative* noise level in the
// scaled simulation matches the paper's deployment. EXPERIMENTS.md
// documents this regime.

// Incrementer updates a PrivCount statistic bin.
type Incrementer func(stat string, bin int, delta float64)

// CounterSpec declares one PrivCount statistic for a round.
type CounterSpec struct {
	Name string
	Bins []string
	// Sensitivity at paper scale, derived from the Table 1 action
	// bounds (documented per experiment).
	Sensitivity float64
	// Expected magnitude at paper scale, for optimal allocation; zero
	// selects equal allocation weighting for this statistic.
	Expected float64
}

// PrivCountRun describes one PrivCount measurement round.
type PrivCountRun struct {
	Fractions tornet.Fractions
	Days      int
	Counters  []CounterSpec
	// Handle converts an observed event into counter increments. It
	// runs in the context of the observing relay's DC.
	Handle func(e event.Event, inc Incrementer)
	// Salt decorrelates this round's population from other rounds.
	Salt uint64
}

// PrivCountResult carries a round's noisy totals and the sigmas used,
// both at simulation scale.
type PrivCountResult struct {
	Values map[string][]float64
	Sigmas map[string]float64
	Sim    *Sim
}

// Interval builds the 95% CI for a statistic bin at simulation scale.
func (r *PrivCountResult) Interval(stat string, bin int) stats.Interval {
	return stats.NormalCI(r.Values[stat][bin], r.Sigmas[stat])
}

// RunPrivCount executes a full PrivCount round over the simulation: 3
// share keepers, one DC per measuring relay, one tally server, all
// speaking the real protocol over in-memory transport.
func (e *Env) RunPrivCount(run PrivCountRun) (*PrivCountResult, error) {
	return e.RunPrivCountWithSim(run, nil)
}

// RunPrivCountWithSim is RunPrivCount with a hook invoked after the
// simulation is built but before any events flow, letting experiments
// capture simulation state their handlers need (e.g. the ahmia index).
func (e *Env) RunPrivCountWithSim(run PrivCountRun, onSim func(*Sim)) (*PrivCountResult, error) {
	if run.Days <= 0 {
		run.Days = 1
	}
	sim, err := e.BuildSim(run.Fractions, run.Salt)
	if err != nil {
		return nil, err
	}
	if onSim != nil {
		onSim(sim)
	}

	// Noise calibration at paper scale, then scaled down.
	dpStats := make([]dp.Statistic, len(run.Counters))
	mode := dp.AllocateEqual
	for i, c := range run.Counters {
		dpStats[i] = dp.Statistic{Name: c.Name, Sensitivity: c.Sensitivity, Expected: c.Expected}
		if c.Expected > 0 {
			mode = dp.AllocateOptimal
		}
	}
	alloc, err := dp.Allocate(dp.StudyParams(), dpStats, mode)
	if err != nil {
		return nil, err
	}
	cfgStats := make([]privcount.StatConfig, len(run.Counters))
	sigmas := make(map[string]float64, len(run.Counters))
	for i, c := range run.Counters {
		sigma := alloc.Sigmas[c.Name] / e.Scale * float64(run.Days)
		sigmas[c.Name] = sigma
		cfgStats[i] = privcount.StatConfig{Name: c.Name, Bins: c.Bins, Sigma: sigma}
	}

	relays := sim.Net.Consensus.MeasuringRelays()
	const numSKs = 3
	tally, err := privcount.NewTally(privcount.TallyConfig{
		Round: 1, Stats: cfgStats, NumDCs: len(relays), NumSKs: numSKs,
	})
	if err != nil {
		return nil, err
	}

	var tsConns []*wire.Conn
	var skWG, setupWG sync.WaitGroup
	errs := make(chan error, len(relays)+numSKs+1)

	for i := 0; i < numSKs; i++ {
		tsSide, skSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		sk, err := privcount.NewSK(fmt.Sprintf("sk-%d", i), skSide)
		if err != nil {
			return nil, err
		}
		skWG.Add(1)
		go func() {
			defer skWG.Done()
			if err := sk.Serve(); err != nil {
				errs <- err
			}
		}()
	}
	dcs := make([]*privcount.DC, len(relays))
	for i, relay := range relays {
		tsSide, dcSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		dcs[i] = privcount.NewDC(fmt.Sprintf("dc-%d", relay), dcSide, nil)
		setupWG.Add(1)
		go func(dc *privcount.DC) {
			defer setupWG.Done()
			if err := dc.Setup(); err != nil {
				errs <- err
			}
		}(dcs[i])
	}
	resCh := make(chan map[string][]float64, 1)
	go func() {
		res, err := tally.Run(tsConns)
		if err != nil {
			errs <- err
			return
		}
		resCh <- res
	}()
	setupWG.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	// Attach each relay's DC to the event bus.
	for i, relay := range relays {
		dc := dcs[i]
		inc := func(stat string, bin int, delta float64) {
			// Unknown statistics are a programming error in the
			// experiment; surface loudly.
			if err := dc.Increment(stat, bin, delta); err != nil {
				panic(err)
			}
		}
		sim.Net.Bus.SubscribeFiltered([]event.RelayID{relay}, nil, func(ev event.Event) {
			run.Handle(ev, inc)
		})
	}

	sim.Driver.Run(run.Days)

	// Finish concurrently: the tally server collects reports in its own
	// order, and the pipe transport is synchronous, so sequential
	// finishing could deadlock against the TS's collection order.
	var finWG sync.WaitGroup
	for _, dc := range dcs {
		finWG.Add(1)
		go func(dc *privcount.DC) {
			defer finWG.Done()
			if err := dc.Finish(); err != nil {
				errs <- err
			}
		}(dc)
	}
	finWG.Wait()
	skWG.Wait()
	select {
	case res := <-resCh:
		return &PrivCountResult{Values: res, Sigmas: sigmas, Sim: sim}, nil
	case err := <-errs:
		return nil, err
	}
}

// PSCRun describes one PSC unique-count round.
type PSCRun struct {
	Fractions tornet.Fractions
	Days      int
	// Relays restricts the DC deployment to relays in a position to
	// observe the events of interest (§3.1); nil uses all measuring
	// relays.
	Relays []event.RelayID
	// Item extracts the set item from an event ("", false to skip).
	Item func(e event.Event) (string, bool)
	// Sensitivity is the per-day action bound for the item type.
	Sensitivity float64
	// ExpectedUnique estimates the observed distinct count, used to
	// size the hash table (bins ≈ 4× expected, clamped).
	ExpectedUnique int
	Salt           uint64
}

// PSCResult carries the protocol output and the derived interval, both
// at simulation scale.
type PSCResult struct {
	Raw      psc.Result
	Interval stats.Interval
	Sim      *Sim
}

// RunPSC executes a full PSC round over the simulation: 3 computation
// parties, one DC per selected relay, one tally server.
func (e *Env) RunPSC(run PSCRun) (*PSCResult, error) {
	return e.RunPSCWithSim(run, nil)
}

// RunPSCWithSim is RunPSC with a hook invoked after the simulation is
// built but before any events flow.
func (e *Env) RunPSCWithSim(run PSCRun, onSim func(*Sim)) (*PSCResult, error) {
	if run.Days <= 0 {
		run.Days = 1
	}
	sim, err := e.BuildSim(run.Fractions, run.Salt)
	if err != nil {
		return nil, err
	}
	if onSim != nil {
		onSim(sim)
	}
	relays := run.Relays
	if relays == nil {
		relays = sim.Net.Consensus.MeasuringRelays()
	}

	const numCPs = 3
	// Full-deployment coin trials, then scaled by Scale² so relative
	// noise matches; floor keeps the noise model non-degenerate.
	fullTrials, err := dp.PSCNoiseTrials(dp.StudyParams(), run.Sensitivity*float64(run.Days), numCPs)
	if err != nil {
		return nil, err
	}
	perCP := int(math.Ceil(float64(fullTrials) / (e.Scale * e.Scale)))
	if perCP < 16 {
		perCP = 16
	}

	bins := 256
	for bins < 4*run.ExpectedUnique {
		bins *= 2
	}
	if bins > 1<<16 {
		bins = 1 << 16
	}

	cfg := psc.Config{
		Round:              1,
		Bins:               bins,
		NoisePerCP:         perCP,
		ShuffleProofRounds: e.ProofRounds,
		NumDCs:             len(relays),
		NumCPs:             numCPs,
	}
	tally, err := psc.NewTally(cfg)
	if err != nil {
		return nil, err
	}

	var tsConns []*wire.Conn
	var cpWG, setupWG sync.WaitGroup
	errs := make(chan error, len(relays)+numCPs+1)
	for i := 0; i < numCPs; i++ {
		tsSide, cpSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		cp := psc.NewCP(fmt.Sprintf("cp-%d", i), cpSide, nil)
		cpWG.Add(1)
		go func() {
			defer cpWG.Done()
			if err := cp.Serve(); err != nil {
				errs <- err
			}
		}()
	}
	dcs := make([]*psc.DC, len(relays))
	for i, relay := range relays {
		tsSide, dcSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		dcs[i] = psc.NewDC(fmt.Sprintf("dc-%d", relay), dcSide)
		setupWG.Add(1)
		go func(dc *psc.DC) {
			defer setupWG.Done()
			if err := dc.Setup(); err != nil {
				errs <- err
			}
		}(dcs[i])
	}
	resCh := make(chan psc.Result, 1)
	go func() {
		res, err := tally.Run(tsConns)
		if err != nil {
			errs <- err
			return
		}
		resCh <- res
	}()
	setupWG.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	for i, relay := range relays {
		dc := dcs[i]
		sim.Net.Bus.SubscribeFiltered([]event.RelayID{relay}, nil, func(ev event.Event) {
			if item, ok := run.Item(ev); ok {
				if err := dc.Observe(item); err != nil {
					panic(err)
				}
			}
		})
	}

	sim.Driver.Run(run.Days)

	// Finish concurrently: the PSC tally collects tables in sorted-name
	// order, which need not match relay order, and pipe writes block.
	var finWG sync.WaitGroup
	for _, dc := range dcs {
		finWG.Add(1)
		go func(dc *psc.DC) {
			defer finWG.Done()
			if err := dc.Finish(); err != nil {
				errs <- err
			}
		}(dc)
	}
	finWG.Wait()
	cpWG.Wait()
	select {
	case res := <-resCh:
		iv, err := stats.UnionCardinalityCI(stats.PSCObservation{
			Reported: res.Reported, Bins: res.Bins, NoiseTrials: res.NoiseTrials,
		})
		if err != nil {
			return nil, err
		}
		return &PSCResult{Raw: res, Interval: iv, Sim: sim}, nil
	case err := <-errs:
		return nil, err
	}
}

// paperScale converts a simulation-scale interval to paper scale.
func (e *Env) paperScale(iv stats.Interval) stats.Interval { return iv.Scale(e.Scale) }

// daySeconds is used for per-second rates.
const daySeconds = float64(24 * 60 * 60)
