package core

import (
	"fmt"

	"repro/internal/alexa"
	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("fig2", "Primary domains in Alexa rank and sibling sets (Figure 2)", runFig2)
}

// primaryDomain reduces a stream event to the paper's "primary domain":
// the registered domain of an initial stream that provided a hostname
// and targeted a web port (§4.1, §4.3). Returns false otherwise.
func primaryDomain(psl *alexa.PublicSuffixList, ev event.Event) (string, bool) {
	s, ok := ev.(*event.StreamEnd)
	if !ok || !s.IsInitial || s.Target != event.TargetHostname || !s.IsWebPort() {
		return "", false
	}
	dom, ok := psl.RegisteredDomain(s.Hostname)
	if !ok {
		// Unknown suffix: still a primary domain access, keep the raw
		// host for set matching (it will fall into "other" bins).
		return s.Hostname, true
	}
	return dom, true
}

// matcherCounters builds a one-statistic histogram spec from a matcher.
func matcherCounters(name string, m *alexa.Matcher, sensitivity, expected float64) []CounterSpec {
	return []CounterSpec{{
		Name: name, Bins: m.Labels(),
		Sensitivity: sensitivity, Expected: expected,
	}}
}

// runMatcherRound runs a 24h PrivCount round counting primary-domain
// membership in the matcher's bins and returns the per-bin shares (%).
func (e *Env) runMatcherRound(name string, m *alexa.Matcher, fr tornet.Fractions, salt uint64) ([]stats.Interval, []string, error) {
	psl := e.Alexa().PSL()
	// Sensitivity: 20 domain connections/day (Table 1); a user's 20
	// visits could all land in the same bin.
	res, err := e.RunPrivCount(PrivCountRun{
		Fractions: fr,
		Days:      1,
		Counters:  matcherCounters(name, m, 20, 1e8*fr.Exit),
		Handle: func(ev event.Event, inc Incrementer) {
			if dom, ok := primaryDomain(psl, ev); ok {
				inc(name, m.Match(dom), 1)
			}
		},
		Salt: salt,
	})
	if err != nil {
		return nil, nil, err
	}

	labels := m.Labels()
	totalVal := 0.0
	for bin := range labels {
		v := res.Values[name][bin]
		if v > 0 {
			totalVal += v
		}
	}
	if totalVal <= 0 {
		return nil, nil, fmt.Errorf("%s: no primary domains observed", name)
	}
	shares := make([]stats.Interval, len(labels))
	for bin := range labels {
		iv := res.Interval(name, bin).ClampNonNegative()
		shares[bin] = iv.Scale(100 / totalVal)
	}
	return shares, labels, nil
}

// runFig2 reproduces both Figure 2 measurements: membership of primary
// domains in Alexa rank subsets (top) and in top-10 sibling sets
// (bottom), as percentages of all primary domains.
func runFig2(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Exit = 0.022 // the paper's rank measurement exit weight

	rep := &Report{ID: "fig2", Title: "Primary-domain set membership (% of primary domains)"}

	rankPaper := map[string]string{
		"(0,10]": "8.4", "(10,100]": "5.1", "(100,1k]": "6.2",
		"(1k,10k]": "4.3", "(10k,100k]": "7.7", "(100k,1m]": "7.0",
		"torproject.org": "40.1", "other": "21.7",
	}
	rankShares, rankLabels, err := e.runMatcherRound("alexa-rank", alexa.RankSetMatcher(e.Alexa()), fr, 0x0F20_0001)
	if err != nil {
		return nil, err
	}
	for i, label := range rankLabels {
		paper, ok := rankPaper[label]
		if !ok {
			paper = "-"
		}
		rep.Add("rank "+label, rankShares[i], "%", paper+"%")
	}

	fr.Exit = 0.021 // siblings measurement exit weight
	sibPaper := map[string]string{
		"google (1)": "2.4", "youtube (2)": "0.1", "facebook (3)": "0.3",
		"baidu (4)": "0.0", "wikipedia (5)": "0.0", "yahoo (6)": "0.2",
		"reddit (8)": "0.0", "qq (9)": "0.1", "amazon (10)": "9.7",
		"duckduckgo": "0.4", "torproject": "39.0", "other": "48.1",
	}
	sibShares, sibLabels, err := e.runMatcherRound("alexa-siblings", alexa.SiblingSetMatcher(e.Alexa()), fr, 0x0F20_0002)
	if err != nil {
		return nil, err
	}
	for i, label := range sibLabels {
		paper, ok := sibPaper[label]
		if !ok {
			paper = "-"
		}
		rep.Add("sibling "+label, sibShares[i], "%", paper+"%")
	}
	rep.Note("onionoo.torproject.org follow-up: see the torproject bins (paper: 43.4%%)")
	return rep, nil
}
