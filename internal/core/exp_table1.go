package core

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/stats"
)

func init() {
	Register("table1", "Action bounds for measurements (Table 1)", runTable1)
}

// runTable1 derives the action-bound table from the activity models of
// §3.2 — web browsing, Ricochet chat, and running an onionsite — and
// renders it against the paper's published bounds. This experiment is a
// pure derivation: no simulation or protocol round is involved.
func runTable1(e *Env) (*Report, error) {
	bounds := dp.StudyBounds()
	rep := &Report{ID: "table1", Title: "Action bounds for measurements"}

	type rowSpec struct {
		action dp.Action
		label  string
		unit   string
		scale  float64 // render divisor (e.g. bytes -> MB)
		paper  string
	}
	const mb = 1 << 20
	specs := []rowSpec{
		{dp.ActionConnectDomain, "Connect to domain", "domains", 1, "20 domains (web)"},
		{dp.ActionExitData, "Send or receive exit data", "MB", mb, "400 MB (web)"},
		{dp.ActionNewIPFirstDay, "Connect from new IP (day 1)", "IPs", 1, "4 IPs (n/a)"},
		{dp.ActionNewIPLaterDay, "Connect from new IP (day 2+)", "IPs", 1, "3 IPs (n/a)"},
		{dp.ActionTCPConnect, "Create TCP connection to Tor", "conns", 1, "12 connections (n/a)"},
		{dp.ActionCircuit, "Create circuit through guard", "circuits", 1, "651 circuits (chat)"},
		{dp.ActionEntryData, "Send or receive entry data", "MB", mb, "407 MB (web)"},
		{dp.ActionDescUpload, "Upload descriptor", "uploads", 1, "450 uploads (onionsite)"},
		{dp.ActionDescUploadNewAddress, "Upload descriptor, new address", "addresses", 1, "3 addresses (onionsite)"},
		{dp.ActionDescFetch, "Fetch descriptor", "fetches", 1, "30 fetches (onionsite)"},
		{dp.ActionRendConnect, "Create rendezvous connection", "conns", 1, "180 connections (chat)"},
		{dp.ActionRendData, "Send or receive rendezvous data", "MB", mb, "400 MB (web/onionsite)"},
	}
	for _, s := range specs {
		row, ok := bounds[s.action]
		if !ok {
			return nil, fmt.Errorf("table1: no derived bound for %v", s.action)
		}
		v := row.Daily / s.scale
		rep.Add(fmt.Sprintf("%s [%s]", s.label, row.Defining),
			stats.Interval{Value: v, Lo: v, Hi: v}, s.unit, s.paper)
	}
	rep.Note("bounds derived from activity models: web=%+v", dp.DefaultWeb())
	rep.Note("4-day IP adjacency bound (churn measurement): %.0f IPs",
		bounds.OverDays(dp.ActionNewIPFirstDay, 4))
	return rep, nil
}
