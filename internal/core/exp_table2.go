package core

import (
	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("table2", "Unique second-level domains via PSC (Table 2)", runTable2)
}

// runTable2 reproduces the §4.3 unique-SLD measurements: two PSC rounds
// over exit relays only (the paper used 5 of its 6 exits, 1.24% exit
// weight) counting distinct registered domains, then the power-law
// Monte-Carlo extrapolation of the Alexa-SLD count to the whole
// network.
func runTable2(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Exit = 0.0124
	psl := e.Alexa().PSL()
	list := e.Alexa()

	// Expected uniques scale with observed primary streams.
	expected := int(105e6 / e.Scale * fr.Exit)

	newSim, err := e.BuildSim(fr, 0) // probe the exit set for DC placement
	if err != nil {
		return nil, err
	}
	exits := newSim.Net.Consensus.MeasuringExits()
	// The paper used 5 of 6 exits to reduce operator overhead (§4.3).
	exits = exits[:len(exits)-1]

	// Round 1: all SLDs whose TLD is on the public suffix list.
	all, err := e.RunPSC(PSCRun{
		Fractions: fr,
		Days:      1,
		Relays:    exits,
		Item: func(ev event.Event) (string, bool) {
			s, ok := ev.(*event.StreamEnd)
			if !ok || !s.IsInitial || s.Target != event.TargetHostname || !s.IsWebPort() {
				return "", false
			}
			return psl.RegisteredDomain(s.Hostname)
		},
		Sensitivity:    20, // Table 1: 20 domain connections/day
		ExpectedUnique: expected,
		Salt:           0x0200_0001,
	})
	if err != nil {
		return nil, err
	}

	// Round 2 (separate measurement day): only Alexa-listed SLDs.
	alexaRound, err := e.RunPSC(PSCRun{
		Fractions: fr,
		Days:      1,
		Relays:    exits,
		Item: func(ev event.Event) (string, bool) {
			s, ok := ev.(*event.StreamEnd)
			if !ok || !s.IsInitial || s.Target != event.TargetHostname || !s.IsWebPort() {
				return "", false
			}
			dom, ok := psl.RegisteredDomain(s.Hostname)
			if !ok || !list.Contains(dom) {
				return "", false
			}
			return dom, true
		},
		Sensitivity:    20,
		ExpectedUnique: expected / 2,
		Salt:           0x0200_0002,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "table2", Title: "Locally observed unique second-level domains (PSC)"}
	rep.Add("SLDs (local)", e.paperScale(all.Interval), "domains", "471,228 [470,357; 472,099]")
	rep.Add("Alexa SLDs (local)", e.paperScale(alexaRound.Interval), "domains", "35,660 [34,789; 37,393]")

	// Shape check the paper draws: a long tail exists — the unique SLD
	// count far exceeds the unique Alexa count.
	ratio := all.Interval.Value / maxf(alexaRound.Interval.Value, 1)
	rep.Note("unique SLDs / unique Alexa SLDs = %.1fx (paper: >10x at full scale; compresses at 1/%g scale)", ratio, e.Scale)

	// §4.3 extrapolation: fit a power law to the local Alexa-SLD count
	// and infer the network-wide unique count.
	visits := 105e6 / e.Scale * 0.275 // Alexa-Zipf component of primary streams
	model := stats.ZipfUniqueModel{Sites: list.N(), Fraction: fr.Exit, Visits: visits}
	ex, err := model.Extrapolate(alexaRound.Interval, stats.DefaultExtrapolateConfig())
	if err != nil {
		rep.Note("network-wide Alexa-SLD extrapolation failed to fit: %v (the paper hits the same wall for all-site SLDs)", err)
	} else {
		// Unique counts do not scale linearly with the simulation, so
		// the scale-honest comparison is the share of the list accessed
		// network-wide: the paper finds 513,342 of 1M ≈ 51.3%.
		share := ex.Network.Scale(100 / float64(list.N()))
		if share.Hi > 100 {
			share.Hi = 100
		}
		rep.Add("Alexa list accessed (network)", share, "% of list", "51.3% (513,342 of 1M)")
		rep.Note("accepted power-law exponents [%.3f, %.3f] over %d simulations",
			ex.ExponentLo, ex.ExponentHi, ex.Accepted)
	}
	rep.Note("all-site SLD accesses could not be fit to a distribution (paper §4.3); range-only bound: [x, x/p]")
	ro, err := stats.RangeOnly(all.Interval.Value, fr.Exit)
	if err == nil {
		rep.Add("SLDs (network-wide range)", e.paperScale(ro), "domains", "not extrapolated in paper")
	}
	return rep, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
