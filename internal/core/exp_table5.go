package core

import (
	"fmt"
	"math"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("table5", "Unique client statistics via PSC (Table 5)", runTable5)
}

// connectionItem extracts PSC items from guard-side connection events.
func connectionItem(extract func(*event.ConnectionEnd) (string, bool)) func(event.Event) (string, bool) {
	return func(ev event.Event) (string, bool) {
		c, ok := ev.(*event.ConnectionEnd)
		if !ok {
			return "", false
		}
		return extract(c)
	}
}

// runTable5 reproduces the §5.1/§5.2 unique-client measurements: five
// separate PSC rounds (IPs over one day, IPs over four days for churn,
// countries, and ASes), each deployed on the guard relays only.
func runTable5(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Guard = 0.0119

	sim, err := e.BuildSim(fr, 0)
	if err != nil {
		return nil, err
	}
	guards := sim.Net.Consensus.MeasuringGuards()
	expectedIPs := int(11e6 / e.Scale * 0.036) // ~P(any of 3 guards measuring)

	// Round 1: unique client IPs, 24 hours. Sensitivity: 4 new IPs/day
	// (Table 1).
	ips1, err := e.RunPSC(PSCRun{
		Fractions: fr, Days: 1, Relays: guards,
		Item: connectionItem(func(c *event.ConnectionEnd) (string, bool) {
			return c.ClientIP.String(), true
		}),
		Sensitivity: 4, ExpectedUnique: expectedIPs, Salt: 0x0500_0001,
	})
	if err != nil {
		return nil, err
	}

	// Round 2: unique client IPs over four days (churn measurement).
	// Sensitivity over 4 days: 4 + 3·3 = 13 IPs (Table 1 adjacency).
	ips4, err := e.RunPSC(PSCRun{
		Fractions: fr, Days: 4, Relays: guards,
		Item: connectionItem(func(c *event.ConnectionEnd) (string, bool) {
			return c.ClientIP.String(), true
		}),
		Sensitivity:    13.0 / 4.0, // per-day rate; harness multiplies by days
		ExpectedUnique: expectedIPs * 3, Salt: 0x0500_0002,
	})
	if err != nil {
		return nil, err
	}

	// Round 3: unique countries, averaged over two consecutive one-day
	// measurements to beat the noise (§5.2).
	countryRun := func(salt uint64) (*PSCResult, error) {
		return e.RunPSC(PSCRun{
			Fractions: fr, Days: 1, Relays: guards,
			Item: connectionItem(func(c *event.ConnectionEnd) (string, bool) {
				if c.Country == "" {
					return "", false
				}
				return c.Country, true
			}),
			Sensitivity: 4, ExpectedUnique: geo.NumCountries, Salt: salt,
		})
	}
	countriesA, err := countryRun(0x0500_0003)
	if err != nil {
		return nil, err
	}
	countriesB, err := countryRun(0x0500_0004)
	if err != nil {
		return nil, err
	}
	countries := stats.Interval{
		Value: (countriesA.Interval.Value + countriesB.Interval.Value) / 2,
		Lo:    (countriesA.Interval.Lo + countriesB.Interval.Lo) / 2,
		Hi:    (countriesA.Interval.Hi + countriesB.Interval.Hi) / 2,
	}
	if countries.Hi > geo.NumCountries {
		countries.Hi = geo.NumCountries
	}

	// Round 4: unique ASes.
	ases, err := e.RunPSC(PSCRun{
		Fractions: fr, Days: 1, Relays: guards,
		Item: connectionItem(func(c *event.ConnectionEnd) (string, bool) {
			if c.ASN == 0 {
				return "", false
			}
			return fmt.Sprintf("AS%d", c.ASN), true
		}),
		Sensitivity: 4, ExpectedUnique: int(12000 / math.Sqrt(e.Scale)), Salt: 0x0500_0005,
	})
	if err != nil {
		return nil, err
	}

	churn, err := stats.ChurnPerDay(ips1.Interval, ips4.Interval, 4)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "table5", Title: "Locally observed unique client statistics (PSC)"}
	rep.Add("IPs (1-day)", e.paperScale(ips1.Interval), "IPs", "313,213 [313,039; 376,343]")
	rep.Add("Countries", countries, "countries", "203 [141; 250]")
	rep.Add("ASes", ases.Interval, "ASes", "11,882 [11,708; 12,053]")
	rep.Add("IPs (4-day)", e.paperScale(ips4.Interval), "IPs", "672,303 [671,781; 1,118,147]")
	rep.Add("Churn per day", e.paperScale(churn), "IPs/day", "119,697 [119,581; 247,268]")

	turnover := ips4.Interval.Value / maxf(ips1.Interval.Value, 1)
	rep.Note("4-day/1-day unique-IP ratio %.2f (paper: ~2.15 — IPs turn over almost twice in 4 days)", turnover)
	naive := ips1.Interval.Value * e.Scale / fr.Guard / 3
	rep.Note("naive user estimate observed/weight/3 = %.3g (paper: ~8.77M vs Tor Metrics %.3g)", naive, float64(TorMetricsDailyUsers))
	rep.Note("countries and ASes are reported at simulation scale: unique-category counts do not scale linearly")
	return rep, nil
}
