package core

import (
	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("table4", "Network-wide client usage statistics (Table 4)", runTable4)
}

const (
	statEntryBytes  = "entry-bytes"
	statConnections = "client-connections"
	statCircuits    = "client-circuits"
)

const tib = float64(1 << 40)

// runTable4 reproduces the §5.1 client-usage round: a 24-hour PrivCount
// measurement at the guards counting transferred bytes, client
// connections, and client circuits, inferred by the entry-position
// selection probability.
func runTable4(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Guard = 0.0144 // the paper's entry-position probability for this round

	counters := []CounterSpec{
		// Sensitivity: entry-data bound 407 MB/day (Table 1).
		{Name: statEntryBytes, Bins: []string{""}, Sensitivity: 407 << 20, Expected: 517 * tib * 0.0144},
		// Sensitivity: 12 TCP connections/day (Table 1).
		{Name: statConnections, Bins: []string{""}, Sensitivity: 12, Expected: 148e6 * 0.0144},
		// Sensitivity: 651 circuits/day (Table 1).
		{Name: statCircuits, Bins: []string{""}, Sensitivity: 651, Expected: 1.286e9 * 0.0144},
	}
	res, err := e.RunPrivCount(PrivCountRun{
		Fractions: fr,
		Days:      1,
		Counters:  counters,
		Handle: func(ev event.Event, inc Incrementer) {
			switch v := ev.(type) {
			case *event.ConnectionEnd:
				inc(statConnections, 0, 1)
				inc(statEntryBytes, 0, float64(v.BytesSent+v.BytesRecv))
			case *event.CircuitEnd:
				inc(statCircuits, 0, 1)
			}
		},
		Salt: 0x0401,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "table4", Title: "Network-wide client usage (per day)"}
	infer := func(stat string, scale float64) (stats.Interval, error) {
		iv, err := stats.InferTotal(res.Interval(stat, 0), fr.Guard)
		if err != nil {
			return stats.Interval{}, err
		}
		return e.paperScale(iv).ClampNonNegative().Scale(1 / scale), nil
	}

	bytesIv, err := infer(statEntryBytes, tib)
	if err != nil {
		return nil, err
	}
	rep.Add("Data (TiB)", bytesIv, "TiB", "517 [504; 530]")

	connsIv, err := infer(statConnections, 1e6)
	if err != nil {
		return nil, err
	}
	rep.Add("Connections (x10^6)", connsIv, "M conns", "148 [143; 153]")

	circIv, err := infer(statCircuits, 1e6)
	if err != nil {
		return nil, err
	}
	rep.Add("Circuits (x10^6)", circIv, "M circs", "1,286 [1,246; 1,326]")

	rep.Note("entry probability %.4f; ×%g to paper scale", fr.Guard, e.Scale)
	rep.Note("connections are DDoS-inflated vs the 80.6M of Jansen & Johnson 2016 (§5.1)")
	return rep, nil
}
