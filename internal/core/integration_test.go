package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/stats"
	"repro/internal/tornet"
	"repro/internal/wire"
)

// These integration tests run the full multi-party deployments over
// real TCP sockets (loopback), optionally under TLS with pinned keys —
// the same code path as the cmd/ binaries, without process spawning.

// TestPrivCountOverTCPWithTLS runs a complete PrivCount round where
// every party dials the tally server over TLS and authenticates it by
// pinned SPKI.
func TestPrivCountOverTCPWithTLS(t *testing.T) {
	id, err := wire.GenerateIdentity("tally", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := wire.Listen("127.0.0.1:0", id.ServerTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	clientTLS := func() *wire.Conn {
		c, err := wire.Dial(addr, wire.ClientTLS(id.SPKI()), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	const numDCs, numSKs = 4, 2
	statsCfg := []privcount.StatConfig{
		{Name: "events", Bins: []string{"a", "b"}, Sigma: 0},
	}
	tally, err := privcount.NewTally(privcount.TallyConfig{
		Round: 7, Stats: statsCfg, NumDCs: numDCs, NumSKs: numSKs,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Accept server-side connections.
	acceptedCh := make(chan *wire.Conn, numDCs+numSKs)
	go func() {
		for i := 0; i < numDCs+numSKs; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			acceptedCh <- c
		}
	}()

	// TLS handshakes complete lazily on the server side (the tally
	// reads only once it runs), so every party must dial in its own
	// goroutine; a sequential dial loop would deadlock on the first
	// client handshake.
	var skWG, setupWG sync.WaitGroup
	dcCh := make(chan *privcount.DC, numDCs)
	for i := 0; i < numSKs; i++ {
		i := i
		skWG.Add(1)
		go func() {
			defer skWG.Done()
			sk, err := privcount.NewSK(fmt.Sprintf("sk-%d", i), clientTLS())
			if err != nil {
				t.Errorf("sk new: %v", err)
				return
			}
			if err := sk.Serve(); err != nil {
				t.Errorf("sk: %v", err)
			}
		}()
	}
	for i := 0; i < numDCs; i++ {
		i := i
		setupWG.Add(1)
		go func() {
			defer setupWG.Done()
			dc := privcount.NewDC(fmt.Sprintf("dc-%d", i), clientTLS(), nil)
			if err := dc.Setup(); err != nil {
				t.Errorf("dc: %v", err)
				return
			}
			dcCh <- dc
		}()
	}

	tsConns := make([]wire.Messenger, 0, numDCs+numSKs)
	resCh := make(chan map[string][]float64, 1)
	go func() {
		for i := 0; i < numDCs+numSKs; i++ {
			tsConns = append(tsConns, <-acceptedCh)
		}
		res, err := tally.Run(tsConns)
		if err != nil {
			t.Errorf("tally: %v", err)
			close(resCh)
			return
		}
		resCh <- res
	}()

	setupWG.Wait()
	close(dcCh)
	dcs := make([]*privcount.DC, 0, numDCs)
	for dc := range dcCh {
		dcs = append(dcs, dc)
	}
	if len(dcs) != numDCs {
		t.Fatalf("only %d DCs completed setup", len(dcs))
	}
	for i, dc := range dcs {
		for j := 0; j <= i; j++ {
			if err := dc.Increment("events", 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := dc.Increment("events", 1, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	var finWG sync.WaitGroup
	for _, dc := range dcs {
		finWG.Add(1)
		go func(dc *privcount.DC) {
			defer finWG.Done()
			if err := dc.Finish(); err != nil {
				t.Errorf("finish: %v", err)
			}
		}(dc)
	}
	finWG.Wait()
	skWG.Wait()
	res, ok := <-resCh
	if !ok {
		t.Fatal("tally failed")
	}
	// 1+2+3+4 = 10 in bin a; 4×0.5 = 2 in bin b; zero noise → exact.
	if got := res["events"][0]; got != 10 {
		t.Fatalf("bin a: %v want 10", got)
	}
	if got := res["events"][1]; got != 2 {
		t.Fatalf("bin b: %v want 2", got)
	}
}

// TestPSCOverTCP runs a complete PSC round over plain TCP loopback with
// proofs enabled and verifies the estimator output.
func TestPSCOverTCP(t *testing.T) {
	ln, err := wire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	const numDCs, numCPs = 3, 2
	cfg := psc.Config{
		Round: 9, Bins: 1024, NoisePerCP: 16,
		ShuffleProofRounds: 2, NumDCs: numDCs, NumCPs: numCPs,
	}
	tally, err := psc.NewTally(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acceptedCh := make(chan *wire.Conn, numDCs+numCPs)
	go func() {
		for i := 0; i < numDCs+numCPs; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			acceptedCh <- c
		}
	}()
	dial := func() *wire.Conn {
		c, err := wire.Dial(addr, nil, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	var cpWG, setupWG sync.WaitGroup
	for i := 0; i < numCPs; i++ {
		cp := psc.NewCP(fmt.Sprintf("cp-%d", i), dial(), nil)
		cpWG.Add(1)
		go func() {
			defer cpWG.Done()
			if err := cp.Serve(); err != nil {
				t.Errorf("cp: %v", err)
			}
		}()
	}
	dcs := make([]*psc.DC, numDCs)
	for i := range dcs {
		dcs[i] = psc.NewDC(fmt.Sprintf("dc-%d", i), dial())
		setupWG.Add(1)
		go func(dc *psc.DC) {
			defer setupWG.Done()
			if err := dc.Setup(); err != nil {
				t.Errorf("dc: %v", err)
			}
		}(dcs[i])
	}
	tsConns := make([]wire.Messenger, 0, numDCs+numCPs)
	for i := 0; i < numDCs+numCPs; i++ {
		tsConns = append(tsConns, <-acceptedCh)
	}
	resCh := make(chan psc.Result, 1)
	go func() {
		res, err := tally.Run(tsConns)
		if err != nil {
			t.Errorf("tally: %v", err)
			close(resCh)
			return
		}
		resCh <- res
	}()
	setupWG.Wait()
	const distinct = 120
	for i := 0; i < distinct; i++ {
		dcs[i%numDCs].Observe(fmt.Sprintf("203.0.113.%d-client-%d", i%250, i))
	}
	var finWG sync.WaitGroup
	for _, dc := range dcs {
		finWG.Add(1)
		go func(dc *psc.DC) {
			defer finWG.Done()
			if err := dc.Finish(); err != nil {
				t.Errorf("finish: %v", err)
			}
		}(dc)
	}
	finWG.Wait()
	cpWG.Wait()
	res, ok := <-resCh
	if !ok {
		t.Fatal("tally failed")
	}
	iv, err := stats.UnionCardinalityCI(stats.PSCObservation{
		Reported: res.Reported, Bins: res.Bins, NoiseTrials: res.NoiseTrials,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A 95% interval misses ~1 run in 20; allow a small margin so a
	// single unlucky binomial draw does not flake the deployment test.
	if distinct < iv.Lo-8 || distinct > iv.Hi+8 {
		t.Fatalf("estimator CI %+v must (nearly) contain %d (reported %d)", iv, distinct, res.Reported)
	}
}

// TestEventFeedRoundTrip exercises the torsim wire format end to end:
// a simulated relay event stream marshaled over TCP and consumed by a
// DC-side decoder, as cmd/torsim and cmd/datacollector do.
func TestEventFeedRoundTrip(t *testing.T) {
	env := &Env{Scale: 8000, Seed: 3, AlexaN: 5000, ProofRounds: 0}
	sim, err := env.BuildSim(tornet.StudyFractions(), 0)
	if err != nil {
		t.Fatal(err)
	}

	sent := 0
	var payloads [][]byte
	var buf []byte
	sim.Net.Bus.Subscribe(func(e event.Event) {
		buf = event.Marshal(buf[:0], e)
		cp := make([]byte, len(buf))
		copy(cp, buf)
		payloads = append(payloads, cp)
		sent++
	})
	sim.Driver.Run(1)
	if sent == 0 {
		t.Fatal("no events simulated")
	}
	for _, p := range payloads {
		if _, err := event.Unmarshal(p); err != nil {
			t.Fatalf("feed event failed to decode: %v", err)
		}
	}
}
