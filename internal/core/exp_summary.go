package core

import (
	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("summary", "Conclusion headline numbers (§9)", runSummary)
}

const (
	statSummaryEntry = "summary-entry-bytes"
	statSummaryRend  = "summary-rend-bytes"
	statSummaryCirc  = "summary-circuits"
)

// runSummary reproduces the conclusion's combined statistics (§9): the
// network carries >1.2 billion circuits and ~517 TiB per day
// (6.1 GiB/s), of which rendezvous (onion-service) traffic is roughly
// 3.9%. Entry and rendezvous volumes are measured in a single round so
// the share comes from one network snapshot.
func runSummary(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Guard = 0.0144
	fr.Rend = 0.0088

	counters := []CounterSpec{
		{Name: statSummaryEntry, Bins: []string{""}, Sensitivity: 407 << 20, Expected: 517 * tib * fr.Guard},
		{Name: statSummaryRend, Bins: []string{""}, Sensitivity: 400 << 20, Expected: 20.1 * tib * fr.Rend},
		{Name: statSummaryCirc, Bins: []string{""}, Sensitivity: 651, Expected: 1.286e9 * fr.Guard},
	}
	res, err := e.RunPrivCount(PrivCountRun{
		Fractions: fr,
		Days:      1,
		Counters:  counters,
		Handle: func(ev event.Event, inc Incrementer) {
			switch v := ev.(type) {
			case *event.ConnectionEnd:
				inc(statSummaryEntry, 0, float64(v.BytesSent+v.BytesRecv))
			case *event.CircuitEnd:
				inc(statSummaryCirc, 0, 1)
			case *event.RendezvousEnd:
				inc(statSummaryRend, 0, float64(v.PayloadBytes))
			}
		},
		Salt: 0x0900_0001,
	})
	if err != nil {
		return nil, err
	}

	entry, err := stats.InferTotal(res.Interval(statSummaryEntry, 0), fr.Guard)
	if err != nil {
		return nil, err
	}
	rend, err := stats.InferTotal(res.Interval(statSummaryRend, 0), fr.Rend)
	if err != nil {
		return nil, err
	}
	circs, err := stats.InferTotal(res.Interval(statSummaryCirc, 0), fr.Guard)
	if err != nil {
		return nil, err
	}
	entry = e.paperScale(entry).ClampNonNegative()
	rend = e.paperScale(rend).ClampNonNegative()
	circs = e.paperScale(circs).ClampNonNegative()

	rep := &Report{ID: "summary", Title: "Conclusion headline numbers"}
	rep.Add("Circuits per day", circs.Scale(1e-9), "billions", ">1.2 billion")
	rep.Add("Data per day", entry.Scale(1/tib), "TiB", "~517 TiB (6.1 GiB/s)")
	rep.Add("Data rate", entry.Scale(1/daySeconds/(1<<30)), "GiB/s", "6.1 GiB/s")
	rep.Add("Onion-service payload", rend.Scale(1/tib), "TiB", "20.1 TiB")
	if entry.Value > 0 {
		share := rend.Scale(100 / entry.Value)
		rep.Add("Onion share of traffic", share, "%", "~3.9%")
	}
	rep.Note("rendezvous payload counts each byte once at the RP; entry bytes include directory overhead (§9)")
	return rep, nil
}
