package core

import (
	"sort"

	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("fig4", "Per-country client usage (Figure 4)", runFig4)
}

// fig4Countries are the histogram bins: the countries Figure 4 shows
// plus the rest of the client-weight head; everything else lands in
// "other". For most of the world's 250 countries the DP noise
// overwhelms the count — reproducing that effect is part of the
// experiment.
var fig4Countries = []string{
	"US", "RU", "DE", "UA", "FR", "GB", "CA", "NL", "PL", "ES",
	"AE", "BR", "MX", "AR", "SE", "IT", "JP", "IN", "IR", "CN",
	"VE", "NA", "NZ", "BV", "SC", "IM", "SK", "VG", "PR", "NI",
	"BM", "SS",
}

const (
	statCountryConns = "country-connections"
	statCountryBytes = "country-bytes"
	statCountryCircs = "country-circuits"
	statASTop1000    = "as-top1000"
)

// runFig4 reproduces the §5.2 geopolitical round: per-country client
// connections, bytes, and circuits at the guards, plus the AS
// "hotspot" check against CAIDA's top-1000 list.
func runFig4(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Guard = 0.0144

	bins := append(append([]string{}, fig4Countries...), "other")
	_, asnDB := e.Databases()
	top1000 := map[uint32]bool{}
	for _, info := range asnDB.TopASes(1000) {
		top1000[info.ASN] = true
	}

	countryBin := func(c string) int {
		for i, b := range fig4Countries {
			if b == c {
				return i
			}
		}
		return len(bins) - 1
	}

	counters := []CounterSpec{
		{Name: statCountryConns, Bins: bins, Sensitivity: 12, Expected: 148e6 * fr.Guard},
		{Name: statCountryBytes, Bins: bins, Sensitivity: 407 << 20, Expected: 517 * tib * fr.Guard},
		{Name: statCountryCircs, Bins: bins, Sensitivity: 651, Expected: 1.286e9 * fr.Guard},
		{Name: statASTop1000, Bins: []string{"top1000", "outside"}, Sensitivity: 12, Expected: 148e6 * fr.Guard},
	}
	res, err := e.RunPrivCount(PrivCountRun{
		Fractions: fr,
		Days:      1,
		Counters:  counters,
		Handle: func(ev event.Event, inc Incrementer) {
			switch v := ev.(type) {
			case *event.ConnectionEnd:
				bin := countryBin(v.Country)
				inc(statCountryConns, bin, 1)
				inc(statCountryBytes, bin, float64(v.BytesSent+v.BytesRecv))
				if top1000[v.ASN] {
					inc(statASTop1000, 0, 1)
				} else {
					inc(statASTop1000, 1, 1)
				}
			case *event.CircuitEnd:
				inc(statCountryCircs, countryBin(v.Country), 1)
			}
		},
		Salt: 0x0F40_0001,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "fig4", Title: "Per-country client usage, network-wide (top entries)"}
	type ranked struct {
		label string
		iv    stats.Interval
	}
	rankStat := func(stat string) []ranked {
		rows := make([]ranked, 0, len(bins))
		for i, b := range bins {
			if b == "other" {
				continue
			}
			iv, err := stats.InferTotal(res.Interval(stat, i), fr.Guard)
			if err != nil {
				continue
			}
			rows = append(rows, ranked{label: b, iv: e.paperScale(iv).ClampNonNegative()})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].iv.Value > rows[j].iv.Value })
		return rows
	}

	paperTops := map[string]string{
		"connections": "US RU DE UA FR VE NA NZ BV CA",
		"bytes":       "US RU DE UA GB FR CA SC MX IM",
		"circuits":    "US FR RU DE PL AE CA ES VG PR",
	}
	for _, spec := range []struct{ name, stat, unit string }{
		{"connections", statCountryConns, "conns"},
		{"bytes", statCountryBytes, "bytes"},
		{"circuits", statCountryCircs, "circs"},
	} {
		rows := rankStat(spec.stat)
		for i := 0; i < 10 && i < len(rows); i++ {
			paper := "-"
			if i == 0 {
				paper = "top-10: " + paperTops[spec.name]
			}
			rep.Add(spec.name+" #"+string(rune('0'+(i+1)%10))+" "+rows[i].label, rows[i].iv, spec.unit, paper)
		}
	}

	// AS hotspot check: the share outside the top-1000 ASes.
	inTop, err1 := stats.InferTotal(res.Interval(statASTop1000, 0), fr.Guard)
	outTop, err2 := stats.InferTotal(res.Interval(statASTop1000, 1), fr.Guard)
	if err1 == nil && err2 == nil {
		total := inTop.Value + outTop.Value
		if total > 0 {
			share := outTop.Scale(100 / total)
			rep.Add("connections outside top-1000 ASes", share, "%", "~53%")
		}
	}
	rep.Note("AE ranks high in circuits but not connections/bytes — the blocked-client hypothesis (§5.2)")
	rep.Note("noise-dominated small countries appearing in the top-10 (BV, NA, SC, ...) reproduce the paper's artifact")
	return rep, nil
}
