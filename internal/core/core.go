package core
