package core

import (
	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("fig1", "Exit stream counts by type over 24h (Figure 1)", runFig1)
}

// Figure 1 statistic names and bins.
const (
	statStreams  = "exit-streams"   // bins: initial, subsequent
	statInitial  = "initial-target" // bins: hostname, ipv4, ipv6
	statHostPort = "hostname-port"  // bins: web, other
)

// fig1Counters declares the round's statistics. Sensitivities derive
// from Table 1: a user connects to ≤20 domains/day, each opening one
// circuit with one initial stream and a bounded number of subsequent
// streams; 600 streams/day is a conservative per-user stream bound.
func fig1Counters() []CounterSpec {
	return []CounterSpec{
		{Name: statStreams, Bins: []string{"initial", "subsequent"},
			Sensitivity: 600, Expected: 2.0e9 * 0.015},
		{Name: statInitial, Bins: []string{"hostname", "ipv4", "ipv6"},
			Sensitivity: 20, Expected: 1.0e8 * 0.015},
		{Name: statHostPort, Bins: []string{"web", "other"},
			Sensitivity: 20, Expected: 1.0e8 * 0.015},
	}
}

func fig1Handle(ev event.Event, inc Incrementer) {
	s, ok := ev.(*event.StreamEnd)
	if !ok {
		return
	}
	if !s.IsInitial {
		inc(statStreams, 1, 1)
		return
	}
	inc(statStreams, 0, 1)
	switch s.Target {
	case event.TargetHostname:
		inc(statInitial, 0, 1)
		if s.IsWebPort() {
			inc(statHostPort, 0, 1)
		} else {
			inc(statHostPort, 1, 1)
		}
	case event.TargetIPv4:
		inc(statInitial, 1, 1)
	case event.TargetIPv6:
		inc(statInitial, 2, 1)
	}
}

// runFig1 reproduces the Figure 1 measurement: a 24-hour PrivCount
// round at 1.5% exit weight counting streams by category, inferred
// network-wide by dividing by the exit fraction (§4.2).
func runFig1(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Exit = 0.015
	res, err := e.RunPrivCount(PrivCountRun{
		Fractions: fr,
		Days:      1,
		Counters:  fig1Counters(),
		Handle:    fig1Handle,
		Salt:      0x0F16_0001,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "fig1", Title: "Exit streams by type over 24 hours (network-wide)"}
	infer := func(stat string, bin int) (stats.Interval, error) {
		iv, err := stats.InferTotal(res.Interval(stat, bin), fr.Exit)
		if err != nil {
			return stats.Interval{}, err
		}
		return e.paperScale(iv).ClampNonNegative(), nil
	}

	initial, err := infer(statStreams, 0)
	if err != nil {
		return nil, err
	}
	subsequent, err := infer(statStreams, 1)
	if err != nil {
		return nil, err
	}
	total := stats.Interval{
		Value: initial.Value + subsequent.Value,
		Lo:    initial.Lo + subsequent.Lo,
		Hi:    initial.Hi + subsequent.Hi,
	}
	rep.Add("(a) total streams", total, "streams", "~2.1e9")
	rep.Add("(a) initial", initial, "streams", "~5% of total")
	rep.Add("(a) subsequent", subsequent, "streams", "~95% of total")

	for bin, label := range []string{"hostname", "ipv4", "ipv6"} {
		iv, err := infer(statInitial, bin)
		if err != nil {
			return nil, err
		}
		paper := "≈ all initial"
		if bin > 0 {
			paper = "≈ 0 (noise)"
		}
		rep.Add("(b) initial "+label, iv, "streams", paper)
	}
	for bin, label := range []string{"web port", "other port"} {
		iv, err := infer(statHostPort, bin)
		if err != nil {
			return nil, err
		}
		paper := "≈ all hostname"
		if bin > 0 {
			paper = "≈ 0 (noise)"
		}
		rep.Add("(c) hostname "+label, iv, "streams", paper)
	}
	rep.Note("exit weight %.2f%%; values ×%g to paper scale", fr.Exit*100, e.Scale)
	return rep, nil
}
