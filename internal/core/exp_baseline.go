package core

import (
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("baseline", "Tor Metrics directory heuristic vs direct measurement (§5.1/§7)", runBaseline)
}

// runBaseline runs the Tor Metrics Portal's indirect user-estimation
// heuristic and PSC's direct unique-client measurement over the *same*
// simulated network, reproducing the paper's central methodological
// claim: the directory heuristic undercounts Tor's daily users by
// roughly a factor of four.
func runBaseline(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	fr.Guard = 0.0119

	sim, err := e.BuildSim(fr, 0x0B00_0001)
	if err != nil {
		return nil, err
	}
	guards := sim.Net.Consensus.MeasuringGuards()

	// The Metrics-style estimator watches the same guards' directory
	// circuits, pretending they are reporting directory mirrors with
	// the same capacity fraction.
	est, err := metrics.NewEstimator(fr.Guard)
	if err != nil {
		return nil, err
	}

	// Direct measurement: PSC unique client IPs (as in table5), with
	// the metrics estimator subscribed to the same simulation run.
	res, err := e.RunPSCWithSim(PSCRun{
		Fractions: fr, Days: 1, Relays: guards,
		Item: func(ev event.Event) (string, bool) {
			c, ok := ev.(*event.ConnectionEnd)
			if !ok {
				return "", false
			}
			return c.ClientIP.String(), true
		},
		Sensitivity:    4,
		ExpectedUnique: int(11e6 / e.Scale * 0.04),
		Salt:           0x0B00_0001,
	}, func(s *Sim) {
		for _, g := range s.Net.Consensus.MeasuringGuards() {
			s.Net.Bus.SubscribeFiltered([]event.RelayID{g}, nil, est.Observe)
		}
	})
	if err != nil {
		return nil, err
	}

	metricsUsers, err := est.DailyUsers(1)
	if err != nil {
		return nil, err
	}
	metricsUsers *= e.Scale

	// The paper's direct estimate: observed unique IPs / guard weight /
	// 3 guards per client.
	direct := res.Interval.Scale(e.Scale / fr.Guard / 3)

	rep := &Report{ID: "baseline", Title: "Directory heuristic vs direct measurement of daily users"}
	rep.Add("Metrics-style estimate", stats.Interval{Value: metricsUsers, Lo: metricsUsers, Hi: metricsUsers},
		"users", "2.15M (Tor Metrics, April 2018)")
	rep.Add("Direct estimate (PSC)", direct, "users", "~8.77M (§5.1)")
	factor := metrics.UndercountFactor(direct.Value, metricsUsers)
	rep.Add("Undercount factor", stats.Interval{Value: factor, Lo: factor, Hi: factor}, "x", "~4x")
	rep.Note("both estimators consumed the same simulated guard events; the gap is methodological, not sampling")
	rep.Note("the heuristic assumes %.0f consensus fetches/client/day; blocked and promiscuous clients violate it in both directions", est.RequestsPerClientDay)
	return rep, nil
}
