package core

import (
	"strings"
	"testing"
)

// These tests run every experiment end to end at test scale and check
// the *shape* of each result against the paper: who wins, by roughly
// what factor, and where the crossovers fall.

func rowValue(t *testing.T, rep *Report, label string) float64 {
	t.Helper()
	for _, r := range rep.Rows {
		if r.Label == label {
			return r.Value.Value
		}
	}
	t.Fatalf("report %s has no row %q; rows: %v", rep.ID, label, rowLabels(rep))
	return 0
}

func rowLabels(rep *Report) []string {
	out := make([]string, len(rep.Rows))
	for i, r := range rep.Rows {
		out[i] = r.Label
	}
	return out
}

func TestFig2Shape(t *testing.T) {
	rep := runExperiment(t, "fig2")

	tor := rowValue(t, rep, "rank torproject.org")
	if tor < 25 || tor > 55 {
		t.Fatalf("torproject share %v%%, paper: 40.1%%", tor)
	}
	other := rowValue(t, rep, "rank other")
	if other < 10 || other > 35 {
		t.Fatalf("non-Alexa share %v%%, paper: 21.7%%", other)
	}
	// Every rank decade gets a modest share; none dominates.
	for _, label := range []string{"rank (10,100]", "rank (100,1k]", "rank (1k,10k]"} {
		v := rowValue(t, rep, label)
		if v < 0.5 || v > 15 {
			t.Fatalf("%s share %v%%, want a few percent", label, v)
		}
	}
	// Sibling sets: amazon ~9.7%, google ~2.4%, both far above reddit.
	amazon := rowValue(t, rep, "sibling amazon (10)")
	google := rowValue(t, rep, "sibling google (1)")
	reddit := rowValue(t, rep, "sibling reddit (8)")
	if amazon < 5 || amazon > 15 {
		t.Fatalf("amazon sibling share %v%%, paper: 9.7%%", amazon)
	}
	if google < 1 || google > 5 {
		t.Fatalf("google sibling share %v%%, paper: 2.4%%", google)
	}
	if reddit > 1.5 {
		t.Fatalf("reddit sibling share %v%%, paper: 0.0%%", reddit)
	}
	if amazon < google {
		t.Fatal("amazon must exceed google (the paper's surprise)")
	}
}

func TestFig3Shape(t *testing.T) {
	rep := runExperiment(t, "fig3")

	org := rowValue(t, rep, "all-sites .org")
	com := rowValue(t, rep, "all-sites .com")
	ru := rowValue(t, rep, "all-sites .ru")
	if org < 30 || org > 55 {
		t.Fatalf(".org share %v%%, paper: 44.1%% (torproject-driven)", org)
	}
	if com < 20 || com > 50 {
		t.Fatalf(".com share %v%%, paper: 37.2%%", com)
	}
	if org < com*0.8 {
		t.Fatal(".org must rival .com thanks to torproject.org")
	}
	if ru < 0.5 || ru > 8 {
		t.Fatalf(".ru share %v%%, paper: 2.8%% (largest country TLD)", ru)
	}
	// Alexa-only variant separates torproject.org.
	torBin := rowValue(t, rep, "alexa-only torproject.org")
	if torBin < 25 || torBin > 55 {
		t.Fatalf("alexa-only torproject share %v%%, paper: 40.4%%", torBin)
	}
	alexaOther := rowValue(t, rep, "alexa-only other")
	if alexaOther < 10 {
		t.Fatalf("alexa-only other %v%%, paper: 26.1%% (non-Alexa domains fall here)", alexaOther)
	}
}

func TestCategoriesShape(t *testing.T) {
	rep := runExperiment(t, "categories")
	other := rowValue(t, rep, "other")
	if other < 70 || other > 99 {
		t.Fatalf("uncategorized share %v%%, paper: 90.6%%", other)
	}
	shopping := rowValue(t, rep, "Shopping")
	if shopping < 2 || shopping > 20 {
		t.Fatalf("Shopping share %v%%, paper: 7.6%% (contains amazon.com)", shopping)
	}
	// Shopping (with amazon) must lead every other category.
	for _, r := range rep.Rows {
		if r.Label == "Shopping" || r.Label == "other" {
			continue
		}
		if r.Value.Value > shopping {
			t.Fatalf("category %s (%v%%) exceeds Shopping (%v%%)", r.Label, r.Value.Value, shopping)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rep := runExperiment(t, "table2")
	all := rowValue(t, rep, "SLDs (local)")
	alexaSLDs := rowValue(t, rep, "Alexa SLDs (local)")
	if all <= 0 || alexaSLDs <= 0 {
		t.Fatal("unique counts must be positive")
	}
	// The long tail: total unique SLDs clearly exceed Alexa uniques.
	// The paper's >10x factor needs the Alexa head to saturate, which
	// only happens at full scale; at 1/2000 both counts grow linearly
	// with their traffic shares and the ratio compresses toward ~1.5x
	// (the report notes this).
	if all < alexaSLDs*1.25 {
		t.Fatalf("unique SLDs %v vs Alexa %v; the long tail must dominate", all, alexaSLDs)
	}
}

func TestTable5Shape(t *testing.T) {
	rep := runExperiment(t, "table5")
	ips1 := rowValue(t, rep, "IPs (1-day)")
	ips4 := rowValue(t, rep, "IPs (4-day)")
	churn := rowValue(t, rep, "Churn per day")
	countries := rowValue(t, rep, "Countries")
	ases := rowValue(t, rep, "ASes")

	if ips1 <= 0 {
		t.Fatal("no unique IPs")
	}
	// Churn: the 4-day count must be substantially above the 1-day
	// count ("IPs turn over almost twice in a 4 day period").
	ratio := ips4 / ips1
	if ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("4-day/1-day ratio %v, paper: ~2.15", ratio)
	}
	if churn <= 0 {
		t.Fatal("churn must be positive")
	}
	// Countries: bounded by the 250 worldwide; the noise makes this a
	// wide estimate, but it must be plausim.
	if countries < 20 || countries > 260 {
		t.Fatalf("countries %v, paper: 203 [141; 250]", countries)
	}
	if ases <= 0 {
		t.Fatalf("ASes %v", ases)
	}
}

func TestTable3Shape(t *testing.T) {
	rep := runExperiment(t, "table3")
	m1 := rowValue(t, rep, "measurement @0.42%")
	m2 := rowValue(t, rep, "measurement @0.88%")
	if m1 <= 0 || m2 <= m1 {
		t.Fatalf("weights 0.42%%/0.88%% must order the counts: %v vs %v", m1, m2)
	}
	// Sub-proportional growth: doubling the weight must less-than-
	// double... actually with g=3 it's close to proportional; the key
	// paper finding is that the refined fit recovers the planted truth.
	foundFit := false
	for _, r := range rep.Rows {
		if strings.HasPrefix(r.Label, "g=3 network IPs") {
			foundFit = true
			// Ground truth: 8.8M selective + 18k promiscuous.
			if !r.Value.Contains(8.818e6) && (r.Value.Lo > 13e6 || r.Value.Hi < 5e6) {
				t.Fatalf("g=3 network-IP fit %+v does not bracket the planted ~8.8M", r.Value)
			}
		}
	}
	if !foundFit {
		t.Log("no g=3 fit row; acceptable if the fit failed, but check notes:", rep.Notes)
	}
}

func TestFig4Shape(t *testing.T) {
	// Per-country bins need a larger simulated population than the
	// shared test env: both the DP noise and the observed-client
	// sampling variance scale badly with the divisor (the paper makes
	// the same point about most of the world's countries, §5.2).
	env := &Env{Scale: 500, Seed: 11, AlexaN: sharedTestEnv.AlexaN, ProofRounds: 1}
	rep, err := Run("fig4", env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	// US must be among the top-3 connection countries (paper: first).
	usTop := false
	for _, r := range rep.Rows[:3] {
		if strings.HasPrefix(r.Label, "connections #") && strings.HasSuffix(r.Label, " US") {
			usTop = true
		}
	}
	if !usTop {
		t.Fatalf("US missing from top-3 connection countries: %v", rowLabels(rep)[:3])
	}
	// AE must rank higher in circuits than in connections.
	connRank, circRank := 99, 99
	for _, r := range rep.Rows {
		if strings.Contains(r.Label, " AE") {
			var rank int
			if _, err := scanRank(r.Label, &rank); err == nil {
				if strings.HasPrefix(r.Label, "connections") && rank < connRank {
					connRank = rank
				}
				if strings.HasPrefix(r.Label, "circuits") && rank < circRank {
					circRank = rank
				}
			}
		}
	}
	if circRank == 99 {
		t.Fatal("AE missing from circuit top-10; the blocked-client anomaly must surface")
	}
	if connRank != 99 && circRank > connRank {
		t.Fatalf("AE circuit rank %d must beat its connection rank %d", circRank, connRank)
	}
	// Outside-top-1000 share ~50%+.
	for _, r := range rep.Rows {
		if r.Label == "connections outside top-1000 ASes" {
			if r.Value.Value < 25 || r.Value.Value > 90 {
				t.Fatalf("outside-top-1000 share %v%%, paper: ~53%%", r.Value.Value)
			}
		}
	}
}

func scanRank(label string, rank *int) (int, error) {
	// Labels look like "circuits #6 AE".
	i := strings.IndexByte(label, '#')
	if i < 0 || i+1 >= len(label) {
		return 0, errNoRank
	}
	*rank = int(label[i+1] - '0')
	if *rank == 0 {
		*rank = 10
	}
	return 1, nil
}

var errNoRank = errString("no rank")

type errString string

func (e errString) Error() string { return string(e) }

func TestTable6Shape(t *testing.T) {
	rep := runExperiment(t, "table6")
	pubLocal := rowValue(t, rep, "Addresses published (local)")
	pubNet := rowValue(t, rep, "Addresses published (network)")
	if pubLocal <= 0 {
		t.Fatal("no published addresses observed")
	}
	if pubNet <= pubLocal {
		t.Fatal("network-wide estimate must exceed local")
	}
	// Network-wide published should bracket the simulated service
	// population. At high scale divisors the workload floors the live
	// pool at 300 services for ring-stability (see workload.New), so
	// the ground truth is max(70826, 300·Scale) at paper scale.
	truth := 70826.0
	if floored := 300 * sharedTestEnv.Scale; floored > truth {
		truth = floored
	}
	// At 1/2000 scale the local unique count is ~12 addresses against
	// binomial noise of similar magnitude, so the point estimate is
	// order-of-magnitude only; the benchmark scale tightens this.
	if pubNet < truth/8 || pubNet > truth*8 {
		t.Fatalf("network published %v, simulated truth %v (paper: 70,826)", pubNet, truth)
	}
}

func TestTable7Shape(t *testing.T) {
	rep := runExperiment(t, "table7")
	failShare := rowValue(t, rep, "Failure share")
	if failShare < 75 || failShare > 99 {
		t.Fatalf("failure share %v%%, paper: 90.9%%", failShare)
	}
	total := rowValue(t, rep, "Fetched")
	if total < 30 || total > 500 {
		t.Fatalf("total fetches %vM, paper: 134M", total)
	}
	succeeded := rowValue(t, rep, "Succeeded")
	failed := rowValue(t, rep, "Failed")
	if failed < succeeded*4 {
		t.Fatal("failures must dominate successes heavily")
	}
}

func TestSummaryShape(t *testing.T) {
	rep := runExperiment(t, "summary")
	circs := rowValue(t, rep, "Circuits per day")
	if circs < 0.4 || circs > 4 {
		t.Fatalf("circuits %v billion, paper: >1.2 billion", circs)
	}
	data := rowValue(t, rep, "Data per day")
	if data < 150 || data > 1600 {
		t.Fatalf("data %v TiB, paper: ~517", data)
	}
	share := rowValue(t, rep, "Onion share of traffic")
	if share < 1 || share > 12 {
		t.Fatalf("onion share %v%%, paper: ~3.9%%", share)
	}
}

func TestTable8Shape(t *testing.T) {
	rep := runExperiment(t, "table8")
	total := rowValue(t, rep, "Total circuits")
	if total < 100 || total > 1200 {
		t.Fatalf("total rendezvous circuits %vM, paper: 366M", total)
	}
	succ := rowValue(t, rep, "Succeeded")
	expired := rowValue(t, rep, "Failed: circuit expired")
	if succ < 2 || succ > 20 {
		t.Fatalf("success share %v%%, paper: 8.08%%", succ)
	}
	if expired < 60 || expired > 98 {
		t.Fatalf("expired share %v%%, paper: 84.9%%", expired)
	}
	if expired < succ*5 {
		t.Fatal("expiry must dominate: >90% of rendezvous attempts fail")
	}
	payload := rowValue(t, rep, "Cell payload (TiB)")
	if payload < 3 || payload > 100 {
		t.Fatalf("payload %v TiB, paper: 20.1", payload)
	}
}
