package core

import (
	"testing"
)

// sharedTestEnv is reused across core tests; building the Alexa list
// and databases once keeps the suite fast.
var sharedTestEnv = TestEnv()

func runExperiment(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := Run(id, sharedTestEnv)
	if err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	if rep.ID != id || len(rep.Rows) == 0 {
		t.Fatalf("experiment %s: empty report %+v", id, rep)
	}
	t.Logf("\n%s", rep)
	return rep
}

func TestRegistryAndUnknown(t *testing.T) {
	if len(Experiments()) == 0 {
		t.Fatal("no experiments registered")
	}
	if _, err := Run("nope", sharedTestEnv); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	for _, id := range Experiments() {
		if Title(id) == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
}

func TestTable1(t *testing.T) {
	rep := runExperiment(t, "table1")
	if len(rep.Rows) != 12 {
		t.Fatalf("table1 rows: %d want 12", len(rep.Rows))
	}
	// Spot-check the circuit bound row.
	found := false
	for _, r := range rep.Rows {
		if r.Value.Value == 651 {
			found = true
		}
	}
	if !found {
		t.Fatal("651-circuit bound missing")
	}
}

func TestFig1(t *testing.T) {
	rep := runExperiment(t, "fig1")
	var total, initial, subsequent float64
	for _, r := range rep.Rows {
		switch r.Label {
		case "(a) total streams":
			total = r.Value.Value
		case "(a) initial":
			initial = r.Value.Value
		case "(a) subsequent":
			subsequent = r.Value.Value
		}
	}
	if total <= 0 {
		t.Fatal("no streams inferred")
	}
	// Shape: initial ≈ 5% of total, subsequent dominates (Figure 1a).
	frac := initial / total
	if frac < 0.02 || frac > 0.12 {
		t.Fatalf("initial share %v, want ~0.05", frac)
	}
	if subsequent < initial*5 {
		t.Fatal("subsequent streams must dominate")
	}
	// Paper-scale magnitude: ~2e9 streams within a factor of 3.
	if total < 0.7e9 || total > 6e9 {
		t.Fatalf("total streams %v, want ~2.1e9", total)
	}
}

func TestTable4(t *testing.T) {
	rep := runExperiment(t, "table4")
	vals := map[string]float64{}
	for _, r := range rep.Rows {
		vals[r.Label] = r.Value.Value
	}
	// Shape: ~517 TiB/day, ~148M conns, ~1.29G circuits (factor 3).
	if v := vals["Data (TiB)"]; v < 150 || v > 1600 {
		t.Fatalf("data: %v TiB, want ~517", v)
	}
	if v := vals["Connections (x10^6)"]; v < 50 || v > 450 {
		t.Fatalf("connections: %v M, want ~148", v)
	}
	if v := vals["Circuits (x10^6)"]; v < 400 || v > 4000 {
		t.Fatalf("circuits: %v M, want ~1286", v)
	}
}
