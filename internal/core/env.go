// Package core orchestrates the paper's experiments end to end: it
// builds the simulated Tor network at a configurable scale, deploys
// PrivCount and PSC across the measuring relays exactly as §3.1
// describes (a tally server, one data collector per relay, three share
// keepers or computation parties), runs virtual measurement days,
// applies the §3.3 statistical inference, and renders each table and
// figure of the paper with paper-reported values alongside.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/alexa"
	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/tornet"
	"repro/internal/workload"
)

// Env is the execution environment shared by experiments.
type Env struct {
	// Scale divides the simulated population. 100 reproduces 1% of Tor
	// (the benchmark default); tests use larger divisors.
	Scale float64
	// Seed drives all simulation randomness.
	Seed uint64
	// AlexaN is the synthetic top-sites list size (1M at paper scale).
	AlexaN int
	// ProofRounds is the PSC per-block cut-and-choose soundness
	// parameter; 0 runs the honest-but-curious fast path.
	ProofRounds int
	// ShuffleBlock is the PSC streaming-shuffle block size in elements;
	// 0 selects the psc package default.
	ShuffleBlock int
	// ShufflePasses is how many alternating row/column shuffle passes
	// each CP runs; 0 selects the psc package default (2).
	ShufflePasses int
	// SpillDir is where the tally layers place their bounded-residency
	// scratch files; empty selects the system temp directory. Applied
	// process-wide when the Env's fleet first starts.
	SpillDir string
	// Netem is a WAN emulation profile spec (netem.ParseProfile syntax:
	// "lan", "wan-tor", "wan-tor,seed=42", ...) applied to every party
	// connection of the Env's fleet; empty runs over unshaped pipes.
	Netem string
	// AdaptiveWindow enables AIMD stream-window autotuning on the
	// fleet's sessions; WindowCap bounds the growth (0 selects
	// wire.DefaultWindowCap).
	AdaptiveWindow bool
	WindowCap      int

	alexaOnce sync.Once
	alexaList *alexa.List
	geoOnce   sync.Once
	geoDB     *geo.DB
	asnDB     *asn.DB

	// rt is the Env's persistent protocol fleet (harness.go): parties
	// register once and serve every experiment's rounds over
	// multiplexed sessions.
	rtMu sync.Mutex
	rt   *partyRuntime
}

// DefaultEnv is the benchmark configuration: 1% of Tor, full list.
func DefaultEnv() *Env {
	return &Env{Scale: 100, Seed: 2018, AlexaN: 1_000_000, ProofRounds: 2}
}

// TestEnv is a fast configuration for unit tests.
func TestEnv() *Env {
	return &Env{Scale: 2000, Seed: 7, AlexaN: 50_000, ProofRounds: 1}
}

// Alexa returns the environment's site list, built once.
func (e *Env) Alexa() *alexa.List {
	e.alexaOnce.Do(func() {
		e.alexaList = alexa.Generate(alexa.Config{N: e.AlexaN, Seed: e.Seed})
	})
	return e.alexaList
}

// Databases returns the GeoIP and AS databases, built once.
func (e *Env) Databases() (*geo.DB, *asn.DB) {
	e.geoOnce.Do(func() {
		e.geoDB = geo.Build(e.Seed)
		e.asnDB = asn.Build(e.geoDB, e.Seed)
	})
	return e.geoDB, e.asnDB
}

// Sim is one simulated deployment: network plus workload driver.
type Sim struct {
	Net    *tornet.Network
	Driver *workload.Driver
}

// BuildSim assembles a network with the given observation fractions and
// a paper-calibrated workload. The salt decorrelates populations across
// rounds of the same experiment (fresh measurement days).
func (e *Env) BuildSim(fr tornet.Fractions, salt uint64) (*Sim, error) {
	g, a := e.Databases()
	cfg := tornet.DefaultConsensusConfig()
	cfg.Fractions = fr
	cfg.Seed = e.Seed
	cons, err := tornet.NewConsensus(cfg)
	if err != nil {
		return nil, err
	}
	net := tornet.NewNetwork(cons, g, a)
	driver, err := workload.New(workload.DefaultParams(e.Scale, e.Seed^(salt*0x9E3779B97F4A7C15)), net, e.Alexa())
	if err != nil {
		return nil, err
	}
	return &Sim{Net: net, Driver: driver}, nil
}

// Row is one line of a rendered experiment report.
type Row struct {
	Label string
	// Value is the measured quantity with its 95% CI, already inferred
	// network-wide and converted to paper scale (multiplied by the
	// scale divisor) when Scaled is true.
	Value stats.Interval
	Unit  string
	// Paper is the value the paper reports for this row, as printed.
	Paper string
}

// Report is a rendered experiment.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
}

// Add appends a row.
func (r *Report) Add(label string, v stats.Interval, unit, paper string) {
	r.Rows = append(r.Rows, Row{Label: label, Value: v, Unit: unit, Paper: paper})
}

// Note appends a free-text note.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	width := 10
	for _, row := range r.Rows {
		if len(row.Label) > width {
			width = len(row.Label)
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-*s  %-34s %-8s paper: %s\n",
			width, row.Label, row.Value.String(), row.Unit, row.Paper)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// An ExperimentFunc reproduces one paper artifact.
type ExperimentFunc func(e *Env) (*Report, error)

var registry = map[string]ExperimentFunc{}
var registryTitles = map[string]string{}

// Register adds an experiment to the registry; called from init()
// functions of the exp_*.go files.
func Register(id, title string, fn ExperimentFunc) {
	if _, dup := registry[id]; dup {
		panic("core: duplicate experiment " + id)
	}
	registry[id] = fn
	registryTitles[id] = title
}

// Run executes a registered experiment.
func Run(id string, e *Env) (*Report, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment %q (have: %s)", id, strings.Join(Experiments(), ", "))
	}
	return fn(e)
}

// Experiments lists registered experiment ids in sorted order.
func Experiments() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's title.
func Title(id string) string { return registryTitles[id] }
