package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("table3", "Promiscuous clients and guards-per-client model (Table 3)", runTable3)
}

// runTable3 reproduces the §5.1 model-fitting study: two unique-IP PSC
// measurements with disjoint DC sets of different guard weight (0.42%
// and 0.88%), then (a) the selective-only model check showing typical
// clients cannot plausibly contact so many guards, and (b) the refined
// promiscuous-client fit for g ∈ {3, 4, 5}.
func runTable3(e *Env) (*Report, error) {
	measure := func(guardFrac float64, salt uint64) (stats.GuardMeasurement, error) {
		fr := tornet.StudyFractions()
		fr.Guard = guardFrac
		sim, err := e.BuildSim(fr, salt)
		if err != nil {
			return stats.GuardMeasurement{}, err
		}
		guards := sim.Net.Consensus.MeasuringGuards()
		res, err := e.RunPSC(PSCRun{
			Fractions: fr, Days: 1, Relays: guards,
			Item: func(ev event.Event) (string, bool) {
				c, ok := ev.(*event.ConnectionEnd)
				if !ok {
					return "", false
				}
				return c.ClientIP.String(), true
			},
			Sensitivity:    4,
			ExpectedUnique: int(11e6 / e.Scale * guardFrac * 3.2),
			Salt:           salt,
		})
		if err != nil {
			return stats.GuardMeasurement{}, err
		}
		return stats.GuardMeasurement{Weight: guardFrac, Unique: res.Interval}, nil
	}

	m1, err := measure(0.0042, 0x0300_0001)
	if err != nil {
		return nil, err
	}
	m2, err := measure(0.0088, 0x0300_0002)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "table3", Title: "Network-wide promiscuous clients and client IPs"}
	rep.Add("measurement @0.42%", e.paperScale(m1.Unique), "IPs", "148,174 [148k; 161k]")
	rep.Add("measurement @0.88%", e.paperScale(m2.Unique), "IPs", "269,795 [269k; 315k]")

	// Selective-only model: which g values are even consistent?
	if gLo, gHi, err := stats.ConsistentGRange(m1, m2, 200); err != nil {
		rep.Note("selective-only model: no g consistent (paper: only g in [27,34], an implausible range)")
	} else {
		rep.Note("selective-only model consistent only for g in [%d, %d] (paper: [27, 34] — a poor model)", gLo, gHi)
	}

	// Refined model rows for g = 3, 4, 5.
	paperRows := map[int][2]string{
		3: {"[15,856; 21,522]", "[10,851,783; 11,240,709]"},
		4: {"[15,129; 21,056]", "[8,195,072; 8,493,863]"},
		5: {"[14,428; 20,451]", "[6,605,713; 6,849,612]"},
	}
	for _, g := range []int{3, 4, 5} {
		fit, err := stats.FitPromiscuous(m1, m2, g, m2.Unique.Hi*2)
		if err != nil {
			rep.Note("g=%d: no consistent promiscuous count (%v)", g, err)
			continue
		}
		paper := paperRows[g]
		rep.Add(fmt.Sprintf("g=%d promiscuous", g), e.paperScale(fit.Promiscuous), "clients", paper[0])
		rep.Add(fmt.Sprintf("g=%d network IPs", g), e.paperScale(fit.NetworkIPs), "IPs", paper[1])
	}
	rep.Note("ground truth in simulation: g=3, %.0f promiscuous, %.3g selective clients (paper-scale)",
		18e3, 8.8e6)
	return rep, nil
}
