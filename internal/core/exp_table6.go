package core

import (
	"math"

	"repro/internal/event"
	"repro/internal/onion"
	"repro/internal/tornet"
)

func init() {
	Register("table6", "Unique onion addresses via PSC (Table 6)", runTable6)
}

// runTable6 reproduces the §6.1 unique onion-address measurements: PSC
// rounds over the HSDir relays counting distinct v2 addresses in
// published and fetched descriptors, extrapolated network-wide by the
// HSDir-replication coverage of the measuring relays.
func runTable6(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()

	sim, err := e.BuildSim(fr, 0)
	if err != nil {
		return nil, err
	}
	hsdirs := sim.Net.Consensus.MeasuringHSDirs()

	// Coverage: the probability that a random address's responsible
	// sets (across both replicas and the two daily descriptor periods)
	// include at least one measuring HSDir — the extrapolation factor
	// "based on HSDir replication" (§6.1). Estimated empirically from
	// the ring.
	ring := onion.NewRing(sim.Net.Consensus)
	const probes = 30000
	covered := 0
	for i := 0; i < probes; i++ {
		addr := onion.Address("coverage-probe", i)
		if len(ring.MeasuringResponsible(addr, 0)) > 0 || len(ring.MeasuringResponsible(addr, 1)) > 0 {
			covered++
		}
	}
	coverage := float64(covered) / probes
	if coverage <= 0 {
		coverage = 1.0 / probes
	}

	expected := int(math.Ceil(70826 / e.Scale * coverage * 1.5))

	// Round 1: unique addresses published. Sensitivity: 3 new onion
	// addresses/day (Table 1).
	published, err := e.RunPSC(PSCRun{
		Fractions: fr, Days: 1, Relays: hsdirs,
		Item: func(ev event.Event) (string, bool) {
			p, ok := ev.(*event.DescPublished)
			if !ok || p.Version != 2 {
				return "", false
			}
			return p.Address, true
		},
		Sensitivity: 3, ExpectedUnique: expected, Salt: 0x0600_0001,
	})
	if err != nil {
		return nil, err
	}

	// Round 2: unique addresses fetched (successfully). Sensitivity:
	// 30 descriptor fetches/day (Table 1).
	fetched, err := e.RunPSC(PSCRun{
		Fractions: fr, Days: 1, Relays: hsdirs,
		Item: func(ev event.Event) (string, bool) {
			f, ok := ev.(*event.DescFetched)
			if !ok || f.Version != 2 || f.Outcome != event.FetchOK {
				return "", false
			}
			return f.Address, true
		},
		Sensitivity: 30, ExpectedUnique: expected, Salt: 0x0600_0002,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "table6", Title: "Network-wide unique v2 onion addresses (PSC + replication extrapolation)"}

	pubNet := published.Interval.Scale(1 / coverage)
	rep.Add("Addresses published (local)", e.paperScale(published.Interval), "addrs", "3,900 [3,769; 4,045]")
	rep.Add("Addresses published (network)", e.paperScale(pubNet), "addrs", "70,826 [65,738; 76,350]")

	// Fetched-unique extrapolation uses the wide range-only bound, as
	// the fetch frequency distribution is unknown (the paper's CI spans
	// [34,363; 696,255]).
	fetchNet := fetched.Interval.Scale(1 / coverage)
	rep.Add("Addresses fetched (local)", e.paperScale(fetched.Interval), "addrs", "2,401 [1,101; 3,718]")
	rep.Add("Addresses fetched (network)", e.paperScale(fetchNet), "addrs", "74,900 [34,363; 696,255]")

	usedShare := 100 * fetchNet.Value / maxf(pubNet.Value, 1)
	rep.Note("estimated %.0f%% of active onion services were fetched by clients (paper: between 45%% and 100%%)", math.Min(usedShare, 100))
	rep.Note("HSDir coverage of measuring relays: %.2f%% of addresses (paper observed 4.93%% with 2 replicas x 2 descriptor periods)", coverage*100)
	rep.Note("Tor Metrics estimated %.3g unique v2 onions without a CI (§6.1)", float64(TorMetricsV2Onions))
	return rep, nil
}
