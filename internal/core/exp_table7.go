package core

import (
	"repro/internal/event"
	"repro/internal/onion"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func init() {
	Register("table7", "Onion-service descriptor fetches (Table 7)", runTable7)
}

const (
	statFetchOutcome = "desc-fetch-outcome" // bins: ok, not-found, malformed
	statFetchPublic  = "desc-fetch-public"  // bins: public, unknown
)

// runTable7 reproduces the §6.2 descriptor-fetch round: a PrivCount
// measurement at the HSDirs counting fetches by outcome, and of the
// successes, how many target addresses on the public (ahmia) index.
func runTable7(e *Env) (*Report, error) {
	fr := tornet.StudyFractions()
	// The paper's fetch weight for this round was 0.465%.
	fetchFrac := 0.00465
	fr.HSDirFrac = fetchFrac

	// The DC checks the ahmia index; it needs the simulation's index,
	// so build the sim first and attach a closure over it.
	var index *onion.PublicIndex

	counters := []CounterSpec{
		{Name: statFetchOutcome, Bins: []string{"ok", "not-found", "malformed"},
			Sensitivity: 30, Expected: 134e6 * fetchFrac},
		{Name: statFetchPublic, Bins: []string{"public", "unknown"},
			Sensitivity: 30, Expected: 12.2e6 * fetchFrac},
	}
	res, err := e.RunPrivCountWithSim(PrivCountRun{
		Fractions: fr,
		Days:      1,
		Counters:  counters,
		Handle: func(ev event.Event, inc Incrementer) {
			f, ok := ev.(*event.DescFetched)
			if !ok || f.Version != 2 {
				return
			}
			switch f.Outcome {
			case event.FetchOK:
				inc(statFetchOutcome, 0, 1)
				if index != nil && index.Contains(f.Address) {
					inc(statFetchPublic, 0, 1)
				} else {
					inc(statFetchPublic, 1, 1)
				}
			case event.FetchNotFound:
				inc(statFetchOutcome, 1, 1)
			case event.FetchMalformed:
				inc(statFetchOutcome, 2, 1)
			}
		},
		Salt: 0x0700_0001,
	}, func(sim *Sim) { index = sim.Driver.Onions.Index() })
	if err != nil {
		return nil, err
	}

	// The observation probability for a fetch is the measuring share of
	// the HSDir ring.
	ring := onion.NewRing(res.Sim.Net.Consensus)
	obsFrac := float64(ring.NumMeasuring()) / float64(ring.Size())

	infer := func(stat string, bin int) (stats.Interval, error) {
		iv, err := stats.InferTotal(res.Interval(stat, bin), obsFrac)
		if err != nil {
			return stats.Interval{}, err
		}
		return e.paperScale(iv).ClampNonNegative(), nil
	}
	okIv, err := infer(statFetchOutcome, 0)
	if err != nil {
		return nil, err
	}
	nfIv, err := infer(statFetchOutcome, 1)
	if err != nil {
		return nil, err
	}
	malIv, err := infer(statFetchOutcome, 2)
	if err != nil {
		return nil, err
	}
	failed := stats.Interval{
		Value: nfIv.Value + malIv.Value,
		Lo:    nfIv.Lo + malIv.Lo,
		Hi:    nfIv.Hi + malIv.Hi,
	}
	total := stats.Interval{
		Value: okIv.Value + failed.Value,
		Lo:    okIv.Lo + failed.Lo,
		Hi:    okIv.Hi + failed.Hi,
	}

	rep := &Report{ID: "table7", Title: "Network-wide v2 descriptor fetch statistics"}
	rep.Add("Fetched", total.Scale(1e-6), "M fetches", "134 [117; 150] million")
	rep.Add("Succeeded", okIv.Scale(1e-6), "M fetches", "12.2 [10.6; 13.7] million")
	rep.Add("Failed", failed.Scale(1e-6), "M fetches", "121 [103; 140] million")
	rep.Add("Fail rate", failed.Scale(1/daySeconds), "failed/s", "1,400 [1,192; 1,620]")
	if total.Value > 0 {
		rep.Add("Failure share", failed.Scale(100/total.Value), "%", "90.9 [87.8; 93.2]%")
	}

	pubIv, err1 := infer(statFetchPublic, 0)
	unkIv, err2 := infer(statFetchPublic, 1)
	if err1 == nil && err2 == nil && okIv.Value > 0 {
		rep.Add("Public (ahmia)", pubIv.Scale(100/okIv.Value), "%", "56.8 [36.9; 83.6]%")
		rep.Add("Unknown", unkIv.Scale(100/okIv.Value), "%", "47.6 [28.8; 72.7]%")
	}
	rep.Note("fetch observation fraction %.3f%% of the HSDir ring (paper: 0.465%% fetch weight)", obsFrac*100)
	rep.Note("the paper's shares exceed 100%% jointly because each is an independently noised count — ours reproduce that")
	return rep, nil
}
