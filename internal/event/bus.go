package event

// Bus fan-outs events from the simulator to subscribed data collectors.
// Dispatch is synchronous and in subscription order, keeping simulation
// runs deterministic. A Bus is not safe for concurrent use; the
// simulation kernel is single-threaded by design.
type Bus struct {
	subs []subscription
}

type subscription struct {
	relays map[RelayID]bool // nil means all relays
	types  map[Type]bool    // nil means all types
	fn     func(Event)
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers fn for every published event.
func (b *Bus) Subscribe(fn func(Event)) {
	b.subs = append(b.subs, subscription{fn: fn})
}

// SubscribeFiltered registers fn for events observed by one of the given
// relays (nil or empty = all) with one of the given types (nil or empty =
// all). PrivCount DCs attach to exactly one relay this way, mirroring the
// paper's one-DC-per-relay deployment (§3.1).
func (b *Bus) SubscribeFiltered(relays []RelayID, types []Type, fn func(Event)) {
	s := subscription{fn: fn}
	if len(relays) > 0 {
		s.relays = make(map[RelayID]bool, len(relays))
		for _, r := range relays {
			s.relays[r] = true
		}
	}
	if len(types) > 0 {
		s.types = make(map[Type]bool, len(types))
		for _, t := range types {
			s.types[t] = true
		}
	}
	b.subs = append(b.subs, s)
}

// Publish delivers e to every matching subscriber.
func (b *Bus) Publish(e Event) {
	for i := range b.subs {
		s := &b.subs[i]
		if s.relays != nil && !s.relays[e.Observer()] {
			continue
		}
		if s.types != nil && !s.types[e.EventType()] {
			continue
		}
		s.fn(e)
	}
}

// Subscribers reports the number of registered subscriptions.
func (b *Bus) Subscribers() int { return len(b.subs) }
