package event

import (
	"net/netip"

	"repro/internal/simtime"
)

// Type identifies the kind of an event on the wire.
type Type uint8

// Event types. The numbering is part of the wire format; do not reorder.
const (
	TypeInvalid Type = iota
	TypeStreamEnd
	TypeCircuitEnd
	TypeConnectionEnd
	TypeDescPublished
	TypeDescFetched
	TypeRendezvousEnd
)

var typeNames = [...]string{
	TypeInvalid:       "invalid",
	TypeStreamEnd:     "stream-end",
	TypeCircuitEnd:    "circuit-end",
	TypeConnectionEnd: "connection-end",
	TypeDescPublished: "desc-published",
	TypeDescFetched:   "desc-fetched",
	TypeRendezvousEnd: "rendezvous-end",
}

// String names the event type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "unknown"
}

// RelayID identifies the observing relay by its index in the consensus.
type RelayID uint16

// Header carries the fields common to every event: when it was observed
// and by which relay. Event types embed Header.
type Header struct {
	At    simtime.Time
	Relay RelayID
}

// Time returns the virtual time at which the event was observed.
func (h Header) Time() simtime.Time { return h.At }

// Observer returns the relay that observed the event.
func (h Header) Observer() RelayID { return h.Relay }

// An Event is one observation made by an instrumented relay.
type Event interface {
	// EventType returns the wire type tag.
	EventType() Type
	// Time returns the virtual observation time.
	Time() simtime.Time
	// Observer returns the observing relay.
	Observer() RelayID
	// appendPayload encodes the type-specific fields (not the header).
	appendPayload(b []byte) []byte
	// decodePayload parses the type-specific fields.
	decodePayload(b []byte) error
}

// TargetKind classifies the destination specifier a client put in a
// stream: a hostname, a literal IPv4 address, or a literal IPv6 address.
// The paper's Figure 1b breaks initial streams down along this axis.
type TargetKind uint8

// Target kinds, the Figure 1b breakdown of initial-stream targets.
const (
	TargetHostname TargetKind = iota
	TargetIPv4
	TargetIPv6
)

// String names the target kind.
func (k TargetKind) String() string {
	switch k {
	case TargetHostname:
		return "hostname"
	case TargetIPv4:
		return "ipv4"
	case TargetIPv6:
		return "ipv6"
	}
	return "unknown"
}

// StreamEnd is emitted by an exit relay when a stream closes. It is the
// source of the exit measurements in §4: initial-vs-subsequent streams,
// target kinds, web ports, and the hostname used for domain matching.
type StreamEnd struct {
	Header
	CircuitID uint64
	// IsInitial marks the first stream on its circuit. Tor Browser opens
	// a fresh circuit per address-bar domain, so initial streams indicate
	// user intent (§4.1).
	IsInitial bool
	Target    TargetKind
	Port      uint16
	// Hostname is the destination hostname when Target==TargetHostname.
	Hostname  string
	BytesSent uint64
	BytesRecv uint64
}

// EventType implements Event.
func (*StreamEnd) EventType() Type { return TypeStreamEnd }

// IsWebPort reports whether the stream targeted a traditional web port.
func (e *StreamEnd) IsWebPort() bool { return e.Port == 80 || e.Port == 443 }

// CircuitKind classifies a circuit observed at a guard.
type CircuitKind uint8

const (
	// CircuitData is a general-purpose client circuit.
	CircuitData CircuitKind = iota
	// CircuitDirectory is a directory-fetch circuit. The paper's UAE
	// anomaly (§5.2) hinges on clients that build directory circuits but
	// cannot build data circuits.
	CircuitDirectory
)

// CircuitEnd is emitted by a guard relay when a client circuit it carried
// is torn down. It feeds the per-country circuit counts of Figure 4 and
// the total circuit count of Table 4.
type CircuitEnd struct {
	Header
	CircuitID uint64
	Kind      CircuitKind
	ClientIP  netip.Addr
	// Country is the ISO 3166-1 alpha-2 code the DC resolved via GeoIP.
	Country    string
	ASN        uint32
	NumStreams uint32
	BytesSent  uint64
	BytesRecv  uint64
}

// EventType implements Event.
func (*CircuitEnd) EventType() Type { return TypeCircuitEnd }

// ConnectionEnd is emitted by a guard relay when a client TLS connection
// closes. Client connections are the unit of Table 4's connection count
// and carry the client IP that PSC turns into unique-client items
// (Table 5) without ever storing it in the clear.
type ConnectionEnd struct {
	Header
	ClientIP    netip.Addr
	Country     string
	ASN         uint32
	NumCircuits uint32
	BytesSent   uint64
	BytesRecv   uint64
}

// EventType implements Event.
func (*ConnectionEnd) EventType() Type { return TypeConnectionEnd }

// DescPublished is emitted by an onion-service directory (HSDir) when a
// v2 descriptor is stored. Version-3 descriptors hide the onion address
// by key blinding, so as in the paper (§6.1) only v2 events carry one.
type DescPublished struct {
	Header
	Address string // v2 onion address, without the ".onion" suffix
	Version uint8
	Replica uint8
}

// EventType implements Event.
func (*DescPublished) EventType() Type { return TypeDescPublished }

// FetchOutcome describes how a descriptor fetch ended at an HSDir.
type FetchOutcome uint8

const (
	// FetchOK means the descriptor was present and served.
	FetchOK FetchOutcome = iota
	// FetchNotFound means the descriptor was not in the HSDir's cache,
	// typically because the service is inactive (§6.2).
	FetchNotFound
	// FetchMalformed means the request itself was invalid.
	FetchMalformed
)

// String names the fetch outcome.
func (o FetchOutcome) String() string {
	switch o {
	case FetchOK:
		return "ok"
	case FetchNotFound:
		return "not-found"
	case FetchMalformed:
		return "malformed"
	}
	return "unknown"
}

// DescFetched is emitted by an HSDir for every descriptor fetch attempt,
// successful or not. Table 7 is built entirely from these events.
type DescFetched struct {
	Header
	Address string
	Version uint8
	Outcome FetchOutcome
}

// EventType implements Event.
func (*DescFetched) EventType() Type { return TypeDescFetched }

// RendOutcome describes how a rendezvous circuit ended at the RP.
type RendOutcome uint8

const (
	// RendSucceeded means at least one application-payload cell crossed
	// the circuit.
	RendSucceeded RendOutcome = iota
	// RendConnClosed means the RP connection closed before the service
	// completed the rendezvous protocol.
	RendConnClosed
	// RendExpired means the circuit timed out before the service
	// completed the rendezvous protocol.
	RendExpired
)

// String names the rendezvous outcome.
func (o RendOutcome) String() string {
	switch o {
	case RendSucceeded:
		return "succeeded"
	case RendConnClosed:
		return "conn-closed"
	case RendExpired:
		return "expired"
	}
	return "unknown"
}

// RendezvousEnd is emitted by a rendezvous point when a rendezvous
// circuit closes. Application data on such circuits is end-to-end
// encrypted, so only cell counts are observable (§6.3); Table 8 is built
// from these events.
type RendezvousEnd struct {
	Header
	CircuitID    uint64
	Version      uint8
	Outcome      RendOutcome
	PayloadCells uint64
	PayloadBytes uint64
}

// EventType implements Event.
func (*RendezvousEnd) EventType() Type { return TypeRendezvousEnd }

// New returns a zero event of the given type, for decoding.
func New(t Type) (Event, bool) {
	switch t {
	case TypeStreamEnd:
		return &StreamEnd{}, true
	case TypeCircuitEnd:
		return &CircuitEnd{}, true
	case TypeConnectionEnd:
		return &ConnectionEnd{}, true
	case TypeDescPublished:
		return &DescPublished{}, true
	case TypeDescFetched:
		return &DescFetched{}, true
	case TypeRendezvousEnd:
		return &RendezvousEnd{}, true
	}
	return nil, false
}
