package event

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Socket feed framing: the torsim event feed (and recorded trace
// files) carry each encoded event as a 4-byte big-endian length prefix
// followed by the codec bytes. This file is the one implementation of
// that framing, shared by the simulator, the collectors, and the mock
// relay's trace replay.

// MaxFrame bounds a single event frame; no legitimate event comes
// close (the largest carries one hostname).
const MaxFrame = 1 << 20

// AppendFrame appends the length-prefixed encoding of e to dst.
func AppendFrame(dst []byte, e Event) []byte {
	dst = append(dst, 0, 0, 0, 0)
	start := len(dst)
	dst = Marshal(dst, e)
	binary.BigEndian.PutUint32(dst[start-4:], uint32(len(dst)-start))
	return dst
}

// ReadFrames decodes length-prefixed events from r until EOF, passing
// each to fn; an fn error stops the scan and is returned. A clean EOF
// at a frame boundary returns nil.
func ReadFrames(r io.Reader, fn func(Event) error) error {
	var lenb [4]byte
	buf := make([]byte, 0, 512)
	for {
		if _, err := io.ReadFull(r, lenb[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n > MaxFrame {
			return fmt.Errorf("event: oversized frame %d", n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		ev, err := Unmarshal(buf)
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}
