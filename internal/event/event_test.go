package event

import (
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func sampleEvents() []Event {
	h := Header{At: 90 * simtime.Minute, Relay: 7}
	return []Event{
		&StreamEnd{Header: h, CircuitID: 12345, IsInitial: true,
			Target: TargetHostname, Port: 443, Hostname: "onionoo.torproject.org",
			BytesSent: 1024, BytesRecv: 1 << 20},
		&StreamEnd{Header: h, CircuitID: 1, Target: TargetIPv6, Port: 22},
		&CircuitEnd{Header: h, CircuitID: 99, Kind: CircuitDirectory,
			ClientIP: netip.MustParseAddr("203.0.113.9"), Country: "AE",
			ASN: 64500, NumStreams: 3, BytesSent: 10, BytesRecv: 20},
		&ConnectionEnd{Header: h, ClientIP: netip.MustParseAddr("2001:db8::1"),
			Country: "US", ASN: 15169, NumCircuits: 12, BytesSent: 5, BytesRecv: 6},
		&DescPublished{Header: h, Address: "msydqstlz2kzerdg", Version: 2, Replica: 1},
		&DescFetched{Header: h, Address: "expyuzz4wqqyqhjn", Version: 2, Outcome: FetchNotFound},
		&RendezvousEnd{Header: h, CircuitID: 42, Version: 3,
			Outcome: RendExpired, PayloadCells: 0, PayloadBytes: 0},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, e := range sampleEvents() {
		b := Marshal(nil, e)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", e.EventType(), err)
		}
		if !reflect.DeepEqual(e, got) {
			t.Fatalf("%s round trip:\n  in  %+v\n  out %+v", e.EventType(), e, got)
		}
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil buffer must fail")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Fatal("short buffer must fail")
	}
	bad := Marshal(nil, sampleEvents()[0])
	bad[0] = 250
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown type must fail")
	}
}

func TestUnmarshalRejectsTruncationAtEveryLength(t *testing.T) {
	for _, e := range sampleEvents() {
		full := Marshal(nil, e)
		for n := headerSize; n < len(full); n++ {
			if _, err := Unmarshal(full[:n]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes must fail",
					e.EventType(), n, len(full))
			}
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	for _, e := range sampleEvents() {
		b := Marshal(nil, e)
		b = append(b, 0xFF)
		if _, err := Unmarshal(b); err == nil {
			t.Fatalf("%s: trailing byte must fail", e.EventType())
		}
	}
}

func TestMarshalAppendsToDst(t *testing.T) {
	prefix := []byte{1, 2, 3}
	b := Marshal(prefix, sampleEvents()[0])
	if len(b) <= 3 || b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatal("Marshal must append to dst")
	}
	if _, err := Unmarshal(b[3:]); err != nil {
		t.Fatalf("suffix must decode: %v", err)
	}
}

func TestStreamEndRoundTripProperty(t *testing.T) {
	f := func(circ uint64, initial bool, port uint16, host string, sent, recv uint64) bool {
		in := &StreamEnd{
			Header:    Header{At: simtime.Hour, Relay: 3},
			CircuitID: circ, IsInitial: initial, Target: TargetHostname,
			Port: port, Hostname: host, BytesSent: sent, BytesRecv: recv,
		}
		out, err := Unmarshal(Marshal(nil, in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsWebPort(t *testing.T) {
	for port, want := range map[uint16]bool{80: true, 443: true, 22: false, 8080: false} {
		e := &StreamEnd{Port: port}
		if e.IsWebPort() != want {
			t.Errorf("port %d: IsWebPort=%v want %v", port, e.IsWebPort(), want)
		}
	}
}

func TestBusFiltering(t *testing.T) {
	b := NewBus()
	var all, relay7, streams int
	b.Subscribe(func(Event) { all++ })
	b.SubscribeFiltered([]RelayID{7}, nil, func(Event) { relay7++ })
	b.SubscribeFiltered(nil, []Type{TypeStreamEnd}, func(Event) { streams++ })
	for _, e := range sampleEvents() {
		b.Publish(e)
	}
	if all != 7 {
		t.Errorf("all subscriber: got %d want 7", all)
	}
	if relay7 != 7 {
		t.Errorf("relay-7 subscriber: got %d want 7 (all samples from relay 7)", relay7)
	}
	if streams != 2 {
		t.Errorf("stream subscriber: got %d want 2", streams)
	}
	if b.Subscribers() != 3 {
		t.Errorf("Subscribers: %d", b.Subscribers())
	}
}

func TestBusRelayFilterExcludes(t *testing.T) {
	b := NewBus()
	n := 0
	b.SubscribeFiltered([]RelayID{1}, []Type{TypeDescFetched}, func(Event) { n++ })
	b.Publish(&DescFetched{Header: Header{Relay: 2}})
	b.Publish(&DescPublished{Header: Header{Relay: 1}})
	if n != 0 {
		t.Fatal("filters must exclude non-matching events")
	}
	b.Publish(&DescFetched{Header: Header{Relay: 1}})
	if n != 1 {
		t.Fatal("matching event must be delivered")
	}
}

func TestTypeAndEnumStrings(t *testing.T) {
	if TypeStreamEnd.String() != "stream-end" || Type(99).String() != "unknown" {
		t.Fatal("Type.String")
	}
	if TargetIPv4.String() != "ipv4" || TargetKind(9).String() != "unknown" {
		t.Fatal("TargetKind.String")
	}
	if FetchNotFound.String() != "not-found" || FetchOutcome(9).String() != "unknown" {
		t.Fatal("FetchOutcome.String")
	}
	if RendConnClosed.String() != "conn-closed" || RendOutcome(9).String() != "unknown" {
		t.Fatal("RendOutcome.String")
	}
}

func TestNewUnknownType(t *testing.T) {
	if _, ok := New(TypeInvalid); ok {
		t.Fatal("New(TypeInvalid) must fail")
	}
	if _, ok := New(Type(200)); ok {
		t.Fatal("New(200) must fail")
	}
}

func BenchmarkMarshalStreamEnd(b *testing.B) {
	e := sampleEvents()[0]
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Marshal(buf[:0], e)
	}
}

func BenchmarkUnmarshalStreamEnd(b *testing.B) {
	buf := Marshal(nil, sampleEvents()[0])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
