// Package event defines the vocabulary of measurement events emitted by
// instrumented Tor relays, mirroring the PrivCount Tor patch the paper
// deploys (§3.1): stream-end, circuit-end, and connection-end events plus
// the new onion-service-directory and rendezvous events the authors added.
//
// Events are produced by the simulator (internal/tornet, internal/onion),
// carried either in-process over a Bus or across a socket using the
// compact binary codec in codec.go, and consumed by PrivCount and PSC
// data collectors which turn them into counter increments or set items.
//
// # Key types
//
//   - Event and its concrete kinds (StreamEnd, CircuitEnd,
//     ConnectionEnd, DescPublished, DescFetched, RendezvousEnd), each
//     carrying its observing relay and simtime timestamp.
//   - Bus: the in-process fan-out with per-relay filtered
//     subscriptions.
//   - AppendFrame / ReadFrames: the 4-byte-length-framed binary codec
//     shared by the torsim socket feed, trace recording, and mockrelay
//     replay.
//
// # Invariants
//
//   - The Type numbering and field layout are wire format: do not
//     reorder or renumber — recorded traces and the torsim feed depend
//     on them, and the codec fuzz tests pin decode crash-freedom.
//   - Events are immutable after publication: a Bus delivers the same
//     value to every subscriber, concurrently.
package event
