package event

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"repro/internal/simtime"
)

// Binary wire format, little-endian:
//
//	[1]  type tag
//	[8]  virtual time (int64 nanoseconds)
//	[2]  relay id
//	[..] type-specific payload (see appendPayload methods)
//
// Strings are uvarint-length-prefixed UTF-8. IP addresses are a 1-byte
// length (0, 4, or 16) followed by the raw address bytes. The format is
// deliberately simple and allocation-light: events dominate simulator
// throughput, and a DC may consume hundreds of millions per virtual day.

// Codec errors.
var (
	ErrShortBuffer  = errors.New("event: short buffer")
	ErrUnknownType  = errors.New("event: unknown event type")
	ErrTrailingData = errors.New("event: trailing bytes after payload")
)

const headerSize = 1 + 8 + 2

// Marshal appends the encoded event to dst and returns the result.
func Marshal(dst []byte, e Event) []byte {
	dst = append(dst, byte(e.EventType()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Time()))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(e.Observer()))
	return e.appendPayload(dst)
}

// Unmarshal decodes a single event from b, which must contain exactly one
// encoded event.
func Unmarshal(b []byte) (Event, error) {
	if len(b) < headerSize {
		return nil, ErrShortBuffer
	}
	e, ok := New(Type(b[0]))
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, b[0])
	}
	h := Header{
		At:    simtime.Time(binary.LittleEndian.Uint64(b[1:9])),
		Relay: RelayID(binary.LittleEndian.Uint16(b[9:11])),
	}
	setHeader(e, h)
	if err := e.decodePayload(b[headerSize:]); err != nil {
		return nil, err
	}
	return e, nil
}

func setHeader(e Event, h Header) {
	switch v := e.(type) {
	case *StreamEnd:
		v.Header = h
	case *CircuitEnd:
		v.Header = h
	case *ConnectionEnd:
		v.Header = h
	case *DescPublished:
		v.Header = h
	case *DescFetched:
		v.Header = h
	case *RendezvousEnd:
		v.Header = h
	}
}

// --- primitive helpers ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, ErrShortBuffer
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func appendAddr(b []byte, a netip.Addr) []byte {
	if !a.IsValid() {
		return append(b, 0)
	}
	raw := a.AsSlice()
	b = append(b, byte(len(raw)))
	return append(b, raw...)
}

func readAddr(b []byte) (netip.Addr, []byte, error) {
	if len(b) < 1 {
		return netip.Addr{}, nil, ErrShortBuffer
	}
	n := int(b[0])
	b = b[1:]
	if n == 0 {
		return netip.Addr{}, b, nil
	}
	if n != 4 && n != 16 || len(b) < n {
		return netip.Addr{}, nil, ErrShortBuffer
	}
	a, ok := netip.AddrFromSlice(b[:n])
	if !ok {
		return netip.Addr{}, nil, ErrShortBuffer
	}
	return a, b[n:], nil
}

func appendUint64(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func readUint64(b []byte) (uint64, []byte, error) {
	v, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, ErrShortBuffer
	}
	return v, b[sz:], nil
}

func readByte(b []byte) (byte, []byte, error) {
	if len(b) < 1 {
		return 0, nil, ErrShortBuffer
	}
	return b[0], b[1:], nil
}

func finish(b []byte) error {
	if len(b) != 0 {
		return ErrTrailingData
	}
	return nil
}

// --- StreamEnd ---

func (e *StreamEnd) appendPayload(b []byte) []byte {
	b = appendUint64(b, e.CircuitID)
	flags := byte(0)
	if e.IsInitial {
		flags |= 1
	}
	b = append(b, flags, byte(e.Target))
	b = binary.LittleEndian.AppendUint16(b, e.Port)
	b = appendString(b, e.Hostname)
	b = appendUint64(b, e.BytesSent)
	return appendUint64(b, e.BytesRecv)
}

func (e *StreamEnd) decodePayload(b []byte) error {
	var err error
	if e.CircuitID, b, err = readUint64(b); err != nil {
		return err
	}
	var flags, target byte
	if flags, b, err = readByte(b); err != nil {
		return err
	}
	e.IsInitial = flags&1 != 0
	if target, b, err = readByte(b); err != nil {
		return err
	}
	e.Target = TargetKind(target)
	if len(b) < 2 {
		return ErrShortBuffer
	}
	e.Port = binary.LittleEndian.Uint16(b)
	b = b[2:]
	if e.Hostname, b, err = readString(b); err != nil {
		return err
	}
	if e.BytesSent, b, err = readUint64(b); err != nil {
		return err
	}
	if e.BytesRecv, b, err = readUint64(b); err != nil {
		return err
	}
	return finish(b)
}

// --- CircuitEnd ---

func (e *CircuitEnd) appendPayload(b []byte) []byte {
	b = appendUint64(b, e.CircuitID)
	b = append(b, byte(e.Kind))
	b = appendAddr(b, e.ClientIP)
	b = appendString(b, e.Country)
	b = binary.LittleEndian.AppendUint32(b, e.ASN)
	b = binary.LittleEndian.AppendUint32(b, e.NumStreams)
	b = appendUint64(b, e.BytesSent)
	return appendUint64(b, e.BytesRecv)
}

func (e *CircuitEnd) decodePayload(b []byte) error {
	var err error
	if e.CircuitID, b, err = readUint64(b); err != nil {
		return err
	}
	var kind byte
	if kind, b, err = readByte(b); err != nil {
		return err
	}
	e.Kind = CircuitKind(kind)
	if e.ClientIP, b, err = readAddr(b); err != nil {
		return err
	}
	if e.Country, b, err = readString(b); err != nil {
		return err
	}
	if len(b) < 8 {
		return ErrShortBuffer
	}
	e.ASN = binary.LittleEndian.Uint32(b)
	e.NumStreams = binary.LittleEndian.Uint32(b[4:])
	b = b[8:]
	if e.BytesSent, b, err = readUint64(b); err != nil {
		return err
	}
	if e.BytesRecv, b, err = readUint64(b); err != nil {
		return err
	}
	return finish(b)
}

// --- ConnectionEnd ---

func (e *ConnectionEnd) appendPayload(b []byte) []byte {
	b = appendAddr(b, e.ClientIP)
	b = appendString(b, e.Country)
	b = binary.LittleEndian.AppendUint32(b, e.ASN)
	b = binary.LittleEndian.AppendUint32(b, e.NumCircuits)
	b = appendUint64(b, e.BytesSent)
	return appendUint64(b, e.BytesRecv)
}

func (e *ConnectionEnd) decodePayload(b []byte) error {
	var err error
	if e.ClientIP, b, err = readAddr(b); err != nil {
		return err
	}
	if e.Country, b, err = readString(b); err != nil {
		return err
	}
	if len(b) < 8 {
		return ErrShortBuffer
	}
	e.ASN = binary.LittleEndian.Uint32(b)
	e.NumCircuits = binary.LittleEndian.Uint32(b[4:])
	b = b[8:]
	if e.BytesSent, b, err = readUint64(b); err != nil {
		return err
	}
	if e.BytesRecv, b, err = readUint64(b); err != nil {
		return err
	}
	return finish(b)
}

// --- DescPublished ---

func (e *DescPublished) appendPayload(b []byte) []byte {
	b = appendString(b, e.Address)
	return append(b, e.Version, e.Replica)
}

func (e *DescPublished) decodePayload(b []byte) error {
	var err error
	if e.Address, b, err = readString(b); err != nil {
		return err
	}
	if len(b) < 2 {
		return ErrShortBuffer
	}
	e.Version, e.Replica = b[0], b[1]
	return finish(b[2:])
}

// --- DescFetched ---

func (e *DescFetched) appendPayload(b []byte) []byte {
	b = appendString(b, e.Address)
	return append(b, e.Version, byte(e.Outcome))
}

func (e *DescFetched) decodePayload(b []byte) error {
	var err error
	if e.Address, b, err = readString(b); err != nil {
		return err
	}
	if len(b) < 2 {
		return ErrShortBuffer
	}
	e.Version, e.Outcome = b[0], FetchOutcome(b[1])
	return finish(b[2:])
}

// --- RendezvousEnd ---

func (e *RendezvousEnd) appendPayload(b []byte) []byte {
	b = appendUint64(b, e.CircuitID)
	b = append(b, e.Version, byte(e.Outcome))
	b = appendUint64(b, e.PayloadCells)
	return appendUint64(b, e.PayloadBytes)
}

func (e *RendezvousEnd) decodePayload(b []byte) error {
	var err error
	if e.CircuitID, b, err = readUint64(b); err != nil {
		return err
	}
	var v, o byte
	if v, b, err = readByte(b); err != nil {
		return err
	}
	if o, b, err = readByte(b); err != nil {
		return err
	}
	e.Version, e.Outcome = v, RendOutcome(o)
	if e.PayloadCells, b, err = readUint64(b); err != nil {
		return err
	}
	if e.PayloadBytes, b, err = readUint64(b); err != nil {
		return err
	}
	return finish(b)
}
