package event

import (
	"testing"
)

// FuzzUnmarshal drives the binary event decoder with arbitrary bytes:
// it must never panic and never return (nil, nil). Seeds cover every
// event type so the corpus exercises each payload parser.
func FuzzUnmarshal(f *testing.F) {
	for _, e := range sampleEvents() {
		f.Add(Marshal(nil, e))
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(make([]byte, headerSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := Unmarshal(data)
		if err == nil {
			if ev == nil {
				t.Fatal("nil event without error")
			}
			// Successful decodes must re-encode losslessly.
			round := Marshal(nil, ev)
			ev2, err2 := Unmarshal(round)
			if err2 != nil {
				t.Fatalf("re-decode failed: %v", err2)
			}
			if ev2.EventType() != ev.EventType() {
				t.Fatal("type changed across round trip")
			}
		}
	})
}
