package elgamal

// Reference implementation of the group operations in the affine
// math/big style this package used before the Jacobian core: textbook
// chord-and-tangent formulas paying one modular inversion per point
// addition, and plain double-and-add scalar multiplication. It is the
// ground truth the equivalence property tests compare the fast paths
// against, and the "old per-element affine path" baseline arm of
// BenchmarkGroupOps. Never call it from protocol code.

import "math/big"

// refAffineAdd returns p + q using affine formulas (one field inversion
// per call).
func refAffineAdd(p, q Point) Point {
	if p.IsIdentity() {
		return Point{X: new(big.Int).Set(q.X), Y: new(big.Int).Set(q.Y)}
	}
	if q.IsIdentity() {
		return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Set(p.Y)}
	}
	pp := curve.Params().P
	var lambda *big.Int
	if p.X.Cmp(q.X) == 0 {
		if p.Y.Cmp(q.Y) != 0 || p.Y.Sign() == 0 {
			return Identity() // p == −q
		}
		// Tangent: λ = (3x² − 3) / 2y
		num := new(big.Int).Mul(p.X, p.X)
		num.Mul(num, big.NewInt(3))
		num.Sub(num, big.NewInt(3))
		den := new(big.Int).Lsh(p.Y, 1)
		den.ModInverse(den, pp)
		lambda = num.Mul(num, den)
	} else {
		// Chord: λ = (y2 − y1) / (x2 − x1)
		num := new(big.Int).Sub(q.Y, p.Y)
		den := new(big.Int).Sub(q.X, p.X)
		den.Mod(den, pp)
		den.ModInverse(den, pp)
		lambda = num.Mul(num, den)
	}
	lambda.Mod(lambda, pp)
	x := new(big.Int).Mul(lambda, lambda)
	x.Sub(x, p.X)
	x.Sub(x, q.X)
	x.Mod(x, pp)
	y := new(big.Int).Sub(p.X, x)
	y.Mul(y, lambda)
	y.Sub(y, p.Y)
	y.Mod(y, pp)
	return Point{X: x, Y: y}
}

// refAffineMul returns k·p by double-and-add over refAffineAdd.
func refAffineMul(p Point, k *big.Int) Point {
	kk := new(big.Int).Mod(k, order)
	acc := Identity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = refAffineAdd(acc, acc)
		if kk.Bit(i) == 1 {
			acc = refAffineAdd(acc, p)
		}
	}
	return acc
}

// refAffineBaseMul returns k·G on the reference path.
func refAffineBaseMul(k *big.Int) Point { return refAffineMul(Generator(), k) }
