package elgamal

import (
	"math/big"
	"testing"
)

func TestDLEQHonest(t *testing.T) {
	x := RandomScalar()
	b1 := Generator()
	b2 := BaseMul(big.NewInt(7))
	p1, p2 := b1.Mul(x), b2.Mul(x)
	pr := ProveDLEQ("test", b1, p1, b2, p2, x)
	if !VerifyDLEQ("test", b1, p1, b2, p2, pr) {
		t.Fatal("honest DLEQ rejected")
	}
	// Wrong domain must fail.
	if VerifyDLEQ("other", b1, p1, b2, p2, pr) {
		t.Fatal("domain separation broken")
	}
	// Unequal logs must fail.
	p2bad := b2.Mul(RandomScalar())
	if VerifyDLEQ("test", b1, p1, b2, p2bad, pr) {
		t.Fatal("unequal logs accepted")
	}
}

func TestBlindProof(t *testing.T) {
	k := GenerateKey()
	in := EncryptBit(k.PK, true)
	s := RandomScalar()
	out := in.ExpBlindWith(s)
	pr := ProveBlind(in, out, s)
	if !VerifyBlind(in, out, pr) {
		t.Fatal("honest blind proof rejected")
	}
	// A substituted output (different plaintext) must fail.
	forged := EncryptBit(k.PK, false)
	if VerifyBlind(in, forged, pr) {
		t.Fatal("forged blind output accepted")
	}
}

func TestBitProofHonest(t *testing.T) {
	k := GenerateKey()
	for _, bit := range []bool{false, true} {
		r := RandomScalar()
		var msg Point
		if bit {
			msg = Generator()
		} else {
			msg = Identity()
		}
		c := EncryptWith(k.PK, msg, r)
		pr := ProveBit(k.PK, c, bit, r)
		if !VerifyBit(k.PK, c, pr) {
			t.Fatalf("honest bit proof (bit=%v) rejected", bit)
		}
	}
}

func TestBitProofRejectsNonBit(t *testing.T) {
	k := GenerateKey()
	// Encrypt 2·G — not a valid bit. A cheater must fail to prove it.
	r := RandomScalar()
	c := EncryptWith(k.PK, Generator().Add(Generator()), r)
	// Try proving with either bit claim; both must fail verification.
	for _, claim := range []bool{false, true} {
		pr := ProveBit(k.PK, c, claim, r)
		if VerifyBit(k.PK, c, pr) {
			t.Fatalf("non-bit ciphertext accepted with claim=%v", claim)
		}
	}
}

func TestBitProofRejectsTampering(t *testing.T) {
	k := GenerateKey()
	r := RandomScalar()
	c := EncryptWith(k.PK, Identity(), r)
	pr := ProveBit(k.PK, c, false, r)
	pr.Resp0 = new(big.Int).Add(pr.Resp0, big.NewInt(1))
	if VerifyBit(k.PK, c, pr) {
		t.Fatal("tampered bit proof accepted")
	}
	if VerifyBit(k.PK, c, BitProof{}) {
		t.Fatal("empty bit proof accepted")
	}
	// Proof bound to a different ciphertext must fail.
	c2 := EncryptBit(k.PK, false)
	pr2 := ProveBit(k.PK, c2, false, r) // wrong randomness for c2
	if VerifyBit(k.PK, c2, pr2) {
		t.Fatal("proof with wrong witness accepted")
	}
}

func BenchmarkProveBit(b *testing.B) {
	k := GenerateKey()
	r := RandomScalar()
	c := EncryptWith(k.PK, Identity(), r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ProveBit(k.PK, c, false, r)
	}
}

func BenchmarkVerifyBit(b *testing.B) {
	k := GenerateKey()
	r := RandomScalar()
	c := EncryptWith(k.PK, Identity(), r)
	pr := ProveBit(k.PK, c, false, r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !VerifyBit(k.PK, c, pr) {
			b.Fatal("verify failed")
		}
	}
}
