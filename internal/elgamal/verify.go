package elgamal

// Batched proof verification. The tally server verifies thousands of
// Chaum–Pedersen equations per PSC round; checking each with two full
// scalar multiplications is the single largest cost of a verified
// round. Instead, the verifier draws an independent random 128-bit
// coefficient per equation and checks one random linear combination
//
//	Σ λₑ·(respₑ·Bₑ − chₑ·Pₑ − Tₑ) == O
//
// with a shared-doubling multi-scalar multiplication (multiexp.go).
// If every equation holds the combination is the identity; if any
// fails, a random combination vanishes with probability ≤ 2⁻¹²⁸
// (standard small-exponent batch verification). Equations over the
// fixed bases G and pk collapse into a single accumulated coefficient
// each, so they cost one table multiplication per *batch*.
//
// A batch rejection falls back to exact per-element verification to
// locate the offending element, so callers keep byte-identical error
// reporting and the accept/reject semantics of the one-at-a-time path.

import (
	"bufio"
	"math/big"
	"sync"

	"repro/internal/parallel"
)

// batchVerifyMin is the batch size below which per-element verification
// is used directly; tiny batches don't repay the combination setup.
const batchVerifyMin = 4

// batchLambdaBits is the width of the random combination coefficients:
// false-accept probability 2^-128.
const batchLambdaBits = 128

// eqAccum accumulates the terms of one random linear combination.
type eqAccum struct {
	rand    *bufio.Reader
	gCoeff  *big.Int
	pk      Point
	pkCoeff *big.Int
	terms   []msmTerm
}

func newEqAccum(pk Point, capacity int) *eqAccum {
	return &eqAccum{
		rand:    randReaders.Get().(*bufio.Reader),
		gCoeff:  new(big.Int),
		pk:      pk,
		pkCoeff: new(big.Int),
		terms:   make([]msmTerm, 0, capacity),
	}
}

func (a *eqAccum) lambda() *big.Int {
	return randomScalarBits(a.rand, batchLambdaBits)
}

// addG adds c·G to the combination.
func (a *eqAccum) addG(c *big.Int) {
	a.gCoeff.Add(a.gCoeff, c)
}

// addPK adds c·pk to the combination.
func (a *eqAccum) addPK(c *big.Int) {
	a.pkCoeff.Add(a.pkCoeff, c)
}

// add adds c·p to the combination.
func (a *eqAccum) add(c *big.Int, p Point) {
	if p.IsIdentity() {
		return
	}
	a.terms = append(a.terms, msmTerm{scalar: c.Mod(c, order), point: p})
}

// sub adds −c·p to the combination.
func (a *eqAccum) sub(c *big.Int, p Point) {
	a.add(new(big.Int).Neg(c), p)
}

// check evaluates the combination; true means all folded equations hold
// (up to the 2^-128 soundness error).
func (a *eqAccum) check() bool {
	defer randReaders.Put(a.rand)
	if c := a.gCoeff.Mod(a.gCoeff, order); c.Sign() != 0 {
		a.terms = append(a.terms, msmTerm{scalar: c, point: Generator()})
	}
	if c := a.pkCoeff.Mod(a.pkCoeff, order); c.Sign() != 0 {
		a.terms = append(a.terms, msmTerm{scalar: c, point: a.pk})
	}
	var sum jacPoint
	if !multiScalarMul(&sum, a.terms) {
		return false // an input point was off-curve
	}
	return sum.isInfinity()
}

// dleqFold folds one Chaum–Pedersen equation pair into the accumulator.
// Share proofs hit the B1 = G, P1 = pk special case, where both
// fixed-base terms fold into the shared coefficients.
func dleqFold(a *eqAccum, domain string, b1, p1, b2, p2 Point, pr EqualityProof) bool {
	if pr.Response == nil || pr.Commit1.X == nil || pr.Commit2.X == nil {
		return false
	}
	ch := hashToScalar(domain,
		b1.Bytes(), p1.Bytes(), b2.Bytes(), p2.Bytes(),
		pr.Commit1.Bytes(), pr.Commit2.Bytes())
	resp := new(big.Int).Mod(pr.Response, order)

	// Equation 1: resp·B1 − ch·P1 − T1 = O
	l := a.lambda()
	lr := new(big.Int).Mul(l, resp)
	lc := new(big.Int).Mul(l, ch)
	if b1.isGenerator() {
		a.addG(lr)
	} else {
		a.add(lr, b1)
	}
	if p1.Equal(a.pk) {
		a.addPK(lc.Neg(lc))
	} else {
		a.sub(lc, p1)
	}
	a.sub(l, pr.Commit1)

	// Equation 2: resp·B2 − ch·P2 − T2 = O
	l = a.lambda()
	lr = new(big.Int).Mul(l, resp)
	lc = new(big.Int).Mul(l, ch)
	a.add(lr, b2)
	a.sub(lc, p2)
	a.sub(l, pr.Commit2)
	return true
}

// VerifySharesBatch verifies a CP's decryption shares for a whole batch
// in one randomized check. It returns (-1, true) on acceptance; on
// rejection it re-verifies element by element and returns the index of
// the first failing share.
func VerifySharesBatch(pk Point, cs []Ciphertext, shares []DecryptionShare, proofs []EqualityProof) (int, bool) {
	if len(cs) != len(shares) || len(cs) != len(proofs) {
		return 0, false
	}
	scan := func() (int, bool) {
		return scanVerify(len(cs), func(i int) bool {
			return VerifyShare(pk, cs[i], shares[i], proofs[i])
		})
	}
	if len(cs) < batchVerifyMin {
		return scan()
	}
	acc := newEqAccum(pk, 4*len(cs))
	ok := true
	for i := range cs {
		if !cs[i].IsValid() {
			return i, false
		}
		if !dleqFold(acc, shareDomain, Generator(), pk, cs[i].C1, shares[i].Share, proofs[i]) {
			ok = false
			break
		}
	}
	if ok && acc.check() {
		return -1, true
	}
	return scan()
}

// VerifyBlindsBatch verifies a CP's exponent-blinding proofs for a
// whole batch in one randomized check, with the same contract as
// VerifySharesBatch.
func VerifyBlindsBatch(ins, outs []Ciphertext, proofs []EqualityProof) (int, bool) {
	if len(ins) != len(outs) || len(ins) != len(proofs) {
		return 0, false
	}
	scan := func() (int, bool) {
		return scanVerify(len(ins), func(i int) bool {
			return VerifyBlind(ins[i], outs[i], proofs[i])
		})
	}
	if len(ins) < batchVerifyMin {
		return scan()
	}
	acc := newEqAccum(Identity(), 6*len(ins))
	ok := true
	for i := range ins {
		if !dleqFold(acc, blindDomain, ins[i].C1, outs[i].C1, ins[i].C2, outs[i].C2, proofs[i]) {
			ok = false
			break
		}
	}
	if ok && acc.check() {
		return -1, true
	}
	return scan()
}

// VerifyBitsBatch verifies the CDS bit proofs for a batch of noise
// ciphertexts in one randomized check, with the same contract as
// VerifySharesBatch. The challenge-splitting constraint
// (c0 + c1 == H(transcript)) is exact per element; only the four group
// equations per proof are folded into the combination.
func VerifyBitsBatch(pk Point, cs []Ciphertext, proofs []BitProof) (int, bool) {
	if len(cs) != len(proofs) {
		return 0, false
	}
	scan := func() (int, bool) {
		return scanVerify(len(cs), func(i int) bool {
			return VerifyBit(pk, cs[i], proofs[i])
		})
	}
	if len(cs) < batchVerifyMin {
		return scan()
	}
	acc := newEqAccum(pk, 6*len(cs))
	ok := true
	for i := range cs {
		pr := proofs[i]
		if pr.Chal0 == nil || pr.Chal1 == nil || pr.Resp0 == nil || pr.Resp1 == nil || !cs[i].IsValid() {
			ok = false
			break
		}
		total := bitChallenge(pk, cs[i], pr)
		sum := new(big.Int).Add(pr.Chal0, pr.Chal1)
		if sum.Mod(sum, order).Cmp(total) != 0 {
			ok = false
			break
		}
		c0 := new(big.Int).Mod(pr.Chal0, order)
		c1 := new(big.Int).Mod(pr.Chal1, order)
		z0 := new(big.Int).Mod(pr.Resp0, order)
		z1 := new(big.Int).Mod(pr.Resp1, order)

		// Branch 0: z0·G − c0·C1 − A0 = O and z0·PK − c0·C2 − B0 = O.
		l := acc.lambda()
		acc.addG(new(big.Int).Mul(l, z0))
		acc.sub(new(big.Int).Mul(l, c0), cs[i].C1)
		acc.sub(l, pr.Commit0G)
		l = acc.lambda()
		acc.addPK(new(big.Int).Mul(l, z0))
		acc.sub(new(big.Int).Mul(l, c0), cs[i].C2)
		acc.sub(l, pr.Commit0P)
		// Branch 1: z1·G − c1·C1 − A1 = O and
		// z1·PK − c1·(C2 − G) − B1 = O, whose −c1·(−G) folds into the G
		// coefficient.
		l = acc.lambda()
		acc.addG(new(big.Int).Mul(l, z1))
		acc.sub(new(big.Int).Mul(l, c1), cs[i].C1)
		acc.sub(l, pr.Commit1G)
		l = acc.lambda()
		acc.addPK(new(big.Int).Mul(l, z1))
		acc.sub(new(big.Int).Mul(l, c1), cs[i].C2)
		acc.addG(new(big.Int).Mul(l, c1))
		acc.sub(l, pr.Commit1P)
	}
	if ok && acc.check() {
		return -1, true
	}
	return scan()
}

// scanVerify runs the exact per-element check across the worker pool,
// returning (-1, true) if every element verifies or the smallest
// failing index otherwise (smallest keeps error messages deterministic
// for serial runs; any failing index rejects the batch).
func scanVerify(n int, check func(i int) bool) (int, bool) {
	bad := -1
	var mu sync.Mutex
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !check(i) {
				mu.Lock()
				if bad < 0 || i < bad {
					bad = i
				}
				mu.Unlock()
				return
			}
		}
	})
	if bad >= 0 {
		return bad, false
	}
	return -1, true
}
