package elgamal

// Equivalence property tests: the Jacobian/table/batch fast paths must
// agree bit-for-bit with both the stdlib crypto/elliptic results and
// the affine math/big reference implementation (affine.go) on random
// scalars, boundary scalars, and the identity point.

import (
	"bufio"
	"crypto/elliptic"
	"math/big"
	"testing"
)

// edgeScalars are the boundary cases every multiplication path must
// agree on: 0, 1, 2, order−1, order, order+1 and a few mid values.
func edgeScalars() []*big.Int {
	return []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(3),
		new(big.Int).Sub(order, big.NewInt(1)),
		new(big.Int).Set(order),
		new(big.Int).Add(order, big.NewInt(1)),
		new(big.Int).Rsh(order, 1),
		new(big.Int).Lsh(big.NewInt(1), 255),
	}
}

// stdlibBaseMul is the old BaseMul implementation, kept inline here as
// the stdlib ground truth.
func stdlibBaseMul(k *big.Int) Point {
	kk := new(big.Int).Mod(k, order)
	if kk.Sign() == 0 {
		return Identity()
	}
	x, y := elliptic.P256().ScalarBaseMult(kk.Bytes())
	return Point{X: x, Y: y}
}

// stdlibMul is the old Point.Mul implementation.
func stdlibMul(p Point, k *big.Int) Point {
	if p.IsIdentity() || k.Sign() == 0 {
		return Identity()
	}
	kk := new(big.Int).Mod(k, order)
	if kk.Sign() == 0 {
		return Identity()
	}
	x, y := elliptic.P256().ScalarMult(p.X, p.Y, kk.Bytes())
	return Point{X: x, Y: y}
}

// stdlibAdd is the old Point.Add implementation.
func stdlibAdd(p, q Point) Point {
	x, y := elliptic.P256().Add(p.X, p.Y, q.X, q.Y)
	return Point{X: x, Y: y}
}

func TestFieldArithmeticMatchesBig(t *testing.T) {
	p := curve.Params().P
	for i := 0; i < 200; i++ {
		a := RandomScalar() // < order < p, fine as a field element
		b := RandomScalar()
		fa := feFromBig(a)
		fb := feFromBig(b)

		var sum, diff, prod, inv fe
		feAdd(&sum, &fa, &fb)
		feSub(&diff, &fa, &fb)
		feMul(&prod, &fa, &fb)
		feInv(&inv, &fa)

		wantSum := new(big.Int).Add(a, b)
		wantSum.Mod(wantSum, p)
		wantDiff := new(big.Int).Sub(a, b)
		wantDiff.Mod(wantDiff, p)
		wantProd := new(big.Int).Mul(a, b)
		wantProd.Mod(wantProd, p)
		wantInv := new(big.Int).ModInverse(a, p)

		if sum.toBig().Cmp(wantSum) != 0 {
			t.Fatalf("feAdd mismatch for %v + %v", a, b)
		}
		if diff.toBig().Cmp(wantDiff) != 0 {
			t.Fatalf("feSub mismatch for %v - %v", a, b)
		}
		if prod.toBig().Cmp(wantProd) != 0 {
			t.Fatalf("feMul mismatch for %v * %v", a, b)
		}
		if inv.toBig().Cmp(wantInv) != 0 {
			t.Fatalf("feInv mismatch for %v", a)
		}
		if got := fa.toBig(); got.Cmp(a) != 0 {
			t.Fatalf("Montgomery round-trip mismatch: got %v want %v", got, a)
		}
	}
	// p − 1 and small values exercise the reduction boundary.
	for _, v := range []*big.Int{big.NewInt(0), big.NewInt(1), new(big.Int).Sub(p, big.NewInt(1))} {
		f := feFromBig(v)
		if f.toBig().Cmp(v) != 0 {
			t.Fatalf("round-trip mismatch for boundary value %v", v)
		}
	}
}

func TestBaseMulEquivalence(t *testing.T) {
	scalars := edgeScalars()
	for i := 0; i < 50; i++ {
		scalars = append(scalars, RandomScalar())
	}
	for _, k := range scalars {
		want := stdlibBaseMul(k)
		if got := BaseMul(k); !got.Equal(want) {
			t.Fatalf("BaseMul(%v) = %v,%v want %v,%v", k, got.X, got.Y, want.X, want.Y)
		}
	}
	// The affine math/big reference must agree too (fewer iterations —
	// it pays one inversion per bit).
	for _, k := range append(edgeScalars(), RandomScalar()) {
		want := stdlibBaseMul(k)
		if got := refAffineBaseMul(k); !got.Equal(want) {
			t.Fatalf("refAffineBaseMul(%v) disagrees with stdlib", k)
		}
	}
}

func TestMulEquivalence(t *testing.T) {
	bases := []Point{Identity(), Generator(), stdlibBaseMul(big.NewInt(12345)), stdlibBaseMul(RandomScalar())}
	scalars := append(edgeScalars(), RandomScalar(), RandomScalar())
	for _, p := range bases {
		for _, k := range scalars {
			want := stdlibMul(p, k)
			if got := p.Mul(k); !got.Equal(want) {
				t.Fatalf("Mul(%v) mismatch on base %v,%v", k, p.X, p.Y)
			}
			if got := refAffineMul(p, k); !p.IsIdentity() && !got.Equal(want) {
				t.Fatalf("refAffineMul(%v) mismatch", k)
			}
		}
	}
}

func TestMulWithPrecomputedTable(t *testing.T) {
	base := stdlibBaseMul(RandomScalar())
	Precompute(base)
	for _, k := range append(edgeScalars(), RandomScalar(), RandomScalar()) {
		want := stdlibMul(base, k)
		if got := base.Mul(k); !got.Equal(want) {
			t.Fatalf("table Mul(%v) disagrees with stdlib", k)
		}
	}
}

func TestAddEquivalence(t *testing.T) {
	g := Generator()
	p := stdlibBaseMul(big.NewInt(7))
	q := stdlibBaseMul(big.NewInt(11))
	cases := [][2]Point{
		{p, q},
		{p, p},                   // doubling
		{p, p.Neg()},             // inverse: identity
		{Identity(), p},          // left identity
		{p, Identity()},          // right identity
		{Identity(), Identity()}, // identity + identity
		{g, g.Neg()},             // generator cancellation
		{stdlibBaseMul(RandomScalar()), stdlibBaseMul(RandomScalar())},
	}
	for _, c := range cases {
		want := stdlibAdd(c[0], c[1])
		if got := c[0].Add(c[1]); !got.Equal(want) {
			t.Fatalf("Add mismatch: got %v,%v want %v,%v", got.X, got.Y, want.X, want.Y)
		}
		if got := refAffineAdd(c[0], c[1]); !got.Equal(want) {
			t.Fatalf("refAffineAdd mismatch")
		}
	}
	// Sub must match Add of the negation.
	want := stdlibAdd(p, q.Neg())
	if got := p.Sub(q); !got.Equal(want) {
		t.Fatalf("Sub mismatch")
	}
}

func TestBatchBaseMulEquivalence(t *testing.T) {
	ks := edgeScalars()
	for i := 0; i < 100; i++ {
		ks = append(ks, RandomScalar())
	}
	got := BatchBaseMul(ks)
	for i, k := range ks {
		if want := stdlibBaseMul(k); !got[i].Equal(want) {
			t.Fatalf("BatchBaseMul[%d] (k=%v) mismatch", i, k)
		}
	}
}

func TestBatchMulEquivalence(t *testing.T) {
	base := stdlibBaseMul(RandomScalar())
	ks := edgeScalars()
	for i := 0; i < 100; i++ {
		ks = append(ks, RandomScalar())
	}
	got := BatchMul(base, ks) // large batch: table path
	for i, k := range ks {
		if want := stdlibMul(base, k); !got[i].Equal(want) {
			t.Fatalf("BatchMul[%d] mismatch", i)
		}
	}
	small := ks[:3] // small batch: per-element path
	got = BatchMul(base, small)
	for i, k := range small {
		if want := stdlibMul(base, k); !got[i].Equal(want) {
			t.Fatalf("small BatchMul[%d] mismatch", i)
		}
	}
	gotG := BatchMul(Generator(), small)
	for i, k := range small {
		if want := stdlibBaseMul(k); !gotG[i].Equal(want) {
			t.Fatalf("BatchMul generator[%d] mismatch", i)
		}
	}
	gotID := BatchMul(Identity(), small)
	for i := range small {
		if !gotID[i].IsIdentity() {
			t.Fatalf("BatchMul identity base[%d] not identity", i)
		}
	}
}

func TestBatchAddEquivalence(t *testing.T) {
	n := 64
	ps := make([]Point, n)
	qs := make([]Point, n)
	for i := range ps {
		ps[i] = stdlibBaseMul(RandomScalar())
		qs[i] = stdlibBaseMul(RandomScalar())
	}
	// Sprinkle in edge combinations.
	ps[0], qs[0] = Identity(), Identity()
	ps[1] = Identity()
	qs[2] = Identity()
	qs[3] = ps[3]       // doubling
	qs[4] = ps[4].Neg() // cancellation
	got := BatchAdd(ps, qs)
	for i := range ps {
		if want := stdlibAdd(ps[i], qs[i]); !got[i].Equal(want) {
			t.Fatalf("BatchAdd[%d] mismatch", i)
		}
	}
}

func TestBatchEncryptDecrypt(t *testing.T) {
	key := GenerateKey()
	n := 80
	msgs := make([]Point, n)
	for i := range msgs {
		switch i % 3 {
		case 0:
			msgs[i] = Identity()
		case 1:
			msgs[i] = Generator()
		default:
			msgs[i] = stdlibBaseMul(RandomScalar())
		}
	}
	cts, rs := BatchEncrypt(key.PK, msgs)
	if len(cts) != n || len(rs) != n {
		t.Fatalf("BatchEncrypt returned %d cts, %d rs", len(cts), len(rs))
	}
	for i, ct := range cts {
		if !ct.IsValid() {
			t.Fatalf("ciphertext %d invalid", i)
		}
		// Deterministic re-encryption with the returned randomizer must
		// reproduce the ciphertext exactly.
		if again := EncryptWith(key.PK, msgs[i], rs[i]); !again.Equal(ct) {
			t.Fatalf("ciphertext %d does not match EncryptWith(r)", i)
		}
		if got := key.Decrypt(ct); !got.Equal(msgs[i]) {
			t.Fatalf("decrypt %d: wrong plaintext", i)
		}
	}
}

func TestBatchRerandomizeAndBlind(t *testing.T) {
	key := GenerateKey()
	n := 70
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	cts, rs := BatchEncryptBits(key.PK, bits)
	if len(rs) != n {
		t.Fatalf("missing randomizers")
	}
	rr, rrs := BatchRerandomize(key.PK, cts)
	for i := range cts {
		if want := cts[i].RerandomizeWith(key.PK, rrs[i]); !want.Equal(rr[i]) {
			t.Fatalf("BatchRerandomize[%d] disagrees with RerandomizeWith", i)
		}
		if got := key.Decrypt(rr[i]); got.IsIdentity() != !bits[i] {
			t.Fatalf("rerandomized plaintext %d changed", i)
		}
	}
	bl, ss := BatchExpBlind(cts)
	for i := range cts {
		if want := cts[i].ExpBlindWith(ss[i]); !want.Equal(bl[i]) {
			t.Fatalf("BatchExpBlind[%d] disagrees with ExpBlindWith", i)
		}
		if got := key.Decrypt(bl[i]); got.IsIdentity() != !bits[i] {
			t.Fatalf("blinded zero-ness %d changed", i)
		}
	}
}

func TestBatchPartialDecryptAndRecover(t *testing.T) {
	k1, k2 := GenerateKey(), GenerateKey()
	joint, err := CombineKeys(k1.PK, k2.PK)
	if err != nil {
		t.Fatal(err)
	}
	n := 50
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = i%3 == 0
	}
	cts, _ := BatchEncryptBits(joint, bits)
	s1 := k1.BatchPartialDecrypt(cts)
	s2 := k2.BatchPartialDecrypt(cts)
	for i := range cts {
		if want := k1.PartialDecrypt(cts[i]); !want.Share.Equal(s1[i].Share) {
			t.Fatalf("BatchPartialDecrypt[%d] mismatch", i)
		}
	}
	pts := RecoverBatch(cts, [][]DecryptionShare{s1, s2})
	for i := range cts {
		if want := Recover(cts[i], []DecryptionShare{s1[i], s2[i]}); !want.Equal(pts[i]) {
			t.Fatalf("RecoverBatch[%d] disagrees with Recover", i)
		}
		if pts[i].IsIdentity() == bits[i] {
			t.Fatalf("RecoverBatch[%d] wrong plaintext", i)
		}
	}
}

func TestMultiScalarMul(t *testing.T) {
	for n := 1; n <= 20; n += 3 {
		terms := make([]msmTerm, n)
		want := Identity()
		for i := range terms {
			k := RandomScalar()
			if i == 0 {
				k = big.NewInt(0) // zero scalar must be skipped
			}
			p := stdlibBaseMul(RandomScalar())
			if i == 1 {
				p = Identity() // identity point must be skipped
			}
			terms[i] = msmTerm{scalar: k, point: p}
			want = stdlibAdd(want, stdlibMul(p, k))
		}
		var sum jacPoint
		if !multiScalarMul(&sum, terms) {
			t.Fatalf("msm rejected valid terms")
		}
		if got := sum.toPoint(); !got.Equal(want) {
			t.Fatalf("msm(n=%d) mismatch", n)
		}
	}
	// Off-curve input must be rejected, not computed with.
	bad := []msmTerm{{scalar: big.NewInt(2), point: Point{X: big.NewInt(1), Y: big.NewInt(1)}}}
	var sum jacPoint
	if multiScalarMul(&sum, bad) {
		t.Fatal("msm accepted an off-curve point")
	}
}

func TestWNAFDigits(t *testing.T) {
	scalars := append(edgeScalars(), RandomScalar(), RandomScalar(), RandomScalar())
	for _, k := range scalars {
		kk := new(big.Int).Mod(k, order)
		var digits [257]int8
		n := wnafDigits(kk, &digits)
		// Reconstruct: Σ digits[i]·2^i must equal the scalar.
		got := new(big.Int)
		for i := n - 1; i >= 0; i-- {
			got.Lsh(got, 1)
			got.Add(got, big.NewInt(int64(digits[i])))
		}
		if got.Cmp(kk) != 0 {
			t.Fatalf("wNAF reconstruction mismatch for %v: got %v", kk, got)
		}
		for i := 0; i < n; i++ {
			d := int(digits[i])
			if d != 0 && (d%2 == 0 || d > 15 || d < -15) {
				t.Fatalf("invalid wNAF digit %d at %d", d, i)
			}
		}
	}
}

func TestRandomScalars(t *testing.T) {
	ks := RandomScalars(100)
	seen := make(map[string]bool)
	for _, k := range ks {
		if k.Sign() <= 0 || k.Cmp(order) >= 0 {
			t.Fatalf("scalar out of range: %v", k)
		}
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate scalar")
		}
		seen[s] = true
	}
}

func TestBatchVerifyShares(t *testing.T) {
	key := GenerateKey()
	n := 20
	bits := make([]bool, n)
	cts, _ := BatchEncryptBits(key.PK, bits)
	shares := key.BatchPartialDecrypt(cts)
	proofs := make([]EqualityProof, n)
	for i := range cts {
		proofs[i] = key.ProveShare(cts[i], shares[i])
	}
	if idx, ok := VerifySharesBatch(key.PK, cts, shares, proofs); !ok {
		t.Fatalf("valid share batch rejected at %d", idx)
	}
	// Tamper with one share: the batch must reject and locate it.
	badIdx := 7
	orig := shares[badIdx]
	shares[badIdx] = DecryptionShare{Share: Generator()}
	if idx, ok := VerifySharesBatch(key.PK, cts, shares, proofs); ok || idx != badIdx {
		t.Fatalf("tampered share: got (%d,%v), want (%d,false)", idx, ok, badIdx)
	}
	shares[badIdx] = orig
	// Tamper with a proof response.
	proofs[3].Response = new(big.Int).Add(proofs[3].Response, big.NewInt(1))
	if idx, ok := VerifySharesBatch(key.PK, cts, shares, proofs); ok || idx != 3 {
		t.Fatalf("tampered proof: got (%d,%v), want (3,false)", idx, ok)
	}
}

func TestBatchVerifyBlinds(t *testing.T) {
	key := GenerateKey()
	n := 16
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = i%2 == 1
	}
	cts, _ := BatchEncryptBits(key.PK, bits)
	blinded, ss := BatchExpBlind(cts)
	proofs := make([]EqualityProof, n)
	for i := range cts {
		proofs[i] = ProveBlind(cts[i], blinded[i], ss[i])
	}
	if idx, ok := VerifyBlindsBatch(cts, blinded, proofs); !ok {
		t.Fatalf("valid blind batch rejected at %d", idx)
	}
	blinded[5] = blinded[5].ExpBlindWith(big.NewInt(3))
	if idx, ok := VerifyBlindsBatch(cts, blinded, proofs); ok || idx != 5 {
		t.Fatalf("tampered blind: got (%d,%v), want (5,false)", idx, ok)
	}
}

func TestBatchVerifyBits(t *testing.T) {
	key := GenerateKey()
	n := 12
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = i%3 == 0
	}
	cts, rs := BatchEncryptBits(key.PK, bits)
	proofs := make([]BitProof, n)
	for i := range cts {
		proofs[i] = ProveBit(key.PK, cts[i], bits[i], rs[i])
	}
	if idx, ok := VerifyBitsBatch(key.PK, cts, proofs); !ok {
		t.Fatalf("valid bit batch rejected at %d", idx)
	}
	// A ciphertext that encrypts 2·G is not a bit; its proof cannot hold.
	two, r2 := EncryptWith(key.PK, BaseMul(big.NewInt(2)), RandomScalar()), RandomScalar()
	_ = r2
	orig := cts[4]
	cts[4] = two
	if idx, ok := VerifyBitsBatch(key.PK, cts, proofs); ok || idx != 4 {
		t.Fatalf("non-bit ciphertext: got (%d,%v), want (4,false)", idx, ok)
	}
	cts[4] = orig
}

// TestPippengerMSM exercises the bucket-method path (term counts above
// the Strauss/Pippenger threshold) against stdlib arithmetic, with a
// mix of scalar widths and edge values.
func TestPippengerMSM(t *testing.T) {
	n := pippengerThreshold + 37
	terms := make([]msmTerm, n)
	want := Identity()
	for i := range terms {
		var k *big.Int
		switch i % 6 {
		case 0:
			k = RandomScalar()
		case 1:
			k = randomScalarBits(randReaders.Get().(*bufio.Reader), 128)
		case 2:
			k = big.NewInt(0)
		case 3:
			k = big.NewInt(1)
		case 4:
			k = new(big.Int).Sub(order, big.NewInt(1))
		default:
			k = big.NewInt(int64(i))
		}
		p := stdlibBaseMul(big.NewInt(int64(i + 3)))
		if i == 7 {
			p = Identity()
		}
		terms[i] = msmTerm{scalar: k, point: p}
		want = stdlibAdd(want, stdlibMul(p, k))
	}
	var sum jacPoint
	if !pippengerMSM(&sum, terms) {
		t.Fatal("pippenger rejected valid terms")
	}
	if got := sum.toPoint(); !got.Equal(want) {
		t.Fatalf("pippenger mismatch: got %v,%v want %v,%v", got.X, got.Y, want.X, want.Y)
	}
	// Strauss on the same terms must agree.
	var sum2 jacPoint
	if !straussMSM(&sum2, terms) {
		t.Fatal("strauss rejected valid terms")
	}
	if got := sum2.toPoint(); !got.Equal(want) {
		t.Fatal("strauss mismatch on large batch")
	}
	// Off-curve rejection on the bucket path too.
	terms[11].point = Point{X: big.NewInt(2), Y: big.NewInt(9)}
	if pippengerMSM(&sum, terms) {
		t.Fatal("pippenger accepted an off-curve point")
	}
}

// TestFeSqrMatchesMul pins the dedicated squaring against feMul on
// random and boundary field elements.
func TestFeSqrMatchesMul(t *testing.T) {
	p := curve.Params().P
	vals := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(2)),
		new(big.Int).Rsh(p, 1),
	}
	for i := 0; i < 500; i++ {
		vals = append(vals, new(big.Int).Mod(RandomScalar(), p))
	}
	for _, v := range vals {
		f := feFromBig(v)
		var viaMul, viaSqr fe
		feMul(&viaMul, &f, &f)
		feSqr(&viaSqr, &f)
		if !feEqual(&viaMul, &viaSqr) {
			t.Fatalf("feSqr mismatch for %v", v)
		}
		want := new(big.Int).Mul(v, v)
		want.Mod(want, p)
		if got := viaSqr.toBig(); got.Cmp(want) != 0 {
			t.Fatalf("feSqr wrong value for %v", v)
		}
	}
}
