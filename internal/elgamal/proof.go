package elgamal

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"math/big"

	"repro/internal/parallel"
)

// This file implements the two zero-knowledge arguments PSC needs from
// its computation parties:
//
//  1. a Chaum–Pedersen proof that a decryption share was computed with
//     the same secret as the party's published public key, and
//  2. a cut-and-choose argument that an output ciphertext batch is a
//     permuted re-randomization of an input batch (a verifiable
//     shuffle with soundness error 2^-k for k rounds).
//
// Both are made non-interactive with the Fiat–Shamir transform over
// SHA-256 transcripts.

// hashToScalar derives a challenge scalar from a domain tag and a
// transcript of encoded group elements.
func hashToScalar(domain string, parts ...[]byte) *big.Int {
	h := sha256.New()
	h.Write([]byte(domain))
	for _, p := range parts {
		var lenb [8]byte
		n := len(p)
		for i := 0; i < 8; i++ {
			lenb[i] = byte(n >> (8 * i))
		}
		h.Write(lenb[:])
		h.Write(p)
	}
	return new(big.Int).Mod(new(big.Int).SetBytes(h.Sum(nil)), order)
}

// EqualityProof is a Chaum–Pedersen NIZK that two points share a
// discrete logarithm over two bases: log_{B1}(P1) = log_{B2}(P2). PSC
// uses it twice — to prove decryption shares correct (B1=G, P1=pk,
// B2=C1, P2=share) and to prove exponent blinding correct (B1=C1,
// P1=C1', B2=C2, P2=C2').
type EqualityProof struct {
	Commit1, Commit2 Point    // t·B1 and t·B2
	Response         *big.Int // t + c·x mod order
}

// ProveDLEQ proves knowledge of x with p1 = x·b1 and p2 = x·b2. The
// domain string separates proof contexts.
func ProveDLEQ(domain string, b1, p1, b2, p2 Point, x *big.Int) EqualityProof {
	t := RandomScalar()
	t1 := b1.Mul(t)
	t2 := b2.Mul(t)
	ch := hashToScalar(domain,
		b1.Bytes(), p1.Bytes(), b2.Bytes(), p2.Bytes(), t1.Bytes(), t2.Bytes())
	resp := new(big.Int).Mul(ch, x)
	resp.Add(resp, t).Mod(resp, order)
	return EqualityProof{Commit1: t1, Commit2: t2, Response: resp}
}

// VerifyDLEQ checks a DLEQ proof.
func VerifyDLEQ(domain string, b1, p1, b2, p2 Point, pr EqualityProof) bool {
	for _, pt := range []Point{b1, p1, b2, p2, pr.Commit1, pr.Commit2} {
		if !pt.IsValid() {
			return false
		}
	}
	if pr.Response == nil {
		return false
	}
	ch := hashToScalar(domain,
		b1.Bytes(), p1.Bytes(), b2.Bytes(), p2.Bytes(),
		pr.Commit1.Bytes(), pr.Commit2.Bytes())
	if !b1.Mul(pr.Response).Equal(pr.Commit1.Add(p1.Mul(ch))) {
		return false
	}
	return b2.Mul(pr.Response).Equal(pr.Commit2.Add(p2.Mul(ch)))
}

const shareDomain = "psc/chaum-pedersen/share"

// ProveShare proves that share = x·c.C1 for the key's secret x.
func (k *PrivateKey) ProveShare(c Ciphertext, share DecryptionShare) EqualityProof {
	return ProveDLEQ(shareDomain, Generator(), k.PK, c.C1, share.Share, k.X)
}

// VerifyShare checks a share proof against the prover's public key.
func VerifyShare(pk Point, c Ciphertext, share DecryptionShare, pr EqualityProof) bool {
	if !c.IsValid() {
		return false
	}
	return VerifyDLEQ(shareDomain, Generator(), pk, c.C1, share.Share, pr)
}

const blindDomain = "psc/chaum-pedersen/blind"

// ProveBlind proves that out = s·in componentwise, i.e. that out is a
// correct exponent blinding of in.
func ProveBlind(in, out Ciphertext, s *big.Int) EqualityProof {
	return ProveDLEQ(blindDomain, in.C1, out.C1, in.C2, out.C2, s)
}

// VerifyBlind checks an exponent-blinding proof.
func VerifyBlind(in, out Ciphertext, pr EqualityProof) bool {
	return VerifyDLEQ(blindDomain, in.C1, out.C1, in.C2, out.C2, pr)
}

// BitProof is a Cramer–Damgård–Schoenmakers OR-composition proving a
// ciphertext encrypts the identity or the generator — i.e. a valid PSC
// noise bit — without revealing which. Computation parties attach one
// to every noise ciphertext they inject so a malicious party cannot
// bias the count with out-of-range noise.
type BitProof struct {
	Commit0G, Commit0P Point // branch 0 (encrypts identity)
	Commit1G, Commit1P Point // branch 1 (encrypts G)
	Chal0, Chal1       *big.Int
	Resp0, Resp1       *big.Int
}

const bitDomain = "psc/bit-or"

// ProveBit builds the OR-proof for a ciphertext created as
// EncryptWith(pk, bit, r).
func ProveBit(pk Point, c Ciphertext, bit bool, r *big.Int) BitProof {
	// Branch statements: D0 = C2 (plaintext identity), D1 = C2 − G.
	d0 := c.C2
	d1 := c.C2.Sub(Generator())

	var pr BitProof
	t := RandomScalar()
	if !bit {
		// Real branch 0; simulate branch 1.
		pr.Chal1 = RandomScalar()
		pr.Resp1 = RandomScalar()
		pr.Commit1G = BaseMul(pr.Resp1).Sub(c.C1.Mul(pr.Chal1))
		pr.Commit1P = pk.Mul(pr.Resp1).Sub(d1.Mul(pr.Chal1))
		pr.Commit0G = BaseMul(t)
		pr.Commit0P = pk.Mul(t)
	} else {
		// Real branch 1; simulate branch 0.
		pr.Chal0 = RandomScalar()
		pr.Resp0 = RandomScalar()
		pr.Commit0G = BaseMul(pr.Resp0).Sub(c.C1.Mul(pr.Chal0))
		pr.Commit0P = pk.Mul(pr.Resp0).Sub(d0.Mul(pr.Chal0))
		pr.Commit1G = BaseMul(t)
		pr.Commit1P = pk.Mul(t)
	}
	total := bitChallenge(pk, c, pr)
	if !bit {
		pr.Chal0 = new(big.Int).Sub(total, pr.Chal1)
		pr.Chal0.Mod(pr.Chal0, order)
		pr.Resp0 = new(big.Int).Mul(pr.Chal0, r)
		pr.Resp0.Add(pr.Resp0, t).Mod(pr.Resp0, order)
	} else {
		pr.Chal1 = new(big.Int).Sub(total, pr.Chal0)
		pr.Chal1.Mod(pr.Chal1, order)
		pr.Resp1 = new(big.Int).Mul(pr.Chal1, r)
		pr.Resp1.Add(pr.Resp1, t).Mod(pr.Resp1, order)
	}
	return pr
}

// VerifyBit checks that c encrypts 0 or 1 under pk.
func VerifyBit(pk Point, c Ciphertext, pr BitProof) bool {
	if pr.Chal0 == nil || pr.Chal1 == nil || pr.Resp0 == nil || pr.Resp1 == nil {
		return false
	}
	for _, pt := range []Point{pr.Commit0G, pr.Commit0P, pr.Commit1G, pr.Commit1P} {
		if !pt.IsValid() {
			return false
		}
	}
	if !pk.IsValid() || !c.IsValid() {
		return false
	}
	total := bitChallenge(pk, c, pr)
	sum := new(big.Int).Add(pr.Chal0, pr.Chal1)
	sum.Mod(sum, order)
	if sum.Cmp(total) != 0 {
		return false
	}
	d0 := c.C2
	d1 := c.C2.Sub(Generator())
	// Branch 0: z0·G == A0 + c0·C1 and z0·PK == B0 + c0·D0.
	if !BaseMul(pr.Resp0).Equal(pr.Commit0G.Add(c.C1.Mul(pr.Chal0))) {
		return false
	}
	if !pk.Mul(pr.Resp0).Equal(pr.Commit0P.Add(d0.Mul(pr.Chal0))) {
		return false
	}
	// Branch 1: z1·G == A1 + c1·C1 and z1·PK == B1 + c1·D1.
	if !BaseMul(pr.Resp1).Equal(pr.Commit1G.Add(c.C1.Mul(pr.Chal1))) {
		return false
	}
	return pk.Mul(pr.Resp1).Equal(pr.Commit1P.Add(d1.Mul(pr.Chal1)))
}

// bitChallenge hashes the full OR-proof transcript.
func bitChallenge(pk Point, c Ciphertext, pr BitProof) *big.Int {
	return hashToScalar(bitDomain,
		pk.Bytes(), c.C1.Bytes(), c.C2.Bytes(),
		pr.Commit0G.Bytes(), pr.Commit0P.Bytes(),
		pr.Commit1G.Bytes(), pr.Commit1P.Bytes())
}

// Shuffle permutes and re-randomizes a batch of ciphertexts, returning
// the output batch along with the witness (permutation and randomizers)
// needed to produce a proof. perm maps output index -> input index.
type ShuffleWitness struct {
	Perm []int
	Rand []*big.Int // randomizer applied to the input feeding output i
}

// Shuffle produces out[i] = Rerandomize(in[perm[i]]). The permutation is
// drawn from crypto/rand; the re-randomizations run through the batch
// fixed-base path (shared tables, one normalization).
func Shuffle(pk Point, in []Ciphertext) ([]Ciphertext, ShuffleWitness) {
	perm := randomPerm(len(in))
	rands := RandomScalars(len(in))
	return BatchRerandomizeWith(pk, permute(in, perm), rands), ShuffleWitness{Perm: perm, Rand: rands}
}

// permute gathers in[perm[i]] into a fresh slice.
func permute(in []Ciphertext, perm []int) []Ciphertext {
	out := make([]Ciphertext, len(perm))
	for i, j := range perm {
		out[i] = in[j]
	}
	return out
}

// randomPerm draws a uniform permutation of [0,n) by Fisher–Yates over
// buffered cryptographic randomness.
func randomPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r := randReaders.Get().(*bufio.Reader)
	defer randReaders.Put(r)
	var buf [8]byte
	for i := n - 1; i > 0; i-- {
		// Rejection-sample a uniform index in [0, i].
		bound := uint64(i) + 1
		limit := (^uint64(0) / bound) * bound
		for {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				panic("elgamal: crypto/rand failed: " + err.Error())
			}
			v := binary.LittleEndian.Uint64(buf[:])
			if v < limit {
				j := int(v % bound)
				p[i], p[j] = p[j], p[i]
				break
			}
		}
	}
	return p
}

// ShuffleProof is a k-round cut-and-choose argument over one whole
// vector. For each round the prover commits to a "shadow" shuffle of
// the input; the Fiat–Shamir challenge bit selects whether the prover
// opens the input→shadow mapping or the shadow→output mapping. A
// cheating prover survives each round with probability 1/2. The PSC
// protocol itself now runs the streaming block-wise variant
// (blockshuffle.go), which applies this same argument per block under
// a stage transcript; the whole-vector form remains as the reference
// primitive.
type ShuffleProof struct {
	Rounds []ShuffleRound
}

// ShuffleRound is one round of the argument.
type ShuffleRound struct {
	Shadow []Ciphertext
	// Open reveals either input→shadow (challenge 0) or shadow→output
	// (challenge 1); the verifier recomputes the challenge bit.
	OpenPerm []int
	OpenRand []*big.Int
}

// ErrBadShuffle is returned when a shuffle proof fails to verify.
var ErrBadShuffle = errors.New("elgamal: shuffle proof verification failed")

// ProveShuffle builds a proof that out is a shuffle of in, given the
// shuffle witness. rounds controls soundness (error 2^-rounds).
func ProveShuffle(pk Point, in, out []Ciphertext, w ShuffleWitness, rounds int) ShuffleProof {
	n := len(in)
	proof := ShuffleProof{Rounds: make([]ShuffleRound, rounds)}
	for r := 0; r < rounds; r++ {
		shadowPerm := randomPerm(n)
		shadowRand := RandomScalars(n)
		shadow := BatchRerandomizeWith(pk, permute(in, shadowPerm), shadowRand)
		bit := challengeBit(pk, in, out, shadow, r)
		round := ShuffleRound{Shadow: shadow}
		if bit == 0 {
			// Open input -> shadow directly.
			round.OpenPerm = shadowPerm
			round.OpenRand = shadowRand
		} else {
			// Open shadow -> output. Output i came from input w.Perm[i]
			// with randomizer w.Rand[i]; input w.Perm[i] feeds shadow
			// index invShadow[w.Perm[i]] with randomizer
			// shadowRand[that index]. So shadow->output permutation maps
			// output i to shadow index invShadow[w.Perm[i]], and the
			// residual randomizer is w.Rand[i] - shadowRand[idx].
			invShadow := invertPerm(shadowPerm)
			openPerm := make([]int, n)
			openRand := make([]*big.Int, n)
			for i := 0; i < n; i++ {
				idx := invShadow[w.Perm[i]]
				openPerm[i] = idx
				d := new(big.Int).Sub(w.Rand[i], shadowRand[idx])
				openRand[i] = d.Mod(d, order)
			}
			round.OpenPerm = openPerm
			round.OpenRand = openRand
		}
		proof.Rounds[r] = round
	}
	return proof
}

// VerifyShuffle checks the proof that out is a shuffle of in.
func VerifyShuffle(pk Point, in, out []Ciphertext, proof ShuffleProof) error {
	n := len(in)
	if len(out) != n {
		return ErrBadShuffle
	}
	if len(proof.Rounds) == 0 {
		return ErrBadShuffle
	}
	for r, round := range proof.Rounds {
		if len(round.Shadow) != n || len(round.OpenPerm) != n || len(round.OpenRand) != n {
			return ErrBadShuffle
		}
		if !isPerm(round.OpenPerm) {
			return ErrBadShuffle
		}
		bit := challengeBit(pk, in, out, round.Shadow, r)
		var src, dst []Ciphertext
		if bit == 0 {
			src, dst = in, round.Shadow
		} else {
			src, dst = round.Shadow, out
		}
		for _, rr := range round.OpenRand {
			if rr == nil || rr.Sign() < 0 || rr.Cmp(order) >= 0 {
				return ErrBadShuffle
			}
		}
		// Re-derive the opened side in one batch (shared tables, one
		// normalization) and compare.
		want := BatchRerandomizeWith(pk, permute(src, round.OpenPerm), round.OpenRand)
		for i := 0; i < n; i++ {
			if !want[i].Equal(dst[i]) {
				return ErrBadShuffle
			}
		}
	}
	return nil
}

// challengeBit derives the round challenge from the whole transcript.
func challengeBit(pk Point, in, out, shadow []Ciphertext, round int) int {
	h := sha256.New()
	h.Write([]byte("psc/shuffle"))
	h.Write([]byte{byte(round), byte(round >> 8)})
	h.Write(pk.Bytes())
	for _, c := range in {
		h.Write(c.Bytes())
	}
	for _, c := range out {
		h.Write(c.Bytes())
	}
	for _, c := range shadow {
		h.Write(c.Bytes())
	}
	return int(h.Sum(nil)[0] & 1)
}

func invertPerm(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

func isPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// BatchProveShares produces the share-correctness proofs for a whole
// batch across the worker pool.
func (k *PrivateKey) BatchProveShares(cs []Ciphertext, shares []DecryptionShare) []EqualityProof {
	out := make([]EqualityProof, len(cs))
	parallel.For(len(cs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = k.ProveShare(cs[i], shares[i])
		}
	})
	return out
}

// BatchProveBlinds produces the exponent-blinding proofs for a whole
// batch across the worker pool.
func BatchProveBlinds(ins, outs []Ciphertext, ss []*big.Int) []EqualityProof {
	if len(ins) != len(outs) || len(ins) != len(ss) {
		panic("elgamal: BatchProveBlinds length mismatch")
	}
	out := make([]EqualityProof, len(ins))
	parallel.For(len(ins), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ProveBlind(ins[i], outs[i], ss[i])
		}
	})
	return out
}

// BatchProveBits produces the noise-bit OR-proofs for a whole batch
// across the worker pool. cs and rs must come from BatchEncryptBits
// (or EncryptWith) for the same bits.
func BatchProveBits(pk Point, cs []Ciphertext, bits []bool, rs []*big.Int) []BitProof {
	if len(cs) != len(bits) || len(cs) != len(rs) {
		panic("elgamal: BatchProveBits length mismatch")
	}
	out := make([]BitProof, len(cs))
	parallel.For(len(cs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ProveBit(pk, cs[i], bits[i], rs[i])
		}
	})
	return out
}
