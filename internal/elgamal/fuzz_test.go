package elgamal

import (
	"math/big"
	"testing"
)

// FuzzParsePoint drives the point decoder with arbitrary bytes: it must
// never panic and never accept an off-curve point.
func FuzzParsePoint(f *testing.F) {
	f.Add(Identity().Bytes())
	f.Add(Generator().Bytes())
	f.Add(BaseMul(big.NewInt(99)).Bytes())
	f.Add([]byte{})
	f.Add([]byte{4})
	f.Add(make([]byte, 65))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := ParsePoint(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if !p.IsValid() {
			t.Fatal("decoder returned an invalid point")
		}
		// Accepted points must round-trip.
		q, _, err := ParsePoint(p.Bytes())
		if err != nil || !q.Equal(p) {
			t.Fatal("round trip failed")
		}
	})
}

// FuzzParseCiphertext exercises the two-point decoder.
func FuzzParseCiphertext(f *testing.F) {
	k := GenerateKey()
	f.Add(EncryptBit(k.PK, true).Bytes())
	f.Add(EncryptBit(k.PK, false).Bytes())
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, n, err := ParseCiphertext(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if !c.IsValid() {
			t.Fatal("decoder returned an invalid ciphertext")
		}
	})
}
