package elgamal

import (
	"math/big"
	"testing"
)

// FuzzParsePoint drives the point decoder with arbitrary bytes: it must
// never panic and never accept an off-curve point.
func FuzzParsePoint(f *testing.F) {
	f.Add(Identity().Bytes())
	f.Add(Generator().Bytes())
	f.Add(BaseMul(big.NewInt(99)).Bytes())
	f.Add([]byte{})
	f.Add([]byte{4})
	f.Add(make([]byte, 65))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := ParsePoint(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if !p.IsValid() {
			t.Fatal("decoder returned an invalid point")
		}
		// Accepted points must round-trip.
		q, _, err := ParsePoint(p.Bytes())
		if err != nil || !q.Equal(p) {
			t.Fatal("round trip failed")
		}
	})
}

// FuzzParseCiphertext exercises the two-point decoder.
func FuzzParseCiphertext(f *testing.F) {
	k := GenerateKey()
	f.Add(EncryptBit(k.PK, true).Bytes())
	f.Add(EncryptBit(k.PK, false).Bytes())
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, n, err := ParseCiphertext(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if !c.IsValid() {
			t.Fatal("decoder returned an invalid ciphertext")
		}
	})
}

// FuzzScalarMulEquivalence drives the table/Jacobian multiplication
// paths against the stdlib affine results with arbitrary 32-byte
// scalars: every path must agree on every input, including values at
// or above the group order.
func FuzzScalarMulEquivalence(f *testing.F) {
	f.Add(make([]byte, 32))
	f.Add(big.NewInt(1).FillBytes(make([]byte, 32)))
	f.Add(order.Bytes())
	f.Add(new(big.Int).Sub(order, big.NewInt(1)).FillBytes(make([]byte, 32)))
	f.Add(new(big.Int).Add(order, big.NewInt(1)).FillBytes(make([]byte, 32)))
	f.Fuzz(func(t *testing.T, kb []byte) {
		if len(kb) > 32 {
			kb = kb[:32]
		}
		k := new(big.Int).SetBytes(kb)
		if got, want := BaseMul(k), stdlibBaseMul(k); !got.Equal(want) {
			t.Fatalf("BaseMul(%v) mismatch", k)
		}
		p := stdlibBaseMul(big.NewInt(777))
		if got, want := p.Mul(k), stdlibMul(p, k); !got.Equal(want) {
			t.Fatalf("Mul(%v) mismatch", k)
		}
		if got := BatchBaseMul([]*big.Int{k, k}); !got[0].Equal(got[1]) || !got[0].Equal(stdlibBaseMul(k)) {
			t.Fatalf("BatchBaseMul(%v) mismatch", k)
		}
	})
}

// FuzzAddEquivalence checks the Jacobian addition against stdlib on
// arbitrary pairs of multiples of G.
func FuzzAddEquivalence(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(1))
	f.Add(uint64(5), uint64(7))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		p := BaseMul(new(big.Int).SetUint64(a))
		q := BaseMul(new(big.Int).SetUint64(b))
		if got, want := p.Add(q), stdlibAdd(p, q); !got.Equal(want) {
			t.Fatalf("Add mismatch for %d, %d", a, b)
		}
		if got, want := p.Sub(q), stdlibAdd(p, q.Neg()); !got.Equal(want) {
			t.Fatalf("Sub mismatch for %d, %d", a, b)
		}
	})
}
