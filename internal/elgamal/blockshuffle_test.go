package elgamal

import (
	"testing"
)

func encryptBlock(pk Point, n int) []Ciphertext {
	out := make([]Ciphertext, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = Encrypt(pk, Generator())
		} else {
			out[i] = Encrypt(pk, Identity())
		}
	}
	return out
}

func TestBlockShuffleRoundTrip(t *testing.T) {
	key := GenerateKey()
	for _, n := range []int{1, 2, 7, 32} {
		in := encryptBlock(key.PK, n)
		prover := NewShuffleTranscript(key.PK, n, n, 1, 4)
		verifier := NewShuffleTranscript(key.PK, n, n, 1, 4)
		out, w := Shuffle(key.PK, in)
		proof, err := ProveShuffleBlock(prover, 1, 0, key.PK, in, out, w, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyShuffleBlock(verifier, 1, 0, key.PK, in, out, proof); err != nil {
			t.Fatalf("n=%d: honest proof rejected: %v", n, err)
		}
	}
}

func TestBlockShuffleTranscriptBindsPosition(t *testing.T) {
	key := GenerateKey()
	const rounds = 16
	in := encryptBlock(key.PK, 8)
	out, w := Shuffle(key.PK, in)
	prover := NewShuffleTranscript(key.PK, 8, 8, 1, rounds)
	proof, err := ProveShuffleBlock(prover, 1, 0, key.PK, in, out, w, rounds)
	if err != nil {
		t.Fatal(err)
	}
	// A verifier deriving the challenge for a different block position,
	// or from a transcript over different stage parameters, must
	// reject: the challenge bits no longer match the openings (they
	// coincide with probability 2^-16 here).
	verifier := NewShuffleTranscript(key.PK, 8, 8, 1, rounds)
	if VerifyShuffleBlock(verifier, 1, 1, key.PK, in, out, proof) == nil {
		t.Fatal("proof verified under a different block position")
	}
	verifier = NewShuffleTranscript(key.PK, 8, 8, 2, rounds)
	if VerifyShuffleBlock(verifier, 1, 0, key.PK, in, out, proof) == nil {
		t.Fatal("proof verified under different stage parameters")
	}
}

func TestBlockShuffleCommitmentBinding(t *testing.T) {
	key := GenerateKey()
	in := encryptBlock(key.PK, 8)
	out, w := Shuffle(key.PK, in)
	prover := NewShuffleTranscript(key.PK, 8, 8, 1, 3)
	proof, err := ProveShuffleBlock(prover, 1, 0, key.PK, in, out, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Swapping a shadow after commitment must be caught outright.
	bad := proof
	bad.Rounds = append([]ShuffleRound(nil), proof.Rounds...)
	tampered := append([]Ciphertext(nil), proof.Rounds[0].Shadow...)
	tampered[0] = Encrypt(key.PK, Generator())
	bad.Rounds[0] = ShuffleRound{Shadow: tampered, OpenPerm: proof.Rounds[0].OpenPerm, OpenRand: proof.Rounds[0].OpenRand}
	verifier := NewShuffleTranscript(key.PK, 8, 8, 1, 3)
	if VerifyShuffleBlock(verifier, 1, 0, key.PK, in, out, bad) == nil {
		t.Fatal("shadow not matching its commitment verified")
	}
}

// TestBlockShuffleCheatDetectionProbability replaces one output
// ciphertext with a fresh valid encryption and checks the cut-and-choose
// argument behaves exactly as the theory predicts: the tampered block
// is rejected if and only if at least one challenge bit opens the
// shadow→output side, so with k rounds the cheat survives with
// probability 2^-k. The test verifies the iff per trial (by replaying
// the verifier's challenge derivation on a transcript copy) and that
// the measured detection rate over many trials sits inside a generous
// binomial interval around 1 - 2^-k.
func TestBlockShuffleCheatDetectionProbability(t *testing.T) {
	key := GenerateKey()
	const n, rounds, trials = 6, 2, 120
	detected := 0
	for trial := 0; trial < trials; trial++ {
		in := encryptBlock(key.PK, n)
		out, w := Shuffle(key.PK, in)
		// The cheat, committed before the challenge exists (the
		// strongest position a prover can be in): one substituted
		// output element, with shadows and openings still built from
		// the honest witness. Bit-0 rounds (input→shadow) then verify;
		// every bit-1 round (shadow→output) hits the substitution.
		out[trial%n] = Encrypt(key.PK, Generator())
		prover := NewShuffleTranscript(key.PK, n, n, 1, rounds)
		proof, err := ProveShuffleBlock(prover, 1, 0, key.PK, in, out, w, rounds)
		if err != nil {
			t.Fatal(err)
		}

		verifier := NewShuffleTranscript(key.PK, n, n, 1, rounds)
		oracle := *verifier // replay the challenge derivation independently
		bits, err := oracle.BlockChallenges(1, 0, HashBlock(in), HashBlock(out), proof.Commits, rounds)
		if err != nil {
			t.Fatal(err)
		}
		anyOne := false
		for _, b := range bits {
			if b == 1 {
				anyOne = true
			}
		}
		verr := VerifyShuffleBlock(verifier, 1, 0, key.PK, in, out, proof)
		if (verr != nil) != anyOne {
			t.Fatalf("trial %d: detection %v but challenge bits %v", trial, verr != nil, bits)
		}
		if verr != nil {
			detected++
		}
	}
	// Expected detection rate 1 - 2^-2 = 0.75; over 120 trials the
	// binomial standard deviation is ~4.7 detections, so [0.55, 0.95]
	// will not flake in any plausible universe.
	rate := float64(detected) / trials
	if rate < 0.55 || rate > 0.95 {
		t.Fatalf("detection rate %.3f outside [0.55, 0.95] (expected %.2f)", rate, 0.75)
	}
}

func TestBlockHasherMatchesHashBlock(t *testing.T) {
	key := GenerateKey()
	cts := encryptBlock(key.PK, 9)
	bh := NewBlockHasher(len(cts))
	for _, c := range cts {
		if bh.Done() {
			t.Fatal("hasher done early")
		}
		bh.Add(c)
	}
	if !bh.Done() {
		t.Fatal("hasher not done after all elements")
	}
	if bh.Sum() != HashBlock(cts) {
		t.Fatal("incremental hash diverges from HashBlock")
	}
}
