package elgamal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math/big"
)

// Block-wise verifiable shuffle support. The streaming PSC shuffle
// arranges the vector as a grid and permutes each fixed-size block
// independently, so neither prover nor verifier ever holds more than a
// block of ciphertexts. Each block gets its own cut-and-choose argument
// whose shadow vectors are hash-committed before the challenge exists:
// challenges derive from a running Fiat–Shamir transcript over every
// block commitment seen so far, so a prover cannot grind a block's
// challenge without changing a commitment that is itself hashed.
//
// Soundness: a cheating prover survives one block's argument with
// probability 2^-rounds; by a union bound over the blocks·passes block
// arguments of a stage, the stage soundness error is at most
// blocks·passes·2^-rounds. Size rounds to the table, not just to
// 2^-rounds: a 2¹⁶-element stage at the default geometry runs ~2⁷
// block arguments, so the deployment default of 8 rounds bounds the
// stage error only at ~2⁻¹ — large tables want 16+ rounds (2⁷·2⁻¹⁶ ≈
// 2⁻⁹), which stays O(block·rounds) resident because the cost is per
// block.

// HashBlock commits to a ciphertext block: SHA-256 over the element
// count and each ciphertext's encoding. It is the commitment scheme of
// the block shuffle argument and the continuity check between passes.
func HashBlock(cts []Ciphertext) [32]byte {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(cts)))
	h.Write(n[:])
	var buf [2 * pointLen]byte
	for _, c := range cts {
		h.Write(c.AppendTo(buf[:0]))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// BlockHasher computes HashBlock incrementally, for verifiers that see
// a block's elements one at a time (the pass-continuity check receives
// the previous pass's output transposed).
type BlockHasher struct {
	h    hash.Hash
	seen int
	n    int
}

// NewBlockHasher starts an incremental commitment over a block that
// will receive exactly n elements.
func NewBlockHasher(n int) *BlockHasher {
	h := sha256.New()
	var nb [8]byte
	binary.LittleEndian.PutUint64(nb[:], uint64(n))
	h.Write(nb[:])
	return &BlockHasher{h: h, n: n}
}

// Add absorbs the next element. Elements must arrive in block order.
func (bh *BlockHasher) Add(c Ciphertext) {
	var buf [2 * pointLen]byte
	bh.h.Write(c.AppendTo(buf[:0]))
	bh.seen++
}

// Done reports whether every element has been absorbed.
func (bh *BlockHasher) Done() bool { return bh.seen == bh.n }

// Sum finalizes the commitment; valid only once Done.
func (bh *BlockHasher) Sum() [32]byte {
	var out [32]byte
	bh.h.Sum(out[:0])
	return out
}

// ShuffleTranscript is the running Fiat–Shamir state of one party's
// block-shuffle stage. Prover and verifier advance identical
// transcripts block by block, in block order; each block's challenge
// bits bind the block's input, output, shadow commitments, and every
// block that came before.
type ShuffleTranscript struct {
	state [32]byte
}

// shuffleTranscriptDomain separates block-shuffle challenges from every
// other Fiat–Shamir use of SHA-256 in this package.
const shuffleTranscriptDomain = "psc/block-shuffle/v1"

// NewShuffleTranscript initializes a stage transcript over the public
// stage parameters: the joint key, total vector length, block size,
// pass count, and proof rounds.
func NewShuffleTranscript(pk Point, n, block, passes, rounds int) *ShuffleTranscript {
	h := sha256.New()
	h.Write([]byte(shuffleTranscriptDomain))
	h.Write(pk.Bytes())
	var buf [8]byte
	for _, v := range []int{n, block, passes, rounds} {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	t := &ShuffleTranscript{}
	h.Sum(t.state[:0])
	return t
}

// maxTranscriptRounds bounds the challenge bits one block draw can
// yield (one SHA-256 output).
const maxTranscriptRounds = 256

// BlockChallenges absorbs one block record — pass and block indices,
// input and output commitments, and the shadow commitments — into the
// transcript and returns one challenge bit per proof round. It mutates
// the transcript: callers must invoke it exactly once per block, in
// block order.
func (t *ShuffleTranscript) BlockChallenges(pass, block int, inHash, outHash [32]byte, commits [][32]byte, rounds int) ([]byte, error) {
	if rounds <= 0 || rounds > maxTranscriptRounds {
		return nil, fmt.Errorf("elgamal: %d proof rounds outside [1,%d]", rounds, maxTranscriptRounds)
	}
	h := sha256.New()
	h.Write(t.state[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(pass))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(block))
	h.Write(buf[:])
	h.Write(inHash[:])
	h.Write(outHash[:])
	for _, c := range commits {
		h.Write(c[:])
	}
	h.Sum(t.state[:0])
	bits := make([]byte, rounds)
	for i := range bits {
		bits[i] = (t.state[i/8] >> (i % 8)) & 1
	}
	return bits, nil
}

// BlockShuffleProof is the cut-and-choose argument for one block: the
// shadow commitments (hashed before the challenge exists) and one
// opened round per challenge bit.
type BlockShuffleProof struct {
	Commits [][32]byte
	Rounds  []ShuffleRound
}

// ProveShuffleBlock builds the block's argument: out must be a shuffle
// of in under the witness w (from Shuffle). The transcript advances by
// one block record; the caller must prove blocks in block order.
func ProveShuffleBlock(t *ShuffleTranscript, pass, block int, pk Point, in, out []Ciphertext, w ShuffleWitness, rounds int) (BlockShuffleProof, error) {
	n := len(in)
	shadows := make([][]Ciphertext, rounds)
	perms := make([][]int, rounds)
	rands := make([][]*big.Int, rounds)
	commits := make([][32]byte, rounds)
	for r := 0; r < rounds; r++ {
		perms[r] = randomPerm(n)
		rands[r] = RandomScalars(n)
		shadows[r] = BatchRerandomizeWith(pk, permute(in, perms[r]), rands[r])
		commits[r] = HashBlock(shadows[r])
	}
	bits, err := t.BlockChallenges(pass, block, HashBlock(in), HashBlock(out), commits, rounds)
	if err != nil {
		return BlockShuffleProof{}, err
	}
	proof := BlockShuffleProof{Commits: commits, Rounds: make([]ShuffleRound, rounds)}
	for r := 0; r < rounds; r++ {
		round := ShuffleRound{Shadow: shadows[r]}
		if bits[r] == 0 {
			// Open input -> shadow directly.
			round.OpenPerm = perms[r]
			round.OpenRand = rands[r]
		} else {
			// Open shadow -> output: output i came from input w.Perm[i]
			// with randomizer w.Rand[i], which feeds shadow index
			// invShadow[w.Perm[i]]; the residual randomizer is the
			// difference.
			invShadow := invertPerm(perms[r])
			openPerm := make([]int, n)
			openRand := make([]*big.Int, n)
			for i := 0; i < n; i++ {
				idx := invShadow[w.Perm[i]]
				openPerm[i] = idx
				d := new(big.Int).Sub(w.Rand[i], rands[r][idx])
				openRand[i] = d.Mod(d, order)
			}
			round.OpenPerm = openPerm
			round.OpenRand = openRand
		}
		proof.Rounds[r] = round
	}
	return proof, nil
}

// ErrBadBlockShuffle is returned when a block's shuffle argument fails
// to verify.
var ErrBadBlockShuffle = errors.New("elgamal: block shuffle proof verification failed")

// VerifyShuffleBlock checks one block's argument against the verifier's
// own copy of the input block and the prover's claimed output block.
// The transcript advances by one block record; the caller must verify
// blocks in block order.
func VerifyShuffleBlock(t *ShuffleTranscript, pass, block int, pk Point, in, out []Ciphertext, proof BlockShuffleProof) error {
	n := len(in)
	if len(out) != n || len(proof.Rounds) == 0 || len(proof.Commits) != len(proof.Rounds) {
		return ErrBadBlockShuffle
	}
	// Commitment binding first: every shadow must match the commitment
	// that fed the challenge derivation.
	for r, round := range proof.Rounds {
		if len(round.Shadow) != n || len(round.OpenPerm) != n || len(round.OpenRand) != n {
			return ErrBadBlockShuffle
		}
		if HashBlock(round.Shadow) != proof.Commits[r] {
			return fmt.Errorf("%w: shadow %d does not match its commitment", ErrBadBlockShuffle, r)
		}
	}
	bits, err := t.BlockChallenges(pass, block, HashBlock(in), HashBlock(out), proof.Commits, len(proof.Rounds))
	if err != nil {
		return err
	}
	for r, round := range proof.Rounds {
		if !isPerm(round.OpenPerm) {
			return ErrBadBlockShuffle
		}
		for _, rr := range round.OpenRand {
			if rr == nil || rr.Sign() < 0 || rr.Cmp(order) >= 0 {
				return ErrBadBlockShuffle
			}
		}
		var src, dst []Ciphertext
		if bits[r] == 0 {
			src, dst = in, round.Shadow
		} else {
			src, dst = round.Shadow, out
		}
		// Re-derive the opened side in one batch (shared tables, one
		// normalization) and compare.
		want := BatchRerandomizeWith(pk, permute(src, round.OpenPerm), round.OpenRand)
		for i := 0; i < n; i++ {
			if !want[i].Equal(dst[i]) {
				return ErrBadBlockShuffle
			}
		}
	}
	return nil
}
