package elgamal

// Vectorized group and ciphertext operations. These are the entry
// points the PSC hot loops call: they keep intermediate points in
// Jacobian coordinates, normalize whole vectors with one shared field
// inversion, reuse precomputed fixed-base tables, and fan out across
// the worker pool in internal/parallel.

import (
	"math/big"

	"repro/internal/parallel"
)

// parallelMinChunk is the smallest slice of vector work handed to a
// worker; below this the coordination overhead outweighs the crypto.
const parallelMinChunk = 16

// reduceScalars returns the scalars reduced mod the group order,
// reusing the input slice entries that are already reduced.
func reduceScalars(ks []*big.Int) []*big.Int {
	out := make([]*big.Int, len(ks))
	for i, k := range ks {
		if k.Sign() < 0 || k.Cmp(order) >= 0 {
			out[i] = new(big.Int).Mod(k, order)
		} else {
			out[i] = k
		}
	}
	return out
}

// BatchBaseMul computes kᵢ·G for every scalar, amortizing affine
// normalization across the batch.
func BatchBaseMul(ks []*big.Int) []Point {
	ks = reduceScalars(ks)
	t := baseTable()
	jac := make([]jacPoint, len(ks))
	parallel.For(len(ks), parallelMinChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.mul(&jac[i], ks[i])
		}
	})
	return pointsFromJacobian(jac)
}

// batchMulTableThreshold is the batch size from which building a
// windowed table for an uncached base is cheaper than per-element
// stdlib multiplications (a build costs roughly 60 of them).
const batchMulTableThreshold = 64

// BatchMul computes kᵢ·base for every scalar. All elements share one
// base, the common PSC shape (the round's joint key), so for large
// batches the base gets a windowed table — either cached from
// Precompute or built on the spot — and every element becomes a few
// dozen mixed additions instead of a full scalar multiplication.
func BatchMul(base Point, ks []*big.Int) []Point {
	if base.IsIdentity() {
		out := make([]Point, len(ks))
		for i := range out {
			out[i] = Identity()
		}
		return out
	}
	if base.isGenerator() {
		return BatchBaseMul(ks)
	}
	ks = reduceScalars(ks)
	t := sharedBaseTable(base, len(ks))
	if t == nil {
		out := make([]Point, len(ks))
		parallel.For(len(ks), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = base.Mul(ks[i])
			}
		})
		return out
	}
	jac := make([]jacPoint, len(ks))
	parallel.For(len(ks), parallelMinChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ks[i].Sign() != 0 {
				t.mul(&jac[i], ks[i])
			}
		}
	})
	return pointsFromJacobian(jac)
}

// BatchAdd computes pᵢ + qᵢ elementwise with one shared normalization
// instead of one field inversion per addition.
func BatchAdd(ps, qs []Point) []Point {
	if len(ps) != len(qs) {
		panic("elgamal: BatchAdd length mismatch")
	}
	jac := make([]jacPoint, len(ps))
	parallel.For(len(ps), parallelMinChunk*4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var aq affinePoint
			jac[i].fromPoint(ps[i])
			aq.fromPoint(qs[i])
			jac[i].addMixed(&jac[i], &aq)
		}
	})
	return pointsFromJacobian(jac)
}

// mulWithTable multiplies through a table when available, falling back
// to the stdlib path (loading the affine result back into dst).
func mulWithTable(dst *jacPoint, t *fixedTable, base Point, k *big.Int) {
	if k.Sign() == 0 {
		dst.setInfinity()
		return
	}
	if t != nil {
		t.mul(dst, k)
		return
	}
	dst.fromPoint(base.Mul(k))
}

// sharedBaseTable resolves the table to use for a batch against one
// shared base: nil means "no table is worth it, use stdlib".
func sharedBaseTable(base Point, n int) *fixedTable {
	if base.isGenerator() {
		return baseTable()
	}
	t := cachedTable(base)
	if t == nil && n >= batchMulTableThreshold {
		Precompute(base)
		t = cachedTable(base)
		if t == nil {
			// Cache full; build a throwaway table for this call.
			t = buildTable(base, sharedTableWidth)
		}
	}
	return t
}

// BatchEncrypt encrypts every message under pk with fresh randomizers,
// returning the ciphertexts and the randomizers (shuffle provers need
// them; discard otherwise).
func BatchEncrypt(pk Point, msgs []Point) ([]Ciphertext, []*big.Int) {
	rs := RandomScalars(len(msgs))
	gt := baseTable()
	pt := sharedBaseTable(pk, len(msgs))
	jac := make([]jacPoint, 2*len(msgs))
	parallel.For(len(msgs), parallelMinChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			gt.mul(&jac[2*i], rs[i])
			mulWithTable(&jac[2*i+1], pt, pk, rs[i])
			var am affinePoint
			am.fromPoint(msgs[i])
			jac[2*i+1].addMixed(&jac[2*i+1], &am)
		}
	})
	pts := pointsFromJacobian(jac)
	out := make([]Ciphertext, len(msgs))
	for i := range out {
		out[i] = Ciphertext{C1: pts[2*i], C2: pts[2*i+1]}
	}
	return out, rs
}

// BatchEncryptBits encrypts the PSC bin encoding of each bit (identity
// for 0, the generator for 1) under pk, returning ciphertexts and
// randomizers (bit-proof provers need them).
func BatchEncryptBits(pk Point, bits []bool) ([]Ciphertext, []*big.Int) {
	msgs := make([]Point, len(bits))
	gen := Generator()
	id := Identity()
	for i, b := range bits {
		if b {
			msgs[i] = gen
		} else {
			msgs[i] = id
		}
	}
	return BatchEncrypt(pk, msgs)
}

// BatchRerandomizeWith refreshes every ciphertext with the given
// randomizers: out[i] = (C1ᵢ + rᵢ·G, C2ᵢ + rᵢ·pk).
func BatchRerandomizeWith(pk Point, cs []Ciphertext, rs []*big.Int) []Ciphertext {
	if len(cs) != len(rs) {
		panic("elgamal: BatchRerandomizeWith length mismatch")
	}
	rs = reduceScalars(rs)
	gt := baseTable()
	pt := sharedBaseTable(pk, len(cs))
	jac := make([]jacPoint, 2*len(cs))
	parallel.For(len(cs), parallelMinChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var a affinePoint
			gt.mul(&jac[2*i], rs[i])
			a.fromPoint(cs[i].C1)
			jac[2*i].addMixed(&jac[2*i], &a)
			mulWithTable(&jac[2*i+1], pt, pk, rs[i])
			a.fromPoint(cs[i].C2)
			jac[2*i+1].addMixed(&jac[2*i+1], &a)
		}
	})
	pts := pointsFromJacobian(jac)
	out := make([]Ciphertext, len(cs))
	for i := range out {
		out[i] = Ciphertext{C1: pts[2*i], C2: pts[2*i+1]}
	}
	return out
}

// BatchRerandomize refreshes every ciphertext with fresh randomizers,
// returning them alongside the new ciphertexts.
func BatchRerandomize(pk Point, cs []Ciphertext) ([]Ciphertext, []*big.Int) {
	rs := RandomScalars(len(cs))
	return BatchRerandomizeWith(pk, cs, rs), rs
}

// BatchAddCiphertexts computes the homomorphic sum aᵢ + bᵢ elementwise
// — the tally server's table-combining step — with one shared
// normalization for the whole vector.
func BatchAddCiphertexts(as, bs []Ciphertext) []Ciphertext {
	if len(as) != len(bs) {
		panic("elgamal: BatchAddCiphertexts length mismatch")
	}
	jac := make([]jacPoint, 2*len(as))
	parallel.For(len(as), parallelMinChunk*4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var a affinePoint
			jac[2*i].fromPoint(as[i].C1)
			a.fromPoint(bs[i].C1)
			jac[2*i].addMixed(&jac[2*i], &a)
			jac[2*i+1].fromPoint(as[i].C2)
			a.fromPoint(bs[i].C2)
			jac[2*i+1].addMixed(&jac[2*i+1], &a)
		}
	})
	pts := pointsFromJacobian(jac)
	out := make([]Ciphertext, len(as))
	for i := range out {
		out[i] = Ciphertext{C1: pts[2*i], C2: pts[2*i+1]}
	}
	return out
}

// BatchExpBlind exponent-blinds every ciphertext with a fresh non-zero
// scalar, returning the blinds for proof generation. The bases here are
// the per-element ciphertext halves — no sharing to exploit — so each
// element is two stdlib multiplications, spread across the worker pool.
func BatchExpBlind(cs []Ciphertext) ([]Ciphertext, []*big.Int) {
	ss := RandomScalars(len(cs))
	out := make([]Ciphertext, len(cs))
	parallel.For(len(cs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = cs[i].ExpBlindWith(ss[i])
		}
	})
	return out, ss
}

// BatchPartialDecrypt computes this party's decryption share for every
// ciphertext in the batch.
func (k *PrivateKey) BatchPartialDecrypt(cs []Ciphertext) []DecryptionShare {
	out := make([]DecryptionShare, len(cs))
	parallel.For(len(cs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = k.PartialDecrypt(cs[i])
		}
	})
	return out
}

// RecoverBatch recovers every plaintext point from a batch and its
// parties' share vectors (shares[j][i] is party j's share for
// ciphertext i): Mᵢ = C2ᵢ − Σⱼ sharesⱼᵢ, with one shared normalization.
func RecoverBatch(cs []Ciphertext, shares [][]DecryptionShare) []Point {
	for _, sv := range shares {
		if len(sv) != len(cs) {
			panic("elgamal: RecoverBatch length mismatch")
		}
	}
	jac := make([]jacPoint, len(cs))
	parallel.For(len(cs), parallelMinChunk*4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var a affinePoint
			jac[i].fromPoint(cs[i].C2)
			for j := range shares {
				a.fromPoint(shares[j][i].Share)
				jac[i].subMixed(&jac[i], &a)
			}
		}
	})
	return pointsFromJacobian(jac)
}
