package elgamal

// P-256 base-field arithmetic on 4×64-bit limbs in Montgomery form.
//
// The deprecated crypto/elliptic entry points this package historically
// used convert through math/big on every call and normalize every
// intermediate result to affine coordinates (one field inversion per
// point addition). The PSC hot loops — encrypting thousands of bins,
// re-randomizing and blinding whole mix batches, verifying thousands of
// Chaum–Pedersen proofs — pay that cost per element. This file provides
// the raw field layer for the Jacobian group core in jacobian.go: a
// multiplication is ~30ns instead of ~240ns for math/big Mul+Mod, and no
// operation allocates.
//
// Arithmetic here is *variable time*. The reproduction runs simulated
// parties inside one trusted process, so timing side channels between
// parties are out of scope; see the package comment in group.go.

import (
	"math/big"
	"math/bits"
)

// fe is a field element: 4 little-endian 64-bit limbs, Montgomery form
// (value·2^256 mod p).
type fe [4]uint64

// p256P is the field prime p = 2^256 − 2^224 + 2^192 + 2^96 − 1.
var p256P = fe{0xffffffffffffffff, 0x00000000ffffffff, 0x0000000000000000, 0xffffffff00000001}

// Montgomery constants, derived once from big.Int so they cannot drift
// from the curve parameters.
var (
	feOneVal fe // R mod p, the Montgomery form of 1
	feR2     fe // R² mod p, used to convert into Montgomery form
	feBVal   fe // curve coefficient b in Montgomery form
)

func init() {
	p := curve.Params().P
	r := new(big.Int).Lsh(big.NewInt(1), 256)
	r.Mod(r, p)
	feOneVal = feFromSaturated(r)
	r2 := new(big.Int).Lsh(big.NewInt(1), 512)
	r2.Mod(r2, p)
	feR2 = feFromSaturated(r2)
	feBVal = feFromBig(curve.Params().B)
}

// limbsFromBig loads a non-negative big.Int of at most 64·len(out)
// bits into little-endian 64-bit limbs, independent of the platform's
// big.Word size.
func limbsFromBig(out []uint64, v *big.Int) {
	for i := range out {
		out[i] = 0
	}
	if bits.UintSize == 64 {
		for i, w := range v.Bits() {
			out[i] = uint64(w)
		}
		return
	}
	for i, w := range v.Bits() {
		out[i/2] |= uint64(w) << (32 * uint(i%2))
	}
}

// feFromSaturated loads a reduced big.Int into limbs without Montgomery
// conversion (the caller has already accounted for the R factor).
func feFromSaturated(v *big.Int) fe {
	var out fe
	limbsFromBig(out[:], v)
	return out
}

// feFromBig converts a big.Int in [0, p) into Montgomery form.
func feFromBig(v *big.Int) fe {
	raw := feFromSaturated(v)
	var out fe
	feMul(&out, &raw, &feR2)
	return out
}

// feToBig converts out of Montgomery form into a fresh big.Int.
func (x *fe) toBig() *big.Int {
	var one = fe{1}
	var raw fe
	feMul(&raw, x, &one) // divides by R, leaving the true value
	buf := make([]byte, 32)
	for i := 0; i < 4; i++ {
		limb := raw[3-i]
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(limb >> (56 - 8*j))
		}
	}
	return new(big.Int).SetBytes(buf)
}

// isZero reports whether x is zero (works in Montgomery form: the
// Montgomery representation of 0 is 0).
func (x *fe) isZero() bool {
	return x[0]|x[1]|x[2]|x[3] == 0
}

// feEqual reports limb equality; both sides must be reduced, which every
// producer in this file guarantees.
func feEqual(x, y *fe) bool {
	return x[0] == y[0] && x[1] == y[1] && x[2] == y[2] && x[3] == y[3]
}

// feAdd computes z = x + y mod p.
func feAdd(z, x, y *fe) {
	var c uint64
	var t fe
	t[0], c = bits.Add64(x[0], y[0], 0)
	t[1], c = bits.Add64(x[1], y[1], c)
	t[2], c = bits.Add64(x[2], y[2], c)
	t[3], c = bits.Add64(x[3], y[3], c)
	// Reduce: subtract p if the sum overflowed or is ≥ p.
	var b uint64
	var r fe
	r[0], b = bits.Sub64(t[0], p256P[0], 0)
	r[1], b = bits.Sub64(t[1], p256P[1], b)
	r[2], b = bits.Sub64(t[2], p256P[2], b)
	r[3], b = bits.Sub64(t[3], p256P[3], b)
	_, b = bits.Sub64(c, 0, b)
	if b == 0 {
		*z = r
	} else {
		*z = t
	}
}

// feSub computes z = x − y mod p.
func feSub(z, x, y *fe) {
	var b uint64
	var t fe
	t[0], b = bits.Sub64(x[0], y[0], 0)
	t[1], b = bits.Sub64(x[1], y[1], b)
	t[2], b = bits.Sub64(x[2], y[2], b)
	t[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		t[0], c = bits.Add64(t[0], p256P[0], 0)
		t[1], c = bits.Add64(t[1], p256P[1], c)
		t[2], c = bits.Add64(t[2], p256P[2], c)
		t[3], _ = bits.Add64(t[3], p256P[3], c)
	}
	*z = t
}

// feNeg computes z = −x mod p.
func feNeg(z, x *fe) {
	var zero fe
	feSub(z, &zero, x)
}

// feMulBy2 computes z = 2x mod p.
func feMulBy2(z, x *fe) { feAdd(z, x, x) }

// feMulBy3 computes z = 3x mod p.
func feMulBy3(z, x *fe) {
	var t fe
	feAdd(&t, x, x)
	feAdd(z, &t, x)
}

// feMulBy4 computes z = 4x mod p.
func feMulBy4(z, x *fe) {
	var t fe
	feAdd(&t, x, x)
	feAdd(z, &t, &t)
}

// feMulBy8 computes z = 8x mod p.
func feMulBy8(z, x *fe) {
	var t fe
	feAdd(&t, x, x)
	feAdd(&t, &t, &t)
	feAdd(z, &t, &t)
}

// feMul computes z = x·y·R⁻¹ mod p (Montgomery CIOS). Because
// p[0] = 2^64 − 1 ≡ −1 (mod 2^64), the Montgomery factor −p⁻¹ mod 2^64
// is 1, so m is simply the running low limb — and because
// p = 2^256 + 2^192 + 2^96 − 2^224 − 1, the reduction step
// t += m·p needs only shifted additions and subtractions of m instead
// of four 64×64 multiplications:
//
//	t += m·2^256 + m·2^192 + m·2^96   (positive part, ≥ the negative)
//	t −= m·2^224 + m                  (the −m zeroes limb 0 exactly)
func feMul(z, x, y *fe) {
	var t0, t1, t2, t3, t4 uint64
	for i := 0; i < 4; i++ {
		xi := x[i]
		var carry, c, b, hi, lo uint64
		hi, lo = bits.Mul64(xi, y[0])
		t0, c = bits.Add64(t0, lo, 0)
		carry = hi + c
		hi, lo = bits.Mul64(xi, y[1])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t1, c = bits.Add64(t1, lo, 0)
		carry = hi + c
		hi, lo = bits.Mul64(xi, y[2])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t2, c = bits.Add64(t2, lo, 0)
		carry = hi + c
		hi, lo = bits.Mul64(xi, y[3])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t3, c = bits.Add64(t3, lo, 0)
		t4 += hi + c

		m := t0
		ml := m << 32
		mh := m >> 32
		var t5 uint64
		t1, c = bits.Add64(t1, ml, 0)
		t2, c = bits.Add64(t2, mh, c)
		t3, c = bits.Add64(t3, m, c)
		t4, c = bits.Add64(t4, m, c)
		t5 = c
		_, b = bits.Sub64(t0, m, 0) // exact zero by construction
		t1, b = bits.Sub64(t1, 0, b)
		t2, b = bits.Sub64(t2, 0, b)
		t3, b = bits.Sub64(t3, ml, b)
		t4, b = bits.Sub64(t4, mh, b)
		t5 -= b // cannot underflow: t + m·p ≥ 0 and fits 321 bits
		t0, t1, t2, t3, t4 = t1, t2, t3, t4, t5
	}
	var b uint64
	var r fe
	r[0], b = bits.Sub64(t0, p256P[0], 0)
	r[1], b = bits.Sub64(t1, p256P[1], b)
	r[2], b = bits.Sub64(t2, p256P[2], b)
	r[3], b = bits.Sub64(t3, p256P[3], b)
	_, b = bits.Sub64(t4, 0, b)
	if b == 0 {
		*z = r
	} else {
		z[0], z[1], z[2], z[3] = t0, t1, t2, t3
	}
}

// feSqr computes z = x²·R⁻¹ mod p. Separate-operand-scanning squaring:
// the six cross products are computed once and doubled with shifts
// (10 half-size multiplications instead of 16), then four shift-based
// Montgomery reduction rounds fold the low half into the high half.
func feSqr(z, x *fe) {
	// Cross products Σ_{i<j} xᵢxⱼ·2^{64(i+j)} in limbs r1..r6.
	h01, l01 := bits.Mul64(x[0], x[1])
	h02, l02 := bits.Mul64(x[0], x[2])
	h03, l03 := bits.Mul64(x[0], x[3])
	h12, l12 := bits.Mul64(x[1], x[2])
	h13, l13 := bits.Mul64(x[1], x[3])
	h23, l23 := bits.Mul64(x[2], x[3])

	var c uint64
	r1 := l01
	r2, c := bits.Add64(h01, l02, 0)
	r3, c := bits.Add64(h02, l03, c)
	r4, c := bits.Add64(h03, l13, c)
	r5, c := bits.Add64(h13, l23, c)
	r6 := h23 + c
	r3, c = bits.Add64(r3, l12, 0)
	r4, c = bits.Add64(r4, h12, c)
	r5, c = bits.Add64(r5, 0, c)
	r6 += c

	// Double the cross sum (top bit cannot overflow: the sum of cross
	// products is < 2^447).
	r7 := r6 >> 63
	r6 = r6<<1 | r5>>63
	r5 = r5<<1 | r4>>63
	r4 = r4<<1 | r3>>63
	r3 = r3<<1 | r2>>63
	r2 = r2<<1 | r1>>63
	r1 = r1 << 1

	// Add the squares on the diagonal.
	h0, l0 := bits.Mul64(x[0], x[0])
	h1, l1 := bits.Mul64(x[1], x[1])
	h2, l2 := bits.Mul64(x[2], x[2])
	h3, l3 := bits.Mul64(x[3], x[3])
	r0 := l0
	r1, c = bits.Add64(r1, h0, 0)
	r2, c = bits.Add64(r2, l1, c)
	r3, c = bits.Add64(r3, h1, c)
	r4, c = bits.Add64(r4, l2, c)
	r5, c = bits.Add64(r5, h2, c)
	r6, c = bits.Add64(r6, l3, c)
	r7, _ = bits.Add64(r7, h3, c)

	// Four Montgomery reduction rounds over the 8-limb square, same
	// shift-based t += m·p as feMul, folding into a running 5-limb
	// window (t4 tracks the carry limb above the window).
	t0, t1, t2, t3, t4 := r0, r1, r2, r3, uint64(0)
	high := [4]uint64{r4, r5, r6, r7}
	for i := 0; i < 4; i++ {
		var cc, b, t5 uint64
		m := t0
		ml := m << 32
		mh := m >> 32
		t1, cc = bits.Add64(t1, ml, 0)
		t2, cc = bits.Add64(t2, mh, cc)
		t3, cc = bits.Add64(t3, m, cc)
		t4, cc = bits.Add64(t4, m, cc)
		t5 = cc
		_, b = bits.Sub64(t0, m, 0)
		t1, b = bits.Sub64(t1, 0, b)
		t2, b = bits.Sub64(t2, 0, b)
		t3, b = bits.Sub64(t3, ml, b)
		t4, b = bits.Sub64(t4, mh, b)
		t5 -= b
		// Shift the window down and pull in the next high limb.
		t0, t1, t2 = t1, t2, t3
		t3, cc = bits.Add64(t4, high[i], 0)
		t4 = t5 + cc
	}

	var b uint64
	var r fe
	r[0], b = bits.Sub64(t0, p256P[0], 0)
	r[1], b = bits.Sub64(t1, p256P[1], b)
	r[2], b = bits.Sub64(t2, p256P[2], b)
	r[3], b = bits.Sub64(t3, p256P[3], b)
	_, b = bits.Sub64(t4, 0, b)
	if b == 0 {
		*z = r
	} else {
		z[0], z[1], z[2], z[3] = t0, t1, t2, t3
	}
}

// feInv computes z = x⁻¹ mod p, delegating to big.Int's binary extended
// GCD. Inversions are rare by design — one per *batch* of point
// normalizations (see batchToAffine) — so the conversion cost is noise.
func feInv(z, x *fe) {
	v := x.toBig()
	v.ModInverse(v, curve.Params().P)
	*z = feFromBig(v)
}
