package elgamal

// Jacobian-coordinate P-256 group arithmetic. A point (X, Y, Z)
// represents the affine point (X/Z², Y/Z³); the point at infinity has
// Z = 0. Working projectively defers the expensive field inversion:
// a whole vector of additions costs *one* inversion (batchToAffine,
// Montgomery's simultaneous-inversion trick) instead of one per add as
// in the affine crypto/elliptic path.

import "math/big"

// jacPoint is a point in Jacobian coordinates, field elements in
// Montgomery form.
type jacPoint struct {
	x, y, z fe
}

// isInfinity reports whether the point is the group identity.
func (p *jacPoint) isInfinity() bool { return p.z.isZero() }

// setInfinity sets p to the group identity.
func (p *jacPoint) setInfinity() { *p = jacPoint{} }

// affinePoint is an affine point in Montgomery-form field elements, the
// compact entry type for precomputed tables and mixed additions. The
// identity is flagged explicitly because affine coordinates cannot
// express it.
type affinePoint struct {
	x, y     fe
	infinity bool
}

// fromPoint loads the public affine representation ((0,0) = identity).
func (p *jacPoint) fromPoint(q Point) {
	if q.IsIdentity() {
		p.setInfinity()
		return
	}
	p.x = feFromBig(q.X)
	p.y = feFromBig(q.Y)
	p.z = feOneVal
}

func (p *affinePoint) fromPoint(q Point) {
	if q.IsIdentity() {
		*p = affinePoint{infinity: true}
		return
	}
	p.x = feFromBig(q.X)
	p.y = feFromBig(q.Y)
	p.infinity = false
}

// toPoint converts to the public affine representation with a single
// field inversion. Prefer batchToAffine for vectors.
func (p *jacPoint) toPoint() Point {
	if p.isInfinity() {
		return Identity()
	}
	var zInv, zInv2, zInv3, ax, ay fe
	feInv(&zInv, &p.z)
	feSqr(&zInv2, &zInv)
	feMul(&zInv3, &zInv2, &zInv)
	feMul(&ax, &p.x, &zInv2)
	feMul(&ay, &p.y, &zInv3)
	return Point{X: ax.toBig(), Y: ay.toBig()}
}

// double sets p = 2q using dbl-2001-b for a = −3 (3M + 5S).
func (p *jacPoint) double(q *jacPoint) {
	if q.isInfinity() {
		p.setInfinity()
		return
	}
	var delta, gamma, beta, alpha, t1, t2 fe
	feSqr(&delta, &q.z)
	feSqr(&gamma, &q.y)
	feMul(&beta, &q.x, &gamma)
	// alpha = 3(X − delta)(X + delta)
	feSub(&t1, &q.x, &delta)
	feAdd(&t2, &q.x, &delta)
	feMul(&alpha, &t1, &t2)
	feMulBy3(&alpha, &alpha)
	// Z3 = (Y + Z)² − gamma − delta  (computed first: reads q.y, q.z)
	feAdd(&t1, &q.y, &q.z)
	feSqr(&t1, &t1)
	feSub(&t1, &t1, &gamma)
	feSub(&p.z, &t1, &delta)
	// X3 = alpha² − 8beta
	var x3 fe
	feSqr(&x3, &alpha)
	feMulBy8(&t1, &beta)
	feSub(&x3, &x3, &t1)
	// Y3 = alpha(4beta − X3) − 8gamma²
	feMulBy4(&t1, &beta)
	feSub(&t1, &t1, &x3)
	feMul(&t1, &alpha, &t1)
	feSqr(&t2, &gamma)
	feMulBy8(&t2, &t2)
	feSub(&p.y, &t1, &t2)
	p.x = x3
}

// addMixed sets p = q + r where r is affine (madd-2004-hmv, 8M + 3S).
func (p *jacPoint) addMixed(q *jacPoint, r *affinePoint) {
	if r.infinity {
		*p = *q
		return
	}
	if q.isInfinity() {
		p.x, p.y, p.z = r.x, r.y, feOneVal
		return
	}
	var t1, t2, t3, t4 fe
	feSqr(&t1, &q.z)      // Z1²
	feMul(&t2, &t1, &q.z) // Z1³
	feMul(&t1, &t1, &r.x) // U2 = X2·Z1²
	feMul(&t2, &t2, &r.y) // S2 = Y2·Z1³
	feSub(&t1, &t1, &q.x) // H = U2 − X1
	feSub(&t2, &t2, &q.y) // R = S2 − Y1
	if t1.isZero() {
		if t2.isZero() {
			p.double(q)
			return
		}
		p.setInfinity()
		return
	}
	var z3 fe
	feMul(&z3, &q.z, &t1) // Z3 = Z1·H
	feSqr(&t3, &t1)       // H²
	feMul(&t4, &t3, &t1)  // H³
	feMul(&t3, &t3, &q.x) // X1·H²
	feMulBy2(&t1, &t3)    // 2·X1·H²
	var x3 fe
	feSqr(&x3, &t2)       // R²
	feSub(&x3, &x3, &t1)  // R² − 2X1H²
	feSub(&x3, &x3, &t4)  // − H³
	feSub(&t3, &t3, &x3)  // X1H² − X3
	feMul(&t3, &t3, &t2)  // R(X1H² − X3)
	feMul(&t4, &t4, &q.y) // H³·Y1
	feSub(&p.y, &t3, &t4)
	p.x = x3
	p.z = z3
}

// subMixed sets p = q − r for affine r.
func (p *jacPoint) subMixed(q *jacPoint, r *affinePoint) {
	neg := *r
	if !neg.infinity {
		feNeg(&neg.y, &r.y)
	}
	p.addMixed(q, &neg)
}

// add sets p = q + r (general Jacobian add-2007-bl, 11M + 5S).
func (p *jacPoint) add(q, r *jacPoint) {
	if q.isInfinity() {
		*p = *r
		return
	}
	if r.isInfinity() {
		*p = *q
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2, h, i, j, rr, v, t fe
	feSqr(&z1z1, &q.z)
	feSqr(&z2z2, &r.z)
	feMul(&u1, &q.x, &z2z2)
	feMul(&u2, &r.x, &z1z1)
	feMul(&s1, &q.y, &r.z)
	feMul(&s1, &s1, &z2z2)
	feMul(&s2, &r.y, &q.z)
	feMul(&s2, &s2, &z1z1)
	feSub(&h, &u2, &u1)
	feSub(&rr, &s2, &s1)
	if h.isZero() {
		if rr.isZero() {
			p.double(q)
			return
		}
		p.setInfinity()
		return
	}
	feMulBy2(&rr, &rr) // r = 2(S2 − S1)
	feMulBy2(&i, &h)   // 2H
	feSqr(&i, &i)      // I = (2H)²
	feMul(&j, &h, &i)  // J = H·I
	feMul(&v, &u1, &i) // V = U1·I
	var x3 fe
	feSqr(&x3, &rr)
	feSub(&x3, &x3, &j)
	feMulBy2(&t, &v)
	feSub(&x3, &x3, &t) // X3 = r² − J − 2V
	feSub(&t, &v, &x3)
	feMul(&t, &t, &rr)
	feMul(&s1, &s1, &j)
	feMulBy2(&s1, &s1)
	var y3 fe
	feSub(&y3, &t, &s1) // Y3 = r(V − X3) − 2S1·J
	var z3 fe
	feAdd(&z3, &q.z, &r.z)
	feSqr(&z3, &z3)
	feSub(&z3, &z3, &z1z1)
	feSub(&z3, &z3, &z2z2)
	feMul(&z3, &z3, &h) // Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H
	p.x, p.y, p.z = x3, y3, z3
}

// batchToAffine normalizes a vector of Jacobian points to affine with a
// single field inversion (Montgomery's simultaneous-inversion trick):
// accumulate prefix products of the Zs, invert the total once, then
// peel per-point inverses off backwards.
func batchToAffine(ps []jacPoint) []affinePoint {
	out := make([]affinePoint, len(ps))
	// Prefix products over the non-infinity Zs.
	prods := make([]fe, 0, len(ps))
	acc := feOneVal
	for i := range ps {
		if ps[i].isInfinity() {
			out[i].infinity = true
			continue
		}
		feMul(&acc, &acc, &ps[i].z)
		prods = append(prods, acc)
	}
	if len(prods) == 0 {
		return out
	}
	var inv fe
	feInv(&inv, &prods[len(prods)-1])
	k := len(prods) - 1
	for i := len(ps) - 1; i >= 0; i-- {
		if out[i].infinity {
			continue
		}
		var zInv fe
		if k == 0 {
			zInv = inv
		} else {
			feMul(&zInv, &inv, &prods[k-1])
			feMul(&inv, &inv, &ps[i].z)
		}
		k--
		var zInv2, zInv3 fe
		feSqr(&zInv2, &zInv)
		feMul(&zInv3, &zInv2, &zInv)
		feMul(&out[i].x, &ps[i].x, &zInv2)
		feMul(&out[i].y, &ps[i].y, &zInv3)
	}
	return out
}

// pointsFromJacobian converts a Jacobian vector to public Points with
// one shared inversion.
func pointsFromJacobian(ps []jacPoint) []Point {
	aff := batchToAffine(ps)
	out := make([]Point, len(aff))
	for i := range aff {
		out[i] = aff[i].toPoint()
	}
	return out
}

func (a *affinePoint) toPoint() Point {
	if a.infinity {
		return Identity()
	}
	return Point{X: a.x.toBig(), Y: a.y.toBig()}
}

// onCurve reports whether (x, y) in Montgomery form satisfies
// y² = x³ − 3x + b.
func (a *affinePoint) onCurve() bool {
	if a.infinity {
		return true
	}
	var lhs, rhs, t fe
	feSqr(&lhs, &a.y)
	feSqr(&rhs, &a.x)
	feMul(&rhs, &rhs, &a.x)
	feMulBy3(&t, &a.x)
	feSub(&rhs, &rhs, &t)
	feAdd(&rhs, &rhs, &feBVal)
	return feEqual(&lhs, &rhs)
}

// scalarLimbs loads a scalar already reduced mod the group order into
// 4 little-endian limbs.
func scalarLimbs(k *big.Int) [4]uint64 {
	var out [4]uint64
	limbsFromBig(out[:], k)
	return out
}

// scalarBit returns bit i of the limb representation.
func scalarBit(k *[4]uint64, i int) uint64 {
	return (k[i>>6] >> (uint(i) & 63)) & 1
}
