package elgamal

// Precomputed windowed tables for fixed-base scalar multiplication
// (Yao's method). A scalar is cut into d = ceil(256/w) windows of w
// bits; table window j holds every odd-and-even multiple m·2^(wj)·B for
// m = 1..2^w−1 in affine form, so one multiplication is d table lookups
// and at most d−1 mixed additions — no doublings at all — and the
// result stays in Jacobian coordinates for the caller to normalize
// (ideally in a batch).
//
// Two kinds of table exist:
//
//   - one static table for the generator G (width 12, ~5.8 MB, built
//     lazily once per process): every encryption, re-randomization,
//     proof commitment, and verification does at least one BaseMul;
//   - cached per-base tables (width 8, ~0.5 MB) for hot shared bases.
//     A PSC round multiplies thousands of scalars against the *same*
//     joint public key, so the build cost amortizes to noise. Tables
//     are built explicitly via Precompute, or by the batch APIs when a
//     batch is large enough to repay an on-the-spot build.

import (
	"math/big"
	"sync"
)

type fixedTable struct {
	w       uint
	windows [][]affinePoint // windows[j][m-1] = m·2^(wj)·B
}

// buildTable precomputes a width-w table for base (must not be the
// identity). All entries are accumulated in Jacobian coordinates and
// normalized to affine with a single shared inversion.
func buildTable(base Point, w uint) *fixedTable {
	d := (256 + int(w) - 1) / int(w)
	size := 1<<w - 1
	entries := make([]jacPoint, d*size)
	var windowBase jacPoint
	windowBase.fromPoint(base)
	for j := 0; j < d; j++ {
		win := entries[j*size : (j+1)*size]
		win[0] = windowBase
		for m := 2; m <= size; m++ {
			if m%2 == 0 {
				win[m-1].double(&win[m/2-1])
			} else {
				win[m-1].add(&win[m-2], &windowBase)
			}
		}
		if j+1 < d {
			// Next window base: 2^w·windowBase = double of the 2^(w-1)
			// entry.
			windowBase.double(&win[1<<(w-1)-1])
		}
	}
	aff := batchToAffine(entries)
	t := &fixedTable{w: w, windows: make([][]affinePoint, d)}
	for j := 0; j < d; j++ {
		t.windows[j] = aff[j*size : (j+1)*size]
	}
	return t
}

// mul computes k·B into dst. k must be reduced mod the group order.
func (t *fixedTable) mul(dst *jacPoint, k *big.Int) {
	limbs := scalarLimbs(k)
	dst.setInfinity()
	w := int(t.w)
	mask := uint64(1)<<t.w - 1
	for j := range t.windows {
		bit := j * w
		limb := bit >> 6
		off := uint(bit & 63)
		digit := limbs[limb] >> off
		if off+t.w > 64 && limb+1 < 4 {
			digit |= limbs[limb+1] << (64 - off)
		}
		digit &= mask
		if digit != 0 {
			dst.addMixed(dst, &t.windows[j][digit-1])
		}
	}
}

// --- Static generator table ---

const baseTableWidth = 12

var (
	baseTableOnce sync.Once
	baseTableVal  *fixedTable
)

func baseTable() *fixedTable {
	baseTableOnce.Do(func() {
		baseTableVal = buildTable(Generator(), baseTableWidth)
	})
	return baseTableVal
}

// --- Cached tables for hot shared bases ---

const (
	sharedTableWidth = 8
	maxCachedTables  = 32
)

type tableKey [64]byte

func keyOf(p Point) tableKey {
	var k tableKey
	p.X.FillBytes(k[:32])
	p.Y.FillBytes(k[32:])
	return k
}

var tableCache = struct {
	sync.RWMutex
	tables map[tableKey]*fixedTable
	order  []tableKey // insertion order, for FIFO eviction
}{
	tables: make(map[tableKey]*fixedTable),
}

// cachedTable returns the table for base if one has been precomputed,
// taking only a read lock so concurrent workers never serialize on the
// lookup. Tables are created by Precompute (protocol setup knows which
// bases are hot) or by the batch APIs when a batch is large enough to
// repay an on-the-spot build.
func cachedTable(base Point) *fixedTable {
	k := keyOf(base)
	tableCache.RLock()
	t := tableCache.tables[k]
	tableCache.RUnlock()
	return t
}

// Precompute builds and caches a fixed-base table for p, accelerating
// every subsequent Mul/BatchMul and proof verification against that
// base. PSC parties call it on the round's joint key: one build (a few
// milliseconds) is repaid across the thousands of per-bin operations of
// the round. It is a no-op for the identity, the generator (which has a
// larger static table), and already-cached bases. When the cache is
// full the oldest table is evicted — round keys are ephemeral, so a
// long-lived party keeps accelerating new rounds instead of pinning
// tables for dead keys.
func Precompute(p Point) {
	if !p.IsValid() || p.IsIdentity() || p.Equal(Generator()) {
		return
	}
	k := keyOf(p)
	tableCache.RLock()
	_, ok := tableCache.tables[k]
	tableCache.RUnlock()
	if ok {
		return
	}
	t := buildTable(p, sharedTableWidth)
	tableCache.Lock()
	if _, ok := tableCache.tables[k]; !ok {
		for len(tableCache.tables) >= maxCachedTables {
			oldest := tableCache.order[0]
			tableCache.order = tableCache.order[1:]
			delete(tableCache.tables, oldest)
		}
		tableCache.tables[k] = t
		tableCache.order = append(tableCache.order, k)
	}
	tableCache.Unlock()
}
