// Package elgamal implements the group cryptography used by the private
// set-union cardinality protocol (internal/psc): ElGamal over the NIST
// P-256 curve with additive homomorphism, ciphertext re-randomization,
// plaintext-exponent blinding, n-of-n distributed decryption with
// Chaum–Pedersen correctness proofs, and a cut-and-choose verifiable
// shuffle.
//
// PSC (Fenske et al., CCS 2017) needs exactly these operations: data
// collectors encrypt hash-table bits as group elements, computation
// parties mix and blind them so that only the *number* of non-zero bins
// survives, and joint decryption reveals that count plus noise — never
// any individual item.
package elgamal

import (
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

var (
	curve = elliptic.P256()
	// order is the order of the P-256 base point group.
	order = curve.Params().N
)

// Point is an element of the P-256 group in affine coordinates. The
// identity (point at infinity) is represented by X = Y = 0, the
// convention crypto/elliptic itself uses.
type Point struct {
	X, Y *big.Int
}

// Identity returns the group identity element.
func Identity() Point {
	return Point{X: new(big.Int), Y: new(big.Int)}
}

// Generator returns the standard base point G.
func Generator() Point {
	p := curve.Params()
	return Point{X: new(big.Int).Set(p.Gx), Y: new(big.Int).Set(p.Gy)}
}

// IsIdentity reports whether p is the identity element.
func (p Point) IsIdentity() bool {
	return p.X != nil && p.Y != nil && p.X.Sign() == 0 && p.Y.Sign() == 0
}

// IsValid reports whether p is the identity or a point on the curve.
func (p Point) IsValid() bool {
	if p.X == nil || p.Y == nil {
		return false
	}
	if p.IsIdentity() {
		return true
	}
	return curve.IsOnCurve(p.X, p.Y)
}

// Equal reports whether two points are the same group element.
func (p Point) Equal(q Point) bool {
	if p.X == nil || q.X == nil {
		return false
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	x, y := curve.Add(p.X, p.Y, q.X, q.Y)
	return Point{X: x, Y: y}
}

// Neg returns -p.
func (p Point) Neg() Point {
	if p.IsIdentity() {
		return Identity()
	}
	y := new(big.Int).Sub(curve.Params().P, p.Y)
	y.Mod(y, curve.Params().P)
	return Point{X: new(big.Int).Set(p.X), Y: y}
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return p.Add(q.Neg()) }

// Mul returns k·p for a scalar k.
func (p Point) Mul(k *big.Int) Point {
	if p.IsIdentity() || k.Sign() == 0 {
		return Identity()
	}
	kk := new(big.Int).Mod(k, order)
	if kk.Sign() == 0 {
		return Identity()
	}
	x, y := curve.ScalarMult(p.X, p.Y, kk.Bytes())
	return Point{X: x, Y: y}
}

// BaseMul returns k·G.
func BaseMul(k *big.Int) Point {
	kk := new(big.Int).Mod(k, order)
	if kk.Sign() == 0 {
		return Identity()
	}
	x, y := curve.ScalarBaseMult(kk.Bytes())
	return Point{X: x, Y: y}
}

const pointLen = 1 + 32 + 32

// Bytes encodes the point: a tag byte (0 identity, 4 uncompressed)
// followed by two 32-byte big-endian coordinates for non-identity points.
func (p Point) Bytes() []byte {
	out := make([]byte, 0, pointLen)
	if p.IsIdentity() {
		return append(out, 0)
	}
	out = append(out, 4)
	out = append(out, p.X.FillBytes(make([]byte, 32))...)
	return append(out, p.Y.FillBytes(make([]byte, 32))...)
}

// ParsePoint decodes a point produced by Bytes and validates curve
// membership. It returns the number of bytes consumed.
func ParsePoint(b []byte) (Point, int, error) {
	if len(b) < 1 {
		return Point{}, 0, errors.New("elgamal: empty point encoding")
	}
	switch b[0] {
	case 0:
		return Identity(), 1, nil
	case 4:
		if len(b) < pointLen {
			return Point{}, 0, errors.New("elgamal: short point encoding")
		}
		p := Point{
			X: new(big.Int).SetBytes(b[1:33]),
			Y: new(big.Int).SetBytes(b[33:65]),
		}
		if !p.IsValid() || p.IsIdentity() {
			return Point{}, 0, errors.New("elgamal: point not on curve")
		}
		return p, pointLen, nil
	default:
		return Point{}, 0, fmt.Errorf("elgamal: bad point tag %d", b[0])
	}
}

// RandomScalar returns a uniform scalar in [1, order-1] using the
// cryptographic randomness source.
func RandomScalar() *big.Int {
	for {
		k, err := rand.Int(rand.Reader, order)
		if err != nil {
			panic("elgamal: crypto/rand failed: " + err.Error())
		}
		if k.Sign() != 0 {
			return k
		}
	}
}

// Order returns a copy of the group order.
func Order() *big.Int { return new(big.Int).Set(order) }
