// Package elgamal implements the group cryptography used by the private
// set-union cardinality protocol (internal/psc): ElGamal over the NIST
// P-256 curve with additive homomorphism, ciphertext re-randomization,
// plaintext-exponent blinding, n-of-n distributed decryption with
// Chaum–Pedersen correctness proofs, and a cut-and-choose verifiable
// shuffle.
//
// PSC (Fenske et al., CCS 2017) needs exactly these operations: data
// collectors encrypt hash-table bits as group elements, computation
// parties mix and blind them so that only the *number* of non-zero bins
// survives, and joint decryption reveals that count plus noise — never
// any individual item.
//
// # Performance architecture
//
// PSC spends essentially all of its runtime here, on vectors of
// thousands of ciphertexts per round, so the group core is built for
// batch throughput:
//
//   - point arithmetic runs in Jacobian coordinates over a dedicated
//     4×64-limb Montgomery field (field.go, jacobian.go), with batch
//     affine normalization so a vector of operations costs one field
//     inversion instead of one per element;
//   - fixed-base multiplication uses precomputed windowed tables
//     (table.go) for the generator and for hot shared bases such as a
//     round's joint public key (see Precompute);
//   - vectorized entry points (Batch* in batch.go, elgamal.go) fan out
//     over a runtime.NumCPU()-sized worker pool and keep intermediate
//     results projective;
//   - proof batches are verified with random-linear-combination checks
//     over a shared-doubling multi-scalar multiplication (verify.go).
//
// Single-element variable-base multiplications still delegate to the
// assembly-backed crypto/elliptic P-256, which remains the fastest
// primitive available for that one shape.
//
// The new core is *variable time*: table indices and NAF digits depend
// on scalar bits. The reproduction simulates all parties in one trusted
// process, so cross-party timing side channels are out of scope here —
// a real deployment must swap in constant-time arithmetic.
package elgamal

import (
	"bufio"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

var (
	curve = elliptic.P256()
	// order is the order of the P-256 base point group.
	order = curve.Params().N
)

// Point is an element of the P-256 group in affine coordinates. The
// identity (point at infinity) is represented by X = Y = 0, the
// convention crypto/elliptic itself uses.
type Point struct {
	X, Y *big.Int
}

// Identity returns the group identity element.
func Identity() Point {
	return Point{X: new(big.Int), Y: new(big.Int)}
}

// Generator returns the standard base point G.
func Generator() Point {
	p := curve.Params()
	return Point{X: new(big.Int).Set(p.Gx), Y: new(big.Int).Set(p.Gy)}
}

// IsIdentity reports whether p is the identity element.
func (p Point) IsIdentity() bool {
	return p.X != nil && p.Y != nil && p.X.Sign() == 0 && p.Y.Sign() == 0
}

// IsValid reports whether p is the identity or a point on the curve.
func (p Point) IsValid() bool {
	if p.X == nil || p.Y == nil {
		return false
	}
	if p.IsIdentity() {
		return true
	}
	pp := curve.Params().P
	if p.X.Sign() < 0 || p.X.Cmp(pp) >= 0 || p.Y.Sign() < 0 || p.Y.Cmp(pp) >= 0 {
		return false
	}
	var a affinePoint
	a.fromPoint(p)
	return a.onCurve()
}

// Equal reports whether two points are the same group element.
func (p Point) Equal(q Point) bool {
	if p.X == nil || q.X == nil {
		return false
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// isGenerator reports whether p is the standard base point.
func (p Point) isGenerator() bool {
	params := curve.Params()
	return p.X != nil && p.Y != nil && p.X.Cmp(params.Gx) == 0 && p.Y.Cmp(params.Gy) == 0
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	var jp jacPoint
	var aq affinePoint
	jp.fromPoint(p)
	aq.fromPoint(q)
	jp.addMixed(&jp, &aq)
	return jp.toPoint()
}

// Neg returns -p.
func (p Point) Neg() Point {
	if p.IsIdentity() {
		return Identity()
	}
	y := new(big.Int).Sub(curve.Params().P, p.Y)
	y.Mod(y, curve.Params().P)
	return Point{X: new(big.Int).Set(p.X), Y: y}
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point {
	var jp jacPoint
	var aq affinePoint
	jp.fromPoint(p)
	aq.fromPoint(q)
	jp.subMixed(&jp, &aq)
	return jp.toPoint()
}

// Mul returns k·p for a scalar k. Multiplications by the generator or
// by a base with a precomputed table (see Precompute) use the windowed
// fixed-base path; other bases delegate to the stdlib assembly
// implementation, which is the fastest single-shot variable-base
// multiplication available.
func (p Point) Mul(k *big.Int) Point {
	if p.IsIdentity() || k.Sign() == 0 {
		return Identity()
	}
	kk := new(big.Int).Mod(k, order)
	if kk.Sign() == 0 {
		return Identity()
	}
	if p.isGenerator() {
		return BaseMul(kk)
	}
	if t := cachedTable(p); t != nil {
		var jp jacPoint
		t.mul(&jp, kk)
		return jp.toPoint()
	}
	x, y := curve.ScalarMult(p.X, p.Y, kk.Bytes())
	return Point{X: x, Y: y}
}

// BaseMul returns k·G via the static precomputed generator table.
func BaseMul(k *big.Int) Point {
	kk := new(big.Int).Mod(k, order)
	if kk.Sign() == 0 {
		return Identity()
	}
	var jp jacPoint
	baseTable().mul(&jp, kk)
	return jp.toPoint()
}

const pointLen = 1 + 32 + 32

// Bytes encodes the point: a tag byte (0 identity, 4 uncompressed)
// followed by two 32-byte big-endian coordinates for non-identity points.
func (p Point) Bytes() []byte {
	return p.AppendBytes(make([]byte, 0, pointLen))
}

// AppendBytes appends the encoding of p to dst and returns the extended
// slice, letting vector encoders reuse one allocation (see
// psc's encodeVector).
func (p Point) AppendBytes(dst []byte) []byte {
	if p.IsIdentity() {
		return append(dst, 0)
	}
	n := len(dst)
	dst = append(dst, make([]byte, pointLen)...)
	dst[n] = 4
	p.X.FillBytes(dst[n+1 : n+33])
	p.Y.FillBytes(dst[n+33 : n+65])
	return dst
}

// ParsePoint decodes a point produced by Bytes and validates curve
// membership. It returns the number of bytes consumed.
func ParsePoint(b []byte) (Point, int, error) {
	if len(b) < 1 {
		return Point{}, 0, errors.New("elgamal: empty point encoding")
	}
	switch b[0] {
	case 0:
		return Identity(), 1, nil
	case 4:
		if len(b) < pointLen {
			return Point{}, 0, errors.New("elgamal: short point encoding")
		}
		p := Point{
			X: new(big.Int).SetBytes(b[1:33]),
			Y: new(big.Int).SetBytes(b[33:65]),
		}
		if !p.IsValid() || p.IsIdentity() {
			return Point{}, 0, errors.New("elgamal: point not on curve")
		}
		return p, pointLen, nil
	default:
		return Point{}, 0, fmt.Errorf("elgamal: bad point tag %d", b[0])
	}
}

// randReaders pools buffered readers over the crypto randomness source,
// so scalar generation in the mix/blind loops costs an occasional bulk
// read instead of one syscall per scalar.
var randReaders = sync.Pool{
	New: func() any { return bufio.NewReaderSize(rand.Reader, 4096) },
}

// RandomScalar returns a uniform scalar in [1, order-1] using the
// cryptographic randomness source.
func RandomScalar() *big.Int {
	r := randReaders.Get().(*bufio.Reader)
	defer randReaders.Put(r)
	k := new(big.Int)
	var buf [32]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			panic("elgamal: crypto/rand failed: " + err.Error())
		}
		k.SetBytes(buf[:])
		// Rejection-sample for uniformity; the order is within 2^-32 of
		// 2^256 so retries are vanishingly rare.
		if k.Sign() != 0 && k.Cmp(order) < 0 {
			return k
		}
	}
}

// RandomScalars returns n uniform scalars in [1, order-1], drawing the
// randomness in bulk.
func RandomScalars(n int) []*big.Int {
	out := make([]*big.Int, n)
	r := randReaders.Get().(*bufio.Reader)
	defer randReaders.Put(r)
	var buf [32]byte
	for i := range out {
		k := new(big.Int)
		for {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				panic("elgamal: crypto/rand failed: " + err.Error())
			}
			k.SetBytes(buf[:])
			if k.Sign() != 0 && k.Cmp(order) < 0 {
				break
			}
		}
		out[i] = k
	}
	return out
}

// randomScalarBits returns a uniform scalar of the given bit width,
// used for the random coefficients of batched proof verification.
func randomScalarBits(r *bufio.Reader, bits int) *big.Int {
	buf := make([]byte, bits/8)
	if _, err := io.ReadFull(r, buf); err != nil {
		panic("elgamal: crypto/rand failed: " + err.Error())
	}
	return new(big.Int).SetBytes(buf)
}

// Order returns a copy of the group order.
func Order() *big.Int { return new(big.Int).Set(order) }
