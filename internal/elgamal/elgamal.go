package elgamal

import (
	"errors"
	"math/big"
)

// PrivateKey is an ElGamal decryption key share. In the PSC deployment
// each computation party holds one; the effective encryption key is the
// sum of all party public keys, so decryption requires every party
// (n-of-n trust: one honest party suffices for privacy).
type PrivateKey struct {
	X  *big.Int
	PK Point
}

// GenerateKey creates a fresh key pair.
func GenerateKey() *PrivateKey {
	x := RandomScalar()
	return &PrivateKey{X: x, PK: BaseMul(x)}
}

// CombineKeys returns the joint public key: the sum of the given party
// public keys. Encrypting under the joint key means no subset of parties
// missing even one member can decrypt.
func CombineKeys(pks ...Point) (Point, error) {
	if len(pks) == 0 {
		return Point{}, errors.New("elgamal: no public keys to combine")
	}
	sum := Identity()
	for _, pk := range pks {
		if !pk.IsValid() {
			return Point{}, errors.New("elgamal: invalid public key")
		}
		sum = sum.Add(pk)
	}
	return sum, nil
}

// Ciphertext is an ElGamal ciphertext (C1, C2) = (r·G, M + r·PK).
type Ciphertext struct {
	C1, C2 Point
}

// Encrypt encrypts the message point under pk.
func Encrypt(pk Point, msg Point) Ciphertext {
	r := RandomScalar()
	return EncryptWith(pk, msg, r)
}

// EncryptWith encrypts with a caller-chosen randomizer; used by tests and
// by shuffle provers that must track their randomizers.
func EncryptWith(pk Point, msg Point, r *big.Int) Ciphertext {
	return Ciphertext{C1: BaseMul(r), C2: msg.Add(pk.Mul(r))}
}

// EncryptBit encrypts the PSC bin encoding of a bit: the identity point
// for 0 and the generator for 1.
func EncryptBit(pk Point, bit bool) Ciphertext {
	if bit {
		return Encrypt(pk, Generator())
	}
	return Encrypt(pk, Identity())
}

// Add returns the homomorphic sum: an encryption of the sum of the two
// plaintext points. Summing PSC bin ciphertexts across data collectors
// computes the OR in the exponent: the plaintext is identity iff every
// contribution was 0.
func (c Ciphertext) Add(d Ciphertext) Ciphertext {
	return Ciphertext{C1: c.C1.Add(d.C1), C2: c.C2.Add(d.C2)}
}

// Rerandomize refreshes the ciphertext so it is unlinkable to c while
// encrypting the same plaintext.
func (c Ciphertext) Rerandomize(pk Point) Ciphertext {
	return c.RerandomizeWith(pk, RandomScalar())
}

// RerandomizeWith refreshes with a caller-chosen randomizer.
func (c Ciphertext) RerandomizeWith(pk Point, r *big.Int) Ciphertext {
	return Ciphertext{C1: c.C1.Add(BaseMul(r)), C2: c.C2.Add(pk.Mul(r))}
}

// ExpBlind multiplies the plaintext by a random non-zero scalar by
// exponentiating both ciphertext halves. The identity plaintext stays
// the identity; any other plaintext becomes uniformly random. This is
// the PSC step that destroys everything about a bin except whether it
// was empty.
func (c Ciphertext) ExpBlind() Ciphertext {
	return c.ExpBlindWith(RandomScalar())
}

// ExpBlindWith blinds with a caller-chosen scalar.
func (c Ciphertext) ExpBlindWith(s *big.Int) Ciphertext {
	return Ciphertext{C1: c.C1.Mul(s), C2: c.C2.Mul(s)}
}

// IsValid reports whether both halves are valid group elements.
func (c Ciphertext) IsValid() bool { return c.C1.IsValid() && c.C2.IsValid() }

// Equal reports ciphertext equality (componentwise).
func (c Ciphertext) Equal(d Ciphertext) bool {
	return c.C1.Equal(d.C1) && c.C2.Equal(d.C2)
}

// Bytes encodes the ciphertext as the concatenation of its two points.
func (c Ciphertext) Bytes() []byte {
	return c.AppendTo(make([]byte, 0, 2*pointLen))
}

// AppendTo appends the ciphertext encoding to dst and returns the
// extended slice, letting vector encoders amortize one allocation over
// a whole batch.
func (c Ciphertext) AppendTo(dst []byte) []byte {
	return c.C2.AppendBytes(c.C1.AppendBytes(dst))
}

// ParseCiphertext decodes a ciphertext and returns bytes consumed.
func ParseCiphertext(b []byte) (Ciphertext, int, error) {
	c1, n1, err := ParsePoint(b)
	if err != nil {
		return Ciphertext{}, 0, err
	}
	c2, n2, err := ParsePoint(b[n1:])
	if err != nil {
		return Ciphertext{}, 0, err
	}
	return Ciphertext{C1: c1, C2: c2}, n1 + n2, nil
}

// DecryptionShare is one party's contribution x_i·C1 to removing the
// joint key from a ciphertext.
type DecryptionShare struct {
	Share Point
}

// PartialDecrypt computes this party's decryption share for c.
func (k *PrivateKey) PartialDecrypt(c Ciphertext) DecryptionShare {
	return DecryptionShare{Share: c.C1.Mul(k.X)}
}

// Recover combines all parties' shares to expose the plaintext point:
// M = C2 − Σ x_i·C1. Every share must be present.
func Recover(c Ciphertext, shares []DecryptionShare) Point {
	m := c.C2
	for _, s := range shares {
		m = m.Sub(s.Share)
	}
	return m
}

// Decrypt is single-party decryption, a convenience for tests.
func (k *PrivateKey) Decrypt(c Ciphertext) Point {
	return Recover(c, []DecryptionShare{k.PartialDecrypt(c)})
}
