package elgamal

// Variable-time multi-scalar multiplication: Σᵢ kᵢ·Pᵢ via Strauss
// interleaving with width-5 wNAF digits. All terms share one doubling
// chain — 256 doublings total no matter how many terms — so the
// marginal cost of a term is ~43 mixed additions plus a tiny odd-
// multiples precomputation. This is what makes random-linear-
// combination batch proof verification (verify.go) several times
// cheaper than verifying each Chaum–Pedersen equation with two full
// scalar multiplications.

import "math/big"

const (
	wnafWidth = 5
	// wnafTableSize is the number of odd multiples 1,3,...,2^(w-1)-1.
	wnafTableSize = 1 << (wnafWidth - 2)
)

// wnafDigits writes the width-w NAF of k (reduced mod the group order)
// into digits, returning the number of digit positions used. Digit i is
// zero or an odd value in [−2^(w−1)+1, 2^(w−1)−1].
func wnafDigits(k *big.Int, digits *[257]int8) int {
	var limbs [5]uint64 // one spare limb: wNAF can carry past bit 255
	limbsFromBig(limbs[:], k)
	n := 0
	pos := 0
	nonZero := limbs[0] | limbs[1] | limbs[2] | limbs[3] | limbs[4]
	for nonZero != 0 {
		if limbs[0]&1 == 0 {
			digits[pos] = 0
		} else {
			d := int64(limbs[0] & (1<<wnafWidth - 1))
			if d >= 1<<(wnafWidth-1) {
				d -= 1 << wnafWidth
			}
			digits[pos] = int8(d)
			// limbs -= d
			if d > 0 {
				borrow := uint64(d)
				for i := 0; i < 5 && borrow != 0; i++ {
					old := limbs[i]
					limbs[i] = old - borrow
					if old >= borrow {
						borrow = 0
					} else {
						borrow = 1
					}
				}
			} else {
				carry := uint64(-d)
				for i := 0; i < 5 && carry != 0; i++ {
					old := limbs[i]
					limbs[i] = old + carry
					if limbs[i] >= old {
						carry = 0
					} else {
						carry = 1
					}
				}
			}
		}
		// limbs >>= 1
		limbs[0] = limbs[0]>>1 | limbs[1]<<63
		limbs[1] = limbs[1]>>1 | limbs[2]<<63
		limbs[2] = limbs[2]>>1 | limbs[3]<<63
		limbs[3] = limbs[3]>>1 | limbs[4]<<63
		limbs[4] >>= 1
		pos++
		if digits[pos-1] != 0 {
			n = pos
		}
		nonZero = limbs[0] | limbs[1] | limbs[2] | limbs[3] | limbs[4]
	}
	return n
}

// msmTerm is one kᵢ·Pᵢ term. The scalar must already be reduced mod the
// group order; identity points and zero scalars are skipped.
type msmTerm struct {
	scalar *big.Int
	point  Point
}

// pippengerThreshold is the term count from which the bucket method
// beats Strauss interleaving: below it the per-window bucket
// aggregation overhead dominates, above it the absence of per-term
// precomputation wins.
const pippengerThreshold = 128

// multiScalarMul computes Σ kᵢ·Pᵢ in Jacobian coordinates, dispatching
// between Strauss interleaving (small batches) and the Pippenger bucket
// method (large batches). Returns false if any point fails curve
// validation (callers treat that as a verification failure, never a
// panic).
func multiScalarMul(dst *jacPoint, terms []msmTerm) bool {
	if len(terms) >= pippengerThreshold {
		return pippengerMSM(dst, terms)
	}
	return straussMSM(dst, terms)
}

// straussMSM is Strauss interleaving with width-5 wNAF digits.
//
// The per-term wNAF digits are transposed into per-bit-position buckets
// (a counting sort) before the shared doubling chain runs, so the main
// loop touches exactly the additions it performs in one sequential
// sweep — scanning every term at every bit position would cost more in
// cache misses than the field arithmetic itself.
func straussMSM(dst *jacPoint, terms []msmTerm) bool {
	digits := make([]int8, 0, 257*len(terms))
	lens := make([]int, 0, len(terms))
	live := make([]Point, 0, len(terms))
	var counts [257]int32
	maxLen := 0
	var scratch [257]int8
	for _, t := range terms {
		if t.scalar.Sign() == 0 || t.point.IsIdentity() {
			continue
		}
		var base affinePoint
		base.fromPoint(t.point)
		if !base.onCurve() {
			return false
		}
		n := wnafDigits(t.scalar, &scratch)
		if n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			if scratch[i] != 0 {
				counts[i]++
			}
		}
		digits = append(digits, scratch[:n]...)
		lens = append(lens, n)
		live = append(live, t.point)
		if n > maxLen {
			maxLen = n
		}
	}
	dst.setInfinity()
	if len(live) == 0 {
		return true
	}

	// Odd multiples 1P, 3P, ..., 15P per live term, accumulated in
	// Jacobian form and normalized together: one inversion for the
	// whole precomputation.
	jacOdd := make([]jacPoint, 0, len(live)*wnafTableSize)
	for _, p := range live {
		var single, twice jacPoint
		single.fromPoint(p)
		twice.double(&single)
		jacOdd = append(jacOdd, single)
		prev := single
		for m := 1; m < wnafTableSize; m++ {
			var next jacPoint
			next.add(&prev, &twice)
			jacOdd = append(jacOdd, next)
			prev = next
		}
	}
	odd := batchToAffine(jacOdd)

	// Transpose digits into contiguous per-position buckets: bucket i
	// holds an index into odd (with the digit's sign folded in as ±1
	// offsets, encoded as 2·idx or 2·idx+1 for negation).
	var offsets [258]int32
	for i := 0; i < 257; i++ {
		offsets[i+1] = offsets[i] + counts[i]
	}
	entries := make([]int32, offsets[257])
	var next [257]int32
	copy(next[:], offsets[:257])
	pos := 0
	for j, n := range lens {
		base := int32(j * wnafTableSize)
		for i := 0; i < n; i++ {
			d := digits[pos+i]
			if d == 0 {
				continue
			}
			var e int32
			if d > 0 {
				e = (base + int32(d>>1)) << 1
			} else {
				e = (base+int32((-d)>>1))<<1 | 1
			}
			entries[next[i]] = e
			next[i]++
		}
		pos += n
	}

	for i := maxLen - 1; i >= 0; i-- {
		dst.double(dst)
		for _, e := range entries[offsets[i]:offsets[i+1]] {
			if e&1 == 0 {
				dst.addMixed(dst, &odd[e>>1])
			} else {
				dst.subMixed(dst, &odd[e>>1])
			}
		}
	}
	return true
}

// pippengerWindow picks the signed-window width c minimizing
// (257/c)·(N·madd + 2^(c-1)·2·add) for N terms.
func pippengerWindow(n int) uint {
	best, bestCost := uint(6), ^uint64(0)
	for c := uint(6); c <= 13; c++ {
		windows := uint64((257 + int(c) - 1) / int(c))
		// Mixed bucket adds ~11 field muls, aggregation general adds ~16.
		cost := windows * (uint64(n)*11 + (uint64(1)<<(c-1))*2*16)
		if cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best
}

// pippengerMSM is the bucket method with signed base-2^c digits: for
// each of the 257/c windows it sorts every term's digit into a bucket,
// then folds the buckets with a running sum. No per-term
// precomputation, so the marginal term costs one bucket addition per
// window regardless of scalar width.
func pippengerMSM(dst *jacPoint, terms []msmTerm) bool {
	c := pippengerWindow(len(terms))
	windows := (257 + int(c) - 1) / int(c)
	half := int32(1) << (c - 1)

	points := make([]affinePoint, 0, len(terms))
	digits := make([]int32, 0, len(terms)*windows)
	for _, t := range terms {
		if t.scalar.Sign() == 0 || t.point.IsIdentity() {
			continue
		}
		var ap affinePoint
		ap.fromPoint(t.point)
		if !ap.onCurve() {
			return false
		}
		// Signed base-2^c decomposition: digit ∈ (−2^(c−1), 2^(c−1)].
		limbs := scalarLimbs(t.scalar)
		carry := int32(0)
		start := len(digits)
		digits = append(digits, make([]int32, windows)...)
		for w := 0; w < windows; w++ {
			bit := w * int(c)
			limb := bit >> 6
			off := uint(bit & 63)
			var raw uint64
			if limb < 4 {
				raw = limbs[limb] >> off
				if off+c > 64 && limb+1 < 4 {
					raw |= limbs[limb+1] << (64 - off)
				}
			}
			d := int32(raw&(1<<c-1)) + carry
			if d > half {
				d -= 1 << c
				carry = 1
			} else {
				carry = 0
			}
			digits[start+w] = d
		}
		// carry can only remain set if the scalar's top window
		// overflowed, impossible for reduced scalars (< 2^256 with two
		// spare top bits in the final window).
		points = append(points, ap)
	}
	dst.setInfinity()
	if len(points) == 0 {
		return true
	}

	buckets := make([]jacPoint, half)
	var windowSum, running jacPoint
	for w := windows - 1; w >= 0; w-- {
		if !dst.isInfinity() {
			for i := uint(0); i < c; i++ {
				dst.double(dst)
			}
		}
		for i := range buckets {
			buckets[i].setInfinity()
		}
		used := false
		for j := range points {
			d := digits[j*windows+w]
			if d > 0 {
				buckets[d-1].addMixed(&buckets[d-1], &points[j])
				used = true
			} else if d < 0 {
				buckets[-d-1].subMixed(&buckets[-d-1], &points[j])
				used = true
			}
		}
		if !used {
			continue
		}
		// Fold buckets: Σ b·bucket[b−1] via suffix running sums.
		windowSum.setInfinity()
		running.setInfinity()
		for b := int(half) - 1; b >= 0; b-- {
			running.add(&running, &buckets[b])
			windowSum.add(&windowSum, &running)
		}
		dst.add(dst, &windowSum)
	}
	return true
}
