package elgamal

import (
	"math/big"
	"testing"
)

func TestGroupBasics(t *testing.T) {
	g := Generator()
	id := Identity()
	if !id.IsIdentity() || !id.IsValid() {
		t.Fatal("identity must be valid and identity")
	}
	if g.IsIdentity() || !g.IsValid() {
		t.Fatal("generator must be valid non-identity")
	}
	if !g.Add(id).Equal(g) {
		t.Fatal("G + 0 != G")
	}
	if !g.Sub(g).IsIdentity() {
		t.Fatal("G - G != 0")
	}
	two := big.NewInt(2)
	if !g.Add(g).Equal(g.Mul(two)) {
		t.Fatal("G+G != 2G")
	}
	if !BaseMul(two).Equal(g.Mul(two)) {
		t.Fatal("BaseMul(2) != 2G")
	}
	if !g.Mul(Order()).IsIdentity() {
		t.Fatal("order·G != identity")
	}
	if !g.Neg().Add(g).IsIdentity() {
		t.Fatal("-G + G != 0")
	}
}

func TestPointEncoding(t *testing.T) {
	for _, p := range []Point{Identity(), Generator(), BaseMul(big.NewInt(12345))} {
		b := p.Bytes()
		q, n, err := ParsePoint(b)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		if !p.Equal(q) {
			t.Fatal("round trip mismatch")
		}
	}
	if _, _, err := ParsePoint(nil); err == nil {
		t.Fatal("empty encoding must fail")
	}
	if _, _, err := ParsePoint([]byte{9}); err == nil {
		t.Fatal("bad tag must fail")
	}
	// A coordinate pair off the curve must be rejected.
	bad := Generator().Bytes()
	bad[10] ^= 0xFF
	if _, _, err := ParsePoint(bad); err == nil {
		t.Fatal("off-curve point must fail")
	}
	if _, _, err := ParsePoint(Generator().Bytes()[:20]); err == nil {
		t.Fatal("short encoding must fail")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	k := GenerateKey()
	msg := BaseMul(big.NewInt(777))
	c := Encrypt(k.PK, msg)
	if !k.Decrypt(c).Equal(msg) {
		t.Fatal("decrypt(encrypt(m)) != m")
	}
}

func TestEncryptBit(t *testing.T) {
	k := GenerateKey()
	if !k.Decrypt(EncryptBit(k.PK, false)).IsIdentity() {
		t.Fatal("bit 0 must decrypt to identity")
	}
	if !k.Decrypt(EncryptBit(k.PK, true)).Equal(Generator()) {
		t.Fatal("bit 1 must decrypt to G")
	}
}

func TestHomomorphicAddIsORInExponent(t *testing.T) {
	k := GenerateKey()
	zero := EncryptBit(k.PK, false)
	one := EncryptBit(k.PK, true)

	sum00 := zero.Add(EncryptBit(k.PK, false))
	if !k.Decrypt(sum00).IsIdentity() {
		t.Fatal("0+0 must stay identity")
	}
	sum01 := zero.Add(one)
	if k.Decrypt(sum01).IsIdentity() {
		t.Fatal("0+1 must be non-identity")
	}
	sum11 := one.Add(EncryptBit(k.PK, true))
	if k.Decrypt(sum11).IsIdentity() {
		t.Fatal("1+1 must be non-identity (2G)")
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	k := GenerateKey()
	msg := BaseMul(big.NewInt(31337))
	c := Encrypt(k.PK, msg)
	c2 := c.Rerandomize(k.PK)
	if c2.Equal(c) {
		t.Fatal("rerandomization must change the ciphertext")
	}
	if !k.Decrypt(c2).Equal(msg) {
		t.Fatal("rerandomization must preserve the plaintext")
	}
}

func TestExpBlindPreservesZeroOnly(t *testing.T) {
	k := GenerateKey()
	zero := EncryptBit(k.PK, false).ExpBlind()
	if !k.Decrypt(zero).IsIdentity() {
		t.Fatal("blinded 0 must stay identity")
	}
	one := EncryptBit(k.PK, true)
	b1 := one.ExpBlind()
	b2 := one.ExpBlind()
	p1, p2 := k.Decrypt(b1), k.Decrypt(b2)
	if p1.IsIdentity() || p2.IsIdentity() {
		t.Fatal("blinded 1 must stay non-identity")
	}
	if p1.Equal(p2) {
		t.Fatal("independent blindings should give unlinkable plaintexts")
	}
}

func TestDistributedDecryption(t *testing.T) {
	parties := []*PrivateKey{GenerateKey(), GenerateKey(), GenerateKey()}
	pk, err := CombineKeys(parties[0].PK, parties[1].PK, parties[2].PK)
	if err != nil {
		t.Fatal(err)
	}
	msg := BaseMul(big.NewInt(99))
	c := Encrypt(pk, msg)

	var shares []DecryptionShare
	for _, p := range parties {
		shares = append(shares, p.PartialDecrypt(c))
	}
	if !Recover(c, shares).Equal(msg) {
		t.Fatal("full share set must recover the message")
	}
	// Missing one share must NOT recover the message.
	if Recover(c, shares[:2]).Equal(msg) {
		t.Fatal("partial share set must not recover the message")
	}
}

func TestCombineKeysRejectsInvalid(t *testing.T) {
	if _, err := CombineKeys(); err == nil {
		t.Fatal("no keys must fail")
	}
	if _, err := CombineKeys(Point{}); err == nil {
		t.Fatal("invalid key must fail")
	}
}

func TestCiphertextEncoding(t *testing.T) {
	k := GenerateKey()
	c := EncryptBit(k.PK, true)
	b := c.Bytes()
	c2, n, err := ParseCiphertext(b)
	if err != nil || n != len(b) {
		t.Fatalf("parse: %v (n=%d len=%d)", err, n, len(b))
	}
	if !c.Equal(c2) {
		t.Fatal("ciphertext round trip")
	}
	if _, _, err := ParseCiphertext(b[:3]); err == nil {
		t.Fatal("short ciphertext must fail")
	}
}

func TestChaumPedersenShareProof(t *testing.T) {
	parties := []*PrivateKey{GenerateKey(), GenerateKey()}
	pk, _ := CombineKeys(parties[0].PK, parties[1].PK)
	c := EncryptBit(pk, true)

	share := parties[0].PartialDecrypt(c)
	proof := parties[0].ProveShare(c, share)
	if !VerifyShare(parties[0].PK, c, share, proof) {
		t.Fatal("honest share proof must verify")
	}
	// Wrong share: computed with a different key.
	badShare := parties[1].PartialDecrypt(c)
	if VerifyShare(parties[0].PK, c, badShare, proof) {
		t.Fatal("proof must not verify a different share")
	}
	// Tampered response.
	tampered := proof
	tampered.Response = new(big.Int).Add(proof.Response, big.NewInt(1))
	if VerifyShare(parties[0].PK, c, share, tampered) {
		t.Fatal("tampered proof must fail")
	}
	// Malicious party lying about its share with a proof for its own key.
	lie := DecryptionShare{Share: BaseMul(big.NewInt(5))}
	lieProof := parties[0].ProveShare(c, lie)
	if VerifyShare(parties[0].PK, c, lie, lieProof) {
		t.Fatal("proof for an incorrect share must fail")
	}
}

func TestVerifyShareRejectsGarbage(t *testing.T) {
	k := GenerateKey()
	c := EncryptBit(k.PK, false)
	share := k.PartialDecrypt(c)
	if VerifyShare(k.PK, c, share, EqualityProof{}) {
		t.Fatal("empty proof must fail")
	}
	if VerifyShare(Point{}, c, share, k.ProveShare(c, share)) {
		t.Fatal("invalid pk must fail")
	}
}

func makeBatch(pk Point, bits []bool) []Ciphertext {
	out := make([]Ciphertext, len(bits))
	for i, b := range bits {
		out[i] = EncryptBit(pk, b)
	}
	return out
}

func TestShufflePreservesMultiset(t *testing.T) {
	k := GenerateKey()
	bits := []bool{true, false, true, true, false, false, false, true}
	in := makeBatch(k.PK, bits)
	out, _ := Shuffle(k.PK, in)
	if len(out) != len(in) {
		t.Fatal("length change")
	}
	ones := 0
	for _, c := range out {
		if !k.Decrypt(c).IsIdentity() {
			ones++
		}
	}
	if ones != 4 {
		t.Fatalf("shuffle changed plaintext multiset: %d ones, want 4", ones)
	}
}

func TestShuffleProofHonest(t *testing.T) {
	k := GenerateKey()
	in := makeBatch(k.PK, []bool{true, false, true, false, false})
	out, w := Shuffle(k.PK, in)
	proof := ProveShuffle(k.PK, in, out, w, 8)
	if err := VerifyShuffle(k.PK, in, out, proof); err != nil {
		t.Fatalf("honest shuffle proof rejected: %v", err)
	}
}

func TestShuffleProofCatchesTampering(t *testing.T) {
	k := GenerateKey()
	in := makeBatch(k.PK, []bool{true, false, true, false})
	out, w := Shuffle(k.PK, in)
	proof := ProveShuffle(k.PK, in, out, w, 16)

	// A cheating mixer replaces one output with an encryption of its own.
	cheat := make([]Ciphertext, len(out))
	copy(cheat, out)
	cheat[2] = EncryptBit(k.PK, true)
	if err := VerifyShuffle(k.PK, in, cheat, proof); err == nil {
		t.Fatal("tampered output batch must fail verification")
	}

	// Length mismatch and empty proof must fail fast.
	if err := VerifyShuffle(k.PK, in, out[:3], proof); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := VerifyShuffle(k.PK, in, out, ShuffleProof{}); err == nil {
		t.Fatal("empty proof must fail")
	}
}

func TestShuffleProofRejectsNonPermutation(t *testing.T) {
	k := GenerateKey()
	in := makeBatch(k.PK, []bool{true, false})
	out, w := Shuffle(k.PK, in)
	proof := ProveShuffle(k.PK, in, out, w, 4)
	proof.Rounds[0].OpenPerm = []int{0, 0} // duplicate index
	if err := VerifyShuffle(k.PK, in, out, proof); err == nil {
		t.Fatal("non-permutation opening must fail")
	}
}

func TestRandomScalarInRange(t *testing.T) {
	for i := 0; i < 32; i++ {
		s := RandomScalar()
		if s.Sign() <= 0 || s.Cmp(Order()) >= 0 {
			t.Fatalf("scalar out of range: %v", s)
		}
	}
}

func TestRandomPermIsPermutation(t *testing.T) {
	for n := 1; n <= 16; n++ {
		if !isPerm(randomPerm(n)) {
			t.Fatalf("randomPerm(%d) not a permutation", n)
		}
	}
}

func BenchmarkEncryptBit(b *testing.B) {
	k := GenerateKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncryptBit(k.PK, i%2 == 0)
	}
}

func BenchmarkExpBlind(b *testing.B) {
	k := GenerateKey()
	c := EncryptBit(k.PK, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ExpBlind()
	}
}

func BenchmarkShuffle64(b *testing.B) {
	k := GenerateKey()
	in := makeBatch(k.PK, make([]bool, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shuffle(k.PK, in)
	}
}
