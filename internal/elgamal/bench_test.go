package elgamal

// BenchmarkGroupOps measures the group core per element across three
// arms wherever they exist:
//
//   - affine-ref: textbook affine math/big arithmetic (one inversion
//     per point addition, double-and-add multiplication) — the
//     "per-element affine path" the Jacobian rewrite replaces;
//   - stdlib:     the deprecated crypto/elliptic entry points the old
//     code actually called (assembly-backed on amd64);
//   - batch:      the new Jacobian/table/batch pipeline.
//
// All arms report ns per element so the sub-benchmarks compare
// directly. See PERF.md for recorded numbers.

import (
	"math/big"
	"testing"
)

const benchBatch = 512

// perBatch runs fn over batches whose sizes total b.N, so ns/op is per
// element even for batched implementations.
func perBatch(b *testing.B, fn func(n int)) {
	b.ResetTimer()
	for remaining := b.N; remaining > 0; remaining -= benchBatch {
		n := benchBatch
		if remaining < n {
			n = remaining
		}
		fn(n)
	}
}

func benchScalars(n int) []*big.Int { return RandomScalars(n) }

func BenchmarkGroupOps(b *testing.B) {
	ks := benchScalars(benchBatch)
	base := stdlibBaseMul(RandomScalar())
	points := BatchBaseMul(benchScalars(benchBatch))
	points2 := BatchBaseMul(benchScalars(benchBatch))

	b.Run("BaseMul/affine-ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refAffineBaseMul(ks[i%benchBatch])
		}
	})
	b.Run("BaseMul/stdlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stdlibBaseMul(ks[i%benchBatch])
		}
	})
	b.Run("BaseMul/table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BaseMul(ks[i%benchBatch])
		}
	})
	b.Run("BaseMul/batch", func(b *testing.B) {
		perBatch(b, func(n int) { BatchBaseMul(ks[:n]) })
	})

	b.Run("Mul/stdlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stdlibMul(base, ks[i%benchBatch])
		}
	})
	b.Run("Mul/batch", func(b *testing.B) {
		perBatch(b, func(n int) { BatchMul(base, ks[:n]) })
	})

	b.Run("Add/affine-ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refAffineAdd(points[i%benchBatch], points2[i%benchBatch])
		}
	})
	b.Run("Add/stdlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stdlibAdd(points[i%benchBatch], points2[i%benchBatch])
		}
	})
	b.Run("Add/single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			points[i%benchBatch].Add(points2[i%benchBatch])
		}
	})
	b.Run("Add/batch", func(b *testing.B) {
		perBatch(b, func(n int) { BatchAdd(points[:n], points2[:n]) })
	})
}

// BenchmarkCiphertextOps measures the protocol-level vector operations
// per element: encryption, re-randomization, blinding, decryption
// shares, and the proof verifications that dominate a verified PSC
// round.
func BenchmarkCiphertextOps(b *testing.B) {
	key := GenerateKey()
	Precompute(key.PK)
	bits := make([]bool, benchBatch)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	cts, rs := BatchEncryptBits(key.PK, bits)
	_ = rs

	b.Run("EncryptBit/old", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EncryptBit(key.PK, i%2 == 0)
		}
	})
	b.Run("EncryptBit/batch", func(b *testing.B) {
		perBatch(b, func(n int) { BatchEncryptBits(key.PK, bits[:n]) })
	})

	b.Run("Rerandomize/old", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cts[i%benchBatch].Rerandomize(key.PK)
		}
	})
	b.Run("Rerandomize/batch", func(b *testing.B) {
		perBatch(b, func(n int) { BatchRerandomize(key.PK, cts[:n]) })
	})

	b.Run("PartialDecrypt/old", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			key.PartialDecrypt(cts[i%benchBatch])
		}
	})
	b.Run("PartialDecrypt/batch", func(b *testing.B) {
		perBatch(b, func(n int) { key.BatchPartialDecrypt(cts[:n]) })
	})

	shares := key.BatchPartialDecrypt(cts)
	shareProofs := key.BatchProveShares(cts, shares)
	b.Run("VerifyShare/old", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := i % benchBatch
			if !VerifyShare(key.PK, cts[j], shares[j], shareProofs[j]) {
				b.Fatal("share proof rejected")
			}
		}
	})
	b.Run("VerifyShare/batch", func(b *testing.B) {
		perBatch(b, func(n int) {
			if _, ok := VerifySharesBatch(key.PK, cts[:n], shares[:n], shareProofs[:n]); !ok {
				b.Fatal("share batch rejected")
			}
		})
	})

	blinded, ss := BatchExpBlind(cts)
	blindProofs := BatchProveBlinds(cts, blinded, ss)
	b.Run("VerifyBlind/old", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := i % benchBatch
			if !VerifyBlind(cts[j], blinded[j], blindProofs[j]) {
				b.Fatal("blind proof rejected")
			}
		}
	})
	b.Run("VerifyBlind/batch", func(b *testing.B) {
		perBatch(b, func(n int) {
			if _, ok := VerifyBlindsBatch(cts[:n], blinded[:n], blindProofs[:n]); !ok {
				b.Fatal("blind batch rejected")
			}
		})
	})

	bitProofs := BatchProveBits(key.PK, cts, bits, rs)
	b.Run("VerifyBit/old", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := i % benchBatch
			if !VerifyBit(key.PK, cts[j], bitProofs[j]) {
				b.Fatal("bit proof rejected")
			}
		}
	})
	b.Run("VerifyBit/batch", func(b *testing.B) {
		perBatch(b, func(n int) {
			if _, ok := VerifyBitsBatch(key.PK, cts[:n], bitProofs[:n]); !ok {
				b.Fatal("bit batch rejected")
			}
		})
	})
}

// BenchmarkRandomScalar isolates the buffered-entropy win over a
// syscall per scalar.
func BenchmarkRandomScalar(b *testing.B) {
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RandomScalar()
		}
	})
	b.Run("bulk", func(b *testing.B) {
		perBatch(b, func(n int) { RandomScalars(n) })
	})
}
