// Package engine is the multi-round scheduler shared by the in-process
// experiment harness and the deployed daemons. Parties register their
// multiplexed sessions once; the tally-side Engine then schedules any
// number of PSC and PrivCount rounds, sequentially or concurrently,
// each round riding its own streams of the persistent per-party
// connections. A failed or aborted round resets only its own streams —
// the sessions, party keys, and every other in-flight round survive.
//
// # Key types
//
//   - Engine: the tally-side scheduler. Sessions attach via
//     AcceptSession (the acked hello handshake) or the Add* methods
//     (in-process, no handshake); StartPSC and StartPrivCount schedule
//     rounds over the registered fleet.
//   - Hello / HelloAck: the session-registration exchange. A Hello
//     carries the party's role, name, pinned identity (ID, defaulting
//     to the name), and registration token.
//   - Round: one scheduled measurement round. Wait* blocks for the
//     outcome, Abort cancels it in isolation, Absent lists parties the
//     round completed without.
//   - QuorumPolicy: the per-protocol degradation rule (MinDCs); see
//     below.
//   - ReconnectLoop: the party-daemon dial/serve/backoff loop.
//
// # Party churn
//
// The engine keeps an identity-pinned registry rather than a fixed
// party set. Every party is keyed by (role, ID) and bound to its
// registration token on first contact; a party whose session dies
// enters the disconnected state, and a reconnecting daemon presenting
// the same identity and token is rebound to its registry entry —
// latest-wins, with any previous live session closed. A token mismatch
// is rejected (ErrRejected, constant-time comparison), and so is any
// rejoin of an identity pinned without a token: token-less identities
// stay bound to their first session, since an empty token would let
// anyone who knows the name hijack it. Rounds snapshot their
// membership at scheduling time: a party that drops mid-round may
// resume on its rejoined session while its contribution barrier has
// not been passed (the engine waits up to the SetRejoinGrace window
// and reopens the round stream); past the barrier the party is
// declared absent and the round degrades under the QuorumPolicy —
// completing with the absence annotated — aborting only when quorum is
// genuinely lost.
//
// # Invariants
//
//   - PSC rounds require every CP (the joint ElGamal key is an n-of-n
//     threshold) and PrivCount rounds require every SK (each holds
//     blinding state nobody else can reproduce): QuorumPolicy tunes
//     only data-collector coverage.
//   - A round claims exactly one outcome: completed (possibly
//     degraded), failed, or deadline-exceeded — the watchdog and the
//     round goroutine arbitrate through the finishing/deadlineFired
//     claim, and degradation is counted only for completed rounds.
//   - Aborting or failing a round never tears down sessions; only
//     Engine.Close does.
package engine
