package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/dp"
	"repro/internal/metrics"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/wire"
)

// dcRound is one data-collector role delivered to the test "harness":
// the per-round DC object plus the channel the harness closes once it
// has finished (or abandoned) the round.
type dcRound struct {
	host int
	psc  *psc.DC
	priv *privcount.DC
	done chan struct{}
}

// testFleet wires an engine to in-process parties over piped sessions:
// every party registers once and serves all subsequent rounds over its
// single multiplexed connection.
func testFleet(t *testing.T, numCPs, numSKs, numDCs int) (*Engine, chan dcRound) {
	t.Helper()
	e := New()
	rounds := make(chan dcRound, 64)

	attach := func() (*wire.Session, *wire.Session) {
		tsConn, partyConn := wire.Pipe()
		return wire.NewSession(tsConn, false), wire.NewSession(partyConn, true)
	}
	accept := func(ts *wire.Session) {
		t.Helper()
		if _, err := e.AcceptSession(ts); err != nil {
			t.Fatalf("accept session: %v", err)
		}
	}

	for i := 0; i < numCPs; i++ {
		ts, party := attach()
		go ServeCP(party, fmt.Sprintf("cp-%d", i), nil)
		accept(ts)
	}
	for i := 0; i < numSKs; i++ {
		ts, party := attach()
		go ServeSK(party, fmt.Sprintf("sk-%d", i))
		accept(ts)
	}
	for i := 0; i < numDCs; i++ {
		ts, party := attach()
		i := i
		name := fmt.Sprintf("dc-%d", i)
		go func() {
			if err := SendHello(party, RoleDC, name); err != nil {
				return
			}
			ServeRounds(party, func(st *wire.Stream) error {
				switch st.Label() {
				case LabelPSC:
					dc := psc.NewDC(name, st)
					if err := dc.Setup(); err != nil {
						return err
					}
					r := dcRound{host: i, psc: dc, done: make(chan struct{})}
					rounds <- r
					<-r.done
					return nil
				case LabelPrivCount:
					dc := privcount.NewDC(name, st, nil)
					if err := dc.Setup(); err != nil {
						return err
					}
					r := dcRound{host: i, priv: dc, done: make(chan struct{})}
					rounds <- r
					<-r.done
					return nil
				default:
					return fmt.Errorf("unexpected stream %q", st.Label())
				}
			})
		}()
		accept(ts)
	}
	t.Cleanup(e.Close)
	return e, rounds
}

// collect waits for n DC deliveries, failing the test on timeout or if
// a round in the set errors out first.
func collect(t *testing.T, rounds chan dcRound, n int, watch ...*Round) []dcRound {
	t.Helper()
	out := make([]dcRound, 0, n)
	timeout := time.After(2 * time.Minute)
	for len(out) < n {
		select {
		case r := <-rounds:
			out = append(out, r)
		case <-timeout:
			t.Fatalf("collected %d of %d DC roles", len(out), n)
		}
		for _, w := range watch {
			select {
			case <-w.Done():
				if w.Err() != nil {
					t.Fatalf("round %d failed during setup: %v", w.ID, w.Err())
				}
			default:
			}
		}
	}
	return out
}

// TestConcurrentPSCAndPrivCountRounds runs the acceptance scenario: a
// 2048-bin PSC round and a PrivCount round at the same time, with each
// data-collector host carrying both rounds over its one multiplexed
// connection, and verifies both produce correct results.
func TestConcurrentPSCAndPrivCountRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full concurrent rounds skipped in -short mode")
	}
	e, rounds := testFleet(t, 2, 2, 2)

	pscRound, err := e.StartPSC(psc.Config{
		Bins: 2048, NoisePerCP: 0, ShuffleProofRounds: 1, NumDCs: 2, NumCPs: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	privRound, err := e.StartPrivCount(privcount.TallyConfig{
		Stats:  []privcount.StatConfig{{Name: "streams", Bins: []string{"a", "b"}, Sigma: 0}},
		NumDCs: 2, NumSKs: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pscRound.ID == privRound.ID {
		t.Fatalf("rounds share an ID: %d", pscRound.ID)
	}

	// Both rounds' DC roles arrive interleaved over the same sessions.
	var pscDCs []*psc.DC
	var privDCs []*privcount.DC
	var all []dcRound
	for _, r := range collect(t, rounds, 4, pscRound, privRound) {
		all = append(all, r)
		if r.psc != nil {
			pscDCs = append(pscDCs, r.psc)
		} else {
			privDCs = append(privDCs, r.priv)
		}
	}
	if len(pscDCs) != 2 || len(privDCs) != 2 {
		t.Fatalf("got %d PSC and %d PrivCount DC roles", len(pscDCs), len(privDCs))
	}

	// Feed both measurements, then finish everything.
	for i, dc := range pscDCs {
		for k := 0; k < 40; k++ {
			dc.Observe(fmt.Sprintf("client-%d", k+i*20)) // 20 overlap across DCs
		}
	}
	for _, dc := range privDCs {
		dc.Increment("streams", 0, 10)
		dc.Increment("streams", 1, 2)
	}
	for _, dc := range pscDCs {
		if err := dc.Finish(); err != nil {
			t.Fatalf("psc finish: %v", err)
		}
	}
	for _, dc := range privDCs {
		if err := dc.Finish(); err != nil {
			t.Fatalf("privcount finish: %v", err)
		}
	}
	for _, r := range all {
		close(r.done)
	}

	pscRes, err := pscRound.WaitPSC()
	if err != nil {
		t.Fatalf("psc round: %v", err)
	}
	// 60 distinct items in 2048 bins, no noise: collisions are rare but
	// possible, so allow a small deficit.
	if pscRes.Reported < 55 || pscRes.Reported > 60 {
		t.Fatalf("psc reported %d, want ~60", pscRes.Reported)
	}
	privRes, err := privRound.WaitPrivCount()
	if err != nil {
		t.Fatalf("privcount round: %v", err)
	}
	if got := privRes["streams"][0]; got != 20 {
		t.Fatalf("streams/a = %v, want 20", got)
	}
	if got := privRes["streams"][1]; got != 4 {
		t.Fatalf("streams/b = %v, want 4", got)
	}
}

// TestAccountantRefusesOverBudgetRounds wires a budget-capped
// accountant into the engine: rounds within budget schedule, the round
// that would exceed (ε,δ) is refused with a clear error, and no
// streams are opened for it.
func TestAccountantRefusesOverBudgetRounds(t *testing.T) {
	e, rounds := testFleet(t, 2, 1, 2)
	acct := dp.StudyAccountant()
	per := dp.StudyParams()
	if err := acct.SetBudget(dp.Params{Epsilon: 2 * per.Epsilon, Delta: 2 * per.Delta}); err != nil {
		t.Fatal(err)
	}
	e.SetAccountant(acct)

	small := psc.Config{Bins: 64, NoisePerCP: 2, ShuffleProofRounds: 1, NumDCs: 2, NumCPs: 2}
	var done []*Round
	for i := 0; i < 2; i++ {
		r, err := e.StartPSC(small, nil)
		if err != nil {
			t.Fatalf("round %d within budget refused: %v", i+1, err)
		}
		done = append(done, r)
	}
	// The third round would spend 3×(ε,δ) against a 2× budget.
	if _, err := e.StartPSC(small, nil); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("over-budget round error = %v, want ErrBudgetExhausted", err)
	}
	if got := acct.Rounds(); got != 2 {
		t.Fatalf("accountant recorded %d rounds, want 2", got)
	}
	// The admitted rounds still run to completion.
	for _, r := range collect(t, rounds, 4, done...) {
		r.psc.Observe("item")
		if err := r.psc.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		close(r.done)
	}
	for _, r := range done {
		if _, err := r.WaitPSC(); err != nil {
			t.Fatalf("in-budget round failed: %v", err)
		}
	}
}

// TestRoundDeadlineAbortsStalledRound starts a round whose DCs never
// finish; the engine's deadline watchdog must abort it automatically,
// leaving the sessions healthy for the next round.
func TestRoundDeadlineAbortsStalledRound(t *testing.T) {
	e, rounds := testFleet(t, 2, 1, 2)
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	// Long enough for the DCs to attach even on a loaded 1-vCPU CI
	// runner, short enough to keep the test quick.
	e.SetRoundDeadline(2 * time.Second)

	small := psc.Config{Bins: 64, NoisePerCP: 2, ShuffleProofRounds: 1, NumDCs: 2, NumCPs: 2}
	stalled, err := e.StartPSC(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The DCs attach but never Observe/Finish: the round stalls.
	stalledDCs := collect(t, rounds, 2, stalled)
	_, err = stalled.WaitPSC()
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("stalled round error = %v, want a deadline abort", err)
	}
	for _, r := range stalledDCs {
		close(r.done)
	}
	if got := reg.Get("engine/" + LabelPSC + "/rounds-deadline-exceeded"); got != 1 {
		t.Errorf("deadline-exceeded counter = %g, want 1", got)
	}
	if got := reg.Get("engine/" + LabelPSC + "/rounds-failed"); got != 1 {
		t.Errorf("rounds-failed counter = %g, want 1", got)
	}

	// A prompt round on the same sessions completes well within a fresh
	// deadline.
	e.SetRoundDeadline(2 * time.Minute)
	quick, err := e.StartPSC(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range collect(t, rounds, 2, quick) {
		r.psc.Observe("item")
		if err := r.psc.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		close(r.done)
	}
	if _, err := quick.WaitPSC(); err != nil {
		t.Fatalf("post-deadline round failed: %v", err)
	}
	st := quick.Stats()
	if st.Seconds <= 0 || st.BytesSent <= 0 || st.BytesRecv <= 0 {
		t.Errorf("round stats not recorded: %+v", st)
	}
	if got := reg.Get("engine/" + LabelPSC + "/rounds-completed"); got != 1 {
		t.Errorf("rounds-completed counter = %g, want 1", got)
	}
	if got := reg.Get("engine/" + LabelPSC + "/stream-bytes-sent"); got <= 0 {
		t.Errorf("stream-bytes-sent = %g, want > 0", got)
	}
}

// TestRoundFailureIsolation aborts one round mid-flight while a sibling
// round shares the same party sessions, then schedules another round:
// the abort must neither kill the sessions nor the sibling.
func TestRoundFailureIsolation(t *testing.T) {
	e, rounds := testFleet(t, 2, 1, 2)

	small := psc.Config{Bins: 64, NoisePerCP: 2, ShuffleProofRounds: 1, NumDCs: 2, NumCPs: 2}
	doomed, err := e.StartPSC(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := e.StartPSC(small, nil)
	if err != nil {
		t.Fatal(err)
	}

	var doomedDCs, survivorDCs []dcRound
	for _, r := range collect(t, rounds, 4, doomed, survivor) {
		if r.psc.Round() == doomed.ID {
			doomedDCs = append(doomedDCs, r)
		} else {
			survivorDCs = append(survivorDCs, r)
		}
	}
	if len(doomedDCs) != 2 || len(survivorDCs) != 2 {
		t.Fatalf("round assignment: %d doomed, %d survivor", len(doomedDCs), len(survivorDCs))
	}

	doomed.Abort("operator cancelled")
	if _, err := doomed.WaitPSC(); err == nil || !strings.Contains(err.Error(), "operator cancelled") {
		t.Fatalf("doomed round error = %v, want the abort reason", err)
	}
	for _, r := range doomedDCs {
		close(r.done) // release the host's handler; Finish was never called
	}

	// The sibling completes on the same sessions.
	for i, r := range survivorDCs {
		r.psc.Observe(fmt.Sprintf("item-%d", i))
		if err := r.psc.Finish(); err != nil {
			t.Fatalf("survivor finish: %v", err)
		}
		close(r.done)
	}
	if _, err := survivor.WaitPSC(); err != nil {
		t.Fatalf("survivor round: %v", err)
	}

	// And the engine schedules fresh rounds afterwards.
	again, err := e.StartPSC(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range collect(t, rounds, 2, again) {
		if err := r.psc.Finish(); err != nil {
			t.Fatalf("post-abort finish: %v", err)
		}
		close(r.done)
	}
	if _, err := again.WaitPSC(); err != nil {
		t.Fatalf("post-abort round: %v", err)
	}
}

// TestBudgetRefundedWhenOpenFails: a round that passes admission but
// cannot open its streams (dead session) must not consume budget.
func TestBudgetRefundedWhenOpenFails(t *testing.T) {
	e := New()
	acct := dp.StudyAccountant()
	if err := acct.SetBudget(dp.StudyParams()); err != nil { // one round only
		t.Fatal(err)
	}
	e.SetAccountant(acct)

	tsConn, partyConn := wire.Pipe()
	ts := wire.NewSession(tsConn, false)
	e.AddCP("cp-dead", ts)
	tsConn2, partyConn2 := wire.Pipe()
	ts2 := wire.NewSession(tsConn2, false)
	e.AddDC("dc-dead", ts2)
	// Kill both sessions before scheduling: stream-open must fail.
	partyConn.Close()
	partyConn2.Close()
	ts.Close()
	ts2.Close()

	small := psc.Config{Bins: 64, NoisePerCP: 2, ShuffleProofRounds: 1, NumDCs: 1, NumCPs: 1}
	if _, err := e.StartPSC(small, nil); err == nil {
		t.Fatal("StartPSC over dead sessions succeeded")
	} else if errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("open failure surfaced as a budget refusal: %v", err)
	}
	if got := acct.Rounds(); got != 0 {
		t.Fatalf("failed round consumed budget: %d rounds recorded", got)
	}
}
