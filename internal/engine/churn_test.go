package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/psc"
	"repro/internal/wire"
)

// churnDC is one restartable in-process data-collector daemon: each
// "process incarnation" gets a fresh session registered through the
// real hello handshake, serving PSC round streams until its session
// dies. Killing it closes the party-side session, which is what a
// killed daemon process looks like from the tally's side.
type churnDC struct {
	t     *testing.T
	e     *Engine
	name  string
	token string

	sess   *wire.Session // party side of the current incarnation
	rounds chan dcRound
}

func newChurnDC(t *testing.T, e *Engine, name, token string, rounds chan dcRound) *churnDC {
	d := &churnDC{t: t, e: e, name: name, token: token, rounds: rounds}
	d.start()
	return d
}

// start brings up a fresh incarnation: dial (pipe), pinned hello,
// round-serving loop.
func (d *churnDC) start() {
	d.t.Helper()
	tsConn, partyConn := wire.Pipe()
	tsSess := wire.NewSession(tsConn, false)
	partySess := wire.NewSession(partyConn, true)
	hello := Hello{Role: RoleDC, Name: d.name, Token: d.token}
	errCh := make(chan error, 1)
	go func() {
		if _, err := d.e.AcceptSession(tsSess); err != nil {
			errCh <- err
		}
	}()
	if _, err := SendHelloPinned(partySess, hello); err != nil {
		d.t.Fatalf("churn dc %s register: %v", d.name, err)
	}
	select {
	case err := <-errCh:
		d.t.Fatalf("churn dc %s accept: %v", d.name, err)
	default:
	}
	d.sess = partySess
	go ServeRounds(partySess, func(st *wire.Stream) error {
		dc := psc.NewDC(d.name, st)
		if err := dc.Setup(); err != nil {
			return err
		}
		r := dcRound{psc: dc, done: make(chan struct{})}
		d.rounds <- r
		<-r.done
		return nil
	})
}

// kill closes the current incarnation's session, as a SIGKILL would.
func (d *churnDC) kill() { d.sess.Close() }

// churnFleet builds an engine with CPs over piped sessions plus n
// restartable DCs.
func churnFleet(t *testing.T, numCPs, numDCs int) (*Engine, []*churnDC, chan dcRound) {
	t.Helper()
	e := New()
	rounds := make(chan dcRound, 64)
	for i := 0; i < numCPs; i++ {
		tsConn, partyConn := wire.Pipe()
		ts := wire.NewSession(tsConn, false)
		party := wire.NewSession(partyConn, true)
		go ServeCP(party, fmt.Sprintf("cp-%d", i), nil)
		if _, err := e.AcceptSession(ts); err != nil {
			t.Fatalf("accept cp: %v", err)
		}
	}
	dcs := make([]*churnDC, numDCs)
	for i := range dcs {
		dcs[i] = newChurnDC(t, e, fmt.Sprintf("dc-%d", i), fmt.Sprintf("secret-%d", i), rounds)
	}
	t.Cleanup(e.Close)
	return e, dcs, rounds
}

var smallPSC = psc.Config{Bins: 64, NoisePerCP: 2, ShuffleProofRounds: 1, NumCPs: 2, NumDCs: 2}

// TestRejoinWrongTokenRejected: a session claiming a registered
// identity with the wrong token must be rejected with an explicit ack,
// and the pinned member must keep its original session.
func TestRejoinWrongTokenRejected(t *testing.T) {
	e, dcs, rounds := churnFleet(t, 2, 2)

	tsConn, partyConn := wire.Pipe()
	ts := wire.NewSession(tsConn, false)
	party := wire.NewSession(partyConn, true)
	go e.AcceptSession(ts)
	_, err := SendHelloPinned(party, Hello{Role: RoleDC, Name: "dc-0", Token: "stolen"})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("hijack registration error = %v, want ErrRejected", err)
	}
	if _, _, got := e.Counts(); got != 2 {
		t.Fatalf("registry has %d DCs after rejected hijack, want 2", got)
	}

	// The legitimate fleet is untouched: a round over it completes.
	r, err := e.StartPSC(smallPSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range collect(t, rounds, 2, r) {
		d.psc.Observe("item")
		if err := d.psc.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		close(d.done)
	}
	if _, err := r.WaitPSC(); err != nil {
		t.Fatalf("round after rejected hijack: %v", err)
	}
	_ = dcs
}

// TestRejoinLatestWins: two live sessions claiming the same pinned
// identity resolve latest-wins — the newer session serves, the older
// one is closed by the engine.
func TestRejoinLatestWins(t *testing.T) {
	e, dcs, rounds := churnFleet(t, 2, 2)

	old := dcs[1].sess
	dcs[1].start() // second incarnation registers while the first is still live
	select {
	case <-old.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("old session not closed after latest-wins takeover")
	}
	if cps, _, dcCount := e.Counts(); cps != 2 || dcCount != 2 {
		t.Fatalf("counts after takeover: %d CPs, %d DCs; want 2, 2", cps, dcCount)
	}

	// Rounds reach the new incarnation.
	r, err := e.StartPSC(smallPSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range collect(t, rounds, 2, r) {
		if err := d.psc.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}
		close(d.done)
	}
	if _, err := r.WaitPSC(); err != nil {
		t.Fatalf("round after takeover: %v", err)
	}
}

// TestMidRoundKillDegradesThenFullStrength is the tentpole scenario at
// the engine level: a DC's session dies mid-round after its table
// upload began; under a k-of-n quorum the round completes degraded with
// the absence annotated, and — once the DC re-registers under its
// pinned identity — the next round runs at full strength.
func TestMidRoundKillDegradesThenFullStrength(t *testing.T) {
	e, dcs, rounds := churnFleet(t, 2, 2)
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	e.SetQuorum(QuorumPolicy{MinDCs: 1})

	r, err := e.StartPSC(smallPSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	roles := collect(t, rounds, 2, r)
	var survivor dcRound
	for _, d := range roles {
		if d.psc.Name == "dc-1" {
			// Feed the doomed DC and begin its upload so its contribution
			// barrier is passed, then kill it mid-round.
			d.psc.Observe("doomed-item")
		} else {
			survivor = d
		}
	}
	dcs[1].kill()
	survivor.psc.Observe("item-a")
	survivor.psc.Observe("item-b")
	if err := survivor.psc.Finish(); err != nil {
		t.Fatalf("survivor finish: %v", err)
	}
	res, err := r.WaitPSC()
	if err != nil {
		t.Fatalf("degraded round failed: %v", err)
	}
	for _, d := range roles {
		close(d.done)
	}
	if len(res.AbsentDCs) != 1 || res.AbsentDCs[0] != "dc-1" {
		t.Fatalf("AbsentDCs = %v, want [dc-1]", res.AbsentDCs)
	}
	if got := r.Absent(); len(got) != 1 || got[0] != "dc-1" {
		t.Fatalf("round Absent() = %v, want [dc-1]", got)
	}
	if !r.Degraded() {
		t.Fatal("round not marked degraded")
	}
	if got := reg.Get("engine/" + LabelPSC + "/rounds-degraded"); got != 1 {
		t.Errorf("rounds-degraded = %g, want 1", got)
	}
	if got := reg.Get("engine/" + LabelPSC + "/rounds-completed"); got != 1 {
		t.Errorf("rounds-completed = %g, want 1", got)
	}

	// The DC restarts and re-registers under its pinned identity.
	dcs[1].start()
	full, err := e.StartPSC(smallPSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range collect(t, rounds, 2, full) {
		d.psc.Observe("fresh-item")
		if err := d.psc.Finish(); err != nil {
			t.Fatalf("full-strength finish: %v", err)
		}
		close(d.done)
	}
	fullRes, err := full.WaitPSC()
	if err != nil {
		t.Fatalf("full-strength round failed: %v", err)
	}
	if len(fullRes.AbsentDCs) != 0 || full.Degraded() {
		t.Fatalf("post-rejoin round degraded: absent %v", fullRes.AbsentDCs)
	}
	if got := reg.Get("engine/parties-rejoined"); got != 1 {
		t.Errorf("parties-rejoined = %g, want 1", got)
	}
	if got := reg.Get("engine/parties-disconnected"); got != 1 {
		t.Errorf("parties-disconnected = %g, want 1", got)
	}
}

// TestRejoinResumesRoundBeforeBarrier: a DC killed before its table
// upload starts rejoins within the grace window, and the engine reopens
// the in-flight round's stream on the new session — the round completes
// at full strength, no degradation.
func TestRejoinResumesRoundBeforeBarrier(t *testing.T) {
	e, dcs, rounds := churnFleet(t, 2, 2)
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	e.SetQuorum(QuorumPolicy{MinDCs: 1})
	e.SetRejoinGrace(time.Minute)

	r, err := e.StartPSC(smallPSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	roles := collect(t, rounds, 2, r)
	dcs[1].kill() // before any Finish: no table chunk combined yet
	dcs[1].start()

	// The reopened stream delivers a fresh DC role for the same round.
	var fresh dcRound
	deadline := time.After(2 * time.Minute)
	for fresh.psc == nil {
		select {
		case d := <-rounds:
			if d.psc.Round() != r.ID {
				t.Fatalf("unexpected round %d delivery", d.psc.Round())
			}
			fresh = d
		case <-deadline:
			t.Fatal("rejoined DC never received a reopened round stream")
		}
	}
	finish := func(d dcRound) {
		if d.psc.Name == "dc-1" && d.done != fresh.done && d.psc != fresh.psc {
			// The first incarnation's role died with its session.
			close(d.done)
			return
		}
		d.psc.Observe("item-" + d.psc.Name)
		if err := d.psc.Finish(); err != nil {
			t.Fatalf("finish %s: %v", d.psc.Name, err)
		}
		close(d.done)
	}
	for _, d := range roles {
		finish(d)
	}
	finish(fresh)
	res, err := r.WaitPSC()
	if err != nil {
		t.Fatalf("resumed round failed: %v", err)
	}
	if len(res.AbsentDCs) != 0 {
		t.Fatalf("resumed round degraded: absent %v", res.AbsentDCs)
	}
	if got := reg.Get("engine/" + LabelPSC + "/parties-reattached"); got != 1 {
		t.Errorf("parties-reattached = %g, want 1", got)
	}
}

// TestGraceExpiryDegradesExactlyOnce drills the double-abort race: a
// dead DC plus a round deadline must resolve to exactly one outcome —
// degraded completion when the grace window expires first, or a single
// deadline failure when the watchdog wins — never both.
func TestGraceExpiryDegradesExactlyOnce(t *testing.T) {
	// Grace far shorter than the deadline: degradation wins.
	e, dcs, rounds := churnFleet(t, 2, 2)
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	e.SetQuorum(QuorumPolicy{MinDCs: 1})
	e.SetRejoinGrace(100 * time.Millisecond)
	e.SetRoundDeadline(2 * time.Minute)

	r, err := e.StartPSC(smallPSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	roles := collect(t, rounds, 2, r)
	dcs[1].kill() // never restarted: the grace window expires
	for _, d := range roles {
		if d.psc.Name != "dc-1" {
			d.psc.Observe("item")
			if err := d.psc.Finish(); err != nil {
				t.Fatalf("finish: %v", err)
			}
		}
	}
	if _, err := r.WaitPSC(); err != nil {
		t.Fatalf("degraded round failed: %v", err)
	}
	for _, d := range roles {
		close(d.done)
	}
	if got := reg.Get("engine/" + LabelPSC + "/rounds-degraded"); got != 1 {
		t.Errorf("rounds-degraded = %g, want exactly 1", got)
	}
	if got := reg.Get("engine/"+LabelPSC+"/rounds-completed") + reg.Get("engine/"+LabelPSC+"/rounds-failed"); got != 1 {
		t.Errorf("rounds-completed+failed = %g, want exactly 1 outcome", got)
	}

	// Deadline far shorter than the grace window: the watchdog wins and
	// the round fails exactly once, with no degradation recorded.
	e2, dcs2, rounds2 := churnFleet(t, 2, 2)
	reg2 := metrics.NewRegistry()
	e2.SetMetrics(reg2)
	e2.SetQuorum(QuorumPolicy{MinDCs: 1})
	e2.SetRejoinGrace(2 * time.Minute)
	e2.SetRoundDeadline(2 * time.Second)

	r2, err := e2.StartPSC(smallPSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	roles2 := collect(t, rounds2, 2, r2)
	dcs2[1].kill()
	_, err = r2.WaitPSC()
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("deadline-vs-grace round error = %v, want deadline abort", err)
	}
	for _, d := range roles2 {
		close(d.done)
	}
	if got := reg2.Get("engine/" + LabelPSC + "/rounds-degraded"); got != 0 {
		t.Errorf("rounds-degraded = %g after deadline abort, want 0", got)
	}
	if got := reg2.Get("engine/" + LabelPSC + "/rounds-failed"); got != 1 {
		t.Errorf("rounds-failed = %g, want exactly 1", got)
	}
	if got := reg2.Get("engine/" + LabelPSC + "/rounds-deadline-exceeded"); got != 1 {
		t.Errorf("rounds-deadline-exceeded = %g, want exactly 1", got)
	}
}

// TestQuorumLostAborts: when more DCs die than the quorum floor
// tolerates, the round must fail with a quorum error rather than
// report a result over too little coverage.
func TestQuorumLostAborts(t *testing.T) {
	e, dcs, rounds := churnFleet(t, 2, 2)
	e.SetQuorum(QuorumPolicy{MinDCs: 2}) // both DCs required

	r, err := e.StartPSC(smallPSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	roles := collect(t, rounds, 2, r)
	dcs[0].kill()
	dcs[1].kill()
	_, err = r.WaitPSC()
	if err == nil {
		t.Fatal("round with zero DCs completed")
	}
	for _, d := range roles {
		close(d.done)
	}
}

// TestRejoinWithoutTokenRejected: an identity pinned without a token is
// not rejoin-capable. A second session claiming it — presenting the
// trivially "matching" empty token — must be refused with an explicit
// ack and must not disturb the original session, or knowing a party's
// name would be enough to hijack its identity.
func TestRejoinWithoutTokenRejected(t *testing.T) {
	e := New()
	t.Cleanup(e.Close)
	register := func() (*wire.Session, error) {
		tsConn, partyConn := wire.Pipe()
		ts := wire.NewSession(tsConn, false)
		party := wire.NewSession(partyConn, true)
		go e.AcceptSession(ts)
		_, err := SendHelloPinned(party, Hello{Role: RoleDC, Name: "dc-bare"})
		return party, err
	}
	first, err := register()
	if err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if _, err := register(); !errors.Is(err, ErrRejected) {
		t.Fatalf("token-less rejoin error = %v, want ErrRejected", err)
	}
	select {
	case <-first.Done():
		t.Fatal("original session closed by the rejected rejoin")
	default:
	}
	if _, _, dcs := e.Counts(); dcs != 1 {
		t.Fatalf("registry has %d DCs after rejected rejoin, want 1", dcs)
	}
}

// TestRejoinEmptyPresentedTokenRejected: a pinned identity with a real
// token must also refuse a rejoin that presents no token at all — the
// constant-time comparison rejects on length, and the registry counts
// the attempt as a rejection.
func TestRejoinEmptyPresentedTokenRejected(t *testing.T) {
	e, dcs, _ := churnFleet(t, 1, 1)
	_ = dcs
	tsConn, partyConn := wire.Pipe()
	ts := wire.NewSession(tsConn, false)
	party := wire.NewSession(partyConn, true)
	go e.AcceptSession(ts)
	_, err := SendHelloPinned(party, Hello{Role: RoleDC, Name: "dc-0"})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("empty-token rejoin error = %v, want ErrRejected", err)
	}
	if _, _, got := e.Counts(); got != 1 {
		t.Fatalf("registry has %d DCs after rejected rejoin, want 1", got)
	}
}
