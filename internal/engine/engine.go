// Package engine is the multi-round scheduler shared by the in-process
// experiment harness and the deployed daemons. Parties register their
// multiplexed sessions once; the tally-side Engine then schedules any
// number of PSC and PrivCount rounds, sequentially or concurrently,
// each round riding its own streams of the persistent per-party
// connections. A failed or aborted round resets only its own streams —
// the sessions, party keys, and every other in-flight round survive.
package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dp"
	"repro/internal/metrics"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/wire"
)

// Stream labels. The label tells the accepting party which protocol
// role the stream wants from it; the hello stream is the one
// session-level exchange.
const (
	LabelHello     = "engine/hello"
	LabelPSC       = "psc/round"
	LabelPrivCount = "privcount/round"
)

// Session-level party roles.
const (
	RoleCP = "psc-cp"
	RoleSK = "sharekeeper"
	RoleDC = "datacollector"
)

// Hello announces a party when its session is established.
type Hello struct {
	Role string
	Name string
}

// SendHello announces this party on a fresh session (party side).
func SendHello(sess *wire.Session, role, name string) error {
	st, err := sess.Open(0, LabelHello)
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Send(LabelHello, Hello{Role: role, Name: name})
}

// AcceptHello reads the party announcement from a fresh session (tally
// side).
func AcceptHello(sess *wire.Session) (Hello, error) {
	st, err := sess.Accept()
	if err != nil {
		return Hello{}, err
	}
	defer st.Close()
	if st.Label() != LabelHello {
		return Hello{}, fmt.Errorf("engine: expected hello stream, got %q", st.Label())
	}
	var h Hello
	if err := st.Expect(LabelHello, &h); err != nil {
		return Hello{}, err
	}
	if h.Name == "" {
		return Hello{}, fmt.Errorf("engine: hello without a name")
	}
	return h, nil
}

// Party is one registered session.
type Party struct {
	Name string
	Sess *wire.Session
}

// Engine is the tally-side round scheduler.
type Engine struct {
	mu        sync.Mutex
	nextRound uint64
	cps       []Party
	sks       []Party
	dcs       []Party

	acct     *dp.Accountant
	deadline time.Duration
	reg      *metrics.Registry
}

// New returns an empty engine; parties attach via the Add methods or
// AcceptSession.
func New() *Engine { return &Engine{reg: metrics.Default()} }

// SetAccountant makes the engine consult a privacy accountant before
// scheduling: a round whose noise weight would push the cumulative
// (ε,δ) spend past the accountant's budget is refused with a clear
// error instead of silently eroding the guarantee.
func (e *Engine) SetAccountant(a *dp.Accountant) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.acct = a
}

// SetRoundDeadline bounds every subsequently scheduled round: a round
// that has not completed within d is aborted automatically, so a
// stalled party costs its round, not an operator page. Zero disables.
func (e *Engine) SetRoundDeadline(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.deadline = d
}

// SetMetrics redirects the engine's counters to reg (default: the
// process-wide metrics.Default registry).
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reg = reg
}

// Metrics returns the registry the engine records into.
func (e *Engine) Metrics() *metrics.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reg
}

// authorize consults the accountant, if any. It runs after every other
// fallible scheduling step except stream-open, so a round that cannot
// even be configured never consumes budget; open failures refund.
func (e *Engine) authorize(label string) error {
	e.mu.Lock()
	acct := e.acct
	e.mu.Unlock()
	if acct == nil {
		return nil
	}
	_, err := acct.Spend(label)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// unauthorize refunds a spend for a round that failed before running.
func (e *Engine) unauthorize(label string) {
	e.mu.Lock()
	acct := e.acct
	e.mu.Unlock()
	if acct != nil {
		acct.Refund(label)
	}
}

// AddCP registers a computation-party session.
func (e *Engine) AddCP(name string, sess *wire.Session) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cps = append(e.cps, Party{Name: name, Sess: sess})
}

// AddSK registers a share-keeper session.
func (e *Engine) AddSK(name string, sess *wire.Session) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sks = append(e.sks, Party{Name: name, Sess: sess})
}

// AddDC registers a data-collector session.
func (e *Engine) AddDC(name string, sess *wire.Session) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dcs = append(e.dcs, Party{Name: name, Sess: sess})
}

// AcceptSession reads a session's hello and registers it by role.
func (e *Engine) AcceptSession(sess *wire.Session) (Hello, error) {
	h, err := AcceptHello(sess)
	if err != nil {
		return Hello{}, err
	}
	switch h.Role {
	case RoleCP:
		e.AddCP(h.Name, sess)
	case RoleSK:
		e.AddSK(h.Name, sess)
	case RoleDC:
		e.AddDC(h.Name, sess)
	default:
		return Hello{}, fmt.Errorf("engine: unknown role %q", h.Role)
	}
	return h, nil
}

// Counts reports how many parties of each role are registered.
func (e *Engine) Counts() (cps, sks, dcs int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cps), len(e.sks), len(e.dcs)
}

// Close tears down every registered session.
func (e *Engine) Close() {
	e.mu.Lock()
	parties := make([]Party, 0, len(e.cps)+len(e.sks)+len(e.dcs))
	parties = append(parties, e.cps...)
	parties = append(parties, e.sks...)
	parties = append(parties, e.dcs...)
	e.mu.Unlock()
	for _, p := range parties {
		p.Sess.Close()
	}
}

// reserveRound allocates a fresh round ID.
func (e *Engine) reserveRound() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextRound++
	return e.nextRound
}

// newRound builds a round shell with the engine's observability wired.
func (e *Engine) newRound(label string) *Round {
	e.mu.Lock()
	reg := e.reg
	e.mu.Unlock()
	return &Round{
		ID: e.reserveRound(), Label: label, done: make(chan struct{}),
		started: time.Now(), reg: reg,
	}
}

// armDeadline starts the round's watchdog once its streams are open.
func (e *Engine) armDeadline(r *Round) {
	e.mu.Lock()
	d := e.deadline
	e.mu.Unlock()
	if d <= 0 {
		return
	}
	r.deadline = d
	r.timer = time.AfterFunc(d, func() {
		r.mu.Lock()
		if r.finishing {
			r.mu.Unlock()
			return // finish() claimed the outcome; don't abort or count
		}
		r.deadlineFired = true // claim: finish() will report the deadline
		r.mu.Unlock()
		if r.reg != nil {
			r.reg.Inc("engine/" + r.Label + "/rounds-deadline-exceeded")
		}
		r.Abort(fmt.Sprintf("round deadline %v exceeded", d))
	})
}

// pick selects parties for a round: explicit indices, or the first n.
func pick(pool []Party, sel []int, n int, role string) ([]Party, error) {
	if sel == nil {
		if len(pool) < n {
			return nil, fmt.Errorf("engine: need %d %s sessions, have %d", n, role, len(pool))
		}
		return pool[:n], nil
	}
	if len(sel) != n {
		return nil, fmt.Errorf("engine: %d %s indices for %d slots", len(sel), role, n)
	}
	out := make([]Party, n)
	for i, idx := range sel {
		if idx < 0 || idx >= len(pool) {
			return nil, fmt.Errorf("engine: %s index %d out of range", role, idx)
		}
		out[i] = pool[idx]
	}
	return out, nil
}

// Round is one scheduled measurement round. Wait blocks for the
// outcome; Abort resets the round's streams without touching the
// sessions, so every other round keeps running.
type Round struct {
	ID      uint64
	Label   string
	streams []*wire.Stream
	done    chan struct{}

	started  time.Time
	reg      *metrics.Registry
	timer    *time.Timer   // deadline watchdog, nil when no deadline
	deadline time.Duration // the armed deadline, for error text

	mu sync.Mutex
	// finishing and deadlineFired are the two sides of an atomic claim
	// on the round's outcome: whichever of finish() and the watchdog
	// takes r.mu first decides, so a timer firing as a round completes
	// can never reset the streams of a round reported as successful.
	finishing     bool
	deadlineFired bool
	err           error
	stats         RoundStats
	pscRes        psc.Result
	privRes       map[string][]float64
	abortOnce     sync.Once
}

// RoundStats describes one completed round for the operator: how long
// it ran and how much it moved over its streams.
type RoundStats struct {
	Seconds   float64
	BytesSent int64
	BytesRecv int64
}

// Stats returns the round's resource footprint; valid once Done.
func (r *Round) Stats() RoundStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Done closes when the round has an outcome.
func (r *Round) Done() <-chan struct{} { return r.done }

// Err returns the round error (nil before Done and on success).
func (r *Round) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Abort resets every stream of the round; parties and the tally see the
// reason as a stream error and unwind. The round completes with an
// error; the sessions stay healthy.
func (r *Round) Abort(reason string) {
	r.abortOnce.Do(func() {
		for _, st := range r.streams {
			st.Reset(reason)
		}
	})
}

// finish records the outcome, stops the deadline watchdog, records
// metrics, and releases the streams: closed on success so peers drain
// cleanly, reset on failure so every blocked party unwinds immediately.
func (r *Round) finish(err error) {
	// Claim the outcome before anything else. If the watchdog claimed
	// first, it has already reset the streams: the round's outcome IS
	// the deadline failure, whatever the tally goroutine computed.
	r.mu.Lock()
	r.finishing = true
	fired := r.deadlineFired
	r.mu.Unlock()
	if fired && err == nil {
		err = fmt.Errorf("round deadline %v exceeded", r.deadline)
	}
	if r.timer != nil {
		r.timer.Stop()
	}
	stats := RoundStats{Seconds: time.Since(r.started).Seconds()}
	for _, st := range r.streams {
		sent, recv := st.Stats()
		stats.BytesSent += sent
		stats.BytesRecv += recv
	}
	r.mu.Lock()
	r.err = err
	r.stats = stats
	r.mu.Unlock()
	if r.reg != nil {
		outcome := "completed"
		if err != nil {
			outcome = "failed"
		}
		r.reg.Inc("engine/" + r.Label + "/rounds-" + outcome)
		r.reg.Add("engine/"+r.Label+"/round-seconds", stats.Seconds)
		r.reg.Add("engine/"+r.Label+"/stream-bytes-sent", float64(stats.BytesSent))
		r.reg.Add("engine/"+r.Label+"/stream-bytes-recv", float64(stats.BytesRecv))
	}
	if err != nil {
		r.Abort(err.Error())
	} else {
		for _, st := range r.streams {
			st.Close()
		}
	}
	close(r.done)
}

// open opens one labeled stream per selected party.
func (r *Round) open(parties []Party) ([]wire.Messenger, error) {
	ms := make([]wire.Messenger, 0, len(parties))
	for _, p := range parties {
		st, err := p.Sess.Open(r.ID, r.Label)
		if err != nil {
			r.Abort("round setup failed")
			return nil, fmt.Errorf("engine: open %s stream to %s: %w", r.Label, p.Name, err)
		}
		r.streams = append(r.streams, st)
		ms = append(ms, st)
	}
	return ms, nil
}

// WaitPSC blocks until the round completes and returns its result.
func (r *Round) WaitPSC() (psc.Result, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pscRes, r.err
}

// WaitPrivCount blocks until the round completes and returns its
// aggregated statistics.
func (r *Round) WaitPrivCount() (map[string][]float64, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.privRes, r.err
}

// StartPSC schedules a PSC round over cfg.NumCPs computation parties
// and cfg.NumDCs collector sessions (dcSel indices, or the first
// NumDCs). cfg.Round is assigned by the engine. The round runs in the
// background; collect the outcome with WaitPSC.
func (e *Engine) StartPSC(cfg psc.Config, dcSel []int) (*Round, error) {
	e.mu.Lock()
	var parties []Party
	cps, err := pick(e.cps, nil, cfg.NumCPs, "CP")
	if err == nil {
		var dcs []Party
		dcs, err = pick(e.dcs, dcSel, cfg.NumDCs, "DC")
		parties = append(append(parties, cps...), dcs...)
	}
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r := e.newRound(LabelPSC)
	cfg.Round = r.ID
	tally, err := psc.NewTally(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.authorize(LabelPSC); err != nil {
		return nil, err
	}
	ms, err := r.open(parties)
	if err != nil {
		e.unauthorize(LabelPSC)
		return nil, err
	}
	e.armDeadline(r)
	go func() {
		res, err := tally.Run(ms)
		if err == nil {
			r.mu.Lock()
			r.pscRes = res
			r.mu.Unlock()
		}
		r.finish(err)
	}()
	return r, nil
}

// StartPrivCount schedules a PrivCount round over cfg.NumSKs share
// keepers and cfg.NumDCs collector sessions (dcSel indices, or the
// first NumDCs). cfg.Round is assigned by the engine.
func (e *Engine) StartPrivCount(cfg privcount.TallyConfig, dcSel []int) (*Round, error) {
	e.mu.Lock()
	var parties []Party
	sks, err := pick(e.sks, nil, cfg.NumSKs, "SK")
	if err == nil {
		var dcs []Party
		dcs, err = pick(e.dcs, dcSel, cfg.NumDCs, "DC")
		parties = append(append(parties, sks...), dcs...)
	}
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r := e.newRound(LabelPrivCount)
	cfg.Round = r.ID
	tally, err := privcount.NewTally(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.authorize(LabelPrivCount); err != nil {
		return nil, err
	}
	ms, err := r.open(parties)
	if err != nil {
		e.unauthorize(LabelPrivCount)
		return nil, err
	}
	e.armDeadline(r)
	go func() {
		res, err := tally.Run(ms)
		if err == nil {
			r.mu.Lock()
			r.privRes = res
			r.mu.Unlock()
		}
		r.finish(err)
	}()
	return r, nil
}
