// Package engine is the multi-round scheduler shared by the in-process
// experiment harness and the deployed daemons. Parties register their
// multiplexed sessions once; the tally-side Engine then schedules any
// number of PSC and PrivCount rounds, sequentially or concurrently,
// each round riding its own streams of the persistent per-party
// connections. A failed or aborted round resets only its own streams —
// the sessions, party keys, and every other in-flight round survive.
package engine

import (
	"fmt"
	"sync"

	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/wire"
)

// Stream labels. The label tells the accepting party which protocol
// role the stream wants from it; the hello stream is the one
// session-level exchange.
const (
	LabelHello     = "engine/hello"
	LabelPSC       = "psc/round"
	LabelPrivCount = "privcount/round"
)

// Session-level party roles.
const (
	RoleCP = "psc-cp"
	RoleSK = "sharekeeper"
	RoleDC = "datacollector"
)

// Hello announces a party when its session is established.
type Hello struct {
	Role string
	Name string
}

// SendHello announces this party on a fresh session (party side).
func SendHello(sess *wire.Session, role, name string) error {
	st, err := sess.Open(0, LabelHello)
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Send(LabelHello, Hello{Role: role, Name: name})
}

// AcceptHello reads the party announcement from a fresh session (tally
// side).
func AcceptHello(sess *wire.Session) (Hello, error) {
	st, err := sess.Accept()
	if err != nil {
		return Hello{}, err
	}
	defer st.Close()
	if st.Label() != LabelHello {
		return Hello{}, fmt.Errorf("engine: expected hello stream, got %q", st.Label())
	}
	var h Hello
	if err := st.Expect(LabelHello, &h); err != nil {
		return Hello{}, err
	}
	if h.Name == "" {
		return Hello{}, fmt.Errorf("engine: hello without a name")
	}
	return h, nil
}

// Party is one registered session.
type Party struct {
	Name string
	Sess *wire.Session
}

// Engine is the tally-side round scheduler.
type Engine struct {
	mu        sync.Mutex
	nextRound uint64
	cps       []Party
	sks       []Party
	dcs       []Party
}

// New returns an empty engine; parties attach via the Add methods or
// AcceptSession.
func New() *Engine { return &Engine{} }

// AddCP registers a computation-party session.
func (e *Engine) AddCP(name string, sess *wire.Session) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cps = append(e.cps, Party{Name: name, Sess: sess})
}

// AddSK registers a share-keeper session.
func (e *Engine) AddSK(name string, sess *wire.Session) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sks = append(e.sks, Party{Name: name, Sess: sess})
}

// AddDC registers a data-collector session.
func (e *Engine) AddDC(name string, sess *wire.Session) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dcs = append(e.dcs, Party{Name: name, Sess: sess})
}

// AcceptSession reads a session's hello and registers it by role.
func (e *Engine) AcceptSession(sess *wire.Session) (Hello, error) {
	h, err := AcceptHello(sess)
	if err != nil {
		return Hello{}, err
	}
	switch h.Role {
	case RoleCP:
		e.AddCP(h.Name, sess)
	case RoleSK:
		e.AddSK(h.Name, sess)
	case RoleDC:
		e.AddDC(h.Name, sess)
	default:
		return Hello{}, fmt.Errorf("engine: unknown role %q", h.Role)
	}
	return h, nil
}

// Counts reports how many parties of each role are registered.
func (e *Engine) Counts() (cps, sks, dcs int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cps), len(e.sks), len(e.dcs)
}

// Close tears down every registered session.
func (e *Engine) Close() {
	e.mu.Lock()
	parties := make([]Party, 0, len(e.cps)+len(e.sks)+len(e.dcs))
	parties = append(parties, e.cps...)
	parties = append(parties, e.sks...)
	parties = append(parties, e.dcs...)
	e.mu.Unlock()
	for _, p := range parties {
		p.Sess.Close()
	}
}

// reserveRound allocates a fresh round ID.
func (e *Engine) reserveRound() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextRound++
	return e.nextRound
}

// pick selects parties for a round: explicit indices, or the first n.
func pick(pool []Party, sel []int, n int, role string) ([]Party, error) {
	if sel == nil {
		if len(pool) < n {
			return nil, fmt.Errorf("engine: need %d %s sessions, have %d", n, role, len(pool))
		}
		return pool[:n], nil
	}
	if len(sel) != n {
		return nil, fmt.Errorf("engine: %d %s indices for %d slots", len(sel), role, n)
	}
	out := make([]Party, n)
	for i, idx := range sel {
		if idx < 0 || idx >= len(pool) {
			return nil, fmt.Errorf("engine: %s index %d out of range", role, idx)
		}
		out[i] = pool[idx]
	}
	return out, nil
}

// Round is one scheduled measurement round. Wait blocks for the
// outcome; Abort resets the round's streams without touching the
// sessions, so every other round keeps running.
type Round struct {
	ID      uint64
	Label   string
	streams []*wire.Stream
	done    chan struct{}

	mu        sync.Mutex
	err       error
	pscRes    psc.Result
	privRes   map[string][]float64
	abortOnce sync.Once
}

// Done closes when the round has an outcome.
func (r *Round) Done() <-chan struct{} { return r.done }

// Err returns the round error (nil before Done and on success).
func (r *Round) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Abort resets every stream of the round; parties and the tally see the
// reason as a stream error and unwind. The round completes with an
// error; the sessions stay healthy.
func (r *Round) Abort(reason string) {
	r.abortOnce.Do(func() {
		for _, st := range r.streams {
			st.Reset(reason)
		}
	})
}

// finish records the outcome and releases the streams: closed on
// success so peers drain cleanly, reset on failure so every blocked
// party unwinds immediately.
func (r *Round) finish(err error) {
	r.mu.Lock()
	r.err = err
	r.mu.Unlock()
	if err != nil {
		r.Abort(err.Error())
	} else {
		for _, st := range r.streams {
			st.Close()
		}
	}
	close(r.done)
}

// open opens one labeled stream per selected party.
func (r *Round) open(parties []Party) ([]wire.Messenger, error) {
	ms := make([]wire.Messenger, 0, len(parties))
	for _, p := range parties {
		st, err := p.Sess.Open(r.ID, r.Label)
		if err != nil {
			r.Abort("round setup failed")
			return nil, fmt.Errorf("engine: open %s stream to %s: %w", r.Label, p.Name, err)
		}
		r.streams = append(r.streams, st)
		ms = append(ms, st)
	}
	return ms, nil
}

// WaitPSC blocks until the round completes and returns its result.
func (r *Round) WaitPSC() (psc.Result, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pscRes, r.err
}

// WaitPrivCount blocks until the round completes and returns its
// aggregated statistics.
func (r *Round) WaitPrivCount() (map[string][]float64, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.privRes, r.err
}

// StartPSC schedules a PSC round over cfg.NumCPs computation parties
// and cfg.NumDCs collector sessions (dcSel indices, or the first
// NumDCs). cfg.Round is assigned by the engine. The round runs in the
// background; collect the outcome with WaitPSC.
func (e *Engine) StartPSC(cfg psc.Config, dcSel []int) (*Round, error) {
	e.mu.Lock()
	var parties []Party
	cps, err := pick(e.cps, nil, cfg.NumCPs, "CP")
	if err == nil {
		var dcs []Party
		dcs, err = pick(e.dcs, dcSel, cfg.NumDCs, "DC")
		parties = append(append(parties, cps...), dcs...)
	}
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r := &Round{ID: e.reserveRound(), Label: LabelPSC, done: make(chan struct{})}
	cfg.Round = r.ID
	tally, err := psc.NewTally(cfg)
	if err != nil {
		return nil, err
	}
	ms, err := r.open(parties)
	if err != nil {
		return nil, err
	}
	go func() {
		res, err := tally.Run(ms)
		if err == nil {
			r.mu.Lock()
			r.pscRes = res
			r.mu.Unlock()
		}
		r.finish(err)
	}()
	return r, nil
}

// StartPrivCount schedules a PrivCount round over cfg.NumSKs share
// keepers and cfg.NumDCs collector sessions (dcSel indices, or the
// first NumDCs). cfg.Round is assigned by the engine.
func (e *Engine) StartPrivCount(cfg privcount.TallyConfig, dcSel []int) (*Round, error) {
	e.mu.Lock()
	var parties []Party
	sks, err := pick(e.sks, nil, cfg.NumSKs, "SK")
	if err == nil {
		var dcs []Party
		dcs, err = pick(e.dcs, dcSel, cfg.NumDCs, "DC")
		parties = append(append(parties, sks...), dcs...)
	}
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r := &Round{ID: e.reserveRound(), Label: LabelPrivCount, done: make(chan struct{})}
	cfg.Round = r.ID
	tally, err := privcount.NewTally(cfg)
	if err != nil {
		return nil, err
	}
	ms, err := r.open(parties)
	if err != nil {
		return nil, err
	}
	go func() {
		res, err := tally.Run(ms)
		if err == nil {
			r.mu.Lock()
			r.privRes = res
			r.mu.Unlock()
		}
		r.finish(err)
	}()
	return r, nil
}
