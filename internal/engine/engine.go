package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dp"
	"repro/internal/metrics"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/wire"
)

// Stream labels. The label tells the accepting party which protocol
// role the stream wants from it; the hello stream is the one
// session-level exchange.
const (
	LabelHello     = "engine/hello"
	LabelPSC       = "psc/round"
	LabelPrivCount = "privcount/round"
)

// Session-level party roles.
const (
	RoleCP = "psc-cp"
	RoleSK = "sharekeeper"
	RoleDC = "datacollector"
)

// Hello announces a party when its session is established. ID is the
// party's pinned identity (defaulting to Name); Token is the
// registration secret bound to that identity on first contact — a
// rejoining daemon must present the same token, so a session drop does
// not let another operator claim the identity. An empty token leaves
// the identity bound to its first session: every rejoin attempt is
// refused, since accepting one would let any peer that knows the name
// take the session over. Daemons that must survive reconnects
// therefore need a token. Deployments that want stronger pinning run
// the wire layer over TLS and use the session fingerprint as the
// token.
type Hello struct {
	Role  string
	Name  string
	ID    string
	Token string
}

// id resolves the pinned identity: the declared ID, or the name.
func (h Hello) id() string {
	if h.ID != "" {
		return h.ID
	}
	return h.Name
}

// HelloAck is the engine's answer on the hello stream: whether the
// registration was accepted, and whether it rebound an existing pinned
// identity (a rejoin) rather than creating a new one.
type HelloAck struct {
	OK       bool
	Rejoined bool
	Reason   string
}

// SendHello announces this party on a fresh session (party side)
// without waiting for the engine's answer — the fire-and-forget path
// used by the in-process harness, where the engine side registers
// directly. Daemons use SendHelloPinned to learn whether their
// registration (or rejoin) was accepted.
func SendHello(sess *wire.Session, role, name string) error {
	st, err := sess.Open(0, LabelHello)
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Send(LabelHello, Hello{Role: role, Name: name})
}

// ErrRejected reports that the engine refused a registration — the
// pinned identity exists with a different token, or the hello was
// malformed. Daemons treat it as fatal: retrying with the same
// credentials can never succeed.
var ErrRejected = errors.New("engine: registration rejected")

// SendHelloPinned announces this party and waits for the engine's
// verdict: the ack reports whether the pinned identity was accepted and
// whether this was a rejoin. A rejected registration (token mismatch)
// returns an error wrapping ErrRejected with the engine's reason.
func SendHelloPinned(sess *wire.Session, h Hello) (HelloAck, error) {
	st, err := sess.Open(0, LabelHello)
	if err != nil {
		return HelloAck{}, err
	}
	defer st.Close()
	if err := st.Send(LabelHello, h); err != nil {
		return HelloAck{}, err
	}
	var ack HelloAck
	if err := st.Expect(LabelHello, &ack); err != nil {
		return HelloAck{}, err
	}
	if !ack.OK {
		return ack, fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}
	return ack, nil
}

// Engine is the tally-side round scheduler.
type Engine struct {
	mu        sync.Mutex
	nextRound uint64
	registry  map[string]*member   // pinned identity -> member
	members   map[string][]*member // role -> members, registration order
	// membership closes and is replaced on every registration; it wakes
	// WaitParties.
	membership chan struct{}

	grace  time.Duration
	quorum QuorumPolicy

	acct     *dp.Accountant
	deadline time.Duration
	reg      *metrics.Registry
}

// New returns an empty engine; parties attach via the Add methods or
// AcceptSession.
func New() *Engine {
	return &Engine{
		reg:        metrics.Default(),
		registry:   make(map[string]*member),
		members:    make(map[string][]*member),
		membership: make(chan struct{}),
	}
}

// SetAccountant makes the engine consult a privacy accountant before
// scheduling: a round whose noise weight would push the cumulative
// (ε,δ) spend past the accountant's budget is refused with a clear
// error instead of silently eroding the guarantee.
func (e *Engine) SetAccountant(a *dp.Accountant) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.acct = a
}

// SetRoundDeadline bounds every subsequently scheduled round: a round
// that has not completed within d is aborted automatically, so a
// stalled party costs its round, not an operator page. Zero disables.
func (e *Engine) SetRoundDeadline(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.deadline = d
}

// SetMetrics redirects the engine's counters to reg (default: the
// process-wide metrics.Default registry).
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reg = reg
}

// Metrics returns the registry the engine records into.
func (e *Engine) Metrics() *metrics.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reg
}

// authorize consults the accountant, if any. It runs after every other
// fallible scheduling step except stream-open, so a round that cannot
// even be configured never consumes budget; open failures refund.
func (e *Engine) authorize(label string) error {
	e.mu.Lock()
	acct := e.acct
	e.mu.Unlock()
	if acct == nil {
		return nil
	}
	_, err := acct.Spend(label)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// unauthorize refunds a spend for a round that failed before running.
func (e *Engine) unauthorize(label string) {
	e.mu.Lock()
	acct := e.acct
	e.mu.Unlock()
	if acct != nil {
		acct.Refund(label)
	}
}

// AddCP registers a computation-party session directly (no hello
// handshake), for in-process deployments. Unlike the hello path, a
// duplicate name is an error, not a rejoin.
func (e *Engine) AddCP(name string, sess *wire.Session) error {
	_, err := e.register(Hello{Role: RoleCP, Name: name}, sess, false)
	return err
}

// AddSK registers a share-keeper session directly.
func (e *Engine) AddSK(name string, sess *wire.Session) error {
	_, err := e.register(Hello{Role: RoleSK, Name: name}, sess, false)
	return err
}

// AddDC registers a data-collector session directly.
func (e *Engine) AddDC(name string, sess *wire.Session) error {
	_, err := e.register(Hello{Role: RoleDC, Name: name}, sess, false)
	return err
}

// AcceptSession performs the tally side of the hello handshake: it
// reads the party announcement, registers or rebinds the pinned
// identity, and acks the verdict on the hello stream. A re-registration
// under a known identity with the matching token rebinds the member to
// this session (latest wins; any previous live session is closed); a
// token mismatch is rejected and the caller should close the session.
func (e *Engine) AcceptSession(sess *wire.Session) (Hello, error) {
	st, err := sess.Accept()
	if err != nil {
		return Hello{}, err
	}
	defer st.Close()
	if st.Label() != LabelHello {
		st.Reset("engine: expected hello stream")
		return Hello{}, fmt.Errorf("engine: expected hello stream, got %q", st.Label())
	}
	var h Hello
	if err := st.Expect(LabelHello, &h); err != nil {
		return Hello{}, err
	}
	if h.Name == "" {
		return Hello{}, fmt.Errorf("engine: hello without a name")
	}
	var rejoined bool
	switch h.Role {
	case RoleCP, RoleSK, RoleDC:
		rejoined, err = e.register(h, sess, true)
	default:
		err = fmt.Errorf("engine: unknown role %q", h.Role)
	}
	ack := HelloAck{OK: err == nil, Rejoined: rejoined}
	if err != nil {
		ack.Reason = err.Error()
	}
	_ = st.Send(LabelHello, ack)
	if err != nil {
		return Hello{}, err
	}
	return h, nil
}

// Counts reports how many parties of each role are registered
// (connected or disconnected).
func (e *Engine) Counts() (cps, sks, dcs int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.members[RoleCP]), len(e.members[RoleSK]), len(e.members[RoleDC])
}

// Close tears down every registered session.
func (e *Engine) Close() {
	e.mu.Lock()
	var sessions []*wire.Session
	for _, ms := range e.members {
		for _, m := range ms {
			sessions = append(sessions, m.sess)
		}
	}
	e.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}

// reserveRound allocates a fresh round ID.
func (e *Engine) reserveRound() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextRound++
	return e.nextRound
}

// newRound builds a round shell with the engine's observability wired.
func (e *Engine) newRound(label string) *Round {
	e.mu.Lock()
	reg := e.reg
	e.mu.Unlock()
	return &Round{
		ID: e.reserveRound(), Label: label, done: make(chan struct{}),
		aborted: make(chan struct{}), started: time.Now(), reg: reg,
	}
}

// armDeadline starts the round's watchdog once its streams are open.
func (e *Engine) armDeadline(r *Round) {
	e.mu.Lock()
	d := e.deadline
	e.mu.Unlock()
	if d <= 0 {
		return
	}
	r.deadline = d
	r.timer = time.AfterFunc(d, func() {
		r.mu.Lock()
		if r.finishing {
			r.mu.Unlock()
			return // finish() claimed the outcome; don't abort or count
		}
		r.deadlineFired = true // claim: finish() will report the deadline
		r.mu.Unlock()
		if r.reg != nil {
			r.reg.Inc("engine/" + r.Label + "/rounds-deadline-exceeded")
		}
		r.Abort(fmt.Sprintf("round deadline %v exceeded", d))
	})
}

// pick selects parties for a round: explicit indices, or the first n.
func pick(pool []*member, sel []int, n int, role string) ([]*member, error) {
	if sel == nil {
		if len(pool) < n {
			return nil, fmt.Errorf("engine: need %d %s sessions, have %d", n, role, len(pool))
		}
		return pool[:n], nil
	}
	if len(sel) != n {
		return nil, fmt.Errorf("engine: %d %s indices for %d slots", len(sel), role, n)
	}
	out := make([]*member, n)
	for i, idx := range sel {
		if idx < 0 || idx >= len(pool) {
			return nil, fmt.Errorf("engine: %s index %d out of range", role, idx)
		}
		out[i] = pool[idx]
	}
	return out, nil
}

// Round is one scheduled measurement round. Wait blocks for the
// outcome; Abort resets the round's streams without touching the
// sessions, so every other round keeps running.
type Round struct {
	ID    uint64
	Label string
	done  chan struct{}
	// aborted closes when the round is aborted (operator, deadline, or
	// failure); it unblocks any rejoin wait still pending on the round's
	// behalf.
	aborted chan struct{}
	// parties is the membership snapshot the round was scheduled over,
	// in the order its streams were opened.
	parties []*member

	started  time.Time
	reg      *metrics.Registry
	timer    *time.Timer   // deadline watchdog, nil when no deadline
	deadline time.Duration // the armed deadline, for error text

	mu      sync.Mutex
	streams []*wire.Stream
	// finishing and deadlineFired are the two sides of an atomic claim
	// on the round's outcome: whichever of finish() and the watchdog
	// takes r.mu first decides, so a timer firing as a round completes
	// can never reset the streams of a round reported as successful.
	// abortFlagged is set under mu before Abort snapshots the stream
	// set, so addStream can never slip a stream past the reset.
	finishing     bool
	abortFlagged  bool
	deadlineFired bool
	err           error
	stats         RoundStats
	absent        []string
	pscRes        psc.Result
	privRes       map[string][]float64
	abortOnce     sync.Once
}

// RoundStats describes one completed round for the operator: how long
// it ran and how much it moved over its streams.
type RoundStats struct {
	Seconds   float64
	BytesSent int64
	BytesRecv int64
}

// Stats returns the round's resource footprint; valid once Done.
func (r *Round) Stats() RoundStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Done closes when the round has an outcome.
func (r *Round) Done() <-chan struct{} { return r.done }

// Err returns the round error (nil before Done and on success).
func (r *Round) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Abort resets every stream of the round; parties and the tally see the
// reason as a stream error and unwind. The round completes with an
// error; the sessions stay healthy.
func (r *Round) Abort(reason string) {
	r.abortOnce.Do(func() {
		close(r.aborted)
		r.mu.Lock()
		r.abortFlagged = true
		streams := append([]*wire.Stream(nil), r.streams...)
		r.mu.Unlock()
		for _, st := range streams {
			st.Reset(reason)
		}
	})
}

// addStream attaches a replacement stream (opened for a rejoined party)
// to the round's stream set, so aborts and stats cover it. It refuses
// once the round has claimed an outcome or an abort has snapshotted the
// stream set — the same mutex orders the two, so a stream is either in
// the abort's reset set or refused here and reset by the caller.
func (r *Round) addStream(st *wire.Stream) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finishing || r.abortFlagged {
		return false
	}
	r.streams = append(r.streams, st)
	return true
}

// Absent lists the parties declared absent from a completed round — the
// round ran degraded without their contribution under the quorum
// policy. Empty for a full-strength round.
func (r *Round) Absent() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.absent...)
}

// Degraded reports whether the round completed without some selected
// parties.
func (r *Round) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.absent) > 0
}

// finish records the outcome, stops the deadline watchdog, records
// metrics, and releases the streams: closed on success so peers drain
// cleanly, reset on failure so every blocked party unwinds immediately.
func (r *Round) finish(err error) {
	// Claim the outcome before anything else. If the watchdog claimed
	// first, it has already reset the streams: the round's outcome IS
	// the deadline failure, whatever the tally goroutine computed.
	r.mu.Lock()
	r.finishing = true
	fired := r.deadlineFired
	streams := append([]*wire.Stream(nil), r.streams...)
	r.mu.Unlock()
	if fired {
		// The watchdog claimed the outcome: the round failed on its
		// deadline, whatever error the unwinding tally goroutine hit on
		// its reset streams.
		derr := fmt.Errorf("round deadline %v exceeded", r.deadline)
		if err != nil {
			derr = fmt.Errorf("%v (unwound with: %v)", derr, err)
		}
		err = derr
	}
	if r.timer != nil {
		r.timer.Stop()
	}
	stats := RoundStats{Seconds: time.Since(r.started).Seconds()}
	var maxWindow int64
	var maxRTT time.Duration
	for _, st := range streams {
		ss := st.Stats()
		stats.BytesSent += ss.BytesSent
		stats.BytesRecv += ss.BytesRecv
		if ss.RecvWindow > maxWindow {
			maxWindow = ss.RecvWindow
		}
		if ss.RTT > maxRTT {
			maxRTT = ss.RTT
		}
	}
	r.mu.Lock()
	r.err = err
	r.stats = stats
	r.mu.Unlock()
	if r.reg != nil {
		outcome := "completed"
		if err != nil {
			outcome = "failed"
		}
		r.reg.Inc("engine/" + r.Label + "/rounds-" + outcome)
		r.reg.Add("engine/"+r.Label+"/round-seconds", stats.Seconds)
		r.reg.Add("engine/"+r.Label+"/stream-bytes-sent", float64(stats.BytesSent))
		r.reg.Add("engine/"+r.Label+"/stream-bytes-recv", float64(stats.BytesRecv))
		r.mu.Lock()
		nAbsent := len(r.absent)
		r.mu.Unlock()
		// Per-round gauges: the most recent round's footprint as levels, so
		// a scraper graphs the latest round directly instead of
		// differentiating the cumulative counters.
		ok := 0.0
		if err == nil {
			ok = 1
		}
		r.reg.Set("engine/"+r.Label+"/last-round-ok", ok)
		r.reg.Set("engine/"+r.Label+"/last-round-seconds", stats.Seconds)
		r.reg.Set("engine/"+r.Label+"/last-round-bytes-sent", float64(stats.BytesSent))
		r.reg.Set("engine/"+r.Label+"/last-round-bytes-recv", float64(stats.BytesRecv))
		r.reg.Set("engine/"+r.Label+"/last-round-parties-absent", float64(nAbsent))
		// Flow-control gauges: the widest stream window of the round and
		// the smoothed credit-grant RTT, making the adaptive window's
		// behavior visible on the Prometheus endpoint. Zero when every
		// stream ran the fixed-window protocol (no probes, no estimate).
		r.reg.Set("wire/"+r.Label+"/window-bytes", float64(maxWindow))
		r.reg.Set("wire/"+r.Label+"/rtt-ms", float64(maxRTT)/float64(time.Millisecond))
		// A degraded round counts exactly once, and only if it actually
		// completed: a round that also failed (deadline, quorum lost) is
		// a failure, not a degradation.
		if err == nil && nAbsent > 0 {
			r.reg.Inc("engine/" + r.Label + "/rounds-degraded")
			r.reg.Add("engine/"+r.Label+"/parties-absent", float64(nAbsent))
		}
	}
	if err != nil {
		r.Abort(err.Error())
	} else {
		for _, st := range streams {
			st.Close()
		}
	}
	close(r.done)
}

// openRound opens one labeled stream per selected party of the
// membership snapshot. Parties before dcStart are protocol-critical
// (CPs, SKs): an open failure aborts the round. From dcStart on the
// parties are data collectors, where the quorum policy may tolerate
// absence: a failed open substitutes a messenger that reports the
// failure on first use, routing a dead-at-start DC through the tally's
// per-party recovery path instead of wedging scheduling.
func (e *Engine) openRound(r *Round, parties []*member, dcStart int) ([]wire.Messenger, error) {
	ms := make([]wire.Messenger, 0, len(parties))
	for i, m := range parties {
		e.mu.Lock()
		sess := m.sess
		e.mu.Unlock()
		st, err := sess.Open(r.ID, r.Label)
		if err != nil {
			err = fmt.Errorf("engine: open %s stream to %s: %w", r.Label, m.name, err)
			if i >= dcStart {
				ms = append(ms, failedMessenger{err: err})
				continue
			}
			r.Abort("round setup failed")
			return nil, err
		}
		if !r.addStream(st) {
			st.Reset("round already finished")
			return nil, fmt.Errorf("engine: round %d finished during setup", r.ID)
		}
		ms = append(ms, st)
	}
	return ms, nil
}

// recoverFn builds the per-round recovery callback the protocol tallies
// consult when a party's exchange fails. If the party may still resume
// (its contribution barrier has not been passed), the engine tries to
// rebind it: an already-rejoined session gets a fresh round stream
// immediately, and otherwise the call blocks up to the rejoin grace
// window for the party to re-register. When no resumption is possible
// the party is recorded absent and the tally decides — by its quorum
// floor — whether the round degrades or fails. An aborted round never
// converts its failures into degradation.
func (e *Engine) recoverFn(r *Round) func(i int, name string, canRetry bool) (wire.Messenger, bool) {
	return func(i int, name string, canRetry bool) (wire.Messenger, bool) {
		if i < 0 || i >= len(r.parties) {
			return nil, false
		}
		m := r.parties[i]
		if canRetry {
			if st := e.reopenFor(r, m); st != nil {
				e.reg.Inc("engine/" + r.Label + "/parties-reattached")
				return st, true
			}
		}
		select {
		case <-r.aborted:
			// The round is being torn down; surface the original error.
			return nil, false
		default:
		}
		r.mu.Lock()
		r.absent = append(r.absent, m.name)
		r.mu.Unlock()
		return nil, true
	}
}

// WaitPSC blocks until the round completes and returns its result.
func (r *Round) WaitPSC() (psc.Result, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pscRes, r.err
}

// WaitPrivCount blocks until the round completes and returns its
// aggregated statistics.
func (r *Round) WaitPrivCount() (map[string][]float64, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.privRes, r.err
}

// StartPSC schedules a PSC round over cfg.NumCPs computation parties
// and cfg.NumDCs collector sessions (dcSel indices, or the first
// NumDCs). cfg.Round is assigned by the engine. The round runs in the
// background; collect the outcome with WaitPSC.
func (e *Engine) StartPSC(cfg psc.Config, dcSel []int) (*Round, error) {
	e.mu.Lock()
	var parties []*member
	cps, err := pick(e.members[RoleCP], nil, cfg.NumCPs, "CP")
	if err == nil {
		var dcs []*member
		dcs, err = pick(e.members[RoleDC], dcSel, cfg.NumDCs, "DC")
		parties = append(append(parties, cps...), dcs...)
	}
	quorum := e.quorum
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r := e.newRound(LabelPSC)
	r.parties = parties
	cfg.Round = r.ID
	// PSC correctness requires every CP (n-of-n joint key); the quorum
	// policy governs DC coverage only.
	cfg.MinDCs = quorum.minDCsFor(cfg.NumDCs)
	cfg.Recover = e.recoverFn(r)
	tally, err := psc.NewTally(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.authorize(LabelPSC); err != nil {
		return nil, err
	}
	ms, err := e.openRound(r, parties, cfg.NumCPs)
	if err != nil {
		e.unauthorize(LabelPSC)
		return nil, err
	}
	e.armDeadline(r)
	go func() {
		res, err := tally.Run(ms)
		if err == nil {
			r.mu.Lock()
			r.pscRes = res
			r.mu.Unlock()
		}
		r.finish(err)
	}()
	return r, nil
}

// StartPrivCount schedules a PrivCount round over cfg.NumSKs share
// keepers and cfg.NumDCs collector sessions (dcSel indices, or the
// first NumDCs). cfg.Round is assigned by the engine.
func (e *Engine) StartPrivCount(cfg privcount.TallyConfig, dcSel []int) (*Round, error) {
	e.mu.Lock()
	var parties []*member
	sks, err := pick(e.members[RoleSK], nil, cfg.NumSKs, "SK")
	if err == nil {
		var dcs []*member
		dcs, err = pick(e.members[RoleDC], dcSel, cfg.NumDCs, "DC")
		parties = append(append(parties, sks...), dcs...)
	}
	quorum := e.quorum
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r := e.newRound(LabelPrivCount)
	r.parties = parties
	cfg.Round = r.ID
	// PrivCount requires every SK (each holds blinding state nobody can
	// reproduce); the quorum policy governs DC coverage only.
	cfg.MinDCs = quorum.minDCsFor(cfg.NumDCs)
	cfg.Recover = e.recoverFn(r)
	tally, err := privcount.NewTally(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.authorize(LabelPrivCount); err != nil {
		return nil, err
	}
	ms, err := e.openRound(r, parties, cfg.NumSKs)
	if err != nil {
		e.unauthorize(LabelPrivCount)
		return nil, err
	}
	e.armDeadline(r)
	go func() {
		res, err := tally.Run(ms)
		if err == nil {
			r.mu.Lock()
			r.privRes = res
			r.mu.Unlock()
		}
		r.finish(err)
	}()
	return r, nil
}
