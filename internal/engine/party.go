package engine

import (
	"errors"
	"time"

	"repro/internal/dp"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/wire"
)

// Party-side serve loops: each accepts round streams off a persistent
// session and serves them concurrently. Long-term key material (a CP's
// ElGamal share, an SK's seal keypair) lives in the party value and
// spans every round of the session, the way the deployed daemons hold
// one key across a whole measurement study.

// ServeCP announces a computation party on sess and serves PSC rounds
// until the session closes. It returns the session's terminal error.
// The hello is fire-and-forget; daemons that need the engine's
// registration verdict (rejoin, token rejection) use ServeCPAs.
func ServeCP(sess *wire.Session, name string, noise *dp.NoiseSource) error {
	if err := SendHello(sess, RoleCP, name); err != nil {
		return err
	}
	return serveCP(sess, name, noise)
}

// ServeCPAs is ServeCP with a pinned identity: it registers via the
// acked hello exchange, so a token mismatch surfaces as an immediate
// error instead of a dead session.
func ServeCPAs(sess *wire.Session, h Hello, noise *dp.NoiseSource) error {
	h.Role = RoleCP
	if _, err := SendHelloPinned(sess, h); err != nil {
		return err
	}
	return serveCP(sess, h.Name, noise)
}

func serveCP(sess *wire.Session, name string, noise *dp.NoiseSource) error {
	cp := psc.NewCP(name, nil, noise)
	return serveRounds(sess, func(st *wire.Stream) error {
		if st.Label() != LabelPSC {
			st.Reset("psc-cp: unexpected stream " + st.Label())
			return nil
		}
		return cp.ServeRound(st)
	})
}

// ServeSK announces a share keeper on sess and serves PrivCount rounds
// until the session closes.
func ServeSK(sess *wire.Session, name string) error {
	if err := SendHello(sess, RoleSK, name); err != nil {
		return err
	}
	sk, err := privcount.NewSK(name, nil)
	if err != nil {
		return err
	}
	return serveSK(sess, sk)
}

// ServeSKAs is ServeSK with a pinned identity and acked registration.
// The SK value may be reused across reconnects so the seal keypair
// survives session churn (nil creates a fresh one).
func ServeSKAs(sess *wire.Session, h Hello, sk *privcount.SK) error {
	h.Role = RoleSK
	if _, err := SendHelloPinned(sess, h); err != nil {
		return err
	}
	if sk == nil {
		var err error
		if sk, err = privcount.NewSK(h.Name, nil); err != nil {
			return err
		}
	}
	return serveSK(sess, sk)
}

func serveSK(sess *wire.Session, sk *privcount.SK) error {
	return serveRounds(sess, func(st *wire.Stream) error {
		if st.Label() != LabelPrivCount {
			st.Reset("sharekeeper: unexpected stream " + st.Label())
			return nil
		}
		return sk.ServeRound(st)
	})
}

// ServeRounds accepts round streams and dispatches each to handle in
// its own goroutine; a handler error resets only that round's stream.
// It returns when the session dies. Data-collector hosts use this
// directly with handlers that create per-round DCs.
func ServeRounds(sess *wire.Session, handle func(st *wire.Stream) error) error {
	return serveRounds(sess, handle)
}

// ReconnectLoop is the party-daemon churn loop, mirroring torctl's
// relay-side reconnect on the party→tally edge: it dials a fresh
// session and serves it until the session dies, then redials with
// exponential backoff (250ms doubling to 5s). The engine's registry
// rebinds the re-registered identity, so rounds scheduled after the
// rejoin run at full strength. It returns nil when serve reports
// wire.ErrClosed (the tally hung up deliberately), the serve error when
// it wraps ErrRejected (retrying a refused identity cannot succeed),
// and the last error once maxAttempts consecutive failed cycles burn
// out. A session that survived five seconds resets the failure budget.
func ReconnectLoop(dial func() (*wire.Session, error), serve func(*wire.Session) error, maxAttempts int, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	const baseBackoff, maxBackoff = 250 * time.Millisecond, 5 * time.Second
	backoff := baseBackoff
	attempts := 0
	for {
		sess, err := dial()
		if err == nil {
			start := time.Now()
			err = serve(sess)
			sess.Close()
			if err == nil || errors.Is(err, wire.ErrClosed) {
				return nil
			}
			if errors.Is(err, ErrRejected) {
				return err
			}
			if time.Since(start) >= 5*time.Second {
				attempts, backoff = 0, baseBackoff
			}
		}
		attempts++
		if attempts > maxAttempts {
			return err
		}
		logf("reconnecting in %v after: %v", backoff, err)
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func serveRounds(sess *wire.Session, handle func(st *wire.Stream) error) error {
	for {
		st, err := sess.Accept()
		if err != nil {
			return err
		}
		go func(st *wire.Stream) {
			if err := handle(st); err != nil {
				// The tally sees the reason; sibling rounds are untouched.
				st.Reset(err.Error())
				return
			}
			st.Close()
		}(st)
	}
}
