package engine

import (
	"repro/internal/dp"
	"repro/internal/privcount"
	"repro/internal/psc"
	"repro/internal/wire"
)

// Party-side serve loops: each accepts round streams off a persistent
// session and serves them concurrently. Long-term key material (a CP's
// ElGamal share, an SK's seal keypair) lives in the party value and
// spans every round of the session, the way the deployed daemons hold
// one key across a whole measurement study.

// ServeCP announces a computation party on sess and serves PSC rounds
// until the session closes. It returns the session's terminal error.
func ServeCP(sess *wire.Session, name string, noise *dp.NoiseSource) error {
	if err := SendHello(sess, RoleCP, name); err != nil {
		return err
	}
	cp := psc.NewCP(name, nil, noise)
	return serveRounds(sess, func(st *wire.Stream) error {
		if st.Label() != LabelPSC {
			st.Reset("psc-cp: unexpected stream " + st.Label())
			return nil
		}
		return cp.ServeRound(st)
	})
}

// ServeSK announces a share keeper on sess and serves PrivCount rounds
// until the session closes.
func ServeSK(sess *wire.Session, name string) error {
	if err := SendHello(sess, RoleSK, name); err != nil {
		return err
	}
	sk, err := privcount.NewSK(name, nil)
	if err != nil {
		return err
	}
	return serveRounds(sess, func(st *wire.Stream) error {
		if st.Label() != LabelPrivCount {
			st.Reset("sharekeeper: unexpected stream " + st.Label())
			return nil
		}
		return sk.ServeRound(st)
	})
}

// ServeRounds accepts round streams and dispatches each to handle in
// its own goroutine; a handler error resets only that round's stream.
// It returns when the session dies. Data-collector hosts use this
// directly with handlers that create per-round DCs.
func ServeRounds(sess *wire.Session, handle func(st *wire.Stream) error) error {
	return serveRounds(sess, handle)
}

func serveRounds(sess *wire.Session, handle func(st *wire.Stream) error) error {
	for {
		st, err := sess.Accept()
		if err != nil {
			return err
		}
		go func(st *wire.Stream) {
			if err := handle(st); err != nil {
				// The tally sees the reason; sibling rounds are untouched.
				st.Reset(err.Error())
				return
			}
			st.Close()
		}(st)
	}
}
