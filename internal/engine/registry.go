package engine

import (
	"crypto/subtle"
	"fmt"
	"time"

	"repro/internal/wire"
)

// Party registry: the engine's identity-pinned membership table. The
// original engine accepted a fixed party set at startup — a daemon that
// dropped its TCP session could never rejoin, so one flapping data
// collector wedged a months-long collection. The registry replaces that:
// every party is keyed by a pinned identity (role + declared party ID,
// bound to a registration token on first contact), a party whose session
// dies enters the disconnected state, and a reconnecting daemon
// re-registers under its pinned identity — resuming participation in
// rounds that have not passed its contribution barrier, while rounds
// past the barrier degrade under the quorum policy instead of wedging.

// PartyState describes one registered party's liveness.
type PartyState int

const (
	// StateConnected: the party has a live session.
	StateConnected PartyState = iota
	// StateDisconnected: the party's session died; a rejoin under the
	// pinned identity reconnects it.
	StateDisconnected
)

// String renders the state for logs and registry dumps.
func (s PartyState) String() string {
	if s == StateConnected {
		return "connected"
	}
	return "disconnected"
}

// member is one registry entry. The identity (role, id, token) is
// pinned at first registration; the session and generation change on
// every rejoin. gen guards against stale disconnect notifications: a
// watcher for session generation g must not mark generation g+1
// disconnected.
type member struct {
	role  string
	id    string
	name  string
	token string

	sess  *wire.Session
	gen   uint64
	state PartyState

	disconnectedAt time.Time
	// rejoinCh closes when the member reconnects; waiters grab the
	// current channel under the engine lock and re-check state after it
	// fires. It is replaced with a fresh channel on every rejoin.
	rejoinCh chan struct{}
}

// key builds the registry key: identities are pinned per role, so a
// data collector cannot rejoin as a computation party.
func regKey(role, id string) string { return role + "/" + id }

// register adds a new party or — when allowRejoin is set — rebinds an
// existing identity to a fresh session (a rejoin). Two live sessions
// claiming the same identity resolve latest-wins: the newer session
// becomes the member's session and the older one is closed. Rejoining
// requires a token: an identity pinned without one stays bound to its
// first session and every rejoin attempt is refused, because with an
// empty token any peer that knows a party's name could hijack its
// session. Token comparison is constant-time. A registration whose
// token does not match the pinned token is rejected, as is a duplicate
// identity when rejoining is not allowed (the direct Add* path, where
// a duplicate is a caller bug rather than a reconnecting daemon).
func (e *Engine) register(h Hello, sess *wire.Session, allowRejoin bool) (rejoined bool, err error) {
	id := h.id()
	var stale *wire.Session
	e.mu.Lock()
	if e.registry == nil {
		e.registry = make(map[string]*member)
	}
	m, ok := e.registry[regKey(h.Role, id)]
	if ok {
		if !allowRejoin {
			e.mu.Unlock()
			return false, fmt.Errorf("engine: %s %q already registered", h.Role, id)
		}
		if m.token == "" {
			e.mu.Unlock()
			e.reg.Inc("engine/parties-rejected")
			return false, fmt.Errorf("engine: %s %q registered without a token and cannot rejoin; set -token to make the identity rejoin-capable", h.Role, id)
		}
		if subtle.ConstantTimeCompare([]byte(m.token), []byte(h.Token)) != 1 {
			e.mu.Unlock()
			e.reg.Inc("engine/parties-rejected")
			return false, fmt.Errorf("engine: %s %q: registration token does not match pinned identity", h.Role, id)
		}
		if m.sess != sess {
			stale = m.sess
		}
		m.sess = sess
		m.gen++
		m.state = StateConnected
		m.name = h.Name
		close(m.rejoinCh)
		m.rejoinCh = make(chan struct{})
		rejoined = true
	} else {
		m = &member{
			role: h.Role, id: id, name: h.Name, token: h.Token,
			sess: sess, state: StateConnected,
			rejoinCh: make(chan struct{}),
		}
		e.registry[regKey(h.Role, id)] = m
		e.members[h.Role] = append(e.members[h.Role], m)
	}
	gen := m.gen
	e.bumpMembership()
	e.mu.Unlock()

	if rejoined {
		e.reg.Inc("engine/parties-rejoined")
	}
	if stale != nil && stale != sess {
		stale.Close()
	}
	go e.watch(m, sess, gen)
	return rejoined, nil
}

// watch marks the member disconnected when its current session dies.
// The generation check makes a watcher of an old session harmless after
// a rejoin has already installed a newer one.
func (e *Engine) watch(m *member, sess *wire.Session, gen uint64) {
	<-sess.Done()
	e.mu.Lock()
	if m.gen == gen && m.state == StateConnected {
		m.state = StateDisconnected
		m.disconnectedAt = time.Now()
		e.mu.Unlock()
		e.reg.Inc("engine/parties-disconnected")
		return
	}
	e.mu.Unlock()
}

// bumpMembership wakes WaitParties waiters. Caller holds e.mu.
func (e *Engine) bumpMembership() {
	close(e.membership)
	e.membership = make(chan struct{})
}

// WaitParties blocks until at least the given number of parties of each
// role have registered (in any state), or the timeout elapses (zero
// means wait forever). The tally daemon uses it to gate scheduling on
// fleet assembly while the accept loop keeps running for rejoins.
func (e *Engine) WaitParties(cps, sks, dcs int, timeout time.Duration) error {
	var deadline <-chan time.Time
	if timeout > 0 {
		deadline = time.After(timeout)
	}
	for {
		e.mu.Lock()
		ok := len(e.members[RoleCP]) >= cps && len(e.members[RoleSK]) >= sks && len(e.members[RoleDC]) >= dcs
		ch := e.membership
		e.mu.Unlock()
		if ok {
			return nil
		}
		select {
		case <-ch:
		case <-deadline:
			c, s, d := e.Counts()
			return fmt.Errorf("engine: fleet incomplete after %v: have %d CPs, %d SKs, %d DCs; want %d, %d, %d",
				timeout, c, s, d, cps, sks, dcs)
		}
	}
}

// SetRejoinGrace sets how long a round waits for a disconnected party
// to re-register before declaring it absent and degrading. Zero (the
// default) disables waiting: a dropped party is declared absent
// immediately, and only an already-rejoined session can replace it.
func (e *Engine) SetRejoinGrace(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.grace = d
}

// PartyInfo is one registry row, for operator introspection.
type PartyInfo struct {
	Role, ID, Name string
	State          PartyState
}

// Parties snapshots the registry.
func (e *Engine) Parties() []PartyInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]PartyInfo, 0, len(e.registry))
	for _, role := range []string{RoleCP, RoleSK, RoleDC} {
		for _, m := range e.members[role] {
			out = append(out, PartyInfo{Role: m.role, ID: m.id, Name: m.name, State: m.state})
		}
	}
	return out
}

// reopenFor tries to restore a round's link to a party whose stream
// failed: if the member has a live session (it already rejoined, or only
// the stream — not the session — died), a fresh round stream is opened
// on it; otherwise it waits up to the rejoin grace window for the party
// to re-register. It returns nil when the window closes or the round
// aborts first — the caller then declares the party absent.
func (e *Engine) reopenFor(r *Round, m *member) *wire.Stream {
	e.mu.Lock()
	grace := e.grace
	e.mu.Unlock()
	var deadline <-chan time.Time
	if grace > 0 {
		deadline = time.After(grace)
	}
	tried := make(map[uint64]bool) // session generations already tried
	for {
		e.mu.Lock()
		state, sess, gen, ch := m.state, m.sess, m.gen, m.rejoinCh
		e.mu.Unlock()
		if state == StateConnected && !tried[gen] {
			tried[gen] = true
			if st, err := sess.Open(r.ID, r.Label); err == nil {
				if r.addStream(st) {
					return st
				}
				st.Reset("round already finished")
				return nil
			}
			// The session is actually dead; fall through and wait for the
			// watcher to notice or the party to rejoin.
		}
		if grace <= 0 {
			return nil
		}
		select {
		case <-ch:
		case <-deadline:
			return nil
		case <-r.aborted:
			return nil
		}
	}
}

// QuorumPolicy is the per-protocol degradation rule: how much of the
// selected party set a round genuinely needs. Protocol correctness fixes
// most of it — PSC needs every computation party (the joint key is an
// n-of-n threshold) and PrivCount needs every share keeper (each holds
// blinding state no one else can reproduce) — so the tunable dimension
// is data-collector coverage: with MinDCs = k, a round tolerates up to
// n-k absent DCs, completing with degraded coverage and an annotated
// result instead of wedging, and aborts only when fewer than k DCs
// contribute.
type QuorumPolicy struct {
	// MinDCs is the minimum number of selected data collectors that
	// must contribute for a round to complete. Zero means all selected
	// DCs are required (the strict pre-churn behavior).
	MinDCs int
}

// minDCsFor resolves the policy against a round's selected DC count.
func (q QuorumPolicy) minDCsFor(selected int) int {
	if q.MinDCs <= 0 || q.MinDCs > selected {
		return selected
	}
	return q.MinDCs
}

// SetQuorum installs the degradation policy for subsequently scheduled
// rounds.
func (e *Engine) SetQuorum(q QuorumPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.quorum = q
}

// ParseQuorum parses an operator quorum spec: "dcs=K" (or the bare
// integer K) sets MinDCs=K; the empty string is the strict
// all-required policy.
func ParseQuorum(spec string) (QuorumPolicy, error) {
	var q QuorumPolicy
	if spec == "" {
		return q, nil
	}
	var k int
	if _, err := fmt.Sscanf(spec, "dcs=%d", &k); err != nil {
		if _, err := fmt.Sscanf(spec, "%d", &k); err != nil {
			return q, fmt.Errorf("engine: bad quorum spec %q (want dcs=K)", spec)
		}
	}
	if k < 1 {
		return q, fmt.Errorf("engine: quorum must require at least one DC, got %d", k)
	}
	q.MinDCs = k
	return q, nil
}

// failedMessenger stands in for a party whose round stream could not be
// opened (its session was already dead at scheduling time). Every
// operation reports the open failure, so the tally's per-party recovery
// path handles a dead-at-start DC exactly like one that dies mid-round.
type failedMessenger struct{ err error }

func (f failedMessenger) Send(string, any) error     { return f.err }
func (f failedMessenger) SendFrame(wire.Frame) error { return f.err }
func (f failedMessenger) Recv() (wire.Frame, error)  { return wire.Frame{}, f.err }
func (f failedMessenger) Expect(string, any) error   { return f.err }
func (f failedMessenger) Close() error               { return nil }
