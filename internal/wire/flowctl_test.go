package wire

import (
	"testing"
	"time"
)

// TestWinControllerAIMD drives the controller through the canonical
// trajectory: slow-start doubling while window-limited, multiplicative
// backoff when RTT inflation signals congestion (how loss reaches a
// reliable transport), additive regrowth afterwards, a hard cap, and a
// floor at the initial window.
func TestWinControllerAIMD(t *testing.T) {
	const initial = 1 << 20
	const maxWin = 8 << 20
	c := newWinController(initial, maxWin)
	base := 100 * time.Millisecond

	// Window-limited at clean RTT: slow-start doubles per probe.
	w := c.observe(base, initial)
	if w != 2*initial {
		t.Fatalf("slow-start: want %d, got %d", 2*initial, w)
	}
	w = c.observe(base, w)
	if w != 4*initial {
		t.Fatalf("slow-start: want %d, got %d", 4*initial, w)
	}

	// A congestion event — RTT beyond 2× the minimum (an emulated loss
	// surfaces exactly like this, as a retransmit stall) — halves.
	w = c.observe(5*base, w)
	if w != 2*initial {
		t.Fatalf("backoff: want %d, got %d", 2*initial, w)
	}
	if c.decreases != 1 {
		t.Fatalf("decreases: want 1, got %d", c.decreases)
	}

	// Regrowth after a backoff is additive, not doubling.
	w2 := c.observe(base, w)
	if w2 != w+flowIncrement {
		t.Fatalf("additive regrowth: want %d, got %d", w+flowIncrement, w2)
	}

	// Repeated congestion floors at the initial window, never below.
	for i := 0; i < 10; i++ {
		w = c.observe(5*base, w2)
	}
	if w != initial {
		t.Fatalf("floor: want %d, got %d", initial, w)
	}

	// Sustained window-limited growth clamps at the cap.
	for i := 0; i < 100; i++ {
		w = c.observe(base, w)
	}
	if w != maxWin {
		t.Fatalf("cap: want %d, got %d", maxWin, w)
	}

	// A sender that is not window-limited gets no growth: a bigger
	// window would only buy buffering.
	if w := c.observe(base, 1000); w != maxWin {
		t.Fatalf("idle growth: window moved to %d", w)
	}
}

// TestWinControllerEstimators checks the RTT estimators: minRTT tracks
// the smallest sample, srtt smooths toward recent ones.
func TestWinControllerEstimators(t *testing.T) {
	c := newWinController(1<<20, 8<<20)
	c.observe(100*time.Millisecond, 0)
	c.observe(60*time.Millisecond, 0)
	c.observe(80*time.Millisecond, 0)
	if c.minRTT != 60*time.Millisecond {
		t.Fatalf("minRTT: want 60ms, got %v", c.minRTT)
	}
	if c.srtt < 60*time.Millisecond || c.srtt > 100*time.Millisecond {
		t.Fatalf("srtt out of sample range: %v", c.srtt)
	}
	if c.observe(0, 1<<20) != c.win {
		t.Fatal("zero-duration sample must be ignored")
	}
}
