package wire

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// DefaultMaxFrame bounds a single message unless a connection overrides
// it with WithMaxFrame. Since vectors travel as bounded chunks, no
// honest frame comes close to this; a peer demanding more is asking the
// receiver for an allocation it has no business requesting.
const DefaultMaxFrame = 1 << 20

// Frame is the unit of exchange: a message kind tag and a gob-encoded
// payload. Kind routing keeps the protocols self-describing on the wire
// without a shared registration of every payload type. SID routes the
// frame to a logical stream when the connection carries a multiplexed
// Session; it is zero on plain single-stream connections.
type Frame struct {
	Kind    string
	Payload []byte
	SID     uint64
}

// Transport errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrClosed        = errors.New("wire: connection closed")
)

// Messenger is the message-passing surface the protocols run over: a
// whole connection (one party, one round) or one logical Stream of a
// multiplexed Session (one party, many concurrent rounds). Send and
// Recv are each safe for one concurrent caller, so a reader goroutine
// can overlap a writer goroutine — the shape every chunked phase uses.
type Messenger interface {
	Send(kind string, v any) error
	SendFrame(f Frame) error
	Recv() (Frame, error)
	Expect(kind string, out any) error
	Close() error
}

// Option configures a Conn.
type Option func(*Conn)

// WithMaxFrame overrides the per-connection frame cap. Both ends of a
// connection must agree, or the larger sender will be dropped by the
// smaller receiver.
func WithMaxFrame(n int) Option {
	return func(c *Conn) {
		if n > 0 {
			c.maxFrame = n
		}
	}
}

// WithWindow overrides the initial per-stream flow-control window for
// sessions multiplexed over this connection (default DefaultWindow).
// Each direction's window is announced on stream open; peers that
// support window negotiation run with asymmetric windows, and against
// older fixed-window peers the session falls back to the smaller of
// the two announcements. A frame costing more than the window can
// never be covered and is rejected with ErrFrameTooLarge, so the
// window must exceed the largest frame the protocol ships — for PSC at
// the default chunk/block sizes that is a ~256 KiB share chunk, making
// 512 KiB a safe practical floor. With adaptive windows enabled (see
// WithAdaptiveWindow) this is only the starting point; without them it
// is the WAN-tuning knob: a window of at least the bandwidth-delay
// product keeps a stream's pipe full.
func WithWindow(n int) Option {
	return func(c *Conn) {
		if n > 0 {
			c.window = int64(n)
		}
	}
}

// WithAdaptiveWindow enables receiver-driven window autotuning for
// streams multiplexed over this connection: each stream measures the
// credit-grant round-trip time, grows its receive window toward the
// measured bandwidth-delay product (slow-start doubling, then additive
// increase), and halves it when RTT inflation signals congestion —
// AIMD, never exceeding cap bytes (cap <= 0 selects
// DefaultWindowCap). The growth is negotiated over the versioned
// window-update frame, so it activates only when both peers support
// it; against a fixed-window peer the stream simply keeps its initial
// window.
func WithAdaptiveWindow(cap int) Option {
	return func(c *Conn) {
		c.adaptive = true
		if cap > 0 {
			c.windowCap = int64(cap)
		} else {
			c.windowCap = DefaultWindowCap
		}
	}
}

// WithTransportWrap interposes f on the underlying transport before
// any framing: NewConn (and therefore Listen/Dial) hands the raw
// net.Conn to f and frames over whatever it returns. This is the hook
// the netem subsystem uses to shape connections with WAN latency and
// bandwidth profiles without the wire package knowing about emulation.
func WithTransportWrap(f func(net.Conn) net.Conn) Option {
	return func(c *Conn) {
		c.wrap = f
	}
}

// Conn is a framed message connection. Send and Recv are each safe for
// one concurrent caller (a reader goroutine plus a writer goroutine).
type Conn struct {
	c         net.Conn
	maxFrame  int
	window    int64
	windowCap int64
	adaptive  bool
	wrap      func(net.Conn) net.Conn
	readMu    sync.Mutex
	writeMu   sync.Mutex
	lenBuf    [4]byte
}

// NewConn wraps a stream connection.
func NewConn(c net.Conn, opts ...Option) *Conn {
	conn := &Conn{c: c, maxFrame: DefaultMaxFrame, window: DefaultWindow}
	for _, o := range opts {
		o(conn)
	}
	if conn.wrap != nil {
		conn.c = conn.wrap(conn.c)
	}
	return conn
}

// MaxFrame reports the connection's frame cap.
func (c *Conn) MaxFrame() int { return c.maxFrame }

// Window reports the flow-control window sessions over this connection
// grant each stream.
func (c *Conn) Window() int64 { return c.window }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// SetDeadline bounds both reads and writes.
func (c *Conn) SetDeadline(t time.Time) error { return c.c.SetDeadline(t) }

// Send encodes v as the payload of a frame with the given kind.
func (c *Conn) Send(kind string, v any) error {
	payload, err := EncodePayload(v)
	if err != nil {
		return fmt.Errorf("wire: encode %q: %w", kind, err)
	}
	return c.SendFrame(Frame{Kind: kind, Payload: payload})
}

// SendFrame writes a raw frame.
func (c *Conn) SendFrame(f Frame) error {
	body, err := EncodePayload(f)
	if err != nil {
		return err
	}
	if len(body) > c.maxFrame {
		return ErrFrameTooLarge
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	if _, err := c.c.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = c.c.Write(body)
	return err
}

// Recv reads the next frame.
func (c *Conn) Recv() (Frame, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if _, err := io.ReadFull(c.c, c.lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
			return Frame{}, ErrClosed
		}
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(c.lenBuf[:])
	if n > uint32(c.maxFrame) {
		return Frame{}, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.c, body); err != nil {
		return Frame{}, err
	}
	var f Frame
	if err := DecodePayload(body, &f); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// Expect receives the next frame, requires its kind to match, and
// decodes the payload into out.
func (c *Conn) Expect(kind string, out any) error {
	f, err := c.Recv()
	if err != nil {
		return err
	}
	if f.Kind != kind {
		return fmt.Errorf("wire: expected %q frame, got %q", kind, f.Kind)
	}
	if out == nil {
		return nil
	}
	if err := DecodePayload(f.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %q: %w", kind, err)
	}
	return nil
}

// EncodePayload gob-encodes a value. The value's concrete type must be
// known to the receiving DecodePayload call site.
func EncodePayload(v any) ([]byte, error) {
	var buf writerBuf
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// DecodePayload decodes a gob payload into out (a pointer).
func DecodePayload(b []byte, out any) error {
	return gob.NewDecoder(readerBuf{b: b, pos: new(int)}).Decode(out)
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type readerBuf struct {
	b   []byte
	pos *int
}

func (r readerBuf) Read(p []byte) (int, error) {
	if *r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[*r.pos:])
	*r.pos += n
	return n, nil
}

// Pipe returns two connected in-memory Conns for tests and single
// process deployments.
func Pipe(opts ...Option) (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a, opts...), NewConn(b, opts...)
}
