package wire

import (
	"fmt"
	"log"
	"sync"
	"time"
)

// Stream multiplexing: a Session carries many logical Streams — one per
// (round, party-role) — over a single framed connection, so a party
// keeps one persistent TLS connection to the tally server across every
// round it ever participates in. Each stream has credit-based flow
// control: a sender may have at most one window of bytes in flight, so
// a burst on one round's stream can neither exhaust the receiver's
// memory nor starve the connection for other rounds.
//
// The design mirrors HTTP/2 in miniature: the session reader goroutine
// only demultiplexes (it never writes — control replies are handed to a
// dedicated control-writer goroutine — so two sessions can never
// deadlock writing window updates at each other); credit is returned
// from the application's Recv calls; stream IDs carry an initiator bit
// so both ends can open streams without coordination.
//
// Window negotiation (protocol revision 1): the opener's mux/open
// announces its receive window, its window cap, and its revision; a
// revision-aware acceptor replies with mux/open-ack carrying its own.
// The two directions then run asymmetric windows. Revision-0 peers
// send no revision and get no ack: against them a mismatched window
// falls back to the smaller of the two announcements (with a logged
// warning) instead of failing the session, and windows stay fixed.
// With WithAdaptiveWindow enabled and a revision-aware peer, the
// receiver tags occasional mux/window2 credit grants with a probe
// sequence; the sender echoes mux/winack, the measured credit-grant
// round trip drives the AIMD controller in flowctl.go, and window
// growth is granted as extra credit in further mux/window2 frames.
// Shrink cannot claw back granted credit, so it is applied as debt
// withheld from future refunds.

// Mux control frame kinds. Application kinds must not collide with
// these; all protocol kinds in this repository are namespaced
// ("psc/...", "privcount/...") so the "mux/" prefix is reserved.
const (
	kindMuxOpen    = "mux/open"
	kindMuxOpenAck = "mux/open-ack"
	kindMuxWindow  = "mux/window"
	kindMuxWindow2 = "mux/window2"
	kindMuxWinAck  = "mux/winack"
	kindMuxClose   = "mux/close"
	kindMuxReset   = "mux/reset"
)

// muxRev is the protocol revision this implementation speaks. Revision
// 1 adds open acknowledgement, asymmetric windows, and the
// window2/winack credit-probe loop. Revision-0 peers are detected by
// the zero Rev in their open (gob omits zero fields) and are never
// sent revision-1 frames, which they would misdeliver as application
// data.
const muxRev = 1

// DefaultWindow is the initial per-stream flow-control window: the
// maximum bytes (payload plus per-frame overhead) a sender may have
// buffered at the receiver. It bounds per-stream memory on both ends;
// adaptive streams grow beyond it toward their cap.
const DefaultWindow = 1 << 20

// frameOverhead is the accounting cost added to each frame's payload
// length, covering kind string and framing.
const frameOverhead = 64

// probeStale bounds how long the receiver waits for a winack before
// considering the probe lost (its sender may be a revision-1 peer that
// nevertheless failed to echo) and issuing a new one.
const probeStale = 5 * time.Second

func frameCost(f Frame) int64 { return int64(len(f.Payload)) + frameOverhead }

// openMsg announces a new stream. Window is the opener's receive
// window for this stream (and, symmetrically, the credit it assumes
// until an ack adjusts it); MaxWindow is the opener's adaptive cap (0:
// fixed); Rev is the opener's protocol revision. A revision-0 peer
// omits Rev/MaxWindow entirely — gob drops zero fields — which is
// exactly how its frames already look, so detection is free.
type openMsg struct {
	Round     uint64
	Label     string
	Window    int64
	MaxWindow int64
	Rev       int
}

// openAck is the acceptor's reply to a revision-aware open, announcing
// the acceptor's own receive window and cap for the stream.
type openAck struct {
	Window    int64
	MaxWindow int64
	Rev       int
}

// winUpdate is the revision-1 credit grant: Credit extends the
// sender's budget (refunds and window growth alike), Window reports
// the receiver's current window (monotonic high-water on the sender's
// side), and a nonzero Seq asks the sender to echo a winack so the
// receiver can time the credit round trip.
type winUpdate struct {
	Credit int64
	Window int64
	Seq    uint64
}

// Session multiplexes streams over one Conn. One side is the initiator
// (the party that dialed); stream IDs are unique per session because
// the initiator allocates odd IDs and the acceptor even ones.
type Session struct {
	conn      *Conn
	initiator bool

	mu      sync.Mutex
	streams map[uint64]*Stream
	nextID  uint64
	err     error
	closed  bool

	acceptCh chan *Stream
	done     chan struct{}

	// Control frames originated by the read loop (open-acks, winacks,
	// growth grants) are queued here and written by ctrlLoop, keeping
	// the read loop write-free.
	ctrlMu   sync.Mutex
	ctrlCond *sync.Cond
	ctrlq    []Frame
	ctrlDone bool
}

// NewSession starts a multiplexed session over conn and spawns its
// reader goroutine. Exactly one end must pass initiator=true (by
// convention the dialing party; the tally server accepts).
func NewSession(conn *Conn, initiator bool) *Session {
	s := &Session{
		conn:      conn,
		initiator: initiator,
		streams:   make(map[uint64]*Stream),
		acceptCh:  make(chan *Stream, 1024),
		done:      make(chan struct{}),
	}
	s.ctrlCond = sync.NewCond(&s.ctrlMu)
	go s.readLoop()
	go s.ctrlLoop()
	return s
}

// Open creates a new stream for the given round. The peer sees it on
// Accept. Opening never blocks on the peer.
func (s *Session) Open(round uint64, label string) (*Stream, error) {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, err
	}
	id := s.nextID*2 + 2 // even for acceptor
	if s.initiator {
		id = s.nextID*2 + 1 // odd for initiator
	}
	s.nextID++
	st := newStream(s, id, round, label)
	s.streams[id] = st
	s.mu.Unlock()

	payload, err := EncodePayload(openMsg{
		Round: round, Label: label,
		Window: s.conn.window, MaxWindow: s.conn.windowCap, Rev: muxRev,
	})
	if err != nil {
		return nil, err
	}
	if err := s.conn.SendFrame(Frame{Kind: kindMuxOpen, SID: id, Payload: payload}); err != nil {
		s.drop(id)
		return nil, err
	}
	return st, nil
}

// Accept returns the next peer-initiated stream. It blocks until one
// arrives or the session dies.
func (s *Session) Accept() (*Stream, error) {
	select {
	case st := <-s.acceptCh:
		return st, nil
	case <-s.done:
		return nil, s.Err()
	}
}

// Done closes when the session dies — the peer hung up, the transport
// failed, or Close was called. It is the engine's churn signal: a
// registry watching Done can move a party to the disconnected state the
// moment its TCP session drops, instead of discovering it on the next
// round's first failed stream operation.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err reports why the session died (nil while healthy).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close tears down the connection; every stream errors out.
func (s *Session) Close() error {
	s.fail(ErrClosed)
	return s.conn.Close()
}

// fail marks the session dead and wakes everything.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.streams = map[uint64]*Stream{}
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	s.ctrlMu.Lock()
	s.ctrlDone = true
	s.ctrlCond.Broadcast()
	s.ctrlMu.Unlock()
	for _, st := range streams {
		st.abort(err)
	}
	if !alreadyClosed {
		close(s.done)
	}
}

// sendCtrl queues a control frame for the control writer.
func (s *Session) sendCtrl(f Frame) {
	s.ctrlMu.Lock()
	if !s.ctrlDone {
		s.ctrlq = append(s.ctrlq, f)
		s.ctrlCond.Signal()
	}
	s.ctrlMu.Unlock()
}

// ctrlLoop writes queued control frames. It is the only writer the
// read loop can enlist, so read-side replies (open-acks, winacks)
// never block demultiplexing.
func (s *Session) ctrlLoop() {
	for {
		s.ctrlMu.Lock()
		for len(s.ctrlq) == 0 && !s.ctrlDone {
			s.ctrlCond.Wait()
		}
		if s.ctrlDone {
			s.ctrlMu.Unlock()
			return
		}
		f := s.ctrlq[0]
		s.ctrlq = s.ctrlq[1:]
		s.ctrlMu.Unlock()
		if err := s.conn.SendFrame(f); err != nil {
			s.fail(err)
			return
		}
	}
}

func (s *Session) drop(id uint64) {
	s.mu.Lock()
	delete(s.streams, id)
	s.mu.Unlock()
}

func (s *Session) lookup(id uint64) *Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

// handleOpen installs a peer-initiated stream. The peer's revision
// decides the window regime: revision-aware peers get an ack and run
// asymmetric (possibly adaptive) windows; revision-0 peers keep the
// fixed-window protocol, with a mismatched announcement degraded to
// the effective minimum instead of a session failure.
func (s *Session) handleOpen(f Frame, om openMsg) error {
	st := newStream(s, f.SID, om.Round, om.Label)
	st.sendCredit = om.Window
	st.sendWindow = om.Window
	st.peerMaxWindow = om.MaxWindow
	// Until its ack lands, a revision-1 opener sends against its own
	// announced window, so enforcement must honor the larger of the two
	// announcements; the same bound covers a revision-0 opener, which
	// sends against its own window forever.
	if om.Window > st.maxAdvertised {
		st.maxAdvertised = om.Window
	}
	if om.Rev >= 1 {
		st.peerRev = om.Rev
		st.acked = true
		if s.conn.adaptive {
			st.ctrl = newWinController(st.recvWindow, s.conn.windowCap)
		}
		payload, err := EncodePayload(openAck{Window: st.recvWindow, MaxWindow: s.conn.windowCap, Rev: muxRev})
		if err != nil {
			return err
		}
		s.sendCtrl(Frame{Kind: kindMuxOpenAck, SID: f.SID, Payload: payload})
	} else if om.Window != s.conn.window {
		// Fixed-window peer with a different -stream-window: run at the
		// smaller of the two instead of killing the session. If the
		// peer's is larger, the surplus it believes it holds is retired
		// as debt withheld from refunds; if smaller, it self-limits and
		// we just batch refunds against its window.
		log.Printf("wire: peer stream window %d differs from local %d and peer predates negotiation; falling back to %d",
			om.Window, s.conn.window, min64(om.Window, s.conn.window))
		if om.Window > s.conn.window {
			st.debt = om.Window - s.conn.window
		} else {
			st.recvWindow = om.Window
		}
	}
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return nil
	}
	if _, dup := s.streams[f.SID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("wire: duplicate stream id %d", f.SID)
	}
	s.streams[f.SID] = st
	s.mu.Unlock()
	select {
	case s.acceptCh <- st:
		return nil
	default:
		return fmt.Errorf("wire: accept backlog overflow")
	}
}

// readLoop is the demultiplexer. It never writes to the connection:
// refunds are sent from application Recv calls and read-side control
// replies go through ctrlLoop, so two sessions can never wedge each
// other by both blocking on a control write.
func (s *Session) readLoop() {
	for {
		f, err := s.conn.Recv()
		if err != nil {
			s.fail(err)
			return
		}
		switch f.Kind {
		case kindMuxOpen:
			var om openMsg
			if err := DecodePayload(f.Payload, &om); err != nil {
				s.fail(fmt.Errorf("wire: bad mux open: %w", err))
				return
			}
			if err := s.handleOpen(f, om); err != nil {
				s.fail(err)
				return
			}
		case kindMuxOpenAck:
			var ack openAck
			if err := DecodePayload(f.Payload, &ack); err != nil {
				s.fail(fmt.Errorf("wire: bad mux open-ack: %w", err))
				return
			}
			if st := s.lookup(f.SID); st != nil {
				st.onOpenAck(ack)
			}
		case kindMuxWindow:
			var credit int64
			if err := DecodePayload(f.Payload, &credit); err != nil {
				s.fail(fmt.Errorf("wire: bad window update: %w", err))
				return
			}
			if st := s.lookup(f.SID); st != nil {
				st.addCredit(credit)
			}
		case kindMuxWindow2:
			var wu winUpdate
			if err := DecodePayload(f.Payload, &wu); err != nil {
				s.fail(fmt.Errorf("wire: bad window2 update: %w", err))
				return
			}
			if st := s.lookup(f.SID); st != nil {
				st.onWinUpdate(wu)
			}
		case kindMuxWinAck:
			var seq uint64
			if err := DecodePayload(f.Payload, &seq); err != nil {
				s.fail(fmt.Errorf("wire: bad winack: %w", err))
				return
			}
			if st := s.lookup(f.SID); st != nil {
				st.onWinAck(seq)
			}
		case kindMuxClose:
			if st := s.lookup(f.SID); st != nil {
				st.remoteClose()
			}
		case kindMuxReset:
			var msg string
			_ = DecodePayload(f.Payload, &msg)
			if st := s.lookup(f.SID); st != nil {
				s.drop(f.SID)
				st.abort(fmt.Errorf("wire: stream reset by peer: %s", msg))
			}
		default:
			st := s.lookup(f.SID)
			if st == nil {
				continue // late frame on a reset stream
			}
			if !st.enqueue(f) {
				s.fail(fmt.Errorf("wire: stream %d overran its flow-control window", f.SID))
				return
			}
		}
	}
}

// StreamStats is the per-stream telemetry surface: byte counters for
// the round accounting, the live windows, and — when the adaptive
// controller is running — its RTT estimators and backoff count.
type StreamStats struct {
	// BytesSent and BytesRecv count payload bytes moved on the stream.
	BytesSent int64
	BytesRecv int64
	// SendWindow is the peer-announced window governing this end's
	// sends; RecvWindow is this end's own (current AIMD target when
	// adaptive).
	SendWindow int64
	RecvWindow int64
	// RTT is the smoothed credit-grant round-trip estimate and MinRTT
	// the smallest sample seen; both are zero until the first probe
	// completes (fixed-window streams never probe).
	RTT    time.Duration
	MinRTT time.Duration
	// Decreases counts AIMD multiplicative backoffs.
	Decreases int64
	// Throughput is the lifetime average receive rate in bytes/sec.
	Throughput float64
}

// Stream is one logical message channel of a Session. It implements
// Messenger, so every protocol role runs unchanged over a dedicated
// connection or over one stream of a shared session.
type Stream struct {
	sess    *Session
	id      uint64
	round   uint64
	label   string
	created time.Time

	mu   sync.Mutex
	cond *sync.Cond
	rq   []Frame
	// rqCost is the flow-control debt of queued frames; pendingCredit
	// is consumed cost not yet returned to the peer.
	rqCost        int64
	pendingCredit int64
	sendCredit    int64
	// sendWindow is the peer's announced receive window (the largest
	// frame that can ever be covered by credit); recvWindow is this
	// end's own, governing refunds and the adaptive target.
	sendWindow int64
	recvWindow int64
	// maxAdvertised is the high-water mark of credit the peer may
	// legitimately act on — the enforcement bound, which only grows.
	maxAdvertised int64
	// debt is window shrinkage not yet collected: credit already in
	// the peer's hands cannot be revoked, so it is withheld from
	// refunds until paid down.
	debt int64
	// ctrl is the AIMD controller; nil on fixed-window streams.
	ctrl          *winController
	peerRev       int
	peerMaxWindow int64
	// acked reports that the peer has confirmed revision awareness
	// (its open carried a revision, or its open-ack arrived) — the
	// gate on sending any revision-1 frame.
	acked bool
	// probeSeq numbers credit probes; probeSent is the departure time
	// of the outstanding probe (zero: none) and probeBytes the recv
	// counter at that moment.
	probeSeq     uint64
	probeSent    time.Time
	probeBytes   int64
	err          error
	failedCh     chan struct{}
	remoteClosed bool
	localClosed  bool
	bytesSent    int64 // payload bytes sent on this stream
	bytesRecv    int64 // payload bytes received on this stream
}

func newStream(s *Session, id, round uint64, label string) *Stream {
	st := &Stream{
		sess: s, id: id, round: round, label: label, created: time.Now(),
		sendCredit: s.conn.window, sendWindow: s.conn.window,
		recvWindow: s.conn.window, maxAdvertised: s.conn.window,
		failedCh: make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// Round reports the round ID the opener attached to this stream.
func (st *Stream) Round() uint64 { return st.round }

// Label reports the opener's stream label (the role being served).
func (st *Stream) Label() string { return st.label }

// Send encodes v as the payload of a frame with the given kind.
func (st *Stream) Send(kind string, v any) error {
	payload, err := EncodePayload(v)
	if err != nil {
		return fmt.Errorf("wire: encode %q: %w", kind, err)
	}
	return st.SendFrame(Frame{Kind: kind, Payload: payload})
}

// SendFrame writes a frame on the stream, blocking until flow-control
// credit covers it. A frame costing more than a full window can never
// be covered and is rejected outright rather than blocking forever.
func (st *Stream) SendFrame(f Frame) error {
	f.SID = st.id
	cost := frameCost(f)
	st.mu.Lock()
	if cost > st.sendWindow {
		st.mu.Unlock()
		return ErrFrameTooLarge
	}
	for st.err == nil && !st.localClosed && st.sendCredit < cost {
		st.cond.Wait()
	}
	if st.err != nil {
		err := st.err
		st.mu.Unlock()
		return err
	}
	if st.localClosed {
		st.mu.Unlock()
		return ErrClosed
	}
	st.sendCredit -= cost
	st.bytesSent += int64(len(f.Payload))
	st.mu.Unlock()
	if err := st.sess.conn.SendFrame(f); err != nil {
		return err
	}
	return nil
}

// Stats reports the stream's telemetry: byte counters, live windows,
// and the adaptive controller's RTT/throughput estimators.
func (st *Stream) Stats() StreamStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss := StreamStats{
		BytesSent:  st.bytesSent,
		BytesRecv:  st.bytesRecv,
		SendWindow: st.sendWindow,
		RecvWindow: st.recvWindow,
	}
	if st.ctrl != nil {
		ss.RTT = st.ctrl.srtt
		ss.MinRTT = st.ctrl.minRTT
		ss.Decreases = st.ctrl.decreases
	}
	if el := time.Since(st.created).Seconds(); el > 0 {
		ss.Throughput = float64(st.bytesRecv) / el
	}
	return ss
}

// onOpenAck applies the acceptor's window announcement: the opener
// assumed a symmetric window at open, so the send budget is adjusted
// by the difference, and the adaptive controller starts now that the
// peer is known to speak revision 1.
func (st *Stream) onOpenAck(ack openAck) {
	st.mu.Lock()
	if !st.acked {
		st.acked = true
		st.peerRev = ack.Rev
		st.peerMaxWindow = ack.MaxWindow
		delta := ack.Window - st.sendWindow
		st.sendWindow = ack.Window
		st.sendCredit += delta
		if st.sess.conn.adaptive && st.ctrl == nil {
			st.ctrl = newWinController(st.recvWindow, st.sess.conn.windowCap)
		}
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

// onWinUpdate applies a revision-1 credit grant and echoes the probe,
// if any, through the session's control writer.
func (st *Stream) onWinUpdate(wu winUpdate) {
	st.mu.Lock()
	st.sendCredit += wu.Credit
	if wu.Window > st.sendWindow {
		st.sendWindow = wu.Window
	}
	st.mu.Unlock()
	st.cond.Broadcast()
	if wu.Seq != 0 {
		// The peer sent a revision-1 frame, so it understands the echo.
		if payload, err := EncodePayload(wu.Seq); err == nil {
			st.sess.sendCtrl(Frame{Kind: kindMuxWinAck, SID: st.id, Payload: payload})
		}
	}
}

// onWinAck completes a credit probe: the grant-to-echo round trip and
// the bytes consumed meanwhile feed the AIMD controller, growth is
// granted as immediate extra credit, and shrinkage becomes refund
// debt.
func (st *Stream) onWinAck(seq uint64) {
	st.mu.Lock()
	if st.ctrl == nil || seq == 0 || seq != st.probeSeq || st.probeSent.IsZero() {
		st.mu.Unlock()
		return
	}
	rtt := time.Since(st.probeSent)
	consumed := st.bytesRecv - st.probeBytes
	st.probeSent = time.Time{}
	target := st.ctrl.observe(rtt, consumed)
	var extra int64
	switch {
	case target > st.recvWindow:
		extra = target - st.recvWindow
		st.recvWindow = target
		if target > st.maxAdvertised {
			st.maxAdvertised = target
		}
	case target < st.recvWindow:
		st.debt += st.recvWindow - target
		st.recvWindow = target
	}
	dead := st.err != nil || st.remoteClosed
	win := st.recvWindow
	st.mu.Unlock()
	if extra > 0 && !dead {
		if payload, err := EncodePayload(winUpdate{Credit: extra, Window: win}); err == nil {
			st.sess.sendCtrl(Frame{Kind: kindMuxWindow2, SID: st.id, Payload: payload})
		}
	}
}

// Recv returns the next frame, returning flow-control credit to the
// peer once half the window has been consumed.
func (st *Stream) Recv() (Frame, error) {
	st.mu.Lock()
	for len(st.rq) == 0 && st.err == nil && !st.remoteClosed {
		st.cond.Wait()
	}
	if len(st.rq) == 0 {
		err := st.err
		if err == nil {
			err = ErrClosed // remote half-closed and drained
		}
		st.mu.Unlock()
		return Frame{}, err
	}
	// Frames already delivered drain even if the stream has since
	// failed: a peer may legitimately send its last frame and close the
	// connection in the same instant.
	f := st.rq[0]
	st.rq = st.rq[1:]
	cost := frameCost(f)
	st.rqCost -= cost
	st.pendingCredit += cost
	var refund int64
	var probe uint64
	// Refund once half a window accumulates (batching window updates),
	// and always when the queue drains: leaving residual credit
	// unrefunded across an idle stream would cap the peer below a full
	// window, and a protocol whose next frame needs more than the
	// remainder (e.g. a PSC share chunk after the mix input left
	// window/2−1 unrefunded) would wedge both ends. A half-closed peer
	// gets nothing: it will never send on this stream again, and a
	// refund racing its process exit turns into a TCP RST that discards
	// data it already delivered.
	if (st.pendingCredit >= st.recvWindow/2 || len(st.rq) == 0) && !st.remoteClosed && st.err == nil {
		refund = st.pendingCredit
		st.pendingCredit = 0
		// Window shrinkage is collected here: withheld credit retires
		// debt instead of returning to the peer.
		if st.debt > 0 {
			if refund <= st.debt {
				st.debt -= refund
				refund = 0
			} else {
				refund -= st.debt
				st.debt = 0
			}
		}
		// Piggyback an RTT probe on the grant when the adaptive loop is
		// running and no probe is in flight (or the last one went
		// unanswered long enough to be presumed lost).
		if st.ctrl != nil && st.acked &&
			(st.probeSent.IsZero() || time.Since(st.probeSent) > probeStale) {
			st.probeSeq++
			probe = st.probeSeq
			st.probeSent = time.Now()
			st.probeBytes = st.bytesRecv
		}
	}
	rev1 := st.acked
	win := st.recvWindow
	st.mu.Unlock()
	if refund > 0 || probe != 0 {
		var payload []byte
		var err error
		kind := kindMuxWindow
		if rev1 {
			kind = kindMuxWindow2
			payload, err = EncodePayload(winUpdate{Credit: refund, Window: win, Seq: probe})
		} else {
			payload, err = EncodePayload(refund)
		}
		if err == nil {
			// A failed window update surfaces on the next Send/Recv via
			// the session error; ignore it here.
			_ = st.sess.conn.SendFrame(Frame{Kind: kind, SID: st.id, Payload: payload})
		}
	}
	return f, nil
}

// Expect receives the next frame, requires its kind to match, and
// decodes the payload into out.
func (st *Stream) Expect(kind string, out any) error {
	f, err := st.Recv()
	if err != nil {
		return err
	}
	if f.Kind != kind {
		return fmt.Errorf("wire: expected %q frame, got %q", kind, f.Kind)
	}
	if out == nil {
		return nil
	}
	if err := DecodePayload(f.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %q: %w", kind, err)
	}
	return nil
}

// Close half-closes the sending direction; the peer's Recv drains the
// queue then reports ErrClosed. The stream is forgotten once both sides
// have closed.
func (st *Stream) Close() error {
	st.mu.Lock()
	if st.localClosed || st.err != nil {
		st.mu.Unlock()
		return nil
	}
	st.localClosed = true
	remote := st.remoteClosed
	st.mu.Unlock()
	st.cond.Broadcast()
	if remote {
		st.sess.drop(st.id)
	}
	return st.sess.conn.SendFrame(Frame{Kind: kindMuxClose, SID: st.id})
}

// Reset aborts the stream on both ends: local operations fail
// immediately and the peer sees the message as an error. Other streams
// of the session are unaffected — this is the round-failure isolation
// primitive.
func (st *Stream) Reset(msg string) {
	st.sess.drop(st.id)
	st.abort(fmt.Errorf("wire: stream reset: %s", msg))
	payload, err := EncodePayload(msg)
	if err != nil {
		return
	}
	_ = st.sess.conn.SendFrame(Frame{Kind: kindMuxReset, SID: st.id, Payload: payload})
}

// enqueue adds an inbound frame, reporting false on window overrun.
func (st *Stream) enqueue(f Frame) bool {
	st.mu.Lock()
	if st.err != nil {
		st.mu.Unlock()
		return true // stream already dead; drop silently
	}
	st.rqCost += frameCost(f)
	// Allow the largest window ever advertised plus one max frame of
	// slack for accounting skew; beyond that the peer is ignoring flow
	// control.
	if st.rqCost > st.maxAdvertised+int64(st.sess.conn.maxFrame)+frameOverhead {
		st.mu.Unlock()
		return false
	}
	st.bytesRecv += int64(len(f.Payload))
	st.rq = append(st.rq, f)
	st.mu.Unlock()
	st.cond.Broadcast()
	return true
}

func (st *Stream) addCredit(n int64) {
	st.mu.Lock()
	st.sendCredit += n
	st.mu.Unlock()
	st.cond.Broadcast()
}

func (st *Stream) remoteClose() {
	st.mu.Lock()
	st.remoteClosed = true
	local := st.localClosed
	st.mu.Unlock()
	st.cond.Broadcast()
	if local {
		st.sess.drop(st.id)
	}
}

// Failed closes when the stream dies (reset by either side, or session
// death). It lets a goroutine holding a stream open on behalf of a
// round — but blocked on something other than the stream — learn the
// round is gone. It does not fire on a clean Close.
func (st *Stream) Failed() <-chan struct{} { return st.failedCh }

// abort marks the stream failed and wakes all waiters. Frames already
// queued remain readable; only blocking and future operations fail.
func (st *Stream) abort(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
		close(st.failedCh)
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
