package wire

import (
	"fmt"
	"sync"
)

// Stream multiplexing: a Session carries many logical Streams — one per
// (round, party-role) — over a single framed connection, so a party
// keeps one persistent TLS connection to the tally server across every
// round it ever participates in. Each stream has credit-based flow
// control: a sender may have at most one window of bytes in flight, so
// a burst on one round's stream can neither exhaust the receiver's
// memory nor starve the connection for other rounds.
//
// The design mirrors HTTP/2 in miniature: the session reader goroutine
// only demultiplexes (it never writes, so two sessions can never
// deadlock writing window updates at each other); credit is returned
// from the application's Recv calls; stream IDs carry an initiator bit
// so both ends can open streams without coordination.

// Mux control frame kinds. Application kinds must not collide with
// these; all protocol kinds in this repository are namespaced
// ("psc/...", "privcount/...") so the "mux/" prefix is reserved.
const (
	kindMuxOpen   = "mux/open"
	kindMuxWindow = "mux/window"
	kindMuxClose  = "mux/close"
	kindMuxReset  = "mux/reset"
)

// DefaultWindow is the per-stream flow-control window: the maximum
// bytes (payload plus per-frame overhead) a sender may have buffered at
// the receiver. It bounds per-stream memory on both ends.
const DefaultWindow = 1 << 20

// frameOverhead is the accounting cost added to each frame's payload
// length, covering kind string and framing.
const frameOverhead = 64

func frameCost(f Frame) int64 { return int64(len(f.Payload)) + frameOverhead }

// openMsg announces a new stream.
type openMsg struct {
	Round  uint64
	Label  string
	Window int64
}

// Session multiplexes streams over one Conn. One side is the initiator
// (the party that dialed); stream IDs are unique per session because
// the initiator allocates odd IDs and the acceptor even ones.
type Session struct {
	conn      *Conn
	initiator bool

	mu      sync.Mutex
	streams map[uint64]*Stream
	nextID  uint64
	err     error
	closed  bool

	acceptCh chan *Stream
	done     chan struct{}
}

// NewSession starts a multiplexed session over conn and spawns its
// reader goroutine. Exactly one end must pass initiator=true (by
// convention the dialing party; the tally server accepts).
func NewSession(conn *Conn, initiator bool) *Session {
	s := &Session{
		conn:      conn,
		initiator: initiator,
		streams:   make(map[uint64]*Stream),
		acceptCh:  make(chan *Stream, 1024),
		done:      make(chan struct{}),
	}
	go s.readLoop()
	return s
}

// Open creates a new stream for the given round. The peer sees it on
// Accept. Opening never blocks on the peer.
func (s *Session) Open(round uint64, label string) (*Stream, error) {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, err
	}
	id := s.nextID*2 + 2 // even for acceptor
	if s.initiator {
		id = s.nextID*2 + 1 // odd for initiator
	}
	s.nextID++
	st := newStream(s, id, round, label)
	s.streams[id] = st
	s.mu.Unlock()

	payload, err := EncodePayload(openMsg{Round: round, Label: label, Window: s.conn.window})
	if err != nil {
		return nil, err
	}
	if err := s.conn.SendFrame(Frame{Kind: kindMuxOpen, SID: id, Payload: payload}); err != nil {
		s.drop(id)
		return nil, err
	}
	return st, nil
}

// Accept returns the next peer-initiated stream. It blocks until one
// arrives or the session dies.
func (s *Session) Accept() (*Stream, error) {
	select {
	case st := <-s.acceptCh:
		return st, nil
	case <-s.done:
		return nil, s.Err()
	}
}

// Done closes when the session dies — the peer hung up, the transport
// failed, or Close was called. It is the engine's churn signal: a
// registry watching Done can move a party to the disconnected state the
// moment its TCP session drops, instead of discovering it on the next
// round's first failed stream operation.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err reports why the session died (nil while healthy).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close tears down the connection; every stream errors out.
func (s *Session) Close() error {
	s.fail(ErrClosed)
	return s.conn.Close()
}

// fail marks the session dead and wakes everything.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.streams = map[uint64]*Stream{}
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	for _, st := range streams {
		st.abort(err)
	}
	if !alreadyClosed {
		close(s.done)
	}
}

func (s *Session) drop(id uint64) {
	s.mu.Lock()
	delete(s.streams, id)
	s.mu.Unlock()
}

func (s *Session) lookup(id uint64) *Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

// readLoop is the demultiplexer. It never writes to the connection:
// window updates are sent from application Recv calls, so two sessions
// can never wedge each other by both blocking on a control write.
func (s *Session) readLoop() {
	for {
		f, err := s.conn.Recv()
		if err != nil {
			s.fail(err)
			return
		}
		switch f.Kind {
		case kindMuxOpen:
			var om openMsg
			if err := DecodePayload(f.Payload, &om); err != nil {
				s.fail(fmt.Errorf("wire: bad mux open: %w", err))
				return
			}
			// The window must match on both ends: there is no
			// negotiation, and a sender configured larger than its
			// receiver would overrun the receiver's enforcement limit
			// mid-round. Reject the mismatch here, where the error can
			// name the two values, instead of killing a busy session
			// with an overrun later.
			if om.Window != s.conn.window {
				s.fail(fmt.Errorf("wire: peer stream window %d does not match local %d (set the same -stream-window on both ends)",
					om.Window, s.conn.window))
				return
			}
			st := newStream(s, f.SID, om.Round, om.Label)
			st.sendCredit = om.Window
			st.sendWindow = om.Window
			s.mu.Lock()
			if s.err != nil {
				s.mu.Unlock()
				return
			}
			if _, dup := s.streams[f.SID]; dup {
				s.mu.Unlock()
				s.fail(fmt.Errorf("wire: duplicate stream id %d", f.SID))
				return
			}
			s.streams[f.SID] = st
			s.mu.Unlock()
			select {
			case s.acceptCh <- st:
			default:
				s.fail(fmt.Errorf("wire: accept backlog overflow"))
				return
			}
		case kindMuxWindow:
			var credit int64
			if err := DecodePayload(f.Payload, &credit); err != nil {
				s.fail(fmt.Errorf("wire: bad window update: %w", err))
				return
			}
			if st := s.lookup(f.SID); st != nil {
				st.addCredit(credit)
			}
		case kindMuxClose:
			if st := s.lookup(f.SID); st != nil {
				st.remoteClose()
			}
		case kindMuxReset:
			var msg string
			_ = DecodePayload(f.Payload, &msg)
			if st := s.lookup(f.SID); st != nil {
				s.drop(f.SID)
				st.abort(fmt.Errorf("wire: stream reset by peer: %s", msg))
			}
		default:
			st := s.lookup(f.SID)
			if st == nil {
				continue // late frame on a reset stream
			}
			if !st.enqueue(f) {
				s.fail(fmt.Errorf("wire: stream %d overran its flow-control window", f.SID))
				return
			}
		}
	}
}

// Stream is one logical message channel of a Session. It implements
// Messenger, so every protocol role runs unchanged over a dedicated
// connection or over one stream of a shared session.
type Stream struct {
	sess  *Session
	id    uint64
	round uint64
	label string

	mu   sync.Mutex
	cond *sync.Cond
	rq   []Frame
	// rqCost is the flow-control debt of queued frames; pendingCredit
	// is consumed cost not yet returned to the peer.
	rqCost        int64
	pendingCredit int64
	sendCredit    int64
	// sendWindow is the peer's announced receive window (the largest
	// frame that can ever be covered by credit); recvWindow is this
	// end's own, governing refunds and overrun detection.
	sendWindow   int64
	recvWindow   int64
	err          error
	failedCh     chan struct{}
	remoteClosed bool
	localClosed  bool
	bytesSent    int64 // payload bytes sent on this stream
	bytesRecv    int64 // payload bytes received on this stream
}

func newStream(s *Session, id, round uint64, label string) *Stream {
	st := &Stream{
		sess: s, id: id, round: round, label: label,
		sendCredit: s.conn.window, sendWindow: s.conn.window,
		recvWindow: s.conn.window, failedCh: make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// Round reports the round ID the opener attached to this stream.
func (st *Stream) Round() uint64 { return st.round }

// Label reports the opener's stream label (the role being served).
func (st *Stream) Label() string { return st.label }

// Send encodes v as the payload of a frame with the given kind.
func (st *Stream) Send(kind string, v any) error {
	payload, err := EncodePayload(v)
	if err != nil {
		return fmt.Errorf("wire: encode %q: %w", kind, err)
	}
	return st.SendFrame(Frame{Kind: kind, Payload: payload})
}

// SendFrame writes a frame on the stream, blocking until flow-control
// credit covers it. A frame costing more than a full window can never
// be covered and is rejected outright rather than blocking forever.
func (st *Stream) SendFrame(f Frame) error {
	f.SID = st.id
	cost := frameCost(f)
	if cost > st.sendWindow {
		return ErrFrameTooLarge
	}
	st.mu.Lock()
	for st.err == nil && !st.localClosed && st.sendCredit < cost {
		st.cond.Wait()
	}
	if st.err != nil {
		err := st.err
		st.mu.Unlock()
		return err
	}
	if st.localClosed {
		st.mu.Unlock()
		return ErrClosed
	}
	st.sendCredit -= cost
	st.bytesSent += int64(len(f.Payload))
	st.mu.Unlock()
	if err := st.sess.conn.SendFrame(f); err != nil {
		return err
	}
	return nil
}

// Stats reports the payload bytes moved on this stream in each
// direction, feeding the engine's per-round metrics.
func (st *Stream) Stats() (sent, recv int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytesSent, st.bytesRecv
}

// Recv returns the next frame, returning flow-control credit to the
// peer once half the window has been consumed.
func (st *Stream) Recv() (Frame, error) {
	st.mu.Lock()
	for len(st.rq) == 0 && st.err == nil && !st.remoteClosed {
		st.cond.Wait()
	}
	if len(st.rq) == 0 {
		err := st.err
		if err == nil {
			err = ErrClosed // remote half-closed and drained
		}
		st.mu.Unlock()
		return Frame{}, err
	}
	// Frames already delivered drain even if the stream has since
	// failed: a peer may legitimately send its last frame and close the
	// connection in the same instant.
	f := st.rq[0]
	st.rq = st.rq[1:]
	cost := frameCost(f)
	st.rqCost -= cost
	st.pendingCredit += cost
	var refund int64
	// Refund once half a window accumulates (batching window updates),
	// and always when the queue drains: leaving residual credit
	// unrefunded across an idle stream would cap the peer below a full
	// window, and a protocol whose next frame needs more than the
	// remainder (e.g. a PSC share chunk after the mix input left
	// window/2−1 unrefunded) would wedge both ends. A half-closed peer
	// gets nothing: it will never send on this stream again, and a
	// refund racing its process exit turns into a TCP RST that discards
	// data it already delivered.
	if (st.pendingCredit >= st.recvWindow/2 || len(st.rq) == 0) && !st.remoteClosed && st.err == nil {
		refund = st.pendingCredit
		st.pendingCredit = 0
	}
	st.mu.Unlock()
	if refund > 0 {
		payload, err := EncodePayload(refund)
		if err == nil {
			// A failed window update surfaces on the next Send/Recv via
			// the session error; ignore it here.
			_ = st.sess.conn.SendFrame(Frame{Kind: kindMuxWindow, SID: st.id, Payload: payload})
		}
	}
	return f, nil
}

// Expect receives the next frame, requires its kind to match, and
// decodes the payload into out.
func (st *Stream) Expect(kind string, out any) error {
	f, err := st.Recv()
	if err != nil {
		return err
	}
	if f.Kind != kind {
		return fmt.Errorf("wire: expected %q frame, got %q", kind, f.Kind)
	}
	if out == nil {
		return nil
	}
	if err := DecodePayload(f.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %q: %w", kind, err)
	}
	return nil
}

// Close half-closes the sending direction; the peer's Recv drains the
// queue then reports ErrClosed. The stream is forgotten once both sides
// have closed.
func (st *Stream) Close() error {
	st.mu.Lock()
	if st.localClosed || st.err != nil {
		st.mu.Unlock()
		return nil
	}
	st.localClosed = true
	remote := st.remoteClosed
	st.mu.Unlock()
	st.cond.Broadcast()
	if remote {
		st.sess.drop(st.id)
	}
	return st.sess.conn.SendFrame(Frame{Kind: kindMuxClose, SID: st.id})
}

// Reset aborts the stream on both ends: local operations fail
// immediately and the peer sees the message as an error. Other streams
// of the session are unaffected — this is the round-failure isolation
// primitive.
func (st *Stream) Reset(msg string) {
	st.sess.drop(st.id)
	st.abort(fmt.Errorf("wire: stream reset: %s", msg))
	payload, err := EncodePayload(msg)
	if err != nil {
		return
	}
	_ = st.sess.conn.SendFrame(Frame{Kind: kindMuxReset, SID: st.id, Payload: payload})
}

// enqueue adds an inbound frame, reporting false on window overrun.
func (st *Stream) enqueue(f Frame) bool {
	st.mu.Lock()
	if st.err != nil {
		st.mu.Unlock()
		return true // stream already dead; drop silently
	}
	st.rqCost += frameCost(f)
	// Allow one window of queued frames plus one max frame of slack for
	// accounting skew; beyond that the peer is ignoring flow control.
	if st.rqCost > st.recvWindow+int64(st.sess.conn.maxFrame)+frameOverhead {
		st.mu.Unlock()
		return false
	}
	st.bytesRecv += int64(len(f.Payload))
	st.rq = append(st.rq, f)
	st.mu.Unlock()
	st.cond.Broadcast()
	return true
}

func (st *Stream) addCredit(n int64) {
	st.mu.Lock()
	st.sendCredit += n
	st.mu.Unlock()
	st.cond.Broadcast()
}

func (st *Stream) remoteClose() {
	st.mu.Lock()
	st.remoteClosed = true
	local := st.localClosed
	st.mu.Unlock()
	st.cond.Broadcast()
	if local {
		st.sess.drop(st.id)
	}
}

// Failed closes when the stream dies (reset by either side, or session
// death). It lets a goroutine holding a stream open on behalf of a
// round — but blocked on something other than the stream — learn the
// round is gone. It does not fire on a clean Close.
func (st *Stream) Failed() <-chan struct{} { return st.failedCh }

// abort marks the stream failed and wakes all waiters. Frames already
// queued remain readable; only blocking and future operations fail.
func (st *Stream) abort(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
		close(st.failedCh)
	}
	st.mu.Unlock()
	st.cond.Broadcast()
}
