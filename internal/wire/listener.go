package wire

import (
	"net"
	"sync"
	"time"
)

// netListener and the tiny indirection functions keep tls.go free of
// direct net imports tangled with TLS logic.
type netListener = net.Listener

func netListen(network, addr string) (net.Listener, error) {
	return net.Listen(network, addr)
}

func dialerWithTimeout(timeout time.Duration) *net.Dialer {
	return &net.Dialer{Timeout: timeout}
}

// Listener accepts framed connections, applying its options to each.
type Listener struct {
	l    net.Listener
	opts []Option
}

// Addr returns the bound address (use after Listen on port 0).
func (ln Listener) Addr() net.Addr { return ln.l.Addr() }

// Close stops accepting.
func (ln Listener) Close() error { return ln.l.Close() }

// Accept waits for the next connection.
func (ln Listener) Accept() (*Conn, error) {
	c, err := ln.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c, ln.opts...), nil
}

// Serve accepts connections until the listener closes, invoking handle
// in a new goroutine per connection. It returns after the listener is
// closed and all handlers have finished.
func (ln Listener) Serve(handle func(*Conn)) {
	var wg sync.WaitGroup
	for {
		c, err := ln.Accept()
		if err != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			handle(c)
		}()
	}
	wg.Wait()
}
