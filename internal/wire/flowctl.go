package wire

import "time"

// Receiver-driven credit-window autotuning. A static per-stream window
// caps throughput at window/RTT regardless of link capacity — a 1 MiB
// window over a 600 ms Tor-like round trip moves at most ~1.7 MB/s no
// matter how fat the pipe is. The controller grows the receive window
// toward the measured bandwidth-delay product and backs off when RTT
// inflation says queues are building: AIMD, the TCP shape, driven
// entirely from the receiving end because credit is the receiver's
// resource to grant.
//
// Measurement rides the existing credit loop: the receiver tags an
// occasional window update with a sequence number (one probe
// outstanding at a time), the sender echoes it, and the round trip —
// grant leaving to echo returning — is the same path credit itself
// travels, so it prices exactly the latency that stalls a
// window-limited sender.

// DefaultWindowCap bounds adaptive window growth when
// WithAdaptiveWindow is given no explicit cap. 16 MiB covers the
// bandwidth-delay product of a 10 MB/s link at 1.6 s RTT — beyond the
// unfavorable end of the Tor deployment envelope — while bounding
// worst-case per-stream buffering.
const DefaultWindowCap = 16 << 20

// flowIncrement is the additive growth step once slow-start ends.
const flowIncrement = 256 << 10

// winController holds the AIMD state for one stream's receive window.
// Callers serialize access (it lives under the stream mutex).
type winController struct {
	initial int64
	cap     int64
	win     int64

	minRTT time.Duration
	srtt   time.Duration

	slowStart bool
	// decreases counts multiplicative backoffs, exposed through
	// StreamStats for tests and gauges.
	decreases int64
}

func newWinController(initial, cap int64) *winController {
	if cap < initial {
		cap = initial
	}
	return &winController{initial: initial, cap: cap, win: initial, slowStart: true}
}

// observe feeds one completed probe: the credit-grant round-trip time
// and the bytes the application consumed while the probe was in
// flight. It returns the new target window.
//
// Congestion is inferred from delay, not loss: the transport is
// reliable, so loss reaches us only as retransmit stalls, which is to
// say as RTT inflation — a sample beyond 2× the minimum observed RTT
// halves the window (floor: the initial window). Otherwise, if the
// sender was window-limited during the probe (it moved at least half
// a window in one round trip), the window grows: doubling while in
// slow-start, one increment per probe after the first backoff. A
// sender that cannot fill half the window is limited by the link or
// itself, and growing the window further would only buy buffering.
func (c *winController) observe(rtt time.Duration, bytes int64) int64 {
	if rtt <= 0 {
		return c.win
	}
	if c.minRTT == 0 || rtt < c.minRTT {
		c.minRTT = rtt
	}
	if c.srtt == 0 {
		c.srtt = rtt
	} else {
		c.srtt = (7*c.srtt + rtt) / 8
	}
	switch {
	case rtt > 2*c.minRTT:
		c.slowStart = false
		c.decreases++
		c.win /= 2
		if c.win < c.initial {
			c.win = c.initial
		}
	case 2*bytes >= c.win:
		if c.slowStart {
			c.win *= 2
		} else {
			c.win += flowIncrement
		}
		if c.win > c.cap {
			c.win = c.cap
		}
	}
	return c.win
}
