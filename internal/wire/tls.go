package wire

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"time"
)

// Identity is a party's long-term TLS identity: an Ed25519 key with a
// self-signed certificate. Peers authenticate by pinning the SPKI hash,
// not by a CA — the deployment model of a coordinated research study
// where operators exchange fingerprints out of band.
type Identity struct {
	Name string
	Cert tls.Certificate
	spki [32]byte
}

// GenerateIdentity creates a fresh identity with a certificate valid
// for the given duration.
func GenerateIdentity(name string, validFor time.Duration) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("wire: keygen: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 120))
	if err != nil {
		return nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: name},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(validFor),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
		DNSNames:              []string{name},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, pub, priv)
	if err != nil {
		return nil, fmt.Errorf("wire: create cert: %w", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	id := &Identity{
		Name: name,
		Cert: tls.Certificate{Certificate: [][]byte{der}, PrivateKey: priv, Leaf: leaf},
	}
	id.spki = sha256.Sum256(leaf.RawSubjectPublicKeyInfo)
	return id, nil
}

// SPKI returns the SHA-256 hash of the identity's SubjectPublicKeyInfo,
// the value peers pin.
func (id *Identity) SPKI() [32]byte { return id.spki }

// Fingerprint renders the SPKI pin as hex for configuration files.
func (id *Identity) Fingerprint() string { return hex.EncodeToString(id.spki[:]) }

// ServerTLS returns the TLS configuration for accepting connections as
// this identity.
func (id *Identity) ServerTLS() *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{id.Cert},
		MinVersion:   tls.VersionTLS13,
	}
}

// ErrPinMismatch is returned when a peer presents a certificate whose
// public key does not match the pinned fingerprint.
var ErrPinMismatch = errors.New("wire: peer public key does not match pin")

// ClientTLS returns a TLS configuration that accepts exactly the peer
// holding the pinned SPKI, regardless of certificate chains.
func ClientTLS(pin [32]byte) *tls.Config {
	return &tls.Config{
		// Chain and hostname verification are replaced by the pin check;
		// a self-signed cert cannot pass standard verification.
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS13,
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			if len(rawCerts) == 0 {
				return ErrPinMismatch
			}
			cert, err := x509.ParseCertificate(rawCerts[0])
			if err != nil {
				return err
			}
			got := sha256.Sum256(cert.RawSubjectPublicKeyInfo)
			if got != pin {
				return ErrPinMismatch
			}
			return nil
		},
	}
}

// ClientTLSPin builds a pinned client TLS config from a hex SPKI
// fingerprint (the format Fingerprint prints and operators exchange).
// An empty string selects plain TCP (nil config).
func ClientTLSPin(fingerprint string) (*tls.Config, error) {
	if fingerprint == "" {
		return nil, nil
	}
	raw, err := hex.DecodeString(fingerprint)
	if err != nil || len(raw) != 32 {
		return nil, fmt.Errorf("wire: bad SPKI fingerprint %q", fingerprint)
	}
	var pin [32]byte
	copy(pin[:], raw)
	return ClientTLS(pin), nil
}

// Listen opens a TCP listener, TLS-wrapped when tlsCfg is non-nil.
// Use addr "127.0.0.1:0" in tests to get an ephemeral port.
func Listen(addr string, tlsCfg *tls.Config, opts ...Option) (Listener, error) {
	l, err := newTCPListener(addr)
	if err != nil {
		return Listener{}, err
	}
	if tlsCfg != nil {
		return Listener{l: tls.NewListener(l, tlsCfg), opts: opts}, nil
	}
	return Listener{l: l, opts: opts}, nil
}

func newTCPListener(addr string) (netListener, error) {
	return netListen("tcp", addr)
}

// Dial connects to addr, TLS-wrapped when tlsCfg is non-nil, with the
// given timeout.
func Dial(addr string, tlsCfg *tls.Config, timeout time.Duration, opts ...Option) (*Conn, error) {
	d := dialerWithTimeout(timeout)
	if tlsCfg != nil {
		c, err := tls.DialWithDialer(d, "tcp", addr, tlsCfg)
		if err != nil {
			return nil, err
		}
		return NewConn(c, opts...), nil
	}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c, opts...), nil
}
