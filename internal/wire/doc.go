// Package wire is the message transport shared by the PrivCount and PSC
// deployments: length-framed, gob-encoded messages over TCP, optionally
// wrapped in TLS with ephemeral self-signed certificates authenticated
// by pinned public-key hashes (the way a research deployment pins its
// tally server and share keepers to known operators).
//
// The same Conn type also runs over an in-memory pipe so protocol tests
// exercise identical code paths without sockets.
//
// # Key types
//
//   - Frame: the unit of exchange — a kind tag, a gob payload, and a
//     stream ID for multiplexed sessions.
//   - Conn: a framed connection with a per-connection frame cap.
//   - Session / Stream: HTTP/2-in-miniature multiplexing — one
//     persistent connection carries one logical Stream per (round,
//     role), each with credit-based flow control. Session.Done is the
//     churn signal the engine's party registry watches.
//   - Messenger: the interface every protocol role speaks, satisfied by
//     both Conn and Stream, so a role runs unchanged over a dedicated
//     connection or one stream of a shared session.
//   - Identity / Listener / Dial: the TLS layer with SPKI-fingerprint
//     pinning.
//
// # Invariants
//
//   - No frame exceeds the connection's cap (DefaultMaxFrame, 1 MiB
//     unless overridden with WithMaxFrame): vector-valued protocol
//     phases chunk their payloads, and a peer demanding a larger
//     allocation is dropped, not accommodated.
//   - A stream sender may have at most one flow-control window
//     (DefaultWindow) in flight; the session read loop never writes,
//     so two sessions cannot deadlock exchanging window updates.
//   - The "mux/" frame-kind prefix is reserved for session control;
//     protocol kinds are namespaced ("psc/...", "privcount/...",
//     "engine/...").
//   - Send and Recv are each safe for one concurrent caller (a reader
//     goroutine plus a writer goroutine — the shape every chunked
//     phase uses).
package wire
