package wire

import (
	"errors"
	"sync"
	"testing"
	"time"
)

type testMsg struct {
	Round int
	Blobs [][]byte
	Name  string
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	want := testMsg{Round: 3, Blobs: [][]byte{{1, 2}, {3}}, Name: "dc-1"}
	done := make(chan error, 1)
	go func() { done <- a.Send("report", want) }()

	var got testMsg
	if err := b.Expect("report", &got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Round != want.Round || got.Name != want.Name || len(got.Blobs) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestExpectKindMismatch(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go a.Send("hello", testMsg{})
	err := b.Expect("goodbye", nil)
	if err == nil {
		t.Fatal("kind mismatch must error")
	}
}

func TestRecvAfterClose(t *testing.T) {
	a, b := Pipe()
	b.Close()
	a.Close()
	if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestTCPPlain(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		var m testMsg
		if err := c.Expect("ping", &m); err != nil {
			t.Error(err)
			return
		}
		if err := c.Send("pong", testMsg{Round: m.Round + 1}); err != nil {
			t.Error(err)
		}
	}()

	c, err := Dial(ln.Addr().String(), nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("ping", testMsg{Round: 1}); err != nil {
		t.Fatal(err)
	}
	var reply testMsg
	if err := c.Expect("pong", &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Round != 2 {
		t.Fatalf("reply: %+v", reply)
	}
	wg.Wait()
}

func TestTLSPinnedSuccess(t *testing.T) {
	id, err := GenerateIdentity("tally", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Listen("127.0.0.1:0", id.ServerTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var m testMsg
		if c.Expect("hello", &m) == nil {
			c.Send("ack", m)
		}
	}()

	c, err := Dial(ln.Addr().String(), ClientTLS(id.SPKI()), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send("hello", testMsg{Name: "sk-0"}); err != nil {
		t.Fatal(err)
	}
	var got testMsg
	if err := c.Expect("ack", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "sk-0" {
		t.Fatalf("ack: %+v", got)
	}
}

func TestTLSPinMismatchRejected(t *testing.T) {
	server, _ := GenerateIdentity("tally", time.Hour)
	imposter, _ := GenerateIdentity("tally", time.Hour) // same name, different key
	ln, err := Listen("127.0.0.1:0", server.ServerTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Recv() // force handshake progress
			c.Close()
		}
	}()

	c, err := Dial(ln.Addr().String(), ClientTLS(imposter.SPKI()), 2*time.Second)
	if err == nil {
		// TLS handshakes may be lazy; force one.
		err = c.Send("x", testMsg{})
		c.Close()
	}
	if err == nil {
		t.Fatal("pin mismatch must fail the handshake")
	}
}

func TestIdentityFingerprint(t *testing.T) {
	id, err := GenerateIdentity("cp-1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	fp := id.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint length %d", len(fp))
	}
	id2, _ := GenerateIdentity("cp-1", time.Hour)
	if id2.Fingerprint() == fp {
		t.Fatal("distinct identities must have distinct fingerprints")
	}
}

func TestFrameSizeLimit(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	huge := Frame{Kind: "x", Payload: make([]byte, DefaultMaxFrame+1)}
	if err := a.SendFrame(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame: %v", err)
	}
	// A connection may raise its cap explicitly.
	big, small := Pipe(WithMaxFrame(4 << 20))
	defer big.Close()
	defer small.Close()
	go big.SendFrame(Frame{Kind: "x", Payload: make([]byte, DefaultMaxFrame+1)})
	if _, err := small.Recv(); err != nil {
		t.Fatalf("raised cap: %v", err)
	}
}

func TestEncodeDecodePayload(t *testing.T) {
	in := testMsg{Round: 9, Name: "x"}
	b, err := EncodePayload(in)
	if err != nil {
		t.Fatal(err)
	}
	var out testMsg
	if err := DecodePayload(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Round != 9 || out.Name != "x" || out.Blobs != nil {
		t.Fatalf("payload round trip: %+v", out)
	}
	if err := DecodePayload([]byte{1, 2, 3}, &out); err == nil {
		t.Fatal("garbage payload must fail")
	}
}

func TestServeHandlesMultipleConnections(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	served := 0
	done := make(chan struct{})
	go func() {
		ln.Serve(func(c *Conn) {
			var m testMsg
			if c.Expect("n", &m) == nil {
				mu.Lock()
				served++
				mu.Unlock()
				c.Send("ok", m)
			}
		})
		close(done)
	}()

	const clients = 5
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(ln.Addr().String(), nil, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			if err := c.Send("n", testMsg{Round: i}); err != nil {
				t.Error(err)
				return
			}
			var m testMsg
			if err := c.Expect("ok", &m); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	ln.Close()
	<-done
	if served != clients {
		t.Fatalf("served %d of %d", served, clients)
	}
}

func BenchmarkPipeSendRecv(b *testing.B) {
	x, y := Pipe()
	defer x.Close()
	defer y.Close()
	msg := testMsg{Round: 1, Blobs: [][]byte{make([]byte, 1024)}}
	go func() {
		for {
			if _, err := y.Recv(); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Send("m", msg); err != nil {
			b.Fatal(err)
		}
	}
}
