package wire

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipeSessions builds a connected initiator/acceptor session pair over
// an in-memory pipe.
func pipeSessions(opts ...Option) (*Session, *Session) {
	a, b := Pipe(opts...)
	return NewSession(a, true), NewSession(b, false)
}

func TestMuxSingleStreamRoundTrip(t *testing.T) {
	client, server := pipeSessions()
	defer client.Close()
	defer server.Close()

	go func() {
		st, err := client.Open(7, "psc/round")
		if err != nil {
			t.Error(err)
			return
		}
		st.Send("hello", testMsg{Round: 7, Name: "cp-0"})
		var reply testMsg
		if err := st.Expect("ack", &reply); err != nil {
			t.Error(err)
		}
		st.Close()
	}()

	st, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if st.Round() != 7 || st.Label() != "psc/round" {
		t.Fatalf("stream metadata: round=%d label=%q", st.Round(), st.Label())
	}
	var m testMsg
	if err := st.Expect("hello", &m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "cp-0" {
		t.Fatalf("got %+v", m)
	}
	if err := st.Send("ack", m); err != nil {
		t.Fatal(err)
	}
	// Peer half-closed; after drain we must see ErrClosed.
	if _, err := st.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after peer close, got %v", err)
	}
}

// TestMuxConcurrentStreams interleaves many streams, each carrying its
// own ordered sequence, in both directions at once.
func TestMuxConcurrentStreams(t *testing.T) {
	client, server := pipeSessions()
	defer client.Close()
	defer server.Close()

	const streams = 8
	const msgs = 20

	// Server: echo every frame back on the same stream.
	go func() {
		for {
			st, err := server.Accept()
			if err != nil {
				return
			}
			go func(st *Stream) {
				for {
					f, err := st.Recv()
					if err != nil {
						return
					}
					if err := st.SendFrame(f); err != nil {
						return
					}
				}
			}(st)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := client.Open(uint64(i), fmt.Sprintf("s%d", i))
			if err != nil {
				errCh <- err
				return
			}
			defer st.Close()
			for k := 0; k < msgs; k++ {
				want := testMsg{Round: i*1000 + k}
				if err := st.Send("m", want); err != nil {
					errCh <- err
					return
				}
				var got testMsg
				if err := st.Expect("m", &got); err != nil {
					errCh <- err
					return
				}
				if got.Round != want.Round {
					errCh <- fmt.Errorf("stream %d: got %d want %d", i, got.Round, want.Round)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestMuxFlowControlBounds pushes more than a full window through one
// stream while a second stream stays responsive: the sender must block
// on credit, not break the session, and the receiver's queue must stay
// bounded.
func TestMuxFlowControlBounds(t *testing.T) {
	client, server := pipeSessions()
	defer client.Close()
	defer server.Close()

	st, err := client.Open(1, "bulk")
	if err != nil {
		t.Fatal(err)
	}
	const frames = 24 // 24 * 128 KiB = 3 windows worth
	payload := make([]byte, 128<<10)
	sendDone := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if err := st.SendFrame(Frame{Kind: "bulk", Payload: payload}); err != nil {
				sendDone <- err
				return
			}
		}
		sendDone <- st.Close()
	}()

	srvSt, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	// Drain slowly, checking the queue never exceeds the window.
	got := 0
	for {
		srvSt.mu.Lock()
		if srvSt.rqCost > DefaultWindow+int64(server.conn.maxFrame)+frameOverhead {
			srvSt.mu.Unlock()
			t.Fatalf("receive queue overran the window: %d", srvSt.rqCost)
		}
		srvSt.mu.Unlock()
		_, err := srvSt.Recv()
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != frames {
		t.Fatalf("received %d of %d frames", got, frames)
	}
	if err := <-sendDone; err != nil {
		t.Fatal(err)
	}
}

// TestMuxResetIsolatesStreams kills one stream mid-flight and verifies
// a sibling stream on the same session is unaffected — the per-round
// failure isolation the round engine depends on.
func TestMuxResetIsolatesStreams(t *testing.T) {
	client, server := pipeSessions()
	defer client.Close()
	defer server.Close()

	doomed, err := client.Open(1, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := client.Open(2, "healthy")
	if err != nil {
		t.Fatal(err)
	}

	srvDoomed, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	srvHealthy, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}

	doomed.Reset("round aborted")
	if _, err := srvDoomed.Recv(); err == nil || !strings.Contains(err.Error(), "round aborted") {
		t.Fatalf("doomed stream must surface the reset reason, got %v", err)
	}
	if err := doomed.Send("x", testMsg{}); err == nil {
		t.Fatal("send on reset stream must fail")
	}

	// The sibling still works in both directions.
	go srvHealthy.Send("pong", testMsg{Round: 2})
	if err := healthy.Send("ping", testMsg{Round: 1}); err != nil {
		t.Fatal(err)
	}
	var m testMsg
	if err := healthy.Expect("pong", &m); err != nil {
		t.Fatal(err)
	}
	if err := srvHealthy.Expect("ping", &m); err != nil {
		t.Fatal(err)
	}
}

// TestMuxOversizedFrameRejected: a frame that could never be covered by
// a full flow-control window must error immediately instead of blocking
// forever on credit.
func TestMuxOversizedFrameRejected(t *testing.T) {
	client, server := pipeSessions(WithMaxFrame(4 << 20))
	defer client.Close()
	defer server.Close()
	st, err := client.Open(1, "s")
	if err != nil {
		t.Fatal(err)
	}
	err = st.SendFrame(Frame{Kind: "big", Payload: make([]byte, DefaultWindow)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized stream frame: %v", err)
	}
}

// TestMuxFailedChannel: Failed fires on reset (either side) and session
// death, but not on clean close.
func TestMuxFailedChannel(t *testing.T) {
	client, server := pipeSessions()
	defer client.Close()
	defer server.Close()

	st, err := client.Open(1, "s")
	if err != nil {
		t.Fatal(err)
	}
	srvSt, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-srvSt.Failed():
		t.Fatal("Failed fired on a healthy stream")
	default:
	}
	st.Close()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-srvSt.Failed():
		t.Fatal("Failed fired on clean close")
	default:
	}
	srvSt.Reset("done with it")
	select {
	case <-srvSt.Failed():
	case <-time.After(2 * time.Second):
		t.Fatal("Failed did not fire on local reset")
	}
	select {
	case <-st.Failed():
	case <-time.After(2 * time.Second):
		t.Fatal("Failed did not fire on peer reset")
	}
}

// TestMuxSessionDeathWakesStreams closes the underlying conn and checks
// every blocked stream operation returns.
func TestMuxSessionDeathWakesStreams(t *testing.T) {
	client, server := pipeSessions()
	defer server.Close()

	st, err := client.Open(1, "s")
	if err != nil {
		t.Fatal(err)
	}
	recvErr := make(chan error, 1)
	go func() {
		_, err := st.Recv()
		recvErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	client.Close()
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("recv must fail after session close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv still blocked after session close")
	}
	if _, err := client.Open(2, "s"); err == nil {
		t.Fatal("open on dead session must fail")
	}
}

// TestMuxOverTCPWithTLS runs a session pair over a real pinned-TLS
// loopback connection.
func TestMuxOverTCPWithTLS(t *testing.T) {
	id, err := GenerateIdentity("tally", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Listen("127.0.0.1:0", id.ServerTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srvDone := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			srvDone <- err
			return
		}
		sess := NewSession(c, false)
		defer sess.Close()
		st, err := sess.Accept()
		if err != nil {
			srvDone <- err
			return
		}
		var m testMsg
		if err := st.Expect("hello", &m); err != nil {
			srvDone <- err
			return
		}
		srvDone <- st.Send("ack", m)
	}()

	c, err := Dial(ln.Addr().String(), ClientTLS(id.SPKI()), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c, true)
	defer sess.Close()
	st, err := sess.Open(1, "round")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send("hello", testMsg{Name: "dc-1"}); err != nil {
		t.Fatal(err)
	}
	var m testMsg
	if err := st.Expect("ack", &m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "dc-1" {
		t.Fatalf("ack: %+v", m)
	}
	if err := <-srvDone; err != nil {
		t.Fatal(err)
	}
}

// TestMuxConfigurableWindow exercises WithWindow end to end: a shrunken
// window still moves bulk data correctly (credit-gated, many refunds),
// frames exceeding the configured window are rejected outright, and the
// announced window governs the opener's credit toward the acceptor.
func TestMuxConfigurableWindow(t *testing.T) {
	const window = 16 << 10
	client, server := pipeSessions(WithWindow(window))
	defer client.Close()
	defer server.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		st, err := client.Open(1, "bulk")
		if err != nil {
			t.Error(err)
			return
		}
		// A frame costing more than one window can never be covered.
		if err := st.SendFrame(Frame{Kind: "big", Payload: make([]byte, window+1)}); !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("oversized frame: got %v, want ErrFrameTooLarge", err)
		}
		// 64 frames of 4 KiB: ~16 windows of data, forcing repeated
		// credit refunds through the shrunken window.
		for i := 0; i < 64; i++ {
			payload := make([]byte, 4096)
			payload[0] = byte(i)
			if err := st.SendFrame(Frame{Kind: "bulk", Payload: payload}); err != nil {
				t.Errorf("frame %d: %v", i, err)
				return
			}
		}
		st.Close()
	}()

	st, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Kind != "bulk" || len(f.Payload) != 4096 || f.Payload[0] != byte(i) {
			t.Fatalf("frame %d corrupted: kind %q len %d tag %d", i, f.Kind, len(f.Payload), f.Payload[0])
		}
	}
	wg.Wait()
}

// TestMuxIdleStreamRefundsResidualCredit pins the drain-time refund: a
// receiver that consumed just under half a window and then went idle
// must still return the credit, or the sender's next larger frame can
// never be covered and both ends wedge (the PSC decrypt phase hit
// exactly this with a shrunken -stream-window).
func TestMuxIdleStreamRefundsResidualCredit(t *testing.T) {
	const window = 16 << 10
	client, server := pipeSessions(WithWindow(window))
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		st, err := client.Open(1, "residual")
		if err != nil {
			done <- err
			return
		}
		// Under half a window: without the drain refund this residual
		// stays unreturned...
		if err := st.SendFrame(Frame{Kind: "a", Payload: make([]byte, 8000)}); err != nil {
			done <- err
			return
		}
		// ...and this frame needs more credit than the remainder.
		done <- st.SendFrame(Frame{Kind: "b", Payload: make([]byte, 9000)})
	}()

	st, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a", "b"} {
		f, err := st.Recv()
		if err != nil {
			t.Fatalf("frame %q: %v", want, err)
		}
		if f.Kind != want {
			t.Fatalf("got %q, want %q", f.Kind, want)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sender wedged: residual credit never refunded on idle stream")
	}
}

// TestMuxNegotiatesAsymmetricWindows pins the revision-1 handshake:
// two ends configured with different windows run them asymmetrically —
// each direction governed by its receiver's announcement — instead of
// the pre-negotiation hard rejection. Bulk data in both directions
// must survive the handover from the opener's assumed window to the
// acked one.
func TestMuxNegotiatesAsymmetricWindows(t *testing.T) {
	a, b := Pipe()
	WithWindow(4 << 20)(a)
	WithWindow(64 << 10)(b)
	client := NewSession(a, true)
	server := NewSession(b, false)
	defer client.Close()
	defer server.Close()

	cst, err := client.Open(1, "asym")
	if err != nil {
		t.Fatal(err)
	}
	sst, err := server.Accept()
	if err != nil {
		t.Fatalf("asymmetric windows must negotiate, not fail: %v", err)
	}

	// Move ~3 MiB each way in 32 KiB frames — enough to force refunds
	// through both windows, including the small one.
	const frames = 96
	payload := make([]byte, 32<<10)
	errCh := make(chan error, 2)
	go func() {
		for i := 0; i < frames; i++ {
			if err := cst.SendFrame(Frame{Kind: "c2s", Payload: payload}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	go func() {
		for i := 0; i < frames; i++ {
			if err := sst.SendFrame(Frame{Kind: "s2c", Payload: payload}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < frames; i++ {
		if f, err := sst.Recv(); err != nil || f.Kind != "c2s" {
			t.Fatalf("server frame %d: %v %q", i, err, f.Kind)
		}
		if f, err := cst.Recv(); err != nil || f.Kind != "s2c" {
			t.Fatalf("client frame %d: %v %q", i, err, f.Kind)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	// After the ack the opener's send direction must be governed by the
	// acceptor's 64 KiB window, and vice versa.
	if ss := cst.Stats(); ss.SendWindow != 64<<10 {
		t.Fatalf("opener send window %d, want the acceptor's 64 KiB", ss.SendWindow)
	}
	if ss := sst.Stats(); ss.SendWindow != 4<<20 {
		t.Fatalf("acceptor send window %d, want the opener's 4 MiB", ss.SendWindow)
	}
}

// TestMuxOldPeerWindowFallback speaks the revision-0 protocol by hand
// (an open with no Rev field, like any pre-negotiation build) with a
// mismatched window: the session must fall back to the effective
// minimum with a warning instead of failing, must keep moving data,
// and must never send the old peer a revision-1 frame it would
// misread as application data.
func TestMuxOldPeerWindowFallback(t *testing.T) {
	for _, tc := range []struct {
		name       string
		peerWindow int64
	}{
		{"peer-smaller", 32 << 10},
		{"peer-larger", 4 << 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			old, b := Pipe()
			server := NewSession(b, false)
			defer server.Close()
			defer old.Close()

			payload, err := EncodePayload(openMsg{Round: 9, Label: "legacy", Window: tc.peerWindow})
			if err != nil {
				t.Fatal(err)
			}
			if err := old.SendFrame(Frame{Kind: kindMuxOpen, SID: 1, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			st, err := server.Accept()
			if err != nil {
				t.Fatalf("old-peer window mismatch must fall back, not fail: %v", err)
			}

			// A real revision-0 peer always has a read loop; emulate it, so
			// the server's synchronous refunds over the unbuffered pipe have
			// a reader.
			oldFrames := make(chan Frame, 64)
			go func() {
				defer close(oldFrames)
				for {
					f, err := old.Recv()
					if err != nil {
						return
					}
					oldFrames <- f
				}
			}()

			// Old peer sends within the effective window; the server must
			// receive and refund with the legacy frame kind only.
			data := make([]byte, 8<<10)
			for i := 0; i < 4; i++ {
				if err := old.SendFrame(Frame{Kind: "d", Payload: data, SID: 1}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 4; i++ {
				if f, err := st.Recv(); err != nil || f.Kind != "d" {
					t.Fatalf("frame %d: %v %q", i, err, f.Kind)
				}
			}
			if err := st.Send("reply", testMsg{Round: 9}); err != nil {
				t.Fatal(err)
			}
			// Everything the old peer sees must be revision-0: data,
			// legacy window refunds, close — never open-ack/window2/winack.
			sawReply := false
			for !sawReply {
				f, ok := <-oldFrames
				if !ok {
					t.Fatal("old peer connection died before the reply")
				}
				switch f.Kind {
				case kindMuxWindow, "reply":
					sawReply = f.Kind == "reply"
				default:
					t.Fatalf("old peer received revision-1 or unexpected frame %q", f.Kind)
				}
			}

			st.mu.Lock()
			effective, debt := st.recvWindow, st.debt
			st.mu.Unlock()
			if tc.peerWindow < DefaultWindow {
				if effective != tc.peerWindow {
					t.Fatalf("effective window %d, want fallback to peer's %d", effective, tc.peerWindow)
				}
			} else {
				// The initial surplus, minus what the four drained frames
				// already withheld instead of refunding.
				want := tc.peerWindow - DefaultWindow - 4*(8<<10+frameOverhead)
				if debt != want {
					t.Fatalf("debt %d, want %d still withheld to shrink the larger peer to local", debt, want)
				}
			}
		})
	}
}
