package wire

import (
	"encoding/binary"
	"net"
	"testing"
	"testing/quick"
	"time"
)

// TestRecvGarbageDoesNotPanic feeds arbitrary byte salads to the frame
// decoder: it must error, never panic, and never allocate absurdly.
func TestRecvGarbageDoesNotPanic(t *testing.T) {
	f := func(payload []byte) bool {
		server, client := net.Pipe()
		defer server.Close()
		conn := NewConn(client)
		defer conn.Close()

		go func() {
			// A plausible length prefix followed by garbage.
			var lenb [4]byte
			n := uint32(len(payload))
			binary.BigEndian.PutUint32(lenb[:], n)
			server.Write(lenb[:])
			server.Write(payload)
			server.Close()
		}()
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		_, err := conn.Recv()
		return err != nil // garbage must never decode into a valid frame silently... or may decode; just must not panic
	}
	// Errors are expected for essentially all inputs; a rare accidental
	// valid gob is tolerable, so only panics fail the test.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Recv panicked: %v", r)
		}
	}()
	_ = quick.Check(f, &quick.Config{MaxCount: 200})
}

// TestRecvHugeLengthPrefixRejected: a length prefix beyond the
// connection's frame cap must be rejected before any allocation.
func TestRecvHugeLengthPrefixRejected(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	conn := NewConn(client)
	defer conn.Close()
	go func() {
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], DefaultMaxFrame+1)
		server.Write(lenb[:])
	}()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Recv(); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

// TestRecvTruncatedFrame: a frame cut mid-payload errors rather than
// blocking forever (the peer closed).
func TestRecvTruncatedFrame(t *testing.T) {
	server, client := net.Pipe()
	conn := NewConn(client)
	defer conn.Close()
	go func() {
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], 100)
		server.Write(lenb[:])
		server.Write([]byte("short"))
		server.Close()
	}()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Recv(); err == nil {
		t.Fatal("truncated frame must error")
	}
}

// TestConcurrentSendersSafe: two goroutines sending on one conn must
// not interleave frames (writeMu) — the receiver sees two valid frames.
func TestConcurrentSendersSafe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	msg := testMsg{Blobs: [][]byte{make([]byte, 32*1024)}}
	errCh := make(chan error, 2)
	go func() { errCh <- a.Send("one", msg) }()
	go func() { errCh <- a.Send("two", msg) }()
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		f, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		seen[f.Kind] = true
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if !seen["one"] || !seen["two"] {
		t.Fatalf("frames corrupted by concurrent senders: %v", seen)
	}
}
