package dp

import (
	"errors"
	"fmt"
	"math"
)

// Params is an (ε,δ) differential-privacy guarantee over 24 hours of a
// single user's bounded network activity.
type Params struct {
	Epsilon float64
	Delta   float64
}

// StudyParams returns the parameters the paper uses: ε = 0.3 (matching
// Tor's own onion-service statistics) and δ = 10⁻¹¹, chosen so that nδ
// stays small even for n ≈ 10⁶ users (§3.2).
func StudyParams() Params { return Params{Epsilon: 0.3, Delta: 1e-11} }

// Validate checks the parameters are usable.
func (p Params) Validate() error {
	if !(p.Epsilon > 0) || math.IsInf(p.Epsilon, 0) {
		return fmt.Errorf("dp: epsilon must be positive and finite, got %v", p.Epsilon)
	}
	if !(p.Delta > 0) || p.Delta >= 1 {
		return fmt.Errorf("dp: delta must be in (0,1), got %v", p.Delta)
	}
	return nil
}

// Split divides the budget evenly across n concurrently collected
// statistics (basic composition).
func (p Params) Split(n int) (Params, error) {
	if n <= 0 {
		return Params{}, errors.New("dp: split over non-positive count")
	}
	return Params{Epsilon: p.Epsilon / float64(n), Delta: p.Delta / float64(n)}, nil
}

// Compose returns the sequential composition of two guarantees: budgets
// add (basic composition theorem).
func (p Params) Compose(q Params) Params {
	return Params{Epsilon: p.Epsilon + q.Epsilon, Delta: p.Delta + q.Delta}
}

// GaussianSigma returns the standard deviation required by the Gaussian
// mechanism to make a statistic with the given L2 sensitivity
// (ε,δ)-differentially private: σ = s·√(2·ln(1.25/δ))/ε.
func (p Params) GaussianSigma(sensitivity float64) float64 {
	if sensitivity <= 0 {
		return 0
	}
	return sensitivity * math.Sqrt(2*math.Log(1.25/p.Delta)) / p.Epsilon
}

// UserProtection reports the effective per-user delta when the network
// hosts n users; the paper argues δ·n must stay small for every user to
// be simultaneously protected (§3.2, citing Dwork & Roth).
func (p Params) UserProtection(users float64) float64 { return p.Delta * users }
