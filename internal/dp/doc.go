// Package dp implements the differential-privacy methodology of the
// paper's §3.2: the (ε,δ) privacy parameters, the Table 1 action bounds
// derived from models of reasonable daily Tor activity, per-statistic
// sensitivity, Gaussian noise calibration with budget allocation across
// concurrently collected statistics (PrivCount), binomial noise (PSC),
// and a sequential-composition accountant that enforces the paper's
// measurement-scheduling rules.
//
// # Key types
//
//   - Params: an (ε,δ) guarantee over 24 hours of bounded activity;
//     StudyParams returns the paper's ε=0.3, δ=10⁻¹¹.
//   - Bounds / Statistic / Allocate: Table 1 action bounds,
//     per-statistic sensitivity, and noise-budget allocation (equal or
//     optimal) across concurrently collected statistics.
//   - NoiseSource: deterministic-or-cryptographic Gaussian and
//     binomial noise used by the DC and CP roles.
//   - Accountant: sequential-composition bookkeeping with an optional
//     hard budget — Spend admits a round or fails with
//     ErrBudgetExhausted, Refund returns a spend whose round never
//     ran.
//
// # Invariants
//
//   - The accountant is concurrency-safe and refuses rounds past its
//     budget rather than silently eroding the guarantee; the engine
//     consults it before opening any round stream.
//   - Spent budget is in-memory only (persistence across daemon
//     restarts is an open ROADMAP item): restarting the tally resets
//     the ledger, which operators must account for in long epochs.
package dp
