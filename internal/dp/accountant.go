package dp

import (
	"fmt"
	"sort"
	"time"
)

// Accountant enforces the paper's measurement-scheduling discipline
// (§3.1): PrivCount and PSC measurements are never conducted in
// parallel, at least 24 hours separate the starts of sequential
// measurements of distinct statistics (the paper's own calendar runs
// back-to-back 24-hour rounds), and the cumulative privacy budget
// across the study is tracked by sequential composition.
type Accountant struct {
	perRound   Params
	minGap     time.Duration
	rounds     []roundRecord
	cumulative Params
}

type roundRecord struct {
	name       string
	start, end time.Time
}

// NewAccountant returns an accountant granting each round the given
// budget and requiring minGap between the end of one round and the start
// of the next round measuring different statistics.
func NewAccountant(perRound Params, minGap time.Duration) (*Accountant, error) {
	if err := perRound.Validate(); err != nil {
		return nil, err
	}
	if minGap < 0 {
		return nil, fmt.Errorf("dp: negative gap %v", minGap)
	}
	return &Accountant{perRound: perRound, minGap: minGap}, nil
}

// StudyAccountant returns the accountant configured as in the paper:
// per-round (0.3, 10⁻¹¹) and a 24-hour separation rule.
func StudyAccountant() *Accountant {
	a, err := NewAccountant(StudyParams(), 24*time.Hour)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	return a
}

// Authorize records a measurement round named name over [start, end) and
// returns its budget. It fails if the round overlaps any prior round, or
// if it measures different statistics than the previous round without
// the required separation.
func (a *Accountant) Authorize(name string, start, end time.Time) (Params, error) {
	if !end.After(start) {
		return Params{}, fmt.Errorf("dp: round %q has non-positive duration", name)
	}
	for _, r := range a.rounds {
		if start.Before(r.end) && r.start.Before(end) {
			return Params{}, fmt.Errorf("dp: round %q overlaps round %q: measurements must never run in parallel", name, r.name)
		}
		if r.name != name {
			if gap := absDur(start.Sub(r.start)); gap < a.minGap {
				return Params{}, fmt.Errorf("dp: round %q starts %v from distinct round %q; need %v separation",
					name, gap, r.name, a.minGap)
			}
		}
	}
	a.rounds = append(a.rounds, roundRecord{name: name, start: start, end: end})
	sort.Slice(a.rounds, func(i, j int) bool { return a.rounds[i].start.Before(a.rounds[j].start) })
	a.cumulative = a.cumulative.Compose(a.perRound)
	return a.perRound, nil
}

// Cumulative returns the total budget consumed so far under basic
// sequential composition.
func (a *Accountant) Cumulative() Params { return a.cumulative }

// Rounds reports the number of authorized rounds.
func (a *Accountant) Rounds() int { return len(a.rounds) }

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
