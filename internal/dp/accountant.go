package dp

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Accountant enforces the paper's measurement-scheduling discipline
// (§3.1): PrivCount and PSC measurements are never conducted in
// parallel, at least 24 hours separate the starts of sequential
// measurements of distinct statistics (the paper's own calendar runs
// back-to-back 24-hour rounds), and the cumulative privacy budget
// across the study is tracked by sequential composition.
//
// An optional total budget (SetBudget) turns the accountant into a
// gatekeeper: once the cumulative spend would exceed the study's (ε,δ)
// allowance, further rounds are refused. The round engine consults it
// through Spend, so an operator cannot schedule rounds whose combined
// noise weight breaks the guarantee.
//
// Accountant is safe for concurrent use; the engine authorizes rounds
// from multiple scheduling goroutines.
type Accountant struct {
	mu        sync.Mutex
	perRound  Params
	minGap    time.Duration
	rounds    []roundRecord
	budget    Params
	hasBudget bool
	ledger    string // persistence path; empty disables
}

type roundRecord struct {
	name       string
	start, end time.Time
}

// ledgerFile is the on-disk form of the accountant's spent state. The
// per-round parameters and budget stay configuration (flags), so a
// redeployed daemon can tighten them; only the irreversible facts —
// which rounds spent budget — persist.
type ledgerFile struct {
	Rounds []ledgerRecord `json:"rounds"`
}

// ledgerRecord is one authorized round in the ledger.
type ledgerRecord struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start,omitempty"`
	End   time.Time `json:"end,omitempty"`
}

// NewAccountant returns an accountant granting each round the given
// budget and requiring minGap between the end of one round and the start
// of the next round measuring different statistics.
func NewAccountant(perRound Params, minGap time.Duration) (*Accountant, error) {
	if err := perRound.Validate(); err != nil {
		return nil, err
	}
	if minGap < 0 {
		return nil, fmt.Errorf("dp: negative gap %v", minGap)
	}
	return &Accountant{perRound: perRound, minGap: minGap}, nil
}

// StudyAccountant returns the accountant configured as in the paper:
// per-round (0.3, 10⁻¹¹) and a 24-hour separation rule.
func StudyAccountant() *Accountant {
	a, err := NewAccountant(StudyParams(), 24*time.Hour)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	return a
}

// SetBudget caps the cumulative study budget. Authorize and Spend
// refuse rounds that would push the spend past either ε or δ.
func (a *Accountant) SetBudget(total Params) error {
	if err := total.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.budget, a.hasBudget = total, true
	return nil
}

// ErrBudgetExhausted is wrapped by refusals from a budget-capped
// accountant, so schedulers can tell "out of budget" from other errors.
var ErrBudgetExhausted = errors.New("privacy budget exhausted")

// SetLedger attaches a JSON ledger file: spent rounds recorded there by
// a previous process are loaded immediately (so spent ε survives daemon
// restarts across a months-long epoch), and every subsequent Spend,
// Refund, and Authorize rewrites the file atomically before returning.
// A missing file starts an empty ledger; a corrupt one is an error —
// refusing to guess is the only safe reading of a privacy ledger.
func (a *Accountant) SetLedger(path string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return fmt.Errorf("dp: read ledger %s: %w", path, err)
		}
		a.ledger = path
		return a.persistLocked()
	}
	var lf ledgerFile
	if err := json.Unmarshal(raw, &lf); err != nil {
		return fmt.Errorf("dp: parse ledger %s: %w", path, err)
	}
	rounds := make([]roundRecord, len(lf.Rounds))
	for i, r := range lf.Rounds {
		if r.Name == "" {
			return fmt.Errorf("dp: ledger %s round %d has no name", path, i)
		}
		rounds[i] = roundRecord{name: r.Name, start: r.Start, end: r.End}
	}
	a.rounds = rounds
	a.ledger = path
	return nil
}

// persistLocked rewrites the ledger (holding a.mu). Writes go to a
// temp file in the ledger's directory and rename into place, so a
// crash mid-write can never leave a truncated ledger.
func (a *Accountant) persistLocked() error {
	if a.ledger == "" {
		return nil
	}
	lf := ledgerFile{Rounds: make([]ledgerRecord, len(a.rounds))}
	for i, r := range a.rounds {
		lf.Rounds[i] = ledgerRecord{Name: r.name, Start: r.start, End: r.end}
	}
	raw, err := json.MarshalIndent(lf, "", "  ")
	if err != nil {
		return fmt.Errorf("dp: encode ledger: %w", err)
	}
	dir := filepath.Dir(a.ledger)
	tmp, err := os.CreateTemp(dir, ".ledger-*")
	if err != nil {
		return fmt.Errorf("dp: write ledger: %w", err)
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dp: write ledger: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dp: write ledger: %w", err)
	}
	if err := os.Rename(tmp.Name(), a.ledger); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dp: write ledger: %w", err)
	}
	return nil
}

// spent computes (holding a.mu) the cumulative spend of n rounds. It
// multiplies rather than accumulating additions, so a budget set as
// N×perRound compares exactly against N spends — repeated float
// addition drifts by ULPs and would refuse the Nth legitimate round.
func (a *Accountant) spent(n int) Params {
	return Params{Epsilon: a.perRound.Epsilon * float64(n), Delta: a.perRound.Delta * float64(n)}
}

// budgetSlack absorbs rounding in operator-supplied budgets that are
// not an exact float multiple of the per-round parameters.
const budgetSlack = 1e-9

// overBudget reports (holding a.mu) whether spending one more round
// would exceed the configured budget.
func (a *Accountant) overBudget() error {
	if !a.hasBudget {
		return nil
	}
	cum, next := a.spent(len(a.rounds)), a.spent(len(a.rounds)+1)
	if next.Epsilon > a.budget.Epsilon*(1+budgetSlack) || next.Delta > a.budget.Delta*(1+budgetSlack) {
		return fmt.Errorf("dp: %w: %d rounds spent (ε=%.4g, δ=%.3g); one more round needs (ε=%.4g, δ=%.3g) against a budget of (ε=%.4g, δ=%.3g)",
			ErrBudgetExhausted, len(a.rounds), cum.Epsilon, cum.Delta,
			next.Epsilon, next.Delta, a.budget.Epsilon, a.budget.Delta)
	}
	return nil
}

// Spend authorizes one round by budget alone, without the calendar
// rules: the round engine runs concurrent rounds over scaled
// simulations and live feeds, where the paper's no-parallel and
// 24-hour-gap discipline is the operator's job, but the cumulative
// (ε,δ) spend is still hard-enforced. Returns the per-round budget, or
// a refusal when the budget would be exceeded.
func (a *Accountant) Spend(name string) (Params, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.overBudget(); err != nil {
		return Params{}, fmt.Errorf("round %q refused: %w", name, err)
	}
	a.rounds = append(a.rounds, roundRecord{name: name})
	if err := a.persistLocked(); err != nil {
		// A spend that cannot be recorded must not authorize: after a
		// restart it would be invisible and the budget double-spent.
		a.rounds = a.rounds[:len(a.rounds)-1]
		return Params{}, fmt.Errorf("round %q refused: %w", name, err)
	}
	return a.perRound, nil
}

// Refund returns one Spend after a scheduling failure: the refunded
// round never opened a stream or released data, so its budget unit is
// restored. Only the most recent spend of the given name is refundable.
func (a *Accountant) Refund(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.rounds) - 1; i >= 0; i-- {
		if a.rounds[i].name == name {
			a.rounds = append(a.rounds[:i], a.rounds[i+1:]...)
			// A refund that fails to persist leaves the ledger
			// overstating the spend — the safe direction; the next
			// successful write reconciles it.
			_ = a.persistLocked()
			return
		}
	}
}

// Authorize records a measurement round named name over [start, end) and
// returns its budget. It fails if the round overlaps any prior round, if
// it measures different statistics than the previous round without the
// required separation, or if it would exceed the configured budget.
func (a *Accountant) Authorize(name string, start, end time.Time) (Params, error) {
	if !end.After(start) {
		return Params{}, fmt.Errorf("dp: round %q has non-positive duration", name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.overBudget(); err != nil {
		return Params{}, err
	}
	for _, r := range a.rounds {
		if start.Before(r.end) && r.start.Before(end) {
			return Params{}, fmt.Errorf("dp: round %q overlaps round %q: measurements must never run in parallel", name, r.name)
		}
		if r.name != name {
			if gap := absDur(start.Sub(r.start)); gap < a.minGap {
				return Params{}, fmt.Errorf("dp: round %q starts %v from distinct round %q; need %v separation",
					name, gap, r.name, a.minGap)
			}
		}
	}
	a.rounds = append(a.rounds, roundRecord{name: name, start: start, end: end})
	sort.Slice(a.rounds, func(i, j int) bool { return a.rounds[i].start.Before(a.rounds[j].start) })
	if err := a.persistLocked(); err != nil {
		for i, r := range a.rounds {
			if r.name == name && r.start.Equal(start) {
				a.rounds = append(a.rounds[:i], a.rounds[i+1:]...)
				break
			}
		}
		return Params{}, err
	}
	return a.perRound, nil
}

// Cumulative returns the total budget consumed so far under basic
// sequential composition.
func (a *Accountant) Cumulative() Params {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent(len(a.rounds))
}

// Rounds reports the number of authorized rounds.
func (a *Accountant) Rounds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.rounds)
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
