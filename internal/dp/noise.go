package dp

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// NoiseSource draws the random noise required by the privacy mechanisms.
// It reads entropy from an io.Reader — crypto/rand in production, a
// seeded stream in tests — and converts it to uniform, normal, and
// binomial variates.
type NoiseSource struct {
	r io.Reader
	// cached second Box–Muller variate
	spare    float64
	hasSpare bool
}

// NewNoiseSource returns a source reading from r; a nil r selects
// crypto/rand.
func NewNoiseSource(r io.Reader) *NoiseSource {
	if r == nil {
		r = rand.Reader
	}
	return &NoiseSource{r: r}
}

// Uniform returns a uniform float64 in (0,1).
func (n *NoiseSource) Uniform() float64 {
	var b [8]byte
	if _, err := io.ReadFull(n.r, b[:]); err != nil {
		panic("dp: noise entropy source failed: " + err.Error())
	}
	// 53 random mantissa bits, then shift into (0,1) avoiding exactly 0.
	u := binary.LittleEndian.Uint64(b[:]) >> 11
	return (float64(u) + 0.5) / (1 << 53)
}

// Normal returns a standard normal variate via Box–Muller.
func (n *NoiseSource) Normal() float64 {
	if n.hasSpare {
		n.hasSpare = false
		return n.spare
	}
	u1, u2 := n.Uniform(), n.Uniform()
	r := math.Sqrt(-2 * math.Log(u1))
	n.spare = r * math.Sin(2*math.Pi*u2)
	n.hasSpare = true
	return r * math.Cos(2*math.Pi*u2)
}

// Gaussian returns a normal variate with mean 0 and the given sigma.
func (n *NoiseSource) Gaussian(sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	return n.Normal() * sigma
}

// Binomial returns a Binomial(trials, 1/2) variate by counting fair coin
// flips, the noise distribution PSC adds to the union count (§3.3). It is
// exact, not an approximation, because PSC's confidence intervals depend
// on the precise distribution.
func (n *NoiseSource) Binomial(trials int) int {
	count := 0
	buf := make([]byte, (trials+7)/8)
	if _, err := io.ReadFull(n.r, buf); err != nil {
		panic("dp: noise entropy source failed: " + err.Error())
	}
	for i := 0; i < trials; i++ {
		if buf[i/8]&(1<<(i%8)) != 0 {
			count++
		}
	}
	return count
}

// Statistic describes one statistic collected in a PrivCount round for
// the purpose of noise calibration: its name, its sensitivity (how much
// one user's bounded activity can change it), and an estimate of its
// expected magnitude used by the optimal budget allocation.
type Statistic struct {
	Name        string
	Sensitivity float64
	// Expected is an a-priori estimate of the statistic's value; only
	// its relative size across statistics matters. Zero means "use equal
	// allocation for this statistic".
	Expected float64
}

// Allocation holds the per-statistic noise calibration for one round.
type Allocation struct {
	Sigmas  map[string]float64
	Epsilon map[string]float64
	Delta   map[string]float64
}

// AllocationMode selects how the round budget is divided across the
// statistics collected together.
type AllocationMode int

const (
	// AllocateEqual splits ε and δ evenly across statistics.
	AllocateEqual AllocationMode = iota
	// AllocateOptimal splits ε in proportion to (s_i/E_i)^(2/3), which
	// minimizes the sum of squared relative errors Σ(σ_i/E_i)² subject
	// to Σε_i = ε — the PrivCount approach to keeping noise on small
	// statistics from drowning them (and the reason the paper's
	// per-country bins mostly report pure noise, §5.2).
	AllocateOptimal
)

// Allocate calibrates Gaussian noise for a set of statistics measured
// together under the round budget p.
func Allocate(p Params, stats []Statistic, mode AllocationMode) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return Allocation{}, err
	}
	if len(stats) == 0 {
		return Allocation{}, errors.New("dp: no statistics to allocate")
	}
	seen := make(map[string]bool, len(stats))
	for _, s := range stats {
		if s.Name == "" {
			return Allocation{}, errors.New("dp: statistic with empty name")
		}
		if seen[s.Name] {
			return Allocation{}, fmt.Errorf("dp: duplicate statistic %q", s.Name)
		}
		seen[s.Name] = true
		if s.Sensitivity < 0 {
			return Allocation{}, fmt.Errorf("dp: negative sensitivity for %q", s.Name)
		}
	}

	n := float64(len(stats))
	alloc := Allocation{
		Sigmas:  make(map[string]float64, len(stats)),
		Epsilon: make(map[string]float64, len(stats)),
		Delta:   make(map[string]float64, len(stats)),
	}

	weights := make([]float64, len(stats))
	totalW := 0.0
	for i, s := range stats {
		w := 1.0
		if mode == AllocateOptimal && s.Expected > 0 && s.Sensitivity > 0 {
			w = math.Pow(s.Sensitivity/s.Expected, 2.0/3.0)
		}
		weights[i] = w
		totalW += w
	}

	for i, s := range stats {
		epsI := p.Epsilon * weights[i] / totalW
		deltaI := p.Delta / n // δ always splits evenly: tail events compose additively
		pi := Params{Epsilon: epsI, Delta: deltaI}
		alloc.Epsilon[s.Name] = epsI
		alloc.Delta[s.Name] = deltaI
		alloc.Sigmas[s.Name] = pi.GaussianSigma(s.Sensitivity)
	}
	return alloc, nil
}

// PSCNoiseTrials returns the number of fair-coin noise bins each of the
// numParties computation parties must contribute so that the total
// Binomial(k·parties, 1/2) noise makes the reported cardinality
// (ε,δ)-differentially private for a set whose membership one user can
// change by at most sensitivity items. Following the PSC analysis, a
// binomial with t total trials gives (ε,δ)-DP for sensitivity s when
// t ≥ 64·s²·ln(2/δ)/ε² (a standard Chernoff-based calibration); privacy
// must hold even if all but one party's noise is known, so the honest
// party alone must supply t trials.
func PSCNoiseTrials(p Params, sensitivity float64, numParties int) (perParty int, err error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if sensitivity <= 0 {
		return 0, errors.New("dp: non-positive sensitivity")
	}
	if numParties <= 0 {
		return 0, errors.New("dp: need at least one computation party")
	}
	t := 64 * sensitivity * sensitivity * math.Log(2/p.Delta) / (p.Epsilon * p.Epsilon)
	return int(math.Ceil(t)), nil
}
