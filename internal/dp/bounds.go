package dp

import "fmt"

// Action identifies one of the observable network actions the paper
// bounds in Table 1. Differential privacy is applied to the space of
// network traces; two traces are adjacent when they differ only in one
// user's activity and the difference stays within these bounds (§3.2).
type Action int

// The Table 1 actions.
const (
	// ActionConnectDomain is connecting to a distinct domain through an
	// exit circuit (a circuit's initial hostname stream).
	ActionConnectDomain Action = iota
	// ActionExitData is sending or receiving exit data, in bytes.
	ActionExitData
	// ActionNewIPFirstDay is connecting to Tor from a new IP address on
	// the first day of a measurement.
	ActionNewIPFirstDay
	// ActionNewIPLaterDay is connecting from a new IP address on each
	// subsequent day of a multi-day measurement.
	ActionNewIPLaterDay
	// ActionTCPConnect is creating a TCP connection to a Tor guard.
	ActionTCPConnect
	// ActionCircuit is creating a circuit through an entry guard.
	ActionCircuit
	// ActionEntryData is sending or receiving entry (guard) data, bytes.
	ActionEntryData
	// ActionDescUpload is uploading an onion-service descriptor.
	ActionDescUpload
	// ActionDescUploadNewAddress is uploading a descriptor for a new
	// onion address.
	ActionDescUploadNewAddress
	// ActionDescFetch is fetching an onion-service descriptor.
	ActionDescFetch
	// ActionRendConnect is creating a rendezvous connection.
	ActionRendConnect
	// ActionRendData is sending or receiving rendezvous data, in bytes.
	ActionRendData

	numActions
)

var actionNames = [...]string{
	ActionConnectDomain:        "connect-to-domain",
	ActionExitData:             "exit-data",
	ActionNewIPFirstDay:        "new-ip-first-day",
	ActionNewIPLaterDay:        "new-ip-later-day",
	ActionTCPConnect:           "tcp-connect",
	ActionCircuit:              "circuit",
	ActionEntryData:            "entry-data",
	ActionDescUpload:           "descriptor-upload",
	ActionDescUploadNewAddress: "descriptor-upload-new-address",
	ActionDescFetch:            "descriptor-fetch",
	ActionRendConnect:          "rendezvous-connection",
	ActionRendData:             "rendezvous-data",
}

// String names the action for error text and tables.
func (a Action) String() string {
	if a >= 0 && int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", int(a))
}

const megabyte = 1 << 20

// Activity models one kind of "reasonable" daily Tor use. The paper
// derives each Table 1 bound as the maximum, across these activities, of
// the observable network actions the activity generates in 24 hours
// (§3.2). Amounts returns the per-action daily totals.
type Activity interface {
	Name() string
	Amounts() map[Action]float64
}

// WebActivity models a day of web browsing with Tor Browser: visiting
// new sites for several hours, with page loads reusing per-site circuits.
type WebActivity struct {
	// NewSitesPerHour is how many previously unvisited sites the user
	// opens per browsing hour; each gets a fresh circuit and one initial
	// domain connection.
	NewSitesPerHour float64
	// HoursPerDay is hours of active browsing.
	HoursPerDay float64
	// MBPerDay is total web transfer volume (exit bytes).
	MBPerDay float64
	// DirOverheadMB is directory/consensus overhead seen at the guard in
	// addition to relayed data.
	DirOverheadMB float64
	// OnionSitesPerDay is how many onionsites the user browses, each
	// needing a descriptor fetch and a rendezvous connection.
	OnionSitesPerDay float64
}

// DefaultWeb returns the web-browsing model used to derive Table 1:
// two new sites per hour for ten hours per day and 400 MB of traffic.
func DefaultWeb() WebActivity {
	return WebActivity{
		NewSitesPerHour:  2,
		HoursPerDay:      10,
		MBPerDay:         400,
		DirOverheadMB:    7,
		OnionSitesPerDay: 10,
	}
}

// Name implements Activity.
func (w WebActivity) Name() string { return "web" }

// Amounts implements Activity.
func (w WebActivity) Amounts() map[Action]float64 {
	domains := w.NewSitesPerHour * w.HoursPerDay
	return map[Action]float64{
		ActionConnectDomain: domains,
		ActionExitData:      w.MBPerDay * megabyte,
		// One circuit per new site plus a handful of preemptive and
		// directory circuits; far below the chat-driven circuit bound.
		ActionCircuit:   domains + 24,
		ActionEntryData: (w.MBPerDay + w.DirOverheadMB) * megabyte,
		ActionDescFetch: w.OnionSitesPerDay,
		// Browsing an onionsite creates one rendezvous connection.
		ActionRendConnect: w.OnionSitesPerDay,
		ActionRendData:    w.MBPerDay * megabyte,
	}
}

// ChatActivity models a day of running the Ricochet P2P onion-service
// messenger: a long-lived service with many contact connections, each of
// which needs rendezvous and supporting circuits.
type ChatActivity struct {
	// Contacts is the number of peers the user chats with.
	Contacts float64
	// ReconnectsPerContact is how many times each contact connection is
	// re-established during the day.
	ReconnectsPerContact float64
	// CircuitsPerConnection covers the client- and service-side circuits
	// each rendezvous connection needs (HSDir fetch, introduction,
	// rendezvous), averaged over both sides.
	CircuitsPerConnection float64
	// BackgroundCircuits is directory and intro-point maintenance
	// circuits per day.
	BackgroundCircuits float64
	// MBPerDay is chat transfer volume.
	MBPerDay float64
}

// DefaultChat returns the Ricochet model used to derive Table 1: 30
// contacts reconnecting six times a day, 3.5 circuits per rendezvous
// connection plus 21 background circuits — 651 circuits and 180
// rendezvous connections per day.
func DefaultChat() ChatActivity {
	return ChatActivity{
		Contacts:              30,
		ReconnectsPerContact:  6,
		CircuitsPerConnection: 3.5,
		BackgroundCircuits:    21,
		MBPerDay:              50,
	}
}

// Name implements Activity.
func (c ChatActivity) Name() string { return "chat" }

// Amounts implements Activity.
func (c ChatActivity) Amounts() map[Action]float64 {
	conns := c.Contacts * c.ReconnectsPerContact
	return map[Action]float64{
		ActionRendConnect: conns,
		ActionCircuit:     conns*c.CircuitsPerConnection + c.BackgroundCircuits,
		// Ricochet caches peer descriptors, so fetches are far fewer
		// than connections.
		ActionDescFetch: c.Contacts * 25.0 / 30.0,
		ActionEntryData: c.MBPerDay * megabyte,
		ActionRendData:  c.MBPerDay * megabyte,
	}
}

// OnionsiteActivity models running a web server as an onionsite:
// republishing descriptors to the HSDir ring and serving client
// rendezvous traffic.
type OnionsiteActivity struct {
	// HSDirReplicas is the number of HSDirs a v2 descriptor is stored on
	// (two replicas times a spread of three).
	HSDirReplicas float64
	// PublishesPerDay is how many times the descriptor set is
	// (re)published over the day, including churn-driven republication.
	PublishesPerDay float64
	// NewAddresses is how many fresh onion addresses the operator may
	// bring up in a day.
	NewAddresses float64
	// SelfChecksPerDay is how often the operator fetches its own
	// descriptor to verify reachability.
	SelfChecksPerDay float64
	// MBPerDay is the site's daily rendezvous transfer volume.
	MBPerDay float64
	// ClientConnections is rendezvous connections from visitors.
	ClientConnections float64
}

// DefaultOnionsite returns the onionsite model used to derive Table 1:
// 75 publish rounds across 6 HSDirs (450 uploads), 3 new addresses, 30
// reachability self-checks, 400 MB served.
func DefaultOnionsite() OnionsiteActivity {
	return OnionsiteActivity{
		HSDirReplicas:     6,
		PublishesPerDay:   75,
		NewAddresses:      3,
		SelfChecksPerDay:  30,
		MBPerDay:          400,
		ClientConnections: 150,
	}
}

// Name implements Activity.
func (o OnionsiteActivity) Name() string { return "onionsite" }

// Amounts implements Activity.
func (o OnionsiteActivity) Amounts() map[Action]float64 {
	return map[Action]float64{
		ActionDescUpload:           o.HSDirReplicas * o.PublishesPerDay,
		ActionDescUploadNewAddress: o.NewAddresses,
		ActionDescFetch:            o.SelfChecksPerDay,
		ActionRendConnect:          o.ClientConnections,
		ActionRendData:             o.MBPerDay * megabyte,
		ActionEntryData:            o.MBPerDay * megabyte,
		ActionCircuit:              o.ClientConnections + o.HSDirReplicas*o.PublishesPerDay/3,
	}
}

// Bound is one row of Table 1: the daily bound for an action and the
// activity that defined it (produced the maximum).
type Bound struct {
	Action   Action
	Daily    float64
	Defining string // activity name, or "n/a" for protocol-level bounds
}

// Bounds is the full action-bound table keyed by action.
type Bounds map[Action]Bound

// Protocol-level bounds that apply to every activity and so have no
// defining activity (Table 1 rows marked N/A).
const (
	// boundNewIPFirstDay: a mobile user may appear from 4 distinct IPs
	// on the first day and 3 new IPs on each later day.
	boundNewIPFirstDay = 4
	boundNewIPLaterDay = 3
	// boundTCPConnect: connection rotation to the data guard plus the
	// directory guards yields at most 12 TCP connections a day.
	boundTCPConnect = 12
)

// DeriveBounds computes Table 1 from the given activity models: each
// action's bound is the maximum daily amount any single activity
// produces, with protocol-level bounds filled in directly.
func DeriveBounds(activities ...Activity) Bounds {
	b := Bounds{
		ActionNewIPFirstDay: {ActionNewIPFirstDay, boundNewIPFirstDay, "n/a"},
		ActionNewIPLaterDay: {ActionNewIPLaterDay, boundNewIPLaterDay, "n/a"},
		ActionTCPConnect:    {ActionTCPConnect, boundTCPConnect, "n/a"},
	}
	for _, act := range activities {
		for action, amount := range act.Amounts() {
			cur, ok := b[action]
			if !ok || amount > cur.Daily {
				b[action] = Bound{Action: action, Daily: amount, Defining: act.Name()}
			}
		}
	}
	return b
}

// StudyBounds returns Table 1 as derived from the paper's three default
// activity models.
func StudyBounds() Bounds {
	return DeriveBounds(DefaultWeb(), DefaultChat(), DefaultOnionsite())
}

// Daily returns the daily bound for an action, or 0 if unbounded data
// was requested for an unknown action.
func (b Bounds) Daily(a Action) float64 {
	if row, ok := b[a]; ok {
		return row.Daily
	}
	return 0
}

// OverDays returns the adjacency bound for a measurement spanning the
// given number of whole days: per Table 1, IP bounds accumulate as
// first-day + (days-1)·later-day, while all other bounds scale linearly
// with days (the adjacency window is 24 h, and sequential days compose).
func (b Bounds) OverDays(a Action, days int) float64 {
	if days <= 0 {
		return 0
	}
	if a == ActionNewIPFirstDay || a == ActionNewIPLaterDay {
		return b.Daily(ActionNewIPFirstDay) + float64(days-1)*b.Daily(ActionNewIPLaterDay)
	}
	return float64(days) * b.Daily(a)
}
