package dp

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

func TestStudyParams(t *testing.T) {
	p := StudyParams()
	if p.Epsilon != 0.3 || p.Delta != 1e-11 {
		t.Fatalf("study params: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// nδ must stay small for a million users (§3.2).
	if got := p.UserProtection(1e6); math.Abs(got-1e-5) > 1e-18 {
		t.Fatalf("UserProtection(1e6) = %v, want 1e-5", got)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Epsilon: 0, Delta: 1e-6},
		{Epsilon: -1, Delta: 1e-6},
		{Epsilon: math.Inf(1), Delta: 1e-6},
		{Epsilon: 1, Delta: 0},
		{Epsilon: 1, Delta: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v must be invalid", p)
		}
	}
}

func TestSplitAndCompose(t *testing.T) {
	p := Params{Epsilon: 0.3, Delta: 3e-11}
	half, err := p.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.Epsilon-0.1) > 1e-12 || half.Delta != 1e-11 {
		t.Fatalf("split: %+v", half)
	}
	if _, err := p.Split(0); err == nil {
		t.Fatal("split 0 must fail")
	}
	c := half.Compose(half).Compose(half)
	if math.Abs(c.Epsilon-0.3) > 1e-12 || math.Abs(c.Delta-3e-11) > 1e-24 {
		t.Fatalf("compose: %+v", c)
	}
}

func TestGaussianSigmaFormula(t *testing.T) {
	p := Params{Epsilon: 0.3, Delta: 1e-11}
	s := 20.0
	want := s * math.Sqrt(2*math.Log(1.25/1e-11)) / 0.3
	if got := p.GaussianSigma(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("sigma: got %v want %v", got, want)
	}
	if p.GaussianSigma(0) != 0 || p.GaussianSigma(-1) != 0 {
		t.Fatal("non-positive sensitivity must yield zero sigma")
	}
	// Sigma must shrink as epsilon grows.
	if (Params{Epsilon: 1, Delta: 1e-11}).GaussianSigma(s) >= p.GaussianSigma(s) {
		t.Fatal("larger epsilon must mean less noise")
	}
}

func TestTable1ActionBounds(t *testing.T) {
	b := StudyBounds()
	want := []struct {
		action   Action
		daily    float64
		defining string
	}{
		{ActionConnectDomain, 20, "web"},
		{ActionExitData, 400 * megabyte, "web"},
		{ActionNewIPFirstDay, 4, "n/a"},
		{ActionNewIPLaterDay, 3, "n/a"},
		{ActionTCPConnect, 12, "n/a"},
		{ActionCircuit, 651, "chat"},
		{ActionEntryData, 407 * megabyte, "web"},
		{ActionDescUpload, 450, "onionsite"},
		{ActionDescUploadNewAddress, 3, "onionsite"},
		{ActionDescFetch, 30, "onionsite"},
		{ActionRendConnect, 180, "chat"},
		{ActionRendData, 400 * megabyte, "web"},
	}
	for _, w := range want {
		row, ok := b[w.action]
		if !ok {
			t.Errorf("missing bound for %v", w.action)
			continue
		}
		if math.Abs(row.Daily-w.daily) > 1e-6 {
			t.Errorf("%v: daily %v want %v", w.action, row.Daily, w.daily)
		}
		if row.Defining != w.defining {
			t.Errorf("%v: defining %q want %q", w.action, row.Defining, w.defining)
		}
	}
}

func TestBoundsOverDays(t *testing.T) {
	b := StudyBounds()
	// IP bound over 4 days (the churn measurement): 4 + 3·3 = 13.
	if got := b.OverDays(ActionNewIPFirstDay, 4); got != 13 {
		t.Fatalf("4-day IP bound: got %v want 13", got)
	}
	if got := b.OverDays(ActionNewIPFirstDay, 1); got != 4 {
		t.Fatalf("1-day IP bound: got %v want 4", got)
	}
	// Linear actions scale with days.
	if got := b.OverDays(ActionConnectDomain, 2); got != 40 {
		t.Fatalf("2-day domain bound: got %v want 40", got)
	}
	if b.OverDays(ActionConnectDomain, 0) != 0 {
		t.Fatal("0 days must be 0")
	}
}

func TestDeriveBoundsTakesMax(t *testing.T) {
	b := DeriveBounds(DefaultWeb())
	if b[ActionCircuit].Defining != "web" {
		t.Fatal("with only web activity, web must define circuits")
	}
	b = DeriveBounds(DefaultWeb(), DefaultChat())
	if b[ActionCircuit].Defining != "chat" || b[ActionCircuit].Daily != 651 {
		t.Fatal("chat must take over the circuit bound")
	}
}

func TestActionString(t *testing.T) {
	if ActionConnectDomain.String() != "connect-to-domain" {
		t.Fatal(ActionConnectDomain.String())
	}
	if Action(99).String() != "action(99)" {
		t.Fatal(Action(99).String())
	}
}

// seededReader adapts a deterministic PRNG into the NoiseSource entropy
// interface for reproducible statistical tests.
type seededReader struct{ r interface{ Uint64() uint64 } }

func (s seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.r.Uint64())
	}
	return len(p), nil
}

func newSeededSource(seed uint64) *NoiseSource {
	return NewNoiseSource(seededReader{simtime.Rand(seed, "dp-test")})
}

func TestUniformInRange(t *testing.T) {
	src := newSeededSource(1)
	for i := 0; i < 10000; i++ {
		u := src.Uniform()
		if u <= 0 || u >= 1 {
			t.Fatalf("uniform out of (0,1): %v", u)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	src := newSeededSource(2)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := src.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean: %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance: %v", variance)
	}
}

func TestGaussianScaling(t *testing.T) {
	src := newSeededSource(3)
	const sigma = 1000.0
	const n = 100000
	var sumSq float64
	for i := 0; i < n; i++ {
		x := src.Gaussian(sigma)
		sumSq += x * x
	}
	sd := math.Sqrt(sumSq / n)
	if math.Abs(sd-sigma) > sigma*0.02 {
		t.Fatalf("gaussian sd: got %v want %v", sd, sigma)
	}
	if src.Gaussian(0) != 0 {
		t.Fatal("zero sigma must be zero noise")
	}
}

func TestBinomialMoments(t *testing.T) {
	src := newSeededSource(4)
	const trials = 1000
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := float64(src.Binomial(trials))
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-trials/2) > 2 {
		t.Fatalf("binomial mean: %v want %v", mean, trials/2)
	}
	if math.Abs(variance-trials/4) > trials*0.05 {
		t.Fatalf("binomial variance: %v want %v", variance, trials/4)
	}
	if src.Binomial(0) != 0 {
		t.Fatal("zero trials must be zero")
	}
}

func TestAllocateEqual(t *testing.T) {
	p := StudyParams()
	stats := []Statistic{
		{Name: "streams", Sensitivity: 20},
		{Name: "bytes", Sensitivity: 400 * megabyte},
	}
	a, err := Allocate(p, stats, AllocateEqual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Epsilon["streams"]-0.15) > 1e-12 {
		t.Fatalf("equal eps: %v", a.Epsilon["streams"])
	}
	if a.Sigmas["bytes"] <= a.Sigmas["streams"] {
		t.Fatal("larger sensitivity must mean more noise")
	}
	// Budget conservation.
	if math.Abs(a.Epsilon["streams"]+a.Epsilon["bytes"]-p.Epsilon) > 1e-12 {
		t.Fatal("epsilon must be conserved")
	}
}

func TestAllocateOptimalFavorsSmallStatistics(t *testing.T) {
	p := StudyParams()
	stats := []Statistic{
		{Name: "big", Sensitivity: 100, Expected: 1e9},
		{Name: "small", Sensitivity: 100, Expected: 1e3},
	}
	a, err := Allocate(p, stats, AllocateOptimal)
	if err != nil {
		t.Fatal(err)
	}
	// The small statistic has worse relative noise, so it gets more
	// epsilon (less noise) under optimal allocation.
	if a.Epsilon["small"] <= a.Epsilon["big"] {
		t.Fatalf("optimal allocation should favor small statistic: %+v", a.Epsilon)
	}
	relBig := a.Sigmas["big"] / 1e9
	relSmall := a.Sigmas["small"] / 1e3
	// Under equal allocation the relative error gap would be 10⁶×; the
	// optimal allocation narrows it to (10⁶)^(1/3)=100×.
	if relSmall/relBig > 101 {
		t.Fatalf("optimal allocation did not narrow relative error: big=%v small=%v", relBig, relSmall)
	}
}

func TestAllocateErrors(t *testing.T) {
	p := StudyParams()
	if _, err := Allocate(p, nil, AllocateEqual); err == nil {
		t.Fatal("empty stats must fail")
	}
	if _, err := Allocate(p, []Statistic{{Name: ""}}, AllocateEqual); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := Allocate(p, []Statistic{{Name: "a"}, {Name: "a"}}, AllocateEqual); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if _, err := Allocate(p, []Statistic{{Name: "a", Sensitivity: -1}}, AllocateEqual); err == nil {
		t.Fatal("negative sensitivity must fail")
	}
	if _, err := Allocate(Params{}, []Statistic{{Name: "a"}}, AllocateEqual); err == nil {
		t.Fatal("invalid params must fail")
	}
}

// Property: allocation always conserves the epsilon budget and never
// assigns negative sigma.
func TestAllocateConservationProperty(t *testing.T) {
	f := func(sens []uint32) bool {
		if len(sens) == 0 {
			return true
		}
		if len(sens) > 20 {
			sens = sens[:20]
		}
		stats := make([]Statistic, len(sens))
		for i, s := range sens {
			stats[i] = Statistic{
				Name:        string(rune('a' + i)),
				Sensitivity: float64(s%1000) + 1,
				Expected:    float64(s%97)*1e4 + 1,
			}
		}
		for _, mode := range []AllocationMode{AllocateEqual, AllocateOptimal} {
			a, err := Allocate(StudyParams(), stats, mode)
			if err != nil {
				return false
			}
			total := 0.0
			for _, e := range a.Epsilon {
				if e <= 0 {
					return false
				}
				total += e
			}
			if math.Abs(total-0.3) > 1e-9 {
				return false
			}
			for _, s := range a.Sigmas {
				if s < 0 || math.IsNaN(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPSCNoiseTrials(t *testing.T) {
	p := StudyParams()
	trials, err := PSCNoiseTrials(p, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 64.0 * 16 * math.Log(2/1e-11) / (0.3 * 0.3)
	if math.Abs(float64(trials)-want) > 1 {
		t.Fatalf("trials: got %d want ~%v", trials, want)
	}
	// Larger sensitivity needs more noise.
	t2, _ := PSCNoiseTrials(p, 8, 3)
	if t2 <= trials {
		t.Fatal("sensitivity 8 must need more trials than 4")
	}
	if _, err := PSCNoiseTrials(p, 0, 3); err == nil {
		t.Fatal("zero sensitivity must fail")
	}
	if _, err := PSCNoiseTrials(p, 1, 0); err == nil {
		t.Fatal("zero parties must fail")
	}
	if _, err := PSCNoiseTrials(Params{}, 1, 1); err == nil {
		t.Fatal("bad params must fail")
	}
}

func TestAccountantSequencing(t *testing.T) {
	a := StudyAccountant()
	day := 24 * time.Hour
	t0 := time.Date(2018, 1, 4, 0, 0, 0, 0, time.UTC)

	if _, err := a.Authorize("streams", t0, t0.Add(day)); err != nil {
		t.Fatal(err)
	}
	// Overlapping round must be rejected even with the same name.
	if _, err := a.Authorize("streams", t0.Add(12*time.Hour), t0.Add(36*time.Hour)); err == nil {
		t.Fatal("overlap must fail")
	}
	// A distinct statistic needs 24h start-to-start separation: a short
	// round starting 12h in (even without overlap... it would overlap;
	// use a round after the first ends but starting <24h from it) — a
	// 1-hour round starting 12h after a 1-hour round fails. Rebuild
	// with short rounds to exercise the start-gap rule.
	short := StudyAccountant()
	if _, err := short.Authorize("a", t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := short.Authorize("b", t0.Add(12*time.Hour), t0.Add(13*time.Hour)); err == nil {
		t.Fatal("12h start gap between distinct statistics must fail")
	}
	// Back-to-back 24h rounds of distinct statistics are allowed: the
	// starts are 24h apart, matching the paper's calendar.
	if _, err := a.Authorize("domains", t0.Add(day), t0.Add(2*day)); err != nil {
		t.Fatalf("back-to-back distinct rounds rejected: %v", err)
	}
	// Re-measuring the same statistic needs no gap.
	if _, err := a.Authorize("domains", t0.Add(2*day), t0.Add(3*day)); err != nil {
		t.Fatalf("same-statistic consecutive round rejected: %v", err)
	}
	if a.Rounds() != 3 {
		t.Fatalf("rounds: %d", a.Rounds())
	}
	cum := a.Cumulative()
	if math.Abs(cum.Epsilon-0.9) > 1e-12 {
		t.Fatalf("cumulative epsilon: %v", cum.Epsilon)
	}
}

func TestAccountantRejectsBadRounds(t *testing.T) {
	a := StudyAccountant()
	t0 := time.Now()
	if _, err := a.Authorize("x", t0, t0); err == nil {
		t.Fatal("zero-duration round must fail")
	}
	if _, err := NewAccountant(Params{}, time.Hour); err == nil {
		t.Fatal("invalid params must fail")
	}
	if _, err := NewAccountant(StudyParams(), -time.Hour); err == nil {
		t.Fatal("negative gap must fail")
	}
}

func TestAccountantBudgetCap(t *testing.T) {
	a, err := NewAccountant(StudyParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	per := StudyParams()
	if err := a.SetBudget(Params{Epsilon: 3 * per.Epsilon, Delta: 3 * per.Delta}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := a.Spend("exit-streams")
		if err != nil {
			t.Fatalf("spend %d within budget: %v", i+1, err)
		}
		if got != per {
			t.Fatalf("spend returned %+v, want the per-round budget", got)
		}
	}
	_, err = a.Spend("exit-streams")
	if err == nil {
		t.Fatal("4th round must be refused against a 3-round budget")
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("refusal error = %v, want ErrBudgetExhausted", err)
	}
	if got := a.Rounds(); got != 3 {
		t.Fatalf("rounds after refusal = %d, want 3 (refusals spend nothing)", got)
	}
	cum := a.Cumulative()
	if math.Abs(cum.Epsilon-3*per.Epsilon) > 1e-12 {
		t.Fatalf("cumulative epsilon = %v, want %v", cum.Epsilon, 3*per.Epsilon)
	}
	// Authorize honors the cap too.
	start := time.Unix(1514764800, 0)
	if _, err := a.Authorize("exit-streams", start, start.Add(24*time.Hour)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Authorize past budget = %v, want ErrBudgetExhausted", err)
	}
}

func TestAccountantBudgetValidation(t *testing.T) {
	a, err := NewAccountant(StudyParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetBudget(Params{Epsilon: -1, Delta: 0.5}); err == nil {
		t.Fatal("invalid budget accepted")
	}
	// Without a budget, Spend never refuses.
	for i := 0; i < 100; i++ {
		if _, err := a.Spend("anything"); err != nil {
			t.Fatalf("uncapped spend %d: %v", i, err)
		}
	}
}

func TestAccountantRefund(t *testing.T) {
	a, err := NewAccountant(StudyParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	per := StudyParams()
	if err := a.SetBudget(per); err != nil { // exactly one round
		t.Fatal(err)
	}
	if _, err := a.Spend("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Spend("r"); err == nil {
		t.Fatal("second spend must be refused")
	}
	a.Refund("r")
	if got := a.Rounds(); got != 0 {
		t.Fatalf("rounds after refund = %d, want 0", got)
	}
	if cum := a.Cumulative(); cum.Epsilon != 0 || cum.Delta != 0 {
		t.Fatalf("cumulative after refund = %+v, want zero", cum)
	}
	if _, err := a.Spend("r"); err != nil {
		t.Fatalf("spend after refund: %v", err)
	}
	// Refunding a name that never spent is a no-op.
	before := a.Cumulative()
	a.Refund("never-spent")
	if a.Cumulative() != before || a.Rounds() != 1 {
		t.Fatal("refund of unknown name mutated the ledger")
	}
}

func TestAccountantBudgetExactMultiple(t *testing.T) {
	// A budget of exactly N per-round units must admit exactly N rounds
	// for every N — repeated float addition used to refuse the Nth
	// round by one ULP (e.g. 6×0.3).
	per := StudyParams()
	for n := 1; n <= 64; n++ {
		a, err := NewAccountant(per, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetBudget(Params{Epsilon: per.Epsilon * float64(n), Delta: per.Delta * float64(n)}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := a.Spend("r"); err != nil {
				t.Fatalf("budget of %d rounds refused round %d: %v", n, i+1, err)
			}
		}
		if _, err := a.Spend("r"); !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("budget of %d rounds admitted round %d: %v", n, n+1, err)
		}
	}
}

// TestLedgerSurvivesRestart drives the spend→restart→refuse cycle the
// ledger exists for: a budget of two rounds is spent by one accountant,
// a fresh accountant loading the same ledger file must refuse the third
// round, and a refund must be visible across the restart too.
func TestLedgerSurvivesRestart(t *testing.T) {
	per := StudyParams()
	path := filepath.Join(t.TempDir(), "budget.json")
	budget := Params{Epsilon: per.Epsilon * 2, Delta: per.Delta * 2}

	a1, err := NewAccountant(per, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.SetBudget(budget); err != nil {
		t.Fatal(err)
	}
	if err := a1.SetLedger(path); err != nil {
		t.Fatal(err)
	}
	if _, err := a1.Spend("psc/round"); err != nil {
		t.Fatal(err)
	}
	if _, err := a1.Spend("privcount/round"); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new accountant process loads the same ledger.
	a2, err := NewAccountant(per, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.SetBudget(budget); err != nil {
		t.Fatal(err)
	}
	if err := a2.SetLedger(path); err != nil {
		t.Fatal(err)
	}
	if got := a2.Rounds(); got != 2 {
		t.Fatalf("restarted accountant sees %d spent rounds, want 2", got)
	}
	if _, err := a2.Spend("psc/round"); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("third round after restart: got %v, want ErrBudgetExhausted", err)
	}

	// A refund persists too: the freed unit is spendable after another
	// restart.
	a2.Refund("privcount/round")
	a3, err := NewAccountant(per, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a3.SetBudget(budget); err != nil {
		t.Fatal(err)
	}
	if err := a3.SetLedger(path); err != nil {
		t.Fatal(err)
	}
	if _, err := a3.Spend("psc/round"); err != nil {
		t.Fatalf("refunded unit not spendable after restart: %v", err)
	}

	// A corrupt ledger must refuse to load.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	a4, _ := NewAccountant(per, 0)
	if err := a4.SetLedger(path); err == nil {
		t.Fatal("corrupt ledger loaded without error")
	}
}
