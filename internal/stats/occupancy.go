package stats

import (
	"errors"
	"fmt"
	"math"
)

// This file implements the PSC estimator of §3.3: the reported value is
// the number of non-empty hash-table bins plus Binomial(t, 1/2) noise,
// so recovering the distinct-item count must undo both the noise and the
// hash collisions. The paper computes 95% confidence intervals "using an
// exact algorithm based on dynamic programming"; OccupancyPMF is that
// dynamic program, and UnionCardinalityCI inverts the full observation
// model.

// OccupancyMoments returns the exact mean and variance of the number of
// occupied bins when n distinct items hash uniformly into b bins:
//
//	E[X]   = b(1 − (1−1/b)^n)
//	Var[X] = b(b−1)(1−2/b)^n + b(1−1/b)^n − b²(1−1/b)^{2n}
func OccupancyMoments(b, n int) (mean, variance float64) {
	if b <= 0 || n <= 0 {
		return 0, 0
	}
	fb := float64(b)
	q1 := math.Exp(float64(n) * math.Log1p(-1/fb))       // (1-1/b)^n
	q2 := math.Exp(float64(n) * math.Log1p(-2/fb))       // (1-2/b)^n
	q1sq := math.Exp(2 * float64(n) * math.Log1p(-1/fb)) // (1-1/b)^{2n}
	mean = fb * (1 - q1)
	variance = fb*(fb-1)*q2 + fb*q1 - fb*fb*q1sq
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// OccupancyPMF returns the exact probability mass function of the number
// of occupied bins after inserting n distinct items into b bins, using
// the dynamic program
//
//	P(X_{m+1}=k) = P(X_m=k)·k/b + P(X_m=k−1)·(b−k+1)/b.
//
// Cost is O(n·b); intended for exact small-scale work and for verifying
// the moment-based approximation used at measurement scale.
func OccupancyPMF(b, n int) ([]float64, error) {
	if b <= 0 {
		return nil, errors.New("stats: non-positive bin count")
	}
	if n < 0 {
		return nil, errors.New("stats: negative item count")
	}
	pmf := make([]float64, b+1)
	pmf[0] = 1
	next := make([]float64, b+1)
	fb := float64(b)
	for m := 0; m < n; m++ {
		for k := range next {
			next[k] = 0
		}
		for k, p := range pmf {
			if p == 0 {
				continue
			}
			// Item lands in an occupied bin: k stays.
			next[k] += p * float64(k) / fb
			// Item lands in a free bin: k+1.
			if k < b {
				next[k+1] += p * (fb - float64(k)) / fb
			}
		}
		pmf, next = next, pmf
	}
	return pmf, nil
}

// InvertOccupancy estimates the number of distinct items from an
// observed number of occupied bins: n̂ = ln(1 − m/b)/ln(1 − 1/b). When
// m ≥ b the estimate saturates (every bin full ⇒ unbounded), so it
// returns the n that fills all but an expected half bin.
func InvertOccupancy(b int, occupied float64) float64 {
	if b <= 0 || occupied <= 0 {
		return 0
	}
	fb := float64(b)
	if occupied >= fb {
		occupied = fb - 0.5
	}
	return math.Log1p(-occupied/fb) / math.Log1p(-1/fb)
}

// PSCObservation is a single PSC round result to be converted into a
// distinct-count estimate.
type PSCObservation struct {
	// Reported is the protocol output: occupied bins plus noise.
	Reported int
	// Bins is the hash-table size b.
	Bins int
	// NoiseTrials is the total number of fair coins t summed into the
	// report; the noise is Binomial(t, 1/2) with mean t/2.
	NoiseTrials int
}

// UnionCardinalityCI returns the point estimate and exact-model central
// 95% confidence interval for the number of distinct items, accounting
// for both the binomial noise and hash collisions (§3.3).
//
// For candidate counts n it combines the occupancy distribution (exact
// moments; the PMF is exactly normal-convergent at these sizes) with the
// Binomial(t,1/2) noise and finds the range of n for which the observed
// report is not in either 2.5% tail.
func UnionCardinalityCI(obs PSCObservation) (Interval, error) {
	if obs.Bins <= 0 {
		return Interval{}, errors.New("stats: PSC observation with no bins")
	}
	if obs.NoiseTrials < 0 {
		return Interval{}, errors.New("stats: negative noise trials")
	}
	noiseMean := float64(obs.NoiseTrials) / 2
	noiseVar := float64(obs.NoiseTrials) / 4
	occupied := float64(obs.Reported) - noiseMean
	point := InvertOccupancy(obs.Bins, occupied)

	// For candidate n, reported ~ Normal(E[X_n] + t/2, Var[X_n] + t/4)
	// (both components concentrate; exact at study scale). The covered
	// set {n : |reported − μ(n)| ≤ z·σ(n)} is an interval because μ is
	// strictly monotone in n, so each boundary is found by bisection on
	// a monotone criterion:
	//
	//	lower bound: smallest n with μ(n) + z·σ(n) ≥ reported
	//	upper bound: largest  n with μ(n) − z·σ(n) ≤ reported
	rep := float64(obs.Reported)
	upperEnvelope := func(n int) float64 {
		m, v := OccupancyMoments(obs.Bins, n)
		return m + noiseMean + z95*math.Sqrt(v+noiseVar)
	}
	lowerEnvelope := func(n int) float64 {
		m, v := OccupancyMoments(obs.Bins, n)
		return m + noiseMean - z95*math.Sqrt(v+noiseVar)
	}

	// Beyond ~4·b·ln b items the table is saturated and the expected
	// occupancy no longer moves.
	maxN := int(4*float64(obs.Bins)*math.Log(float64(obs.Bins)+2)) + obs.NoiseTrials + 16
	lo := smallestSatisfying(0, maxN, func(n int) bool { return upperEnvelope(n) >= rep })
	hi := largestSatisfying(0, maxN, func(n int) bool { return lowerEnvelope(n) <= rep })
	if lo < 0 {
		lo = maxN // report above everything reachable: saturated table
	}
	if hi < 0 {
		hi = 0 // report below even n=0's band: clamp at zero
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{Value: math.Max(point, 0), Lo: float64(lo), Hi: float64(hi)}, nil
}

// smallestSatisfying returns the least n in [lo, hi] with pred(n) true,
// assuming pred is monotone (false…false true…true), or -1 if none.
func smallestSatisfying(lo, hi int, pred func(int) bool) int {
	if !pred(hi) {
		return -1
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// largestSatisfying returns the greatest n in [lo, hi] with pred(n)
// true, assuming pred is monotone (true…true false…false), or -1.
func largestSatisfying(lo, hi int, pred func(int) bool) int {
	if !pred(lo) {
		return -1
	}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if pred(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// CollisionBias reports the expected shortfall E[n − X_n] (items minus
// occupied bins) for n items in b bins, the quantity the estimator must
// add back. Exposed for the table-size ablation benchmark.
func CollisionBias(b, n int) float64 {
	mean, _ := OccupancyMoments(b, n)
	return float64(n) - mean
}

// String implements fmt.Stringer for diagnostics.
func (o PSCObservation) String() string {
	return fmt.Sprintf("psc(reported=%d bins=%d noise-trials=%d)", o.Reported, o.Bins, o.NoiseTrials)
}
