package stats

import (
	"math"
	"testing"
)

func TestZipfModelValidate(t *testing.T) {
	good := ZipfUniqueModel{Sites: 1000, Fraction: 0.01, Visits: 1e6}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ZipfUniqueModel{
		{Sites: 0, Fraction: 0.1, Visits: 1},
		{Sites: 10, Fraction: 0, Visits: 1},
		{Sites: 10, Fraction: 1.5, Visits: 1},
		{Sites: 10, Fraction: 0.1, Visits: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v must be invalid", m)
		}
	}
}

func TestExpectedUniqueSanity(t *testing.T) {
	m := ZipfUniqueModel{Sites: 10000, Fraction: 0.02, Visits: 1e6}
	local, net, sd := m.ExpectedUnique(1.0, nil)
	if !(local > 0 && net > 0 && sd > 0) {
		t.Fatalf("expectations must be positive: %v %v %v", local, net, sd)
	}
	if local >= net {
		t.Fatalf("local unique (%v) must be below network unique (%v)", local, net)
	}
	if net > float64(m.Sites) {
		t.Fatalf("network unique (%v) cannot exceed site count", net)
	}
	// A flatter distribution (smaller exponent) yields more uniques.
	_, netFlat, _ := m.ExpectedUnique(0.6, nil)
	if netFlat <= net {
		t.Fatalf("flatter law should reach more sites: s=0.6 %v vs s=1.0 %v", netFlat, net)
	}
}

func TestExpectedUniqueBucketsAccuracy(t *testing.T) {
	// Compare bucketed computation against an exact per-rank sum on a
	// small support.
	m := ZipfUniqueModel{Sites: 2000, Fraction: 0.05, Visits: 50000}
	s := 1.1
	var norm float64
	for k := 1; k <= m.Sites; k++ {
		norm += math.Pow(float64(k), -s)
	}
	var exactLocal, exactNet float64
	for k := 1; k <= m.Sites; k++ {
		q := math.Pow(float64(k), -s) / norm
		exactNet += -math.Expm1(m.Visits * math.Log1p(-q))
		exactLocal += -math.Expm1(m.Visits * math.Log1p(-q*m.Fraction))
	}
	local, net, _ := m.ExpectedUnique(s, nil)
	if math.Abs(local-exactLocal) > exactLocal*0.01 {
		t.Fatalf("bucketed local %v vs exact %v", local, exactLocal)
	}
	if math.Abs(net-exactNet) > exactNet*0.01 {
		t.Fatalf("bucketed net %v vs exact %v", net, exactNet)
	}
}

// TestExtrapolateRecoversTruth generates a "true" scenario from the
// model itself, then checks the extrapolation brackets the true
// network-wide unique count — the §4.3 self-check methodology.
func TestExtrapolateRecoversTruth(t *testing.T) {
	m := ZipfUniqueModel{Sites: 100000, Fraction: 0.0124, Visits: 5e7}
	const trueS = 1.05
	localTrue, netTrue, sd := m.ExpectedUnique(trueS, nil)
	observed := Interval{Value: localTrue, Lo: localTrue - 2*sd, Hi: localTrue + 2*sd}

	res, err := m.Extrapolate(observed, DefaultExtrapolateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatal("no exponents accepted")
	}
	if trueS < res.ExponentLo-0.02 || trueS > res.ExponentHi+0.02 {
		t.Fatalf("true exponent %v outside accepted [%v, %v]", trueS, res.ExponentLo, res.ExponentHi)
	}
	if !res.Network.Contains(netTrue) {
		t.Fatalf("network CI %+v must contain true %v", res.Network, netTrue)
	}
}

func TestExtrapolateRejectsImpossibleObservation(t *testing.T) {
	m := ZipfUniqueModel{Sites: 1000, Fraction: 0.01, Visits: 1e5}
	// Observing more unique sites than exist is inconsistent with every
	// exponent.
	_, err := m.Extrapolate(Interval{Value: 5000, Lo: 4999, Hi: 5001}, DefaultExtrapolateConfig())
	if err == nil {
		t.Fatal("impossible observation must fail to fit")
	}
}

func TestExtrapolateConfigErrors(t *testing.T) {
	m := ZipfUniqueModel{Sites: 1000, Fraction: 0.01, Visits: 1e5}
	if _, err := m.Extrapolate(Interval{}, ExtrapolateConfig{Trials: 1, ExponentMin: 1, ExponentMax: 2}); err == nil {
		t.Fatal("single trial must fail")
	}
	if _, err := m.Extrapolate(Interval{}, ExtrapolateConfig{Trials: 10, ExponentMin: 2, ExponentMax: 1}); err == nil {
		t.Fatal("inverted exponent range must fail")
	}
	bad := ZipfUniqueModel{}
	if _, err := bad.Extrapolate(Interval{}, DefaultExtrapolateConfig()); err == nil {
		t.Fatal("invalid model must fail")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if quantile(xs, 0) != 1 || quantile(xs, 1) != 5 {
		t.Fatal("extremes")
	}
	if quantile(xs, 0.5) != 3 {
		t.Fatal("median")
	}
	if got := quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25: %v", got)
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Fatal("empty")
	}
	if quantile([]float64{7}, 0.9) != 7 {
		t.Fatal("singleton")
	}
}
