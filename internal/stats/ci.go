// Package stats implements the statistical methodology of the paper's
// §3.3: confidence intervals for noisy PrivCount counts, network-wide
// inference by dividing out the measuring relays' weight fraction, exact
// confidence intervals for PSC unique counts (binomial noise plus
// hash-table collisions, via dynamic programming), power-law Monte-Carlo
// extrapolation of unique counts, and the guards-per-client model used
// for Table 3.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Interval is a confidence interval [Lo, Hi] around a point estimate.
type Interval struct {
	Value  float64
	Lo, Hi float64
}

// String renders the interval in the paper's style.
func (iv Interval) String() string {
	return fmt.Sprintf("%.4g (CI: [%.4g; %.4g])", iv.Value, iv.Lo, iv.Hi)
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Scale multiplies the estimate and both endpoints by f, the operation
// behind network-wide inference from a weight fraction (§3.3).
func (iv Interval) Scale(f float64) Interval {
	return Interval{Value: iv.Value * f, Lo: iv.Lo * f, Hi: iv.Hi * f}
}

// Intersect returns the overlap of two intervals and whether it is
// non-empty. Table 3's model fitting keeps the parameter values whose
// predicted intervals intersect across both measurements.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo := math.Max(iv.Lo, other.Lo)
	hi := math.Min(iv.Hi, other.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{Value: (lo + hi) / 2, Lo: lo, Hi: hi}, true
}

// z95 is the two-sided 95% standard normal quantile.
const z95 = 1.959963984540054

// NormalCI returns the 95% confidence interval for a value observed with
// additive Gaussian noise of the given standard deviation. This is the
// interval construction used for every PrivCount measurement (§3.3).
func NormalCI(value, sigma float64) Interval {
	if sigma < 0 {
		sigma = -sigma
	}
	return Interval{Value: value, Lo: value - z95*sigma, Hi: value + z95*sigma}
}

// InferTotal projects a locally observed noisy count to a network-wide
// total by dividing by the fraction of observations the measuring relays
// make, e.g. dividing an exit-stream count by the relays' combined exit
// weight (§3.3). It errors on a non-positive fraction.
func InferTotal(local Interval, fraction float64) (Interval, error) {
	if !(fraction > 0) || fraction > 1 {
		return Interval{}, fmt.Errorf("stats: observation fraction %v outside (0,1]", fraction)
	}
	return local.Scale(1 / fraction), nil
}

// ClampNonNegative truncates the interval (and estimate) at zero. The
// paper reports negative noisy counters as "most likely zero" (Figure 1b
// discussion); counts cannot be negative.
func (iv Interval) ClampNonNegative() Interval {
	c := iv
	if c.Lo < 0 {
		c.Lo = 0
	}
	if c.Hi < 0 {
		c.Hi = 0
	}
	if c.Value < 0 {
		c.Value = 0
	}
	return c
}

// RangeOnly returns the "no known frequency distribution" network-wide
// range [x, x/p] from §3.3: the lower end assumes every item was seen by
// all relays, the upper end assumes items are seen only once.
func RangeOnly(observed float64, fraction float64) (Interval, error) {
	if !(fraction > 0) || fraction > 1 {
		return Interval{}, fmt.Errorf("stats: observation fraction %v outside (0,1]", fraction)
	}
	return Interval{Value: observed, Lo: observed, Hi: observed / fraction}, nil
}

// BinomialCI returns an exact (Clopper–Pearson style, via normal-free
// search) central 95% interval for the success probability of a
// Binomial(n, p) given k observed successes. Used for proportions such
// as the descriptor-fetch failure rate.
func BinomialCI(k, n int) (Interval, error) {
	if n <= 0 || k < 0 || k > n {
		return Interval{}, errors.New("stats: invalid binomial observation")
	}
	point := float64(k) / float64(n)
	lo := searchBinomialBound(k, n, 0.025, true)
	hi := searchBinomialBound(k, n, 0.025, false)
	return Interval{Value: point, Lo: lo, Hi: hi}, nil
}

// searchBinomialBound finds p such that the tail probability of
// observing k (or more extreme) equals alpha.
func searchBinomialBound(k, n int, alpha float64, lower bool) float64 {
	if lower && k == 0 {
		return 0
	}
	if !lower && k == n {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		var tail float64
		if lower {
			// P(X >= k | p=mid); want == alpha. Increasing in p.
			tail = 1 - binomialCDF(k-1, n, mid)
			if tail < alpha {
				lo = mid
			} else {
				hi = mid
			}
		} else {
			// P(X <= k | p=mid); want == alpha. Decreasing in p.
			tail = binomialCDF(k, n, mid)
			if tail > alpha {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	return (lo + hi) / 2
}

// binomialCDF returns P(X <= k) for X ~ Binomial(n, p), computed in log
// space for stability.
func binomialCDF(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	// For large n use a normal approximation with continuity correction;
	// exact summation otherwise.
	if n > 10000 {
		mean := float64(n) * p
		sd := math.Sqrt(float64(n) * p * (1 - p))
		return normalCDF((float64(k) + 0.5 - mean) / sd)
	}
	logP, log1P := math.Log(p), math.Log1p(-p)
	sum := 0.0
	for i := 0; i <= k; i++ {
		lp := logChoose(n, i) + float64(i)*logP + float64(n-i)*log1P
		sum += math.Exp(lp)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func logChoose(n, k int) float64 {
	return lgamma(float64(n)+1) - lgamma(float64(k)+1) - lgamma(float64(n-k)+1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// normalCDF is the standard normal CDF.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
