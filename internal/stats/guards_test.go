package stats

import (
	"math"
	"testing"
)

// synthMeasurement builds the unique-IP interval a measurement with
// weight w would produce under the promiscuous model with N selective
// clients choosing g guards and p promiscuous clients, with a relative
// CI half-width rw.
func synthMeasurement(w float64, g int, n, p, rw float64) GuardMeasurement {
	u := p + n*hitProb(w, g)
	return GuardMeasurement{
		Weight: w,
		Unique: Interval{Value: u, Lo: u * (1 - rw), Hi: u * (1 + rw)},
	}
}

func TestHitProb(t *testing.T) {
	if got := hitProb(0.5, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("hitProb(0.5,1)=%v", got)
	}
	if got := hitProb(0.5, 2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("hitProb(0.5,2)=%v", got)
	}
	// Monotone in g.
	if !(hitProb(0.01, 3) < hitProb(0.01, 5)) {
		t.Fatal("hitProb must grow with g")
	}
}

func TestMeasurementValidate(t *testing.T) {
	good := GuardMeasurement{Weight: 0.01, Unique: Interval{Lo: 1, Hi: 2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GuardMeasurement{
		{Weight: 0, Unique: Interval{Lo: 1, Hi: 2}},
		{Weight: 1, Unique: Interval{Lo: 1, Hi: 2}},
		{Weight: 0.1, Unique: Interval{Lo: -1, Hi: 2}},
		{Weight: 0.1, Unique: Interval{Lo: 3, Hi: 2}},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("measurement %+v must be invalid", m)
		}
	}
}

func TestPopulationInterval(t *testing.T) {
	m := synthMeasurement(0.01, 3, 1e6, 0, 0.05)
	pop := m.PopulationInterval(3)
	if !pop.Contains(1e6) {
		t.Fatalf("population interval %+v must contain the true 1e6", pop)
	}
}

// TestConsistentGRangeRecovery: with measurements generated from a pure
// selective model at g=3, the consistent range must include 3.
func TestConsistentGRangeRecovery(t *testing.T) {
	m1 := synthMeasurement(0.0042, 3, 8e6, 0, 0.03)
	m2 := synthMeasurement(0.0088, 3, 8e6, 0, 0.03)
	lo, hi, err := ConsistentGRange(m1, m2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 3 || hi < 3 {
		t.Fatalf("true g=3 outside consistent range [%d, %d]", lo, hi)
	}
}

// TestConsistentGRangeExcludesSmallG: with promiscuous clients present
// (as the paper finds), the selective-only model is pushed to large g —
// the paper's [27, 34] observation.
func TestConsistentGRangeExcludesSmallG(t *testing.T) {
	const trueN, trueP = 8e6, 18000
	m1 := synthMeasurement(0.0042, 3, trueN, trueP, 0.002)
	m2 := synthMeasurement(0.0088, 3, trueN, trueP, 0.002)
	lo, _, err := ConsistentGRange(m1, m2, 200)
	if err != nil {
		// Entirely inconsistent is also an acceptable signal of model
		// failure, but with these tolerances a large-g fit exists.
		t.Fatalf("expected a large-g fit: %v", err)
	}
	if lo <= 5 {
		t.Fatalf("promiscuous contamination should push g above 5, got lo=%d", lo)
	}
}

func TestConsistentGRangeErrors(t *testing.T) {
	m := synthMeasurement(0.01, 3, 1e6, 0, 0.01)
	if _, _, err := ConsistentGRange(GuardMeasurement{}, m, 10); err == nil {
		t.Fatal("invalid measurement must fail")
	}
	if _, _, err := ConsistentGRange(m, m, 0); err == nil {
		t.Fatal("gMax=0 must fail")
	}
	// Wildly inconsistent measurements fit no g.
	m1 := GuardMeasurement{Weight: 0.0042, Unique: Interval{Value: 100, Lo: 99, Hi: 101}}
	m2 := GuardMeasurement{Weight: 0.0088, Unique: Interval{Value: 1e6, Lo: 1e6 - 1, Hi: 1e6 + 1}}
	if _, _, err := ConsistentGRange(m1, m2, 50); err == nil {
		t.Fatal("inconsistent measurements must fail")
	}
}

// TestFitPromiscuousRecovery: the refined model must recover the planted
// promiscuous population and total client count (Table 3).
func TestFitPromiscuousRecovery(t *testing.T) {
	const trueN, trueP = 8e6, 18000.0
	m1 := synthMeasurement(0.0042, 3, trueN, trueP, 0.01)
	m2 := synthMeasurement(0.0088, 3, trueN, trueP, 0.01)
	fit, err := FitPromiscuous(m1, m2, 3, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !fit.Promiscuous.Contains(trueP) {
		t.Fatalf("promiscuous range %+v must contain %v", fit.Promiscuous, trueP)
	}
	if !fit.NetworkIPs.Contains(trueN + trueP) {
		t.Fatalf("network IPs %+v must contain %v", fit.NetworkIPs, trueN+trueP)
	}
}

// TestFitPromiscuousGTradeoff mirrors Table 3's structure: larger g
// explains the same observations with fewer network-wide clients.
func TestFitPromiscuousGTradeoff(t *testing.T) {
	const trueN, trueP = 8e6, 18000.0
	m1 := synthMeasurement(0.0042, 4, trueN, trueP, 0.01)
	m2 := synthMeasurement(0.0088, 4, trueN, trueP, 0.01)
	var prev float64 = math.Inf(1)
	for _, g := range []int{3, 4, 5} {
		fit, err := FitPromiscuous(m1, m2, g, 100000)
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		if fit.NetworkIPs.Value >= prev {
			t.Fatalf("network IPs must fall as g rises: g=%d %+v", g, fit.NetworkIPs)
		}
		prev = fit.NetworkIPs.Value
	}
}

func TestFitPromiscuousErrors(t *testing.T) {
	m := synthMeasurement(0.01, 3, 1e6, 0, 0.01)
	if _, err := FitPromiscuous(GuardMeasurement{}, m, 3, 0); err == nil {
		t.Fatal("invalid measurement must fail")
	}
	if _, err := FitPromiscuous(m, m, 0, 0); err == nil {
		t.Fatal("g=0 must fail")
	}
	m1 := GuardMeasurement{Weight: 0.0042, Unique: Interval{Value: 100, Lo: 99, Hi: 101}}
	m2 := GuardMeasurement{Weight: 0.0088, Unique: Interval{Value: 1e7, Lo: 1e7 - 1, Hi: 1e7 + 1}}
	if _, err := FitPromiscuous(m1, m2, 3, 1000); err == nil {
		t.Fatal("unfittable measurements must fail")
	}
}

func TestChurnPerDay(t *testing.T) {
	oneDay := Interval{Value: 313213, Lo: 313039, Hi: 376343}
	fourDay := Interval{Value: 672303, Lo: 671781, Hi: 1118147}
	churn, err := ChurnPerDay(oneDay, fourDay, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 119,697/day (§5.1).
	if math.Abs(churn.Value-119696.67) > 1 {
		t.Fatalf("churn %v, want ~119697", churn.Value)
	}
	if churn.Lo < 0 || churn.Hi < churn.Value {
		t.Fatalf("churn interval malformed: %+v", churn)
	}
	if _, err := ChurnPerDay(oneDay, fourDay, 1); err == nil {
		t.Fatal("1-day churn must fail")
	}
}
