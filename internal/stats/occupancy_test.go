package stats

import (
	"math"
	"testing"

	"repro/internal/simtime"
)

func TestOccupancyPMFIsDistribution(t *testing.T) {
	for _, tc := range []struct{ b, n int }{{10, 0}, {10, 5}, {10, 50}, {64, 64}} {
		pmf, err := OccupancyPMF(tc.b, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range pmf {
			if p < 0 {
				t.Fatalf("negative mass b=%d n=%d", tc.b, tc.n)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("pmf b=%d n=%d sums to %v", tc.b, tc.n, sum)
		}
	}
}

func TestOccupancyPMFEdges(t *testing.T) {
	pmf, _ := OccupancyPMF(5, 0)
	if pmf[0] != 1 {
		t.Fatal("0 items means 0 occupied with certainty")
	}
	pmf, _ = OccupancyPMF(5, 1)
	if math.Abs(pmf[1]-1) > 1e-12 {
		t.Fatal("1 item means exactly 1 occupied bin")
	}
	if _, err := OccupancyPMF(0, 1); err == nil {
		t.Fatal("no bins must fail")
	}
	if _, err := OccupancyPMF(5, -1); err == nil {
		t.Fatal("negative items must fail")
	}
}

func TestOccupancyMomentsMatchPMF(t *testing.T) {
	const b, n = 40, 90
	pmf, err := OccupancyPMF(b, n)
	if err != nil {
		t.Fatal(err)
	}
	var mean, m2 float64
	for k, p := range pmf {
		mean += float64(k) * p
		m2 += float64(k) * float64(k) * p
	}
	variance := m2 - mean*mean
	am, av := OccupancyMoments(b, n)
	if math.Abs(mean-am) > 1e-6 {
		t.Fatalf("mean: pmf %v analytic %v", mean, am)
	}
	if math.Abs(variance-av) > 1e-6 {
		t.Fatalf("variance: pmf %v analytic %v", variance, av)
	}
}

func TestOccupancyMomentsEdges(t *testing.T) {
	if m, v := OccupancyMoments(0, 5); m != 0 || v != 0 {
		t.Fatal("no bins")
	}
	if m, v := OccupancyMoments(5, 0); m != 0 || v != 0 {
		t.Fatal("no items")
	}
	m, _ := OccupancyMoments(1000000, 1)
	if math.Abs(m-1) > 1e-9 {
		t.Fatalf("single item occupies one bin: %v", m)
	}
}

func TestInvertOccupancyRoundTrip(t *testing.T) {
	const b = 1 << 16
	for _, n := range []int{1, 100, 10000, 60000} {
		mean, _ := OccupancyMoments(b, n)
		got := InvertOccupancy(b, mean)
		if math.Abs(got-float64(n)) > float64(n)*0.001+0.5 {
			t.Fatalf("invert(E[X_%d]) = %v", n, got)
		}
	}
	if InvertOccupancy(100, 0) != 0 || InvertOccupancy(0, 5) != 0 {
		t.Fatal("degenerate inputs must be zero")
	}
	// Saturated table must not return +Inf.
	if v := InvertOccupancy(100, 100); math.IsInf(v, 0) || v <= 0 {
		t.Fatalf("saturated inversion: %v", v)
	}
}

// TestUnionCardinalityCICoverage simulates the full PSC observation
// pipeline — hash n items into b bins, add Binomial(t,1/2) noise — and
// checks the derived CI covers the true n in the vast majority of runs.
func TestUnionCardinalityCICoverage(t *testing.T) {
	const b = 1 << 14
	const n = 3000
	const trials = 400
	r := simtime.Rand(11, "occupancy")
	covered := 0
	const runs = 60
	for run := 0; run < runs; run++ {
		bins := make([]bool, b)
		occ := 0
		for i := 0; i < n; i++ {
			k := int(r.Uint64() % b)
			if !bins[k] {
				bins[k] = true
				occ++
			}
		}
		noise := 0
		for i := 0; i < trials; i++ {
			if r.Uint64()&1 == 1 {
				noise++
			}
		}
		iv, err := UnionCardinalityCI(PSCObservation{
			Reported: occ + noise, Bins: b, NoiseTrials: trials,
		})
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(n) {
			covered++
		}
	}
	if covered < runs*90/100 {
		t.Fatalf("CI covered true n in only %d/%d runs", covered, runs)
	}
}

func TestUnionCardinalityCIPointEstimate(t *testing.T) {
	const b = 1 << 14
	const n = 2000
	mean, _ := OccupancyMoments(b, n)
	iv, err := UnionCardinalityCI(PSCObservation{
		Reported: int(mean + 0.5 + 100), Bins: b, NoiseTrials: 200, // noise mean 100
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Value-n) > n*0.02 {
		t.Fatalf("point estimate %v, want ~%d", iv.Value, n)
	}
	if !iv.Contains(n) {
		t.Fatalf("CI %+v must contain %d", iv, n)
	}
	// The CI corrects collisions: upper bound must exceed the raw
	// occupied-bin count.
	if iv.Hi <= mean {
		t.Fatal("upper bound must exceed raw occupancy")
	}
}

func TestUnionCardinalityCIErrors(t *testing.T) {
	if _, err := UnionCardinalityCI(PSCObservation{Reported: 1, Bins: 0}); err == nil {
		t.Fatal("no bins must fail")
	}
	if _, err := UnionCardinalityCI(PSCObservation{Reported: 1, Bins: 8, NoiseTrials: -1}); err == nil {
		t.Fatal("negative noise must fail")
	}
}

func TestUnionCardinalityCIZeroObservation(t *testing.T) {
	// All noise, nothing observed: CI must include 0.
	iv, err := UnionCardinalityCI(PSCObservation{Reported: 50, Bins: 1 << 12, NoiseTrials: 100})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > 0 {
		t.Fatalf("pure-noise observation must admit 0: %+v", iv)
	}
}

func TestCollisionBiasGrowsWithLoad(t *testing.T) {
	b := 1 << 12
	small := CollisionBias(b, 100)
	large := CollisionBias(b, 4000)
	if small < 0 || large <= small {
		t.Fatalf("collision bias must grow with load: %v -> %v", small, large)
	}
}

func TestPSCObservationString(t *testing.T) {
	s := PSCObservation{Reported: 5, Bins: 8, NoiseTrials: 2}.String()
	if s != "psc(reported=5 bins=8 noise-trials=2)" {
		t.Fatal(s)
	}
}
