package stats

import (
	"errors"
	"math"
	"sort"
)

// This file implements the §4.3 extrapolation: domains are visited
// following a power law with unknown exponent, so the network-wide
// number of unique domains is inferred by simulating candidate exponents
// and keeping those consistent with the locally observed unique count
// ("we use the locally observed unique SLDs count as a self-check").

// ZipfUniqueModel models V total daily visits spread over N sites with
// Zipf(s) popularity, of which a fraction p of visits are observed by
// the measuring relays.
type ZipfUniqueModel struct {
	// Sites is the support size N of the popularity distribution.
	Sites int
	// Fraction is the probability p that any given visit is observed.
	Fraction float64
	// Visits is the total number of network-wide visits V in the period.
	Visits float64
}

// Validate checks model parameters.
func (m ZipfUniqueModel) Validate() error {
	if m.Sites <= 0 {
		return errors.New("stats: zipf model needs positive site count")
	}
	if !(m.Fraction > 0) || m.Fraction > 1 {
		return errors.New("stats: zipf model fraction outside (0,1]")
	}
	if !(m.Visits > 0) {
		return errors.New("stats: zipf model needs positive visits")
	}
	return nil
}

// bucket aggregates a contiguous rank range to make expectation sums
// over a million ranks cheap: within [lo, hi) every rank is approximated
// by the geometric-midpoint rank's probability.
type bucket struct {
	count float64
	rank  float64
}

func makeBuckets(n int) []bucket {
	var out []bucket
	lo := 1
	for lo <= n {
		// Geometric growth: ~48 buckets per decade keeps the relative
		// error of the expectation sums under 0.5%.
		width := lo / 48
		if width < 1 {
			width = 1
		}
		hi := lo + width
		if hi > n+1 {
			hi = n + 1
		}
		mid := math.Sqrt(float64(lo) * float64(hi-1))
		out = append(out, bucket{count: float64(hi - lo), rank: mid})
		lo = hi
	}
	return out
}

// ExpectedUnique returns the expected number of unique sites seen
// locally and network-wide under exponent s, along with the standard
// deviation of the local count (used as the self-check tolerance).
func (m ZipfUniqueModel) ExpectedUnique(s float64, buckets []bucket) (local, net, localSD float64) {
	if buckets == nil {
		buckets = makeBuckets(m.Sites)
	}
	// Normalization constant for q_k ∝ k^{-s}.
	var norm float64
	for _, b := range buckets {
		norm += b.count * math.Pow(b.rank, -s)
	}
	var varLocal float64
	for _, b := range buckets {
		q := math.Pow(b.rank, -s) / norm
		// P(site visited at least once network-wide) with V visits:
		// 1-(1-q)^V, computed stably in log space.
		hitNet := -math.Expm1(m.Visits * math.Log1p(-q))
		hitLocal := -math.Expm1(m.Visits * math.Log1p(-q*m.Fraction))
		net += b.count * hitNet
		local += b.count * hitLocal
		varLocal += b.count * hitLocal * (1 - hitLocal)
	}
	return local, net, math.Sqrt(varLocal)
}

// ExtrapolateConfig controls the Monte-Carlo sweep.
type ExtrapolateConfig struct {
	// ExponentMin/Max bound the power-law exponent candidates. The
	// literature the paper cites ([13,33]) puts web popularity exponents
	// near 1; default sweep is [0.5, 1.5].
	ExponentMin, ExponentMax float64
	// Trials is the number of exponent candidates examined (the paper
	// runs 100 simulations).
	Trials int
	// ToleranceSDs is how many local-count standard deviations the model
	// may miss the observation by and still be accepted.
	ToleranceSDs float64
}

// DefaultExtrapolateConfig mirrors the paper's setup.
func DefaultExtrapolateConfig() ExtrapolateConfig {
	return ExtrapolateConfig{ExponentMin: 0.5, ExponentMax: 1.5, Trials: 100, ToleranceSDs: 3}
}

// ExtrapolateResult is the outcome of the unique-count extrapolation.
type ExtrapolateResult struct {
	// Network is the inferred network-wide unique count interval.
	Network Interval
	// ExponentLo/Hi is the range of accepted exponents.
	ExponentLo, ExponentHi float64
	// Accepted is how many candidate exponents were consistent with the
	// local observation.
	Accepted int
}

// Extrapolate infers the network-wide unique count from the locally
// observed unique count (itself an interval from the PSC estimator),
// sweeping power-law exponents and keeping those whose predicted local
// count is consistent with the observation.
func (m ZipfUniqueModel) Extrapolate(localObserved Interval, cfg ExtrapolateConfig) (ExtrapolateResult, error) {
	if err := m.Validate(); err != nil {
		return ExtrapolateResult{}, err
	}
	if cfg.Trials <= 1 || cfg.ExponentMax <= cfg.ExponentMin {
		return ExtrapolateResult{}, errors.New("stats: bad extrapolation config")
	}
	buckets := makeBuckets(m.Sites)
	localAt := func(s float64) (local, tol float64) {
		l, _, sd := m.ExpectedUnique(s, buckets)
		return l, cfg.ToleranceSDs * sd
	}

	// The expected local unique count is strictly decreasing in the
	// exponent (a steeper law concentrates visits on fewer sites), so
	// the set of consistent exponents is an interval; find its ends by
	// bisection against the observed interval's edges.
	loLocal, loTol := localAt(cfg.ExponentMin)
	hiLocal, hiTol := localAt(cfg.ExponentMax)
	if loLocal+loTol < localObserved.Lo || hiLocal-hiTol > localObserved.Hi {
		return ExtrapolateResult{}, errors.New("stats: no exponent consistent with local observation; distribution poorly fit (paper hits this for all-site SLDs)")
	}
	// Smallest consistent exponent: where local(s) first drops to
	// observed.Hi + tol.
	sLo := bisectExponent(cfg.ExponentMin, cfg.ExponentMax, func(s float64) bool {
		l, tol := localAt(s)
		return l <= localObserved.Hi+tol
	})
	// Largest consistent exponent: where local(s) still exceeds
	// observed.Lo − tol.
	sHi := bisectExponent(cfg.ExponentMin, cfg.ExponentMax, func(s float64) bool {
		l, tol := localAt(s)
		return l < localObserved.Lo-tol
	})
	if sHi < sLo {
		sHi = sLo
	}

	var nets []float64
	res := ExtrapolateResult{ExponentLo: sLo, ExponentHi: sHi}
	for i := 0; i < cfg.Trials; i++ {
		s := sLo
		if cfg.Trials > 1 {
			s += (sHi - sLo) * float64(i) / float64(cfg.Trials-1)
		}
		_, net, _ := m.ExpectedUnique(s, buckets)
		res.Accepted++
		nets = append(nets, net)
	}
	sort.Float64s(nets)
	res.Network = Interval{
		Value: nets[len(nets)/2],
		Lo:    quantile(nets, 0.025),
		Hi:    quantile(nets, 0.975),
	}
	return res, nil
}

// bisectExponent finds the smallest s in [lo, hi] with pred(s) true,
// assuming pred is monotone in s (false…true). Returns hi if pred never
// turns true (callers pre-check consistency at the range ends).
func bisectExponent(lo, hi float64, pred func(float64) bool) float64 {
	if pred(lo) {
		return lo
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// quantile returns the q-quantile of sorted xs by linear interpolation.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if len(xs) == 1 {
		return xs[0]
	}
	pos := q * float64(len(xs)-1)
	i := int(pos)
	if i >= len(xs)-1 {
		return xs[len(xs)-1]
	}
	frac := pos - float64(i)
	return xs[i]*(1-frac) + xs[i+1]*frac
}
