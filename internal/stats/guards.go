package stats

import (
	"errors"
	"math"
)

// This file implements the client/guard models of §5.1 used to produce
// Table 3. Two PSC measurements of unique client IPs, taken with
// disjoint data-collector sets of different guard weights, constrain how
// many guards a typical client contacts (g), how many "promiscuous"
// clients contact all guards (p), and the network-wide client IP count.

// GuardMeasurement is one unique-client-IP measurement: the measuring
// relays' combined guard weight fraction and the PSC count interval.
type GuardMeasurement struct {
	Weight float64  // e.g. 0.0042 for 0.42% of guard weight
	Unique Interval // PSC unique-IP estimate with CI
}

// Validate checks the measurement.
func (m GuardMeasurement) Validate() error {
	if !(m.Weight > 0) || m.Weight >= 1 {
		return errors.New("stats: guard weight fraction outside (0,1)")
	}
	if m.Unique.Lo < 0 || m.Unique.Hi < m.Unique.Lo {
		return errors.New("stats: malformed unique interval")
	}
	return nil
}

// hitProb is the probability that a client choosing g guards
// weight-proportionally contacts at least one relay in a set holding
// weight fraction w: 1 − (1−w)^g.
func hitProb(w float64, g int) float64 {
	return -math.Expm1(float64(g) * math.Log1p(-w))
}

// PopulationInterval returns the network-wide client population interval
// implied by a single measurement under the selective-only model with g
// guards per client: N = u / (1 − (1−w)^g).
func (m GuardMeasurement) PopulationInterval(g int) Interval {
	h := hitProb(m.Weight, g)
	return Interval{Value: m.Unique.Value / h, Lo: m.Unique.Lo / h, Hi: m.Unique.Hi / h}
}

// ConsistentGRange finds the range of guards-per-client g (selective
// model, no promiscuous clients) for which the two measurements imply
// overlapping population intervals. The paper finds [27, 34], concluding
// the model is a poor fit (§5.1).
func ConsistentGRange(m1, m2 GuardMeasurement, gMax int) (gLo, gHi int, err error) {
	if err := m1.Validate(); err != nil {
		return 0, 0, err
	}
	if err := m2.Validate(); err != nil {
		return 0, 0, err
	}
	if gMax < 1 {
		return 0, 0, errors.New("stats: gMax must be >= 1")
	}
	gLo, gHi = -1, -1
	for g := 1; g <= gMax; g++ {
		if _, ok := m1.PopulationInterval(g).Intersect(m2.PopulationInterval(g)); ok {
			if gLo == -1 {
				gLo = g
			}
			gHi = g
		}
	}
	if gLo == -1 {
		return 0, 0, errors.New("stats: no g consistent with both measurements")
	}
	return gLo, gHi, nil
}

// PromiscuousFit is a Table 3 row: for a fixed g, the range of
// promiscuous-client counts p consistent with both measurements and the
// resulting network-wide client IP interval (selective N plus p), taken
// as the union over consistent p.
type PromiscuousFit struct {
	G           int
	Promiscuous Interval // consistent p range
	NetworkIPs  Interval // union of (N∩ + p) over consistent p
}

// FitPromiscuous fits the refined model of §5.1 in which p promiscuous
// clients (bridges, tor2web, NATs) contact every guard and the remaining
// N selective clients contact exactly g guards:
//
//	E[u_i] = p + N·(1 − (1−w_i)^g)
//
// For the given g it returns the consistent p range and the network-wide
// client-IP interval, or an error if no p is consistent.
func FitPromiscuous(m1, m2 GuardMeasurement, g int, pMax float64) (PromiscuousFit, error) {
	if err := m1.Validate(); err != nil {
		return PromiscuousFit{}, err
	}
	if err := m2.Validate(); err != nil {
		return PromiscuousFit{}, err
	}
	if g < 1 {
		return PromiscuousFit{}, errors.New("stats: g must be >= 1")
	}
	if pMax <= 0 {
		pMax = math.Max(m1.Unique.Hi, m2.Unique.Hi)
	}
	h1, h2 := hitProb(m1.Weight, g), hitProb(m2.Weight, g)

	// Scan p; the consistent set is an interval because the implied N
	// intervals move monotonically with p.
	const steps = 4096
	fit := PromiscuousFit{G: g}
	foundAny := false
	var pLo, pHi float64
	netLo, netHi := math.Inf(1), math.Inf(-1)
	for i := 0; i <= steps; i++ {
		p := pMax * float64(i) / steps
		n1 := Interval{Lo: (m1.Unique.Lo - p) / h1, Hi: (m1.Unique.Hi - p) / h1}
		n2 := Interval{Lo: (m2.Unique.Lo - p) / h2, Hi: (m2.Unique.Hi - p) / h2}
		overlap, ok := n1.Intersect(n2)
		if !ok || overlap.Hi < 0 {
			continue
		}
		if overlap.Lo < 0 {
			overlap.Lo = 0
		}
		if !foundAny {
			pLo = p
			foundAny = true
		}
		pHi = p
		netLo = math.Min(netLo, overlap.Lo+p)
		netHi = math.Max(netHi, overlap.Hi+p)
	}
	if !foundAny {
		return PromiscuousFit{}, errors.New("stats: no promiscuous count consistent with both measurements")
	}
	fit.Promiscuous = Interval{Value: (pLo + pHi) / 2, Lo: pLo, Hi: pHi}
	fit.NetworkIPs = Interval{Value: (netLo + netHi) / 2, Lo: netLo, Hi: netHi}
	return fit, nil
}

// ChurnPerDay converts a 1-day and a multi-day unique-IP measurement
// into a clients-per-day churn interval, as in §5.1: the multi-day count
// minus the one-day count, spread over the extra days.
func ChurnPerDay(oneDay, multiDay Interval, days int) (Interval, error) {
	if days <= 1 {
		return Interval{}, errors.New("stats: churn needs a multi-day measurement")
	}
	extra := float64(days - 1)
	lo := (multiDay.Lo - oneDay.Hi) / extra
	hi := (multiDay.Hi - oneDay.Lo) / extra
	val := (multiDay.Value - oneDay.Value) / extra
	if lo < 0 {
		lo = 0
	}
	if val < 0 {
		val = 0
	}
	return Interval{Value: val, Lo: lo, Hi: hi}, nil
}
