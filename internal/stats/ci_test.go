package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Value: 10, Lo: 8, Hi: 14}
	if !iv.Contains(8) || !iv.Contains(14) || iv.Contains(7.9) {
		t.Fatal("Contains")
	}
	if iv.Width() != 6 {
		t.Fatal("Width")
	}
	s := iv.Scale(2)
	if s.Value != 20 || s.Lo != 16 || s.Hi != 28 {
		t.Fatal("Scale")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	b := Interval{Lo: 5, Hi: 15}
	ov, ok := a.Intersect(b)
	if !ok || ov.Lo != 5 || ov.Hi != 10 {
		t.Fatalf("intersect: %+v ok=%v", ov, ok)
	}
	if _, ok := a.Intersect(Interval{Lo: 11, Hi: 12}); ok {
		t.Fatal("disjoint intervals must not intersect")
	}
	// Touching endpoints intersect.
	if _, ok := a.Intersect(Interval{Lo: 10, Hi: 20}); !ok {
		t.Fatal("touching intervals must intersect")
	}
}

func TestNormalCI(t *testing.T) {
	iv := NormalCI(100, 10)
	if iv.Value != 100 {
		t.Fatal("center")
	}
	if math.Abs(iv.Lo-(100-19.6)) > 0.01 || math.Abs(iv.Hi-(100+19.6)) > 0.01 {
		t.Fatalf("95%% CI: %+v", iv)
	}
	// Negative sigma treated as magnitude.
	if NormalCI(0, -5).Width() != NormalCI(0, 5).Width() {
		t.Fatal("negative sigma")
	}
}

// TestInferTotalPaperExample reproduces the worked example in §3.3:
// 32 million streams at 1.5% exit weight with σ = 3.1 million noise
// infer to 2.1e9 ± 4.1e8 network-wide streams.
func TestInferTotalPaperExample(t *testing.T) {
	local := NormalCI(3.2e7, 3.1e6)
	total, err := InferTotal(local, 0.015)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total.Value-2.133e9) > 0.01e9 {
		t.Fatalf("inferred total %v, want ~2.1e9", total.Value)
	}
	halfWidth := (total.Hi - total.Lo) / 2
	if math.Abs(halfWidth-4.05e8) > 0.1e8 {
		t.Fatalf("inferred half-width %v, want ~4.1e8", halfWidth)
	}
}

func TestInferTotalErrors(t *testing.T) {
	for _, frac := range []float64{0, -0.1, 1.5} {
		if _, err := InferTotal(Interval{}, frac); err == nil {
			t.Errorf("fraction %v must fail", frac)
		}
	}
}

func TestClampNonNegative(t *testing.T) {
	iv := Interval{Value: -3, Lo: -10, Hi: 4}.ClampNonNegative()
	if iv.Value != 0 || iv.Lo != 0 || iv.Hi != 4 {
		t.Fatalf("clamp: %+v", iv)
	}
}

func TestRangeOnly(t *testing.T) {
	iv, err := RangeOnly(11882, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 11882 || math.Abs(iv.Hi-59410) > 1 {
		t.Fatalf("range-only: %+v", iv)
	}
	if _, err := RangeOnly(1, 0); err == nil {
		t.Fatal("zero fraction must fail")
	}
}

func TestBinomialCI(t *testing.T) {
	iv, err := BinomialCI(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Value != 0.5 {
		t.Fatal("point")
	}
	if !(iv.Lo < 0.5 && iv.Hi > 0.5) {
		t.Fatalf("CI must bracket point: %+v", iv)
	}
	if iv.Lo < 0.39 || iv.Lo > 0.41 || iv.Hi < 0.59 || iv.Hi > 0.61 {
		t.Fatalf("Clopper-Pearson 50/100 should be ~[0.398, 0.602]: %+v", iv)
	}
	// Edge cases.
	iv, _ = BinomialCI(0, 10)
	if iv.Lo != 0 {
		t.Fatal("k=0 lower bound must be 0")
	}
	iv, _ = BinomialCI(10, 10)
	if iv.Hi != 1 {
		t.Fatal("k=n upper bound must be 1")
	}
	if _, err := BinomialCI(5, 0); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := BinomialCI(11, 10); err == nil {
		t.Fatal("k>n must fail")
	}
}

func TestBinomialCILargeN(t *testing.T) {
	// Normal-approximation branch: 90.9% failures of 134M fetches
	// (Table 7 scale, scaled down to keep runtime sane).
	iv, err := BinomialCI(909000, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Value-0.909) > 1e-9 {
		t.Fatal("point")
	}
	if iv.Width() > 0.002 {
		t.Fatalf("CI too wide for n=1e6: %+v", iv)
	}
	if !iv.Contains(0.909) {
		t.Fatal("CI must contain point")
	}
}

// Property: CI coverage scales out — intersect is commutative and
// scaling preserves containment.
func TestIntervalProperties(t *testing.T) {
	f := func(v, lo, hi, x uint16, scale uint8) bool {
		l, h := float64(lo), float64(hi)
		if l > h {
			l, h = h, l
		}
		iv := Interval{Value: float64(v), Lo: l, Hi: h}
		s := float64(scale)/16 + 0.5
		scaled := iv.Scale(s)
		if iv.Contains(float64(x)) != scaled.Contains(float64(x)*s) {
			return false
		}
		other := Interval{Lo: float64(x), Hi: float64(x) + 10}
		a, okA := iv.Intersect(other)
		b, okB := other.Intersect(iv)
		return okA == okB && (!okA || (a.Lo == b.Lo && a.Hi == b.Hi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
