// Package spill provides bounded-residency record stores: fixed-slot
// vectors written sequentially by one phase of a protocol and read back
// — contiguously or strided — by the next, holding O(1) records in
// memory. The PSC shuffle's inter-pass vectors, the tally's gather
// table and pre-decrypt buffer, and the PrivCount tolerant flow's
// per-DC report buffers all live here, which is what takes a tally
// server's residency from O(bins) to O(chunk) end to end.
//
// Records live in an unlinked temp file (the kernel reclaims the
// blocks when the handle closes, however the process exits), falling
// back to an in-memory byte buffer — with a logged metric — where the
// configured directory is unwritable. Encoded records are typically an
// order of magnitude smaller than their parsed in-heap forms and never
// enter the heap until read.
package spill

import (
	"fmt"
	"io"
	"log"
	"os"
	"sync"

	"repro/internal/metrics"
)

var (
	dirMu sync.Mutex
	dir   string
)

// SetDir configures the directory spill files are created in. The
// empty string (the default) selects the system temp dir. Daemons wire
// this to -spill-dir so operators can point multi-gigabyte rounds at a
// scratch disk instead of a tmpfs-backed /tmp.
func SetDir(d string) {
	dirMu.Lock()
	dir = d
	dirMu.Unlock()
}

// Dir returns the configured spill directory ("" means the system temp
// dir).
func Dir() string {
	dirMu.Lock()
	defer dirMu.Unlock()
	return dir
}

// Store is a random-access store of n fixed-size records. It is not
// safe for concurrent use; callers that share a Store across
// goroutines serialize access themselves (the protocol layers wrap it
// in a locked or striped structure).
type Store struct {
	n, slot int
	file    *os.File // nil when memory-backed
	mem     []byte
	readBuf []byte
}

// New creates a store for n records of slot bytes each. It never fails
// on storage grounds: an unwritable spill directory falls back to an
// in-memory buffer, counted in the process-wide metrics registry as
// spill/mem-fallbacks and logged once per store — still far below
// parsed-record residency, but no longer disk-bounded, which operators
// sizing a million-bin round need to see.
func New(n, slot int) (*Store, error) {
	if n < 0 || slot <= 0 {
		return nil, fmt.Errorf("spill: store of %d records × %d bytes", n, slot)
	}
	s := &Store{n: n, slot: slot}
	f, err := os.CreateTemp(Dir(), "spill-*.dat")
	if err != nil {
		metrics.Default().Inc("spill/mem-fallbacks")
		log.Printf("spill: %v; falling back to memory (%d B)", err, n*slot)
		s.mem = make([]byte, n*slot)
		return s, nil
	}
	// Unlink immediately: the kernel reclaims the blocks when the file
	// handle closes, however the process exits.
	os.Remove(f.Name())
	s.file = f
	return s, nil
}

// Slots returns the record count the store was created for.
func (s *Store) Slots() int { return s.n }

// SlotSize returns the fixed record size in bytes.
func (s *Store) SlotSize() int { return s.slot }

// InMemory reports whether the store fell back to a memory buffer.
func (s *Store) InMemory() bool { return s.file == nil && s.mem != nil }

// WriteAt stores len(buf)/SlotSize records at record offset off. buf
// must be a whole number of slots.
func (s *Store) WriteAt(off int, buf []byte) error {
	if len(buf)%s.slot != 0 {
		return fmt.Errorf("spill: write of %d bytes is not a whole number of %d-byte slots", len(buf), s.slot)
	}
	count := len(buf) / s.slot
	if off < 0 || off+count > s.n {
		return fmt.Errorf("spill: write [%d,%d) out of range %d", off, off+count, s.n)
	}
	if s.file != nil {
		_, err := s.file.WriteAt(buf, int64(off)*int64(s.slot))
		return err
	}
	if s.mem == nil {
		return fmt.Errorf("spill: store closed")
	}
	copy(s.mem[off*s.slot:], buf)
	return nil
}

// ReadRange returns the raw bytes of count records starting at record
// offset off. The returned slice aliases an internal buffer (or the
// memory backing) and is only valid until the next Read call.
func (s *Store) ReadRange(off, count int) ([]byte, error) {
	if off < 0 || count < 0 || off+count > s.n {
		return nil, fmt.Errorf("spill: read [%d,%d) out of range %d", off, off+count, s.n)
	}
	return s.raw(int64(off)*int64(s.slot), count*s.slot)
}

// ReadRangeInto is ReadRange reading through the caller's scratch
// buffer (grown as needed) instead of the store's shared one — the
// variant for concurrent readers of disjoint ranges, who serialize
// range ownership themselves but must not share a read buffer. It
// returns the filled slice (which may alias the memory backing rather
// than scratch) and the possibly-grown scratch for reuse.
func (s *Store) ReadRangeInto(off, count int, scratch []byte) (data, grown []byte, err error) {
	if off < 0 || count < 0 || off+count > s.n {
		return nil, scratch, fmt.Errorf("spill: read [%d,%d) out of range %d", off, off+count, s.n)
	}
	if s.file == nil {
		if s.mem == nil {
			return nil, scratch, fmt.Errorf("spill: store closed")
		}
		pos := off * s.slot
		return s.mem[pos : pos+count*s.slot], scratch, nil
	}
	want := count * s.slot
	if cap(scratch) < want {
		scratch = make([]byte, want)
	}
	buf := scratch[:want]
	if _, err := s.file.ReadAt(buf, int64(off)*int64(s.slot)); err != nil && err != io.EOF {
		return nil, scratch, err
	}
	return buf, scratch, nil
}

// ReadSlot reads record i into buf, which must be at least SlotSize
// bytes. One slot is read per call — the strided gather of a column
// pass; sequential writes leave the file hot in the page cache, so the
// gather costs syscalls, not seeks.
func (s *Store) ReadSlot(i int, buf []byte) error {
	if i < 0 || i >= s.n {
		return fmt.Errorf("spill: slot %d out of range %d", i, s.n)
	}
	if len(buf) < s.slot {
		return fmt.Errorf("spill: %d-byte buffer for %d-byte slot", len(buf), s.slot)
	}
	if s.file != nil {
		_, err := s.file.ReadAt(buf[:s.slot], int64(i)*int64(s.slot))
		if err != nil && err != io.EOF {
			return err
		}
		return nil
	}
	if s.mem == nil {
		return fmt.Errorf("spill: store closed")
	}
	copy(buf[:s.slot], s.mem[i*s.slot:])
	return nil
}

// raw returns count bytes at byte offset pos, reusing the read buffer.
func (s *Store) raw(pos int64, count int) ([]byte, error) {
	if s.file == nil {
		if s.mem == nil {
			return nil, fmt.Errorf("spill: store closed")
		}
		return s.mem[pos : pos+int64(count)], nil
	}
	if cap(s.readBuf) < count {
		s.readBuf = make([]byte, count)
	}
	buf := s.readBuf[:count]
	if _, err := s.file.ReadAt(buf, pos); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// Close releases the backing storage. Safe to call more than once;
// subsequent reads and writes error.
func (s *Store) Close() error {
	s.mem, s.readBuf = nil, nil
	if s.file == nil {
		return nil
	}
	f := s.file
	s.file = nil
	return f.Close()
}
