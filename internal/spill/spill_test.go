package spill

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

func fill(slot, i int) []byte {
	buf := make([]byte, slot)
	for j := range buf {
		buf[j] = byte(i + j)
	}
	return buf
}

// TestRoundTrip exercises sequential writes followed by contiguous and
// strided reads, for both backings.
func TestRoundTrip(t *testing.T) {
	for _, mem := range []bool{false, true} {
		const n, slot = 100, 17
		s, err := New(n, slot)
		if err != nil {
			t.Fatal(err)
		}
		if mem {
			// Force the memory backing to run the same assertions on
			// the fallback path.
			s.file.Close()
			s.file, s.mem = nil, make([]byte, n*slot)
		}
		if s.InMemory() != mem {
			t.Fatalf("InMemory() = %v, want %v", s.InMemory(), mem)
		}
		for i := 0; i < n; i += 4 {
			count := 4
			if i+count > n {
				count = n - i
			}
			var chunk []byte
			for j := 0; j < count; j++ {
				chunk = append(chunk, fill(slot, i+j)...)
			}
			if err := s.WriteAt(i, chunk); err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.ReadRange(10, 5)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if !bytes.Equal(got[j*slot:(j+1)*slot], fill(slot, 10+j)) {
				t.Fatalf("mem=%v: record %d mismatch", mem, 10+j)
			}
		}
		buf := make([]byte, slot)
		for _, i := range []int{0, 13, 42, n - 1} {
			if err := s.ReadSlot(i, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, fill(slot, i)) {
				t.Fatalf("mem=%v: strided record %d mismatch", mem, i)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if _, err := s.ReadRange(0, 1); err == nil {
			t.Fatal("read after close succeeded")
		}
		if err := s.WriteAt(0, make([]byte, slot)); err == nil {
			t.Fatal("write after close succeeded")
		}
	}
}

// TestUnwritableDirFallsBack is the satellite failure-path test: a spill
// dir that cannot be written must degrade to the in-memory backing and
// count the fallback, not fail the round.
func TestUnwritableDirFallsBack(t *testing.T) {
	defer SetDir(Dir())
	SetDir(filepath.Join(t.TempDir(), "does", "not", "exist"))
	before := metrics.Default().Get("spill/mem-fallbacks")
	s, err := New(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.InMemory() {
		t.Fatal("store is file-backed despite unwritable dir")
	}
	if got := metrics.Default().Get("spill/mem-fallbacks"); got != before+1 {
		t.Fatalf("mem-fallbacks = %g, want %g", got, before+1)
	}
	if err := s.WriteAt(3, fill(4, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRange(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(4, 3)) {
		t.Fatal("fallback store round-trip mismatch")
	}
}

// TestConfiguredDirUsed checks SetDir actually routes files there.
func TestConfiguredDirUsed(t *testing.T) {
	defer SetDir(Dir())
	SetDir(t.TempDir())
	before := metrics.Default().Get("spill/mem-fallbacks")
	s, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.InMemory() {
		t.Fatal("store fell back to memory in a writable dir")
	}
	if got := metrics.Default().Get("spill/mem-fallbacks"); got != before {
		t.Fatalf("mem-fallbacks moved: %g -> %g", before, got)
	}
}

func TestBounds(t *testing.T) {
	s, err := New(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteAt(8, make([]byte, 3*4)); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if err := s.WriteAt(0, make([]byte, 5)); err == nil {
		t.Fatal("ragged write succeeded")
	}
	if _, err := s.ReadRange(9, 2); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if err := s.ReadSlot(10, make([]byte, 4)); err == nil {
		t.Fatal("out-of-range slot read succeeded")
	}
	if _, err := New(-1, 4); err == nil {
		t.Fatal("negative store size accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Fatal("zero slot size accepted")
	}
}
