// Package asn provides a synthetic CAIDA-style IP-to-AS database: a
// pfx2as prefix table with longest-prefix-match lookup and an AS rank
// list ordered by customer-cone size. The paper maps client IPs to
// autonomous systems with the CAIDA Routeviews pfx2as dataset and checks
// the top-1000 ASes by CAIDA rank for "hotspots" (§5.2).
package asn

import (
	"encoding/binary"
	"net/netip"
	"sort"

	"repro/internal/geo"
	"repro/internal/simtime"
)

// TotalASes is the number of allocated AS numbers in the synthetic
// internet, matching the paper's upper bound for the network-wide
// unique-AS range (§5.2: [11,708; 59,597]).
const TotalASes = 59597

// Prefix is one pfx2as entry: an IPv4 prefix and its origin AS.
type Prefix struct {
	Start uint32
	Len   int // prefix length in bits
	ASN   uint32
}

// End returns one past the last address covered by the prefix.
func (p Prefix) End() uint32 {
	size := uint32(1) << (32 - p.Len)
	return p.Start + size
}

// Contains reports whether the prefix covers the address.
func (p Prefix) Contains(v uint32) bool { return v >= p.Start && v < p.End() }

// DB is the prefix table with rank metadata.
type DB struct {
	prefixes []Prefix // sorted by (Start, Len)
	rank     []ASInfo // sorted by descending cone size
	byASN    map[uint32][]Prefix
}

// ASInfo describes one AS in the rank list.
type ASInfo struct {
	ASN uint32
	// ConeSize is the number of ASes in this AS's customer cone, the
	// quantity CAIDA ranks by.
	ConeSize int
}

// Build subdivides each GeoIP country block into AS prefixes. Every /16
// country block is split into /18.. /22 prefixes assigned to ASes drawn
// from the country's AS pool, with some more-specific /24 announcements
// nested inside to exercise longest-prefix matching, as in real BGP
// tables.
func Build(g *geo.DB, seed uint64) *DB {
	r := simtime.Rand(seed, "asn-prefixes")
	db := &DB{byASN: make(map[uint32][]Prefix)}

	// Give each country a pool of AS numbers; pool size scales with the
	// country's address footprint so big countries host many ASes.
	nextASN := uint32(1)
	countryAS := make(map[string][]uint32)
	for _, c := range geo.Countries() {
		blocks := g.Blocks(c)
		n := 4 * len(blocks)
		if n < 2 {
			n = 2
		}
		pool := make([]uint32, n)
		for i := range pool {
			pool[i] = nextASN
			nextASN++
		}
		countryAS[c] = pool
	}
	// Spread the remaining AS numbers (stub ASes with no prefixes here)
	// up to TotalASes; they exist in the rank universe only.
	for _, c := range geo.Countries() {
		blocks := g.Blocks(c)
		pool := countryAS[c]
		// Prefix assignment within a country is heavy-tailed: a few
		// large eyeball networks originate most of the address space,
		// as in the real routing table. This is what concentrates ~half
		// of client activity in the top-ranked ASes (§5.2).
		zipf := simtime.NewZipf(len(pool), 1.1)
		for _, b := range blocks {
			// Split the /16 into /20s; occasionally nest a /24.
			for off := uint32(0); off < 1<<16; off += 1 << 12 {
				asn := pool[zipf.Rank(r)-1]
				p := Prefix{Start: b.Start + off, Len: 20, ASN: asn}
				db.prefixes = append(db.prefixes, p)
				db.byASN[asn] = append(db.byASN[asn], p)
				if r.Float64() < 0.25 {
					more := pool[zipf.Rank(r)-1]
					sp := Prefix{Start: b.Start + off + uint32(r.Uint64()%16)<<8, Len: 24, ASN: more}
					db.prefixes = append(db.prefixes, sp)
					db.byASN[more] = append(db.byASN[more], sp)
				}
			}
		}
	}
	sort.Slice(db.prefixes, func(i, j int) bool {
		if db.prefixes[i].Start != db.prefixes[j].Start {
			return db.prefixes[i].Start < db.prefixes[j].Start
		}
		return db.prefixes[i].Len < db.prefixes[j].Len
	})

	// Synthetic customer-cone sizes: proportional to announced address
	// coverage, so CAIDA-style rank correlates with network size across
	// all countries rather than following AS-number order.
	db.rank = make([]ASInfo, 0, len(db.byASN))
	for asn, prefixes := range db.byASN {
		covered := 0
		for _, p := range prefixes {
			covered += int(p.End() - p.Start)
		}
		db.rank = append(db.rank, ASInfo{ASN: asn, ConeSize: covered >> 12})
	}
	sort.Slice(db.rank, func(i, j int) bool {
		if db.rank[i].ConeSize != db.rank[j].ConeSize {
			return db.rank[i].ConeSize > db.rank[j].ConeSize
		}
		return db.rank[i].ASN < db.rank[j].ASN
	})
	if len(db.rank) > 4096 {
		db.rank = db.rank[:4096]
	}
	return db
}

// Lookup resolves an IPv4 address to its origin AS via longest-prefix
// match, returning 0 when no prefix covers it.
func (db *DB) Lookup(ip netip.Addr) uint32 {
	ip = ip.Unmap()
	if !ip.Is4() {
		return 0
	}
	v := binary.BigEndian.Uint32(ip.AsSlice())
	// Find the last prefix with Start <= v, then walk back over the few
	// candidates that might still contain v, keeping the longest.
	i := sort.Search(len(db.prefixes), func(i int) bool { return db.prefixes[i].Start > v })
	best := uint32(0)
	bestLen := -1
	for j := i - 1; j >= 0; j-- {
		p := db.prefixes[j]
		if p.Contains(v) {
			if p.Len > bestLen {
				best, bestLen = p.ASN, p.Len
			}
			continue
		}
		// Prefixes are sorted by start; once we are more than a /16
		// behind v no earlier prefix (max size /16 here) can cover it.
		if v-p.Start >= 1<<16 {
			break
		}
	}
	return best
}

// TopASes returns the n highest-ranked ASes by customer-cone size, the
// population PrivCount's AS histogram measures (§5.2).
func (db *DB) TopASes(n int) []ASInfo {
	if n > len(db.rank) {
		n = len(db.rank)
	}
	out := make([]ASInfo, n)
	copy(out, db.rank[:n])
	return out
}

// Prefixes returns the prefixes announced by an AS.
func (db *DB) Prefixes(asn uint32) []Prefix { return db.byASN[asn] }

// NumPrefixes returns the table size.
func (db *DB) NumPrefixes() int { return len(db.prefixes) }

// NumOriginASes returns how many distinct ASes announce at least one
// prefix.
func (db *DB) NumOriginASes() int { return len(db.byASN) }
