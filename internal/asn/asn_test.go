package asn

import (
	"encoding/binary"
	"net/netip"
	"testing"

	"repro/internal/geo"
	"repro/internal/simtime"
)

var (
	testGeo = geo.Build(1)
	testDB  = Build(testGeo, 1)
)

func ipOf(v uint32) netip.Addr {
	var raw [4]byte
	binary.BigEndian.PutUint32(raw[:], v)
	return netip.AddrFrom4(raw)
}

func TestLookupCoversAllCountryBlocks(t *testing.T) {
	for _, c := range []string{"US", "RU", "DE", "AE", "BV"} {
		for _, b := range testGeo.Blocks(c) {
			for _, v := range []uint32{b.Start, b.Start + 7777, b.End - 1} {
				if asn := testDB.Lookup(ipOf(v)); asn == 0 {
					t.Fatalf("address %v in %q block has no origin AS", ipOf(v), c)
				}
			}
		}
	}
}

func TestLookupOutsidePlan(t *testing.T) {
	if testDB.Lookup(netip.MustParseAddr("0.0.0.1")) != 0 {
		t.Fatal("address before plan must be unmapped")
	}
	if testDB.Lookup(netip.MustParseAddr("255.0.0.1")) != 0 {
		t.Fatal("address after plan must be unmapped")
	}
	if testDB.Lookup(netip.MustParseAddr("2001:db8::2")) != 0 {
		t.Fatal("IPv6 must be unmapped")
	}
}

func TestLongestPrefixWins(t *testing.T) {
	// Find a /24 nested inside a /20 and confirm addresses inside the
	// /24 resolve to the /24's AS while the rest of the /20 resolves to
	// the /20's AS.
	var found bool
	for _, p := range testDB.prefixes {
		if p.Len != 24 {
			continue
		}
		// Find the covering /20.
		var cover *Prefix
		for i := range testDB.prefixes {
			q := testDB.prefixes[i]
			if q.Len == 20 && q.Contains(p.Start) {
				cover = &q
				break
			}
		}
		if cover == nil || cover.ASN == p.ASN {
			continue
		}
		found = true
		if got := testDB.Lookup(ipOf(p.Start + 5)); got != p.ASN {
			t.Fatalf("inside /24: got AS%d want AS%d", got, p.ASN)
		}
		// An address in the /20 but outside the /24.
		var outside uint32
		if p.Start > cover.Start {
			outside = cover.Start
		} else {
			outside = p.End()
		}
		if outside < cover.End() && !p.Contains(outside) {
			got := testDB.Lookup(ipOf(outside))
			if got == p.ASN {
				t.Fatalf("outside /24 resolved to the /24's AS%d", got)
			}
		}
		break
	}
	if !found {
		t.Fatal("synthetic table contains no nested /24 with a distinct AS; longest-prefix semantics untested")
	}
}

func TestPrefixHelpers(t *testing.T) {
	p := Prefix{Start: 0x0A000000, Len: 24, ASN: 7}
	if p.End() != 0x0A000100 {
		t.Fatalf("End: %x", p.End())
	}
	if !p.Contains(0x0A0000FF) || p.Contains(0x0A000100) {
		t.Fatal("Contains")
	}
}

func TestTopASes(t *testing.T) {
	top := testDB.TopASes(1000)
	if len(top) != 1000 {
		t.Fatalf("top-1000: got %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].ConeSize > top[i-1].ConeSize {
			t.Fatal("rank list must be sorted by descending cone size")
		}
	}
	// Requesting more than available truncates.
	all := testDB.TopASes(1 << 20)
	if len(all) > 1<<20 || len(all) == 0 {
		t.Fatalf("TopASes overflow: %d", len(all))
	}
}

func TestOriginASesPlausible(t *testing.T) {
	n := testDB.NumOriginASes()
	if n < 1000 {
		t.Fatalf("too few origin ASes: %d", n)
	}
	if n >= TotalASes {
		t.Fatalf("origin ASes %d must be below the AS universe %d", n, TotalASes)
	}
}

func TestPrefixesByASN(t *testing.T) {
	top := testDB.TopASes(10)
	for _, info := range top {
		for _, p := range testDB.Prefixes(info.ASN) {
			if p.ASN != info.ASN {
				t.Fatal("Prefixes returned a foreign prefix")
			}
		}
	}
	if testDB.Prefixes(0xFFFFFFFF) != nil {
		t.Fatal("unknown ASN must have no prefixes")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(testGeo, 5)
	b := Build(testGeo, 5)
	if a.NumPrefixes() != b.NumPrefixes() {
		t.Fatal("prefix counts differ across identical seeds")
	}
	for i := 0; i < a.NumPrefixes(); i += 97 {
		if a.prefixes[i] != b.prefixes[i] {
			t.Fatalf("prefix %d differs", i)
		}
	}
}

func TestASDiversityAcrossClients(t *testing.T) {
	// Sampling many client IPs from big countries must traverse many
	// ASes — the paper observes ~12k distinct client ASes (§5.2).
	r := simtime.Rand(4, "asn-div")
	seen := make(map[uint32]bool)
	for i := 0; i < 20000; i++ {
		c := geo.Countries()[i%60]
		ip := testGeo.RandomIP(r, c)
		if asn := testDB.Lookup(ip); asn != 0 {
			seen[asn] = true
		}
	}
	if len(seen) < 500 {
		t.Fatalf("client AS diversity too low: %d", len(seen))
	}
}

func BenchmarkLookup(b *testing.B) {
	r := simtime.Rand(8, "asn-bench")
	ips := make([]netip.Addr, 1024)
	for i := range ips {
		ips[i] = testGeo.RandomIP(r, "US")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testDB.Lookup(ips[i%len(ips)])
	}
}
