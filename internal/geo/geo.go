// Package geo provides a synthetic MaxMind-GeoLite2-style IP-to-country
// database. The paper resolves client IPs to countries at the data
// collectors to build the per-country usage histograms of Figure 4 and
// the unique-country PSC count of Table 5; this package reproduces the
// lookup semantics (range database, binary search) over a deterministic
// synthetic address plan.
package geo

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"

	"repro/internal/simtime"
)

// NumCountries is the worldwide country count the paper uses as the
// upper bound for the unique-country measurement (§5.2).
const NumCountries = 250

// isoCodes lists 250 ISO 3166-1 alpha-2 codes. The first entries are
// ordered so that the countries the paper's Figure 4 highlights exist;
// the rest complete the population.
var isoCodes = []string{
	"US", "RU", "DE", "UA", "FR", "GB", "CA", "NL", "PL", "ES",
	"AE", "BR", "MX", "AR", "SE", "IT", "JP", "IN", "IR", "CN",
	"VE", "NA", "NZ", "BV", "SC", "IM", "SK", "VG", "PR", "NI",
	"BM", "SS", "AU", "AT", "BE", "CH", "CZ", "DK", "FI", "GR",
	"HU", "ID", "IE", "IL", "KR", "MY", "NO", "PT", "RO", "TH",
	"TR", "TW", "VN", "ZA", "CL", "CO", "PE", "EC", "UY", "PY",
	"BO", "CR", "PA", "GT", "HN", "SV", "DO", "CU", "JM", "HT",
	"TT", "BB", "BS", "BZ", "GY", "SR", "AW", "CW", "KY", "TC",
	"AG", "DM", "GD", "KN", "LC", "VC", "AI", "MS", "GP", "MQ",
	"GF", "PM", "WF", "PF", "NC", "VU", "FJ", "SB", "PG", "TO",
	"WS", "KI", "TV", "NR", "PW", "FM", "MH", "CK", "NU", "TK",
	"AS", "GU", "MP", "UM", "PH", "SG", "BN", "KH", "LA", "MM",
	"BD", "BT", "LK", "MV", "NP", "PK", "AF", "KZ", "KG", "TJ",
	"TM", "UZ", "MN", "KP", "HK", "MO", "TL", "IQ", "JO", "KW",
	"LB", "OM", "QA", "SA", "SY", "YE", "BH", "IL2", "PS", "CY",
	"AM", "AZ", "GE", "BY", "MD", "LT", "LV", "EE", "AL", "BA",
	"BG", "HR", "MK", "ME", "RS", "SI", "XK", "AD", "LI", "MC",
	"SM", "VA", "MT", "IS", "FO", "GL", "GI", "LU", "JE", "GG",
	"AX", "SJ", "DZ", "AO", "BJ", "BW", "BF", "BI", "CM", "CV",
	"CF", "TD", "KM", "CG", "CD", "CI", "DJ", "EG", "GQ", "ER",
	"ET", "GA", "GM", "GH", "GN", "GW", "KE", "LS", "LR", "LY",
	"MG", "MW", "ML", "MR", "MU", "YT", "MA", "MZ", "NE", "NG",
	"RE", "RW", "SH", "ST", "SN", "SL", "SO", "SZ", "TZ", "TG",
	"TN", "UG", "EH", "ZM", "ZW", "SD", "TF", "HM", "IO", "CX",
	"CC", "NF", "PN", "GS", "FK", "AQ", "CQ", "ZZ", "XA", "XB",
}

func init() {
	if len(isoCodes) != NumCountries {
		panic(fmt.Sprintf("geo: have %d country codes, want %d", len(isoCodes), NumCountries))
	}
}

// Countries returns all country codes in the database.
func Countries() []string {
	out := make([]string, len(isoCodes))
	copy(out, isoCodes)
	return out
}

// Block is a contiguous IPv4 range [Start, End) assigned to a country.
type Block struct {
	Start, End uint32
	Country    string
}

// DB is a range-based IP-to-country database.
type DB struct {
	blocks    []Block            // sorted by Start, non-overlapping
	byCountry map[string][]Block // country -> its blocks
}

// Build constructs the synthetic address plan: each country receives a
// number of /16 blocks proportional to its synthetic internet footprint
// (minimum one), scattered deterministically through 1.0.0.0/8 ..
// 223.0.0.0/8 space.
func Build(seed uint64) *DB {
	r := simtime.Rand(seed, "geoip")
	// Footprint weights: a few large countries hold most address space.
	weights := make([]float64, len(isoCodes))
	for i := range isoCodes {
		// Zipf-ish decay by position with a floor.
		weights[i] = 1.0 / float64(i+1)
	}
	const totalBlocks = 4096
	var sumW float64
	for _, w := range weights {
		sumW += w
	}

	// Assign block counts, minimum 1 per country.
	counts := make([]int, len(isoCodes))
	assigned := 0
	for i, w := range weights {
		c := int(w / sumW * float64(totalBlocks))
		if c < 1 {
			c = 1
		}
		counts[i] = c
		assigned += c
	}

	// Lay blocks out in a deterministic shuffled order of /16 indices.
	idx := make([]int, 0, assigned)
	for i, c := range counts {
		for j := 0; j < c; j++ {
			idx = append(idx, i)
		}
	}
	// Fisher-Yates with the seeded generator.
	for i := len(idx) - 1; i > 0; i-- {
		j := int(r.Uint64() % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}

	db := &DB{byCountry: make(map[string][]Block, len(isoCodes))}
	base := uint32(1) << 24 // start at 1.0.0.0
	for k, countryIdx := range idx {
		start := base + uint32(k)<<16
		b := Block{Start: start, End: start + 1<<16, Country: isoCodes[countryIdx]}
		db.blocks = append(db.blocks, b)
		db.byCountry[b.Country] = append(db.byCountry[b.Country], b)
	}
	sort.Slice(db.blocks, func(i, j int) bool { return db.blocks[i].Start < db.blocks[j].Start })
	return db
}

// Country resolves an IPv4 address to its country code, or "" when the
// address is outside every block (or not IPv4).
func (db *DB) Country(ip netip.Addr) string {
	ip = ip.Unmap()
	if !ip.Is4() {
		return ""
	}
	v := binary.BigEndian.Uint32(ip.AsSlice())
	i := sort.Search(len(db.blocks), func(i int) bool { return db.blocks[i].End > v })
	if i < len(db.blocks) && db.blocks[i].Start <= v {
		return db.blocks[i].Country
	}
	return ""
}

// Blocks returns the blocks assigned to a country (nil if unknown).
func (db *DB) Blocks(country string) []Block { return db.byCountry[country] }

// NumBlocks returns the total number of blocks in the database.
func (db *DB) NumBlocks() int { return len(db.blocks) }

// RandomIP draws an address uniformly from the country's blocks using
// the provided generator. It panics if the country has no blocks; every
// ISO code in Countries() has at least one.
func (db *DB) RandomIP(r *rand.Rand, country string) netip.Addr {
	blocks := db.byCountry[country]
	if len(blocks) == 0 {
		panic("geo: no blocks for country " + country)
	}
	b := blocks[r.IntN(len(blocks))]
	v := b.Start + uint32(r.Uint64N(uint64(b.End-b.Start)))
	var raw [4]byte
	binary.BigEndian.PutUint32(raw[:], v)
	return netip.AddrFrom4(raw)
}

// ClientWeight returns the relative share of Tor clients originating in
// each country, calibrated so the paper's Figure 4 leaders (US, RU, DE)
// dominate. Countries beyond the head carry a thin uniform tail so that
// clients appear from ~200 countries in a day (§5.2).
func ClientWeight(country string) float64 {
	if w, ok := clientWeights[country]; ok {
		return w
	}
	return 0.02
}

// clientWeights is the head of the client-origin distribution, in
// percent-like units (only ratios matter).
var clientWeights = map[string]float64{
	"US": 16.0, "RU": 13.0, "DE": 11.5, "UA": 5.0, "FR": 4.8,
	"GB": 4.0, "CA": 2.8, "NL": 2.6, "PL": 2.4, "ES": 2.2,
	"AE": 2.0, // few connections, but see the circuit anomaly in workload
	"BR": 1.9, "MX": 1.4, "AR": 1.2, "SE": 1.2, "IT": 1.8,
	"JP": 1.5, "IN": 1.6, "IR": 1.3, "CN": 0.9,
	"VE": 1.0, "NZ": 0.6, "SC": 0.3, "SK": 0.5, "CZ": 0.8,
	"AT": 0.8, "CH": 0.9, "AU": 1.1, "FI": 0.5, "NO": 0.5,
	"DK": 0.5, "BE": 0.7, "PT": 0.5, "RO": 0.7, "GR": 0.5,
	"HU": 0.5, "TR": 0.8, "IL": 0.5, "KR": 0.6, "TW": 0.4,
	"HK": 0.4, "SG": 0.4, "ID": 0.5, "TH": 0.4, "VN": 0.4,
	"ZA": 0.4, "EG": 0.3, "NG": 0.2, "KE": 0.15, "MA": 0.15,
}
