package geo

import (
	"net/netip"
	"testing"

	"repro/internal/simtime"
)

var testDB = Build(1)

func TestCountriesComplete(t *testing.T) {
	cs := Countries()
	if len(cs) != NumCountries {
		t.Fatalf("countries: %d want %d", len(cs), NumCountries)
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate country %q", c)
		}
		seen[c] = true
	}
	for _, want := range []string{"US", "RU", "DE", "AE", "UA", "BV", "SS"} {
		if !seen[want] {
			t.Fatalf("missing paper country %q", want)
		}
	}
}

func TestEveryCountryHasBlocks(t *testing.T) {
	for _, c := range Countries() {
		if len(testDB.Blocks(c)) == 0 {
			t.Fatalf("country %q has no blocks", c)
		}
	}
}

func TestBlocksNonOverlappingAndResolvable(t *testing.T) {
	// Every block start and interior address must resolve to its own
	// country.
	for _, c := range Countries()[:40] {
		for _, b := range testDB.Blocks(c) {
			for _, v := range []uint32{b.Start, b.Start + 1234, b.End - 1} {
				ip := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
				if got := testDB.Country(ip); got != c {
					t.Fatalf("ip %v in %q block resolved to %q", ip, c, got)
				}
			}
		}
	}
}

func TestCountryUnknownAddresses(t *testing.T) {
	if got := testDB.Country(netip.MustParseAddr("0.0.0.1")); got != "" {
		t.Fatalf("address before all blocks: %q", got)
	}
	if got := testDB.Country(netip.MustParseAddr("255.255.255.254")); got != "" {
		t.Fatalf("address after all blocks: %q", got)
	}
	if got := testDB.Country(netip.MustParseAddr("2001:db8::1")); got != "" {
		t.Fatalf("IPv6: %q", got)
	}
}

func TestCountryMappedV4(t *testing.T) {
	b := testDB.Blocks("US")[0]
	v4 := netip.AddrFrom4([4]byte{byte(b.Start >> 24), byte(b.Start >> 16), 0, 1})
	mapped := netip.AddrFrom16(v4.As16())
	if got := testDB.Country(mapped); got != "US" {
		t.Fatalf("4-in-6 mapped lookup: %q", got)
	}
}

func TestRandomIPRoundTrips(t *testing.T) {
	r := simtime.Rand(3, "geo-test")
	for _, c := range []string{"US", "RU", "DE", "AE", "ZZ"} {
		for i := 0; i < 200; i++ {
			ip := testDB.RandomIP(r, c)
			if got := testDB.Country(ip); got != c {
				t.Fatalf("RandomIP(%q) = %v resolved to %q", c, ip, got)
			}
		}
	}
}

func TestRandomIPPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown country must panic")
		}
	}()
	testDB.RandomIP(simtime.Rand(1, "x"), "NOPE")
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(7), Build(7)
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatal("block counts differ")
	}
	for _, c := range []string{"US", "BV"} {
		ba, bb := a.Blocks(c), b.Blocks(c)
		if len(ba) != len(bb) {
			t.Fatalf("country %q block count differs", c)
		}
		for i := range ba {
			if ba[i] != bb[i] {
				t.Fatalf("country %q block %d differs", c, i)
			}
		}
	}
}

func TestClientWeights(t *testing.T) {
	// The paper's top-3 ordering must hold.
	if !(ClientWeight("US") > ClientWeight("RU") && ClientWeight("RU") > ClientWeight("DE")) {
		t.Fatal("client weights must rank US > RU > DE")
	}
	if ClientWeight("DE") <= ClientWeight("BV") {
		t.Fatal("major countries must outweigh the tail")
	}
	if ClientWeight("XX-UNKNOWN") <= 0 {
		t.Fatal("tail weight must be positive so ~200 countries appear")
	}
}

func TestBigCountriesGetMoreSpace(t *testing.T) {
	if len(testDB.Blocks("US")) <= len(testDB.Blocks("BV")) {
		t.Fatal("US must hold more address space than Bouvet Island")
	}
}

func BenchmarkCountryLookup(b *testing.B) {
	r := simtime.Rand(9, "geo-bench")
	ips := make([]netip.Addr, 1024)
	for i := range ips {
		ips[i] = testDB.RandomIP(r, "US")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testDB.Country(ips[i%len(ips)])
	}
}
