package tornet

import (
	"math"
	"testing"

	"repro/internal/asn"
	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/simtime"
)

func testConsensus(t *testing.T) *Consensus {
	t.Helper()
	c, err := NewConsensus(DefaultConsensusConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConsensusDeployment(t *testing.T) {
	c := testConsensus(t)
	if got := len(c.MeasuringExits()); got != 6 {
		t.Fatalf("measuring exits: %d want 6", got)
	}
	if got := len(c.MeasuringGuards()); got != 10 {
		t.Fatalf("measuring guards: %d want 10", got)
	}
	if got := len(c.MeasuringRelays()); got != 16 {
		t.Fatalf("measuring relays: %d want 16 (the paper's deployment)", got)
	}
	if len(c.Relays) != 6500 {
		t.Fatalf("relays: %d", len(c.Relays))
	}
	if c.NumHSDirs() < 100 {
		t.Fatalf("HSDir ring too small: %d", c.NumHSDirs())
	}
	// Every measuring exit has the exit flag; every measuring guard has
	// guard and HSDir flags.
	for _, id := range c.MeasuringExits() {
		if !c.Relays[id].Has(FlagExit) {
			t.Fatal("measuring exit without exit flag")
		}
	}
	for _, id := range c.MeasuringGuards() {
		if !c.Relays[id].Has(FlagGuard) || !c.Relays[id].Has(FlagHSDir) {
			t.Fatal("measuring guard missing flags")
		}
	}
}

func TestConsensusConfigValidation(t *testing.T) {
	bad := DefaultConsensusConfig()
	bad.Fractions.Exit = 1.5
	if _, err := NewConsensus(bad); err == nil {
		t.Fatal("invalid fraction must fail")
	}
	bad2 := DefaultConsensusConfig()
	bad2.MeasuringExits = 0
	if _, err := NewConsensus(bad2); err == nil {
		t.Fatal("no measuring exits must fail")
	}
	bad3 := DefaultConsensusConfig()
	bad3.TotalRelays = 10
	if _, err := NewConsensus(bad3); err == nil {
		t.Fatal("tiny network must fail")
	}
}

func TestExitObservedMatchesFraction(t *testing.T) {
	c := testConsensus(t)
	r := simtime.Rand(1, "exit-frac")
	const draws = 400000
	hits := 0
	for i := 0; i < draws; i++ {
		if _, ok := c.ExitObserved(r); ok {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.015) > 0.001 {
		t.Fatalf("exit observation rate %v, want 0.015", got)
	}
}

func TestRendObservedMatchesFraction(t *testing.T) {
	c := testConsensus(t)
	r := simtime.Rand(2, "rend-frac")
	const draws = 400000
	hits := 0
	for i := 0; i < draws; i++ {
		if _, ok := c.RendObserved(r); ok {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.0088) > 0.0008 {
		t.Fatalf("rend observation rate %v, want 0.0088", got)
	}
}

func TestPickGuardFraction(t *testing.T) {
	c := testConsensus(t)
	r := simtime.Rand(3, "guard-frac")
	const draws = 400000
	measuring := 0
	for i := 0; i < draws; i++ {
		if c.PickGuard(r).Measuring {
			measuring++
		}
	}
	got := float64(measuring) / draws
	if math.Abs(got-0.0119) > 0.0008 {
		t.Fatalf("guard observation rate %v, want 0.0119", got)
	}
}

func testNetwork(t *testing.T) *Network {
	t.Helper()
	g := geo.Build(1)
	return NewNetwork(testConsensus(t), g, asn.Build(g, 1))
}

func TestNewClientGuards(t *testing.T) {
	n := testNetwork(t)
	r := simtime.Rand(4, "clients")
	for i := 0; i < 200; i++ {
		c := n.NewClient(r, "US")
		if c.Country != "US" || !c.IP.IsValid() {
			t.Fatal("client identity")
		}
		if c.ASN == 0 {
			t.Fatal("client must resolve to an AS")
		}
		// Three distinct directory guards, first is the data guard.
		seen := map[int]bool{}
		for _, g := range c.DirGuards {
			if seen[g.Key] {
				t.Fatal("duplicate guard")
			}
			seen[g.Key] = true
		}
		if c.DataGuard.Key != c.DirGuards[0].Key {
			t.Fatal("data guard must be the first directory guard")
		}
	}
}

func TestObservedGuardsSelective(t *testing.T) {
	n := testNetwork(t)
	r := simtime.Rand(5, "obs")
	sawData, sawDirOnly := false, false
	for i := 0; i < 30000 && !(sawData && sawDirOnly); i++ {
		c := n.NewClient(r, "DE")
		for _, o := range n.ObservedGuards(c) {
			if o.Data {
				sawData = true
			} else if o.Directory {
				sawDirOnly = true
			}
		}
	}
	if !sawData || !sawDirOnly {
		t.Fatalf("guard observation roles: data=%v dirOnly=%v", sawData, sawDirOnly)
	}
}

func TestObservedGuardsPromiscuous(t *testing.T) {
	n := testNetwork(t)
	r := simtime.Rand(6, "prom")
	c := n.NewClient(r, "FR")
	c.Promiscuous = true
	obs := n.ObservedGuards(c)
	if len(obs) != len(n.Consensus.MeasuringGuards()) {
		t.Fatalf("promiscuous client observed at %d guards, want all %d",
			len(obs), len(n.Consensus.MeasuringGuards()))
	}
}

func TestEmitHelpersPublishTypedEvents(t *testing.T) {
	n := testNetwork(t)
	r := simtime.Rand(7, "emit")
	c := n.NewClient(r, "RU")
	var got []event.Event
	n.Bus.Subscribe(func(e event.Event) { got = append(got, e) })

	guard := n.Consensus.MeasuringGuards()[0]
	exit := n.Consensus.MeasuringExits()[0]
	n.EmitConnection(simtime.Hour, guard, c, 3, 100, 200)
	n.EmitCircuit(2*simtime.Hour, guard, c, event.CircuitDirectory, 1, 10, 20)
	circ := n.EmitStream(3*simtime.Hour, exit, 0, true, event.TargetHostname, 443, "example.com", 1, 2)
	n.EmitStream(3*simtime.Hour, exit, circ, false, event.TargetHostname, 443, "", 1, 2)

	if len(got) != 4 {
		t.Fatalf("events: %d", len(got))
	}
	conn := got[0].(*event.ConnectionEnd)
	if conn.Country != "RU" || conn.NumCircuits != 3 {
		t.Fatalf("connection event: %+v", conn)
	}
	circEv := got[1].(*event.CircuitEnd)
	if circEv.Kind != event.CircuitDirectory {
		t.Fatalf("circuit event: %+v", circEv)
	}
	s1 := got[2].(*event.StreamEnd)
	s2 := got[3].(*event.StreamEnd)
	if !s1.IsInitial || s2.IsInitial {
		t.Fatal("initial flags")
	}
	if s1.CircuitID != s2.CircuitID {
		t.Fatal("subsequent stream must share the circuit")
	}
	if s1.CircuitID == 0 {
		t.Fatal("circuit IDs start at 1")
	}
}

func TestCircuitIDsUnique(t *testing.T) {
	n := testNetwork(t)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := n.NextCircuitID()
		if seen[id] {
			t.Fatal("duplicate circuit ID")
		}
		seen[id] = true
	}
}

func TestStudyFractionsValid(t *testing.T) {
	if err := StudyFractions().Validate(); err != nil {
		t.Fatal(err)
	}
}
