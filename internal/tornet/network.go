package tornet

import (
	"math/rand/v2"
	"net/netip"

	"repro/internal/asn"
	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/simtime"
)

// Network bundles the simulation state the workload drivers need: the
// virtual clock, the event bus feeding the data collectors, the
// consensus, and the IP/country/AS databases.
type Network struct {
	Sched     *simtime.Scheduler
	Bus       *event.Bus
	Consensus *Consensus
	Geo       *geo.DB
	ASN       *asn.DB

	nextCircuitID uint64
}

// NewNetwork assembles a simulation network.
func NewNetwork(c *Consensus, g *geo.DB, a *asn.DB) *Network {
	return &Network{
		Sched:     simtime.NewScheduler(),
		Bus:       event.NewBus(),
		Consensus: c,
		Geo:       g,
		ASN:       a,
	}
}

// NextCircuitID allocates a network-unique circuit identifier.
func (n *Network) NextCircuitID() uint64 {
	n.nextCircuitID++
	return n.nextCircuitID
}

// Client is one Tor client IP. Clients keep one primary guard for data
// circuits and three directory guards (§5.1: "clients currently use one
// guard for data but two additional guards for directory updates").
type Client struct {
	IP      netip.Addr
	Country string
	ASN     uint32
	// DataGuard carries all data circuits; DirGuards the directory
	// circuits. DirGuards[0] == DataGuard, as in Tor.
	DataGuard GuardRef
	DirGuards [3]GuardRef
	// Promiscuous clients (bridges, tor2web instances, large NATs)
	// appear at every guard (§5.1's refined model).
	Promiscuous bool
	// Blocked clients can build directory circuits but not data
	// circuits — the paper's hypothesis for the UAE anomaly (§5.2).
	Blocked bool
}

// NewClient creates a client originating in the given country, with
// guards sampled from the consensus.
func (n *Network) NewClient(r *rand.Rand, country string) *Client {
	ip := n.Geo.RandomIP(r, country)
	c := &Client{
		IP:      ip,
		Country: country,
		ASN:     n.ASN.Lookup(ip),
	}
	// Three distinct directory guards; the first doubles as the data
	// guard.
	seen := map[int]bool{}
	for i := 0; i < len(c.DirGuards); {
		g := n.Consensus.PickGuard(r)
		if seen[g.Key] {
			continue
		}
		seen[g.Key] = true
		c.DirGuards[i] = g
		i++
	}
	c.DataGuard = c.DirGuards[0]
	return c
}

// ObservedGuards returns the measuring relays among the client's guards
// (all measuring guards for a promiscuous client) along with whether
// each carries the client's data circuits.
func (n *Network) ObservedGuards(c *Client) []GuardObservation {
	var out []GuardObservation
	if c.Promiscuous {
		for _, id := range n.Consensus.MeasuringGuards() {
			out = append(out, GuardObservation{Relay: id, Data: true, Directory: true})
		}
		return out
	}
	for i, g := range c.DirGuards {
		if !g.Measuring {
			continue
		}
		out = append(out, GuardObservation{
			Relay:     g.Relay,
			Data:      i == 0,
			Directory: true,
		})
	}
	return out
}

// GuardObservation says one measuring relay serves this client, and in
// which capacities.
type GuardObservation struct {
	Relay     event.RelayID
	Data      bool // primary data guard
	Directory bool // one of the directory guards
}

// EmitConnection publishes a guard-side connection-end event.
func (n *Network) EmitConnection(at simtime.Time, relay event.RelayID, c *Client, circuits uint32, sent, recv uint64) {
	n.Bus.Publish(&event.ConnectionEnd{
		Header:      event.Header{At: at, Relay: relay},
		ClientIP:    c.IP,
		Country:     c.Country,
		ASN:         c.ASN,
		NumCircuits: circuits,
		BytesSent:   sent,
		BytesRecv:   recv,
	})
}

// EmitCircuit publishes a guard-side circuit-end event.
func (n *Network) EmitCircuit(at simtime.Time, relay event.RelayID, c *Client, kind event.CircuitKind, streams uint32, sent, recv uint64) {
	n.Bus.Publish(&event.CircuitEnd{
		Header:     event.Header{At: at, Relay: relay},
		CircuitID:  n.NextCircuitID(),
		Kind:       kind,
		ClientIP:   c.IP,
		Country:    c.Country,
		ASN:        c.ASN,
		NumStreams: streams,
		BytesSent:  sent,
		BytesRecv:  recv,
	})
}

// EmitStream publishes an exit-side stream-end event and returns the
// circuit ID used (callers pass 0 to allocate a fresh circuit).
func (n *Network) EmitStream(at simtime.Time, relay event.RelayID, circuitID uint64,
	initial bool, target event.TargetKind, port uint16, hostname string, sent, recv uint64) uint64 {
	if circuitID == 0 {
		circuitID = n.NextCircuitID()
	}
	n.Bus.Publish(&event.StreamEnd{
		Header:    event.Header{At: at, Relay: relay},
		CircuitID: circuitID,
		IsInitial: initial,
		Target:    target,
		Port:      port,
		Hostname:  hostname,
		BytesSent: sent,
		BytesRecv: recv,
	})
	return circuitID
}
