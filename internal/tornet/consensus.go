// Package tornet simulates the Tor network as seen by a small set of
// instrumented measurement relays. It does not simulate every packet of
// a 6,500-relay network; it reproduces, exactly in distribution, the
// event streams the paper's 16 relays observed: which clients pick a
// measuring relay as a guard, which circuits exit through a measuring
// exit, what streams those circuits carry, and how much data flows.
//
// The consensus model plants the measurement relays with the observed
// weight fractions the paper reports for each experiment (e.g. 1.5% of
// exit weight for the Figure 1 stream measurements), so the statistical
// inference pipeline divides by the same fractions the paper does.
package tornet

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/event"
	"repro/internal/simtime"
)

// Flag is a relay capability flag from the consensus.
type Flag uint8

// Relay flags.
const (
	FlagGuard Flag = 1 << iota
	FlagExit
	FlagHSDir
)

// Relay is one consensus entry.
type Relay struct {
	ID        event.RelayID
	Nickname  string
	Flags     Flag
	Weight    float64 // consensus bandwidth weight
	Measuring bool    // one of our instrumented relays
}

// Has reports whether the relay carries the flag.
func (r Relay) Has(f Flag) bool { return r.Flags&f != 0 }

// Fractions configures the combined weight fractions of the measuring
// relays, per position. These are the paper's per-experiment observed
// fractions (§4–§6).
type Fractions struct {
	// Exit is the measuring relays' share of exit weight (e.g. 0.015
	// for the Figure 1 measurement).
	Exit float64
	// Guard is the share of guard weight (0.0119 for Table 5).
	Guard float64
	// HSDirFrac is the share of HSDir slots, which drives both the
	// publish and fetch observation probabilities (0.00534 reproduces
	// the paper's 2.75% publish / 0.534% fetch weights).
	HSDirFrac float64
	// Rend is the share of middle/rendezvous weight (0.0088, §6.3).
	Rend float64
}

// Validate checks all fractions are probabilities.
func (f Fractions) Validate() error {
	for _, v := range []float64{f.Exit, f.Guard, f.HSDirFrac, f.Rend} {
		if v < 0 || v >= 1 {
			return fmt.Errorf("tornet: weight fraction %v outside [0,1)", v)
		}
	}
	return nil
}

// StudyFractions returns fractions matching the paper's deployment at
// its most common configuration.
func StudyFractions() Fractions {
	return Fractions{Exit: 0.015, Guard: 0.0119, HSDirFrac: 0.00534, Rend: 0.0088}
}

// Consensus is the synthetic network directory.
type Consensus struct {
	Relays []Relay

	fractions Fractions

	measuringExits  []event.RelayID
	measuringGuards []event.RelayID
	measuringHSDirs []event.RelayID
	measuringRend   []event.RelayID

	exitPick  *simtime.WeightedChoice // over measuringExits
	guardPick *simtime.WeightedChoice // over measuringGuards
	rendPick  *simtime.WeightedChoice // over measuringRend

	numHSDirs int
}

// ConsensusConfig sizes the synthetic network.
type ConsensusConfig struct {
	// TotalRelays approximates the live network size (~6,500 in 2018).
	TotalRelays int
	// MeasuringExits and MeasuringNonExits reproduce the deployment: 6
	// exit relays and 10 non-exit (guard/HSDir) relays.
	MeasuringExits    int
	MeasuringNonExits int
	Fractions         Fractions
	Seed              uint64
}

// DefaultConsensusConfig mirrors the paper's deployment.
func DefaultConsensusConfig() ConsensusConfig {
	return ConsensusConfig{
		TotalRelays:       6500,
		MeasuringExits:    6,
		MeasuringNonExits: 10,
		Fractions:         StudyFractions(),
		Seed:              2018,
	}
}

// NewConsensus builds the directory. Measuring relays receive weights
// that realize the configured fractions exactly in expectation; the
// remaining weight spreads over background relays with a heavy-tailed
// profile.
func NewConsensus(cfg ConsensusConfig) (*Consensus, error) {
	if err := cfg.Fractions.Validate(); err != nil {
		return nil, err
	}
	if cfg.MeasuringExits <= 0 || cfg.MeasuringNonExits <= 0 {
		return nil, fmt.Errorf("tornet: need measuring exits and non-exits")
	}
	if cfg.TotalRelays < cfg.MeasuringExits+cfg.MeasuringNonExits+10 {
		return nil, fmt.Errorf("tornet: network too small")
	}
	r := simtime.Rand(cfg.Seed, "consensus")
	c := &Consensus{fractions: cfg.Fractions}

	id := event.RelayID(0)
	addRelay := func(nick string, flags Flag, weight float64, measuring bool) Relay {
		rel := Relay{ID: id, Nickname: nick, Flags: flags, Weight: weight, Measuring: measuring}
		c.Relays = append(c.Relays, rel)
		id++
		return rel
	}

	// Measuring relays. Individual weights vary around the mean so the
	// per-relay selection distribution is not degenerate.
	for i := 0; i < cfg.MeasuringExits; i++ {
		w := 0.8 + 0.4*r.Float64()
		rel := addRelay(fmt.Sprintf("measure-exit-%d", i), FlagExit, w, true)
		c.measuringExits = append(c.measuringExits, rel.ID)
		c.measuringRend = append(c.measuringRend, rel.ID)
	}
	for i := 0; i < cfg.MeasuringNonExits; i++ {
		w := 0.8 + 0.4*r.Float64()
		rel := addRelay(fmt.Sprintf("measure-relay-%d", i), FlagGuard|FlagHSDir, w, true)
		c.measuringGuards = append(c.measuringGuards, rel.ID)
		c.measuringHSDirs = append(c.measuringHSDirs, rel.ID)
		c.measuringRend = append(c.measuringRend, rel.ID)
	}

	// Background relays: heavy-tailed weights, mixed flags.
	background := cfg.TotalRelays - cfg.MeasuringExits - cfg.MeasuringNonExits
	for i := 0; i < background; i++ {
		w := simtime.LogNormal(r, 0, 1.2)
		var flags Flag
		switch {
		case i%5 == 0:
			flags = FlagExit
		case i%2 == 0:
			flags = FlagGuard | FlagHSDir
		default:
			flags = FlagGuard
		}
		addRelay(fmt.Sprintf("relay-%d", i), flags, w, false)
	}

	// The HSDir ring size drives the observation fractions for
	// descriptor events; count HSDir-flagged relays and record it.
	for _, rel := range c.Relays {
		if rel.Has(FlagHSDir) {
			c.numHSDirs++
		}
	}

	// Per-measuring-relay selection distributions.
	c.exitPick = pickerFor(c.Relays, c.measuringExits)
	c.guardPick = pickerFor(c.Relays, c.measuringGuards)
	c.rendPick = pickerFor(c.Relays, c.measuringRend)
	return c, nil
}

func pickerFor(relays []Relay, ids []event.RelayID) *simtime.WeightedChoice {
	w := make([]float64, len(ids))
	for i, id := range ids {
		w[i] = relays[id].Weight
	}
	return simtime.NewWeightedChoice(w)
}

// Fractions returns the configured observation fractions.
func (c *Consensus) Fractions() Fractions { return c.fractions }

// MeasuringExits returns the instrumented exit relay IDs.
func (c *Consensus) MeasuringExits() []event.RelayID { return c.measuringExits }

// MeasuringGuards returns the instrumented guard relay IDs.
func (c *Consensus) MeasuringGuards() []event.RelayID { return c.measuringGuards }

// MeasuringHSDirs returns the instrumented HSDir relay IDs.
func (c *Consensus) MeasuringHSDirs() []event.RelayID { return c.measuringHSDirs }

// MeasuringRelays returns all instrumented relay IDs.
func (c *Consensus) MeasuringRelays() []event.RelayID {
	var out []event.RelayID
	for _, rel := range c.Relays {
		if rel.Measuring {
			out = append(out, rel.ID)
		}
	}
	return out
}

// NumHSDirs returns the HSDir ring size.
func (c *Consensus) NumHSDirs() int { return c.numHSDirs }

// ExitObserved samples whether a circuit's exit is one of the measuring
// exits, returning the relay when it is. Marginally this equals
// weighted exit selection over the full consensus.
func (c *Consensus) ExitObserved(r *rand.Rand) (event.RelayID, bool) {
	if r.Float64() >= c.fractions.Exit {
		return 0, false
	}
	return c.measuringExits[c.exitPick.Pick(r)], true
}

// PickMeasuringExit samples one of the measuring exits in proportion to
// its weight, for use on streams already known to be observed.
func (c *Consensus) PickMeasuringExit(r *rand.Rand) event.RelayID {
	return c.measuringExits[c.exitPick.Pick(r)]
}

// RendObserved samples whether a rendezvous point lands on a measuring
// relay.
func (c *Consensus) RendObserved(r *rand.Rand) (event.RelayID, bool) {
	if r.Float64() >= c.fractions.Rend {
		return 0, false
	}
	return c.measuringRend[c.rendPick.Pick(r)], true
}

// PickGuard samples one guard: a measuring guard with probability equal
// to the guard fraction (weighted among them), otherwise a background
// pseudo-guard identified by a negative index. The int result is usable
// as a map key for distinctness; measuring guards additionally return
// their relay ID.
func (c *Consensus) PickGuard(r *rand.Rand) GuardRef {
	if r.Float64() < c.fractions.Guard {
		id := c.measuringGuards[c.guardPick.Pick(r)]
		return GuardRef{Key: int(id), Relay: id, Measuring: true}
	}
	// ~2000 background guards; identity matters only for distinctness.
	return GuardRef{Key: -1 - int(r.Uint64()%2000)}
}

// GuardRef identifies a selected guard.
type GuardRef struct {
	Key       int
	Relay     event.RelayID
	Measuring bool
}
