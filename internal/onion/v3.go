package onion

import (
	"crypto/sha256"
	"encoding/base32"
	"encoding/binary"
	"fmt"
)

// Version-3 onion services. The paper measures only v2 addresses
// because "the onion address is obscured using key blinding" in v3
// (§6.1): an HSDir stores descriptors under a *blinded* public key that
// rotates each time period and cannot be linked back to the onion
// address without already knowing it. This file models exactly that
// property so the simulator can carry v3 traffic that is — provably, in
// tests — unmeasurable by address.

// V3AddressLen is the length of a v3 onion address (56 base32 chars).
const V3AddressLen = 56

// V3Address derives a deterministic synthetic v3 onion address: 35
// bytes (32-byte key, 2-byte checksum, version) base32-encoded, as in
// rend-spec-v3.
func V3Address(namespace string, index int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("onion-v3/%s/%d", namespace, index)))
	payload := make([]byte, 35)
	copy(payload, h[:32])
	ck := sha256.Sum256(append([]byte(".onion checksum"), h[:32]...))
	payload[32], payload[33] = ck[0], ck[1]
	payload[34] = 3
	return base32Lower.EncodeToString(payload)
}

// BlindedID computes the credential an HSDir indexes a v3 descriptor
// by: a one-way function of the service identity key and the time
// period. The HSDir (and any observer of its uploads) sees only this
// value; without the onion address it reveals nothing, and it changes
// every period, so even equality across periods is hidden.
func BlindedID(v3addr string, period int) uint64 {
	h := sha256.New()
	fmt.Fprintf(h, "v3-blind/%s/%d", v3addr, period)
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// BlindedToken renders the blinded ID the way an instrumented HSDir
// would report it: an opaque base32 token carrying no address.
func BlindedToken(v3addr string, period int) string {
	var raw [8]byte
	binary.BigEndian.PutUint64(raw[:], BlindedID(v3addr, period))
	return base32.StdEncoding.WithPadding(base32.NoPadding).EncodeToString(raw[:])
}

// IsV2Address reports whether an address string has v2 shape (16
// base32 chars) — the filter the measurement instrumentation applies
// before counting unique addresses.
func IsV2Address(addr string) bool {
	if len(addr) != 16 {
		return false
	}
	for _, c := range addr {
		if !((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7')) {
			return false
		}
	}
	return true
}
