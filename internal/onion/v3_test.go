package onion

import (
	"strings"
	"testing"
)

func TestV3AddressShape(t *testing.T) {
	a := V3Address("svc", 1)
	if len(a) != V3AddressLen {
		t.Fatalf("v3 address length %d, want %d", len(a), V3AddressLen)
	}
	if a != V3Address("svc", 1) {
		t.Fatal("v3 addresses must be deterministic")
	}
	if a == V3Address("svc", 2) {
		t.Fatal("distinct indices must give distinct addresses")
	}
	if IsV2Address(a) {
		t.Fatal("a v3 address must not pass the v2 filter")
	}
}

func TestIsV2Address(t *testing.T) {
	if !IsV2Address(Address("live", 1)) {
		t.Fatal("generated v2 addresses must pass the filter")
	}
	for _, bad := range []string{"", "short", strings.Repeat("a", 17), "ABCDEFGHIJKLMNOP", "abcdefgh1jklmnop"} {
		if IsV2Address(bad) {
			t.Fatalf("%q must fail the v2 filter", bad)
		}
	}
}

// TestBlindingHidesAddress captures the property that makes v3
// unmeasurable (§6.1): blinded IDs rotate every period and carry no
// linkable address structure — two services' tokens are
// indistinguishable in form, and one service's tokens differ across
// periods.
func TestBlindingHidesAddress(t *testing.T) {
	a1 := V3Address("svc", 1)
	a2 := V3Address("svc", 2)

	if BlindedID(a1, 1) == BlindedID(a1, 2) {
		t.Fatal("blinded ID must rotate with the period")
	}
	if BlindedID(a1, 1) == BlindedID(a2, 1) {
		t.Fatal("distinct services must blind to distinct IDs")
	}
	// The token exposes no part of the address.
	tok := BlindedToken(a1, 1)
	if strings.Contains(a1, tok) || strings.Contains(tok, a1[:8]) {
		t.Fatal("token leaks address material")
	}
	// Same service, consecutive periods: tokens unlinkable by equality.
	if BlindedToken(a1, 1) == BlindedToken(a1, 2) {
		t.Fatal("tokens must differ across periods")
	}
}

// TestV2UniqueCountingExcludesV3: a PSC item extractor using the v2
// filter never observes a v3 blinded token as an address — the reason
// Table 6 counts only v2.
func TestV2UniqueCountingExcludesV3(t *testing.T) {
	for i := 0; i < 100; i++ {
		tok := BlindedToken(V3Address("x", i), i%3)
		if IsV2Address(tok) {
			// 16-char tokens could collide in shape; ours are 13 chars.
			t.Fatalf("blinded token %q passes the v2 filter", tok)
		}
	}
}
