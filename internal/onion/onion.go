// Package onion implements the onion-service mechanics the paper
// measures in §6: v2 onion addresses, descriptor identifiers, the HSDir
// distributed hash table with its replica structure (two replicas, each
// stored on three consecutive ring positions — six HSDirs per
// descriptor), descriptor publish/fetch behavior, an ahmia-style public
// index, and rendezvous-circuit outcome modeling.
package onion

import (
	"crypto/sha256"
	"encoding/base32"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/tornet"
)

// V2 descriptor replication parameters (rend-spec-v2): each descriptor
// is computed for two replicas, and each replica is stored on the three
// HSDirs following its descriptor ID on the ring.
const (
	Replicas = 2
	Spread   = 3
	// StoredOn is the total HSDirs holding one service's descriptor.
	StoredOn = Replicas * Spread
)

// base32Lower matches Tor's onion-address alphabet.
var base32Lower = base32.NewEncoding("abcdefghijklmnopqrstuvwxyz234567").WithPadding(base32.NoPadding)

// Address derives a deterministic synthetic v2 onion address (16
// base32 characters, as derived from the service key hash in Tor) from
// a namespace and index.
func Address(namespace string, index int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("onion/%s/%d", namespace, index)))
	return base32Lower.EncodeToString(h[:10]) // 10 bytes -> 16 chars
}

// DescriptorID computes the ring position of a service's descriptor
// for a replica on a given day. Real Tor derives it from the service
// permanent ID, the time period, and the replica index; the rotation
// with the day is what matters for observation dynamics.
func DescriptorID(addr string, replica int, day int) uint64 {
	h := sha256.New()
	fmt.Fprintf(h, "desc-id/%s/%d/%d", addr, replica, day)
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// Ring is the HSDir hash ring built from the consensus.
type Ring struct {
	positions []uint64        // sorted ring positions
	relays    []event.RelayID // relay at positions[i]
	measuring map[event.RelayID]bool
}

// NewRing places every HSDir-flagged relay on the ring at a position
// derived from its identity.
func NewRing(c *tornet.Consensus) *Ring {
	r := &Ring{measuring: make(map[event.RelayID]bool)}
	type entry struct {
		pos uint64
		id  event.RelayID
	}
	var entries []entry
	for _, rel := range c.Relays {
		if !rel.Has(tornet.FlagHSDir) {
			continue
		}
		h := sha256.Sum256([]byte(fmt.Sprintf("hsdir-pos/%d/%s", rel.ID, rel.Nickname)))
		entries = append(entries, entry{pos: binary.BigEndian.Uint64(h[:8]), id: rel.ID})
		if rel.Measuring {
			r.measuring[rel.ID] = true
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pos < entries[j].pos })
	for _, e := range entries {
		r.positions = append(r.positions, e.pos)
		r.relays = append(r.relays, e.id)
	}
	return r
}

// Size returns the number of HSDirs on the ring.
func (r *Ring) Size() int { return len(r.relays) }

// NumMeasuring returns how many measuring HSDirs are on the ring.
func (r *Ring) NumMeasuring() int { return len(r.measuring) }

// IsMeasuring reports whether the relay is instrumented.
func (r *Ring) IsMeasuring(id event.RelayID) bool { return r.measuring[id] }

// Responsible returns the HSDirs responsible for one replica of a
// descriptor: the Spread relays at or after the descriptor ID,
// clockwise with wraparound.
func (r *Ring) Responsible(descID uint64) []event.RelayID {
	n := len(r.relays)
	if n == 0 {
		return nil
	}
	start := sort.Search(n, func(i int) bool { return r.positions[i] >= descID }) % n
	out := make([]event.RelayID, 0, Spread)
	for i := 0; i < Spread && i < n; i++ {
		out = append(out, r.relays[(start+i)%n])
	}
	return out
}

// AllResponsible returns the full responsible set for a service on a
// day: StoredOn relays across both replicas (duplicates possible on a
// tiny ring; preserved, as Tor stores per slot).
func (r *Ring) AllResponsible(addr string, day int) []event.RelayID {
	out := make([]event.RelayID, 0, StoredOn)
	for rep := 0; rep < Replicas; rep++ {
		out = append(out, r.Responsible(DescriptorID(addr, rep, day))...)
	}
	return out
}

// MeasuringResponsible filters the responsible set to instrumented
// relays.
func (r *Ring) MeasuringResponsible(addr string, day int) []event.RelayID {
	var out []event.RelayID
	for _, id := range r.AllResponsible(addr, day) {
		if r.measuring[id] {
			out = append(out, id)
		}
	}
	return out
}
