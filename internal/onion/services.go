package onion

import (
	"math/rand/v2"

	"repro/internal/event"
	"repro/internal/simtime"
	"repro/internal/tornet"
)

// Service is one live v2 onion service.
type Service struct {
	Addr string
	// Public means the address appears in the ahmia-style index; the
	// paper finds 56.8% of successful descriptor fetches target indexed
	// services (§6.2).
	Public bool
	// Rank orders services by fetch popularity (Zipf).
	Rank int
}

// Population models the live onion-service world plus the dead-address
// pool that botnets and stale scanners keep querying: the paper's
// explanation for the 90.9% descriptor-fetch failure rate (§6.2).
type Population struct {
	Services []Service
	// DeadAddresses is the size of the pool of addresses that no longer
	// (or never did) have descriptors.
	DeadAddresses int

	ring     *Ring
	popZipf  *simtime.Zipf
	deadZipf *simtime.Zipf
	index    *PublicIndex
}

// PopulationConfig sizes the onion world.
type PopulationConfig struct {
	// LiveServices is the number of published v2 services (Table 6:
	// ~70,826 network-wide, scaled).
	LiveServices int
	// DeadAddresses is the stale-address pool size.
	DeadAddresses int
	// PublicShare is the fraction of *fetch volume* that targets
	// indexed services; popular services are more likely indexed.
	PublicShare float64
	// FetchZipf is the popularity exponent for successful fetches.
	FetchZipf float64
	Seed      uint64
}

// DefaultPopulationConfig returns paper-scale values before scaling.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{
		LiveServices:  70826,
		DeadAddresses: 400000,
		PublicShare:   0.568,
		FetchZipf:     0.7,
		Seed:          2018,
	}
}

// NewPopulation builds the service world on the given ring.
func NewPopulation(cfg PopulationConfig, ring *Ring) *Population {
	if cfg.LiveServices <= 0 {
		cfg.LiveServices = 1
	}
	if cfg.DeadAddresses <= 0 {
		cfg.DeadAddresses = 1
	}
	r := simtime.Rand(cfg.Seed, "onion-services")
	p := &Population{
		Services:      make([]Service, cfg.LiveServices),
		DeadAddresses: cfg.DeadAddresses,
		ring:          ring,
		popZipf:       simtime.NewZipf(cfg.LiveServices, cfg.FetchZipf),
		// Stale botnet address lists hit their entries near-uniformly;
		// a flat exponent also keeps the observed failure mix stable
		// when the pool is scaled down.
		deadZipf: simtime.NewZipf(cfg.DeadAddresses, 0.3),
	}
	// Mark services public so that the fetch-weighted public share hits
	// the target: sample ranks by fetch popularity and flip until the
	// weighted share converges (popular sites are more likely indexed,
	// as on the real ahmia).
	weightedPublic := 0.0
	for i := range p.Services {
		p.Services[i] = Service{Addr: Address("live", i), Rank: i + 1}
	}
	totalW := 0.0
	for i := range p.Services {
		totalW += p.popZipf.Prob(i + 1)
	}
	for weightedPublic/totalW < cfg.PublicShare {
		i := p.popZipf.Rank(r) - 1
		if !p.Services[i].Public {
			p.Services[i].Public = true
			weightedPublic += p.popZipf.Prob(i + 1)
		}
	}
	p.index = newPublicIndex(p.Services)
	return p
}

// Ring returns the HSDir ring.
func (p *Population) Ring() *Ring { return p.ring }

// Index returns the public (ahmia-style) address index.
func (p *Population) Index() *PublicIndex { return p.index }

// PickService samples a live service by fetch popularity.
func (p *Population) PickService(r *rand.Rand) *Service {
	return &p.Services[p.popZipf.Rank(r)-1]
}

// DeadAddress samples a stale address by botnet-list popularity.
func (p *Population) DeadAddress(r *rand.Rand) string {
	return Address("dead", p.deadZipf.Rank(r))
}

// PublicIndex is the ahmia-style search index: a set of publicly known
// onion addresses (§6.2 checks each successfully fetched descriptor
// against the ahmia list).
type PublicIndex struct {
	addrs map[string]bool
}

func newPublicIndex(services []Service) *PublicIndex {
	idx := &PublicIndex{addrs: make(map[string]bool)}
	for _, s := range services {
		if s.Public {
			idx.addrs[s.Addr] = true
		}
	}
	return idx
}

// Contains reports whether the address is publicly indexed.
func (x *PublicIndex) Contains(addr string) bool { return x.addrs[addr] }

// Len returns the index size.
func (x *PublicIndex) Len() int { return len(x.addrs) }

// PublishDay emits descriptor-publish events for one service day: the
// service republishes its descriptor publishesPerDay times to all six
// responsible HSDirs; events fire only at measuring relays.
func (p *Population) PublishDay(net *tornet.Network, r *rand.Rand, svc *Service, day int, publishes int) {
	measuring := p.ring.MeasuringResponsible(svc.Addr, day)
	if len(measuring) == 0 {
		return
	}
	for i := 0; i < publishes; i++ {
		at := randomTimeInDay(r, day)
		for rep, relay := range measuring {
			net.Bus.Publish(&event.DescPublished{
				Header:  event.Header{At: at, Relay: relay},
				Address: svc.Addr,
				Version: 2,
				Replica: uint8(rep % Replicas),
			})
		}
	}
}

// Fetch emits one descriptor-fetch event if the chosen HSDir is
// measuring. Clients pick one replica and one of its Spread HSDirs.
// Returns whether the fetch was observed.
func (p *Population) Fetch(net *tornet.Network, r *rand.Rand, addr string, day int, outcome event.FetchOutcome) bool {
	rep := int(r.Uint64() % Replicas)
	resp := p.ring.Responsible(DescriptorID(addr, rep, day))
	if len(resp) == 0 {
		return false
	}
	relay := resp[r.IntN(len(resp))]
	if !p.ring.IsMeasuring(relay) {
		return false
	}
	net.Bus.Publish(&event.DescFetched{
		Header:  event.Header{At: randomTimeInDay(r, day), Relay: relay},
		Address: addr,
		Version: 2,
		Outcome: outcome,
	})
	return true
}

// randomTimeInDay draws a uniform virtual timestamp within the day.
func randomTimeInDay(r *rand.Rand, day int) simtime.Time {
	return simtime.Time(day)*simtime.Day + simtime.Time(r.Uint64()%uint64(simtime.Day))
}

// RendOutcomeModel draws rendezvous-circuit outcomes matching Table 8:
// ~8% of circuits carry payload, ~4.5% fail with a closed connection,
// and ~87.5% expire before the service completes the protocol.
type RendOutcomeModel struct {
	PSuccess, PClosed float64
	// Payload sizing for active circuits: lognormal parameters chosen
	// to produce the paper's mean of ~730 KiB per active circuit.
	PayloadMu, PayloadSigma float64
}

// DefaultRendOutcomeModel returns the Table 8 calibration.
func DefaultRendOutcomeModel() RendOutcomeModel {
	// mean of lognormal = exp(mu + sigma^2/2); with sigma=1.5 and mean
	// 730 KiB: mu = ln(730*1024) - 1.125 ≈ 12.40.
	return RendOutcomeModel{
		PSuccess:     0.0808,
		PClosed:      0.0455,
		PayloadMu:    12.40,
		PayloadSigma: 1.5,
	}
}

// CellPayload is the usable payload per Tor cell (§2.1).
const CellPayload = 498

// Draw samples one rendezvous circuit's fate.
func (m RendOutcomeModel) Draw(r *rand.Rand) (outcome event.RendOutcome, cells, bytes uint64) {
	u := r.Float64()
	switch {
	case u < m.PSuccess:
		payload := simtime.LogNormal(r, m.PayloadMu, m.PayloadSigma)
		bytes = uint64(payload)
		if bytes == 0 {
			bytes = 1
		}
		cells = (bytes + CellPayload - 1) / CellPayload
		return event.RendSucceeded, cells, bytes
	case u < m.PSuccess+m.PClosed:
		return event.RendConnClosed, 0, 0
	default:
		return event.RendExpired, 0, 0
	}
}
