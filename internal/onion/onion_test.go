package onion

import (
	"math"
	"regexp"
	"testing"

	"repro/internal/event"
	"repro/internal/simtime"
	"repro/internal/tornet"
)

func testRing(t *testing.T) (*tornet.Consensus, *Ring) {
	t.Helper()
	c, err := tornet.NewConsensus(tornet.DefaultConsensusConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c, NewRing(c)
}

func TestAddressFormat(t *testing.T) {
	re := regexp.MustCompile(`^[a-z2-7]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		a := Address("live", i)
		if !re.MatchString(a) {
			t.Fatalf("address %q is not a v2 onion address", a)
		}
		if seen[a] {
			t.Fatalf("duplicate address %q", a)
		}
		seen[a] = true
	}
	if Address("live", 1) != Address("live", 1) {
		t.Fatal("addresses must be deterministic")
	}
	if Address("live", 1) == Address("dead", 1) {
		t.Fatal("namespaces must separate address pools")
	}
}

func TestDescriptorIDRotatesDaily(t *testing.T) {
	a := Address("live", 7)
	if DescriptorID(a, 0, 1) == DescriptorID(a, 0, 2) {
		t.Fatal("descriptor ID must rotate with the day")
	}
	if DescriptorID(a, 0, 1) == DescriptorID(a, 1, 1) {
		t.Fatal("replicas must have distinct descriptor IDs")
	}
}

func TestRingStructure(t *testing.T) {
	c, ring := testRing(t)
	if ring.Size() != c.NumHSDirs() {
		t.Fatalf("ring size %d, consensus HSDirs %d", ring.Size(), c.NumHSDirs())
	}
	if ring.NumMeasuring() != len(c.MeasuringHSDirs()) {
		t.Fatalf("measuring HSDirs on ring: %d want %d", ring.NumMeasuring(), len(c.MeasuringHSDirs()))
	}
}

func TestResponsibleSets(t *testing.T) {
	_, ring := testRing(t)
	addr := Address("live", 3)
	for rep := 0; rep < Replicas; rep++ {
		resp := ring.Responsible(DescriptorID(addr, rep, 5))
		if len(resp) != Spread {
			t.Fatalf("replica %d: %d responsible, want %d", rep, len(resp), Spread)
		}
	}
	all := ring.AllResponsible(addr, 5)
	if len(all) != StoredOn {
		t.Fatalf("full set: %d want %d", len(all), StoredOn)
	}
	// Deterministic.
	again := ring.AllResponsible(addr, 5)
	for i := range all {
		if all[i] != again[i] {
			t.Fatal("responsibility must be deterministic")
		}
	}
}

func TestResponsibleWrapAround(t *testing.T) {
	_, ring := testRing(t)
	// A descriptor ID beyond the last ring position wraps to the start.
	resp := ring.Responsible(^uint64(0))
	if len(resp) != Spread {
		t.Fatalf("wraparound set size %d", len(resp))
	}
}

func TestMeasuringCoverageMatchesRingShare(t *testing.T) {
	_, ring := testRing(t)
	// Fraction of addresses with at least one measuring HSDir across
	// both replicas ≈ 1 - (1-m/N)^6.
	m := float64(ring.NumMeasuring())
	n := float64(ring.Size())
	want := 1 - math.Pow(1-m/n, StoredOn)
	const addrs = 20000
	covered := 0
	for i := 0; i < addrs; i++ {
		if len(ring.MeasuringResponsible(Address("cov", i), 1)) > 0 {
			covered++
		}
	}
	got := float64(covered) / addrs
	if math.Abs(got-want) > want*0.25 {
		t.Fatalf("coverage %v, want ~%v", got, want)
	}
}

func TestPopulationPublicShare(t *testing.T) {
	_, ring := testRing(t)
	cfg := DefaultPopulationConfig()
	cfg.LiveServices = 5000
	p := NewPopulation(cfg, ring)
	if len(p.Services) != 5000 {
		t.Fatalf("services: %d", len(p.Services))
	}
	// Fetch-weighted public share should approximate the target.
	r := simtime.Rand(5, "pub-share")
	public := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if p.PickService(r).Public {
			public++
		}
	}
	got := float64(public) / draws
	if math.Abs(got-cfg.PublicShare) > 0.05 {
		t.Fatalf("fetch-weighted public share %v, want ~%v", got, cfg.PublicShare)
	}
	// Index agrees with flags.
	for i := range p.Services {
		if p.Services[i].Public != p.Index().Contains(p.Services[i].Addr) {
			t.Fatal("index out of sync with service flags")
		}
	}
	if p.Index().Len() == 0 || p.Index().Len() >= len(p.Services) {
		t.Fatalf("index size: %d", p.Index().Len())
	}
}

func TestDeadAddressesDistinctFromLive(t *testing.T) {
	_, ring := testRing(t)
	cfg := DefaultPopulationConfig()
	cfg.LiveServices = 100
	cfg.DeadAddresses = 100
	p := NewPopulation(cfg, ring)
	live := map[string]bool{}
	for _, s := range p.Services {
		live[s.Addr] = true
	}
	r := simtime.Rand(6, "dead")
	for i := 0; i < 1000; i++ {
		if live[p.DeadAddress(r)] {
			t.Fatal("dead address collides with a live service")
		}
	}
}

func TestFetchEmitsOnlyAtMeasuringRelays(t *testing.T) {
	c, ring := testRing(t)
	net := tornet.NewNetwork(c, nil, nil)
	var events []*event.DescFetched
	net.Bus.Subscribe(func(e event.Event) {
		if f, ok := e.(*event.DescFetched); ok {
			events = append(events, f)
		}
	})
	cfg := DefaultPopulationConfig()
	cfg.LiveServices = 200
	p := NewPopulation(cfg, ring)
	r := simtime.Rand(7, "fetch")
	observed := 0
	const attempts = 30000
	// Distinct addresses: responsibility is fixed per address, so a
	// popularity-weighted draw would not estimate the ring share.
	for i := 0; i < attempts; i++ {
		if p.Fetch(net, r, Address("rate", i), 1, event.FetchOK) {
			observed++
		}
	}
	if observed != len(events) {
		t.Fatalf("observed %d, events %d", observed, len(events))
	}
	for _, e := range events {
		if !ring.IsMeasuring(e.Observer()) {
			t.Fatal("fetch event at non-measuring relay")
		}
		if e.Outcome != event.FetchOK || e.Version != 2 {
			t.Fatalf("event fields: %+v", e)
		}
	}
	// The observation rate should approximate the measuring ring share.
	rate := float64(observed) / attempts
	want := float64(ring.NumMeasuring()) / float64(ring.Size())
	if rate <= 0 || math.Abs(rate-want) > want {
		t.Fatalf("fetch observation rate %v, want ~%v", rate, want)
	}
}

func TestPublishDayEmitsForResponsibleServices(t *testing.T) {
	c, ring := testRing(t)
	net := tornet.NewNetwork(c, nil, nil)
	count := 0
	net.Bus.Subscribe(func(e event.Event) {
		if _, ok := e.(*event.DescPublished); ok {
			count++
		}
	})
	cfg := DefaultPopulationConfig()
	cfg.LiveServices = 3000
	p := NewPopulation(cfg, ring)
	r := simtime.Rand(8, "publish")
	for i := range p.Services {
		p.PublishDay(net, r, &p.Services[i], 1, 4)
	}
	if count == 0 {
		t.Fatal("no publish events; some services must hit measuring HSDirs")
	}
}

func TestRendOutcomeModel(t *testing.T) {
	m := DefaultRendOutcomeModel()
	r := simtime.Rand(9, "rend")
	var succ, closed, expired int
	var totalBytes, totalCells float64
	const draws = 300000
	for i := 0; i < draws; i++ {
		outcome, cells, bytes := m.Draw(r)
		switch outcome {
		case event.RendSucceeded:
			succ++
			if bytes == 0 || cells == 0 {
				t.Fatal("successful circuit must carry payload")
			}
			if cells != (bytes+CellPayload-1)/CellPayload {
				t.Fatal("cells must cover bytes at 498 B per cell")
			}
			totalBytes += float64(bytes)
			totalCells += float64(cells)
		case event.RendConnClosed:
			closed++
			if bytes != 0 {
				t.Fatal("failed circuit must carry no payload")
			}
		case event.RendExpired:
			expired++
		}
	}
	if math.Abs(float64(succ)/draws-0.0808) > 0.005 {
		t.Fatalf("success rate %v, want ~0.0808", float64(succ)/draws)
	}
	if math.Abs(float64(closed)/draws-0.0455) > 0.005 {
		t.Fatalf("closed rate %v", float64(closed)/draws)
	}
	if expired == 0 {
		t.Fatal("no expirations")
	}
	// Mean payload per active circuit ≈ 730 KiB (Table 8).
	meanKiB := totalBytes / float64(succ) / 1024
	if meanKiB < 300 || meanKiB > 1600 {
		t.Fatalf("mean payload %v KiB, want ~730", meanKiB)
	}
}
