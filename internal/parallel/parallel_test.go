package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		var sum atomic.Int64
		var calls atomic.Int64
		seen := make([]atomic.Bool, n)
		For(n, 8, func(lo, hi int) {
			calls.Add(1)
			for i := lo; i < hi; i++ {
				if seen[i].Swap(true) {
					t.Errorf("index %d visited twice", i)
				}
				sum.Add(int64(i))
			}
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum.Load() != want {
			t.Fatalf("n=%d: sum %d, want %d", n, sum.Load(), want)
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("n=%d: index %d not visited", n, i)
			}
		}
	}
}

// TestForNested ensures nested For calls cannot deadlock: inner calls
// run inline when the pool is saturated.
func TestForNested(t *testing.T) {
	var count atomic.Int64
	For(100, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(10, 1, func(ilo, ihi int) {
				count.Add(int64(ihi - ilo))
			})
		}
	})
	if count.Load() != 1000 {
		t.Fatalf("nested count %d, want 1000", count.Load())
	}
}

func TestForMinChunk(t *testing.T) {
	// A range smaller than one chunk must run as a single call.
	calls := 0
	For(5, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 5 {
			t.Fatalf("unexpected chunk [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("%d calls, want 1", calls)
	}
}
