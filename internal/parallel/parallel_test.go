package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		var sum atomic.Int64
		var calls atomic.Int64
		seen := make([]atomic.Bool, n)
		For(n, 8, func(lo, hi int) {
			calls.Add(1)
			for i := lo; i < hi; i++ {
				if seen[i].Swap(true) {
					t.Errorf("index %d visited twice", i)
				}
				sum.Add(int64(i))
			}
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum.Load() != want {
			t.Fatalf("n=%d: sum %d, want %d", n, sum.Load(), want)
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("n=%d: index %d not visited", n, i)
			}
		}
	}
}

// TestForNested ensures nested For calls cannot deadlock: inner calls
// run inline when the pool is saturated.
func TestForNested(t *testing.T) {
	var count atomic.Int64
	For(100, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(10, 1, func(ilo, ihi int) {
				count.Add(int64(ihi - ilo))
			})
		}
	})
	if count.Load() != 1000 {
		t.Fatalf("nested count %d, want 1000", count.Load())
	}
}

func TestForMinChunk(t *testing.T) {
	// A range smaller than one chunk must run as a single call.
	calls := 0
	For(5, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 5 {
			t.Fatalf("unexpected chunk [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("%d calls, want 1", calls)
	}
}

// TestPoolSizeFollowsGOMAXPROCS pins the regression the container fleet
// hit: pool sizing must track GOMAXPROCS (which CPU quotas and bench
// sweeps set), not the host's NumCPU. On a 1-CPU host raising
// GOMAXPROCS is how the difference becomes observable: NumCPU-based
// sizing would split work into 1 chunk regardless.
func TestPoolSizeFollowsGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, procs := range []int{1, 3, 4} {
		runtime.GOMAXPROCS(procs)
		if got := PoolSize(); got != procs {
			t.Fatalf("GOMAXPROCS=%d: PoolSize() = %d", procs, got)
		}
		var calls atomic.Int64
		For(1000, 1, func(lo, hi int) { calls.Add(1) })
		if procs == 1 && calls.Load() != 1 {
			t.Fatalf("GOMAXPROCS=1: %d chunks, want 1", calls.Load())
		}
		if procs > 1 && calls.Load() != int64(procs) {
			t.Fatalf("GOMAXPROCS=%d: %d chunks, want %d", procs, calls.Load(), procs)
		}
	}
}
