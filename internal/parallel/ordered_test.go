package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestOrderedPreservesSubmissionOrder runs jobs with randomized
// completion times and checks results still land in submission order.
func TestOrderedPreservesSubmissionOrder(t *testing.T) {
	o := NewOrdered[int](4, 8, "")
	const n = 200
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := 0
		for r := range o.Out() {
			if r.Err != nil {
				t.Errorf("job %d: unexpected error %v", next, r.Err)
			}
			if r.V != next {
				t.Errorf("result %d delivered at position %d", r.V, next)
			}
			next++
		}
		if next != n {
			t.Errorf("delivered %d results, want %d", next, n)
		}
	}()
	for i := 0; i < n; i++ {
		i := i
		o.Submit(func() (int, error) {
			time.Sleep(delays[i])
			return i, nil
		})
	}
	o.Close()
	<-done
}

// TestOrderedPropagatesErrors checks a failing job surfaces in its
// submission slot and later jobs still deliver.
func TestOrderedPropagatesErrors(t *testing.T) {
	o := NewOrdered[string](2, 2, "")
	boom := errors.New("boom")
	go func() {
		o.Submit(func() (string, error) { return "a", nil })
		o.Submit(func() (string, error) { return "", boom })
		o.Submit(func() (string, error) { return "c", nil })
		o.Close()
	}()
	var got []string
	var errs []error
	for r := range o.Out() {
		got = append(got, r.V)
		errs = append(errs, r.Err)
	}
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("results %q", got)
	}
	if errs[0] != nil || !errors.Is(errs[1], boom) || errs[2] != nil {
		t.Fatalf("errors %v", errs)
	}
}

// TestOrderedDepthBound checks Submit blocks once depth jobs are in
// flight — the backpressure bound the verify plane relies on.
func TestOrderedDepthBound(t *testing.T) {
	const depth = 3
	o := NewOrdered[int](2, depth, "")
	release := make(chan struct{})
	var inFlight atomic.Int64
	submitted := make(chan int, 64)
	go func() {
		for i := 0; i < depth+5; i++ {
			i := i
			o.Submit(func() (int, error) {
				inFlight.Add(1)
				<-release
				return i, nil
			})
			submitted <- i
		}
		o.Close()
		close(submitted)
	}()
	// With nobody consuming Out and nobody releasing jobs, submissions
	// must stall at the depth bound (+1 for the Submit parked on the
	// queue itself).
	time.Sleep(50 * time.Millisecond)
	stalled := len(submitted)
	if stalled > depth+1 {
		t.Fatalf("%d submissions in flight, want <= %d", stalled, depth+1)
	}
	close(release)
	next := 0
	for r := range o.Out() {
		if r.V != next {
			t.Fatalf("result %d at position %d", r.V, next)
		}
		next++
	}
	if next != depth+5 {
		t.Fatalf("delivered %d, want %d", next, depth+5)
	}
}

// TestOrderedDrainReturnsFirstError exercises the error-only drain.
func TestOrderedDrainReturnsFirstError(t *testing.T) {
	o := NewOrdered[struct{}](2, 4, "")
	wantErr := errors.New("first")
	go func() {
		o.Submit(func() (struct{}, error) { return struct{}{}, nil })
		o.Submit(func() (struct{}, error) { return struct{}{}, wantErr })
		o.Submit(func() (struct{}, error) { return struct{}{}, errors.New("second") })
		o.Close()
	}()
	if err := o.Drain(); !errors.Is(err, wantErr) {
		t.Fatalf("Drain() = %v, want %v", err, wantErr)
	}
}

// TestOrderedShardCounters checks a named pool counts jobs per shard in
// the process-wide registry.
func TestOrderedShardCounters(t *testing.T) {
	name := fmt.Sprintf("test-%d", time.Now().UnixNano())
	o := NewOrdered[int](2, 4, name)
	const n = 20
	go func() {
		for i := 0; i < n; i++ {
			o.Submit(func() (int, error) { return 0, nil })
		}
		o.Close()
	}()
	for range o.Out() {
	}
	total := 0.0
	for i := 0; i < 2; i++ {
		total += metrics.Default().Get(fmt.Sprintf("parallel/%s/shard-%d/jobs", name, i))
	}
	if total != n {
		t.Fatalf("shard counters sum to %g, want %d", total, n)
	}
}
