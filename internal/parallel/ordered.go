package parallel

import (
	"fmt"

	"repro/internal/metrics"
)

// Ordered is a bounded ordered-results pool: jobs submitted in order
// are executed concurrently on a fixed shard of workers, and results
// are delivered on Out in submission order. It is the pipeline shape of
// the tally's verify/combine plane — a protocol stream must be consumed
// in arrival order and its results applied in the same order, but the
// expensive work per chunk (batch proof verification, homomorphic
// merges, share recovery) is independent, so chunk k+1 verifies while
// chunk k's result is still being consumed, across however many
// concurrent party streams share the plane's cores.
//
// The depth bound applies backpressure end to end: at most depth jobs
// are in flight (queued, running, or completed-but-undelivered), so a
// fast sender cannot pile unverified chunks into the heap faster than
// the workers and the consumer drain them.
type Ordered[T any] struct {
	jobs  chan orderedJob[T]
	order chan chan Result[T]
	out   chan Result[T]
}

// Result carries one job's outcome, in submission order.
type Result[T any] struct {
	V   T
	Err error
}

type orderedJob[T any] struct {
	fn  func() (T, error)
	res chan Result[T]
}

// NewOrdered starts a pool of workers goroutines (minimum 1; use
// PoolSize() to track the schedulable CPUs) delivering at most depth
// in-flight jobs (minimum workers, so every worker can be busy). A
// non-empty name registers per-shard job counters in the process-wide
// metrics registry as parallel/<name>/shard-<i>/jobs — on a deployed
// tally an idle shard under load means the plane is starved by
// arrival order, not by cores.
func NewOrdered[T any](workers, depth int, name string) *Ordered[T] {
	if workers < 1 {
		workers = 1
	}
	if depth < workers {
		depth = workers
	}
	o := &Ordered[T]{
		jobs:  make(chan orderedJob[T], depth),
		order: make(chan chan Result[T], depth),
		out:   make(chan Result[T]),
	}
	for i := 0; i < workers; i++ {
		counter := ""
		if name != "" {
			counter = fmt.Sprintf("parallel/%s/shard-%d/jobs", name, i)
		}
		go func() {
			for j := range o.jobs {
				v, err := j.fn()
				if counter != "" {
					metrics.Default().Inc(counter)
				}
				j.res <- Result[T]{V: v, Err: err}
			}
		}()
	}
	// The forwarder serializes completions back into submission order:
	// each job's one-slot result channel is queued at submit time, so
	// waiting on them in queue order is waiting in submission order.
	go func() {
		defer close(o.out)
		for ch := range o.order {
			o.out <- <-ch
		}
	}()
	return o
}

// Submit enqueues fn. It blocks while depth jobs are in flight — the
// backpressure that keeps the plane's residency bounded. Submit must
// not be called after Close, and is not safe for concurrent use (each
// protocol stream owns one Ordered; streams are already sequential).
func (o *Ordered[T]) Submit(fn func() (T, error)) {
	res := make(chan Result[T], 1)
	o.order <- res
	o.jobs <- orderedJob[T]{fn: fn, res: res}
}

// Close marks the input complete: Out delivers every submitted job's
// result, then closes. The shard workers exit once drained. Close does
// not wait; drain Out to synchronize.
func (o *Ordered[T]) Close() {
	close(o.jobs)
	close(o.order)
}

// Out delivers results in submission order. It closes after Close once
// every result has been delivered. The consumer must drain Out (or
// abandon it only when the whole process section is being torn down);
// an undrained Ordered parks its forwarder, not the shard workers.
func (o *Ordered[T]) Out() <-chan Result[T] {
	return o.out
}

// Drain consumes the remaining results after Close, returning the first
// error encountered (submission order). Use it when the per-result
// values have already been handled and only completion and errors
// remain interesting.
func (o *Ordered[T]) Drain() error {
	var first error
	for r := range o.out {
		if r.Err != nil && first == nil {
			first = r.Err
		}
	}
	return first
}

// Discard closes the pool and drains it in the background — the
// failure-path teardown: a stream that aborts mid-round must not leak
// a parked forwarder or undelivered results, but has nothing left to
// learn from them either. Submit must not be called afterwards.
func (o *Ordered[T]) Discard() {
	o.Close()
	go func() {
		for range o.out {
		}
	}()
}
