// Package parallel provides the process-wide worker pool the batch
// crypto APIs fan out on, plus the bounded ordered-results pool the
// tally's verify/combine plane shards chunk work across. PSC rounds are
// embarrassingly parallel at the vector-element level (thousands of
// independent group operations), so batch callers split work into
// chunks and feed them here rather than spawning goroutines per call.
package parallel

import (
	"runtime"
	"sync"
)

// PoolSize is the target worker count: one worker per schedulable CPU.
// It follows runtime.GOMAXPROCS, not runtime.NumCPU, so container CPU
// quotas (which cap GOMAXPROCS via the runtime or an entrypoint) and
// explicit GOMAXPROCS sweeps size the pool correctly — on a 16-core
// host limited to 4 procs, 16 workers would only add scheduler churn.
func PoolSize() int { return runtime.GOMAXPROCS(0) }

var (
	poolMu  sync.Mutex
	started int
	tasks   chan func()
)

// ensure grows the pool to at least n workers. Workers are never
// reaped: a pool sized for an earlier, larger GOMAXPROCS leaves its
// extra workers parked on the task channel, where they cost nothing —
// the runtime schedules at most GOMAXPROCS of them at once, so
// shrinking the proc limit shrinks effective parallelism for free.
func ensure(n int) {
	poolMu.Lock()
	defer poolMu.Unlock()
	if tasks == nil {
		// The queue capacity bounds how many chunks can be parked
		// before submitters start running chunks themselves (see For).
		tasks = make(chan func(), 256)
	}
	for started < n {
		go func() {
			for f := range tasks {
				f()
			}
		}()
		started++
	}
}

// For runs fn over [0, n) split into contiguous chunks of at least
// minChunk elements, using the worker pool. It blocks until every chunk
// completes. Nested use cannot deadlock: chunk submission never blocks
// (a saturated queue makes the submitter run the chunk itself), and
// while waiting the submitter drains queued tasks — so a pool worker
// that itself calls For keeps the whole pool making progress instead of
// parking on its WaitGroup.
func For(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	chunks := PoolSize()
	if c := (n + minChunk - 1) / minChunk; c < chunks {
		chunks = c
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	ensure(chunks)
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		lo := lo
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case tasks <- task:
		default:
			task()
		}
	}
	// Work-steal while waiting: execute whatever is queued (ours or
	// another call's) until our own chunks are all done.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case f := <-tasks:
			f()
		case <-done:
			return
		}
	}
}
