// Package parallel provides the process-wide worker pool the batch
// crypto APIs fan out on. PSC rounds are embarrassingly parallel at the
// vector-element level (thousands of independent group operations), so
// batch callers split work into chunks and feed them here rather than
// spawning goroutines per call.
package parallel

import (
	"runtime"
	"sync"
)

// Workers is the pool size: one worker per CPU.
var Workers = runtime.NumCPU()

var (
	startOnce sync.Once
	tasks     chan func()
)

// start lazily launches the pool so importing the package costs nothing.
func start() {
	tasks = make(chan func(), Workers)
	for i := 0; i < Workers; i++ {
		go func() {
			for f := range tasks {
				f()
			}
		}()
	}
}

// For runs fn over [0, n) split into contiguous chunks of at least
// minChunk elements, using the worker pool. It blocks until every chunk
// completes. Nested use cannot deadlock: chunk submission never blocks
// (a saturated queue makes the submitter run the chunk itself), and
// while waiting the submitter drains queued tasks — so a pool worker
// that itself calls For keeps the whole pool making progress instead of
// parking on its WaitGroup.
func For(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	chunks := Workers
	if c := (n + minChunk - 1) / minChunk; c < chunks {
		chunks = c
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	startOnce.Do(start)
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		lo := lo
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case tasks <- task:
		default:
			task()
		}
	}
	// Work-steal while waiting: execute whatever is queued (ours or
	// another call's) until our own chunks are all done.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case f := <-tasks:
			f()
		case <-done:
			return
		}
	}
}
