// Package simtime provides a deterministic discrete-event simulation
// kernel: a virtual clock, an event queue ordered by virtual time, and
// seeded random-number streams that are stable across runs.
//
// All simulated Tor activity in this repository is scheduled through a
// Scheduler so that a 24-hour measurement period executes in milliseconds
// of wall time and produces identical event streams for identical seeds.
package simtime

import (
	"container/heap"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a virtual timestamp measured as a Duration since the start of
// the simulation epoch. The zero Time is the epoch itself.
type Time time.Duration

// Common durations re-exported for callers that think in measurement
// periods. The paper measures in 24-hour rounds (§3.1) and one 4-day
// round for churn (§5.1).
const (
	Second = Time(time.Second)
	Minute = Time(time.Minute)
	Hour   = Time(time.Hour)
	Day    = 24 * Hour
)

// Duration converts t to a standard library duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// String formats the virtual time as a duration offset, e.g. "13h26m0s".
func (t Time) String() string { return time.Duration(t).String() }

// An Event is a callback scheduled to run at a virtual time.
type Event func(now Time)

type scheduledEvent struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  Event
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*scheduledEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the simulation model is strictly sequential so that
// runs are reproducible.
type Scheduler struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at the absolute virtual time at. Events scheduled
// in the past run immediately at the current time on the next Run step.
func (s *Scheduler) At(at Time, fn Event) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.queue, &scheduledEvent{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Every schedules fn to run periodically with the given period, starting
// one period from now, until the scheduler stops or the horizon passes.
// A non-positive period panics: it would livelock the simulation.
func (s *Scheduler) Every(period time.Duration, fn Event) {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: non-positive period %v", period))
	}
	var tick Event
	tick = func(now Time) {
		fn(now)
		if !s.stopped {
			s.After(period, tick)
		}
	}
	s.After(period, tick)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of events awaiting execution.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Run executes events in timestamp order until the queue is empty, the
// horizon is exceeded, or Stop is called. It returns the virtual time at
// which the run ended. Events scheduled at exactly the horizon still run;
// events strictly after it remain queued.
func (s *Scheduler) Run(horizon Time) Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > horizon {
			s.now = horizon
			return s.now
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.fn(s.now)
	}
	if s.now < horizon {
		s.now = horizon
	}
	return s.now
}

// Rand derives a deterministic random stream from a root seed and a
// stream label. Distinct labels yield statistically independent streams,
// so simulation components can draw randomness without perturbing each
// other's sequences when the model evolves.
func Rand(seed uint64, stream string) *rand.Rand {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte(stream))
	sum := h.Sum(nil)
	s1 := binary.LittleEndian.Uint64(sum[0:8])
	s2 := binary.LittleEndian.Uint64(sum[8:16])
	return rand.New(rand.NewPCG(s1, s2))
}
