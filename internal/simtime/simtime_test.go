package simtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsInTimestampOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(3*Second, func(Time) { order = append(order, 3) })
	s.At(1*Second, func(Time) { order = append(order, 1) })
	s.At(2*Second, func(Time) { order = append(order, 2) })
	end := s.Run(Day)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if end != Day {
		t.Fatalf("run should end at horizon, got %v", end)
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func(Time) { order = append(order, i) })
	}
	s.Run(Day)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestSchedulerHorizonStopsEarly(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(2*Hour, func(Time) { ran = true })
	s.Run(1 * Hour)
	if ran {
		t.Fatal("event beyond horizon must not run")
	}
	if s.Pending() != 1 {
		t.Fatalf("event should remain queued, pending=%d", s.Pending())
	}
	s.Run(3 * Hour)
	if !ran {
		t.Fatal("event should run once horizon advances")
	}
}

func TestSchedulerEventsScheduleMoreEvents(t *testing.T) {
	s := NewScheduler()
	count := 0
	var chain Event
	chain = func(now Time) {
		count++
		if count < 5 {
			s.After(time.Minute, chain)
		}
	}
	s.After(time.Minute, chain)
	s.Run(Day)
	if count != 5 {
		t.Fatalf("chained events: got %d, want 5", count)
	}
	if s.Now() != Day {
		t.Fatalf("clock should advance to horizon, got %v", s.Now())
	}
}

func TestSchedulerPastEventClampsToNow(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.At(Hour, func(now Time) {
		s.At(Minute, func(n Time) { at = n }) // in the past
	})
	s.Run(Day)
	if at != Hour {
		t.Fatalf("past event should run at current time %v, ran at %v", Hour, at)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.Every(time.Minute, func(Time) {
		count++
		if count == 3 {
			s.Stop()
		}
	})
	s.Run(Day)
	if count != 3 {
		t.Fatalf("stop should halt the loop: count=%d", count)
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) must panic")
		}
	}()
	NewScheduler().Every(0, func(Time) {})
}

func TestRandDeterministicPerStream(t *testing.T) {
	a1 := Rand(42, "alpha")
	a2 := Rand(42, "alpha")
	b := Rand(42, "beta")
	sameCount, diffCount := 0, 0
	for i := 0; i < 100; i++ {
		x, y, z := a1.Uint64(), a2.Uint64(), b.Uint64()
		if x == y {
			sameCount++
		}
		if x == z {
			diffCount++
		}
	}
	if sameCount != 100 {
		t.Fatal("same seed+stream must reproduce exactly")
	}
	if diffCount > 2 {
		t.Fatalf("different streams should diverge, %d collisions", diffCount)
	}
}

func TestZipfMassOrderingAndNormalization(t *testing.T) {
	z := NewZipf(1000, 1.1)
	total := 0.0
	prev := math.Inf(1)
	for k := 1; k <= 1000; k++ {
		p := z.Prob(k)
		if p > prev+1e-12 {
			t.Fatalf("Zipf mass must be non-increasing at rank %d", k)
		}
		prev = p
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("Zipf masses must sum to 1, got %v", total)
	}
	if z.Prob(0) != 0 || z.Prob(1001) != 0 {
		t.Fatal("out-of-range ranks must have zero mass")
	}
}

func TestZipfSamplingMatchesMass(t *testing.T) {
	const n = 50
	z := NewZipf(n, 1.0)
	r := Rand(7, "zipf")
	counts := make([]int, n+1)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Rank(r)]++
	}
	for k := 1; k <= 5; k++ {
		want := z.Prob(k)
		got := float64(counts[k]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d: sampled %v want %v", k, got, want)
		}
	}
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	w := NewWeightedChoice([]float64{1, 0, 3})
	r := Rand(1, "wc")
	counts := [3]int{}
	for i := 0; i < 100000; i++ {
		counts[w.Pick(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight choice picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio should be ~3, got %v", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for _, weights := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("weights %v must panic", weights)
				}
			}()
			NewWeightedChoice(weights)
		}()
	}
}

func TestExpMeanMatchesRate(t *testing.T) {
	r := Rand(3, "exp")
	const rate = 2.0
	var total float64
	const n = 100000
	for i := 0; i < n; i++ {
		total += Exp(r, rate).Seconds()
	}
	mean := total / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exp mean: got %v want %v", mean, 1/rate)
	}
	if Exp(r, 0) < Day*1000 {
		t.Fatal("zero rate should mean 'never'")
	}
}

func TestPoissonMean(t *testing.T) {
	r := Rand(9, "poisson")
	for _, mean := range []float64{0.5, 5, 200} {
		var total float64
		const n = 50000
		for i := 0; i < n; i++ {
			total += float64(Poisson(r, mean))
		}
		got := total / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("poisson mean %v: got %v", mean, got)
		}
	}
	if Poisson(r, 0) != 0 || Poisson(r, -1) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

// Property: the scheduler's clock is monotone regardless of the order in
// which events are scheduled.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		last := Time(-1)
		for _, o := range offsets {
			s.At(Time(o)*Second, func(now Time) {
				if now < last {
					t.Errorf("clock went backwards: %v after %v", now, last)
				}
				last = now
			})
		}
		s.Run(Time(70000) * Second)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := 90 * Minute
	if tm.Seconds() != 5400 {
		t.Fatalf("Seconds: %v", tm.Seconds())
	}
	if tm.Add(30*time.Minute) != 2*Hour {
		t.Fatal("Add")
	}
	if !tm.Before(2 * Hour) {
		t.Fatal("Before")
	}
	if tm.String() != "1h30m0s" {
		t.Fatalf("String: %q", tm.String())
	}
}
