package simtime

import (
	"math"
	"math/rand/v2"
	"sort"
)

// This file holds the random-variate helpers shared by the workload and
// noise models: exponential inter-arrival times, Zipf-like power laws
// over finite supports, and weighted discrete choice.

// Exp draws an exponential variate with the given rate (events per
// second), returned as a duration. A non-positive rate returns a very
// large duration, effectively "never".
func Exp(r *rand.Rand, rate float64) Time {
	if rate <= 0 {
		return Time(math.MaxInt64 / 4)
	}
	secs := r.ExpFloat64() / rate
	return Time(secs * float64(Second))
}

// Zipf samples ranks in [1, n] following a power law with exponent s
// (P(rank=k) ∝ k^-s). It precomputes the CDF so sampling is O(log n).
// The paper relies on the observation that web-site popularity follows a
// power law (§3.3, [13,33]); the exit-domain workload and the Monte-Carlo
// extrapolation in internal/stats both sample from this distribution.
type Zipf struct {
	cdf []float64
	s   float64
}

// NewZipf builds a sampler over ranks 1..n with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("simtime: Zipf over empty support")
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, s: s}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Exponent returns the power-law exponent s.
func (z *Zipf) Exponent() float64 { return z.s }

// Rank draws a rank in [1, N].
func (z *Zipf) Rank(r *rand.Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// Prob returns the probability mass of the given rank (1-based).
func (z *Zipf) Prob(rank int) float64 {
	if rank < 1 || rank > len(z.cdf) {
		return 0
	}
	if rank == 1 {
		return z.cdf[0]
	}
	return z.cdf[rank-1] - z.cdf[rank-2]
}

// WeightedChoice selects an index in [0, len(weights)) with probability
// proportional to its weight. It is used for consensus-weighted relay
// selection. Panics if all weights are zero or negative.
type WeightedChoice struct {
	cdf []float64
}

// NewWeightedChoice builds a sampler from non-negative weights.
func NewWeightedChoice(weights []float64) *WeightedChoice {
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("simtime: negative weight")
		}
		total += w
		cdf[i] = total
	}
	if total <= 0 {
		panic("simtime: weighted choice with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &WeightedChoice{cdf: cdf}
}

// Pick draws an index.
func (w *WeightedChoice) Pick(r *rand.Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(w.cdf, u)
}

// Len returns the number of choices.
func (w *WeightedChoice) Len() int { return len(w.cdf) }

// LogNormal draws a log-normal variate with the given location mu and
// scale sigma of the underlying normal. Used for heavy-tailed page sizes
// and transfer volumes.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Poisson draws a Poisson variate with the given mean. For large means it
// uses the normal approximation, which is more than adequate for workload
// generation.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := r.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's method for small means.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
