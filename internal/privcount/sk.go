package privcount

import (
	"fmt"

	"repro/internal/wire"
)

// SK is a share keeper. It accumulates the negation of every blinding
// share the DCs generate, so that when the tally server sums DC reports
// and SK sums, the blinding telescopes away. PrivCount's privacy
// guarantee holds as long as at least one SK is honest (§2.3): no
// smaller coalition can unblind a DC's counters.
//
// An SK's seal keypair is long-term: one SK value serves many rounds
// (ServeRound per round stream), concurrently if asked, like the
// deployed share-keeper daemons.
type SK struct {
	Name string
	m    wire.Messenger
	key  *SealKey
}

// NewSK creates a share keeper. The messenger may be nil when the SK
// serves rounds on explicit streams via ServeRound.
func NewSK(name string, m wire.Messenger) (*SK, error) {
	key, err := NewSealKey()
	if err != nil {
		return nil, err
	}
	return &SK{Name: name, m: m, key: key}, nil
}

// Serve runs one round on the SK's bound messenger.
func (sk *SK) Serve() error { return sk.ServeRound(sk.m) }

// ServeRound runs the share keeper's side of one round over m:
// register, receive the configuration and every DC's sealed share
// chunks, then answer the collect request with negated sums. All round
// state is local, so one SK serves many rounds concurrently.
func (sk *SK) ServeRound(m wire.Messenger) error {
	if err := m.Send(kindRegister, RegisterMsg{
		Role: RoleSK, Name: sk.Name, SealPub: sk.key.Public(),
	}); err != nil {
		return fmt.Errorf("privcount sk %s: register: %w", sk.Name, err)
	}
	var cfg ConfigureMsg
	if err := m.Expect(kindConfigure, &cfg); err != nil {
		return fmt.Errorf("privcount sk %s: configure: %w", sk.Name, err)
	}
	schema, err := NewSchema(cfg.Stats)
	if err != nil {
		return err
	}
	sums := make([]uint64, schema.Size())

	// Each DC's vector arrives as sealed chunks; only one chunk is ever
	// open at a time.
	for i := 0; i < cfg.NumDCs; i++ {
		for got := 0; got < len(sums); {
			var relay RelayMsg
			if err := m.Expect(kindRelay, &relay); err != nil {
				return fmt.Errorf("privcount sk %s: relay %d: %w", sk.Name, i, err)
			}
			if relay.N != len(sums) {
				return fmt.Errorf("privcount sk %s: DC %s vector has %d slots, want %d",
					sk.Name, relay.From, relay.N, len(sums))
			}
			if relay.Off != got || relay.Count <= 0 || relay.Off+relay.Count > len(sums) {
				return fmt.Errorf("privcount sk %s: DC %s chunk [%d,%d) does not continue at %d",
					sk.Name, relay.From, relay.Off, relay.Off+relay.Count, got)
			}
			plain, err := sk.key.Open(relay.Box)
			if err != nil {
				return fmt.Errorf("privcount sk %s: open box from %s: %w", sk.Name, relay.From, err)
			}
			var shares []uint64
			if err := wire.DecodePayload(plain, &shares); err != nil {
				return fmt.Errorf("privcount sk %s: decode shares from %s: %w", sk.Name, relay.From, err)
			}
			if len(shares) != relay.Count {
				return fmt.Errorf("privcount sk %s: share chunk from %s has %d slots, want %d",
					sk.Name, relay.From, len(shares), relay.Count)
			}
			for j, s := range shares {
				sums[relay.Off+j] -= s // negate: SK sums cancel DC blinding at the TS
			}
			got += relay.Count
		}
	}

	var collect CollectMsg
	if err := m.Expect(kindCollect, &collect); err != nil {
		return fmt.Errorf("privcount sk %s: collect: %w", sk.Name, err)
	}
	if err := m.Send(kindSums, SumsMsg{From: sk.Name, Round: cfg.Round, N: len(sums)}); err != nil {
		return err
	}
	return sendValues(m, sums)
}
