package privcount

import (
	"fmt"

	"repro/internal/wire"
)

// SK is a share keeper. It accumulates the negation of every blinding
// share the DCs generate, so that when the tally server sums DC reports
// and SK sums, the blinding telescopes away. PrivCount's privacy
// guarantee holds as long as at least one SK is honest (§2.3): no
// smaller coalition can unblind a DC's counters.
//
// An SK's seal keypair is long-term: one SK value serves many rounds
// (ServeRound per round stream), concurrently if asked, like the
// deployed share-keeper daemons.
type SK struct {
	Name string
	m    wire.Messenger
	key  *SealKey
}

// NewSK creates a share keeper. The messenger may be nil when the SK
// serves rounds on explicit streams via ServeRound.
func NewSK(name string, m wire.Messenger) (*SK, error) {
	key, err := NewSealKey()
	if err != nil {
		return nil, err
	}
	return &SK{Name: name, m: m, key: key}, nil
}

// Serve runs one round on the SK's bound messenger.
func (sk *SK) Serve() error { return sk.ServeRound(sk.m) }

// ServeRound runs the share keeper's side of one round over m:
// register, receive the configuration and every DC's sealed share
// chunks, then answer the collect request with negated sums. All round
// state is local, so one SK serves many rounds concurrently.
func (sk *SK) ServeRound(m wire.Messenger) error {
	if err := m.Send(kindRegister, RegisterMsg{
		Role: RoleSK, Name: sk.Name, SealPub: sk.key.Public(),
	}); err != nil {
		return fmt.Errorf("privcount sk %s: register: %w", sk.Name, err)
	}
	var cfg ConfigureMsg
	if err := m.Expect(kindConfigure, &cfg); err != nil {
		return fmt.Errorf("privcount sk %s: configure: %w", sk.Name, err)
	}
	schema, err := NewSchema(cfg.Stats)
	if err != nil {
		return err
	}
	size := schema.Size()

	// Each DC's vector arrives as sealed chunks and accumulates
	// per-DC (negated) until the collect request names the DCs whose
	// reports the tally holds; only those sum into the answer. A chunk
	// restarting at offset zero resets that DC's accumulation — the
	// restart semantics of a DC that rejoined mid-distribution and
	// re-sent its shares from scratch. Only one chunk is ever open at a
	// time.
	type dcAccum struct {
		vec []uint64
		got int
	}
	accums := make(map[string]*dcAccum)
	var collect CollectMsg
	for {
		f, err := m.Recv()
		if err != nil {
			return fmt.Errorf("privcount sk %s: relay: %w", sk.Name, err)
		}
		if f.Kind == kindCollect {
			if err := wire.DecodePayload(f.Payload, &collect); err != nil {
				return fmt.Errorf("privcount sk %s: collect: %w", sk.Name, err)
			}
			break
		}
		if f.Kind != kindRelay {
			return fmt.Errorf("privcount sk %s: expected %q or %q frame, got %q", sk.Name, kindRelay, kindCollect, f.Kind)
		}
		var relay RelayMsg
		if err := wire.DecodePayload(f.Payload, &relay); err != nil {
			return fmt.Errorf("privcount sk %s: relay: %w", sk.Name, err)
		}
		if relay.N != size {
			return fmt.Errorf("privcount sk %s: DC %s vector has %d slots, want %d",
				sk.Name, relay.From, relay.N, size)
		}
		acc := accums[relay.From]
		if acc == nil || relay.Off == 0 {
			acc = &dcAccum{vec: make([]uint64, size)}
			accums[relay.From] = acc
		}
		if relay.Off != acc.got || relay.Count <= 0 || relay.Off+relay.Count > size {
			return fmt.Errorf("privcount sk %s: DC %s chunk [%d,%d) does not continue at %d",
				sk.Name, relay.From, relay.Off, relay.Off+relay.Count, acc.got)
		}
		plain, err := sk.key.Open(relay.Box)
		if err != nil {
			return fmt.Errorf("privcount sk %s: open box from %s: %w", sk.Name, relay.From, err)
		}
		var shares []uint64
		if err := wire.DecodePayload(plain, &shares); err != nil {
			return fmt.Errorf("privcount sk %s: decode shares from %s: %w", sk.Name, relay.From, err)
		}
		if len(shares) != relay.Count {
			return fmt.Errorf("privcount sk %s: share chunk from %s has %d slots, want %d",
				sk.Name, relay.From, len(shares), relay.Count)
		}
		for j, s := range shares {
			acc.vec[relay.Off+j] -= s // negate: SK sums cancel DC blinding at the TS
		}
		acc.got += relay.Count
	}

	include := collect.DCs
	if include == nil {
		// Pre-churn collect: every completed vector participates.
		for name, acc := range accums {
			if acc.got == size {
				include = append(include, name)
			}
		}
	} else {
		// The TS may exclude DCs that never reported, but never below
		// the quorum floor it declared at configure time: a smaller list
		// would let it isolate individual DCs' counters with only their
		// fraction of the calibrated noise.
		floor := cfg.MinDCs
		if floor <= 0 {
			floor = cfg.NumDCs
		}
		if len(include) < floor {
			return fmt.Errorf("privcount sk %s: collect names %d DCs, below the declared quorum floor %d",
				sk.Name, len(include), floor)
		}
	}
	sums := make([]uint64, size)
	for _, name := range include {
		acc := accums[name]
		if acc == nil || acc.got != size {
			return fmt.Errorf("privcount sk %s: collect names DC %s whose share vector is incomplete", sk.Name, name)
		}
		for j, s := range acc.vec {
			sums[j] += s
		}
	}
	if err := m.Send(kindSums, SumsMsg{From: sk.Name, Round: cfg.Round, N: len(sums)}); err != nil {
		return err
	}
	return sendValues(m, sums)
}
