package privcount

import (
	"fmt"

	"repro/internal/wire"
)

// SK is a share keeper. It accumulates the negation of every blinding
// share the DCs generate, so that when the tally server sums DC reports
// and SK sums, the blinding telescopes away. PrivCount's privacy
// guarantee holds as long as at least one SK is honest (§2.3): no
// smaller coalition can unblind a DC's counters.
type SK struct {
	Name string
	conn *wire.Conn
	key  *SealKey
}

// NewSK creates a share keeper speaking on conn.
func NewSK(name string, conn *wire.Conn) (*SK, error) {
	key, err := NewSealKey()
	if err != nil {
		return nil, err
	}
	return &SK{Name: name, conn: conn, key: key}, nil
}

// Serve runs the share keeper's side of one round: register, receive
// the configuration and every DC's sealed share vector, then answer the
// collect request with negated sums. It returns when the round ends.
func (sk *SK) Serve() error {
	if err := sk.conn.Send(kindRegister, RegisterMsg{
		Role: RoleSK, Name: sk.Name, SealPub: sk.key.Public(),
	}); err != nil {
		return fmt.Errorf("privcount sk %s: register: %w", sk.Name, err)
	}
	var cfg ConfigureMsg
	if err := sk.conn.Expect(kindConfigure, &cfg); err != nil {
		return fmt.Errorf("privcount sk %s: configure: %w", sk.Name, err)
	}
	schema, err := NewSchema(cfg.Stats)
	if err != nil {
		return err
	}
	sums := make([]uint64, schema.Size())

	for i := 0; i < cfg.NumDCs; i++ {
		var relay RelayMsg
		if err := sk.conn.Expect(kindRelay, &relay); err != nil {
			return fmt.Errorf("privcount sk %s: relay %d: %w", sk.Name, i, err)
		}
		plain, err := sk.key.Open(relay.Box)
		if err != nil {
			return fmt.Errorf("privcount sk %s: open box from %s: %w", sk.Name, relay.From, err)
		}
		var shares []uint64
		if err := wire.DecodePayload(plain, &shares); err != nil {
			return fmt.Errorf("privcount sk %s: decode shares from %s: %w", sk.Name, relay.From, err)
		}
		if len(shares) != len(sums) {
			return fmt.Errorf("privcount sk %s: share vector from %s has %d slots, want %d",
				sk.Name, relay.From, len(shares), len(sums))
		}
		for j, s := range shares {
			sums[j] -= s // negate: SK sums cancel DC blinding at the TS
		}
	}

	var collect CollectMsg
	if err := sk.conn.Expect(kindCollect, &collect); err != nil {
		return fmt.Errorf("privcount sk %s: collect: %w", sk.Name, err)
	}
	return sk.conn.Send(kindSums, SumsMsg{From: sk.Name, Round: cfg.Round, Values: sums})
}
