package privcount

import (
	"fmt"

	"repro/internal/wire"
)

// TallyConfig describes one PrivCount round from the tally server's
// perspective.
type TallyConfig struct {
	Round uint64
	Stats []StatConfig
	// NumDCs and NumSKs are how many of each party must participate.
	// The paper deploys 16 DCs and 3 SKs (§3.1).
	NumDCs, NumSKs int
	// NoiseWeights optionally assigns each DC (by name) its share of
	// the noise responsibility; weights are normalized. Nil means equal
	// shares.
	NoiseWeights map[string]float64
}

// Validate checks the configuration.
func (c TallyConfig) Validate() error {
	if c.NumDCs <= 0 {
		return fmt.Errorf("privcount: need at least one DC")
	}
	if c.NumSKs <= 0 {
		return fmt.Errorf("privcount: need at least one SK (the privacy guarantee requires an honest SK)")
	}
	_, err := NewSchema(c.Stats)
	return err
}

// Tally is the tally server for one round.
type Tally struct {
	cfg    TallyConfig
	schema *Schema
}

// NewTally validates the configuration and returns a tally server.
func NewTally(cfg TallyConfig) (*Tally, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	schema, err := NewSchema(cfg.Stats)
	if err != nil {
		return nil, err
	}
	return &Tally{cfg: cfg, schema: schema}, nil
}

// Schema returns the round schema.
func (t *Tally) Schema() *Schema { return t.schema }

// Run executes the round over the given established messengers (one
// per party — dedicated connections or per-round streams of
// multiplexed sessions, in any order). It blocks until every DC has
// reported and every SK has answered, then returns the aggregated
// noisy statistics.
//
// The protocol phases are strictly sequenced, matching the PrivCount
// deployment: registration, configuration, share distribution (sealed
// chunks relayed through the TS), collection, and aggregation.
func (t *Tally) Run(conns []wire.Messenger) (map[string][]float64, error) {
	if len(conns) != t.cfg.NumDCs+t.cfg.NumSKs {
		return nil, fmt.Errorf("privcount ts: have %d connections, want %d DCs + %d SKs",
			len(conns), t.cfg.NumDCs, t.cfg.NumSKs)
	}

	// Phase 1: registration.
	dcConns := make(map[string]wire.Messenger)
	skConns := make(map[string]wire.Messenger)
	skKeys := make(map[string][]byte)
	var dcNames, skNames []string
	for _, c := range conns {
		var reg RegisterMsg
		if err := c.Expect(kindRegister, &reg); err != nil {
			return nil, fmt.Errorf("privcount ts: registration: %w", err)
		}
		switch reg.Role {
		case RoleDC:
			if _, dup := dcConns[reg.Name]; dup {
				return nil, fmt.Errorf("privcount ts: duplicate DC %q", reg.Name)
			}
			dcConns[reg.Name] = c
			dcNames = append(dcNames, reg.Name)
		case RoleSK:
			if _, dup := skConns[reg.Name]; dup {
				return nil, fmt.Errorf("privcount ts: duplicate SK %q", reg.Name)
			}
			if len(reg.SealPub) == 0 {
				return nil, fmt.Errorf("privcount ts: SK %q registered without a seal key", reg.Name)
			}
			skConns[reg.Name] = c
			skNames = append(skNames, reg.Name)
			skKeys[reg.Name] = reg.SealPub
		default:
			return nil, fmt.Errorf("privcount ts: unknown role %q", reg.Role)
		}
	}
	if len(dcConns) != t.cfg.NumDCs || len(skConns) != t.cfg.NumSKs {
		return nil, fmt.Errorf("privcount ts: registered %d DCs and %d SKs, want %d and %d",
			len(dcConns), len(skConns), t.cfg.NumDCs, t.cfg.NumSKs)
	}

	// Phase 2: configuration. Noise weights normalize to 1 across DCs.
	weights := t.normalizedWeights(dcNames)
	for _, name := range dcNames {
		cfg := ConfigureMsg{
			Round:       t.cfg.Round,
			Stats:       t.cfg.Stats,
			NumDCs:      t.cfg.NumDCs,
			SKNames:     skNames,
			SKKeys:      skKeys,
			NoiseWeight: weights[name],
		}
		if err := dcConns[name].Send(kindConfigure, cfg); err != nil {
			return nil, fmt.Errorf("privcount ts: configure DC %s: %w", name, err)
		}
	}
	for _, name := range skNames {
		cfg := ConfigureMsg{Round: t.cfg.Round, Stats: t.cfg.Stats, NumDCs: t.cfg.NumDCs}
		if err := skConns[name].Send(kindConfigure, cfg); err != nil {
			return nil, fmt.Errorf("privcount ts: configure SK %s: %w", name, err)
		}
	}

	// Phase 3: share distribution. The TS relays sealed chunks as they
	// arrive; it never holds a key that opens them, and never more than
	// one chunk of boxes per DC.
	for _, name := range dcNames {
		var shares SharesMsg
		if err := dcConns[name].Expect(kindShares, &shares); err != nil {
			return nil, fmt.Errorf("privcount ts: shares from DC %s: %w", name, err)
		}
		if shares.N != t.schema.Size() {
			return nil, fmt.Errorf("privcount ts: DC %s sharing %d slots, want %d", name, shares.N, t.schema.Size())
		}
		for got := 0; got < shares.N; {
			var chunk ShareChunkMsg
			if err := dcConns[name].Expect(kindShareChunk, &chunk); err != nil {
				return nil, fmt.Errorf("privcount ts: share chunk from DC %s: %w", name, err)
			}
			if chunk.Off != got || chunk.Count <= 0 || chunk.Off+chunk.Count > shares.N {
				return nil, fmt.Errorf("privcount ts: DC %s share chunk [%d,%d) does not continue at %d",
					name, chunk.Off, chunk.Off+chunk.Count, got)
			}
			if len(chunk.Boxes) != len(skNames) {
				return nil, fmt.Errorf("privcount ts: DC %s sent %d boxes, want %d", name, len(chunk.Boxes), len(skNames))
			}
			for _, sk := range skNames {
				box, ok := chunk.Boxes[sk]
				if !ok {
					return nil, fmt.Errorf("privcount ts: DC %s missing box for SK %s", name, sk)
				}
				relay := RelayMsg{From: name, Off: chunk.Off, Count: chunk.Count, N: shares.N, Box: box}
				if err := skConns[sk].Send(kindRelay, relay); err != nil {
					return nil, fmt.Errorf("privcount ts: relay to SK %s: %w", sk, err)
				}
			}
			got += chunk.Count
		}
	}

	// Phase 4: begin collection.
	for _, name := range dcNames {
		if err := dcConns[name].Send(kindBegin, BeginMsg{Round: t.cfg.Round}); err != nil {
			return nil, fmt.Errorf("privcount ts: begin DC %s: %w", name, err)
		}
	}

	// Phase 5: gather DC reports (sent whenever each DC finishes),
	// chunked.
	vectors := make([][]uint64, 0, len(conns))
	for _, name := range dcNames {
		var rep ReportMsg
		if err := dcConns[name].Expect(kindReport, &rep); err != nil {
			return nil, fmt.Errorf("privcount ts: report from DC %s: %w", name, err)
		}
		if rep.Round != t.cfg.Round {
			return nil, fmt.Errorf("privcount ts: DC %s reported round %d, want %d", name, rep.Round, t.cfg.Round)
		}
		vals, err := recvValues(dcConns[name], rep.N)
		if err != nil {
			return nil, fmt.Errorf("privcount ts: report from DC %s: %w", name, err)
		}
		vectors = append(vectors, vals)
	}

	// Phase 6: collect SK sums, chunked.
	for _, name := range skNames {
		if err := skConns[name].Send(kindCollect, CollectMsg{Round: t.cfg.Round}); err != nil {
			return nil, fmt.Errorf("privcount ts: collect SK %s: %w", name, err)
		}
	}
	for _, name := range skNames {
		var sums SumsMsg
		if err := skConns[name].Expect(kindSums, &sums); err != nil {
			return nil, fmt.Errorf("privcount ts: sums from SK %s: %w", name, err)
		}
		vals, err := recvValues(skConns[name], sums.N)
		if err != nil {
			return nil, fmt.Errorf("privcount ts: sums from SK %s: %w", name, err)
		}
		vectors = append(vectors, vals)
	}

	// Phase 7: aggregate. Blinding telescopes; what remains is the true
	// totals plus the DCs' combined Gaussian noise.
	return Aggregate(t.schema, vectors...)
}

func (t *Tally) normalizedWeights(dcNames []string) map[string]float64 {
	out := make(map[string]float64, len(dcNames))
	if len(t.cfg.NoiseWeights) == 0 {
		for _, n := range dcNames {
			out[n] = 1 / float64(len(dcNames))
		}
		return out
	}
	total := 0.0
	for _, n := range dcNames {
		w := t.cfg.NoiseWeights[n]
		if w < 0 {
			w = 0
		}
		total += w
	}
	for _, n := range dcNames {
		if total > 0 {
			out[n] = t.cfg.NoiseWeights[n] / total
		} else {
			out[n] = 1 / float64(len(dcNames))
		}
	}
	return out
}
