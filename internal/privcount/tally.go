package privcount

import (
	"fmt"
	"sort"

	"repro/internal/wire"
)

// TallyConfig describes one PrivCount round from the tally server's
// perspective.
type TallyConfig struct {
	Round uint64
	Stats []StatConfig
	// NumDCs and NumSKs are how many of each party must participate.
	// The paper deploys 16 DCs and 3 SKs (§3.1).
	NumDCs, NumSKs int
	// NoiseWeights optionally assigns each DC (by name) its share of
	// the noise responsibility; weights are normalized. Nil means equal
	// shares.
	NoiseWeights map[string]float64
	// MinDCs is the quorum floor for data collectors: when Recover is
	// set, the round completes (with reduced coverage and noise,
	// annotated via Absent) as long as at least MinDCs reports arrive.
	// Zero means every DC is required. SKs have no quorum knob: each
	// holds blinding state the aggregate cannot telescope without.
	MinDCs int
	// Recover, when set, is consulted whenever the exchange with the
	// party at index i of the Run slice fails (the first NumSKs
	// messengers must then be the SKs, the rest the DCs, which is how
	// the engine orders them). canRetry reports that the DC's
	// contribution barrier has not been passed — the begin signal has
	// not gone out — so a replacement messenger can restart its
	// register/configure/shares exchange (the SKs reset that DC's share
	// accumulation when the re-sent chunks restart at offset zero). A
	// nil replacement with absentOK=true declares the DC absent — its
	// blinding shares are excluded from every SK's sum via the collect
	// DC list; absentOK=false fails the round with the original error.
	Recover func(i int, name string, canRetry bool) (replacement wire.Messenger, absentOK bool)
}

// Validate checks the configuration.
func (c TallyConfig) Validate() error {
	if c.NumDCs <= 0 {
		return fmt.Errorf("privcount: need at least one DC")
	}
	if c.NumSKs <= 0 {
		return fmt.Errorf("privcount: need at least one SK (the privacy guarantee requires an honest SK)")
	}
	if c.MinDCs < 0 || c.MinDCs > c.NumDCs {
		return fmt.Errorf("privcount: DC quorum %d out of range for %d DCs", c.MinDCs, c.NumDCs)
	}
	if c.Recover != nil && len(c.NoiseWeights) > 0 {
		// The tolerant flow configures DCs one at a time as they
		// register, so per-name weights cannot be normalized over the
		// round's actual DC set the way the strict flow does; silently
		// under-noising the round would erode (ε,δ).
		return fmt.Errorf("privcount: NoiseWeights are not supported with churn recovery; use equal weights")
	}
	_, err := NewSchema(c.Stats)
	return err
}

// Tally is the tally server for one round.
type Tally struct {
	cfg    TallyConfig
	schema *Schema
	absent []string
}

// Absent lists the DCs declared absent under the quorum policy after
// Run returns successfully: the aggregate excludes their counts, their
// blinding shares, and their noise contribution.
func (t *Tally) Absent() []string {
	return append([]string(nil), t.absent...)
}

// NewTally validates the configuration and returns a tally server.
func NewTally(cfg TallyConfig) (*Tally, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	schema, err := NewSchema(cfg.Stats)
	if err != nil {
		return nil, err
	}
	return &Tally{cfg: cfg, schema: schema}, nil
}

// Schema returns the round schema.
func (t *Tally) Schema() *Schema { return t.schema }

// Run executes the round over the given established messengers (one
// per party — dedicated connections or per-round streams of
// multiplexed sessions). It blocks until every participating DC has
// reported and every SK has answered, then returns the aggregated
// noisy statistics.
//
// The protocol phases are strictly sequenced, matching the PrivCount
// deployment: registration, configuration, share distribution (sealed
// chunks relayed through the TS), collection, and aggregation. Without
// cfg.Recover the messenger order is free and any party failure fails
// the round; with it, the slice must be SKs first (see
// TallyConfig.Recover) and DC failures degrade the round down to the
// MinDCs quorum floor, with absent DCs excluded from both the report
// sum and — via the collect DC list — every SK's blinding sum.
func (t *Tally) Run(conns []wire.Messenger) (map[string][]float64, error) {
	if len(conns) != t.cfg.NumDCs+t.cfg.NumSKs {
		return nil, fmt.Errorf("privcount ts: have %d connections, want %d DCs + %d SKs",
			len(conns), t.cfg.NumDCs, t.cfg.NumSKs)
	}
	if t.cfg.Recover != nil {
		return t.runTolerant(conns)
	}

	// Phase 1: registration.
	dcConns := make(map[string]wire.Messenger)
	skConns := make(map[string]wire.Messenger)
	skKeys := make(map[string][]byte)
	var dcNames, skNames []string
	for _, c := range conns {
		var reg RegisterMsg
		if err := c.Expect(kindRegister, &reg); err != nil {
			return nil, fmt.Errorf("privcount ts: registration: %w", err)
		}
		switch reg.Role {
		case RoleDC:
			if _, dup := dcConns[reg.Name]; dup {
				return nil, fmt.Errorf("privcount ts: duplicate DC %q", reg.Name)
			}
			dcConns[reg.Name] = c
			dcNames = append(dcNames, reg.Name)
		case RoleSK:
			if _, dup := skConns[reg.Name]; dup {
				return nil, fmt.Errorf("privcount ts: duplicate SK %q", reg.Name)
			}
			if len(reg.SealPub) == 0 {
				return nil, fmt.Errorf("privcount ts: SK %q registered without a seal key", reg.Name)
			}
			skConns[reg.Name] = c
			skNames = append(skNames, reg.Name)
			skKeys[reg.Name] = reg.SealPub
		default:
			return nil, fmt.Errorf("privcount ts: unknown role %q", reg.Role)
		}
	}
	if len(dcConns) != t.cfg.NumDCs || len(skConns) != t.cfg.NumSKs {
		return nil, fmt.Errorf("privcount ts: registered %d DCs and %d SKs, want %d and %d",
			len(dcConns), len(skConns), t.cfg.NumDCs, t.cfg.NumSKs)
	}

	// Phase 2: configuration. Noise weights normalize to 1 across DCs.
	weights := t.normalizedWeights(dcNames)
	for _, name := range dcNames {
		cfg := ConfigureMsg{
			Round:       t.cfg.Round,
			Stats:       t.cfg.Stats,
			NumDCs:      t.cfg.NumDCs,
			SKNames:     skNames,
			SKKeys:      skKeys,
			NoiseWeight: weights[name],
		}
		if err := dcConns[name].Send(kindConfigure, cfg); err != nil {
			return nil, fmt.Errorf("privcount ts: configure DC %s: %w", name, err)
		}
	}
	for _, name := range skNames {
		cfg := ConfigureMsg{Round: t.cfg.Round, Stats: t.cfg.Stats, NumDCs: t.cfg.NumDCs, MinDCs: t.cfg.MinDCs}
		if err := skConns[name].Send(kindConfigure, cfg); err != nil {
			return nil, fmt.Errorf("privcount ts: configure SK %s: %w", name, err)
		}
	}

	// Phase 3: share distribution. The TS relays sealed chunks as they
	// arrive; it never holds a key that opens them, and never more than
	// one chunk of boxes per DC.
	for _, name := range dcNames {
		if err := t.relayShares(name, dcConns[name], skNames, skConns); err != nil {
			return nil, err
		}
	}

	// Phase 4: begin collection.
	for _, name := range dcNames {
		if err := dcConns[name].Send(kindBegin, BeginMsg{Round: t.cfg.Round}); err != nil {
			return nil, fmt.Errorf("privcount ts: begin DC %s: %w", name, err)
		}
	}

	// Phase 5: gather DC reports (sent whenever each DC finishes),
	// chunked.
	vectors := make([][]uint64, 0, len(conns))
	for _, name := range dcNames {
		vals, err := t.collectReport(name, dcConns[name])
		if err != nil {
			return nil, err
		}
		vectors = append(vectors, vals)
	}

	// Phase 6: collect SK sums, chunked.
	sums, err := t.collectSums(skNames, skConns, nil)
	if err != nil {
		return nil, err
	}
	vectors = append(vectors, sums...)

	// Phase 7: aggregate. Blinding telescopes; what remains is the true
	// totals plus the DCs' combined Gaussian noise.
	return Aggregate(t.schema, vectors...)
}

// runTolerant is the churn-aware flow installed by the engine: SKs
// register positionally (all required — each holds irreplaceable
// blinding state), then each DC's setup runs with the engine's
// recovery callback deciding between a restart on a rejoined session,
// a declared absence, and failing the round. Absent DCs are excluded
// from the aggregate on both sides of the telescoping sum; their noise
// shares are covered by provisioning every DC's weight at the quorum
// floor (see weightFor), so a degraded round never carries less than
// the calibrated sigma.
func (t *Tally) runTolerant(conns []wire.Messenger) (map[string][]float64, error) {
	// SKs: positional and protocol-critical.
	skConns := make(map[string]wire.Messenger)
	skKeys := make(map[string][]byte)
	var skNames []string
	for i := 0; i < t.cfg.NumSKs; i++ {
		var reg RegisterMsg
		if err := conns[i].Expect(kindRegister, &reg); err != nil {
			return nil, fmt.Errorf("privcount ts: registration: %w", err)
		}
		if reg.Role != RoleSK {
			return nil, fmt.Errorf("privcount ts: party %d registered as %q, want %q", i, reg.Role, RoleSK)
		}
		if _, dup := skConns[reg.Name]; dup {
			return nil, fmt.Errorf("privcount ts: duplicate SK %q", reg.Name)
		}
		if len(reg.SealPub) == 0 {
			return nil, fmt.Errorf("privcount ts: SK %q registered without a seal key", reg.Name)
		}
		skConns[reg.Name] = conns[i]
		skNames = append(skNames, reg.Name)
		skKeys[reg.Name] = reg.SealPub
	}
	for _, name := range skNames {
		cfg := ConfigureMsg{Round: t.cfg.Round, Stats: t.cfg.Stats, NumDCs: t.cfg.NumDCs, MinDCs: t.cfg.MinDCs}
		if err := skConns[name].Send(kindConfigure, cfg); err != nil {
			return nil, fmt.Errorf("privcount ts: configure SK %s: %w", name, err)
		}
	}

	// DC setup: register, configure, relay shares — sequentially, so
	// each SK stream has a single sender. A failed DC may be restarted
	// once on a replacement messenger while its contribution barrier
	// (the begin signal) has not been passed; the SKs reset its share
	// accumulation when the restarted upload begins at offset zero.
	type dcSlot struct {
		idx  int
		name string
		conn wire.Messenger
	}
	var present []dcSlot
	var absent []string
	owner := make(map[string]int)
	for di := 0; di < t.cfg.NumDCs; di++ {
		idx := t.cfg.NumSKs + di
		name, err := t.setupDC(idx, conns[idx], skNames, skKeys, skConns, owner)
		if err == nil {
			present = append(present, dcSlot{idx: idx, name: name, conn: conns[idx]})
			continue
		}
		repl, absentOK := t.cfg.Recover(idx, name, true)
		if repl != nil {
			retryName, retryErr := t.setupDC(idx, repl, skNames, skKeys, skConns, owner)
			if retryName != "" {
				name = retryName
			}
			if retryErr == nil {
				present = append(present, dcSlot{idx: idx, name: name, conn: repl})
				continue
			}
			err = retryErr
			_, absentOK = t.cfg.Recover(idx, name, false)
		}
		if !absentOK {
			return nil, err
		}
		if name == "" {
			name = fmt.Sprintf("dc#%d", di)
		}
		absent = append(absent, name)
	}

	// Begin, then reports; from here a lost DC cannot restart (its
	// shares are already counted into collection), only be excluded.
	begun := present[:0]
	for _, d := range present {
		if err := d.conn.Send(kindBegin, BeginMsg{Round: t.cfg.Round}); err != nil {
			if _, absentOK := t.cfg.Recover(d.idx, d.name, false); !absentOK {
				return nil, fmt.Errorf("privcount ts: begin DC %s: %w", d.name, err)
			}
			absent = append(absent, d.name)
			continue
		}
		begun = append(begun, d)
	}
	// Reports are collected concurrently — one goroutine per begun DC —
	// each streaming into a spilled per-DC buffer that folds into the
	// round's single modular accumulator only once complete, so a DC
	// that dies mid-report leaves nothing behind and the TS holds one
	// schema-sized sum plus O(chunk) per stream instead of one vector
	// per party. The recovery callback stays on this goroutine.
	acc := newSumAccum(t.schema.Size())
	type reportOutcome struct {
		d   dcSlot
		err error
	}
	repOutcomes := make(chan reportOutcome, len(begun))
	for _, d := range begun {
		go func(d dcSlot) {
			repOutcomes <- reportOutcome{d: d, err: t.collectReportInto(d.name, d.conn, acc)}
		}(d)
	}
	var reported []string
	for range begun {
		o := <-repOutcomes
		if o.err != nil {
			if _, absentOK := t.cfg.Recover(o.d.idx, o.d.name, false); !absentOK {
				return nil, o.err
			}
			absent = append(absent, o.d.name)
			continue
		}
		reported = append(reported, o.d.name)
	}
	// Completion order is nondeterministic; the collect request and the
	// absent annotation should not be.
	sort.Strings(reported)

	min := t.cfg.MinDCs
	if min <= 0 {
		min = t.cfg.NumDCs
	}
	if len(reported) < min || len(reported) < 1 {
		return nil, fmt.Errorf("privcount ts: quorum lost: %d of %d DC reports arrived, need %d (absent: %v)",
			len(reported), t.cfg.NumDCs, min, absent)
	}

	// SK sums over exactly the reported DCs: the telescoping sum must
	// exclude an absent DC's blinding on both sides. Every SK is
	// required, so its chunks fold straight into the accumulator — a
	// failure aborts the round, partial folds and all.
	if err := t.collectSumsInto(skNames, skConns, reported, acc); err != nil {
		return nil, err
	}
	sort.Strings(absent)
	t.absent = absent
	return AggregateSum(t.schema, acc.sum)
}

// setupDC drives one DC through registration, configuration, and share
// distribution.
func (t *Tally) setupDC(idx int, c wire.Messenger, skNames []string, skKeys map[string][]byte, skConns map[string]wire.Messenger, owner map[string]int) (string, error) {
	var reg RegisterMsg
	if err := c.Expect(kindRegister, &reg); err != nil {
		return "", fmt.Errorf("privcount ts: registration: %w", err)
	}
	if reg.Role != RoleDC {
		return reg.Name, fmt.Errorf("privcount ts: party %d registered as %q, want %q", idx, reg.Role, RoleDC)
	}
	if prev, dup := owner[reg.Name]; dup && prev != idx {
		return reg.Name, fmt.Errorf("privcount ts: duplicate DC %q", reg.Name)
	}
	owner[reg.Name] = idx
	cfg := ConfigureMsg{
		Round:       t.cfg.Round,
		Stats:       t.cfg.Stats,
		NumDCs:      t.cfg.NumDCs,
		SKNames:     skNames,
		SKKeys:      skKeys,
		NoiseWeight: t.weightFor(reg.Name),
	}
	if err := c.Send(kindConfigure, cfg); err != nil {
		return reg.Name, fmt.Errorf("privcount ts: configure DC %s: %w", reg.Name, err)
	}
	return reg.Name, t.relayShares(reg.Name, c, skNames, skConns)
}

// relayShares forwards one DC's sealed share chunks to every SK.
func (t *Tally) relayShares(name string, c wire.Messenger, skNames []string, skConns map[string]wire.Messenger) error {
	var shares SharesMsg
	if err := c.Expect(kindShares, &shares); err != nil {
		return fmt.Errorf("privcount ts: shares from DC %s: %w", name, err)
	}
	if shares.N != t.schema.Size() {
		return fmt.Errorf("privcount ts: DC %s sharing %d slots, want %d", name, shares.N, t.schema.Size())
	}
	for got := 0; got < shares.N; {
		var chunk ShareChunkMsg
		if err := c.Expect(kindShareChunk, &chunk); err != nil {
			return fmt.Errorf("privcount ts: share chunk from DC %s: %w", name, err)
		}
		if chunk.Off != got || chunk.Count <= 0 || chunk.Off+chunk.Count > shares.N {
			return fmt.Errorf("privcount ts: DC %s share chunk [%d,%d) does not continue at %d",
				name, chunk.Off, chunk.Off+chunk.Count, got)
		}
		if len(chunk.Boxes) != len(skNames) {
			return fmt.Errorf("privcount ts: DC %s sent %d boxes, want %d", name, len(chunk.Boxes), len(skNames))
		}
		for _, sk := range skNames {
			box, ok := chunk.Boxes[sk]
			if !ok {
				return fmt.Errorf("privcount ts: DC %s missing box for SK %s", name, sk)
			}
			relay := RelayMsg{From: name, Off: chunk.Off, Count: chunk.Count, N: shares.N, Box: box}
			if err := skConns[sk].Send(kindRelay, relay); err != nil {
				return fmt.Errorf("privcount ts: relay to SK %s: %w", sk, err)
			}
		}
		got += chunk.Count
	}
	return nil
}

// collectReport gathers one DC's chunked, blinded, noised report.
func (t *Tally) collectReport(name string, c wire.Messenger) ([]uint64, error) {
	var rep ReportMsg
	if err := c.Expect(kindReport, &rep); err != nil {
		return nil, fmt.Errorf("privcount ts: report from DC %s: %w", name, err)
	}
	if rep.Round != t.cfg.Round {
		return nil, fmt.Errorf("privcount ts: DC %s reported round %d, want %d", name, rep.Round, t.cfg.Round)
	}
	vals, err := recvValues(c, rep.N)
	if err != nil {
		return nil, fmt.Errorf("privcount ts: report from DC %s: %w", name, err)
	}
	return vals, nil
}

// collectReportInto streams one DC's report into a spilled buffer and,
// only once every chunk has arrived, folds it into the round
// accumulator. The two phases matter: a DC that dies mid-report must
// contribute nothing, because its blinding will be excluded from the
// SK sums — so partial folds would corrupt the telescoping sum.
func (t *Tally) collectReportInto(name string, c wire.Messenger, acc *sumAccum) error {
	var rep ReportMsg
	if err := c.Expect(kindReport, &rep); err != nil {
		return fmt.Errorf("privcount ts: report from DC %s: %w", name, err)
	}
	if rep.Round != t.cfg.Round {
		return fmt.Errorf("privcount ts: DC %s reported round %d, want %d", name, rep.Round, t.cfg.Round)
	}
	if rep.N != t.schema.Size() {
		return fmt.Errorf("privcount ts: DC %s report has %d slots, want %d", name, rep.N, t.schema.Size())
	}
	buf, err := newU64Spill(rep.N)
	if err != nil {
		return fmt.Errorf("privcount ts: report spill for DC %s: %w", name, err)
	}
	defer buf.Close()
	err = recvValuesFunc(c, rep.N, func(off int, vals []uint64) error {
		return buf.write(off, vals)
	})
	if err != nil {
		return fmt.Errorf("privcount ts: report from DC %s: %w", name, err)
	}
	return forEachChunk(rep.N, func(off, end int) error {
		vals, err := buf.readRange(off, end-off)
		if err != nil {
			return fmt.Errorf("privcount ts: report fold for DC %s: %w", name, err)
		}
		acc.fold(off, vals)
		return nil
	})
}

// collectSumsInto streams every SK's blinding sums straight into the
// round accumulator. Unlike DC reports, no buffer-then-fold staging is
// needed: every SK is required, so any SK failure aborts the whole
// round and a partially folded sum is never observed.
func (t *Tally) collectSumsInto(skNames []string, skConns map[string]wire.Messenger, dcs []string, acc *sumAccum) error {
	for _, name := range skNames {
		if err := skConns[name].Send(kindCollect, CollectMsg{Round: t.cfg.Round, DCs: dcs}); err != nil {
			return fmt.Errorf("privcount ts: collect SK %s: %w", name, err)
		}
	}
	for _, name := range skNames {
		var sums SumsMsg
		if err := skConns[name].Expect(kindSums, &sums); err != nil {
			return fmt.Errorf("privcount ts: sums from SK %s: %w", name, err)
		}
		if sums.N != t.schema.Size() {
			return fmt.Errorf("privcount ts: SK %s sums have %d slots, want %d", name, sums.N, t.schema.Size())
		}
		err := recvValuesFunc(skConns[name], sums.N, func(off int, vals []uint64) error {
			acc.fold(off, vals)
			return nil
		})
		if err != nil {
			return fmt.Errorf("privcount ts: sums from SK %s: %w", name, err)
		}
	}
	return nil
}

// collectSums asks every SK for its blinding sums over the given DC
// list (nil: all completed vectors, the pre-churn behavior).
func (t *Tally) collectSums(skNames []string, skConns map[string]wire.Messenger, dcs []string) ([][]uint64, error) {
	for _, name := range skNames {
		if err := skConns[name].Send(kindCollect, CollectMsg{Round: t.cfg.Round, DCs: dcs}); err != nil {
			return nil, fmt.Errorf("privcount ts: collect SK %s: %w", name, err)
		}
	}
	out := make([][]uint64, 0, len(skNames))
	for _, name := range skNames {
		var sums SumsMsg
		if err := skConns[name].Expect(kindSums, &sums); err != nil {
			return nil, fmt.Errorf("privcount ts: sums from SK %s: %w", name, err)
		}
		vals, err := recvValues(skConns[name], sums.N)
		if err != nil {
			return nil, fmt.Errorf("privcount ts: sums from SK %s: %w", name, err)
		}
		out = append(out, vals)
	}
	return out, nil
}

// weightFor resolves one DC's noise weight in the tolerant flow, where
// DC names are learned incrementally (Validate rejects NoiseWeights
// together with Recover, because per-name weights cannot be normalized
// over a DC set that is still registering). Weights are provisioned at
// the quorum floor, not the DC count: an absent DC's noise share
// travels in its never-sent report, so 1/NumDCs shares would leave a
// round degraded to k of n DCs with only k/n of the calibrated
// Gaussian variance — silently eroding (ε,δ). At 1/MinDCs every
// outcome the quorum admits carries at least the full calibrated
// sigma; a full-strength round is over-noised by NumDCs/MinDCs in
// variance, the price of not knowing at configure time which DCs will
// survive to report, and the accountant's nominal per-round charge
// stays an upper bound on the realized epsilon.
func (t *Tally) weightFor(string) float64 {
	min := t.cfg.MinDCs
	if min <= 0 || min > t.cfg.NumDCs {
		min = t.cfg.NumDCs
	}
	return 1 / float64(min)
}

func (t *Tally) normalizedWeights(dcNames []string) map[string]float64 {
	out := make(map[string]float64, len(dcNames))
	if len(t.cfg.NoiseWeights) == 0 {
		for _, n := range dcNames {
			out[n] = 1 / float64(len(dcNames))
		}
		return out
	}
	total := 0.0
	for _, n := range dcNames {
		w := t.cfg.NoiseWeights[n]
		if w < 0 {
			w = 0
		}
		total += w
	}
	for _, n := range dcNames {
		if total > 0 {
			out[n] = t.cfg.NoiseWeights[n] / total
		} else {
			out[n] = 1 / float64(len(dcNames))
		}
	}
	return out
}
