package privcount

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/wire"
)

// Failure-injection tests: the tally server must reject malformed or
// misbehaving parties with a clear error instead of producing a bogus
// aggregate.

func tallyWith(t *testing.T, cfg TallyConfig, parties func(conns []*wire.Conn)) error {
	t.Helper()
	tally, err := NewTally(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsConns := make([]wire.Messenger, cfg.NumDCs+cfg.NumSKs)
	partyConns := make([]*wire.Conn, len(tsConns))
	for i := range tsConns {
		tsConns[i], partyConns[i] = wire.Pipe()
	}
	done := make(chan error, 1)
	go func() {
		_, err := tally.Run(tsConns)
		done <- err
	}()
	parties(partyConns)
	return <-done
}

var oneStat = []StatConfig{{Name: "s", Bins: []string{""}, Sigma: 0}}

func TestTallyRejectsUnknownRole(t *testing.T) {
	err := tallyWith(t, TallyConfig{Round: 1, Stats: oneStat, NumDCs: 1, NumSKs: 1},
		func(conns []*wire.Conn) {
			conns[0].Send(kindRegister, RegisterMsg{Role: "mallory", Name: "m"})
		})
	if err == nil || !strings.Contains(err.Error(), "unknown role") {
		t.Fatalf("want unknown-role error, got %v", err)
	}
}

func TestTallyRejectsDuplicateDCNames(t *testing.T) {
	err := tallyWith(t, TallyConfig{Round: 1, Stats: oneStat, NumDCs: 2, NumSKs: 1},
		func(conns []*wire.Conn) {
			conns[0].Send(kindRegister, RegisterMsg{Role: RoleDC, Name: "same"})
			conns[1].Send(kindRegister, RegisterMsg{Role: RoleDC, Name: "same"})
		})
	if err == nil || !strings.Contains(err.Error(), "duplicate DC") {
		t.Fatalf("want duplicate-DC error, got %v", err)
	}
}

func TestTallyRejectsSKWithoutKey(t *testing.T) {
	err := tallyWith(t, TallyConfig{Round: 1, Stats: oneStat, NumDCs: 1, NumSKs: 1},
		func(conns []*wire.Conn) {
			conns[0].Send(kindRegister, RegisterMsg{Role: RoleSK, Name: "sk"})
		})
	if err == nil || !strings.Contains(err.Error(), "seal key") {
		t.Fatalf("want missing-seal-key error, got %v", err)
	}
}

func TestTallyRejectsWrongRoleCounts(t *testing.T) {
	// Two SKs registered where one DC + one SK expected.
	err := tallyWith(t, TallyConfig{Round: 1, Stats: oneStat, NumDCs: 1, NumSKs: 1},
		func(conns []*wire.Conn) {
			var wg sync.WaitGroup
			for i, c := range conns {
				wg.Add(1)
				go func(i int, c *wire.Conn) {
					defer wg.Done()
					key, _ := NewSealKey()
					c.Send(kindRegister, RegisterMsg{
						Role: RoleSK, Name: skNameFor(i), SealPub: key.Public(),
					})
				}(i, c)
			}
			wg.Wait()
		})
	if err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("want count-mismatch error, got %v", err)
	}
}

func skNameFor(i int) string { return string(rune('a'+i)) + "-sk" }

func TestTallyRejectsWrongRoundReport(t *testing.T) {
	err := tallyWith(t, TallyConfig{Round: 5, Stats: oneStat, NumDCs: 1, NumSKs: 1},
		func(conns []*wire.Conn) {
			// Run a real SK.
			sk, _ := NewSK("sk", conns[1])
			go sk.Serve()
			// A DC that reports the wrong round.
			c := conns[0]
			c.Send(kindRegister, RegisterMsg{Role: RoleDC, Name: "dc"})
			var cfg ConfigureMsg
			if c.Expect(kindConfigure, &cfg) != nil {
				return
			}
			// Send minimal valid shares.
			schema, _ := NewSchema(cfg.Stats)
			boxes := map[string][]byte{}
			for _, skName := range cfg.SKNames {
				plain, _ := wire.EncodePayload(RandomShares(schema.Size()))
				box, _ := Seal(cfg.SKKeys[skName], plain)
				boxes[skName] = box
			}
			c.Send(kindShares, SharesMsg{From: "dc", N: schema.Size()})
			c.Send(kindShareChunk, ShareChunkMsg{Off: 0, Count: schema.Size(), Boxes: boxes})
			var begin BeginMsg
			c.Expect(kindBegin, &begin)
			c.Send(kindReport, ReportMsg{From: "dc", Round: 99, N: schema.Size()})
		})
	if err == nil || !strings.Contains(err.Error(), "round") {
		t.Fatalf("want round-mismatch error, got %v", err)
	}
}

func TestTallyRejectsMissingBox(t *testing.T) {
	err := tallyWith(t, TallyConfig{Round: 1, Stats: oneStat, NumDCs: 1, NumSKs: 1},
		func(conns []*wire.Conn) {
			sk, _ := NewSK("sk", conns[1])
			go sk.Serve() // will fail when the round aborts; ignore
			c := conns[0]
			c.Send(kindRegister, RegisterMsg{Role: RoleDC, Name: "dc"})
			var cfg ConfigureMsg
			if c.Expect(kindConfigure, &cfg) != nil {
				return
			}
			// Claim shares but include no boxes.
			schema, _ := NewSchema(cfg.Stats)
			c.Send(kindShares, SharesMsg{From: "dc", N: schema.Size()})
			c.Send(kindShareChunk, ShareChunkMsg{Off: 0, Count: schema.Size(), Boxes: map[string][]byte{}})
		})
	if err == nil || !strings.Contains(err.Error(), "boxes") {
		t.Fatalf("want missing-boxes error, got %v", err)
	}
}

// TestSKRefusesCollectBelowQuorumFloor: a TS naming fewer DCs in its
// collect request than the quorum floor it declared at configure time
// must be refused — otherwise it could isolate one DC's counters with
// only that DC's fraction of the calibrated noise.
func TestSKRefusesCollectBelowQuorumFloor(t *testing.T) {
	tsSide, skSide := wire.Pipe()
	sk, err := NewSK("sk", skSide)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- sk.Serve() }()

	var reg RegisterMsg
	if err := tsSide.Expect(kindRegister, &reg); err != nil {
		t.Fatal(err)
	}
	tsSide.Send(kindConfigure, ConfigureMsg{Round: 1, Stats: oneStat, NumDCs: 2, MinDCs: 2})
	for _, dc := range []string{"dc-0", "dc-1"} {
		plain, _ := wire.EncodePayload([]uint64{7})
		box, _ := Seal(reg.SealPub, plain)
		tsSide.Send(kindRelay, RelayMsg{From: dc, Off: 0, Count: 1, N: 1, Box: box})
	}
	tsSide.Send(kindCollect, CollectMsg{Round: 1, DCs: []string{"dc-0"}})
	err = <-errCh
	if err == nil || !strings.Contains(err.Error(), "quorum floor") {
		t.Fatalf("want quorum-floor refusal, got %v", err)
	}
}

// TestSKRejectsShortShareVector: a DC sending a wrong-length share
// vector must be caught by the SK.
func TestSKRejectsShortShareVector(t *testing.T) {
	tsSide, skSide := wire.Pipe()
	sk, err := NewSK("sk", skSide)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- sk.Serve() }()

	var reg RegisterMsg
	if err := tsSide.Expect(kindRegister, &reg); err != nil {
		t.Fatal(err)
	}
	tsSide.Send(kindConfigure, ConfigureMsg{Round: 1, Stats: oneStat, NumDCs: 1})
	// Box with too few shares (chunk claims 1 slot; box holds 3).
	plain, _ := wire.EncodePayload([]uint64{1, 2, 3})
	box, _ := Seal(reg.SealPub, plain)
	tsSide.Send(kindRelay, RelayMsg{From: "dc", Off: 0, Count: 1, N: 1, Box: box})
	err = <-errCh
	if err == nil || !strings.Contains(err.Error(), "slots") {
		t.Fatalf("want share-length error, got %v", err)
	}
}

// TestTolerantNoiseWeightProvisionsQuorumFloor: the churn-aware flow
// must hand every DC 1/MinDCs of the noise responsibility, not
// 1/NumDCs — an absent DC's noise share travels in its never-sent
// report, so quorum-floor weights are what keep a round degraded to
// MinDCs reporting DCs at (or above) the calibrated Gaussian sigma.
func TestTolerantNoiseWeightProvisionsQuorumFloor(t *testing.T) {
	recover := func(int, string, bool) (wire.Messenger, bool) { return nil, false }
	for _, tc := range []struct {
		numDCs, minDCs int
		want           float64
	}{
		{4, 2, 0.5},     // k-of-n quorum: provision at the floor
		{4, 0, 0.25},    // no floor set: all DCs required, equal shares
		{3, 3, 1.0 / 3}, // floor equals the fleet: equal shares
		{2, 1, 1.0},     // dcs=1 quorum: every DC carries full sigma
	} {
		tally, err := NewTally(TallyConfig{
			Round: 1, Stats: oneStat, NumDCs: tc.numDCs, NumSKs: 1,
			MinDCs: tc.minDCs, Recover: recover,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := tally.weightFor("any"); got != tc.want {
			t.Errorf("weightFor with %d DCs, quorum floor %d = %v, want %v",
				tc.numDCs, tc.minDCs, got, tc.want)
		}
	}
}
