package privcount

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math"
)

// FractionBits is the binary fixed-point precision: counter unit 1.0 is
// represented as 1<<FractionBits. 16 bits of fraction leave 47 bits of
// signed integer range, comfortably above any single relay's daily
// event or byte counts.
const FractionBits = 16

const fpScale = float64(uint64(1) << FractionBits)

// toFixed converts a real value to fixed point in ℤ₂⁶⁴ (two's
// complement for negatives, which modular addition handles for free).
func toFixed(v float64) uint64 {
	return uint64(int64(math.Round(v * fpScale)))
}

// fromFixed decodes a ℤ₂⁶⁴ accumulator back to a real value,
// interpreting the high bit as sign.
func fromFixed(v uint64) float64 {
	return float64(int64(v)) / fpScale
}

// StatConfig describes one statistic collected in a round: a name, its
// histogram bins (a single-valued counter has exactly one bin), and the
// Gaussian noise sigma the round allocated to it.
type StatConfig struct {
	Name  string
	Bins  []string
	Sigma float64
}

// NumBins returns the bin count.
func (s StatConfig) NumBins() int { return len(s.Bins) }

// Schema is the ordered set of statistics in a round. The flat order
// (statistic-major, then bin) defines the layout of every share and
// report vector on the wire.
type Schema struct {
	Stats []StatConfig
	index map[string]int // stat name -> offset of its first bin
	total int
}

// NewSchema validates and indexes the statistic list.
func NewSchema(stats []StatConfig) (*Schema, error) {
	s := &Schema{Stats: stats, index: make(map[string]int, len(stats))}
	for _, st := range stats {
		if st.Name == "" {
			return nil, fmt.Errorf("privcount: statistic with empty name")
		}
		if len(st.Bins) == 0 {
			return nil, fmt.Errorf("privcount: statistic %q has no bins", st.Name)
		}
		if st.Sigma < 0 {
			return nil, fmt.Errorf("privcount: statistic %q has negative sigma", st.Name)
		}
		if _, dup := s.index[st.Name]; dup {
			return nil, fmt.Errorf("privcount: duplicate statistic %q", st.Name)
		}
		s.index[st.Name] = s.total
		s.total += len(st.Bins)
	}
	if s.total == 0 {
		return nil, fmt.Errorf("privcount: empty schema")
	}
	return s, nil
}

// Size returns the total number of counter slots.
func (s *Schema) Size() int { return s.total }

// Offset returns the flat index of (stat, bin), or an error for unknown
// coordinates.
func (s *Schema) Offset(stat string, bin int) (int, error) {
	base, ok := s.index[stat]
	if !ok {
		return 0, fmt.Errorf("privcount: unknown statistic %q", stat)
	}
	st := s.Stats[s.statIdx(stat)]
	if bin < 0 || bin >= len(st.Bins) {
		return 0, fmt.Errorf("privcount: statistic %q has no bin %d", stat, bin)
	}
	return base + bin, nil
}

func (s *Schema) statIdx(name string) int {
	for i, st := range s.Stats {
		if st.Name == name {
			return i
		}
	}
	return -1
}

// Counters is a DC's counter vector over ℤ₂⁶⁴.
type Counters struct {
	schema *Schema
	vals   []uint64
}

// NewCounters allocates a zeroed counter vector for the schema.
func NewCounters(schema *Schema) *Counters {
	return &Counters{schema: schema, vals: make([]uint64, schema.Size())}
}

// Increment adds delta (in natural units, e.g. events or bytes) to the
// given statistic bin.
func (c *Counters) Increment(stat string, bin int, delta float64) error {
	off, err := c.schema.Offset(stat, bin)
	if err != nil {
		return err
	}
	c.vals[off] += toFixed(delta)
	return nil
}

// AddBlinding adds a whole share vector (mod 2⁶⁴) into the counters.
func (c *Counters) AddBlinding(shares []uint64) error {
	if len(shares) != len(c.vals) {
		return fmt.Errorf("privcount: share vector length %d, want %d", len(shares), len(c.vals))
	}
	return c.AddBlindingAt(0, shares)
}

// AddBlindingAt adds a share slice (mod 2⁶⁴) into the counter slots
// starting at off — the chunked share-distribution path.
func (c *Counters) AddBlindingAt(off int, shares []uint64) error {
	if off < 0 || off+len(shares) > len(c.vals) {
		return fmt.Errorf("privcount: share slice [%d,%d) outside %d slots", off, off+len(shares), len(c.vals))
	}
	for i, s := range shares {
		c.vals[off+i] += s
	}
	return nil
}

// AddNoise adds Gaussian noise to every bin: each statistic's sigma is
// scaled by sqrt(weight), the DC's share of the round's noise
// responsibility, so the DCs jointly produce the full calibrated sigma.
func (c *Counters) AddNoise(gaussian func(sigma float64) float64, weight float64) {
	if weight <= 0 {
		return
	}
	scale := math.Sqrt(weight)
	i := 0
	for _, st := range c.schema.Stats {
		for b := 0; b < len(st.Bins); b++ {
			if st.Sigma > 0 {
				c.vals[i] += toFixed(gaussian(st.Sigma * scale))
			}
			i++
		}
	}
}

// Snapshot returns a copy of the raw vector for transmission.
func (c *Counters) Snapshot() []uint64 {
	out := make([]uint64, len(c.vals))
	copy(out, c.vals)
	return out
}

// RandomShares draws a uniformly random blinding vector of n slots from
// the cryptographic randomness source.
func RandomShares(n int) []uint64 {
	buf := make([]byte, 8*n)
	if _, err := rand.Read(buf); err != nil {
		panic("privcount: crypto/rand failed: " + err.Error())
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return out
}

// Aggregate sums report vectors mod 2⁶⁴ and decodes fixed point. Inputs
// are the DC reports (blinded counts plus noise) and the SK sums
// (negated blinding totals); their modular sum telescopes to counts
// plus noise.
func Aggregate(schema *Schema, vectors ...[]uint64) (map[string][]float64, error) {
	sum := make([]uint64, schema.Size())
	for _, v := range vectors {
		if len(v) != len(sum) {
			return nil, fmt.Errorf("privcount: aggregate vector length %d, want %d", len(v), len(sum))
		}
		for i, x := range v {
			sum[i] += x
		}
	}
	return AggregateSum(schema, sum)
}

// AggregateSum decodes an already-telescoped modular accumulator — the
// streaming tolerant flow folds every report and blinding vector into
// one sum chunk-wise instead of buffering them, then decodes it here.
func AggregateSum(schema *Schema, sum []uint64) (map[string][]float64, error) {
	if len(sum) != schema.Size() {
		return nil, fmt.Errorf("privcount: aggregate sum length %d, want %d", len(sum), schema.Size())
	}
	out := make(map[string][]float64, len(schema.Stats))
	i := 0
	for _, st := range schema.Stats {
		vals := make([]float64, len(st.Bins))
		for b := range vals {
			vals[b] = fromFixed(sum[i])
			i++
		}
		out[st.Name] = vals
	}
	return out, nil
}
