// Package privcount implements the PrivCount distributed measurement
// protocol (Jansen & Johnson, CCS 2016) as deployed in the paper: a
// tally server (TS), data collectors (DCs) attached to instrumented Tor
// relays, and share keepers (SKs). DCs maintain counters blinded with
// random shares, one per SK, so no single party ever sees a true count;
// DCs add calibrated Gaussian noise so the aggregate is differentially
// private; the TS learns only the noisy totals.
//
// Counters live in ℤ₂⁶⁴ with binary fixed-point scaling so the
// real-valued noise survives modular blinding exactly, following the
// PrivCount design. Multi-bin histogram counters provide the
// set-membership counting the paper added for its domain, country, and
// onion-service measurements (§3.1).
//
// # Key types
//
//   - TallyConfig / Tally: one round from the TS's perspective,
//     including the MinDCs quorum floor and the engine's Recover
//     callback; Tally.Absent annotates a degraded round.
//   - DC: the per-relay collector — Setup distributes sealed blinding
//     shares, Increment counts events, Finish reports noised blinded
//     totals.
//   - SK: the share keeper, accumulating each DC's negated shares
//     per-DC so the collect request can include exactly the DCs that
//     reported.
//   - Schema / Counters: the statistic layout and fixed-point counter
//     vector.
//
// # Invariants
//
//   - The aggregate telescopes only when DC reports and SK sums cover
//     the same DC set: the collect message's DC list keeps both sides
//     aligned when churn drops a DC after share distribution. An SK
//     refuses a collect naming fewer DCs than the quorum floor the TS
//     declared at configure time, so the TS cannot adaptively subset
//     the aggregate toward a single DC's under-noised counters.
//   - A share-chunk restarting at offset zero resets that DC's
//     accumulation at the SK — the restart semantics behind a rejoined
//     DC re-sending its shares.
//   - The TS never holds a key that opens a sealed share box, and
//     never more than one chunk of boxes per DC in flight.
//   - A round may complete without a DC (its counts, blinds, and noise
//     share are all excluded) but never without an SK.
//   - The tolerant flow's TS residency is one schema-sized modular
//     accumulator plus O(chunk) per in-flight stream: DC reports are
//     collected concurrently, each buffered whole on spill storage
//     (internal/spill) and folded into the striped accumulator only
//     once complete — a DC that dies mid-report contributes nothing,
//     which the telescoping sum requires, since its blinding is
//     excluded from the SK sums. SK sums fold directly: every SK is
//     required, so a partial fold is never observed.
package privcount
