package privcount

// Wire message kinds exchanged between the PrivCount parties. Every
// message travels as a wire.Frame whose payload is the gob encoding of
// one of these structs.
const (
	kindRegister  = "privcount/register"
	kindConfigure = "privcount/configure"
	kindShares    = "privcount/shares"
	kindRelay     = "privcount/relay-shares"
	kindBegin     = "privcount/begin"
	kindReport    = "privcount/report"
	kindCollect   = "privcount/collect"
	kindSums      = "privcount/sums"
	kindResults   = "privcount/results"
)

// Party roles.
const (
	RoleDC = "dc"
	RoleSK = "sk"
)

// RegisterMsg announces a party to the tally server. Share keepers
// include their sealed-box public key.
type RegisterMsg struct {
	Role    string
	Name    string
	SealPub []byte
}

// ConfigureMsg carries the round configuration from the TS to every
// party. DCs learn the statistics schema, their noise weight, and the
// SK public keys to seal blinding shares to; SKs learn the schema size
// and how many DC share vectors to expect.
type ConfigureMsg struct {
	Round       uint64
	Stats       []StatConfig
	NumDCs      int
	SKNames     []string
	SKKeys      map[string][]byte
	NoiseWeight float64
}

// SharesMsg carries a DC's sealed blinding shares, one box per SK. The
// TS relays each box to its SK without being able to open it.
type SharesMsg struct {
	From  string
	Boxes map[string][]byte
}

// RelayMsg delivers one DC's sealed box to a share keeper.
type RelayMsg struct {
	From string
	Box  []byte
}

// BeginMsg tells DCs the collection phase has started.
type BeginMsg struct {
	Round uint64
}

// ReportMsg is a DC's end-of-round report: blinded, noised counters.
type ReportMsg struct {
	From   string
	Round  uint64
	Values []uint64
}

// CollectMsg asks a share keeper for its blinding sums.
type CollectMsg struct {
	Round uint64
}

// SumsMsg is a share keeper's response: the negated sum of all blinding
// shares it received, per counter slot.
type SumsMsg struct {
	From   string
	Round  uint64
	Values []uint64
}

// ResultsMsg is the TS's final output broadcast, used by the CLI
// deployment so every operator sees the same result.
type ResultsMsg struct {
	Round  uint64
	Values map[string][]float64
}
