package privcount

import (
	"fmt"

	"repro/internal/wire"
)

// Wire message kinds exchanged between the PrivCount parties. Every
// message travels as a wire.Frame whose payload is the gob encoding of
// one of these structs. Counter vectors and blinding shares travel as
// bounded chunk frames after a header, never as one frame.
const (
	kindRegister   = "privcount/register"
	kindConfigure  = "privcount/configure"
	kindShares     = "privcount/shares"
	kindShareChunk = "privcount/share-chunk"
	kindRelay      = "privcount/relay-shares"
	kindBegin      = "privcount/begin"
	kindReport     = "privcount/report"
	kindCollect    = "privcount/collect"
	kindSums       = "privcount/sums"
	kindChunk      = "privcount/chunk"
	kindResults    = "privcount/results"
)

// ChunkSlots is how many uint64 counter slots travel per chunk frame
// (and per sealed box): 32 KiB of payload, far below any frame cap.
const ChunkSlots = 4096

// forEachChunk invokes fn(off, end) over [0, n) in ChunkSlots-sized
// ranges.
func forEachChunk(n int, fn func(off, end int) error) error {
	for off := 0; off < n; off += ChunkSlots {
		end := off + ChunkSlots
		if end > n {
			end = n
		}
		if err := fn(off, end); err != nil {
			return err
		}
	}
	return nil
}

// sendValues streams a counter vector as bounded chunks after its
// header has announced len(v) slots.
func sendValues(m wire.Messenger, v []uint64) error {
	return forEachChunk(len(v), func(off, end int) error {
		return m.Send(kindChunk, ValueChunkMsg{Off: off, Values: v[off:end]})
	})
}

// recvValues collects a chunked vector of n slots.
func recvValues(m wire.Messenger, n int) ([]uint64, error) {
	out := make([]uint64, 0, n)
	err := recvValuesFunc(m, n, func(_ int, vals []uint64) error {
		out = append(out, vals...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// recvValuesFunc consumes chunk frames until n slots have arrived,
// invoking fn for each chunk as it lands — for callers that fold or
// spill the vector instead of buffering it whole. Chunks must tile
// [0, n) in order.
func recvValuesFunc(m wire.Messenger, n int, fn func(off int, vals []uint64) error) error {
	for off := 0; off < n; {
		var c ValueChunkMsg
		if err := m.Expect(kindChunk, &c); err != nil {
			return err
		}
		if c.Off != off || len(c.Values) == 0 || c.Off+len(c.Values) > n {
			return fmt.Errorf("privcount: chunk [%d,%d) does not continue vector at %d/%d",
				c.Off, c.Off+len(c.Values), off, n)
		}
		if err := fn(off, c.Values); err != nil {
			return err
		}
		off += len(c.Values)
	}
	return nil
}

// Party roles.
const (
	RoleDC = "dc"
	RoleSK = "sk"
)

// RegisterMsg announces a party to the tally server. Share keepers
// include their sealed-box public key.
type RegisterMsg struct {
	Role    string
	Name    string
	SealPub []byte
}

// ConfigureMsg carries the round configuration from the TS to every
// party. DCs learn the statistics schema, their noise weight, and the
// SK public keys to seal blinding shares to; SKs learn the schema size,
// how many DC share vectors to expect, and the round's declared DC
// quorum floor (MinDCs): an SK refuses a collect request naming fewer
// DCs, so a TS cannot adaptively subset the aggregate below the policy
// it declared before collection began.
type ConfigureMsg struct {
	Round       uint64
	Stats       []StatConfig
	NumDCs      int
	MinDCs      int
	SKNames     []string
	SKKeys      map[string][]byte
	NoiseWeight float64
}

// SharesMsg opens a DC's blinding-share distribution: the share vector
// follows as ShareChunkMsg frames, each sealing one slot range to every
// SK. The TS relays each box to its SK without being able to open it.
type SharesMsg struct {
	From string
	// N is the schema slot count the chunks must tile.
	N int
}

// ShareChunkMsg carries one slot range of a DC's blinding shares, one
// independently sealed box per SK. Chunked sealing bounds every frame
// (and every SK's working set) by the chunk size, not the schema size.
type ShareChunkMsg struct {
	Off, Count int
	Boxes      map[string][]byte
}

// RelayMsg delivers one chunk of one DC's sealed shares to a share
// keeper.
type RelayMsg struct {
	From       string
	Off, Count int
	N          int // total slots in the DC's vector
	Box        []byte
}

// BeginMsg tells DCs the collection phase has started.
type BeginMsg struct {
	Round uint64
}

// ReportMsg opens a DC's end-of-round report: blinded, noised counters,
// chunked as ValueChunkMsg frames.
type ReportMsg struct {
	From  string
	Round uint64
	N     int
}

// CollectMsg asks a share keeper for its blinding sums. DCs lists the
// data collectors whose reports the tally actually holds: the SK sums
// exactly those DCs' blinding shares, so a DC that distributed shares
// but never reported (churn, crash) is excluded on both sides of the
// telescoping sum instead of corrupting the aggregate. An empty list
// means all DCs whose vectors completed (the pre-churn wire format).
type CollectMsg struct {
	Round uint64
	DCs   []string
}

// SumsMsg opens a share keeper's response — the negated sum of all
// blinding shares it received — chunked as ValueChunkMsg frames.
type SumsMsg struct {
	From  string
	Round uint64
	N     int
}

// ValueChunkMsg carries one slot range of a counter vector.
type ValueChunkMsg struct {
	Off    int
	Values []uint64
}

// ResultsMsg is the TS's final output broadcast, used by the CLI
// deployment so every operator sees the same result.
type ResultsMsg struct {
	Round  uint64
	Values map[string][]float64
}
