package privcount

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/parallel"
)

// Sealed boxes carry a DC's blinding shares to each share keeper via
// the tally server. The TS relays them but must not read them — if it
// could, it could unblind individual DC counts. Each box is an
// ephemeral-static X25519 agreement with an AES-256-GCM payload.

// SealKey is a share keeper's box keypair.
type SealKey struct {
	priv *ecdh.PrivateKey
}

// NewSealKey generates a keypair.
func NewSealKey() (*SealKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("privcount: seal keygen: %w", err)
	}
	return &SealKey{priv: priv}, nil
}

// Public returns the public key bytes DCs seal to.
func (k *SealKey) Public() []byte { return k.priv.PublicKey().Bytes() }

// ErrSealOpen is returned when a sealed box fails to authenticate.
var ErrSealOpen = errors.New("privcount: sealed box authentication failed")

// Seal encrypts plaintext to the recipient public key. Output layout:
// ephemeral X25519 public key (32 bytes) || GCM nonce || ciphertext.
func Seal(recipientPub []byte, plaintext []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(recipientPub)
	if err != nil {
		return nil, fmt.Errorf("privcount: bad recipient key: %w", err)
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	shared, err := eph.ECDH(pub)
	if err != nil {
		return nil, err
	}
	aead, err := newAEAD(shared, eph.PublicKey().Bytes(), recipientPub)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	out := make([]byte, 0, 32+len(nonce)+len(plaintext)+aead.Overhead())
	out = append(out, eph.PublicKey().Bytes()...)
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, nil), nil
}

// Open decrypts a sealed box with the recipient's private key.
func (k *SealKey) Open(box []byte) ([]byte, error) {
	if len(box) < 32 {
		return nil, ErrSealOpen
	}
	ephPub, err := ecdh.X25519().NewPublicKey(box[:32])
	if err != nil {
		return nil, ErrSealOpen
	}
	shared, err := k.priv.ECDH(ephPub)
	if err != nil {
		return nil, ErrSealOpen
	}
	aead, err := newAEAD(shared, box[:32], k.Public())
	if err != nil {
		return nil, err
	}
	ns := aead.NonceSize()
	if len(box) < 32+ns {
		return nil, ErrSealOpen
	}
	pt, err := aead.Open(nil, box[32:32+ns], box[32+ns:], nil)
	if err != nil {
		return nil, ErrSealOpen
	}
	return pt, nil
}

// newAEAD derives an AES-256-GCM AEAD from the ECDH shared secret and
// both public keys (so a box is bound to its key pair).
func newAEAD(shared, ephPub, recipPub []byte) (cipher.AEAD, error) {
	h := sha256.New()
	h.Write([]byte("privcount/seal/v1"))
	h.Write(shared)
	h.Write(ephPub)
	h.Write(recipPub)
	block, err := aes.NewCipher(h.Sum(nil))
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// SealBatch seals plaintexts[i] to recipients[i] across the worker
// pool; each box costs an X25519 key generation and agreement, so a DC
// distributing shares to many share keepers parallelizes cleanly. On
// any failure the first error (by index) is returned.
func SealBatch(recipients, plaintexts [][]byte) ([][]byte, error) {
	if len(recipients) != len(plaintexts) {
		return nil, errors.New("privcount: SealBatch length mismatch")
	}
	out := make([][]byte, len(recipients))
	errs := make([]error, len(recipients))
	parallel.For(len(recipients), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i], errs[i] = Seal(recipients[i], plaintexts[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OpenBatch opens every box with the recipient key across the worker
// pool, with the same error contract as SealBatch.
func (k *SealKey) OpenBatch(boxes [][]byte) ([][]byte, error) {
	out := make([][]byte, len(boxes))
	errs := make([]error, len(boxes))
	parallel.For(len(boxes), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i], errs[i] = k.Open(boxes[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
