package privcount

import (
	"encoding/binary"
	"sync"

	"repro/internal/spill"
)

// u64Spill buffers one party's counter vector on spill storage — eight
// little-endian bytes per slot — so the tolerant flow's per-DC report
// buffers (which must be held whole until the DC is known to have
// completed) cost scratch storage, not heap. One goroutine owns each
// buffer.
type u64Spill struct {
	st      *spill.Store
	decoded []uint64
}

func newU64Spill(n int) (*u64Spill, error) {
	st, err := spill.New(n, 8)
	if err != nil {
		return nil, err
	}
	return &u64Spill{st: st}, nil
}

// write stores vals at slot offset off.
func (s *u64Spill) write(off int, vals []uint64) error {
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	return s.st.WriteAt(off, buf)
}

// readRange returns count slots at off. The returned slice is reused
// across calls.
func (s *u64Spill) readRange(off, count int) ([]uint64, error) {
	raw, err := s.st.ReadRange(off, count)
	if err != nil {
		return nil, err
	}
	if cap(s.decoded) < count {
		s.decoded = make([]uint64, count)
	}
	out := s.decoded[:count]
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return out, nil
}

// Close releases the backing storage.
func (s *u64Spill) Close() error { return s.st.Close() }

// sumAccum is the round's single modular accumulator: every completed
// report and blinding-sum vector folds into it chunk-wise, under the
// chunk's stripe lock, so concurrent DC streams combine without a
// global bottleneck and the TS holds one schema-sized sum instead of
// one vector per party.
type sumAccum struct {
	sum   []uint64
	strps []sync.Mutex
}

func newSumAccum(n int) *sumAccum {
	return &sumAccum{
		sum:   make([]uint64, n),
		strps: make([]sync.Mutex, (n+ChunkSlots-1)/ChunkSlots+1),
	}
}

// fold adds vals into the accumulator mod 2⁶⁴ at slot offset off,
// locking the covering stripes in ascending order.
func (a *sumAccum) fold(off int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	lo, hi := off/ChunkSlots, (off+len(vals)-1)/ChunkSlots
	for s := lo; s <= hi; s++ {
		a.strps[s].Lock()
	}
	for i, v := range vals {
		a.sum[off+i] += v
	}
	for s := lo; s <= hi; s++ {
		a.strps[s].Unlock()
	}
}
