package privcount

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/wire"
)

// DC is a data collector: the process attached to one instrumented Tor
// relay. Between Setup and Finish the relay (or simulator) feeds it
// events via Increment; everything it ultimately sends to the tally
// server is blinded and noised.
type DC struct {
	Name string

	m        wire.Messenger
	schema   *Schema
	counters *Counters
	round    uint64
	weight   float64
	noise    *dp.NoiseSource
	ready    bool
}

// NewDC creates a data collector speaking on m — a dedicated connection
// or one round's stream of a multiplexed session. The noise source may
// be nil to use cryptographic randomness. A DC serves exactly one
// round; daemons create one per round stream.
func NewDC(name string, m wire.Messenger, noise *dp.NoiseSource) *DC {
	if noise == nil {
		noise = dp.NewNoiseSource(nil)
	}
	return &DC{Name: name, m: m, noise: noise}
}

// Setup registers with the tally server, receives the round
// configuration, generates and distributes blinding shares, and waits
// for the begin signal. On return the DC is ready to count.
func (dc *DC) Setup() error {
	if err := dc.m.Send(kindRegister, RegisterMsg{Role: RoleDC, Name: dc.Name}); err != nil {
		return fmt.Errorf("privcount dc %s: register: %w", dc.Name, err)
	}
	var cfg ConfigureMsg
	if err := dc.m.Expect(kindConfigure, &cfg); err != nil {
		return fmt.Errorf("privcount dc %s: configure: %w", dc.Name, err)
	}
	schema, err := NewSchema(cfg.Stats)
	if err != nil {
		return err
	}
	dc.schema = schema
	dc.counters = NewCounters(schema)
	dc.round = cfg.Round
	dc.weight = cfg.NoiseWeight

	// One uniformly random share slice per SK per slot chunk; the
	// counters absorb all of them, and each SK will subtract its copies
	// at aggregation time. Chunked sealing keeps every frame and every
	// box O(chunk) however many counters the round collects; the per-SK
	// boxes of one chunk are independent, so they seal as one batch.
	pubs := make([][]byte, len(cfg.SKNames))
	for i, sk := range cfg.SKNames {
		pub, ok := cfg.SKKeys[sk]
		if !ok {
			return fmt.Errorf("privcount dc %s: no seal key for SK %s", dc.Name, sk)
		}
		pubs[i] = pub
	}
	size := schema.Size()
	if err := dc.m.Send(kindShares, SharesMsg{From: dc.Name, N: size}); err != nil {
		return fmt.Errorf("privcount dc %s: shares header: %w", dc.Name, err)
	}
	err = forEachChunk(size, func(off, end int) error {
		plains := make([][]byte, len(cfg.SKNames))
		for i := range cfg.SKNames {
			shares := RandomShares(end - off)
			if err := dc.counters.AddBlindingAt(off, shares); err != nil {
				return err
			}
			plain, err := wire.EncodePayload(shares)
			if err != nil {
				return err
			}
			plains[i] = plain
		}
		sealed, err := SealBatch(pubs, plains)
		if err != nil {
			return fmt.Errorf("privcount dc %s: seal shares: %w", dc.Name, err)
		}
		boxes := make(map[string][]byte, len(cfg.SKNames))
		for i, sk := range cfg.SKNames {
			boxes[sk] = sealed[i]
		}
		err = dc.m.Send(kindShareChunk, ShareChunkMsg{Off: off, Count: end - off, Boxes: boxes})
		if err != nil {
			return fmt.Errorf("privcount dc %s: shares: %w", dc.Name, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	var begin BeginMsg
	if err := dc.m.Expect(kindBegin, &begin); err != nil {
		return fmt.Errorf("privcount dc %s: begin: %w", dc.Name, err)
	}
	dc.ready = true
	return nil
}

// Increment adds delta to a statistic bin; it must only be called
// between Setup and Finish.
func (dc *DC) Increment(stat string, bin int, delta float64) error {
	if !dc.ready {
		return fmt.Errorf("privcount dc %s: increment before setup", dc.Name)
	}
	return dc.counters.Increment(stat, bin, delta)
}

// Schema returns the round schema (nil before Setup).
func (dc *DC) Schema() *Schema { return dc.schema }

// Round reports the round this DC is configured for (zero before Setup).
func (dc *DC) Round() uint64 { return dc.round }

// Finish adds this DC's share of the Gaussian noise and streams the
// blinded report to the tally server in bounded chunks.
func (dc *DC) Finish() error {
	if !dc.ready {
		return fmt.Errorf("privcount dc %s: finish before setup", dc.Name)
	}
	dc.ready = false
	dc.counters.AddNoise(dc.noise.Gaussian, dc.weight)
	vals := dc.counters.Snapshot()
	if err := dc.m.Send(kindReport, ReportMsg{From: dc.Name, Round: dc.round, N: len(vals)}); err != nil {
		return err
	}
	return sendValues(dc.m, vals)
}
