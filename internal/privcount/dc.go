package privcount

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/wire"
)

// DC is a data collector: the process attached to one instrumented Tor
// relay. Between Setup and Finish the relay (or simulator) feeds it
// events via Increment; everything it ultimately sends to the tally
// server is blinded and noised.
type DC struct {
	Name string

	conn     *wire.Conn
	schema   *Schema
	counters *Counters
	round    uint64
	weight   float64
	noise    *dp.NoiseSource
	ready    bool
}

// NewDC creates a data collector speaking on conn. The noise source may
// be nil to use cryptographic randomness.
func NewDC(name string, conn *wire.Conn, noise *dp.NoiseSource) *DC {
	if noise == nil {
		noise = dp.NewNoiseSource(nil)
	}
	return &DC{Name: name, conn: conn, noise: noise}
}

// Setup registers with the tally server, receives the round
// configuration, generates and distributes blinding shares, and waits
// for the begin signal. On return the DC is ready to count.
func (dc *DC) Setup() error {
	if err := dc.conn.Send(kindRegister, RegisterMsg{Role: RoleDC, Name: dc.Name}); err != nil {
		return fmt.Errorf("privcount dc %s: register: %w", dc.Name, err)
	}
	var cfg ConfigureMsg
	if err := dc.conn.Expect(kindConfigure, &cfg); err != nil {
		return fmt.Errorf("privcount dc %s: configure: %w", dc.Name, err)
	}
	schema, err := NewSchema(cfg.Stats)
	if err != nil {
		return err
	}
	dc.schema = schema
	dc.counters = NewCounters(schema)
	dc.round = cfg.Round
	dc.weight = cfg.NoiseWeight

	// One uniformly random share vector per SK; the counters absorb all
	// of them, and each SK will subtract its copy at aggregation time.
	// The per-SK boxes are independent, so they seal as one batch.
	pubs := make([][]byte, len(cfg.SKNames))
	plains := make([][]byte, len(cfg.SKNames))
	for i, sk := range cfg.SKNames {
		pub, ok := cfg.SKKeys[sk]
		if !ok {
			return fmt.Errorf("privcount dc %s: no seal key for SK %s", dc.Name, sk)
		}
		pubs[i] = pub
		shares := RandomShares(schema.Size())
		if err := dc.counters.AddBlinding(shares); err != nil {
			return err
		}
		plain, err := wire.EncodePayload(shares)
		if err != nil {
			return err
		}
		plains[i] = plain
	}
	sealed, err := SealBatch(pubs, plains)
	if err != nil {
		return fmt.Errorf("privcount dc %s: seal shares: %w", dc.Name, err)
	}
	boxes := make(map[string][]byte, len(cfg.SKNames))
	for i, sk := range cfg.SKNames {
		boxes[sk] = sealed[i]
	}
	if err := dc.conn.Send(kindShares, SharesMsg{From: dc.Name, Boxes: boxes}); err != nil {
		return fmt.Errorf("privcount dc %s: shares: %w", dc.Name, err)
	}
	var begin BeginMsg
	if err := dc.conn.Expect(kindBegin, &begin); err != nil {
		return fmt.Errorf("privcount dc %s: begin: %w", dc.Name, err)
	}
	dc.ready = true
	return nil
}

// Increment adds delta to a statistic bin; it must only be called
// between Setup and Finish.
func (dc *DC) Increment(stat string, bin int, delta float64) error {
	if !dc.ready {
		return fmt.Errorf("privcount dc %s: increment before setup", dc.Name)
	}
	return dc.counters.Increment(stat, bin, delta)
}

// Schema returns the round schema (nil before Setup).
func (dc *DC) Schema() *Schema { return dc.schema }

// Finish adds this DC's share of the Gaussian noise and sends the
// blinded report to the tally server.
func (dc *DC) Finish() error {
	if !dc.ready {
		return fmt.Errorf("privcount dc %s: finish before setup", dc.Name)
	}
	dc.ready = false
	dc.counters.AddNoise(dc.noise.Gaussian, dc.weight)
	return dc.conn.Send(kindReport, ReportMsg{
		From:   dc.Name,
		Round:  dc.round,
		Values: dc.counters.Snapshot(),
	})
}
