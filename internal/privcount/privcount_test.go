package privcount

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/dp"
	"repro/internal/simtime"
	"repro/internal/wire"
)

func TestFixedPointRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 1234.5, -0.25, 1e12, -1e12} {
		got := fromFixed(toFixed(v))
		if math.Abs(got-v) > 1.0/fpScale {
			t.Errorf("fixed point %v -> %v", v, got)
		}
	}
}

func TestFixedPointSurvivesBlinding(t *testing.T) {
	// value + blind - blind == value in Z_2^64 regardless of wraparound.
	v := toFixed(-12345.678)
	blind := RandomShares(1)[0]
	if got := fromFixed(v + blind - blind); math.Abs(got-(-12345.678)) > 1.0/fpScale {
		t.Fatalf("blinding broke fixed point: %v", got)
	}
}

func TestSchemaValidation(t *testing.T) {
	good := []StatConfig{
		{Name: "streams", Bins: []string{""}, Sigma: 10},
		{Name: "countries", Bins: []string{"US", "RU", "DE"}, Sigma: 5},
	}
	s, err := NewSchema(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4 {
		t.Fatalf("size: %d", s.Size())
	}
	off, err := s.Offset("countries", 2)
	if err != nil || off != 3 {
		t.Fatalf("offset: %d %v", off, err)
	}
	if _, err := s.Offset("nope", 0); err == nil {
		t.Fatal("unknown stat must fail")
	}
	if _, err := s.Offset("countries", 3); err == nil {
		t.Fatal("bin out of range must fail")
	}

	bad := [][]StatConfig{
		{},
		{{Name: "", Bins: []string{""}}},
		{{Name: "x", Bins: nil}},
		{{Name: "x", Bins: []string{""}, Sigma: -1}},
		{{Name: "x", Bins: []string{""}}, {Name: "x", Bins: []string{""}}},
	}
	for i, stats := range bad {
		if _, err := NewSchema(stats); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestSealRoundTrip(t *testing.T) {
	k, err := NewSealKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("blinding shares")
	box, err := Seal(k.Public(), msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Open(box)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatal("seal round trip")
	}
}

func TestSealRejectsTamperingAndWrongKey(t *testing.T) {
	k1, _ := NewSealKey()
	k2, _ := NewSealKey()
	box, err := Seal(k1.Public(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k2.Open(box); err == nil {
		t.Fatal("wrong key must fail")
	}
	box[len(box)-1] ^= 0xFF
	if _, err := k1.Open(box); err == nil {
		t.Fatal("tampered box must fail")
	}
	if _, err := k1.Open([]byte{1, 2}); err == nil {
		t.Fatal("short box must fail")
	}
	if _, err := Seal([]byte{1, 2, 3}, []byte("x")); err == nil {
		t.Fatal("bad recipient key must fail")
	}
}

// runRound wires up a full deployment over in-memory pipes: one TS,
// numDCs DCs, numSKs SKs. The feed callback makes increments on the
// DCs after setup. It returns the aggregated noisy values.
func runRound(t *testing.T, stats []StatConfig, numDCs, numSKs int,
	feed func(dcs []*DC)) map[string][]float64 {
	t.Helper()

	tally, err := NewTally(TallyConfig{Round: 1, Stats: stats, NumDCs: numDCs, NumSKs: numSKs})
	if err != nil {
		t.Fatal(err)
	}

	var tsConns []wire.Messenger
	var dcs []*DC
	var setupWG, skWG sync.WaitGroup

	for i := 0; i < numSKs; i++ {
		tsSide, skSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		sk, err := NewSK(skName(i), skSide)
		if err != nil {
			t.Fatal(err)
		}
		skWG.Add(1)
		go func() {
			defer skWG.Done()
			if err := sk.Serve(); err != nil {
				t.Errorf("sk: %v", err)
			}
		}()
	}
	for i := 0; i < numDCs; i++ {
		tsSide, dcSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		noise := dp.NewNoiseSource(seededReader{simtime.Rand(uint64(i), "pc-test")})
		dc := NewDC(dcName(i), dcSide, noise)
		dcs = append(dcs, dc)
		setupWG.Add(1)
		go func() {
			defer setupWG.Done()
			if err := dc.Setup(); err != nil {
				t.Errorf("dc setup: %v", err)
			}
		}()
	}

	resultCh := make(chan map[string][]float64, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := tally.Run(tsConns)
		if err != nil {
			errCh <- err
			return
		}
		resultCh <- res
	}()

	setupWG.Wait()
	feed(dcs)
	for _, dc := range dcs {
		if err := dc.Finish(); err != nil {
			t.Fatalf("dc finish: %v", err)
		}
	}
	skWG.Wait()

	select {
	case res := <-resultCh:
		return res
	case err := <-errCh:
		t.Fatalf("tally: %v", err)
		return nil
	}
}

type seededReader struct{ r interface{ Uint64() uint64 } }

func (s seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.r.Uint64())
	}
	return len(p), nil
}

func dcName(i int) string { return string(rune('a'+i)) + "-dc" }
func skName(i int) string { return string(rune('a'+i)) + "-sk" }

// TestRoundLargeSchemaCrossesChunks runs a schema wider than one chunk
// so the share distribution, report, and sums paths all exercise
// multi-chunk transfer end to end.
func TestRoundLargeSchemaCrossesChunks(t *testing.T) {
	bins := make([]string, ChunkSlots+37)
	for i := range bins {
		bins[i] = fmt.Sprintf("b%d", i)
	}
	stats := []StatConfig{{Name: "wide", Bins: bins, Sigma: 0}}
	last := len(bins) - 1
	res := runRound(t, stats, 2, 2, func(dcs []*DC) {
		for _, dc := range dcs {
			if err := dc.Increment("wide", 0, 3); err != nil {
				t.Fatal(err)
			}
			if err := dc.Increment("wide", last, 5); err != nil {
				t.Fatal(err)
			}
		}
	})
	if got := res["wide"][0]; math.Abs(got-6) > 1e-9 {
		t.Fatalf("first bin: %v", got)
	}
	if got := res["wide"][last]; math.Abs(got-10) > 1e-9 {
		t.Fatalf("last bin: %v", got)
	}
	for _, mid := range []int{1, ChunkSlots - 1, ChunkSlots} {
		if got := res["wide"][mid]; math.Abs(got) > 1e-9 {
			t.Fatalf("bin %d should be zero: %v", mid, got)
		}
	}
}

func TestFullRoundExactWithoutNoise(t *testing.T) {
	stats := []StatConfig{
		{Name: "streams", Bins: []string{""}, Sigma: 0},
		{Name: "bins", Bins: []string{"x", "y"}, Sigma: 0},
	}
	res := runRound(t, stats, 3, 2, func(dcs []*DC) {
		for i, dc := range dcs {
			for j := 0; j <= i; j++ {
				if err := dc.Increment("streams", 0, 10); err != nil {
					t.Fatal(err)
				}
			}
			if err := dc.Increment("bins", 1, 2.5); err != nil {
				t.Fatal(err)
			}
		}
	})
	// streams: 10 + 20 + 30 = 60; bins: x=0, y=3*2.5=7.5.
	if got := res["streams"][0]; math.Abs(got-60) > 1e-9 {
		t.Fatalf("streams: %v", got)
	}
	if got := res["bins"][0]; math.Abs(got) > 1e-9 {
		t.Fatalf("bin x: %v", got)
	}
	if got := res["bins"][1]; math.Abs(got-7.5) > 1e-9 {
		t.Fatalf("bin y: %v", got)
	}
}

func TestFullRoundNoiseMagnitude(t *testing.T) {
	// With sigma=1000 and zero true counts, repeated aggregation should
	// produce noise with roughly that deviation. One round gives one
	// sample per bin; use many bins to estimate.
	bins := make([]string, 64)
	for i := range bins {
		bins[i] = string(rune('A' + i%26))
		bins[i] += string(rune('0' + i/26))
	}
	stats := []StatConfig{{Name: "noise", Bins: bins, Sigma: 1000}}
	res := runRound(t, stats, 4, 2, func([]*DC) {})
	var sumSq float64
	for _, v := range res["noise"] {
		sumSq += v * v
	}
	sd := math.Sqrt(sumSq / float64(len(bins)))
	if sd < 500 || sd > 2000 {
		t.Fatalf("noise sd %v, want ~1000", sd)
	}
}

func TestDCReportIsBlinded(t *testing.T) {
	// Capture a DC's report and confirm it does not reveal the true
	// count: the blinded fixed-point value must differ wildly from the
	// true value. We drive a minimal handshake by hand.
	stats := []StatConfig{{Name: "s", Bins: []string{""}, Sigma: 0}}
	tsSide, dcSide := wire.Pipe()
	dc := NewDC("dc-0", dcSide, dp.NewNoiseSource(seededReader{simtime.Rand(1, "b")}))

	skKey, _ := NewSealKey()
	go func() {
		var reg RegisterMsg
		tsSide.Expect(kindRegister, &reg)
		tsSide.Send(kindConfigure, ConfigureMsg{
			Round: 1, Stats: stats, NumDCs: 1,
			SKNames: []string{"sk-0"},
			SKKeys:  map[string][]byte{"sk-0": skKey.Public()},
		})
		var shares SharesMsg
		tsSide.Expect(kindShares, &shares)
		for got := 0; got < shares.N; {
			var chunk ShareChunkMsg
			if tsSide.Expect(kindShareChunk, &chunk) != nil {
				return
			}
			got += chunk.Count
		}
		tsSide.Send(kindBegin, BeginMsg{Round: 1})
	}()
	if err := dc.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := dc.Increment("s", 0, 42); err != nil {
		t.Fatal(err)
	}
	done := make(chan []uint64, 1)
	go func() {
		var rep ReportMsg
		tsSide.Expect(kindReport, &rep)
		vals, _ := recvValues(tsSide, rep.N)
		done <- vals
	}()
	if err := dc.Finish(); err != nil {
		t.Fatal(err)
	}
	vals := <-done
	if got := fromFixed(vals[0]); math.Abs(got-42) < 1e6 {
		t.Fatalf("report leaked a value near the true count: %v", got)
	}
}

// TestMissingSKSumsBreaksUnblinding verifies the share-keeper role is
// load-bearing: aggregating DC reports with only a subset of SK sums
// yields garbage, i.e. the TS alone cannot unblind.
func TestMissingSKSumsBreaksUnblinding(t *testing.T) {
	stats := []StatConfig{{Name: "s", Bins: []string{""}, Sigma: 0}}
	schema, _ := NewSchema(stats)

	c := NewCounters(schema)
	if err := c.Increment("s", 0, 1000); err != nil {
		t.Fatal(err)
	}
	sharesA := RandomShares(1)
	sharesB := RandomShares(1)
	c.AddBlinding(sharesA)
	c.AddBlinding(sharesB)

	// With both SK sums, exact recovery.
	full, err := Aggregate(schema, c.Snapshot(), negate(sharesA), negate(sharesB))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full["s"][0]-1000) > 1e-9 {
		t.Fatalf("full unblinding failed: %v", full["s"][0])
	}
	// Missing one SK leaves a uniformly random residue.
	partial, err := Aggregate(schema, c.Snapshot(), negate(sharesA))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(partial["s"][0]-1000) < 1e6 {
		t.Fatalf("partial unblinding recovered the count: %v", partial["s"][0])
	}
}

func negate(v []uint64) []uint64 {
	out := make([]uint64, len(v))
	for i, x := range v {
		out[i] = -x
	}
	return out
}

func TestTallyConfigValidation(t *testing.T) {
	stats := []StatConfig{{Name: "s", Bins: []string{""}}}
	if _, err := NewTally(TallyConfig{Stats: stats, NumDCs: 0, NumSKs: 1}); err == nil {
		t.Fatal("zero DCs must fail")
	}
	if _, err := NewTally(TallyConfig{Stats: stats, NumDCs: 1, NumSKs: 0}); err == nil {
		t.Fatal("zero SKs must fail")
	}
	if _, err := NewTally(TallyConfig{Stats: nil, NumDCs: 1, NumSKs: 1}); err == nil {
		t.Fatal("empty schema must fail")
	}
}

func TestTallyRejectsWrongConnectionCount(t *testing.T) {
	stats := []StatConfig{{Name: "s", Bins: []string{""}}}
	tally, err := NewTally(TallyConfig{Round: 1, Stats: stats, NumDCs: 2, NumSKs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tally.Run(nil); err == nil {
		t.Fatal("no connections must fail")
	}
}

func TestIncrementBeforeSetupFails(t *testing.T) {
	_, dcSide := wire.Pipe()
	dc := NewDC("dc", dcSide, nil)
	if err := dc.Increment("s", 0, 1); err == nil {
		t.Fatal("increment before setup must fail")
	}
	if err := dc.Finish(); err == nil {
		t.Fatal("finish before setup must fail")
	}
}

func TestNoiseWeightsNormalized(t *testing.T) {
	stats := []StatConfig{{Name: "s", Bins: []string{""}}}
	tally, _ := NewTally(TallyConfig{
		Round: 1, Stats: stats, NumDCs: 3, NumSKs: 1,
		NoiseWeights: map[string]float64{"a": 2, "b": 2, "c": 0},
	})
	w := tally.normalizedWeights([]string{"a", "b", "c"})
	if math.Abs(w["a"]-0.5) > 1e-12 || math.Abs(w["c"]) > 1e-12 {
		t.Fatalf("weights: %+v", w)
	}
	// Degenerate all-zero weights fall back to equal.
	tally2, _ := NewTally(TallyConfig{
		Round: 1, Stats: stats, NumDCs: 2, NumSKs: 1,
		NoiseWeights: map[string]float64{"a": 0, "b": 0},
	})
	w2 := tally2.normalizedWeights([]string{"a", "b"})
	if math.Abs(w2["a"]-0.5) > 1e-12 {
		t.Fatalf("fallback weights: %+v", w2)
	}
}

func TestAggregateLengthMismatch(t *testing.T) {
	schema, _ := NewSchema([]StatConfig{{Name: "s", Bins: []string{""}}})
	if _, err := Aggregate(schema, []uint64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func BenchmarkIncrement(b *testing.B) {
	schema, _ := NewSchema([]StatConfig{{Name: "s", Bins: make([]string, 16), Sigma: 1}})
	c := NewCounters(schema)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.vals[i%16] += toFixed(1)
	}
}

func BenchmarkFullRound8DCs(b *testing.B) {
	stats := []StatConfig{{Name: "s", Bins: []string{"a", "b", "c", "d"}, Sigma: 100}}
	for i := 0; i < b.N; i++ {
		tally, _ := NewTally(TallyConfig{Round: 1, Stats: stats, NumDCs: 8, NumSKs: 3})
		var tsConns []wire.Messenger
		var dcs []*DC
		var wg sync.WaitGroup
		for j := 0; j < 3; j++ {
			tsSide, skSide := wire.Pipe()
			tsConns = append(tsConns, tsSide)
			sk, _ := NewSK(skName(j), skSide)
			wg.Add(1)
			go func() { defer wg.Done(); sk.Serve() }()
		}
		var setup sync.WaitGroup
		for j := 0; j < 8; j++ {
			tsSide, dcSide := wire.Pipe()
			tsConns = append(tsConns, tsSide)
			dc := NewDC(dcName(j), dcSide, nil)
			dcs = append(dcs, dc)
			setup.Add(1)
			go func() { defer setup.Done(); dc.Setup() }()
		}
		resCh := make(chan map[string][]float64, 1)
		go func() {
			res, err := tally.Run(tsConns)
			if err != nil {
				b.Error(err)
			}
			resCh <- res
		}()
		setup.Wait()
		for _, dc := range dcs {
			dc.Increment("s", 0, 1)
			dc.Finish()
		}
		<-resCh
		wg.Wait()
	}
}
