package psc

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dp"
	"repro/internal/elgamal"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/wire"
)

type seededReader struct{ r interface{ Uint64() uint64 } }

func (s seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.r.Uint64())
	}
	return len(p), nil
}

// runRound drives a complete PSC round over pipes: the feed callback
// lets the test observe items on each DC between setup and finish.
func runRound(t *testing.T, cfg Config, feed func(dcs []*DC)) Result {
	t.Helper()
	tally, err := NewTally(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var tsConns []wire.Messenger
	var dcs []*DC
	var cpWG, setupWG sync.WaitGroup

	for i := 0; i < cfg.NumCPs; i++ {
		tsSide, cpSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		noise := dp.NewNoiseSource(seededReader{simtime.Rand(uint64(i), "psc-test")})
		cp := NewCP(fmt.Sprintf("cp-%d", i), cpSide, noise)
		cpWG.Add(1)
		go func() {
			defer cpWG.Done()
			if err := cp.Serve(); err != nil {
				t.Errorf("cp: %v", err)
			}
		}()
	}
	for i := 0; i < cfg.NumDCs; i++ {
		tsSide, dcSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		dc := NewDC(fmt.Sprintf("dc-%d", i), dcSide)
		dcs = append(dcs, dc)
		setupWG.Add(1)
		go func() {
			defer setupWG.Done()
			if err := dc.Setup(); err != nil {
				t.Errorf("dc setup: %v", err)
			}
		}()
	}

	resCh := make(chan Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := tally.Run(tsConns)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	setupWG.Wait()
	feed(dcs)
	for _, dc := range dcs {
		if err := dc.Finish(); err != nil {
			t.Fatalf("dc finish: %v", err)
		}
	}
	cpWG.Wait()
	select {
	case res := <-resCh:
		return res
	case err := <-errCh:
		t.Fatalf("tally: %v", err)
		return Result{}
	}
}

func TestRoundExactWithoutNoise(t *testing.T) {
	// 2048 bins keep the collision probability for 5 items below 0.5%;
	// the round hash key is random, so a tight table would flake.
	cfg := Config{Round: 1, Bins: 2048, NoisePerCP: 0, ShuffleProofRounds: 6, NumDCs: 3, NumCPs: 2}
	res := runRound(t, cfg, func(dcs []*DC) {
		// 5 distinct items spread across DCs with overlap.
		dcs[0].Observe("10.0.0.1")
		dcs[0].Observe("10.0.0.2")
		dcs[1].Observe("10.0.0.2") // duplicate across DCs
		dcs[1].Observe("10.0.0.3")
		dcs[2].Observe("10.0.0.4")
		dcs[2].Observe("10.0.0.5")
		dcs[2].Observe("10.0.0.5") // duplicate within a DC
	})
	if res.Reported != 5 {
		t.Fatalf("reported %d non-empty bins, want 5 (union size)", res.Reported)
	}
	if res.Bins != 2048 || res.NoiseTrials != 0 {
		t.Fatalf("result metadata: %+v", res)
	}
}

func TestRoundWithNoiseRecoversCount(t *testing.T) {
	cfg := Config{Round: 2, Bins: 512, NoisePerCP: 40, ShuffleProofRounds: 4, NumDCs: 2, NumCPs: 3}
	const distinct = 60
	res := runRound(t, cfg, func(dcs []*DC) {
		for i := 0; i < distinct; i++ {
			dcs[i%2].Observe(fmt.Sprintf("item-%d", i))
		}
	})
	if res.NoiseTrials != 120 {
		t.Fatalf("noise trials: %d", res.NoiseTrials)
	}
	iv, err := stats.UnionCardinalityCI(stats.PSCObservation{
		Reported: res.Reported, Bins: res.Bins, NoiseTrials: res.NoiseTrials,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(distinct) {
		t.Fatalf("estimator CI %+v must contain true count %d (reported %d)", iv, distinct, res.Reported)
	}
}

func TestRoundEmptySets(t *testing.T) {
	cfg := Config{Round: 3, Bins: 32, NoisePerCP: 0, ShuffleProofRounds: 2, NumDCs: 2, NumCPs: 2}
	res := runRound(t, cfg, func([]*DC) {})
	if res.Reported != 0 {
		t.Fatalf("empty sets reported %d", res.Reported)
	}
}

func TestHonestButCuriousModeWithoutProofs(t *testing.T) {
	cfg := Config{Round: 4, Bins: 64, NoisePerCP: 8, ShuffleProofRounds: 0, NumDCs: 2, NumCPs: 2}
	res := runRound(t, cfg, func(dcs []*DC) {
		dcs[0].Observe("a")
		dcs[1].Observe("b")
	})
	// 2 occupied bins + Binomial(16, 1/2) noise: result in [2, 18].
	if res.Reported < 2 || res.Reported > 18 {
		t.Fatalf("reported %d outside feasible range", res.Reported)
	}
}

func TestSameItemSameBinAcrossDCs(t *testing.T) {
	key := []byte("k")
	for _, item := range []string{"x", "10.1.2.3", "example.onion"} {
		if binOf(key, item, 128) != binOf(key, item, 128) {
			t.Fatal("hash must be deterministic")
		}
	}
	// Different keys give (almost surely) different placements for some
	// item set — the per-round key prevents offline dictionary tests.
	diff := 0
	for i := 0; i < 32; i++ {
		item := fmt.Sprintf("item-%d", i)
		if binOf([]byte("k1"), item, 1<<20) != binOf([]byte("k2"), item, 1<<20) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("key must affect placement")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bins: 0, NumDCs: 1, NumCPs: 1},
		{Bins: 8, NoisePerCP: -1, NumDCs: 1, NumCPs: 1},
		{Bins: 8, ShuffleProofRounds: -1, NumDCs: 1, NumCPs: 1},
		{Bins: 8, NumDCs: 0, NumCPs: 1},
		{Bins: 8, NumDCs: 1, NumCPs: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewTally(Config{}); err == nil {
		t.Fatal("NewTally must validate")
	}
}

func TestObserveBeforeSetupFails(t *testing.T) {
	_, dcSide := wire.Pipe()
	dc := NewDC("dc", dcSide)
	if err := dc.Observe("x"); err == nil {
		t.Fatal("observe before setup must fail")
	}
	if err := dc.Finish(); err == nil {
		t.Fatal("finish before setup must fail")
	}
}

func TestTallyRejectsWrongConnCount(t *testing.T) {
	tally, err := NewTally(Config{Round: 1, Bins: 8, NumDCs: 1, NumCPs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tally.Run(nil); err == nil {
		t.Fatal("no connections must fail")
	}
}

// TestMaliciousCPRejected runs a tally against one honest CP and one
// cheating CP that skips the real shuffle: it echoes its input (plus
// valid noise) as the "shuffled" vector with a proof for a different
// permutation, and echoes it again as the "blinded" vector. The proofs
// cannot cover the forged stages, so the TS must reject the round.
func TestMaliciousCPRejected(t *testing.T) {
	cfg := Config{Round: 9, Bins: 16, NoisePerCP: 2, ShuffleProofRounds: 8, NumDCs: 1, NumCPs: 2}
	tally, err := NewTally(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var tsConns []wire.Messenger

	// Honest CP.
	tsSide1, cpSide1 := wire.Pipe()
	tsConns = append(tsConns, tsSide1)
	honest := NewCP("cp-a", cpSide1, nil)
	go honest.Serve() // may error when the round aborts; ignored

	// Malicious CP: runs the normal protocol but lies at the mix step.
	tsSide2, cpSide2 := wire.Pipe()
	tsConns = append(tsConns, tsSide2)
	go func() {
		conn := cpSide2
		evil := NewCP("cp-b", conn, nil)
		conn.Send(kindRegister, RegisterMsg{Role: RoleCP, Name: "cp-b", PubKey: evil.key.PK.Bytes()})
		var cc ConfigureMsg
		if conn.Expect(kindConfig, &cc) != nil {
			return
		}
		joint, _, err := elgamal.ParsePoint(cc.JointKey)
		if err != nil {
			return
		}
		var hdr VectorHeader
		if conn.Expect(kindMix, &hdr) != nil {
			return
		}
		batch, err := recvVector(conn, hdr.N)
		if err != nil {
			return
		}
		// Honest noise with valid bit proofs, so the forgery reaches the
		// shuffle verification.
		bits := make([]bool, cc.NoisePerCP)
		noiseCts, rands := elgamal.BatchEncryptBits(joint, bits)
		proofs := elgamal.BatchProveBits(joint, noiseCts, bits, rands)
		withNoise := append(append([]elgamal.Ciphertext{}, batch...), noiseCts...)
		conn.Send(kindMixed, VectorHeader{From: "cp-b", Round: cc.Round, N: len(withNoise)})
		nc := NoiseChunkMsg{Off: 0, Count: len(noiseCts), Data: encodeVector(noiseCts)}
		nc.Proofs = make([]wireBitProof, len(proofs))
		for i, pr := range proofs {
			nc.Proofs[i] = packBitProof(pr)
		}
		conn.Send(kindNoise, nc)
		// Forge: "shuffle" that is the identity, with a proof generated
		// for a real shuffle of a different vector.
		realShuffled, witness := elgamal.Shuffle(joint, withNoise)
		sendVector(conn, withNoise, 0)
		sendShuffleProof(conn, elgamal.ProveShuffle(joint, withNoise, realShuffled, witness, cc.ShuffleProofRounds), 0)
		conn.Send(kindBlind, BlindChunkMsg{Off: 0, Count: len(withNoise), Data: encodeVector(withNoise)})
	}()

	// DC.
	tsSide3, dcSide := wire.Pipe()
	tsConns = append(tsConns, tsSide3)
	dc := NewDC("dc-0", dcSide)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := dc.Setup(); err != nil {
			return
		}
		dc.Observe("victim")
		dc.Finish()
	}()

	_, err = tally.Run(tsConns)
	if err == nil {
		t.Fatal("tally must reject the malicious CP")
	}
	wg.Wait()
}

func BenchmarkRound256Bins(b *testing.B) {
	cfg := Config{Round: 1, Bins: 256, NoisePerCP: 16, ShuffleProofRounds: 2, NumDCs: 2, NumCPs: 2}
	for i := 0; i < b.N; i++ {
		tally, _ := NewTally(cfg)
		var tsConns []wire.Messenger
		var dcs []*DC
		var cpWG, setupWG sync.WaitGroup
		for j := 0; j < cfg.NumCPs; j++ {
			tsSide, cpSide := wire.Pipe()
			tsConns = append(tsConns, tsSide)
			cp := NewCP(fmt.Sprintf("cp-%d", j), cpSide, nil)
			cpWG.Add(1)
			go func() { defer cpWG.Done(); cp.Serve() }()
		}
		for j := 0; j < cfg.NumDCs; j++ {
			tsSide, dcSide := wire.Pipe()
			tsConns = append(tsConns, tsSide)
			dc := NewDC(fmt.Sprintf("dc-%d", j), dcSide)
			dcs = append(dcs, dc)
			setupWG.Add(1)
			go func() { defer setupWG.Done(); dc.Setup() }()
		}
		done := make(chan struct{})
		go func() {
			if _, err := tally.Run(tsConns); err != nil {
				b.Error(err)
			}
			close(done)
		}()
		setupWG.Wait()
		for k := 0; k < 50; k++ {
			dcs[k%2].Observe(fmt.Sprintf("item-%d", k))
		}
		for _, dc := range dcs {
			dc.Finish()
		}
		<-done
		cpWG.Wait()
	}
}

// TestTolerantAbsentDCContributesNothing: a DC that dies after
// uploading part of its table must be declared absent with none of its
// chunks in the aggregate. The tolerant flow buffers each table and
// merges it only once complete, so Result.AbsentDCs is an exact
// coverage statement — here the dying DC marks 16 bins in its aborted
// upload and the result must still count only the survivor's one item.
func TestTolerantAbsentDCContributesNothing(t *testing.T) {
	cfg := Config{
		Round: 7, Bins: 64, NoisePerCP: 0, ShuffleProofRounds: 2,
		NumDCs: 2, NumCPs: 1, MinDCs: 1, ChunkElems: 16,
		Recover: func(int, string, bool) (wire.Messenger, bool) { return nil, true },
	}
	tally, err := NewTally(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var tsConns []wire.Messenger

	// CP first: the tolerant flow registers CPs positionally.
	tsSide0, cpSide := wire.Pipe()
	tsConns = append(tsConns, tsSide0)
	cp := NewCP("cp-0", cpSide, nil)
	go cp.Serve()

	// Surviving DC.
	tsSide1, goodSide := wire.Pipe()
	tsConns = append(tsConns, tsSide1)
	good := NewDC("dc-good", goodSide)

	// Dying DC: registers, announces a full table, uploads one chunk
	// with every bin set — then its connection dies mid-upload.
	tsSide2, dyingSide := wire.Pipe()
	tsConns = append(tsConns, tsSide2)
	dying := make(chan struct{})
	go func() {
		defer close(dying)
		conn := dyingSide
		conn.Send(kindRegister, RegisterMsg{Role: RoleDC, Name: "dc-dying"})
		var cc ConfigureMsg
		if conn.Expect(kindConfig, &cc) != nil {
			return
		}
		joint, _, err := elgamal.ParsePoint(cc.JointKey)
		if err != nil {
			return
		}
		bits := make([]bool, cc.ChunkElems)
		for i := range bits {
			bits[i] = true
		}
		cts, _ := elgamal.BatchEncryptBits(joint, bits)
		conn.Send(kindTable, VectorHeader{From: "dc-dying", Round: cc.Round, N: cc.Bins})
		conn.Send(kindChunk, ChunkMsg{Off: 0, Count: len(cts), Data: encodeVector(cts)})
		conn.Close()
	}()

	resCh := make(chan Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := tally.Run(tsConns)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	if err := good.Setup(); err != nil {
		t.Fatalf("surviving dc setup: %v", err)
	}
	good.Observe("only-item")
	if err := good.Finish(); err != nil {
		t.Fatalf("surviving dc finish: %v", err)
	}
	<-dying
	select {
	case res := <-resCh:
		if len(res.AbsentDCs) != 1 || res.AbsentDCs[0] != "dc-dying" {
			t.Fatalf("AbsentDCs = %v, want [dc-dying]", res.AbsentDCs)
		}
		if res.Reported != 1 {
			t.Fatalf("reported %d bins, want 1: the absent DC's partial upload leaked into the aggregate", res.Reported)
		}
	case err := <-errCh:
		t.Fatalf("tally: %v", err)
	}
}
