package psc

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dp"
	"repro/internal/elgamal"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/wire"
)

type seededReader struct{ r interface{ Uint64() uint64 } }

func (s seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.r.Uint64())
	}
	return len(p), nil
}

// runRound drives a complete PSC round over pipes: the feed callback
// lets the test observe items on each DC between setup and finish.
func runRound(t *testing.T, cfg Config, feed func(dcs []*DC)) Result {
	t.Helper()
	tally, err := NewTally(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var tsConns []wire.Messenger
	var dcs []*DC
	var cpWG, setupWG sync.WaitGroup

	for i := 0; i < cfg.NumCPs; i++ {
		tsSide, cpSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		noise := dp.NewNoiseSource(seededReader{simtime.Rand(uint64(i), "psc-test")})
		cp := NewCP(fmt.Sprintf("cp-%d", i), cpSide, noise)
		cpWG.Add(1)
		go func() {
			defer cpWG.Done()
			if err := cp.Serve(); err != nil {
				t.Errorf("cp: %v", err)
			}
		}()
	}
	for i := 0; i < cfg.NumDCs; i++ {
		tsSide, dcSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		dc := NewDC(fmt.Sprintf("dc-%d", i), dcSide)
		dcs = append(dcs, dc)
		setupWG.Add(1)
		go func() {
			defer setupWG.Done()
			if err := dc.Setup(); err != nil {
				t.Errorf("dc setup: %v", err)
			}
		}()
	}

	resCh := make(chan Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := tally.Run(tsConns)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	setupWG.Wait()
	feed(dcs)
	for _, dc := range dcs {
		if err := dc.Finish(); err != nil {
			t.Fatalf("dc finish: %v", err)
		}
	}
	cpWG.Wait()
	select {
	case res := <-resCh:
		return res
	case err := <-errCh:
		t.Fatalf("tally: %v", err)
		return Result{}
	}
}

func TestRoundExactWithoutNoise(t *testing.T) {
	// 2048 bins keep the collision probability for 5 items below 0.5%;
	// the round hash key is random, so a tight table would flake.
	cfg := Config{Round: 1, Bins: 2048, NoisePerCP: 0, ShuffleProofRounds: 6, NumDCs: 3, NumCPs: 2}
	res := runRound(t, cfg, func(dcs []*DC) {
		// 5 distinct items spread across DCs with overlap.
		dcs[0].Observe("10.0.0.1")
		dcs[0].Observe("10.0.0.2")
		dcs[1].Observe("10.0.0.2") // duplicate across DCs
		dcs[1].Observe("10.0.0.3")
		dcs[2].Observe("10.0.0.4")
		dcs[2].Observe("10.0.0.5")
		dcs[2].Observe("10.0.0.5") // duplicate within a DC
	})
	if res.Reported != 5 {
		t.Fatalf("reported %d non-empty bins, want 5 (union size)", res.Reported)
	}
	if res.Bins != 2048 || res.NoiseTrials != 0 {
		t.Fatalf("result metadata: %+v", res)
	}
}

func TestRoundWithNoiseRecoversCount(t *testing.T) {
	cfg := Config{Round: 2, Bins: 512, NoisePerCP: 40, ShuffleProofRounds: 4, NumDCs: 2, NumCPs: 3}
	const distinct = 60
	res := runRound(t, cfg, func(dcs []*DC) {
		for i := 0; i < distinct; i++ {
			dcs[i%2].Observe(fmt.Sprintf("item-%d", i))
		}
	})
	if res.NoiseTrials != 120 {
		t.Fatalf("noise trials: %d", res.NoiseTrials)
	}
	iv, err := stats.UnionCardinalityCI(stats.PSCObservation{
		Reported: res.Reported, Bins: res.Bins, NoiseTrials: res.NoiseTrials,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(distinct) {
		t.Fatalf("estimator CI %+v must contain true count %d (reported %d)", iv, distinct, res.Reported)
	}
}

// TestRoundNonDefaultShuffleGeometry pins the end-to-end propagation of
// the shuffle parameters: an honest round with a non-default block size
// and pass count must succeed, which only happens when the TS's
// ConfigureMsg carries the same geometry the tally verifies against
// (a mismatch desynchronizes blocking on the first block).
func TestRoundNonDefaultShuffleGeometry(t *testing.T) {
	cfg := Config{Round: 11, Bins: 96, NoisePerCP: 4, ShuffleProofRounds: 2,
		ShuffleBlockElems: 16, ShufflePasses: 3, NumDCs: 2, NumCPs: 2, ChunkElems: 32}
	res := runRound(t, cfg, func(dcs []*DC) {
		dcs[0].Observe("alpha")
		dcs[1].Observe("beta")
	})
	// 2 occupied bins + Binomial(8, 1/2) noise: result in [2, 10].
	if res.Reported < 2 || res.Reported > 10 {
		t.Fatalf("reported %d outside feasible range", res.Reported)
	}
}

func TestRoundEmptySets(t *testing.T) {
	cfg := Config{Round: 3, Bins: 32, NoisePerCP: 0, ShuffleProofRounds: 2, NumDCs: 2, NumCPs: 2}
	res := runRound(t, cfg, func([]*DC) {})
	if res.Reported != 0 {
		t.Fatalf("empty sets reported %d", res.Reported)
	}
}

func TestHonestButCuriousModeWithoutProofs(t *testing.T) {
	cfg := Config{Round: 4, Bins: 64, NoisePerCP: 8, ShuffleProofRounds: 0, NumDCs: 2, NumCPs: 2}
	res := runRound(t, cfg, func(dcs []*DC) {
		dcs[0].Observe("a")
		dcs[1].Observe("b")
	})
	// 2 occupied bins + Binomial(16, 1/2) noise: result in [2, 18].
	if res.Reported < 2 || res.Reported > 18 {
		t.Fatalf("reported %d outside feasible range", res.Reported)
	}
}

func TestSameItemSameBinAcrossDCs(t *testing.T) {
	key := []byte("k")
	for _, item := range []string{"x", "10.1.2.3", "example.onion"} {
		if binOf(key, item, 128) != binOf(key, item, 128) {
			t.Fatal("hash must be deterministic")
		}
	}
	// Different keys give (almost surely) different placements for some
	// item set — the per-round key prevents offline dictionary tests.
	diff := 0
	for i := 0; i < 32; i++ {
		item := fmt.Sprintf("item-%d", i)
		if binOf([]byte("k1"), item, 1<<20) != binOf([]byte("k2"), item, 1<<20) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("key must affect placement")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bins: 0, NumDCs: 1, NumCPs: 1},
		{Bins: 8, NoisePerCP: -1, NumDCs: 1, NumCPs: 1},
		{Bins: 8, ShuffleProofRounds: -1, NumDCs: 1, NumCPs: 1},
		{Bins: 8, NumDCs: 0, NumCPs: 1},
		{Bins: 8, NumDCs: 1, NumCPs: 0},
		{Bins: 8, ShuffleBlockElems: -1, NumDCs: 1, NumCPs: 1},
		{Bins: 8, ShuffleBlockElems: maxBlockElems + 1, NumDCs: 1, NumCPs: 1},
		{Bins: 8, ShufflePasses: 17, NumDCs: 1, NumCPs: 1},
		{Bins: 8, ShuffleProofRounds: 129, NumDCs: 1, NumCPs: 1},
		// Column length over the frame budget: 2^16 bins in 16-element
		// blocks means 4096-element columns.
		{Bins: 1 << 16, ShuffleBlockElems: 16, NumDCs: 1, NumCPs: 1},
		// One pass over a multi-block vector is block-local, not a
		// shuffle: the TS would learn each occupied bin's block.
		{Bins: 4096, ShufflePasses: 1, NumDCs: 1, NumCPs: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewTally(Config{}); err == nil {
		t.Fatal("NewTally must validate")
	}
	// A single pass is fine when the vector fits one block.
	ok := Config{Bins: 512, ShufflePasses: 1, ShuffleBlockElems: 1024, NumDCs: 1, NumCPs: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("single-block single-pass config rejected: %v", err)
	}
}

func TestObserveBeforeSetupFails(t *testing.T) {
	_, dcSide := wire.Pipe()
	dc := NewDC("dc", dcSide)
	if err := dc.Observe("x"); err == nil {
		t.Fatal("observe before setup must fail")
	}
	if err := dc.Finish(); err == nil {
		t.Fatal("finish before setup must fail")
	}
}

func TestTallyRejectsWrongConnCount(t *testing.T) {
	tally, err := NewTally(Config{Round: 1, Bins: 8, NumDCs: 1, NumCPs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tally.Run(nil); err == nil {
		t.Fatal("no connections must fail")
	}
}

// tamperConn wraps a TS-side messenger and corrupts the Nth shuffled
// block announcement arriving from the CP: one output ciphertext is
// replaced with a fresh, perfectly valid encryption. The block's shadow
// commitments and openings still describe the CP's honest output, so
// this models a CP (or a relay between them) substituting a ciphertext
// inside the streaming shuffle.
type tamperConn struct {
	wire.Messenger
	joint    elgamal.Point
	skip     int // tamper the (skip+1)th block announcement
	tampered bool
}

func (tc *tamperConn) Send(kind string, v any) error {
	if kind == kindConfig {
		if cc, ok := v.(ConfigureMsg); ok {
			tc.joint, _, _ = elgamal.ParsePoint(cc.JointKey)
		}
	}
	return tc.Messenger.Send(kind, v)
}

func (tc *tamperConn) Recv() (wire.Frame, error) {
	f, err := tc.Messenger.Recv()
	if err != nil || f.Kind != kindShufBlock || tc.tampered {
		return f, err
	}
	if tc.skip > 0 {
		tc.skip--
		return f, nil
	}
	var bo BlockOutMsg
	if err := wire.DecodePayload(f.Payload, &bo); err != nil {
		return f, nil
	}
	cts, err := decodeVector(bo.Data, bo.Count)
	if err != nil {
		return f, nil
	}
	cts[0] = elgamal.Encrypt(tc.joint, elgamal.Generator())
	bo.Data = encodeVector(cts)
	if payload, err := wire.EncodePayload(bo); err == nil {
		f.Payload = payload
		tc.tampered = true
	}
	return f, nil
}

func (tc *tamperConn) Expect(kind string, out any) error {
	f, err := tc.Recv()
	if err != nil {
		return err
	}
	if f.Kind != kind {
		return fmt.Errorf("expected %q frame, got %q", kind, f.Kind)
	}
	if out == nil {
		return nil
	}
	return wire.DecodePayload(f.Payload, out)
}

// TestMaliciousCPRejected substitutes a single valid ciphertext into
// one shuffled block of an otherwise honest CP and requires the TS to
// reject the round. The single-pass shape is caught by the block's
// cut-and-choose argument or, at the latest, by the blind DLEQ check
// against the tampered block; the multi-pass shape is additionally
// pinned by the pass-continuity hashes when the CP re-streams its own
// (untampered) intermediate.
func TestMaliciousCPRejected(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		skip int
	}{
		// Single pass (vector fits one block): tamper the only block.
		{"single-pass", Config{Round: 9, Bins: 16, NoisePerCP: 2, ShuffleProofRounds: 8, NumDCs: 1, NumCPs: 2}, 0},
		// Multi-pass grid: tamper a pass-1 block; the continuity check
		// over the re-streamed intermediate must catch whatever the
		// cut-and-choose argument misses.
		{"multi-pass", Config{Round: 10, Bins: 48, NoisePerCP: 2, ShuffleProofRounds: 2,
			ShuffleBlockElems: 8, ShufflePasses: 2, NumDCs: 1, NumCPs: 2}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tally, err := NewTally(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			var tsConns []wire.Messenger

			// Honest CP.
			tsSide1, cpSide1 := wire.Pipe()
			tsConns = append(tsConns, tsSide1)
			honest := NewCP("cp-a", cpSide1, nil)
			go honest.Serve() // errors when the round aborts; ignored

			// Honest CP behind a tampering wire.
			tsSide2, cpSide2 := wire.Pipe()
			tsConns = append(tsConns, &tamperConn{Messenger: tsSide2, skip: tc.skip})
			victim := NewCP("cp-b", cpSide2, nil)
			go victim.Serve()

			// DC.
			tsSide3, dcSide := wire.Pipe()
			tsConns = append(tsConns, tsSide3)
			dc := NewDC("dc-0", dcSide)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := dc.Setup(); err != nil {
					return
				}
				dc.Observe("victim")
				dc.Finish()
			}()

			_, err = tally.Run(tsConns)
			if err == nil {
				t.Fatal("tally must reject the tampered shuffle")
			}
			for _, m := range tsConns {
				m.Close()
			}
			wg.Wait()
		})
	}
}

func BenchmarkRound256Bins(b *testing.B) {
	cfg := Config{Round: 1, Bins: 256, NoisePerCP: 16, ShuffleProofRounds: 2, NumDCs: 2, NumCPs: 2}
	for i := 0; i < b.N; i++ {
		tally, _ := NewTally(cfg)
		var tsConns []wire.Messenger
		var dcs []*DC
		var cpWG, setupWG sync.WaitGroup
		for j := 0; j < cfg.NumCPs; j++ {
			tsSide, cpSide := wire.Pipe()
			tsConns = append(tsConns, tsSide)
			cp := NewCP(fmt.Sprintf("cp-%d", j), cpSide, nil)
			cpWG.Add(1)
			go func() { defer cpWG.Done(); cp.Serve() }()
		}
		for j := 0; j < cfg.NumDCs; j++ {
			tsSide, dcSide := wire.Pipe()
			tsConns = append(tsConns, tsSide)
			dc := NewDC(fmt.Sprintf("dc-%d", j), dcSide)
			dcs = append(dcs, dc)
			setupWG.Add(1)
			go func() { defer setupWG.Done(); dc.Setup() }()
		}
		done := make(chan struct{})
		go func() {
			if _, err := tally.Run(tsConns); err != nil {
				b.Error(err)
			}
			close(done)
		}()
		setupWG.Wait()
		for k := 0; k < 50; k++ {
			dcs[k%2].Observe(fmt.Sprintf("item-%d", k))
		}
		for _, dc := range dcs {
			dc.Finish()
		}
		<-done
		cpWG.Wait()
	}
}

// TestTolerantAbsentDCContributesNothing: a DC that dies after
// uploading part of its table must be declared absent with none of its
// chunks in the aggregate. The tolerant flow buffers each table and
// merges it only once complete, so Result.AbsentDCs is an exact
// coverage statement — here the dying DC marks 16 bins in its aborted
// upload and the result must still count only the survivor's one item.
func TestTolerantAbsentDCContributesNothing(t *testing.T) {
	cfg := Config{
		Round: 7, Bins: 64, NoisePerCP: 0, ShuffleProofRounds: 2,
		NumDCs: 2, NumCPs: 1, MinDCs: 1, ChunkElems: 16,
		Recover: func(int, string, bool) (wire.Messenger, bool) { return nil, true },
	}
	tally, err := NewTally(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var tsConns []wire.Messenger

	// CP first: the tolerant flow registers CPs positionally.
	tsSide0, cpSide := wire.Pipe()
	tsConns = append(tsConns, tsSide0)
	cp := NewCP("cp-0", cpSide, nil)
	go cp.Serve()

	// Surviving DC.
	tsSide1, goodSide := wire.Pipe()
	tsConns = append(tsConns, tsSide1)
	good := NewDC("dc-good", goodSide)

	// Dying DC: registers, announces a full table, uploads one chunk
	// with every bin set — then its connection dies mid-upload.
	tsSide2, dyingSide := wire.Pipe()
	tsConns = append(tsConns, tsSide2)
	dying := make(chan struct{})
	go func() {
		defer close(dying)
		conn := dyingSide
		conn.Send(kindRegister, RegisterMsg{Role: RoleDC, Name: "dc-dying"})
		var cc ConfigureMsg
		if conn.Expect(kindConfig, &cc) != nil {
			return
		}
		joint, _, err := elgamal.ParsePoint(cc.JointKey)
		if err != nil {
			return
		}
		bits := make([]bool, cc.ChunkElems)
		for i := range bits {
			bits[i] = true
		}
		cts, _ := elgamal.BatchEncryptBits(joint, bits)
		conn.Send(kindTable, VectorHeader{From: "dc-dying", Round: cc.Round, N: cc.Bins})
		conn.Send(kindChunk, ChunkMsg{Off: 0, Count: len(cts), Data: encodeVector(cts)})
		conn.Close()
	}()

	resCh := make(chan Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := tally.Run(tsConns)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	if err := good.Setup(); err != nil {
		t.Fatalf("surviving dc setup: %v", err)
	}
	good.Observe("only-item")
	if err := good.Finish(); err != nil {
		t.Fatalf("surviving dc finish: %v", err)
	}
	<-dying
	select {
	case res := <-resCh:
		if len(res.AbsentDCs) != 1 || res.AbsentDCs[0] != "dc-dying" {
			t.Fatalf("AbsentDCs = %v, want [dc-dying]", res.AbsentDCs)
		}
		if res.Reported != 1 {
			t.Fatalf("reported %d bins, want 1: the absent DC's partial upload leaked into the aggregate", res.Reported)
		}
	case err := <-errCh:
		t.Fatalf("tally: %v", err)
	}
}
