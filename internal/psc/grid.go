package psc

import "sort"

// Shuffle-grid geometry. The streaming shuffle arranges an n-element
// vector as rows of blockElems elements and runs alternating passes:
// odd passes permute contiguous row blocks, even passes permute column
// groups — ~block-sized bundles of adjacent columns, so the per-block
// proof overhead stays amortized whatever the grid's aspect ratio.
// Each pass re-emits the vector as the concatenation of its shuffled
// blocks (an even pass therefore transposes the layout), so every
// pass's output is a fresh contiguous vector and the next pass
// re-partitions it. A row pass reaches every column and a column-group
// pass reaches every row (and every slot of the group), so after one
// of each every input index can reach every output index with a
// near-uniform marginal; more passes tighten the composed permutation
// further (grid_test.go measures the marginals).

// DefaultShuffleBlock is the shuffle block size when the round
// configuration doesn't say otherwise: at ~130 bytes per ciphertext a
// block's wire frames stay near 128 KiB, and a 2¹⁶-bin table becomes
// 64 row blocks.
const DefaultShuffleBlock = 1024

// DefaultShufflePasses is the default pass count: rows then column
// groups, the minimum giving every element full positional support.
const DefaultShufflePasses = 2

// maxBlockElems bounds the block size and the column length
// (ceil(n/block)) so any block — and its shadow and blind frames —
// fits the wire frame budget.
const maxBlockElems = 2048

// blockOf normalizes a configured shuffle block size.
func blockOf(n int) int {
	if n <= 0 {
		return DefaultShuffleBlock
	}
	return n
}

// passesOf normalizes a configured pass count.
func passesOf(n int) int {
	if n <= 0 {
		return DefaultShufflePasses
	}
	return n
}

// grid is the blocking of one n-element vector.
type grid struct {
	n     int // vector length
	block int // row length
	rows  int // ceil(n/block)
	last  int // length of the ragged last row, in (0, block]
	gcols int // columns per even-pass group
}

func newGrid(n, block int) grid {
	if block > n {
		block = n
	}
	rows := (n + block - 1) / block
	g := grid{n: n, block: block, rows: rows, last: n - (rows-1)*block}
	g.gcols = block / rows
	if g.gcols < 1 {
		g.gcols = 1
	}
	return g
}

// passes returns the effective pass count: a vector that fits one block
// is fully shuffled by a single pass, and extra passes over a single
// row would add cost without mixing.
func (g grid) passes(configured int) int {
	if g.rows == 1 {
		return 1
	}
	return configured
}

// rowPass reports whether pass p (1-based) partitions contiguously.
func rowPass(p int) bool { return p%2 == 1 }

// colLen returns the element count of column c: every column exists in
// every row except that columns at or past the ragged last row's end
// miss it.
func (g grid) colLen(c int) int {
	if c < g.last {
		return g.rows
	}
	return g.rows - 1
}

// elemsBefore returns how many elements the columns [0, c) hold.
func (g grid) elemsBefore(c int) int {
	if c <= g.last {
		return c * g.rows
	}
	return g.last*g.rows + (c-g.last)*(g.rows-1)
}

// blocks returns the number of blocks in pass p.
func (g grid) blocks(p int) int {
	if rowPass(p) {
		return g.rows
	}
	return (g.block + g.gcols - 1) / g.gcols
}

// groupCols returns the column range [cstart, cend) of even-pass block b.
func (g grid) groupCols(b int) (int, int) {
	cstart := b * g.gcols
	cend := cstart + g.gcols
	if cend > g.block {
		cend = g.block
	}
	return cstart, cend
}

// blockLen returns the element count of block b of pass p.
func (g grid) blockLen(p, b int) int {
	if rowPass(p) {
		if b == g.rows-1 {
			return g.last
		}
		return g.block
	}
	cstart, cend := g.groupCols(b)
	return g.elemsBefore(cend) - g.elemsBefore(cstart)
}

// outStart returns the emission offset of block b's output in pass p's
// output vector (blocks are emitted in order and concatenated).
func (g grid) outStart(p, b int) int {
	if rowPass(p) {
		return b * g.block
	}
	cstart, _ := g.groupCols(b)
	return g.elemsBefore(cstart)
}

// inIndex returns the input-vector index of element j of block b in
// pass p: contiguous for row passes; for even passes the group is
// walked column by column (ascending column, ascending row), which is
// what keeps the continuity hashes sequential per row.
func (g grid) inIndex(p, b, j int) int {
	if rowPass(p) {
		return b*g.block + j
	}
	cstart, cend := g.groupCols(b)
	fullCols := 0
	if cstart < g.last {
		fullCols = g.last - cstart
		if cend < g.last {
			fullCols = cend - cstart
		}
	}
	if j < fullCols*g.rows {
		return (j % g.rows * g.block) + cstart + j/g.rows
	}
	j -= fullCols * g.rows
	c := cstart + fullCols + j/(g.rows-1)
	return (j % (g.rows - 1) * g.block) + c
}

// prevBlockOf maps an input-vector index of pass p to the block of
// pass p-1 whose output contains it — the lookup the pass-continuity
// check needs to route re-streamed elements to the right incremental
// hash.
func (g grid) prevBlockOf(p, idx int) int {
	prev := p - 1
	if rowPass(prev) {
		return idx / g.block
	}
	nBlocks := g.blocks(prev)
	// First even-pass block whose range ends past idx.
	return sort.Search(nBlocks, func(b int) bool {
		return g.outStart(prev, b)+g.blockLen(prev, b) > idx
	})
}
