package psc

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/elgamal"
	"repro/internal/wire"
)

// CP is a computation party. Its mixing step is what makes the union
// count private: after every CP has appended noise, shuffled, and
// blinded, the decrypted batch reveals only how many elements were
// non-empty — and that count carries binomial noise no single CP knows.
//
// A CP's ElGamal key share is long-term: one CP value serves many
// rounds (ServeRound per round stream), concurrently if asked, the way
// the deployed daemons hold one key across a whole measurement study.
type CP struct {
	Name string

	m     wire.Messenger
	key   *elgamal.PrivateKey
	noise *dp.NoiseSource
}

// NewCP creates a computation party with a fresh ElGamal key share. A
// nil noise source selects cryptographic randomness. The messenger may
// be nil when the CP serves rounds on explicit streams via ServeRound.
func NewCP(name string, m wire.Messenger, noise *dp.NoiseSource) *CP {
	if noise == nil {
		noise = dp.NewNoiseSource(nil)
	}
	return &CP{Name: name, m: m, key: elgamal.GenerateKey(), noise: noise}
}

// Serve runs one round on the CP's bound messenger.
func (cp *CP) Serve() error { return cp.ServeRound(cp.m) }

// roundNoise is the precomputed noise contribution for one round.
type roundNoise struct {
	cts    []elgamal.Ciphertext
	proofs []elgamal.BitProof
}

// ServeRound runs the CP's side of one round over m: register, mix once
// when asked, then produce decryption shares chunk by chunk. All round
// state is local, so one CP serves many rounds concurrently.
func (cp *CP) ServeRound(m wire.Messenger) error {
	if err := m.Send(kindRegister, RegisterMsg{
		Role: RoleCP, Name: cp.Name, PubKey: cp.key.PK.Bytes(),
	}); err != nil {
		return fmt.Errorf("psc cp %s: register: %w", cp.Name, err)
	}
	var cfg ConfigureMsg
	if err := m.Expect(kindConfig, &cfg); err != nil {
		return fmt.Errorf("psc cp %s: configure: %w", cp.Name, err)
	}
	joint, _, err := elgamal.ParsePoint(cfg.JointKey)
	if err != nil {
		return fmt.Errorf("psc cp %s: joint key: %w", cp.Name, err)
	}
	// Every operation of the round multiplies against the joint key; one
	// table build here repays itself thousands of times, and is shared
	// across all concurrent rounds under the same CP set.
	elgamal.Precompute(joint)

	if err := cp.mixPhase(m, cfg, joint); err != nil {
		return err
	}
	return cp.decryptPhase(m, cfg)
}

func (cp *CP) mixPhase(m wire.Messenger, cfg ConfigureMsg, joint elgamal.Point) error {
	var hdr VectorHeader
	if err := m.Expect(kindMix, &hdr); err != nil {
		return fmt.Errorf("psc cp %s: mix request: %w", cp.Name, err)
	}
	prove := cfg.ShuffleProofRounds > 0
	chunk := chunkOf(cfg.ChunkElems)

	// The noise contribution is independent of the input, so encrypt
	// (and prove) it while input chunks are still arriving.
	noiseCh := make(chan roundNoise, 1)
	go func() {
		bits := make([]bool, cfg.NoisePerCP)
		for i := range bits {
			bits[i] = cp.noise.Binomial(1) == 1
		}
		cts, rands := elgamal.BatchEncryptBits(joint, bits)
		var proofs []elgamal.BitProof
		if prove {
			proofs = elgamal.BatchProveBits(joint, cts, bits, rands)
		}
		noiseCh <- roundNoise{cts: cts, proofs: proofs}
	}()

	batch, err := recvVector(m, hdr.N)
	if err != nil {
		return fmt.Errorf("psc cp %s: mix batch: %w", cp.Name, err)
	}
	noise := <-noiseCh

	// Stage 1: append the fair-coin noise. The TS reconstructs the
	// combined vector itself, so only the appended elements travel.
	withNoise := make([]elgamal.Ciphertext, 0, len(batch)+len(noise.cts))
	withNoise = append(withNoise, batch...)
	withNoise = append(withNoise, noise.cts...)
	if err := m.Send(kindMixed, VectorHeader{From: cp.Name, Round: cfg.Round, N: len(withNoise)}); err != nil {
		return err
	}
	err = forEachChunk(len(noise.cts), chunk, func(off, end int) error {
		nc := NoiseChunkMsg{Off: off, Count: end - off, Data: encodeVector(noise.cts[off:end])}
		if prove {
			nc.Proofs = make([]wireBitProof, end-off)
			for i, pr := range noise.proofs[off:end] {
				nc.Proofs[i] = packBitProof(pr)
			}
		}
		return m.Send(kindNoise, nc)
	})
	if err != nil {
		return err
	}

	// Stage 2: verifiable shuffle. This is the round's privacy barrier:
	// the permutation covers the whole vector, so the full batch must be
	// resident here and nowhere else.
	shuffled, witness := elgamal.Shuffle(joint, withNoise)
	if err := sendVector(m, shuffled, chunk); err != nil {
		return err
	}
	if prove {
		proof := elgamal.ProveShuffle(joint, withNoise, shuffled, witness, cfg.ShuffleProofRounds)
		if err := sendShuffleProof(m, proof, chunk); err != nil {
			return err
		}
	}

	// Stage 3: exponent blinding, proved and shipped per chunk so the
	// TS verifies (and forwards downstream) chunk k while this CP is
	// still proving chunk k+1.
	blinded, blindScalars := elgamal.BatchExpBlind(shuffled)
	return forEachChunk(len(blinded), chunk, func(off, end int) error {
		bc := BlindChunkMsg{Off: off, Count: end - off, Data: encodeVector(blinded[off:end])}
		if prove {
			bc.Proofs = make([]wireEquality, end-off)
			for i, pr := range elgamal.BatchProveBlinds(shuffled[off:end], blinded[off:end], blindScalars[off:end]) {
				bc.Proofs[i] = packEquality(pr)
			}
		}
		return m.Send(kindBlind, bc)
	})
}

// decryptPhase answers the final batch chunk by chunk: only one chunk
// of ciphertexts, shares, and proofs is ever resident.
func (cp *CP) decryptPhase(m wire.Messenger, cfg ConfigureMsg) error {
	var hdr VectorHeader
	if err := m.Expect(kindDecrypt, &hdr); err != nil {
		return fmt.Errorf("psc cp %s: decrypt request: %w", cp.Name, err)
	}
	if err := m.Send(kindShares, VectorHeader{From: cp.Name, Round: cfg.Round, N: hdr.N}); err != nil {
		return err
	}
	return recvVectorFunc(m, hdr.N, func(off int, cts []elgamal.Ciphertext) error {
		decShares := cp.key.BatchPartialDecrypt(cts)
		shares := make([]byte, 0, len(cts)*65)
		for _, sh := range decShares {
			shares = sh.Share.AppendBytes(shares)
		}
		proofs := make([]wireEquality, len(cts))
		for i, pr := range cp.key.BatchProveShares(cts, decShares) {
			proofs[i] = packEquality(pr)
		}
		return m.Send(kindShare, ShareChunkMsg{Off: off, Count: len(cts), Shares: shares, Proofs: proofs})
	})
}
