package psc

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/elgamal"
	"repro/internal/wire"
)

// CP is a computation party. Its mixing step is what makes the union
// count private: after every CP has appended noise, shuffled, and
// blinded, the decrypted batch reveals only how many elements were
// non-empty — and that count carries binomial noise no single CP knows.
type CP struct {
	Name string

	conn  *wire.Conn
	key   *elgamal.PrivateKey
	cfg   ConfigureMsg
	joint elgamal.Point
	noise *dp.NoiseSource
}

// NewCP creates a computation party with a fresh ElGamal key share. A
// nil noise source selects cryptographic randomness.
func NewCP(name string, conn *wire.Conn, noise *dp.NoiseSource) *CP {
	if noise == nil {
		noise = dp.NewNoiseSource(nil)
	}
	return &CP{Name: name, conn: conn, key: elgamal.GenerateKey(), noise: noise}
}

// Serve runs the CP's side of one round: register, mix once when asked,
// then produce decryption shares. Returns when the round completes.
func (cp *CP) Serve() error {
	if err := cp.conn.Send(kindRegister, RegisterMsg{
		Role: RoleCP, Name: cp.Name, PubKey: cp.key.PK.Bytes(),
	}); err != nil {
		return fmt.Errorf("psc cp %s: register: %w", cp.Name, err)
	}
	if err := cp.conn.Expect(kindConfig, &cp.cfg); err != nil {
		return fmt.Errorf("psc cp %s: configure: %w", cp.Name, err)
	}
	joint, _, err := elgamal.ParsePoint(cp.cfg.JointKey)
	if err != nil {
		return fmt.Errorf("psc cp %s: joint key: %w", cp.Name, err)
	}
	cp.joint = joint
	// Every operation of the round multiplies against the joint key;
	// one table build here repays itself thousands of times.
	elgamal.Precompute(cp.joint)

	if err := cp.mixPhase(); err != nil {
		return err
	}
	return cp.decryptPhase()
}

func (cp *CP) mixPhase() error {
	var mix MixMsg
	if err := cp.conn.Expect(kindMix, &mix); err != nil {
		return fmt.Errorf("psc cp %s: mix request: %w", cp.Name, err)
	}
	batch, err := decodeVector(mix.Batch, mix.N)
	if err != nil {
		return fmt.Errorf("psc cp %s: mix batch: %w", cp.Name, err)
	}
	prove := cp.cfg.ShuffleProofRounds > 0

	// Stage 1: append fair-coin noise with bit proofs, encrypting the
	// whole noise vector in one batch.
	bits := make([]bool, cp.cfg.NoisePerCP)
	for i := range bits {
		bits[i] = cp.noise.Binomial(1) == 1
	}
	noiseCts, noiseRands := elgamal.BatchEncryptBits(cp.joint, bits)
	withNoise := make([]elgamal.Ciphertext, 0, len(batch)+len(noiseCts))
	withNoise = append(withNoise, batch...)
	withNoise = append(withNoise, noiseCts...)
	var bitProofs []wireBitProof
	if prove {
		bitProofs = make([]wireBitProof, len(noiseCts))
		for i, pr := range elgamal.BatchProveBits(cp.joint, noiseCts, bits, noiseRands) {
			bitProofs[i] = packBitProof(pr)
		}
	}

	// Stage 2: verifiable shuffle.
	shuffled, witness := elgamal.Shuffle(cp.joint, withNoise)
	var shufProof wireShuffleProof
	if prove {
		shufProof = packShuffleProof(elgamal.ProveShuffle(
			cp.joint, withNoise, shuffled, witness, cp.cfg.ShuffleProofRounds))
	}

	// Stage 3: exponent blinding with DLEQ proofs, batched.
	blinded, blindScalars := elgamal.BatchExpBlind(shuffled)
	var blindProofs []wireEquality
	if prove {
		blindProofs = make([]wireEquality, len(shuffled))
		for i, pr := range elgamal.BatchProveBlinds(shuffled, blinded, blindScalars) {
			blindProofs[i] = packEquality(pr)
		}
	}

	return cp.conn.Send(kindMixed, MixedMsg{
		From:         cp.Name,
		Round:        cp.cfg.Round,
		WithNoise:    encodeVector(withNoise),
		NoiseBits:    bitProofs,
		Shuffled:     encodeVector(shuffled),
		ShuffleProof: shufProof,
		Blinded:      encodeVector(blinded),
		BlindProofs:  blindProofs,
		N:            len(withNoise),
	})
}

func (cp *CP) decryptPhase() error {
	var dec DecryptMsg
	if err := cp.conn.Expect(kindDecrypt, &dec); err != nil {
		return fmt.Errorf("psc cp %s: decrypt request: %w", cp.Name, err)
	}
	batch, err := decodeVector(dec.Batch, dec.N)
	if err != nil {
		return fmt.Errorf("psc cp %s: decrypt batch: %w", cp.Name, err)
	}
	decShares := cp.key.BatchPartialDecrypt(batch)
	shares := make([]byte, 0, len(batch)*65)
	for _, sh := range decShares {
		shares = sh.Share.AppendBytes(shares)
	}
	proofs := make([]wireEquality, len(batch))
	for i, pr := range cp.key.BatchProveShares(batch, decShares) {
		proofs[i] = packEquality(pr)
	}
	return cp.conn.Send(kindShares, SharesMsg{
		From:   cp.Name,
		Round:  cp.cfg.Round,
		Shares: shares,
		Proofs: proofs,
	})
}
