package psc

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/elgamal"
	"repro/internal/wire"
)

// CP is a computation party. Its mixing step is what makes the union
// count private: after every CP has appended noise, shuffled, and
// blinded, the decrypted batch reveals only how many elements were
// non-empty — and that count carries binomial noise no single CP knows.
type CP struct {
	Name string

	conn  *wire.Conn
	key   *elgamal.PrivateKey
	cfg   ConfigureMsg
	joint elgamal.Point
	noise *dp.NoiseSource
}

// NewCP creates a computation party with a fresh ElGamal key share. A
// nil noise source selects cryptographic randomness.
func NewCP(name string, conn *wire.Conn, noise *dp.NoiseSource) *CP {
	if noise == nil {
		noise = dp.NewNoiseSource(nil)
	}
	return &CP{Name: name, conn: conn, key: elgamal.GenerateKey(), noise: noise}
}

// Serve runs the CP's side of one round: register, mix once when asked,
// then produce decryption shares. Returns when the round completes.
func (cp *CP) Serve() error {
	if err := cp.conn.Send(kindRegister, RegisterMsg{
		Role: RoleCP, Name: cp.Name, PubKey: cp.key.PK.Bytes(),
	}); err != nil {
		return fmt.Errorf("psc cp %s: register: %w", cp.Name, err)
	}
	if err := cp.conn.Expect(kindConfig, &cp.cfg); err != nil {
		return fmt.Errorf("psc cp %s: configure: %w", cp.Name, err)
	}
	joint, _, err := elgamal.ParsePoint(cp.cfg.JointKey)
	if err != nil {
		return fmt.Errorf("psc cp %s: joint key: %w", cp.Name, err)
	}
	cp.joint = joint

	if err := cp.mixPhase(); err != nil {
		return err
	}
	return cp.decryptPhase()
}

func (cp *CP) mixPhase() error {
	var mix MixMsg
	if err := cp.conn.Expect(kindMix, &mix); err != nil {
		return fmt.Errorf("psc cp %s: mix request: %w", cp.Name, err)
	}
	batch, err := decodeVector(mix.Batch, mix.N)
	if err != nil {
		return fmt.Errorf("psc cp %s: mix batch: %w", cp.Name, err)
	}
	prove := cp.cfg.ShuffleProofRounds > 0

	// Stage 1: append fair-coin noise with bit proofs.
	withNoise := make([]elgamal.Ciphertext, 0, len(batch)+cp.cfg.NoisePerCP)
	withNoise = append(withNoise, batch...)
	var bitProofs []wireBitProof
	for i := 0; i < cp.cfg.NoisePerCP; i++ {
		bit := cp.noise.Binomial(1) == 1
		r := elgamal.RandomScalar()
		msg := elgamal.Identity()
		if bit {
			msg = elgamal.Generator()
		}
		c := elgamal.EncryptWith(cp.joint, msg, r)
		withNoise = append(withNoise, c)
		if prove {
			bitProofs = append(bitProofs, packBitProof(elgamal.ProveBit(cp.joint, c, bit, r)))
		}
	}

	// Stage 2: verifiable shuffle.
	shuffled, witness := elgamal.Shuffle(cp.joint, withNoise)
	var shufProof wireShuffleProof
	if prove {
		shufProof = packShuffleProof(elgamal.ProveShuffle(
			cp.joint, withNoise, shuffled, witness, cp.cfg.ShuffleProofRounds))
	}

	// Stage 3: per-element exponent blinding with DLEQ proofs.
	blinded := make([]elgamal.Ciphertext, len(shuffled))
	var blindProofs []wireEquality
	for i, c := range shuffled {
		s := elgamal.RandomScalar()
		blinded[i] = c.ExpBlindWith(s)
		if prove {
			blindProofs = append(blindProofs, packEquality(elgamal.ProveBlind(c, blinded[i], s)))
		}
	}

	return cp.conn.Send(kindMixed, MixedMsg{
		From:         cp.Name,
		Round:        cp.cfg.Round,
		WithNoise:    encodeVector(withNoise),
		NoiseBits:    bitProofs,
		Shuffled:     encodeVector(shuffled),
		ShuffleProof: shufProof,
		Blinded:      encodeVector(blinded),
		BlindProofs:  blindProofs,
		N:            len(withNoise),
	})
}

func (cp *CP) decryptPhase() error {
	var dec DecryptMsg
	if err := cp.conn.Expect(kindDecrypt, &dec); err != nil {
		return fmt.Errorf("psc cp %s: decrypt request: %w", cp.Name, err)
	}
	batch, err := decodeVector(dec.Batch, dec.N)
	if err != nil {
		return fmt.Errorf("psc cp %s: decrypt batch: %w", cp.Name, err)
	}
	shares := make([]byte, 0, len(batch)*65)
	proofs := make([]wireEquality, len(batch))
	for i, c := range batch {
		sh := cp.key.PartialDecrypt(c)
		shares = append(shares, sh.Share.Bytes()...)
		proofs[i] = packEquality(cp.key.ProveShare(c, sh))
	}
	return cp.conn.Send(kindShares, SharesMsg{
		From:   cp.Name,
		Round:  cp.cfg.Round,
		Shares: shares,
		Proofs: proofs,
	})
}
