package psc

import (
	"fmt"

	"repro/internal/dp"
	"repro/internal/elgamal"
	"repro/internal/wire"
)

// CP is a computation party. Its mixing step is what makes the union
// count private: after every CP has appended noise, shuffled, and
// blinded, the decrypted batch reveals only how many elements were
// non-empty — and that count carries binomial noise no single CP knows.
//
// A CP's ElGamal key share is long-term: one CP value serves many
// rounds (ServeRound per round stream), concurrently if asked, the way
// the deployed daemons hold one key across a whole measurement study.
type CP struct {
	Name string

	m     wire.Messenger
	key   *elgamal.PrivateKey
	noise *dp.NoiseSource
}

// NewCP creates a computation party with a fresh ElGamal key share. A
// nil noise source selects cryptographic randomness. The messenger may
// be nil when the CP serves rounds on explicit streams via ServeRound.
func NewCP(name string, m wire.Messenger, noise *dp.NoiseSource) *CP {
	if noise == nil {
		noise = dp.NewNoiseSource(nil)
	}
	return &CP{Name: name, m: m, key: elgamal.GenerateKey(), noise: noise}
}

// Serve runs one round on the CP's bound messenger.
func (cp *CP) Serve() error { return cp.ServeRound(cp.m) }

// roundNoise is the precomputed noise contribution for one round.
type roundNoise struct {
	cts    []elgamal.Ciphertext
	proofs []elgamal.BitProof
}

// ServeRound runs the CP's side of one round over m: register, mix once
// when asked, then produce decryption shares chunk by chunk. All round
// state is local, so one CP serves many rounds concurrently.
func (cp *CP) ServeRound(m wire.Messenger) error {
	if err := m.Send(kindRegister, RegisterMsg{
		Role: RoleCP, Name: cp.Name, PubKey: cp.key.PK.Bytes(),
	}); err != nil {
		return fmt.Errorf("psc cp %s: register: %w", cp.Name, err)
	}
	var cfg ConfigureMsg
	if err := m.Expect(kindConfig, &cfg); err != nil {
		return fmt.Errorf("psc cp %s: configure: %w", cp.Name, err)
	}
	joint, _, err := elgamal.ParsePoint(cfg.JointKey)
	if err != nil {
		return fmt.Errorf("psc cp %s: joint key: %w", cp.Name, err)
	}
	// Every operation of the round multiplies against the joint key; one
	// table build here repays itself thousands of times, and is shared
	// across all concurrent rounds under the same CP set.
	elgamal.Precompute(joint)

	if err := cp.mixPhase(m, cfg, joint); err != nil {
		return err
	}
	return cp.decryptPhase(m, cfg)
}

func (cp *CP) mixPhase(m wire.Messenger, cfg ConfigureMsg, joint elgamal.Point) error {
	var hdr VectorHeader
	if err := m.Expect(kindMix, &hdr); err != nil {
		return fmt.Errorf("psc cp %s: mix request: %w", cp.Name, err)
	}
	prove := cfg.ShuffleProofRounds > 0
	chunk := chunkOf(cfg.ChunkElems)
	total := hdr.N + cfg.NoisePerCP
	g := newGrid(total, blockOf(cfg.ShuffleBlockElems))
	passes := g.passes(passesOf(cfg.ShufflePasses))

	// The noise contribution is independent of the input, so encrypt
	// (and prove) it while input chunks are still arriving.
	noiseCh := make(chan roundNoise, 1)
	go func() {
		bits := make([]bool, cfg.NoisePerCP)
		for i := range bits {
			bits[i] = cp.noise.Binomial(1) == 1
		}
		cts, rands := elgamal.BatchEncryptBits(joint, bits)
		var proofs []elgamal.BitProof
		if prove {
			proofs = elgamal.BatchProveBits(joint, cts, bits, rands)
		}
		noiseCh <- roundNoise{cts: cts, proofs: proofs}
	}()

	// Stage 1: announce the mixed length and ship the fair-coin noise.
	// The TS reconstructs the combined vector itself, so only the
	// appended elements travel; they form the tail of the shuffle input.
	noise := <-noiseCh
	if err := m.Send(kindMixed, VectorHeader{From: cp.Name, Round: cfg.Round, N: total}); err != nil {
		return err
	}
	err := forEachChunk(len(noise.cts), chunk, func(off, end int) error {
		nc := NoiseChunkMsg{Off: off, Count: end - off, Data: encodeVector(noise.cts[off:end])}
		if prove {
			nc.Proofs = make([]wireBitProof, end-off)
			for i, pr := range noise.proofs[off:end] {
				nc.Proofs[i] = packBitProof(pr)
			}
		}
		return m.Send(kindNoise, nc)
	})
	if err != nil {
		return err
	}

	// Stage 2+3: the streaming verifiable shuffle, with the final
	// pass's blocks exponent-blinded as they emerge. Every block is
	// permuted, re-randomized, and proven independently against the
	// stage transcript; only the current block (and, for later passes,
	// the spilled encoding of the previous pass's output) is resident.
	st := &cpShuffleState{
		cp: cp, m: m, joint: joint, prove: prove,
		rounds: cfg.ShuffleProofRounds, g: g, passes: passes,
	}
	if prove {
		st.tr = elgamal.NewShuffleTranscript(joint, total, g.block, passes, cfg.ShuffleProofRounds)
	}
	if passes > 1 {
		if st.inter, err = newSpill(total); err != nil {
			return fmt.Errorf("psc cp %s: shuffle spill: %w", cp.Name, err)
		}
		defer func() {
			if st.inter != nil {
				st.inter.Close()
			}
		}()
	}

	// Pass 1 streams directly off the arriving input: noise tail
	// appended after the TS-fed prefix, blocks emitted as they fill.
	if err := st.runPassOne(hdr.N, noise.cts); err != nil {
		return err
	}
	// Later passes re-stream the spilled intermediate in the new pass's
	// block order (a transpose for column passes).
	for p := 2; p <= passes; p++ {
		if err := st.runPass(p); err != nil {
			return err
		}
	}
	return nil
}

// cpShuffleState threads one CP's streaming-shuffle stage: the
// Fiat–Shamir transcript, the grid geometry, and the spilled
// inter-pass vector.
type cpShuffleState struct {
	cp     *CP
	m      wire.Messenger
	joint  elgamal.Point
	prove  bool
	rounds int
	g      grid
	passes int
	tr     *elgamal.ShuffleTranscript
	inter  *ctSpill // previous pass's output; nil for a single pass
}

// runPassOne consumes the TS-fed input chunks plus this CP's noise
// tail, emitting each row block's shuffle (and argument) as soon as the
// block fills. With a single pass the block is also blinded and shipped
// immediately; otherwise its output is spilled for the next pass.
func (st *cpShuffleState) runPassOne(nIn int, noise []elgamal.Ciphertext) error {
	block := make([]elgamal.Ciphertext, 0, st.g.block)
	bIdx := 0
	emit := func() error {
		if err := st.emitBlock(1, bIdx, block); err != nil {
			return err
		}
		bIdx++
		block = block[:0]
		return nil
	}
	absorb := func(cts []elgamal.Ciphertext) error {
		for len(cts) > 0 {
			take := st.g.blockLen(1, bIdx) - len(block)
			if take > len(cts) {
				take = len(cts)
			}
			block = append(block, cts[:take]...)
			cts = cts[take:]
			if len(block) == st.g.blockLen(1, bIdx) {
				if err := emit(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	err := recvVectorFunc(st.m, nIn, func(_ int, cts []elgamal.Ciphertext) error {
		return absorb(cts)
	})
	if err != nil {
		return fmt.Errorf("psc cp %s: mix batch: %w", st.cp.Name, err)
	}
	return absorb(noise)
}

// runPass re-streams the previous pass's spilled output in pass p's
// block order, announcing each claimed input block before its shuffle
// so the TS can hash-check the stream against the verified
// intermediate.
func (st *cpShuffleState) runPass(p int) error {
	var next *ctSpill
	var err error
	handedOff := false
	if p < st.passes {
		if next, err = newSpill(st.g.n); err != nil {
			return fmt.Errorf("psc cp %s: shuffle spill: %w", st.cp.Name, err)
		}
		defer func() {
			if !handedOff {
				next.Close()
			}
		}()
	}
	idx := make([]int, 0, maxBlockElems)
	for b := 0; b < st.g.blocks(p); b++ {
		n := st.g.blockLen(p, b)
		idx = idx[:0]
		for j := 0; j < n; j++ {
			idx = append(idx, st.g.inIndex(p, b, j))
		}
		in, err := st.inter.readIndices(idx)
		if err != nil {
			return fmt.Errorf("psc cp %s: shuffle spill: %w", st.cp.Name, err)
		}
		if err := st.m.Send(kindShufFeed, BlockFeedMsg{Pass: p, Block: b, Count: n, Data: encodeVector(in)}); err != nil {
			return err
		}
		if err := st.emitBlockTo(p, b, in, next); err != nil {
			return err
		}
	}
	st.inter.Close()
	st.inter = next
	handedOff = true
	return nil
}

// emitBlock shuffles, proves, and sends one block, then either blinds
// it (final pass) or spills it for the next pass.
func (st *cpShuffleState) emitBlock(p, b int, in []elgamal.Ciphertext) error {
	return st.emitBlockTo(p, b, in, st.inter)
}

func (st *cpShuffleState) emitBlockTo(p, b int, in []elgamal.Ciphertext, dst *ctSpill) error {
	out, witness := elgamal.Shuffle(st.joint, in)
	if st.prove {
		proof, err := elgamal.ProveShuffleBlock(st.tr, p, b, st.joint, in, out, witness, st.rounds)
		if err != nil {
			return fmt.Errorf("psc cp %s: block %d/%d proof: %w", st.cp.Name, p, b, err)
		}
		if err := sendBlockProof(st.m, p, b, out, proof); err != nil {
			return err
		}
	} else if err := st.m.Send(kindShufBlock, BlockOutMsg{Pass: p, Block: b, Count: len(out), Data: encodeVector(out)}); err != nil {
		return err
	}
	if p < st.passes {
		return dst.write(st.g.outStart(p, b), out)
	}
	return st.blindBlock(p, b, out)
}

// blindBlock exponent-blinds one final-pass block and ships it with its
// DLEQ proofs; the TS verifies against the block output it just
// checked and forwards downstream while this CP works on the next
// block.
func (st *cpShuffleState) blindBlock(p, b int, out []elgamal.Ciphertext) error {
	blinded, blindScalars := elgamal.BatchExpBlind(out)
	bc := BlindChunkMsg{Off: st.g.outStart(p, b), Count: len(blinded), Data: encodeVector(blinded)}
	if st.prove {
		bc.Proofs = make([]wireEquality, len(blinded))
		for i, pr := range elgamal.BatchProveBlinds(out, blinded, blindScalars) {
			bc.Proofs[i] = packEquality(pr)
		}
	}
	return st.m.Send(kindBlind, bc)
}

// decryptPhase answers the final batch chunk by chunk: only one chunk
// of ciphertexts, shares, and proofs is ever resident.
func (cp *CP) decryptPhase(m wire.Messenger, cfg ConfigureMsg) error {
	var hdr VectorHeader
	if err := m.Expect(kindDecrypt, &hdr); err != nil {
		return fmt.Errorf("psc cp %s: decrypt request: %w", cp.Name, err)
	}
	if err := m.Send(kindShares, VectorHeader{From: cp.Name, Round: cfg.Round, N: hdr.N}); err != nil {
		return err
	}
	return recvVectorFunc(m, hdr.N, func(off int, cts []elgamal.Ciphertext) error {
		decShares := cp.key.BatchPartialDecrypt(cts)
		shares := make([]byte, 0, len(cts)*65)
		for _, sh := range decShares {
			shares = sh.Share.AppendBytes(shares)
		}
		proofs := make([]wireEquality, len(cts))
		for i, pr := range cp.key.BatchProveShares(cts, decShares) {
			proofs[i] = packEquality(pr)
		}
		return m.Send(kindShare, ShareChunkMsg{Off: off, Count: len(cts), Shares: shares, Proofs: proofs})
	})
}
