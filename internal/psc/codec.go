package psc

import (
	"fmt"
	"math/big"

	"repro/internal/elgamal"
)

// Vector and proof serialization. Ciphertext batches dominate PSC
// bandwidth, so vectors are packed into a single byte slice rather than
// per-element gob structures.

// encodeVector packs ciphertexts back to back into one allocation.
func encodeVector(v []elgamal.Ciphertext) []byte {
	out := make([]byte, 0, len(v)*130)
	for _, c := range v {
		out = c.AppendTo(out)
	}
	return out
}

// decodeVector parses exactly n ciphertexts and validates every point.
func decodeVector(b []byte, n int) ([]elgamal.Ciphertext, error) {
	out := make([]elgamal.Ciphertext, 0, n)
	for i := 0; i < n; i++ {
		c, used, err := elgamal.ParseCiphertext(b)
		if err != nil {
			return nil, fmt.Errorf("psc: ciphertext %d: %w", i, err)
		}
		b = b[used:]
		out = append(out, c)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("psc: %d trailing bytes after vector", len(b))
	}
	return out, nil
}

// wireEquality is the gob-friendly form of an elgamal.EqualityProof.
type wireEquality struct {
	C1, C2   []byte
	Response []byte
}

func packEquality(p elgamal.EqualityProof) wireEquality {
	return wireEquality{C1: p.Commit1.Bytes(), C2: p.Commit2.Bytes(), Response: p.Response.Bytes()}
}

func unpackEquality(w wireEquality) (elgamal.EqualityProof, error) {
	c1, _, err := elgamal.ParsePoint(w.C1)
	if err != nil {
		return elgamal.EqualityProof{}, err
	}
	c2, _, err := elgamal.ParsePoint(w.C2)
	if err != nil {
		return elgamal.EqualityProof{}, err
	}
	return elgamal.EqualityProof{
		Commit1:  c1,
		Commit2:  c2,
		Response: new(big.Int).SetBytes(w.Response),
	}, nil
}

// wireBitProof is the gob-friendly form of an elgamal.BitProof.
type wireBitProof struct {
	C0G, C0P, C1G, C1P []byte
	Chal0, Chal1       []byte
	Resp0, Resp1       []byte
}

func packBitProof(p elgamal.BitProof) wireBitProof {
	return wireBitProof{
		C0G: p.Commit0G.Bytes(), C0P: p.Commit0P.Bytes(),
		C1G: p.Commit1G.Bytes(), C1P: p.Commit1P.Bytes(),
		Chal0: p.Chal0.Bytes(), Chal1: p.Chal1.Bytes(),
		Resp0: p.Resp0.Bytes(), Resp1: p.Resp1.Bytes(),
	}
}

func unpackBitProof(w wireBitProof) (elgamal.BitProof, error) {
	var p elgamal.BitProof
	var err error
	if p.Commit0G, _, err = elgamal.ParsePoint(w.C0G); err != nil {
		return p, err
	}
	if p.Commit0P, _, err = elgamal.ParsePoint(w.C0P); err != nil {
		return p, err
	}
	if p.Commit1G, _, err = elgamal.ParsePoint(w.C1G); err != nil {
		return p, err
	}
	if p.Commit1P, _, err = elgamal.ParsePoint(w.C1P); err != nil {
		return p, err
	}
	p.Chal0 = new(big.Int).SetBytes(w.Chal0)
	p.Chal1 = new(big.Int).SetBytes(w.Chal1)
	p.Resp0 = new(big.Int).SetBytes(w.Resp0)
	p.Resp1 = new(big.Int).SetBytes(w.Resp1)
	return p, nil
}

// wireShuffleProof is the gob-friendly form of a shuffle proof.
type wireShuffleProof struct {
	Rounds []wireShuffleRound
}

type wireShuffleRound struct {
	Shadow   []byte // packed ciphertext vector
	N        int
	OpenPerm []int
	OpenRand [][]byte
}

func packShuffleProof(p elgamal.ShuffleProof) wireShuffleProof {
	out := wireShuffleProof{Rounds: make([]wireShuffleRound, len(p.Rounds))}
	for i, r := range p.Rounds {
		wr := wireShuffleRound{
			Shadow:   encodeVector(r.Shadow),
			N:        len(r.Shadow),
			OpenPerm: r.OpenPerm,
			OpenRand: make([][]byte, len(r.OpenRand)),
		}
		for j, s := range r.OpenRand {
			wr.OpenRand[j] = s.Bytes()
		}
		out.Rounds[i] = wr
	}
	return out
}

func unpackShuffleProof(w wireShuffleProof) (elgamal.ShuffleProof, error) {
	out := elgamal.ShuffleProof{Rounds: make([]elgamal.ShuffleRound, len(w.Rounds))}
	for i, wr := range w.Rounds {
		shadow, err := decodeVector(wr.Shadow, wr.N)
		if err != nil {
			return elgamal.ShuffleProof{}, err
		}
		rands := make([]*big.Int, len(wr.OpenRand))
		for j, b := range wr.OpenRand {
			rands[j] = new(big.Int).SetBytes(b)
		}
		out.Rounds[i] = elgamal.ShuffleRound{
			Shadow:   shadow,
			OpenPerm: wr.OpenPerm,
			OpenRand: rands,
		}
	}
	return out, nil
}
