package psc

import (
	"fmt"
	"math/big"

	"repro/internal/elgamal"
	"repro/internal/wire"
)

// Vector and proof serialization. Ciphertext batches dominate PSC
// bandwidth, so vectors are packed into byte slices rather than
// per-element gob structures, and travel as bounded chunks.

// DefaultChunk is how many ciphertexts ride in one chunk frame when the
// round configuration doesn't say otherwise: ~130 bytes per ciphertext
// keeps a chunk near 128 KiB, far below any connection's frame cap.
const DefaultChunk = 1024

// chunkOf normalizes a configured chunk size.
func chunkOf(n int) int {
	if n <= 0 {
		return DefaultChunk
	}
	return n
}

// forEachChunk invokes fn(off, end) over [0, n) in chunk-sized ranges —
// the one place the clamp-and-slice arithmetic lives.
func forEachChunk(n, chunk int, fn func(off, end int) error) error {
	chunk = chunkOf(chunk)
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		if err := fn(off, end); err != nil {
			return err
		}
	}
	return nil
}

// encodeVector packs ciphertexts back to back into one allocation.
func encodeVector(v []elgamal.Ciphertext) []byte {
	out := make([]byte, 0, len(v)*130)
	for _, c := range v {
		out = c.AppendTo(out)
	}
	return out
}

// sendVector streams v as kindChunk frames of at most chunk elements.
// The receiver learns the total from the phase's preceding header.
func sendVector(m wire.Messenger, v []elgamal.Ciphertext, chunk int) error {
	return forEachChunk(len(v), chunk, func(off, end int) error {
		return m.Send(kindChunk, ChunkMsg{Off: off, Count: end - off, Data: encodeVector(v[off:end])})
	})
}

// recvVectorFunc consumes kindChunk frames until n elements have
// arrived, invoking fn for each decoded chunk as it lands. Chunks must
// tile [0, n) in order — the sender is sequential, so out-of-order
// offsets mean a confused or malicious peer.
func recvVectorFunc(m wire.Messenger, n int, fn func(off int, cts []elgamal.Ciphertext) error) error {
	return recvVectorRawFunc(m, n, func(off, count int, data []byte) error {
		cts, err := decodeVector(data, count)
		if err != nil {
			return err
		}
		return fn(off, cts)
	})
}

// recvVectorRawFunc is recvVectorFunc without the decode: fn receives
// each chunk's raw bytes, for callers that hand the (expensive) point
// parsing to a worker shard instead of the receive loop. Each call's
// data is freshly allocated by the frame decoder, so fn may retain it.
func recvVectorRawFunc(m wire.Messenger, n int, fn func(off, count int, data []byte) error) error {
	for off := 0; off < n; {
		var c ChunkMsg
		if err := m.Expect(kindChunk, &c); err != nil {
			return err
		}
		if c.Off != off || c.Count <= 0 || off+c.Count > n {
			return fmt.Errorf("psc: chunk [%d,%d) does not continue vector at %d/%d", c.Off, c.Off+c.Count, off, n)
		}
		if err := fn(off, c.Count, c.Data); err != nil {
			return err
		}
		off += c.Count
	}
	return nil
}

// recvVector collects a whole chunked vector of n elements.
func recvVector(m wire.Messenger, n int) ([]elgamal.Ciphertext, error) {
	out := make([]elgamal.Ciphertext, 0, n)
	err := recvVectorFunc(m, n, func(_ int, cts []elgamal.Ciphertext) error {
		out = append(out, cts...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// decodeVector parses exactly n ciphertexts and validates every point.
func decodeVector(b []byte, n int) ([]elgamal.Ciphertext, error) {
	out := make([]elgamal.Ciphertext, 0, n)
	for i := 0; i < n; i++ {
		c, used, err := elgamal.ParseCiphertext(b)
		if err != nil {
			return nil, fmt.Errorf("psc: ciphertext %d: %w", i, err)
		}
		b = b[used:]
		out = append(out, c)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("psc: %d trailing bytes after vector", len(b))
	}
	return out, nil
}

// wireEquality is the gob-friendly form of an elgamal.EqualityProof.
type wireEquality struct {
	C1, C2   []byte
	Response []byte
}

func packEquality(p elgamal.EqualityProof) wireEquality {
	return wireEquality{C1: p.Commit1.Bytes(), C2: p.Commit2.Bytes(), Response: p.Response.Bytes()}
}

func unpackEquality(w wireEquality) (elgamal.EqualityProof, error) {
	c1, _, err := elgamal.ParsePoint(w.C1)
	if err != nil {
		return elgamal.EqualityProof{}, err
	}
	c2, _, err := elgamal.ParsePoint(w.C2)
	if err != nil {
		return elgamal.EqualityProof{}, err
	}
	return elgamal.EqualityProof{
		Commit1:  c1,
		Commit2:  c2,
		Response: new(big.Int).SetBytes(w.Response),
	}, nil
}

// wireBitProof is the gob-friendly form of an elgamal.BitProof.
type wireBitProof struct {
	C0G, C0P, C1G, C1P []byte
	Chal0, Chal1       []byte
	Resp0, Resp1       []byte
}

func packBitProof(p elgamal.BitProof) wireBitProof {
	return wireBitProof{
		C0G: p.Commit0G.Bytes(), C0P: p.Commit0P.Bytes(),
		C1G: p.Commit1G.Bytes(), C1P: p.Commit1P.Bytes(),
		Chal0: p.Chal0.Bytes(), Chal1: p.Chal1.Bytes(),
		Resp0: p.Resp0.Bytes(), Resp1: p.Resp1.Bytes(),
	}
}

func unpackBitProof(w wireBitProof) (elgamal.BitProof, error) {
	var p elgamal.BitProof
	var err error
	if p.Commit0G, _, err = elgamal.ParsePoint(w.C0G); err != nil {
		return p, err
	}
	if p.Commit0P, _, err = elgamal.ParsePoint(w.C0P); err != nil {
		return p, err
	}
	if p.Commit1G, _, err = elgamal.ParsePoint(w.C1G); err != nil {
		return p, err
	}
	if p.Commit1P, _, err = elgamal.ParsePoint(w.C1P); err != nil {
		return p, err
	}
	p.Chal0 = new(big.Int).SetBytes(w.Chal0)
	p.Chal1 = new(big.Int).SetBytes(w.Chal1)
	p.Resp0 = new(big.Int).SetBytes(w.Resp0)
	p.Resp1 = new(big.Int).SetBytes(w.Resp1)
	return p, nil
}

// sendBlockProof streams one block's cut-and-choose argument: the
// shuffled block with its shadow commitments, then one opened shadow
// round per challenge. Nothing larger than a block ever rides in one
// frame.
func sendBlockProof(m wire.Messenger, pass, block int, out []elgamal.Ciphertext, proof elgamal.BlockShuffleProof) error {
	msg := BlockOutMsg{Pass: pass, Block: block, Count: len(out), Data: encodeVector(out)}
	msg.Commits = make([][]byte, len(proof.Commits))
	for i, c := range proof.Commits {
		msg.Commits[i] = append([]byte(nil), c[:]...)
	}
	if err := m.Send(kindShufBlock, msg); err != nil {
		return err
	}
	for r, round := range proof.Rounds {
		sh := BlockShadowMsg{
			Pass: pass, Block: block, Round: r, Count: len(round.Shadow),
			Data:     encodeVector(round.Shadow),
			OpenPerm: round.OpenPerm,
			OpenRand: make([][]byte, len(round.OpenRand)),
		}
		for j, s := range round.OpenRand {
			sh.OpenRand[j] = s.Bytes()
		}
		if err := m.Send(kindShufShadow, sh); err != nil {
			return err
		}
	}
	return nil
}

// parseBlockOut validates a shuffled-block announcement against the
// expected pass/block position, element count, and proof-round count,
// and decodes the output ciphertexts and shadow commitments. Malformed
// frames error; they never panic.
func parseBlockOut(msg BlockOutMsg, pass, block, count, rounds int) ([]elgamal.Ciphertext, [][32]byte, error) {
	if msg.Pass != pass || msg.Block != block {
		return nil, nil, fmt.Errorf("psc: block %d/%d out of order (want %d/%d)", msg.Pass, msg.Block, pass, block)
	}
	if msg.Count != count {
		return nil, nil, fmt.Errorf("psc: block %d/%d has %d elements, want %d", pass, block, msg.Count, count)
	}
	if len(msg.Commits) != rounds {
		return nil, nil, fmt.Errorf("psc: block %d/%d has %d shadow commitments, want %d", pass, block, len(msg.Commits), rounds)
	}
	commits := make([][32]byte, rounds)
	for i, c := range msg.Commits {
		if len(c) != 32 {
			return nil, nil, fmt.Errorf("psc: block %d/%d commitment %d is %d bytes", pass, block, i, len(c))
		}
		copy(commits[i][:], c)
	}
	cts, err := decodeVector(msg.Data, count)
	if err != nil {
		return nil, nil, fmt.Errorf("psc: block %d/%d: %w", pass, block, err)
	}
	return cts, commits, nil
}

// parseBlockShadow validates one opened shadow round against the
// expected position and count and decodes it into an
// elgamal.ShuffleRound. Malformed frames error; they never panic.
func parseBlockShadow(msg BlockShadowMsg, pass, block, round, count int) (elgamal.ShuffleRound, error) {
	if msg.Pass != pass || msg.Block != block || msg.Round != round {
		return elgamal.ShuffleRound{}, fmt.Errorf("psc: shadow %d/%d/%d out of order (want %d/%d/%d)",
			msg.Pass, msg.Block, msg.Round, pass, block, round)
	}
	if msg.Count != count || len(msg.OpenPerm) != count || len(msg.OpenRand) != count {
		return elgamal.ShuffleRound{}, fmt.Errorf("psc: shadow %d/%d/%d sizes %d/%d/%d, want %d",
			pass, block, round, msg.Count, len(msg.OpenPerm), len(msg.OpenRand), count)
	}
	shadow, err := decodeVector(msg.Data, count)
	if err != nil {
		return elgamal.ShuffleRound{}, fmt.Errorf("psc: shadow %d/%d/%d: %w", pass, block, round, err)
	}
	out := elgamal.ShuffleRound{Shadow: shadow, OpenPerm: msg.OpenPerm, OpenRand: make([]*big.Int, count)}
	for j, b := range msg.OpenRand {
		if len(b) > 32 {
			return elgamal.ShuffleRound{}, fmt.Errorf("psc: shadow %d/%d/%d randomizer %d is %d bytes", pass, block, round, j, len(b))
		}
		out.OpenRand[j] = new(big.Int).SetBytes(b)
	}
	return out, nil
}

// parseBlockFeed validates a re-streamed input block against the
// expected position and count and decodes it. Malformed frames error;
// they never panic.
func parseBlockFeed(msg BlockFeedMsg, pass, block, count int) ([]elgamal.Ciphertext, error) {
	if msg.Pass != pass || msg.Block != block {
		return nil, fmt.Errorf("psc: feed block %d/%d out of order (want %d/%d)", msg.Pass, msg.Block, pass, block)
	}
	if msg.Count != count {
		return nil, fmt.Errorf("psc: feed block %d/%d has %d elements, want %d", pass, block, msg.Count, count)
	}
	cts, err := decodeVector(msg.Data, count)
	if err != nil {
		return nil, fmt.Errorf("psc: feed block %d/%d: %w", pass, block, err)
	}
	return cts, nil
}
