package psc

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/wire"
)

// Config describes one PSC round.
type Config struct {
	Round uint64
	// Bins is the hash-table size b. It must comfortably exceed the
	// expected distinct count; the estimator corrects residual
	// collisions.
	Bins int
	// NoisePerCP is how many fair-coin noise ciphertexts each CP
	// injects. Total noise is Binomial(NoisePerCP·NumCPs, 1/2); the
	// calibration comes from dp.PSCNoiseTrials.
	NoisePerCP int
	// ShuffleProofRounds is the per-block cut-and-choose soundness
	// parameter (a cheating block survives with probability 2^-rounds;
	// the stage error is at most blocks·passes·2^-rounds by a union
	// bound). Zero disables shuffle/blind/bit proofs — an
	// honest-but-curious mode used only by the scale benchmarks; the
	// deployment default is 8.
	ShuffleProofRounds int
	// ShuffleBlockElems is the streaming shuffle's block size: the
	// mixed vector is arranged as rows of this many elements and each
	// pass permutes one block at a time, so CP and TS shuffle-phase
	// residency is O(block·rounds) instead of O(bins·rounds). Zero
	// selects DefaultShuffleBlock.
	ShuffleBlockElems int
	// ShufflePasses is how many alternating row/column passes each CP
	// runs (zero: DefaultShufflePasses). Two passes give every element
	// full positional support; more passes tighten the composed
	// permutation toward uniform at a linear cost.
	ShufflePasses  int
	NumDCs, NumCPs int
	// ChunkElems is how many ciphertexts travel per chunk frame; zero
	// selects DefaultChunk. Smaller chunks tighten the per-party memory
	// bound of the element-wise phases at the cost of more frames.
	ChunkElems int
	// MinDCs is the quorum floor for data collectors: when Recover is
	// set, the round completes (with degraded coverage, annotated in
	// Result.AbsentDCs) as long as at least MinDCs tables arrive in
	// full. Zero means every DC is required. CPs have no quorum knob:
	// the joint key is an n-of-n threshold, so losing any CP loses the
	// round.
	MinDCs int
	// Recover, when set, is consulted whenever the exchange with the
	// party at index i of the Run slice fails (the first NumCPs
	// messengers must then be the CPs, the rest the DCs, which is how
	// the engine orders them). canRetry reports that a replacement
	// messenger (a rejoined daemon's fresh round stream) may restart
	// the party's exchange from registration; the tolerant flow
	// buffers each DC's table and merges it into the shared sum only
	// once complete, so a failed upload leaves no partial state and
	// every failure before the table's completion is retryable. A nil
	// replacement with absentOK=true declares the party absent — none
	// of its table is included in the aggregate; absentOK=false fails
	// the round with the original error. Nil Recover preserves the
	// strict behavior: any party failure fails the round.
	Recover func(i int, name string, canRetry bool) (replacement wire.Messenger, absentOK bool)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bins <= 0 {
		return fmt.Errorf("psc: bins must be positive")
	}
	if c.NoisePerCP < 0 {
		return fmt.Errorf("psc: negative noise")
	}
	if c.ShuffleProofRounds < 0 {
		return fmt.Errorf("psc: negative proof rounds")
	}
	if c.ChunkElems < 0 {
		return fmt.Errorf("psc: negative chunk size")
	}
	// A blind chunk carries ~330 bytes per element (ciphertext plus
	// DLEQ proof); past 2048 elements a chunk frame would approach the
	// wire frame cap and flow-control window.
	if c.ChunkElems > 2048 {
		return fmt.Errorf("psc: chunk size %d exceeds the frame budget (max 2048)", c.ChunkElems)
	}
	if c.ShuffleBlockElems < 0 {
		return fmt.Errorf("psc: negative shuffle block size")
	}
	if c.ShuffleBlockElems > maxBlockElems {
		return fmt.Errorf("psc: shuffle block %d exceeds the frame budget (max %d)", c.ShuffleBlockElems, maxBlockElems)
	}
	if c.ShufflePasses < 0 || c.ShufflePasses > 16 {
		return fmt.Errorf("psc: shuffle passes %d outside [0,16]", c.ShufflePasses)
	}
	if c.ShuffleProofRounds > 128 {
		return fmt.Errorf("psc: %d proof rounds exceeds the transcript budget (max 128)", c.ShuffleProofRounds)
	}
	if c.NumDCs <= 0 {
		return fmt.Errorf("psc: need at least one DC")
	}
	if c.MinDCs < 0 || c.MinDCs > c.NumDCs {
		return fmt.Errorf("psc: DC quorum %d out of range for %d DCs", c.MinDCs, c.NumDCs)
	}
	if c.NumCPs <= 0 {
		return fmt.Errorf("psc: need at least one CP (privacy needs one honest CP)")
	}
	// A column block carries one element per row, so the row count must
	// fit the frame budget too. The largest mixed vector is the last
	// CP's: the table plus every CP's appended noise.
	block := blockOf(c.ShuffleBlockElems)
	maxTotal := c.Bins + c.NumCPs*c.NoisePerCP
	if rows := (maxTotal + block - 1) / block; rows > maxBlockElems {
		return fmt.Errorf("psc: %d-element vectors over %d-element blocks give %d-element columns, exceeding the frame budget (max %d); raise the shuffle block size",
			maxTotal, block, rows, maxBlockElems)
	}
	// A single pass over a multi-block vector never moves an element
	// out of its block, so the TS would learn which block every
	// occupied bin falls in — a silent downgrade of the privacy barrier
	// the shuffle exists to provide. (A vector that fits one block is
	// fine: one pass covers it entirely.)
	if c.ShufflePasses == 1 && maxTotal > block {
		return fmt.Errorf("psc: 1 shuffle pass over a %d-element vector with %d-element blocks is block-local, not a full shuffle; use at least 2 passes",
			maxTotal, block)
	}
	return nil
}

// TotalNoiseTrials returns the total number of coin flips in a round's
// report, the parameter the estimator needs.
func (c Config) TotalNoiseTrials() int { return c.NoisePerCP * c.NumCPs }

// binOf maps an item to its bin with a keyed hash, so items are
// consistent across DCs but unlinkable without the round key.
func binOf(key []byte, item string, bins int) int {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(item))
	sum := mac.Sum(nil)
	v := binary.LittleEndian.Uint64(sum[:8])
	return int(v % uint64(bins))
}
